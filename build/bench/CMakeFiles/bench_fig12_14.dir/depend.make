# Empty dependencies file for bench_fig12_14.
# This may be replaced when dependencies are built.
