file(REMOVE_RECURSE
  "CMakeFiles/bench_besteffort.dir/bench_besteffort.cc.o"
  "CMakeFiles/bench_besteffort.dir/bench_besteffort.cc.o.d"
  "bench_besteffort"
  "bench_besteffort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_besteffort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
