# Empty dependencies file for bench_besteffort.
# This may be replaced when dependencies are built.
