file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_testbed.dir/bench_fig11_testbed.cc.o"
  "CMakeFiles/bench_fig11_testbed.dir/bench_fig11_testbed.cc.o.d"
  "bench_fig11_testbed"
  "bench_fig11_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
