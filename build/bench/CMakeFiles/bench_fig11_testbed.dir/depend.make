# Empty dependencies file for bench_fig11_testbed.
# This may be replaced when dependencies are built.
