
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_pacer.cc" "bench/CMakeFiles/bench_fig10_pacer.dir/bench_fig10_pacer.cc.o" "gcc" "bench/CMakeFiles/bench_fig10_pacer.dir/bench_fig10_pacer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flowsim/CMakeFiles/silo_flowsim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/silo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/silo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/silo_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/pacer/CMakeFiles/silo_pacer.dir/DependInfo.cmake"
  "/root/repo/build/src/netcalc/CMakeFiles/silo_netcalc.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/silo_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/silo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
