file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_pacer.dir/bench_fig10_pacer.cc.o"
  "CMakeFiles/bench_fig10_pacer.dir/bench_fig10_pacer.cc.o.d"
  "bench_fig10_pacer"
  "bench_fig10_pacer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_pacer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
