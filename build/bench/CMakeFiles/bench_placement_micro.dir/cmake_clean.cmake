file(REMOVE_RECURSE
  "CMakeFiles/bench_placement_micro.dir/bench_placement_micro.cc.o"
  "CMakeFiles/bench_placement_micro.dir/bench_placement_micro.cc.o.d"
  "bench_placement_micro"
  "bench_placement_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_placement_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
