# Empty dependencies file for bench_placement_micro.
# This may be replaced when dependencies are built.
