# Empty dependencies file for burst_trace.
# This may be replaced when dependencies are built.
