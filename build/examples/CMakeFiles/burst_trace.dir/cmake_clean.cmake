file(REMOVE_RECURSE
  "CMakeFiles/burst_trace.dir/burst_trace.cpp.o"
  "CMakeFiles/burst_trace.dir/burst_trace.cpp.o.d"
  "burst_trace"
  "burst_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
