file(REMOVE_RECURSE
  "CMakeFiles/shuffle_bandwidth.dir/shuffle_bandwidth.cpp.o"
  "CMakeFiles/shuffle_bandwidth.dir/shuffle_bandwidth.cpp.o.d"
  "shuffle_bandwidth"
  "shuffle_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shuffle_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
