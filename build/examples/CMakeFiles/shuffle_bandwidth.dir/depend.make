# Empty dependencies file for shuffle_bandwidth.
# This may be replaced when dependencies are built.
