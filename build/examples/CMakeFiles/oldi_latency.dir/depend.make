# Empty dependencies file for oldi_latency.
# This may be replaced when dependencies are built.
