file(REMOVE_RECURSE
  "CMakeFiles/oldi_latency.dir/oldi_latency.cpp.o"
  "CMakeFiles/oldi_latency.dir/oldi_latency.cpp.o.d"
  "oldi_latency"
  "oldi_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oldi_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
