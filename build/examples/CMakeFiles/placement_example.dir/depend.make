# Empty dependencies file for placement_example.
# This may be replaced when dependencies are built.
