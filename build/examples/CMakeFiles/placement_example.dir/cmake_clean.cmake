file(REMOVE_RECURSE
  "CMakeFiles/placement_example.dir/placement_example.cpp.o"
  "CMakeFiles/placement_example.dir/placement_example.cpp.o.d"
  "placement_example"
  "placement_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
