# Empty dependencies file for guarantee_advisor.
# This may be replaced when dependencies are built.
