file(REMOVE_RECURSE
  "CMakeFiles/guarantee_advisor.dir/guarantee_advisor.cpp.o"
  "CMakeFiles/guarantee_advisor.dir/guarantee_advisor.cpp.o.d"
  "guarantee_advisor"
  "guarantee_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guarantee_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
