# Empty compiler generated dependencies file for silo_flowsim.
# This may be replaced when dependencies are built.
