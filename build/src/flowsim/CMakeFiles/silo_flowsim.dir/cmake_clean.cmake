file(REMOVE_RECURSE
  "CMakeFiles/silo_flowsim.dir/flow_sim.cc.o"
  "CMakeFiles/silo_flowsim.dir/flow_sim.cc.o.d"
  "libsilo_flowsim.a"
  "libsilo_flowsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silo_flowsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
