file(REMOVE_RECURSE
  "libsilo_flowsim.a"
)
