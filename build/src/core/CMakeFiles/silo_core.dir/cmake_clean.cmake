file(REMOVE_RECURSE
  "CMakeFiles/silo_core.dir/advisor.cc.o"
  "CMakeFiles/silo_core.dir/advisor.cc.o.d"
  "CMakeFiles/silo_core.dir/controller.cc.o"
  "CMakeFiles/silo_core.dir/controller.cc.o.d"
  "libsilo_core.a"
  "libsilo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
