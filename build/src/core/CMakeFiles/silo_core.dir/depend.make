# Empty dependencies file for silo_core.
# This may be replaced when dependencies are built.
