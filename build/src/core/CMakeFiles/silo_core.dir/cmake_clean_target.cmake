file(REMOVE_RECURSE
  "libsilo_core.a"
)
