# Empty compiler generated dependencies file for silo_netcalc.
# This may be replaced when dependencies are built.
