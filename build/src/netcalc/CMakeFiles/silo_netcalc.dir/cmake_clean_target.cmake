file(REMOVE_RECURSE
  "libsilo_netcalc.a"
)
