file(REMOVE_RECURSE
  "CMakeFiles/silo_netcalc.dir/curve.cc.o"
  "CMakeFiles/silo_netcalc.dir/curve.cc.o.d"
  "libsilo_netcalc.a"
  "libsilo_netcalc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silo_netcalc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
