file(REMOVE_RECURSE
  "CMakeFiles/silo_pacer.dir/hose_allocator.cc.o"
  "CMakeFiles/silo_pacer.dir/hose_allocator.cc.o.d"
  "CMakeFiles/silo_pacer.dir/paced_nic.cc.o"
  "CMakeFiles/silo_pacer.dir/paced_nic.cc.o.d"
  "CMakeFiles/silo_pacer.dir/vm_pacer.cc.o"
  "CMakeFiles/silo_pacer.dir/vm_pacer.cc.o.d"
  "libsilo_pacer.a"
  "libsilo_pacer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silo_pacer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
