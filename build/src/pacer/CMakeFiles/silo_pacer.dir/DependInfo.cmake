
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pacer/hose_allocator.cc" "src/pacer/CMakeFiles/silo_pacer.dir/hose_allocator.cc.o" "gcc" "src/pacer/CMakeFiles/silo_pacer.dir/hose_allocator.cc.o.d"
  "/root/repo/src/pacer/paced_nic.cc" "src/pacer/CMakeFiles/silo_pacer.dir/paced_nic.cc.o" "gcc" "src/pacer/CMakeFiles/silo_pacer.dir/paced_nic.cc.o.d"
  "/root/repo/src/pacer/vm_pacer.cc" "src/pacer/CMakeFiles/silo_pacer.dir/vm_pacer.cc.o" "gcc" "src/pacer/CMakeFiles/silo_pacer.dir/vm_pacer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/silo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
