# Empty dependencies file for silo_pacer.
# This may be replaced when dependencies are built.
