file(REMOVE_RECURSE
  "libsilo_pacer.a"
)
