file(REMOVE_RECURSE
  "libsilo_placement.a"
)
