# Empty compiler generated dependencies file for silo_placement.
# This may be replaced when dependencies are built.
