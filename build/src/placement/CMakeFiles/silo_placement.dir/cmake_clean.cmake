file(REMOVE_RECURSE
  "CMakeFiles/silo_placement.dir/placement.cc.o"
  "CMakeFiles/silo_placement.dir/placement.cc.o.d"
  "libsilo_placement.a"
  "libsilo_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silo_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
