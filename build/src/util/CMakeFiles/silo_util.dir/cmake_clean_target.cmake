file(REMOVE_RECURSE
  "libsilo_util.a"
)
