# Empty compiler generated dependencies file for silo_util.
# This may be replaced when dependencies are built.
