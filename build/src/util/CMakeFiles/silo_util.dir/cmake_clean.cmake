file(REMOVE_RECURSE
  "CMakeFiles/silo_util.dir/stats.cc.o"
  "CMakeFiles/silo_util.dir/stats.cc.o.d"
  "libsilo_util.a"
  "libsilo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
