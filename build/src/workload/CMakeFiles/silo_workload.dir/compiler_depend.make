# Empty compiler generated dependencies file for silo_workload.
# This may be replaced when dependencies are built.
