file(REMOVE_RECURSE
  "libsilo_workload.a"
)
