file(REMOVE_RECURSE
  "CMakeFiles/silo_workload.dir/drivers.cc.o"
  "CMakeFiles/silo_workload.dir/drivers.cc.o.d"
  "CMakeFiles/silo_workload.dir/patterns.cc.o"
  "CMakeFiles/silo_workload.dir/patterns.cc.o.d"
  "libsilo_workload.a"
  "libsilo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
