file(REMOVE_RECURSE
  "CMakeFiles/silo_sim.dir/cluster.cc.o"
  "CMakeFiles/silo_sim.dir/cluster.cc.o.d"
  "CMakeFiles/silo_sim.dir/network.cc.o"
  "CMakeFiles/silo_sim.dir/network.cc.o.d"
  "CMakeFiles/silo_sim.dir/port.cc.o"
  "CMakeFiles/silo_sim.dir/port.cc.o.d"
  "CMakeFiles/silo_sim.dir/trace.cc.o"
  "CMakeFiles/silo_sim.dir/trace.cc.o.d"
  "CMakeFiles/silo_sim.dir/transport.cc.o"
  "CMakeFiles/silo_sim.dir/transport.cc.o.d"
  "libsilo_sim.a"
  "libsilo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
