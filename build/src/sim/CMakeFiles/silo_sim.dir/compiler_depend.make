# Empty compiler generated dependencies file for silo_sim.
# This may be replaced when dependencies are built.
