file(REMOVE_RECURSE
  "libsilo_sim.a"
)
