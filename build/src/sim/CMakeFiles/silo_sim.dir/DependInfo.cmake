
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cc" "src/sim/CMakeFiles/silo_sim.dir/cluster.cc.o" "gcc" "src/sim/CMakeFiles/silo_sim.dir/cluster.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/sim/CMakeFiles/silo_sim.dir/network.cc.o" "gcc" "src/sim/CMakeFiles/silo_sim.dir/network.cc.o.d"
  "/root/repo/src/sim/port.cc" "src/sim/CMakeFiles/silo_sim.dir/port.cc.o" "gcc" "src/sim/CMakeFiles/silo_sim.dir/port.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/silo_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/silo_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/transport.cc" "src/sim/CMakeFiles/silo_sim.dir/transport.cc.o" "gcc" "src/sim/CMakeFiles/silo_sim.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pacer/CMakeFiles/silo_pacer.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/silo_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/silo_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/silo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netcalc/CMakeFiles/silo_netcalc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
