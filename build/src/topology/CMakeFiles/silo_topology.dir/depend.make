# Empty dependencies file for silo_topology.
# This may be replaced when dependencies are built.
