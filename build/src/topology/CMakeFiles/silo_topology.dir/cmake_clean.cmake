file(REMOVE_RECURSE
  "CMakeFiles/silo_topology.dir/topology.cc.o"
  "CMakeFiles/silo_topology.dir/topology.cc.o.d"
  "libsilo_topology.a"
  "libsilo_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silo_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
