file(REMOVE_RECURSE
  "libsilo_topology.a"
)
