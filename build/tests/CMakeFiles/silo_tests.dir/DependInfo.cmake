
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_advisor.cc" "tests/CMakeFiles/silo_tests.dir/test_advisor.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_advisor.cc.o.d"
  "/root/repo/tests/test_cluster.cc" "tests/CMakeFiles/silo_tests.dir/test_cluster.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_cluster.cc.o.d"
  "/root/repo/tests/test_controller.cc" "tests/CMakeFiles/silo_tests.dir/test_controller.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_controller.cc.o.d"
  "/root/repo/tests/test_drivers.cc" "tests/CMakeFiles/silo_tests.dir/test_drivers.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_drivers.cc.o.d"
  "/root/repo/tests/test_flowsim.cc" "tests/CMakeFiles/silo_tests.dir/test_flowsim.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_flowsim.cc.o.d"
  "/root/repo/tests/test_guarantee.cc" "tests/CMakeFiles/silo_tests.dir/test_guarantee.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_guarantee.cc.o.d"
  "/root/repo/tests/test_integration_property.cc" "tests/CMakeFiles/silo_tests.dir/test_integration_property.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_integration_property.cc.o.d"
  "/root/repo/tests/test_netcalc.cc" "tests/CMakeFiles/silo_tests.dir/test_netcalc.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_netcalc.cc.o.d"
  "/root/repo/tests/test_pacer.cc" "tests/CMakeFiles/silo_tests.dir/test_pacer.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_pacer.cc.o.d"
  "/root/repo/tests/test_placement.cc" "tests/CMakeFiles/silo_tests.dir/test_placement.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_placement.cc.o.d"
  "/root/repo/tests/test_regression.cc" "tests/CMakeFiles/silo_tests.dir/test_regression.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_regression.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/silo_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_topology.cc" "tests/CMakeFiles/silo_tests.dir/test_topology.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_topology.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/silo_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_transport_detail.cc" "tests/CMakeFiles/silo_tests.dir/test_transport_detail.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_transport_detail.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/silo_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_util.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/silo_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/silo_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/silo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flowsim/CMakeFiles/silo_flowsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/silo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/silo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/silo_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/pacer/CMakeFiles/silo_pacer.dir/DependInfo.cmake"
  "/root/repo/build/src/netcalc/CMakeFiles/silo_netcalc.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/silo_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/silo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
