# Empty dependencies file for silo_tests.
# This may be replaced when dependencies are built.
