// Shared helpers for the experiment benches: a tiny --key=value flag
// parser (every bench must also run sensibly with no arguments) and
// common printing utilities.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "util/stats.h"

namespace silo::bench {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  double get(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  std::int64_t geti(const std::string& key, std::int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

inline void print_header(const char* experiment, const char* description) {
  std::printf("=============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("=============================================================\n");
}

}  // namespace silo::bench
