// Shared helpers for the experiment benches: a tiny --key=value flag
// parser (every bench must also run sensibly with no arguments), common
// printing utilities, and a minimal JSON writer for machine-readable
// BENCH_*.json result files (--json mode).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/manifest.h"
#include "util/stats.h"

namespace silo::bench {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  double get(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  std::int64_t geti(const std::string& key, std::int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  std::string gets(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

inline void print_header(const char* experiment, const char* description) {
  std::printf("=============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("=============================================================\n");
}

/// Insertion-ordered JSON object builder. Values are rendered on insert;
/// nesting works by putting another JsonObject. Keys/strings are assumed
/// not to need escaping (bench identifiers only).
class JsonObject {
 public:
  JsonObject& put(const std::string& key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.8g", v);
    return raw(key, buf);
  }
  JsonObject& put(const std::string& key, std::int64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& put(const std::string& key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& put(const std::string& key, int v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& put(const std::string& key, const std::string& v) {
    return raw(key, "\"" + v + "\"");
  }
  JsonObject& put(const std::string& key, const JsonObject& obj) {
    return raw(key, obj.str());
  }
  JsonObject& put(const std::string& key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  JsonObject& put(const std::string& key, const std::vector<JsonObject>& arr) {
    std::string out = "[";
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out += ", ";
      out += arr[i].str();
    }
    return raw(key, out + "]");
  }

  std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ", ";
      out += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    return out + "}";
  }

 private:
  JsonObject& raw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
    return *this;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Write `obj` to `path` (pretty enough for diffing: one line). Returns
/// false and prints a warning on IO failure.
inline bool write_json_file(const std::string& path, const JsonObject& obj) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string body = obj.str();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Handle the shared --metrics-json[=<path>] flag: write the versioned run
/// manifest (obs/manifest.h) with the bench's seed, topology, params and a
/// metrics snapshot taken while the simulation was alive. A bare
/// --metrics-json defaults the path to "BENCH_<bench>.manifest.json".
/// No-op when the flag is absent.
inline void maybe_write_manifest(
    const Flags& flags, const obs::RunManifest& m,
    const std::vector<obs::MetricSample>& metrics = {}) {
  if (!flags.has("metrics-json")) return;
  std::string path = flags.gets("metrics-json", "");
  if (path.empty() || path == "1")
    path = "BENCH_" + m.bench + ".manifest.json";
  // stderr: benches may be piping machine-readable output on stdout
  // (e.g. bench_micro_ops --benchmark_format=json > out.json).
  if (obs::write_manifest(path, m, metrics)) {
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
  }
}

}  // namespace silo::bench
