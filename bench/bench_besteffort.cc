// §4.4 ablation: tenants without guarantees ride 802.1q low priority and
// soak residual capacity. This bench verifies the two claims that make
// that design safe and useful:
//   1. adding a best-effort tenant does NOT disturb a guaranteed tenant's
//      message latency (isolation via strict priority), and
//   2. the best-effort tenant picks up most of the capacity the
//      guarantees leave on the table (work conservation across classes).
#include "bench/bench_util.h"
#include "sim/cluster.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

using namespace silo;
using namespace silo::bench;

namespace {

struct Result {
  double guaranteed_p99_us = 0;
  double besteffort_gbps = 0;
  double guaranteed_gbps = 0;
  std::vector<obs::MetricSample> metrics;  ///< end-of-run snapshot
};

Result run(bool with_besteffort, TimeNs duration) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 5;
  cfg.topo.vm_slots_per_server = 4;
  cfg.topo.oversubscription = 1.0;
  cfg.scheme = sim::Scheme::kSilo;
  sim::ClusterSim cluster(cfg);

  // A guaranteed, delay-sensitive tenant using only a fraction of the
  // fabric.
  TenantRequest g;
  g.num_vms = 10;
  g.tenant_class = TenantClass::kDelaySensitive;
  g.guarantee = {500 * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  const auto tg = cluster.add_tenant(g);

  // A bandwidth-guaranteed bulk tenant.
  TenantRequest b;
  b.num_vms = 6;
  b.tenant_class = TenantClass::kBandwidthOnly;
  b.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
  const auto tb = cluster.add_tenant(b);

  Result res;
  if (!tg || !tb) return res;

  std::optional<int> te;
  if (with_besteffort) {
    TenantRequest e;
    e.num_vms = 4;
    e.tenant_class = TenantClass::kBestEffort;
    e.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};  // ignored
    te = cluster.add_tenant(e);
  }

  workload::BurstDriver::Config bc;
  bc.receiver = 9;
  bc.message_size = 15 * kKB;
  bc.epochs_per_sec = 60;
  workload::BurstDriver msgs(cluster, *tg, 10, bc, 5);
  msgs.start(duration);

  workload::BulkDriver bulk(cluster, *tb, workload::all_to_all(6),
                            Bytes{128 * kKB});
  bulk.start(duration);

  std::optional<workload::BulkDriver> filler;
  if (te) {
    filler.emplace(cluster, *te, workload::all_to_all(4), Bytes{256 * kKB});
    filler->start(duration);
  }
  cluster.run_until(duration + 50 * kMsec);

  res.guaranteed_p99_us = msgs.latencies_us().percentile(99);
  res.guaranteed_gbps = bulk.goodput_bps() / 1e9;
  if (filler) res.besteffort_gbps = filler->goodput_bps() / 1e9;
  res.metrics = cluster.metrics().snapshot();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto duration = TimeNs{static_cast<std::int64_t>(
      flags.get("duration-ms", 300.0) * static_cast<double>(kMsec))};

  print_header("Best-effort tenants (§4.4): isolation + work conservation",
               "Silo guarantees active; a best-effort tenant rides 802.1q\n"
               "low priority and may only use what the guarantees leave.");

  const auto without = run(false, duration);
  const auto with = run(true, duration);

  TextTable t({"Metric", "no best-effort", "with best-effort"});
  t.add_row({"guaranteed tenant p99 (us)",
             TextTable::fmt(without.guaranteed_p99_us, 0),
             TextTable::fmt(with.guaranteed_p99_us, 0)});
  t.add_row({"guaranteed bulk goodput (Gbps)",
             TextTable::fmt(without.guaranteed_gbps, 2),
             TextTable::fmt(with.guaranteed_gbps, 2)});
  t.add_row({"best-effort goodput (Gbps)", "-",
             TextTable::fmt(with.besteffort_gbps, 2)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Expected: the guaranteed tenant's tail latency and bulk goodput are\n"
      "essentially unchanged, while the best-effort tenant soaks residual\n"
      "capacity — the utilization recovery §4.4 promises for Silo's\n"
      "non-work-conserving guarantees.\n");

  if (flags.has("json")) {
    JsonObject out;
    out.put("bench", std::string("besteffort"))
        .put("duration_ms", static_cast<std::int64_t>(duration / kMsec))
        .put("p99_without_us", without.guaranteed_p99_us)
        .put("p99_with_us", with.guaranteed_p99_us)
        .put("guaranteed_gbps", with.guaranteed_gbps)
        .put("besteffort_gbps", with.besteffort_gbps);
    write_json_file("BENCH_besteffort.json", out);
  }

  obs::RunManifest m;
  m.bench = "besteffort";
  m.seed = 5;
  m.topology = {{"servers", 5}, {"vm_slots_per_server", 4}};
  m.params = {{"duration_ms", std::to_string(duration / kMsec)},
              {"metrics", "with-best-effort run"}};
  maybe_write_manifest(flags, m, with.metrics);
  return 0;
}
