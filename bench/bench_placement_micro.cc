// §5 placement microbenchmark: time to place tenants in a simulated
// datacenter with 100K hosts, average tenant size 49 VMs (as in the
// Oktopus / time-varying-reservation evaluations the paper cites).
// The paper reports a maximum placement time of 1.15 s over 100 K
// requests; this bench reports the full latency distribution of our
// implementation plus admission statistics.
//
// Ablation: --policy=oktopus / --policy=locality time the baselines'
// admission logic on the same request stream.
#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "placement/placement.h"
#include "util/rng.h"

using namespace silo;
using namespace silo::placement;

namespace {

TenantRequest sample_request(Rng& rng, double mean_vms) {
  TenantRequest req;
  req.num_vms =
      2 + static_cast<int>(rng.exponential(mean_vms - 2));
  const bool class_a = rng.uniform() < 0.5;
  if (class_a) {
    req.tenant_class = TenantClass::kDelaySensitive;
    req.guarantee = {RateBps{std::clamp(rng.exponential(0.25e9), 0.05e9, 1e9)},
                     15 * kKB, 1300 * kUsec, 1 * kGbps};
  } else {
    req.tenant_class = TenantClass::kBandwidthOnly;
    req.guarantee = {RateBps{std::clamp(rng.exponential(2e9), 0.1e9, 5e9)},
                     Bytes{1500}, TimeNs{0}, RateBps{0}};
  }
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto requests = flags.geti("requests", 2000);
  const double mean_vms = flags.get("mean-vms", 49.0);
  const double occupancy_cap = flags.get("occupancy", 0.90);

  Policy policy = Policy::kSilo;
  if (flags.has("policy-oktopus")) policy = Policy::kOktopus;
  if (flags.has("policy-locality")) policy = Policy::kLocality;

  topology::TopologyConfig tcfg;
  tcfg.pods = 25;
  tcfg.racks_per_pod = 100;
  tcfg.servers_per_rack = 40;  // 100,000 hosts
  tcfg.vm_slots_per_server = 8;
  topology::Topology topo(tcfg);
  const bool hose_tighten = !flags.has("no-hose-tighten");
  PlacementEngine engine(topo, policy, 50 * kUsec, hose_tighten);

  bench::print_header(
      "Placement microbenchmark (§5): 100K hosts, ~49-VM tenants",
      "Wall-clock time of admission control + placement per request.\n"
      "Ablation: --no-hose-tighten uses the naive m*B aggregate instead\n"
      "of the hose-model min(m, N-m)*B bound of §4.2.2.");

  Rng rng(7);
  Stats micros;
  std::int64_t admitted = 0, attempted = 0;
  std::vector<TenantId> ids;
  const int slot_cap =
      static_cast<int>(occupancy_cap * topo.total_vm_slots());

  for (std::int64_t i = 0; i < requests; ++i) {
    // Hold occupancy near the cap by recycling old tenants, which is the
    // steady state a real placement manager operates in.
    while (topo.total_vm_slots() - engine.free_slots() > slot_cap &&
           !ids.empty()) {
      engine.remove(ids.front());
      ids.erase(ids.begin());
    }
    const auto req = sample_request(rng, mean_vms);
    ++attempted;
    const auto start = std::chrono::steady_clock::now();
    auto placed = engine.place(req);
    const auto end = std::chrono::steady_clock::now();
    micros.add(std::chrono::duration<double, std::micro>(end - start).count());
    if (placed) {
      ++admitted;
      ids.push_back(placed->id);
    }
  }

  TextTable table({"Metric", "Value"});
  table.add_row({"requests", std::to_string(attempted)});
  table.add_row({"admitted", TextTable::fmt(
                                 100.0 * static_cast<double>(admitted) /
                                     static_cast<double>(attempted),
                                 1) +
                                 " %"});
  table.add_row({"mean placement time", TextTable::fmt(micros.mean(), 1) + " us"});
  table.add_row({"median", TextTable::fmt(micros.median(), 1) + " us"});
  table.add_row({"99th percentile", TextTable::fmt(micros.percentile(99), 1) + " us"});
  table.add_row({"max", TextTable::fmt(micros.max() / 1000.0, 2) + " ms"});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Paper reference: maximum placement time 1.15 s over 100K\n"
              "requests (their prototype); anything in that envelope keeps\n"
              "the placement manager off the tenant-arrival critical path.\n");

  if (flags.has("json")) {
    bench::JsonObject out;
    out.put("bench", std::string("placement_micro"))
        .put("requests", static_cast<std::int64_t>(attempted))
        .put("admitted", static_cast<std::int64_t>(admitted))
        .put("mean_us", micros.mean())
        .put("p99_us", micros.percentile(99))
        .put("max_us", micros.max());
    bench::write_json_file("BENCH_placement_micro.json", out);
  }

  // Placement engine only — no packet simulation, so no metric registry;
  // the manifest records the run shape with an empty metrics array.
  obs::RunManifest m;
  m.bench = "placement_micro";
  m.seed = 7;
  m.topology = {{"pods", tcfg.pods},
                {"racks_per_pod", tcfg.racks_per_pod},
                {"servers_per_rack", tcfg.servers_per_rack},
                {"vm_slots_per_server", tcfg.vm_slots_per_server}};
  m.params = {{"requests", std::to_string(requests)},
              {"mean_vms", TextTable::fmt(mean_vms, 1)},
              {"occupancy", TextTable::fmt(occupancy_cap, 2)},
              {"policy", policy == Policy::kSilo        ? "silo"
                         : policy == Policy::kOktopus   ? "oktopus"
                                                        : "locality"}};
  bench::maybe_write_manifest(flags, m);
  return 0;
}
