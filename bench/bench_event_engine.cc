// Event-engine microbenchmark: timing wheel + typed events + packet pool
// vs the seed scheduler (std::priority_queue of std::function closures
// capturing Packet by value).
//
// Both engines drive the identical workload — a ring of output-queued
// switch ports forwarding a fixed population of packets for a fixed hop
// count, plus periodic pacer-gate-style timers — so the processed-event
// counts match and events/second is an apples-to-apples comparison. A
// second phase times a real Fig-12-style ClusterSim run on the new engine.
//
// Writes BENCH_event_engine.json next to the binary's working directory.
//
// Flags: --ports=16 --packets=2000 --hops=512 --timer-ticks=2000
//        --duration-ms=100 (cluster phase) --json-path=BENCH_event_engine.json
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "bench/bench_util.h"
#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "sim/port.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

using namespace silo;

namespace {

// ---------------------------------------------------------------------------
// Seed-engine replica: binary heap of type-erased closures, ties broken by
// insertion sequence. This is the scheduler the repository started with,
// kept here verbatim-in-spirit as the baseline.
class LegacyEngine {
 public:
  struct Ev {
    TimeNs time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  TimeNs now() const { return now_; }
  std::uint64_t processed() const { return processed_; }

  void at(TimeNs t, std::function<void()> fn) {
    pq_.push(Ev{t < now_ ? now_ : t, seq_++, std::move(fn)});
  }
  void after(TimeNs delay, std::function<void()> fn) {
    at(now_ + delay, std::move(fn));
  }

  void run_all() {
    while (!pq_.empty()) {
      Ev ev = pq_.top();  // copy, as the seed engine did
      pq_.pop();
      now_ = ev.time;
      ++processed_;
      ev.fn();
    }
  }

 private:
  std::priority_queue<Ev, std::vector<Ev>, Later> pq_;
  TimeNs now_ {};
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

// Seed-style switch port: FIFO drop-tail, Packet carried by value inside
// the tx-done and deliver closures (two heap-allocated std::functions and
// two 80-byte copies per hop — the cost the typed engine removes).
class LegacyPort {
 public:
  using DeliverFn = std::function<void(sim::Packet)>;

  LegacyPort(LegacyEngine& ev, sim::PortConfig cfg, DeliverFn deliver)
      : ev_(ev), cfg_(cfg), deliver_(std::move(deliver)) {}

  void enqueue(sim::Packet p) {
    if (queued_bytes_ + p.wire_bytes > cfg_.buffer) {
      ++drops_;
      return;
    }
    queued_bytes_ += p.wire_bytes;
    queue_[static_cast<int>(p.priority)].push_back(std::move(p));
    if (!busy_) start_tx();
  }

  std::int64_t tx_packets() const { return tx_packets_; }

 private:
  void start_tx() {
    auto& q = !queue_[0].empty() ? queue_[0] : queue_[1];
    if (q.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    sim::Packet p = q.front();
    q.pop_front();
    queued_bytes_ -= p.wire_bytes;
    const TimeNs tx = transmission_time(p.wire_bytes + kEthOverhead, cfg_.rate);
    ev_.after(tx, [this, p] {
      ++tx_packets_;
      ev_.after(cfg_.link_delay, [this, p] { deliver_(p); });
      start_tx();
    });
  }

  LegacyEngine& ev_;
  sim::PortConfig cfg_;
  DeliverFn deliver_;
  std::deque<sim::Packet> queue_[2];
  Bytes queued_bytes_ {};
  bool busy_ = false;
  std::int64_t tx_packets_ = 0;
  std::int64_t drops_ = 0;
};

struct RingParams {
  int ports = 16;
  int packets = 2000;
  int hops = 512;
  int timer_ticks = 2000;  ///< per-port 50 us periodic gate-open timers
};

sim::PortConfig ring_port_config() {
  sim::PortConfig cfg;
  cfg.rate = 10 * kGbps;
  cfg.buffer = 64 * kMB;  // sized so the ring never drops
  cfg.link_delay = TimeNs{500};
  return cfg;
}

sim::Packet ring_packet(int j, int hops) {
  sim::Packet p;
  p.id = static_cast<std::uint64_t>(j);
  p.payload = Bytes{1460};
  p.wire_bytes = Bytes{1500};
  // The 8-bit `hop` field wraps at 256, so the ring counts hops down in
  // `remaining` (int64, unused by non-pFabric ports).
  p.remaining = hops;
  return p;
}

struct EngineResult {
  std::uint64_t events = 0;
  double wall_s = 0;
  std::uint64_t delivered = 0;  ///< packets that completed all hops
  double events_per_sec() const { return events / wall_s; }
};

EngineResult run_legacy(const RingParams& rp) {
  LegacyEngine ev;
  std::vector<std::unique_ptr<LegacyPort>> ports(rp.ports);
  std::uint64_t done = 0;
  for (int i = 0; i < rp.ports; ++i) {
    ports[i] = std::make_unique<LegacyPort>(
        ev, ring_port_config(), [&, i](sim::Packet p) {
          if (--p.remaining > 0) {
            ports[(i + 1) % rp.ports]->enqueue(std::move(p));
          } else {
            ++done;
          }
        });
  }
  for (int j = 0; j < rp.packets; ++j) {
    ev.at(TimeNs{j * 737}, [&, j] {
      ports[j % rp.ports]->enqueue(ring_packet(j, rp.hops));
    });
  }
  for (int i = 0; i < rp.ports; ++i) {
    auto tick = std::make_shared<std::function<void(int)>>();
    *tick = [&ev, tick](int remaining) {
      if (remaining > 0) {
        ev.after(50 * kUsec, [tick, remaining] { (*tick)(remaining - 1); });
      }
    };
    ev.after(50 * kUsec, [tick, rp] { (*tick)(rp.timer_ticks - 1); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  ev.run_all();
  const auto t1 = std::chrono::steady_clock::now();
  return {ev.processed(), std::chrono::duration<double>(t1 - t0).count(),
          done};
}

EngineResult run_wheel(const RingParams& rp) {
  sim::EventQueue ev;
  std::vector<std::unique_ptr<sim::SwitchPortSim>> ports(rp.ports);
  std::uint64_t done = 0;
  for (int i = 0; i < rp.ports; ++i) {
    ports[i] = std::make_unique<sim::SwitchPortSim>(
        ev, ring_port_config(), [&, i](sim::PacketHandle h) {
          sim::Packet& p = ev.pool().get(h);
          if (--p.remaining > 0) {
            ports[(i + 1) % rp.ports]->enqueue(h);
          } else {
            ev.pool().free(h);
            ++done;
          }
        });
  }
  for (int j = 0; j < rp.packets; ++j) {
    // Injection itself stays a cold-path callback (as drivers do); the per
    // hop traffic below is all typed events.
    ev.at(TimeNs{j * 737}, [&, j] {
      ports[j % rp.ports]->enqueue(ev.pool().clone(ring_packet(j, rp.hops)));
    });
  }
  struct Ticker {
    sim::EventQueue& ev;
    int remaining;
    static void fire(void* self, std::uint32_t) {
      auto* t = static_cast<Ticker*>(self);
      if (t->remaining-- > 0) t->ev.raw_after(50 * kUsec, &Ticker::fire, t);
    }
  };
  // remaining = ticks - 1: the initial raw_after below is tick #1.
  std::vector<Ticker> tickers(rp.ports, Ticker{ev, rp.timer_ticks - 1});
  for (auto& t : tickers) ev.raw_after(50 * kUsec, &Ticker::fire, &t);

  const auto t0 = std::chrono::steady_clock::now();
  ev.run_all();
  const auto t1 = std::chrono::steady_clock::now();
  return {ev.processed(), std::chrono::duration<double>(t1 - t0).count(),
          done};
}

// ---------------------------------------------------------------------------
// Phase 2: a real Fig-12-style cluster run on the production engine —
// OLDI bursts plus all-to-all bulk through the full host/pacer/fabric
// stack, reporting end-to-end simulator throughput and pool behavior.
struct ClusterResult {
  std::uint64_t events = 0;
  double wall_s = 0;
  std::uint64_t packets = 0;
  std::uint64_t pool_capacity = 0;
  std::int64_t pool_peak_live = 0;
  std::uint64_t callback_events = 0;
  std::vector<obs::MetricSample> metrics;  ///< end-of-run snapshot
};

ClusterResult run_cluster(TimeNs duration) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 2;
  cfg.topo.servers_per_rack = 8;
  cfg.topo.vm_slots_per_server = 4;
  cfg.scheme = sim::Scheme::kSilo;
  sim::ClusterSim cluster(cfg);

  TenantRequest a;
  a.num_vms = 18;
  a.tenant_class = TenantClass::kDelaySensitive;
  a.guarantee = {RateBps{0.3e9}, 15 * kKB, 1 * kMsec, 1 * kGbps};
  const auto ta = cluster.add_tenant(a);
  TenantRequest b;
  b.num_vms = 8;
  b.tenant_class = TenantClass::kBandwidthOnly;
  b.guarantee = {RateBps{1e9}, Bytes{1500}, TimeNs{0}, RateBps{1e9}};
  const auto tb = cluster.add_tenant(b);
  if (!ta || !tb) return {};

  workload::BurstDriver::Config bc;
  bc.receiver = 0;
  bc.message_size = 15 * kKB;
  bc.epochs_per_sec = 2000;
  workload::BurstDriver burst(cluster, *ta, a.num_vms, bc, 42);
  workload::BulkDriver bulk(cluster, *tb, workload::all_to_all(b.num_vms),
                            64 * kKB);
  burst.start(duration);
  bulk.start(duration);

  const auto t0 = std::chrono::steady_clock::now();
  cluster.run_until(duration);
  const auto t1 = std::chrono::steady_clock::now();

  ClusterResult r;
  r.events = cluster.events().processed();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.packets = static_cast<std::uint64_t>(cluster.events().pool().total_allocs());
  r.pool_capacity = cluster.events().pool().capacity();
  r.pool_peak_live = cluster.events().pool().peak_live();
  r.callback_events = cluster.events().callback_events();
  r.metrics = cluster.metrics().snapshot();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  RingParams rp;
  rp.ports = static_cast<int>(flags.geti("ports", rp.ports));
  rp.packets = static_cast<int>(flags.geti("packets", rp.packets));
  rp.hops = static_cast<int>(flags.geti("hops", rp.hops));
  rp.timer_ticks = static_cast<int>(flags.geti("timer-ticks", rp.timer_ticks));
  const TimeNs duration = flags.geti("duration-ms", 100) * kMsec;

  bench::print_header(
      "Event-engine microbenchmark",
      "Timing wheel + typed events + packet pool vs the seed\n"
      "std::priority_queue/std::function scheduler on an identical\n"
      "port-ring event mix, plus a Fig-12-style ClusterSim run.");

  const auto legacy = run_legacy(rp);
  const auto wheel = run_wheel(rp);
  const double speedup = wheel.events_per_sec() / legacy.events_per_sec();

  std::printf("%-22s %12s %10s %14s %9s\n", "engine", "events", "wall_ms",
              "events/sec", "speedup");
  std::printf("%-22s %12llu %10.1f %13.3gM %8.2fx\n", "legacy heap+closures",
              static_cast<unsigned long long>(legacy.events),
              legacy.wall_s * 1e3, legacy.events_per_sec() / 1e6, 1.0);
  std::printf("%-22s %12llu %10.1f %13.3gM %8.2fx\n", "wheel+typed+pool",
              static_cast<unsigned long long>(wheel.events),
              wheel.wall_s * 1e3, wheel.events_per_sec() / 1e6, speedup);
  if (legacy.delivered != wheel.delivered) {
    std::printf("WARNING: delivered mismatch (legacy=%llu wheel=%llu)\n",
                static_cast<unsigned long long>(legacy.delivered),
                static_cast<unsigned long long>(wheel.delivered));
  }

  const auto cl = run_cluster(duration);
  std::printf("cluster (Fig-12 style, %lld ms sim): %llu events in %.2f s "
              "(%.3gM events/s), %llu packets, pool capacity %llu "
              "(peak live %lld), %llu std::function events\n",
              static_cast<long long>(duration / kMsec),
              static_cast<unsigned long long>(cl.events), cl.wall_s,
              cl.events / cl.wall_s / 1e6,
              static_cast<unsigned long long>(cl.packets),
              static_cast<unsigned long long>(cl.pool_capacity),
              static_cast<long long>(cl.pool_peak_live),
              static_cast<unsigned long long>(cl.callback_events));

  bench::JsonObject ring;
  ring.put("ports", rp.ports)
      .put("packets", rp.packets)
      .put("hops", rp.hops)
      .put("timer_ticks", rp.timer_ticks);
  bench::JsonObject cluster_json;
  cluster_json.put("sim_ms", static_cast<std::int64_t>(duration / kMsec))
      .put("events", cl.events)
      .put("wall_s", cl.wall_s)
      .put("events_per_sec", cl.events / cl.wall_s)
      .put("packets", cl.packets)
      .put("pool_capacity", cl.pool_capacity)
      .put("pool_peak_live", static_cast<std::int64_t>(cl.pool_peak_live))
      .put("callback_events", cl.callback_events);
  bench::JsonObject out;
  out.put("bench", std::string("event_engine"))
      .put("ring", ring)
      .put("legacy_events", legacy.events)
      .put("legacy_wall_s", legacy.wall_s)
      .put("legacy_events_per_sec", legacy.events_per_sec())
      .put("wheel_events", wheel.events)
      .put("wheel_wall_s", wheel.wall_s)
      .put("wheel_events_per_sec", wheel.events_per_sec())
      .put("speedup", speedup)
      .put("cluster", cluster_json);
  bench::write_json_file("BENCH_event_engine.json", out);

  obs::RunManifest m;
  m.bench = "event_engine";
  m.seed = 42;
  m.topology = {{"pods", 1},
                {"racks_per_pod", 2},
                {"servers_per_rack", 8},
                {"vm_slots_per_server", 4}};
  m.params = {{"sim_ms", std::to_string(duration / kMsec)},
              {"ring_ports", std::to_string(rp.ports)},
              {"ring_packets", std::to_string(rp.packets)},
              {"metrics", "cluster phase (Silo)"}};
  bench::maybe_write_manifest(flags, m, cl.metrics);
  return speedup >= 2.0 ? 0 : 1;  // acceptance gate: >=2x over the seed engine
}
