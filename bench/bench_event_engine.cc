// Event-engine microbenchmark: timing wheel + typed events + packet pool
// vs the seed scheduler (std::priority_queue of std::function closures
// capturing Packet by value).
//
// Both engines drive the identical workload — a ring of output-queued
// switch ports forwarding a fixed population of packets for a fixed hop
// count, plus periodic pacer-gate-style timers — so the processed-event
// counts match and events/second is an apples-to-apples comparison. A
// second phase times a real Fig-12-style ClusterSim run on the new engine.
//
// A third phase scales the parallel island engine on a 32K-server fabric:
// one row per --threads value, with a machine-independent record (islands,
// rounds, busiest-island share) alongside wall-clock events/s. All rows
// must process identical event and message counts (the determinism matrix
// at scale); the >=3x speedup gate applies only when the machine actually
// has >=8 hardware threads.
//
// Writes BENCH_event_engine.json next to the binary's working directory.
//
// Flags: --ports=16 --packets=2000 --hops=512 --timer-ticks=2000
//        --duration-ms=100 (cluster phase)
//        --par-pods=32 --par-racks=32 --par-servers=32 (32768 servers)
//        --par-duration-ms=2 --threads=1,2,4,8
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
// hardware_concurrency() gates the parallel speedup acceptance check; no
// threads are created here — the executor lives in src/par.
#include <thread>  // silo-lint: allow(banned-include)
#include <vector>

#include "bench/bench_util.h"
#include "par/thread_executor.h"
#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "sim/port.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

using namespace silo;

namespace {

// ---------------------------------------------------------------------------
// Seed-engine replica: binary heap of type-erased closures, ties broken by
// insertion sequence. This is the scheduler the repository started with,
// kept here verbatim-in-spirit as the baseline.
class LegacyEngine {
 public:
  struct Ev {
    TimeNs time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  TimeNs now() const { return now_; }
  std::uint64_t processed() const { return processed_; }

  void at(TimeNs t, std::function<void()> fn) {
    pq_.push(Ev{t < now_ ? now_ : t, seq_++, std::move(fn)});
  }
  void after(TimeNs delay, std::function<void()> fn) {
    at(now_ + delay, std::move(fn));
  }

  void run_all() {
    while (!pq_.empty()) {
      Ev ev = pq_.top();  // copy, as the seed engine did
      pq_.pop();
      now_ = ev.time;
      ++processed_;
      ev.fn();
    }
  }

 private:
  std::priority_queue<Ev, std::vector<Ev>, Later> pq_;
  TimeNs now_ {};
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

// Seed-style switch port: FIFO drop-tail, Packet carried by value inside
// the tx-done and deliver closures (two heap-allocated std::functions and
// two 80-byte copies per hop — the cost the typed engine removes).
class LegacyPort {
 public:
  using DeliverFn = std::function<void(sim::Packet)>;

  LegacyPort(LegacyEngine& ev, sim::PortConfig cfg, DeliverFn deliver)
      : ev_(ev), cfg_(cfg), deliver_(std::move(deliver)) {}

  void enqueue(sim::Packet p) {
    if (queued_bytes_ + p.wire_bytes > cfg_.buffer) {
      ++drops_;
      return;
    }
    queued_bytes_ += p.wire_bytes;
    queue_[static_cast<int>(p.priority)].push_back(std::move(p));
    if (!busy_) start_tx();
  }

  std::int64_t tx_packets() const { return tx_packets_; }

 private:
  void start_tx() {
    auto& q = !queue_[0].empty() ? queue_[0] : queue_[1];
    if (q.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    sim::Packet p = q.front();
    q.pop_front();
    queued_bytes_ -= p.wire_bytes;
    const TimeNs tx = transmission_time(p.wire_bytes + kEthOverhead, cfg_.rate);
    ev_.after(tx, [this, p] {
      ++tx_packets_;
      ev_.after(cfg_.link_delay, [this, p] { deliver_(p); });
      start_tx();
    });
  }

  LegacyEngine& ev_;
  sim::PortConfig cfg_;
  DeliverFn deliver_;
  std::deque<sim::Packet> queue_[2];
  Bytes queued_bytes_ {};
  bool busy_ = false;
  std::int64_t tx_packets_ = 0;
  std::int64_t drops_ = 0;
};

struct RingParams {
  int ports = 16;
  int packets = 2000;
  int hops = 512;
  int timer_ticks = 2000;  ///< per-port 50 us periodic gate-open timers
};

sim::PortConfig ring_port_config() {
  sim::PortConfig cfg;
  cfg.rate = 10 * kGbps;
  cfg.buffer = 64 * kMB;  // sized so the ring never drops
  cfg.link_delay = TimeNs{500};
  return cfg;
}

sim::Packet ring_packet(int j, int hops) {
  sim::Packet p;
  p.id = static_cast<std::uint64_t>(j);
  p.payload = Bytes{1460};
  p.wire_bytes = Bytes{1500};
  // The 8-bit `hop` field wraps at 256, so the ring counts hops down in
  // `remaining` (int64, unused by non-pFabric ports).
  p.remaining = hops;
  return p;
}

struct EngineResult {
  std::uint64_t events = 0;
  double wall_s = 0;
  std::uint64_t delivered = 0;  ///< packets that completed all hops
  double events_per_sec() const { return events / wall_s; }
};

EngineResult run_legacy(const RingParams& rp) {
  LegacyEngine ev;
  std::vector<std::unique_ptr<LegacyPort>> ports(rp.ports);
  std::uint64_t done = 0;
  for (int i = 0; i < rp.ports; ++i) {
    ports[i] = std::make_unique<LegacyPort>(
        ev, ring_port_config(), [&, i](sim::Packet p) {
          if (--p.remaining > 0) {
            ports[(i + 1) % rp.ports]->enqueue(std::move(p));
          } else {
            ++done;
          }
        });
  }
  for (int j = 0; j < rp.packets; ++j) {
    ev.at(TimeNs{j * 737}, [&, j] {
      ports[j % rp.ports]->enqueue(ring_packet(j, rp.hops));
    });
  }
  for (int i = 0; i < rp.ports; ++i) {
    auto tick = std::make_shared<std::function<void(int)>>();
    *tick = [&ev, tick](int remaining) {
      if (remaining > 0) {
        ev.after(50 * kUsec, [tick, remaining] { (*tick)(remaining - 1); });
      }
    };
    ev.after(50 * kUsec, [tick, rp] { (*tick)(rp.timer_ticks - 1); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  ev.run_all();
  const auto t1 = std::chrono::steady_clock::now();
  return {ev.processed(), std::chrono::duration<double>(t1 - t0).count(),
          done};
}

EngineResult run_wheel(const RingParams& rp) {
  sim::EventQueue ev;
  std::vector<std::unique_ptr<sim::SwitchPortSim>> ports(rp.ports);
  std::uint64_t done = 0;
  for (int i = 0; i < rp.ports; ++i) {
    ports[i] = std::make_unique<sim::SwitchPortSim>(
        ev, ring_port_config(), [&, i](sim::PacketHandle h) {
          sim::Packet& p = ev.pool().get(h);
          if (--p.remaining > 0) {
            ports[(i + 1) % rp.ports]->enqueue(h);
          } else {
            ev.pool().free(h);
            ++done;
          }
        });
  }
  for (int j = 0; j < rp.packets; ++j) {
    // Injection itself stays a cold-path callback (as drivers do); the per
    // hop traffic below is all typed events.
    ev.at(TimeNs{j * 737}, [&, j] {
      ports[j % rp.ports]->enqueue(ev.pool().clone(ring_packet(j, rp.hops)));
    });
  }
  struct Ticker {
    sim::EventQueue& ev;
    int remaining;
    static void fire(void* self, std::uint32_t) {
      auto* t = static_cast<Ticker*>(self);
      if (t->remaining-- > 0) t->ev.raw_after(50 * kUsec, &Ticker::fire, t);
    }
  };
  // remaining = ticks - 1: the initial raw_after below is tick #1.
  std::vector<Ticker> tickers(rp.ports, Ticker{ev, rp.timer_ticks - 1});
  for (auto& t : tickers) ev.raw_after(50 * kUsec, &Ticker::fire, &t);

  const auto t0 = std::chrono::steady_clock::now();
  ev.run_all();
  const auto t1 = std::chrono::steady_clock::now();
  return {ev.processed(), std::chrono::duration<double>(t1 - t0).count(),
          done};
}

// ---------------------------------------------------------------------------
// Phase 2: a real Fig-12-style cluster run on the production engine —
// OLDI bursts plus all-to-all bulk through the full host/pacer/fabric
// stack, reporting end-to-end simulator throughput and pool behavior.
struct ClusterResult {
  std::uint64_t events = 0;
  double wall_s = 0;
  std::uint64_t packets = 0;
  std::uint64_t pool_capacity = 0;
  std::int64_t pool_peak_live = 0;
  std::uint64_t callback_events = 0;
  std::vector<obs::MetricSample> metrics;  ///< end-of-run snapshot
};

ClusterResult run_cluster(TimeNs duration) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 2;
  cfg.topo.servers_per_rack = 8;
  cfg.topo.vm_slots_per_server = 4;
  cfg.scheme = sim::Scheme::kSilo;
  sim::ClusterSim cluster(cfg);

  TenantRequest a;
  a.num_vms = 18;
  a.tenant_class = TenantClass::kDelaySensitive;
  a.guarantee = {RateBps{0.3e9}, 15 * kKB, 1 * kMsec, 1 * kGbps};
  const auto ta = cluster.add_tenant(a);
  TenantRequest b;
  b.num_vms = 8;
  b.tenant_class = TenantClass::kBandwidthOnly;
  b.guarantee = {RateBps{1e9}, Bytes{1500}, TimeNs{0}, RateBps{1e9}};
  const auto tb = cluster.add_tenant(b);
  if (!ta || !tb) return {};

  workload::BurstDriver::Config bc;
  bc.receiver = 0;
  bc.message_size = 15 * kKB;
  bc.epochs_per_sec = 2000;
  workload::BurstDriver burst(cluster, *ta, a.num_vms, bc, 42);
  workload::BulkDriver bulk(cluster, *tb, workload::all_to_all(b.num_vms),
                            64 * kKB);
  burst.start(duration);
  bulk.start(duration);

  const auto t0 = std::chrono::steady_clock::now();
  cluster.run_until(duration);
  const auto t1 = std::chrono::steady_clock::now();

  ClusterResult r;
  r.events = cluster.events().processed();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.packets = static_cast<std::uint64_t>(cluster.events().pool().total_allocs());
  r.pool_capacity = cluster.events().pool().capacity();
  r.pool_peak_live = cluster.events().pool().peak_live();
  r.callback_events = cluster.events().callback_events();
  r.metrics = cluster.metrics().snapshot();
  return r;
}

// ---------------------------------------------------------------------------
// Phase 3: parallel island engine at fleet scale. Every rack runs a local
// all-to-all bulk tenant (one island per rack, infinite lookahead between
// unrelated racks) and each adjacent pod pair shares one crossing tenant,
// so the shared aggregation queues become dedicated islands synchronized
// by conservative windows.
struct ParallelParams {
  int pods = 32;
  int racks_per_pod = 32;
  int servers_per_rack = 32;
  TimeNs duration = 2 * kMsec;
};

struct ParallelRow {
  int threads = 0;
  std::uint64_t events = 0;
  double wall_s = 0;
  std::int64_t completed = 0;
  std::int64_t rounds = 0;
  int islands = 0;
  int crossings = 0;
  double busiest_share = 0;  ///< events of the hottest island / total
  double events_per_sec() const { return events / wall_s; }
};

ParallelRow run_parallel_cluster(const ParallelParams& pp, int threads) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = pp.pods;
  cfg.topo.racks_per_pod = pp.racks_per_pod;
  cfg.topo.servers_per_rack = pp.servers_per_rack;
  cfg.topo.vm_slots_per_server = 2;
  cfg.scheme = sim::Scheme::kTcp;
  cfg.parallel.enabled = true;
  sim::ClusterSim cluster(cfg);
  std::unique_ptr<par::ThreadPoolExecutor> pool;
  if (threads >= 1) {
    pool = std::make_unique<par::ThreadPoolExecutor>(threads);
    cluster.set_island_executor(pool.get());
  }

  TenantRequest quad;
  quad.num_vms = 4;
  quad.tenant_class = TenantClass::kBandwidthOnly;
  quad.guarantee = {RateBps{1e9}, Bytes{1500}, TimeNs{0}, RateBps{1e9}};
  std::vector<std::unique_ptr<workload::BulkDriver>> drivers;
  const int racks = pp.pods * pp.racks_per_pod;
  drivers.reserve(static_cast<std::size_t>(racks + pp.pods));
  for (int r = 0; r < racks; ++r) {
    const int base = r * pp.servers_per_rack;
    const int t = cluster.add_tenant_pinned(
        quad, {base, base + 1, base + 2, base + 3});
    drivers.push_back(std::make_unique<workload::BulkDriver>(
        cluster, t, workload::all_to_all(4), 64 * kKB,
        static_cast<std::uint64_t>(100 + r)));
  }
  // Disjoint pod pairs, two crossing tenants per pair from different rack
  // groups: each pair's aggregation queues are shared by two distinct
  // islands, so they become dedicated islands and every window round has
  // real cross-island traffic to synchronize. (A single chain of spanning
  // tenants would union everything into one island and never window.)
  TenantRequest pair = quad;
  pair.num_vms = 2;
  const int pod_servers = pp.racks_per_pod * pp.servers_per_rack;
  for (int p = 0; p + 1 < pp.pods; p += 2) {
    for (int g = 0; g < 2 && g < pp.racks_per_pod; ++g) {
      const int off = g * pp.servers_per_rack + 4 % pp.servers_per_rack;
      const int t = cluster.add_tenant_pinned(
          pair, {p * pod_servers + off, (p + 1) * pod_servers + off});
      drivers.push_back(std::make_unique<workload::BulkDriver>(
          cluster, t, workload::all_to_all(2), 64 * kKB,
          static_cast<std::uint64_t>(7000 + 2 * p + g)));
    }
  }
  for (auto& d : drivers) d->start(pp.duration);

  const auto t0 = std::chrono::steady_clock::now();
  cluster.run_until(pp.duration);
  const auto t1 = std::chrono::steady_clock::now();

  ParallelRow row;
  row.threads = threads;
  row.events = cluster.total_processed();
  row.wall_s = std::chrono::duration<double>(t1 - t0).count();
  row.completed = cluster.total_completed_messages();
  row.rounds = cluster.parallel_rounds();
  row.islands = cluster.num_islands();
  row.crossings = cluster.partition().crossing_edges;
  std::uint64_t busiest = 0;
  for (int i = 0; i < row.islands; ++i)
    busiest = std::max(busiest, cluster.island_processed(i));
  row.busiest_share =
      row.events ? static_cast<double>(busiest) / static_cast<double>(row.events)
                 : 0.0;
  return row;
}

std::vector<int> parse_thread_list(const std::string& spec) {
  std::vector<int> out;
  int cur = -1;
  for (const char c : spec) {
    if (c >= '0' && c <= '9') {
      cur = (cur < 0 ? 0 : cur * 10) + (c - '0');
    } else if (cur >= 0) {
      out.push_back(cur);
      cur = -1;
    }
  }
  if (cur >= 0) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  RingParams rp;
  rp.ports = static_cast<int>(flags.geti("ports", rp.ports));
  rp.packets = static_cast<int>(flags.geti("packets", rp.packets));
  rp.hops = static_cast<int>(flags.geti("hops", rp.hops));
  rp.timer_ticks = static_cast<int>(flags.geti("timer-ticks", rp.timer_ticks));
  const TimeNs duration = flags.geti("duration-ms", 100) * kMsec;

  bench::print_header(
      "Event-engine microbenchmark",
      "Timing wheel + typed events + packet pool vs the seed\n"
      "std::priority_queue/std::function scheduler on an identical\n"
      "port-ring event mix, plus a Fig-12-style ClusterSim run.");

  const auto legacy = run_legacy(rp);
  const auto wheel = run_wheel(rp);
  const double speedup = wheel.events_per_sec() / legacy.events_per_sec();

  std::printf("%-22s %12s %10s %14s %9s\n", "engine", "events", "wall_ms",
              "events/sec", "speedup");
  std::printf("%-22s %12llu %10.1f %13.3gM %8.2fx\n", "legacy heap+closures",
              static_cast<unsigned long long>(legacy.events),
              legacy.wall_s * 1e3, legacy.events_per_sec() / 1e6, 1.0);
  std::printf("%-22s %12llu %10.1f %13.3gM %8.2fx\n", "wheel+typed+pool",
              static_cast<unsigned long long>(wheel.events),
              wheel.wall_s * 1e3, wheel.events_per_sec() / 1e6, speedup);
  if (legacy.delivered != wheel.delivered) {
    std::printf("WARNING: delivered mismatch (legacy=%llu wheel=%llu)\n",
                static_cast<unsigned long long>(legacy.delivered),
                static_cast<unsigned long long>(wheel.delivered));
  }

  const auto cl = run_cluster(duration);
  std::printf("cluster (Fig-12 style, %lld ms sim): %llu events in %.2f s "
              "(%.3gM events/s), %llu packets, pool capacity %llu "
              "(peak live %lld), %llu std::function events\n",
              static_cast<long long>(duration / kMsec),
              static_cast<unsigned long long>(cl.events), cl.wall_s,
              cl.events / cl.wall_s / 1e6,
              static_cast<unsigned long long>(cl.packets),
              static_cast<unsigned long long>(cl.pool_capacity),
              static_cast<long long>(cl.pool_peak_live),
              static_cast<unsigned long long>(cl.callback_events));

  // ------------------------------------------------------- parallel phase
  ParallelParams pp;
  pp.pods = static_cast<int>(flags.geti("par-pods", pp.pods));
  pp.racks_per_pod = static_cast<int>(flags.geti("par-racks", pp.racks_per_pod));
  pp.servers_per_rack =
      static_cast<int>(flags.geti("par-servers", pp.servers_per_rack));
  pp.duration = flags.geti("par-duration-ms", 2) * kMsec;
  const std::vector<int> thread_list =
      parse_thread_list(flags.gets("threads", "1,2,4,8"));
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("\nparallel islands (%d pods x %d racks x %d servers = %d "
              "servers, %lld ms sim, %u hw threads)\n",
              pp.pods, pp.racks_per_pod, pp.servers_per_rack,
              pp.pods * pp.racks_per_pod * pp.servers_per_rack,
              static_cast<long long>(pp.duration / kMsec), hw);
  std::printf("%8s %12s %10s %14s %9s %8s %8s %14s\n", "threads", "events",
              "wall_ms", "events/sec", "speedup", "islands", "rounds",
              "busiest_share");
  std::vector<ParallelRow> rows;
  rows.reserve(thread_list.size());
  bool rows_identical = true;
  double base_eps = 0;
  for (const int t : thread_list) {
    rows.push_back(run_parallel_cluster(pp, t));
    const ParallelRow& row = rows.back();
    if (row.events != rows.front().events ||
        row.completed != rows.front().completed)
      rows_identical = false;
    if (rows.size() == 1) base_eps = row.events_per_sec();
    std::printf("%8d %12llu %10.1f %13.3gM %8.2fx %8d %8lld %13.1f%%\n",
                row.threads, static_cast<unsigned long long>(row.events),
                row.wall_s * 1e3, row.events_per_sec() / 1e6,
                row.events_per_sec() / base_eps, row.islands,
                static_cast<long long>(row.rounds), row.busiest_share * 100);
  }
  if (!rows_identical)
    std::printf("WARNING: rows disagree on events/completed — parallel "
                "determinism broken at scale\n");

  // The >=3x gate needs 8 real cores; on smaller machines the run still
  // records the machine-independent evidence (identical event counts, the
  // island/round structure, and the busiest-island share that bounds the
  // achievable speedup) and the gate is reported as skipped.
  double par_speedup = 0;
  const ParallelRow* r1 = nullptr;
  const ParallelRow* r8 = nullptr;
  for (const auto& row : rows) {
    if (row.threads == 1) r1 = &row;
    if (row.threads == 8) r8 = &row;
  }
  if (r1 && r8) par_speedup = r8->events_per_sec() / r1->events_per_sec();
  const bool par_gate_applies = hw >= 8 && r1 != nullptr && r8 != nullptr;
  const bool par_gate_ok = !par_gate_applies || par_speedup >= 3.0;
  if (r1 && r8)
    std::printf("parallel speedup 8t/1t: %.2fx (gate %s: need >=3x on >=8 "
                "hw threads, have %u)\n",
                par_speedup,
                par_gate_applies ? (par_gate_ok ? "PASS" : "FAIL") : "skipped",
                hw);

  bench::JsonObject ring;
  ring.put("ports", rp.ports)
      .put("packets", rp.packets)
      .put("hops", rp.hops)
      .put("timer_ticks", rp.timer_ticks);
  bench::JsonObject cluster_json;
  cluster_json.put("sim_ms", static_cast<std::int64_t>(duration / kMsec))
      .put("events", cl.events)
      .put("wall_s", cl.wall_s)
      .put("events_per_sec", cl.events / cl.wall_s)
      .put("packets", cl.packets)
      .put("pool_capacity", cl.pool_capacity)
      .put("pool_peak_live", static_cast<std::int64_t>(cl.pool_peak_live))
      .put("callback_events", cl.callback_events);
  bench::JsonObject par_json;
  par_json.put("pods", pp.pods)
      .put("racks_per_pod", pp.racks_per_pod)
      .put("servers_per_rack", pp.servers_per_rack)
      .put("servers", pp.pods * pp.racks_per_pod * pp.servers_per_rack)
      .put("sim_ms", static_cast<std::int64_t>(pp.duration / kMsec))
      .put("hw_threads", static_cast<std::int64_t>(hw))
      .put("rows_identical", rows_identical)
      .put("speedup_8t_over_1t", par_speedup)
      .put("gate_applies", par_gate_applies)
      .put("gate_ok", par_gate_ok);
  std::vector<bench::JsonObject> row_json;
  row_json.reserve(rows.size());
  for (const auto& row : rows) {
    bench::JsonObject j;
    j.put("threads", row.threads)
        .put("events", row.events)
        .put("wall_s", row.wall_s)
        .put("events_per_sec", row.events_per_sec())
        .put("completed_messages", row.completed)
        .put("islands", row.islands)
        .put("rounds", row.rounds)
        .put("crossing_edges", row.crossings)
        .put("busiest_island_share", row.busiest_share);
    row_json.push_back(j);
  }
  par_json.put("rows", row_json);

  bench::JsonObject out;
  out.put("bench", std::string("event_engine"))
      .put("ring", ring)
      .put("legacy_events", legacy.events)
      .put("legacy_wall_s", legacy.wall_s)
      .put("legacy_events_per_sec", legacy.events_per_sec())
      .put("wheel_events", wheel.events)
      .put("wheel_wall_s", wheel.wall_s)
      .put("wheel_events_per_sec", wheel.events_per_sec())
      .put("speedup", speedup)
      .put("cluster", cluster_json)
      .put("parallel", par_json);
  bench::write_json_file("BENCH_event_engine.json", out);

  obs::RunManifest m;
  m.bench = "event_engine";
  m.seed = 42;
  m.topology = {{"pods", 1},
                {"racks_per_pod", 2},
                {"servers_per_rack", 8},
                {"vm_slots_per_server", 4}};
  m.params = {{"sim_ms", std::to_string(duration / kMsec)},
              {"ring_ports", std::to_string(rp.ports)},
              {"ring_packets", std::to_string(rp.packets)},
              {"metrics", "cluster phase (Silo)"}};
  bench::maybe_write_manifest(flags, m, cl.metrics);
  // Acceptance gates: >=2x over the seed engine (tunable for sanitizer
  // builds, where relative wall clock is meaningless but the determinism
  // gates still bite); identical event/message counts across every thread
  // row; >=3x parallel speedup when the machine has the cores to show it.
  const double ring_gate = flags.get("ring-gate-min", 2.0);
  return (speedup >= ring_gate && rows_identical && par_gate_ok) ? 0 : 1;
}
