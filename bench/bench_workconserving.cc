// Work-conserving headroom lending: utilization recovered from idle
// guaranteed reservations vs. the guarantee-violation rate it costs
// (docs/WORKCONSERVING.md).
//
// One antagonistic-churn workload, three runs:
//   1. Silo, lending off — the reference. Run twice; the delivered-packet
//      trace checksums must be bit-identical (the lending-off path
//      schedules zero lease events) and every pacer.lease.* counter zero.
//   2. Silo, lending on — the owner's on/off duty cycle forces the lender
//      through continuous grant -> revoke -> re-grant churn. Gates: the
//      delay-guaranteed owner's late-message rate stays exactly 0 and the
//      borrower recovers >= 30% of the owner's stranded reservation.
//   3. TCP, no pacing, no priority — the SWP-style work-conserving
//      baseline. It recovers utilization too, but with nothing protecting
//      the owner's §4.1 bound; its violation rate is reported for the
//      comparison table (no gate — it is *expected* to be late).
//
// The workload is fully deterministic (fixed schedules, no RNG): the owner
// (delay-sensitive, B = 300 Mbps, S = 15 KB, d = 1300 us) bursts one
// 15 KB message every 500 us during alternating 4 ms phases and sleeps in
// between; the borrower (bandwidth-only, B = 500 Mbps) keeps four 64 KB
// message chains outstanding on a colocated VM pair. Server links are
// 1 Gbps, so the borrower's lease actually displaces owner headroom on the
// shared uplink — the interesting regime for the safety argument.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/cluster.h"
#include "util/stats.h"

using namespace silo;

namespace {

struct WorkloadSpec {
  TimeNs horizon {};        ///< run length; sends stop 5 ms before it
  TimeNs phase = 4 * kMsec; ///< owner on/off phase length
  TimeNs burst_gap = 500 * kUsec;  ///< owner inter-message gap while on
  Bytes owner_msg = 15 * kKB;      ///< = S, rides the burst allowance
  Bytes borrower_msg = 64 * kKB;
  int borrower_chains = 4;  ///< closed-loop chains kept outstanding
};

struct RunStats {
  std::int64_t owner_completed = 0;
  std::int64_t owner_violations = 0;
  std::int64_t owner_bytes = 0;
  std::int64_t borrower_bytes = 0;
  std::uint64_t trace_checksum = 0;
  std::int64_t trace_packets = 0;
  std::int64_t lease_granted = 0, lease_revoked = 0, lease_expired = 0;
  std::int64_t lease_applied = 0, lease_active_end = 0;
  std::vector<obs::MetricSample> metrics;
};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
}

sim::ClusterConfig make_config(sim::Scheme scheme, bool lending) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 2;
  cfg.topo.vm_slots_per_server = 4;
  cfg.topo.server_link_rate = 1 * kGbps;
  cfg.scheme = scheme;
  cfg.lending.enabled = lending;
  cfg.lending.epoch = 500 * kUsec;
  return cfg;
}

RunStats run_case(sim::Scheme scheme, bool lending, const WorkloadSpec& w) {
  sim::ClusterSim sim(make_config(scheme, lending));

  TenantRequest owner_req;
  owner_req.num_vms = 2;
  owner_req.tenant_class = TenantClass::kDelaySensitive;
  owner_req.guarantee = {300 * kMbps, 15 * kKB, 1300 * kUsec, 1 * kGbps};
  const int owner = sim.add_tenant_pinned(owner_req, {0, 1});

  TenantRequest borrower_req;
  borrower_req.num_vms = 2;
  borrower_req.tenant_class = TenantClass::kBandwidthOnly;
  borrower_req.guarantee = {500 * kMbps, 15 * kKB, TimeNs{0}, 1 * kGbps};
  const int borrower = sim.add_tenant_pinned(borrower_req, {0, 1});

  RunStats r;
  r.trace_checksum = kFnvOffset;
  sim.set_packet_tap([&](const sim::Packet& p) {
    ++r.trace_packets;
    mix(r.trace_checksum, static_cast<std::uint64_t>(sim.events().now()));
    mix(r.trace_checksum, static_cast<std::uint64_t>(p.flow_id));
    mix(r.trace_checksum, static_cast<std::uint64_t>(p.seq));
    mix(r.trace_checksum, static_cast<std::uint64_t>(p.ack_seq));
    mix(r.trace_checksum, static_cast<std::uint64_t>(p.payload));
    mix(r.trace_checksum, (p.is_ack ? 1u : 0u) | (p.ecn_echo ? 2u : 0u) |
                              (p.ecn_marked ? 4u : 0u));
  });

  const TimeNs stop = w.horizon - 5 * kMsec;

  // Owner: bursts during even phases, silent during odd ones. The flapping
  // demand is the antagonistic churn — every phase edge forces the lender
  // to re-grant or reclaim within an epoch.
  for (TimeNs ps {0}; ps < stop; ps = ps + 2 * w.phase) {
    for (TimeNs t = ps; t < ps + w.phase && t < stop; t = t + w.burst_gap) {
      sim.events().at(t, [&sim, owner, &w] {
        sim.send_message(owner, 0, 1, w.owner_msg);
      });
    }
  }

  // Borrower: closed-loop chains on one pair keep its backlog (and so the
  // lender's demand signal) continuously nonzero.
  std::function<void()> pump = [&] {
    if (sim.events().now() >= stop) return;
    sim.send_message(borrower, 0, 1, w.borrower_msg,
                     [&pump](const sim::ClusterSim::MessageResult&) {
                       pump();
                     });
  };
  for (int c = 0; c < w.borrower_chains; ++c) sim.events().at(TimeNs{0}, pump);

  sim.run_until(w.horizon);

  r.owner_completed = sim.tenant_counters(owner).completed;
  r.owner_violations = sim.tenant_counters(owner).slo_violations;
  r.owner_bytes = sim.pair_delivered_bytes(owner, 0, 1);
  r.borrower_bytes = sim.pair_delivered_bytes(borrower, 0, 1);
  const auto& m = sim.metrics();
  r.lease_granted = m.value("pacer.lease.granted");
  r.lease_revoked = m.value("pacer.lease.revoked");
  r.lease_expired = m.value("pacer.lease.expired");
  r.lease_applied = m.value("pacer.lease.applied");
  r.lease_active_end = m.value("pacer.lease.active");
  r.metrics = m.snapshot();
  return r;
}

double mbps(std::int64_t bytes, TimeNs horizon) {
  return static_cast<double>(bytes) * 8e3 /
         static_cast<double>(horizon.count());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("quick");

  WorkloadSpec w;
  w.horizon = TimeNs{flags.geti("horizon-ms", quick ? 60 : 200) * kMsec};

  bench::print_header(
      "bench_workconserving",
      "headroom lending: recovered utilization vs guarantee violations\n"
      "owner: delay-SLO bursts on a 50% duty cycle; borrower: backlogged\n"
      "colocated streams; 1 Gbps links; SWP-style TCP baseline");
  std::printf("horizon: %lld ms%s\n\n",
              static_cast<long long>(w.horizon.count() / kMsec.count()),
              quick ? " (--quick)" : "");

  const auto off = run_case(sim::Scheme::kSilo, false, w);
  const auto off2 = run_case(sim::Scheme::kSilo, false, w);
  const auto on = run_case(sim::Scheme::kSilo, true, w);
  const auto tcp = run_case(sim::Scheme::kTcp, false, w);

  // Gate 1: lending off is bit-identical across executions and lease-free.
  const bool determinism_ok =
      off.trace_checksum == off2.trace_checksum &&
      off.trace_packets == off2.trace_packets &&
      off.lease_granted == 0 && off.lease_applied == 0 &&
      off.lease_active_end == 0;

  // Gate 2: lending on never costs the owner its §4.1 bound, completes the
  // identical owner schedule, and actually exercised the churn machinery.
  const bool guarantee_ok =
      on.owner_violations == 0 && on.owner_completed > 0 &&
      on.owner_completed == off.owner_completed;
  const bool churn_ok =
      on.lease_granted >= 1 && on.lease_revoked + on.lease_expired >= 1;

  // Gate 3: the borrower recovers >= 30% of the stranded reservation
  // (owner's admitted B minus what the owner actually used).
  const double owner_used = mbps(on.owner_bytes, w.horizon);
  const double stranded = (300 * kMbps).bps() / 1e6 - owner_used;
  const double recovered =
      mbps(on.borrower_bytes, w.horizon) - mbps(off.borrower_bytes, w.horizon);
  const double recovered_fraction = stranded > 0 ? recovered / stranded : 0;
  const bool recovery_ok = recovered_fraction >= 0.30;

  const bool all_golden =
      determinism_ok && guarantee_ok && churn_ok && recovery_ok;

  TextTable table({"case", "owner msgs", "late", "late %", "borrower Mb/s",
                   "granted", "revoked+expired"});
  const auto row = [&](const char* name, const RunStats& r) {
    const double late_pct =
        r.owner_completed > 0 ? 100.0 * static_cast<double>(r.owner_violations) /
                                    static_cast<double>(r.owner_completed)
                              : 0;
    table.add_row({name, std::to_string(r.owner_completed),
                   std::to_string(r.owner_violations),
                   TextTable::fmt(late_pct, 2),
                   TextTable::fmt(mbps(r.borrower_bytes, w.horizon), 1),
                   std::to_string(r.lease_granted),
                   std::to_string(r.lease_revoked + r.lease_expired)});
  };
  row("silo lending off", off);
  row("silo lending on", on);
  row("tcp no-priority", tcp);
  std::printf("%s\n", table.to_string().c_str());

  std::printf("stranded %s Mb/s of the owner's 300 Mb/s reservation;\n"
              "lending recovered %s Mb/s for the borrower (%.0f%%, gate 30%%)\n",
              TextTable::fmt(stranded, 1).c_str(),
              TextTable::fmt(recovered, 1).c_str(), recovered_fraction * 100);
  std::printf("golden: %s (determinism %s, guarantee %s, churn %s, "
              "recovery %s)\n",
              all_golden ? "ok" : "FAIL", determinism_ok ? "ok" : "FAIL",
              guarantee_ok ? "ok" : "FAIL", churn_ok ? "ok" : "FAIL",
              recovery_ok ? "ok" : "FAIL");

  if (flags.has("json")) {
    const auto case_json = [&](const RunStats& r) {
      bench::JsonObject e;
      e.put("owner_completed", r.owner_completed)
          .put("owner_violations", r.owner_violations)
          .put("owner_mbps", mbps(r.owner_bytes, w.horizon))
          .put("borrower_mbps", mbps(r.borrower_bytes, w.horizon))
          .put("trace_checksum", r.trace_checksum)
          .put("trace_packets", r.trace_packets)
          .put("lease_granted", r.lease_granted)
          .put("lease_revoked", r.lease_revoked)
          .put("lease_expired", r.lease_expired)
          .put("lease_applied", r.lease_applied);
      return e;
    };
    bench::JsonObject json;
    json.put("bench", std::string("workconserving"))
        .put("horizon_ms", w.horizon.count() / kMsec.count())
        .put("lending_off", case_json(off))
        .put("lending_on", case_json(on))
        .put("tcp_baseline", case_json(tcp))
        .put("stranded_mbps", stranded)
        .put("recovered_mbps", recovered)
        .put("recovered_fraction", recovered_fraction)
        .put("determinism_ok", std::string(determinism_ok ? "true" : "false"))
        .put("guarantee_ok", std::string(guarantee_ok ? "true" : "false"))
        .put("churn_ok", std::string(churn_ok ? "true" : "false"))
        .put("recovery_ok", std::string(recovery_ok ? "true" : "false"))
        .put("all_golden", std::string(all_golden ? "true" : "false"));
    bench::write_json_file("BENCH_workconserving.json", json);
  }

  obs::RunManifest m;
  m.bench = "workconserving";
  m.seed = 0;  // fixed deterministic schedules, no RNG
  m.topology = {{"pods", 1},
                {"racks_per_pod", 1},
                {"servers_per_rack", 2},
                {"vm_slots_per_server", 4}};
  m.params = {{"horizon_ms",
               std::to_string(w.horizon.count() / kMsec.count())},
              {"lease_epoch_us", "500"},
              {"owner_phase_ms", "4"}};
  bench::maybe_write_manifest(flags, m, on.metrics);

  return all_golden ? 0 : 1;
}
