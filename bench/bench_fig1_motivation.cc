// Figure 1 (§2.1): CDF of memcached request latency with and without
// competing netperf traffic, on the five-server testbed under plain TCP.
// The paper reports 270 us at the 99th percentile in isolation vs 2.3 ms
// under contention (and 217 ms with timeouts at the 99.9th).
#include "bench/bench_util.h"
#include "bench/testbed_common.h"

using namespace silo;
using namespace silo::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  TestbedScenario alone;
  alone.scheme = sim::Scheme::kTcp;
  alone.with_bulk = false;
  alone.duration = TimeNs{static_cast<std::int64_t>(
      flags.get("duration-s", 0.6) * static_cast<double>(kSec))};
  alone.ops_per_sec = flags.get("ops-per-sec", 40000.0);

  TestbedScenario contended = alone;
  contended.with_bulk = true;

  print_header("Figure 1: memcached latency CDF, alone vs with netperf",
               "Five servers, six VMs each, plain TCP (no Silo).");

  const auto r_alone = run_testbed(alone);
  const auto r_cont = run_testbed(contended);

  TextTable table({"Percentile", "Alone (us)", "With netperf (us)", "Slowdown"});
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    const double a = r_alone.latency_us.percentile(p);
    const double c = r_cont.latency_us.percentile(p);
    table.add_row({TextTable::fmt(p, 1), TextTable::fmt(a, 0),
                   TextTable::fmt(c, 0), TextTable::fmt(c / a, 1) + "x"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nsamples: alone=%zu contended=%zu\n",
              r_alone.latency_us.count(), r_cont.latency_us.count());
  std::printf(
      "Paper reference: p99 270 us alone vs 2.3 ms contended (8.5x); at\n"
      "p99.9 contention causes TCP timeouts and ~217 ms spikes.\n");

  if (flags.has("json")) {
    JsonObject out;
    out.put("bench", std::string("fig1_motivation"))
        .put("duration_ms", static_cast<std::int64_t>(alone.duration / kMsec))
        .put("ops_per_sec", alone.ops_per_sec)
        .put("alone_p99_us", r_alone.latency_us.percentile(99))
        .put("contended_p99_us", r_cont.latency_us.percentile(99))
        .put("alone_samples", static_cast<std::int64_t>(r_alone.latency_us.count()))
        .put("contended_samples", static_cast<std::int64_t>(r_cont.latency_us.count()));
    write_json_file("BENCH_fig1_motivation.json", out);
  }

  obs::RunManifest m;
  m.bench = "fig1_motivation";
  m.seed = alone.seed;
  m.topology = testbed_topology();
  m.params = {{"duration_ms", std::to_string(alone.duration / kMsec)},
              {"ops_per_sec", TextTable::fmt(alone.ops_per_sec, 0)},
              {"metrics", "contended run (TCP, with netperf)"}};
  maybe_write_manifest(flags, m, r_cont.metrics);
  return 0;
}
