// Control-plane churn storm: admission/release/fail/restore throughput of
// the sharded incremental placement + pacer-config diff path versus the
// full-recompute reference, at 1K / 8K / 32K servers.
//
// Both modes run the *identical* seeded op sequence; the bench checks the
// correctness bar inline (placement decisions are bit-identical, and the
// incremental mode's drained PacerConfigDeltas, applied to per-server
// tables, reproduce the full server_config snapshots checksum-for-
// checksum) before reporting the speedup.
// With --restart-every=N (N > 0) a third, journal-attached run crashes the
// controller every N storm ops and rebuilds it from the serialized
// DeltaJournal, measuring recovery latency (journal replay + control-
// channel anti-entropy convergence over the agent fleet). Its decisions
// and configs must checksum-match the incremental run — a crash is
// invisible to the placement history.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/controller.h"
#include "sim/control_channel.h"
#include "sim/event_queue.h"
#include "util/rng.h"

using namespace silo;

namespace {

struct ScaleSpec {
  const char* name;
  int pods, racks_per_pod, servers_per_rack;
  int servers() const { return pods * racks_per_pod * servers_per_rack; }
};

constexpr ScaleSpec kScales[] = {
    {"1k", 5, 5, 40},
    {"8k", 10, 20, 40},
    {"32k", 16, 50, 40},
};

TenantRequest sample_request(Rng& rng) {
  TenantRequest req;
  req.num_vms = 2 + static_cast<int>(rng.uniform_int(0, 12));
  if (rng.uniform() < 0.5) {
    req.tenant_class = TenantClass::kDelaySensitive;
    req.guarantee = {300 * kMbps, 15 * kKB, 1300 * kUsec, 1 * kGbps};
  } else {
    req.tenant_class = TenantClass::kBandwidthOnly;
    req.guarantee = {500 * kMbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
  }
  return req;
}

struct StormResult {
  double storm_seconds = 0;
  std::int64_t ops = 0;
  std::int64_t admits = 0, releases = 0, fails = 0, restores = 0;
  std::int64_t deltas = 0, upserts = 0, removes = 0;
  std::uint64_t decision_checksum = 0;  ///< placements, in op order
  std::uint64_t config_checksum = 0;    ///< sampled server_config snapshots
  bool deltas_match_snapshots = true;   ///< incremental mode only
};

/// Run prefill + storm on one controller. The rng seed and op mix are
/// identical across modes, and decisions are too (verified via checksums),
/// so both controllers see the same op sequence.
StormResult run_storm(const topology::TopologyConfig& tcfg,
                      placement::AdmissionMode mode, std::int64_t prefill,
                      std::int64_t ops, std::uint64_t seed) {
  SiloController::Options opts;
  opts.admission_mode = mode;
  SiloController ctl(tcfg, opts);
  Rng rng(seed);
  StormResult r;

  const auto mix = [](std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  r.decision_checksum = 1469598103934665603ull;
  r.config_checksum = 1469598103934665603ull;
  const auto mix_handle = [&](const TenantHandle& handle) {
    mix(r.decision_checksum, static_cast<std::uint64_t>(handle.id));
    for (int s : handle.vm_to_server)
      mix(r.decision_checksum, static_cast<std::uint64_t>(s));
  };

  std::vector<TenantHandle> live;
  std::map<placement::TenantId, std::size_t> index_of;  // id -> live index
  const auto track = [&](const TenantHandle& handle) {
    index_of[handle.id] = live.size();
    live.push_back(handle);
  };
  const auto refresh_affected = [&](const RecoveryReport& report) {
    // Recovery re-places tenants: refresh exactly the touched handles so
    // later ops name current placements (O(affected log n), not O(live)).
    for (const auto id : report.affected) {
      const auto it = index_of.find(id);
      if (it != index_of.end())
        live[it->second].vm_to_server = ctl.tenant_placement(id);
    }
  };
  for (std::int64_t i = 0; i < prefill; ++i) {
    if (const auto handle = ctl.admit(sample_request(rng))) {
      track(*handle);
      mix_handle(*handle);
    }
  }
  // Hypervisor-side model: fold every drained delta into per-server
  // tables; applied state must equal the snapshots at the end.
  std::map<int, PacerConfigTable> fleet;
  std::vector<PacerConfigDelta> drained = ctl.drain_config_deltas();

  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t op = 0; op < ops; ++op) {
    const auto roll = rng.uniform_int(0, 9);
    if (roll < 4 || live.empty()) {
      ++r.admits;
      if (const auto handle = ctl.admit(sample_request(rng))) {
        track(*handle);
        mix_handle(*handle);
      }
    } else if (roll < 7) {
      ++r.releases;
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      ctl.release(live[i]);
      index_of.erase(live[i].id);
      live[i] = live.back();
      live.pop_back();
      if (i < live.size()) index_of[live[i].id] = i;
    } else {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const int anchor = live[i].vm_to_server.front();
      if (anchor < 0) continue;  // tenant currently unplaced; skip the op
      ++r.fails;
      ++r.restores;
      if (roll < 9) {
        refresh_affected(ctl.handle_server_failure(anchor));
        refresh_affected(ctl.restore_server(anchor));
      } else {
        const auto port = ctl.topo().server_down(anchor);
        refresh_affected(ctl.handle_link_failure(port));
        refresh_affected(ctl.restore_link(port));
      }
    }
    auto more = ctl.drain_config_deltas();  // protocol cost: inside the clock
    drained.insert(drained.end(), more.begin(), more.end());
  }
  const auto end = std::chrono::steady_clock::now();
  r.storm_seconds = std::chrono::duration<double>(end - start).count();
  r.ops = ops;

  for (const auto& delta : drained) fleet[delta.server].apply(delta);
  // Sample servers evenly for the snapshot checksum: exhaustive snapshots
  // at 32K in full-rescan mode would dwarf the storm itself.
  const int num_servers = ctl.topo().num_servers();
  const int stride = std::max(1, num_servers / 64);
  for (int s = 0; s < num_servers; s += stride) {
    const auto snapshot = ctl.server_config(s);
    const std::uint64_t snap_sum = pacer_config_checksum(snapshot);
    mix(r.config_checksum, static_cast<std::uint64_t>(s));
    mix(r.config_checksum, snap_sum);
    if (mode == placement::AdmissionMode::kIncremental) {
      const auto it = fleet.find(s);
      const std::uint64_t applied =
          it == fleet.end() ? pacer_config_checksum({}) : it->second.checksum();
      if (applied != snap_sum) r.deltas_match_snapshots = false;
    }
  }
  r.deltas = ctl.metrics().value("controller.diff.deltas");
  r.upserts = ctl.metrics().value("controller.diff.upserts");
  r.removes = ctl.metrics().value("controller.diff.removes");
  return r;
}

void mix_into(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
}

struct RestartResult {
  std::int64_t recoveries = 0;
  double recovery_seconds_total = 0;
  double recovery_seconds_max = 0;
  std::int64_t replayed_records = 0;  ///< journal records replayed, total
  std::int64_t journal_snapshots = 0;
  std::int64_t ae_rounds = 0;  ///< anti-entropy rounds across recoveries
  bool converged_ok = true;    ///< every recovery reached convergence
  std::uint64_t decision_checksum = 0;
  std::uint64_t config_checksum = 0;
  bool fleet_matches_snapshots = true;
};

/// The incremental storm again, but journal-attached, shipping every delta
/// through a (lossless, zero-delay) ControlChannel to a PacerAgentFleet,
/// and crashing + recovering the controller every `restart_every` ops. The
/// storm rng never sees the restarts, so decisions must checksum-match
/// run_storm's incremental run.
RestartResult run_restart_storm(const topology::TopologyConfig& tcfg,
                                std::int64_t prefill, std::int64_t ops,
                                std::uint64_t seed,
                                std::int64_t restart_every,
                                std::int64_t snapshot_every) {
  SiloController::Options opts;
  opts.admission_mode = placement::AdmissionMode::kIncremental;
  std::optional<SiloController> ctl;
  ctl.emplace(tcfg, opts);
  DeltaJournal journal;
  ctl->attach_journal(&journal, snapshot_every);

  sim::EventQueue events;
  sim::PacerAgentFleet fleet;
  sim::ChannelConfig ccfg;
  ccfg.delivery_delay = TimeNs{0};
  ccfg.delivery_jitter = TimeNs{0};
  sim::ControlChannel channel(events, fleet, ccfg);
  const auto ship_drained = [&] {
    channel.ship(ctl->drain_config_deltas());
    events.run_all();
  };

  Rng rng(seed);
  RestartResult r;
  r.decision_checksum = 1469598103934665603ull;
  r.config_checksum = 1469598103934665603ull;
  const auto mix_handle = [&](const TenantHandle& handle) {
    mix_into(r.decision_checksum, static_cast<std::uint64_t>(handle.id));
    for (int s : handle.vm_to_server)
      mix_into(r.decision_checksum, static_cast<std::uint64_t>(s));
  };

  std::vector<TenantHandle> live;
  std::map<placement::TenantId, std::size_t> index_of;
  const auto track = [&](const TenantHandle& handle) {
    index_of[handle.id] = live.size();
    live.push_back(handle);
  };
  const auto refresh_affected = [&](const RecoveryReport& report) {
    for (const auto id : report.affected) {
      const auto it = index_of.find(id);
      if (it != index_of.end())
        live[it->second].vm_to_server = ctl->tenant_placement(id);
    }
  };
  for (std::int64_t i = 0; i < prefill; ++i) {
    if (const auto handle = ctl->admit(sample_request(rng))) {
      track(*handle);
      mix_handle(*handle);
    }
  }
  ship_drained();

  const auto crash_and_recover = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    // Full durability path: serialize the journal (as if synced to disk),
    // lose the controller, rebuild one from the deserialized bytes.
    journal = DeltaJournal::deserialize(journal.serialize());
    ctl.emplace(tcfg, opts);
    ctl->recover_from_journal(journal, snapshot_every);
    // Replay re-emits the whole delta backlog; the channel resyncs its
    // shadow straight from the recovered controller instead.
    (void)ctl->drain_config_deltas();
    channel.restart(*ctl);
    int rounds = 0;
    while (!channel.converged() && rounds < 64) {
      ++rounds;
      channel.anti_entropy_round();
      events.run_all();
    }
    const auto t1 = std::chrono::steady_clock::now();
    r.ae_rounds += rounds;
    if (!channel.converged()) r.converged_ok = false;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    r.recovery_seconds_total += secs;
    r.recovery_seconds_max = std::max(r.recovery_seconds_max, secs);
    ++r.recoveries;
  };

  for (std::int64_t op = 0; op < ops; ++op) {
    const auto roll = rng.uniform_int(0, 9);
    if (roll < 4 || live.empty()) {
      if (const auto handle = ctl->admit(sample_request(rng))) {
        track(*handle);
        mix_handle(*handle);
      }
    } else if (roll < 7) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      ctl->release(live[i]);
      index_of.erase(live[i].id);
      live[i] = live.back();
      live.pop_back();
      if (i < live.size()) index_of[live[i].id] = i;
    } else {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const int anchor = live[i].vm_to_server.front();
      if (anchor >= 0) {
        if (roll < 9) {
          refresh_affected(ctl->handle_server_failure(anchor));
          refresh_affected(ctl->restore_server(anchor));
        } else {
          const auto port = ctl->topo().server_down(anchor);
          refresh_affected(ctl->handle_link_failure(port));
          refresh_affected(ctl->restore_link(port));
        }
      }
    }
    ship_drained();
    if (restart_every > 0 && (op + 1) % restart_every == 0)
      crash_and_recover();
  }

  const int num_servers = ctl->topo().num_servers();
  const int stride = std::max(1, num_servers / 64);
  for (int s = 0; s < num_servers; s += stride) {
    const std::uint64_t snap_sum =
        pacer_config_checksum(ctl->server_config(s));
    mix_into(r.config_checksum, static_cast<std::uint64_t>(s));
    mix_into(r.config_checksum, snap_sum);
    if (fleet.checksum(s) != snap_sum) r.fleet_matches_snapshots = false;
  }
  r.replayed_records =
      journal.metrics().value("controller.journal.replayed_records");
  r.journal_snapshots = journal.metrics().value("controller.journal.snapshots");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto ops = flags.geti("ops", 400);
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.geti("seed", 7));
  const std::string scales = flags.gets("scales", "1k,8k,32k");
  /// Crash + journal-recover the controller every N storm ops (0 = off).
  const auto restart_every = flags.geti("restart-every", 0);
  const auto snapshot_every = flags.geti("snapshot-every", 64);

  bench::print_header(
      "Control-plane churn storm: incremental vs full-recompute admission",
      "Seeded admit/release/fail/restore mix against SiloController in\n"
      "kIncremental (sharded port loads, cached headroom, pacer-config\n"
      "deltas) and kFullRescan (rebuild-everything reference) modes.\n"
      "Identical op sequences; decisions and configs must checksum-match.");

  TextTable table({"scale", "servers", "tenants", "inc ops/s", "full ops/s",
                   "speedup", "golden"});
  TextTable rtable({"scale", "recoveries", "mean ms", "max ms", "replayed",
                    "ae rounds", "golden"});
  bench::JsonObject json;
  json.put("bench", std::string("churn"))
      .put("ops", ops)
      .put("seed", static_cast<std::int64_t>(seed))
      .put("restart_every", restart_every);
  bool all_golden = true;
  const ScaleSpec* last = nullptr;

  for (const auto& spec : kScales) {
    if (scales.find(spec.name) == std::string::npos) continue;
    last = &spec;
    topology::TopologyConfig tcfg;
    tcfg.pods = spec.pods;
    tcfg.racks_per_pod = spec.racks_per_pod;
    tcfg.servers_per_rack = spec.servers_per_rack;
    tcfg.vm_slots_per_server = 8;
    // Steady-state live set scaled to the fleet; ~an eighth-full DC keeps
    // the full-rescan prefill tractable while leaving admission headroom.
    const std::int64_t prefill =
        flags.geti("tenants", std::max<std::int64_t>(64, spec.servers() / 16));

    const auto inc = run_storm(tcfg, placement::AdmissionMode::kIncremental,
                               prefill, ops, seed);
    const auto full = run_storm(tcfg, placement::AdmissionMode::kFullRescan,
                                prefill, ops, seed);

    const bool golden = inc.deltas_match_snapshots &&
                        inc.decision_checksum == full.decision_checksum &&
                        inc.config_checksum == full.config_checksum;
    all_golden = all_golden && golden;
    const double inc_rate = static_cast<double>(inc.ops) / inc.storm_seconds;
    const double full_rate =
        static_cast<double>(full.ops) / full.storm_seconds;
    const double speedup = full.storm_seconds / inc.storm_seconds;

    table.add_row({spec.name, std::to_string(spec.servers()),
                   std::to_string(prefill), TextTable::fmt(inc_rate, 0),
                   TextTable::fmt(full_rate, 0), TextTable::fmt(speedup, 1),
                   golden ? "ok" : "MISMATCH"});

    bench::JsonObject entry;
    entry.put("servers", spec.servers())
        .put("tenants", prefill)
        .put("inc_ops_per_sec", inc_rate)
        .put("full_ops_per_sec", full_rate)
        .put("speedup", speedup)
        .put("inc_storm_seconds", inc.storm_seconds)
        .put("full_storm_seconds", full.storm_seconds)
        .put("admits", inc.admits)
        .put("releases", inc.releases)
        .put("fail_restore_pairs", inc.fails)
        .put("diff_deltas", inc.deltas)
        .put("diff_upserts", inc.upserts)
        .put("diff_removes", inc.removes)
        .put("golden_ok", std::string(golden ? "true" : "false"));

    if (restart_every > 0) {
      const auto rr = run_restart_storm(tcfg, prefill, ops, seed,
                                        restart_every, snapshot_every);
      const bool golden_restart =
          rr.converged_ok && rr.fleet_matches_snapshots &&
          rr.decision_checksum == inc.decision_checksum &&
          rr.config_checksum == inc.config_checksum;
      all_golden = all_golden && golden_restart;
      const double mean_ms =
          rr.recoveries > 0
              ? rr.recovery_seconds_total * 1e3 /
                    static_cast<double>(rr.recoveries)
              : 0;
      rtable.add_row({spec.name, std::to_string(rr.recoveries),
                      TextTable::fmt(mean_ms, 2),
                      TextTable::fmt(rr.recovery_seconds_max * 1e3, 2),
                      std::to_string(rr.replayed_records),
                      std::to_string(rr.ae_rounds),
                      golden_restart ? "ok" : "MISMATCH"});
      entry.put("recoveries", rr.recoveries)
          .put("recovery_ms_mean", mean_ms)
          .put("recovery_ms_max", rr.recovery_seconds_max * 1e3)
          .put("replayed_records", rr.replayed_records)
          .put("journal_snapshots", rr.journal_snapshots)
          .put("anti_entropy_rounds", rr.ae_rounds)
          .put("golden_restart",
               std::string(golden_restart ? "true" : "false"));
    }
    json.put(spec.name, entry);
  }

  std::printf("%s\n", table.to_string().c_str());
  if (restart_every > 0) {
    std::printf("controller crash + journal recovery every %lld ops:\n%s\n",
                static_cast<long long>(restart_every),
                rtable.to_string().c_str());
  }
  std::printf("golden: placement decisions, sampled server_config\n"
              "checksums, and delta-applied pacer tables %s across modes.\n",
              all_golden ? "all agree" : "DISAGREE — investigate");

  if (flags.has("json")) {
    json.put("all_golden", std::string(all_golden ? "true" : "false"));
    bench::write_json_file("BENCH_churn.json", json);
  }

  if (last != nullptr) {
    obs::RunManifest m;
    m.bench = "churn";
    m.seed = static_cast<std::int64_t>(seed);
    m.topology = {{"pods", last->pods},
                  {"racks_per_pod", last->racks_per_pod},
                  {"servers_per_rack", last->servers_per_rack},
                  {"vm_slots_per_server", 8}};
    m.params = {{"ops", std::to_string(ops)},
                {"scales", scales},
                {"restart_every", std::to_string(restart_every)}};
    bench::maybe_write_manifest(flags, m);
  }
  return all_golden ? 0 : 1;
}
