// Google-benchmark microbenchmarks of the hot-path primitives: network-
// calculus curve operations, queue-bound analysis, token-bucket stamping,
// void-packet batch construction, hose allocation, and placement
// admission — the operations whose cost bounds how fast a placement
// manager and a software pacer can run.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "netcalc/curve.h"
#include "pacer/hose_allocator.h"
#include "pacer/paced_nic.h"
#include "pacer/token_bucket.h"
#include "pacer/vm_pacer.h"
#include "placement/placement.h"
#include "topology/topology.h"
#include "util/rng.h"

namespace silo {
namespace {

void BM_CurveTokenBucket(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        netcalc::Curve::token_bucket(1 * kGbps, 100 * kKB));
  }
}
BENCHMARK(BM_CurveTokenBucket);

void BM_CurvePlus(benchmark::State& state) {
  const auto a = netcalc::Curve::rate_limited_burst(1 * kGbps, 100 * kKB,
                                                    10 * kGbps);
  const auto b = netcalc::Curve::rate_limited_burst(2 * kGbps, 30 * kKB,
                                                    10 * kGbps);
  for (auto _ : state) benchmark::DoNotOptimize(a.plus(b));
}
BENCHMARK(BM_CurvePlus);

void BM_CurveMin(benchmark::State& state) {
  const auto a = netcalc::Curve::token_bucket(1 * kGbps, 100 * kKB);
  const auto b = netcalc::Curve::token_bucket(10 * kGbps, Bytes{1500});
  for (auto _ : state) benchmark::DoNotOptimize(a.min_with(b));
}
BENCHMARK(BM_CurveMin);

void BM_AnalyzeQueue(benchmark::State& state) {
  const auto arrival = netcalc::Curve::rate_limited_burst(
      4 * kGbps, 300 * kKB, 20 * kGbps);
  const auto service = netcalc::Curve::constant_rate(10 * kGbps);
  for (auto _ : state)
    benchmark::DoNotOptimize(netcalc::analyze_queue(arrival, service));
}
BENCHMARK(BM_AnalyzeQueue);

void BM_TokenBucketStamp(benchmark::State& state) {
  pacer::TokenBucket bucket(1 * kGbps, 15 * kKB);
  TimeNs now {};
  for (auto _ : state) {
    now = bucket.earliest_conformance(now, Bytes{1500});
    bucket.consume(now, Bytes{1500});
    benchmark::DoNotOptimize(now);
  }
}
BENCHMARK(BM_TokenBucketStamp);

void BM_VmPacerStamp(benchmark::State& state) {
  pacer::VmPacer pacer({1 * kGbps, 15 * kKB, kMsec, 10 * kGbps});
  TimeNs now {};
  int dst = 0;
  for (auto _ : state) {
    now = pacer.stamp(now, dst, Bytes{1500});
    dst = (dst + 1) % 16;
    benchmark::DoNotOptimize(now);
  }
}
BENCHMARK(BM_VmPacerStamp);

void BM_PacedNicBatch(benchmark::State& state) {
  // One 50 us batch at a 2 Gbps limit: ~8 data packets + void fill.
  for (auto _ : state) {
    state.PauseTiming();
    pacer::PacedNic nic(10 * kGbps, pacer::NicMode::kPacedVoid);
    for (int i = 0; i < 8; ++i)
      nic.enqueue(TimeNs{i * 6000}, Bytes{1462}, i + 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(nic.build_batch(TimeNs{0}));
  }
}
BENCHMARK(BM_PacedNicBatch);

void BM_HoseAllocate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<pacer::HoseDemand> demands;
  for (int i = 0; i < n; ++i)
    demands.push_back({static_cast<int>(rng.uniform_int(0, 15)),
                       static_cast<int>(rng.uniform_int(0, 15)), RateBps{1e9}});
  const std::vector<RateBps> caps(16, RateBps{1e9});
  for (auto _ : state)
    benchmark::DoNotOptimize(pacer::hose_allocate(demands, caps, caps));
}
BENCHMARK(BM_HoseAllocate)->Arg(8)->Arg(64)->Arg(256);

void BM_PlacementAdmit(benchmark::State& state) {
  topology::TopologyConfig tcfg;
  tcfg.pods = 4;
  tcfg.racks_per_pod = 10;
  tcfg.servers_per_rack = 40;
  topology::Topology topo(tcfg);
  placement::PlacementEngine engine(topo, placement::Policy::kSilo);
  Rng rng(5);
  std::vector<placement::TenantId> ids;
  for (auto _ : state) {
    TenantRequest req;
    req.num_vms = 8 + static_cast<int>(rng.uniform_int(0, 24));
    req.tenant_class = TenantClass::kDelaySensitive;
    req.guarantee = {0.5 * kGbps, 15 * kKB, 2 * kMsec, 1 * kGbps};
    auto placed = engine.place(req);
    if (placed) ids.push_back(placed->id);
    if (ids.size() > 600) {  // steady-state churn
      engine.remove(ids.front());
      ids.erase(ids.begin());
    }
    benchmark::DoNotOptimize(placed);
  }
}
BENCHMARK(BM_PlacementAdmit)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace silo

// Custom main instead of BENCHMARK_MAIN(): peel off the repo-wide
// --metrics-json flag (google-benchmark rejects unknown flags) and emit
// the run manifest after the benchmarks finish. Pure CPU microbenches
// have no simulation registry, so the metrics array is empty.
int main(int argc, char** argv) {
  std::vector<char*> bm_args;
  std::vector<char*> our_args{argv[0]};
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--metrics-json", 0) == 0) {
      our_args.push_back(argv[i]);
    } else {
      bm_args.push_back(argv[i]);
    }
  }
  const silo::bench::Flags flags(static_cast<int>(our_args.size()),
                                 our_args.data());
  int bm_argc = static_cast<int>(bm_args.size());
  benchmark::Initialize(&bm_argc, bm_args.data());
  if (benchmark::ReportUnrecognizedArguments(bm_argc, bm_args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  silo::obs::RunManifest m;
  m.bench = "micro_ops";
  m.seed = 0;
  m.params = {{"suite", "netcalc/pacer/placement hot-path primitives"}};
  silo::bench::maybe_write_manifest(flags, m);
  return 0;
}
