// Figure 10 (§5, pacer microbenchmarks): CPU usage and throughput of the
// Silo pacer at rate limits of 1..10 Gbps on a 10 GbE NIC.
//
// The prototype measured Xeon cores; our substrate is a simulator, so CPU
// is proxied by packet-touch counts with per-packet costs calibrated to
// the paper's three anchor points (0.6 cores generating only void packets
// at 10 Gbps; ~2.1 cores at a 9 Gbps limit; ~<0.2 cores pacer overhead at
// line rate). Throughput numbers are exact wire accounting.
//
// Also prints the --no-void ablation: with plain IO batching the NIC
// releases each batch back to back, destroying inter-packet spacing.
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "pacer/paced_nic.h"
#include "pacer/token_bucket.h"

using namespace silo;
using namespace silo::pacer;

namespace {

constexpr double kDataPacketCostUs = 2.10;  // DMA + descriptor + stack
constexpr double kVoidPacketCostUs = 0.74;  // descriptor only

struct RunResult {
  double data_gbps = 0;  ///< payload goodput (framing excluded)
  double void_gbps = 0;
  double mpps = 0;
  double cores = 0;
  TimeNs min_data_gap {};  ///< smallest start-to-start gap on the wire
};

RunResult run_pacer(RateBps rate_limit, RateBps line_rate, NicMode mode,
                    TimeNs duration) {
  PacedNic nic(line_rate, mode);
  TokenBucket bucket(rate_limit, kMtu);
  TimeNs now {};
  TimeNs next_stamp {};
  std::uint64_t id = 1;
  RunResult res;
  std::vector<TimeNs> stamps, wire_times;

  while (now < duration) {
    // Backlogged sender: stamp MTU packets through the rate limiter far
    // enough ahead to keep the NIC busy for the next batch window.
    while (next_stamp <= now + nic.batch_window()) {
      next_stamp = bucket.earliest_conformance(next_stamp, kMtu);
      bucket.consume(next_stamp, kMtu);
      nic.enqueue(next_stamp, kMtu, id++);
      stamps.push_back(next_stamp);
    }
    const auto slots = nic.build_batch(now);
    if (slots.empty()) break;
    for (const auto& s : slots)
      if (!s.is_void) wire_times.push_back(s.start);
    now = slots.back().end;
  }

  const auto& st = nic.stats();
  const double secs = static_cast<double>(now) / static_cast<double>(kSec);
  const double payload_bytes = static_cast<double>(
      st.data_wire_bytes - st.data_packets * kEthOverhead);
  res.data_gbps = payload_bytes * 8 / secs / 1e9;
  res.void_gbps = static_cast<double>(st.void_wire_bytes) * 8 / secs / 1e9;
  res.mpps =
      static_cast<double>(st.data_packets + st.void_packets) / secs / 1e6;
  res.cores = (static_cast<double>(st.data_packets) * kDataPacketCostUs +
               static_cast<double>(st.void_packets) * kVoidPacketCostUs) /
              (secs * 1e6);
  // Spacing fidelity: the smallest gap between consecutive data packets
  // on the wire. Batching without voids collapses gaps to serialization
  // time; void fill keeps them at the paced target.
  res.min_data_gap = duration;
  for (std::size_t i = 1; i < wire_times.size(); ++i)
    res.min_data_gap =
        std::min(res.min_data_gap, wire_times[i] - wire_times[i - 1]);
  (void)stamps;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const auto duration = TimeNs{static_cast<std::int64_t>(
      flags.get("duration-ms", 50.0) * static_cast<double>(kMsec))};
  const RateBps line = 10 * kGbps;

  bench::print_header(
      "Figure 10: pacer CPU usage (a) and throughput (b) vs rate limit",
      "Paced IO Batching with void packets on a simulated 10 GbE NIC;\n"
      "CPU cores are a calibrated packet-touch proxy (see source).");

  TextTable table({"Rate limit", "CPU (cores)", "Pkts (Mpps)", "Data (Gbps)",
                   "Void (Gbps)", "Data/ideal %"});
  for (int g = 1; g <= 10; ++g) {
    const auto r = run_pacer(g * kGbps, line, NicMode::kPacedVoid, duration);
    // At line rate the wire framing caps the achievable payload goodput.
    const double ideal =
        std::min<double>(g, 10.0 * 1500 / (1500.0 + static_cast<double>(kEthOverhead)));
    table.add_row({std::to_string(g) + " Gbps", TextTable::fmt(r.cores, 2),
                   TextTable::fmt(r.mpps, 2), TextTable::fmt(r.data_gbps, 2),
                   TextTable::fmt(r.void_gbps, 2),
                   TextTable::fmt(100.0 * r.data_gbps / ideal, 1)});
  }
  const auto nopace = run_pacer(10 * kGbps, line, NicMode::kBatched, duration);
  table.add_row({"no pacing", TextTable::fmt(nopace.cores, 2),
                 TextTable::fmt(nopace.mpps, 2),
                 TextTable::fmt(nopace.data_gbps, 2), "0.00", "100.0"});
  std::printf("%s\n", table.to_string().c_str());

  // Ablation: spacing fidelity with and without void packets at 2 Gbps.
  const auto paced = run_pacer(2 * kGbps, line, NicMode::kPacedVoid, duration);
  const auto burst = run_pacer(2 * kGbps, line, NicMode::kBatched, duration);
  std::printf(
      "Spacing ablation at a 2 Gbps limit (pacer stamp gap 6001 ns):\n");
  std::printf("  with void packets : min wire gap %6ld ns (pacing held)\n",
              static_cast<long>(paced.min_data_gap));
  std::printf("  plain IO batching : min wire gap %6ld ns "
              "(batches go back-to-back at line rate)\n\n",
              static_cast<long>(burst.min_data_gap));
  std::printf(
      "Paper reference: pacer saturates 10G, data rate >98%% of ideal\n"
      "except at 9 Gbps; CPU peaks ~2.1 cores at 9 Gbps where the void\n"
      "packet rate is highest; minimum achievable spacing 68 ns.\n");

  if (flags.has("json")) {
    bench::JsonObject out;
    out.put("bench", std::string("fig10_pacer"))
        .put("duration_ms", static_cast<std::int64_t>(duration / kMsec));
    bench::JsonObject limits;
    for (int g = 1; g <= 10; ++g) {
      const auto r = run_pacer(g * kGbps, line, NicMode::kPacedVoid, duration);
      bench::JsonObject row;
      row.put("cores", r.cores)
          .put("mpps", r.mpps)
          .put("data_gbps", r.data_gbps)
          .put("void_gbps", r.void_gbps);
      limits.put(std::to_string(g) + "gbps", row);
    }
    out.put("rate_limits", limits)
        .put("paced_min_gap_ns", static_cast<std::int64_t>(paced.min_data_gap))
        .put("batched_min_gap_ns",
             static_cast<std::int64_t>(burst.min_data_gap));
    bench::write_json_file("BENCH_fig10_pacer.json", out);
  }

  // Standalone PacedNic microbench — no ClusterSim registry, so the
  // manifest records the run parameters with an empty metrics array.
  obs::RunManifest m;
  m.bench = "fig10_pacer";
  m.seed = 0;
  m.topology = {{"nics", 1}};
  m.params = {{"duration_ms", std::to_string(duration / kMsec)},
              {"line_rate_gbps", "10"}};
  bench::maybe_write_manifest(flags, m);
  return 0;
}
