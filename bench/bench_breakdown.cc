// Latency-breakdown bench: where does a delay-sensitive message's latency
// go under each scheme?
//
// A Fig-12-style shared fabric runs one class-A OLDI tenant (all-to-one
// 15 KB bursts, guarantee {B, S=15KB, d=1ms, Bmax=1G}) next to class-B
// bulk neighbors, under Silo, DCTCP and TCP. Every delivered message
// carries a MessageBreakdown whose components sum to the observed latency
// exactly (integer ns); this bench prints the paper-style attribution
// table and enforces three claims:
//   1. exact-sum: max |pacing+queueing+serialization+retransmit - latency|
//      is <= 1 ns across every delivered message (class A and B),
//   2. Silo's p99 class-A queueing stays within the configured delay
//      budget d — pacing plus admission-bounded queues is the mechanism
//      behind the §4.1 guarantee,
//   3. TCP's p99 class-A queueing blows the same budget — its latency is
//      queueing-dominated, which is the paper's motivation (§2.1).
//
// Flags: --duration-ms=300 --load-factor=0.3 --seed=33 --json
//        --metrics-json[=path] --trace-out=<path> --trace-capacity=8192
#include <cstdlib>
#include <fstream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "model/guarantee.h"
#include "sim/cluster.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

using namespace silo;
using namespace silo::bench;

namespace {

struct ExpConfig {
  int pods = 1, racks_per_pod = 2, servers_per_rack = 8, slots = 4;
  int a_vms = 18, b_vms = 8;
  Bytes a_message = 15 * kKB;
  Bytes b_chunk = 256 * kKB;
  TimeNs delay_budget = 1 * kMsec;  ///< class-A guarantee d
  double load_factor = 0.3;         ///< aggregator load / hose guarantee
  TimeNs duration = 300 * kMsec;
  std::uint64_t seed = 33;
};

struct SchemeResult {
  workload::BreakdownAgg class_a;
  workload::BreakdownAgg class_b;
  Stats class_a_latency_us;
  std::vector<obs::MetricSample> metrics;
};

SchemeResult run_scheme(sim::Scheme scheme, const ExpConfig& ec,
                        const Flags& flags) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = ec.pods;
  cfg.topo.racks_per_pod = ec.racks_per_pod;
  cfg.topo.servers_per_rack = ec.servers_per_rack;
  cfg.topo.vm_slots_per_server = ec.slots;
  cfg.topo.oversubscription = 2.5;
  cfg.scheme = scheme;
  cfg.tcp.min_rto = 10 * kMsec;  // ns2-style
  sim::ClusterSim cluster(cfg);

  TenantRequest a;
  a.num_vms = ec.a_vms;
  a.tenant_class = TenantClass::kDelaySensitive;
  a.guarantee = {RateBps{0.3e9}, ec.a_message, ec.delay_budget, 1 * kGbps};
  const auto ta = cluster.add_tenant(a);

  TenantRequest b;
  b.num_vms = ec.b_vms;
  b.tenant_class = TenantClass::kBandwidthOnly;
  b.guarantee = {RateBps{1e9}, Bytes{1500}, TimeNs{0}, RateBps{0}};
  b.guarantee.burst_rate = b.guarantee.bandwidth;
  std::vector<int> tbs;
  for (int i = 0; i < 2; ++i) {
    if (const auto t = cluster.add_tenant(b)) tbs.push_back(*t);
  }
  SchemeResult res;
  if (!ta) return res;

  // --trace-out: record the class-A tenant's packet flight on the Silo
  // run and dump a Chrome trace (plus JSONL alongside).
  const bool trace = flags.has("trace-out") && scheme == sim::Scheme::kSilo;
  if (trace) {
    auto& rec = cluster.enable_flight_recorder(
        static_cast<std::size_t>(flags.geti("trace-capacity", 8192)));
    rec.enable_tenant(*ta);
  }

  workload::BurstDriver::Config bc;
  bc.receiver = ec.a_vms - 1;
  bc.message_size = ec.a_message;
  bc.epochs_per_sec = ec.load_factor * a.guarantee.bandwidth.bps() /
                      (8.0 * static_cast<double>(ec.a_vms - 1) *
                       static_cast<double>(ec.a_message));
  workload::BurstDriver bursts(cluster, *ta, ec.a_vms, bc, ec.seed * 31);
  bursts.start(ec.duration);

  std::vector<std::unique_ptr<workload::BulkDriver>> bulks;
  for (const int t : tbs) {
    bulks.push_back(std::make_unique<workload::BulkDriver>(
        cluster, t, workload::all_to_all(ec.b_vms), ec.b_chunk));
    bulks.back()->start(ec.duration);
  }
  cluster.run_until(ec.duration + 100 * kMsec);

  res.class_a = bursts.breakdown();
  res.class_a_latency_us = bursts.latencies_us();
  for (const auto& bd : bulks) {
    res.class_b.pacing_us.merge(bd->breakdown().pacing_us);
    res.class_b.queueing_us.merge(bd->breakdown().queueing_us);
    res.class_b.serialization_us.merge(bd->breakdown().serialization_us);
    res.class_b.retransmit_us.merge(bd->breakdown().retransmit_us);
    res.class_b.max_sum_error_ns = std::max(
        res.class_b.max_sum_error_ns, bd->breakdown().max_sum_error_ns);
    res.class_b.messages += bd->breakdown().messages;
  }
  res.metrics = cluster.metrics().snapshot();

  if (trace) {
    const std::string path = flags.gets("trace-out", "BENCH_breakdown.trace.json");
    std::ofstream tf(path);
    cluster.flight_recorder()->dump_chrome_trace(tf);
    std::printf("wrote %s (%zu flight events, %llu recorded)\n", path.c_str(),
                cluster.flight_recorder()->size(),
                static_cast<unsigned long long>(
                    cluster.flight_recorder()->total_recorded()));
    std::ofstream jf(path + "l");  // .json -> .jsonl
    cluster.flight_recorder()->dump_jsonl(jf);
    std::printf("wrote %sl\n", path.c_str());
  }
  return res;
}

double share_pct(const Stats& component, const workload::BreakdownAgg& b) {
  const double total = b.pacing_us.sum() + b.queueing_us.sum() +
                       b.serialization_us.sum() + b.retransmit_us.sum();
  return total > 0 ? 100.0 * component.sum() / total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  ExpConfig ec;
  ec.duration = TimeNs{static_cast<std::int64_t>(
      flags.get("duration-ms", 300.0) * static_cast<double>(kMsec))};
  ec.load_factor = flags.get("load-factor", 0.3);
  ec.seed = static_cast<std::uint64_t>(flags.geti("seed", 33));

  print_header(
      "Latency breakdown: where class-A message latency goes, per scheme",
      "Components (pacing / queueing / serialization / retransmit) sum to\n"
      "the observed latency exactly; Silo spends the budget on pacing and\n"
      "bounded queueing, TCP on unbounded queueing.");

  const std::vector<sim::Scheme> schemes{
      sim::Scheme::kSilo, sim::Scheme::kDctcp, sim::Scheme::kTcp};
  std::vector<SchemeResult> results;
  for (auto s : schemes) results.push_back(run_scheme(s, ec, flags));

  TextTable table({"Scheme", "mean (us)", "p99 (us)", "pacing %",
                   "queueing %", "serial %", "rtx %", "p99 queue (us)"});
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const auto& r = results[i];
    table.add_row({sim::scheme_name(schemes[i]),
                   TextTable::fmt(r.class_a_latency_us.mean(), 1),
                   TextTable::fmt(r.class_a_latency_us.percentile(99), 1),
                   TextTable::fmt(share_pct(r.class_a.pacing_us, r.class_a), 1),
                   TextTable::fmt(share_pct(r.class_a.queueing_us, r.class_a), 1),
                   TextTable::fmt(
                       share_pct(r.class_a.serialization_us, r.class_a), 1),
                   TextTable::fmt(
                       share_pct(r.class_a.retransmit_us, r.class_a), 1),
                   TextTable::fmt(r.class_a.queueing_us.percentile(99), 1)});
  }
  std::printf("Class-A attribution (all components sum to latency)\n%s\n",
              table.to_string().c_str());

  const double budget_us =
      static_cast<double>(ec.delay_budget) / static_cast<double>(kUsec);
  std::printf("Class-A delay budget d = %.0f us\n\n", budget_us);

  // ---- invariants -----------------------------------------------------
  bool ok = true;
  TimeNs worst_err {};
  std::int64_t messages = 0;
  for (const auto& r : results) {
    worst_err = std::max({worst_err, r.class_a.max_sum_error_ns,
                          r.class_b.max_sum_error_ns});
    messages += r.class_a.messages + r.class_b.messages;
  }
  const bool sum_ok = worst_err <= TimeNs{1} && messages > 0;
  std::printf("[%s] exact-sum: max |sum(components) - latency| = %lld ns "
              "over %lld messages (must be <= 1)\n",
              sum_ok ? "PASS" : "FAIL", static_cast<long long>(worst_err),
              static_cast<long long>(messages));
  ok = ok && sum_ok;

  const double silo_p99q = results[0].class_a.queueing_us.percentile(99);
  const double tcp_p99q = results[2].class_a.queueing_us.percentile(99);
  const bool silo_ok = silo_p99q <= budget_us;
  const bool tcp_ok = tcp_p99q > budget_us;
  std::printf("[%s] Silo p99 class-A queueing %.1f us <= budget %.0f us\n",
              silo_ok ? "PASS" : "FAIL", silo_p99q, budget_us);
  std::printf("[%s] TCP  p99 class-A queueing %.1f us >  budget %.0f us\n",
              tcp_ok ? "PASS" : "FAIL", tcp_p99q, budget_us);
  ok = ok && silo_ok && tcp_ok;

  if (flags.has("json")) {
    JsonObject out;
    out.put("bench", std::string("breakdown"))
        .put("duration_ms", static_cast<std::int64_t>(ec.duration / kMsec))
        .put("load_factor", ec.load_factor)
        .put("seed", static_cast<std::int64_t>(ec.seed))
        .put("budget_us", budget_us)
        .put("max_sum_error_ns", static_cast<std::int64_t>(worst_err));
    JsonObject per_scheme;
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const auto& r = results[i];
      JsonObject s;
      s.put("mean_us", r.class_a_latency_us.mean())
          .put("p99_us", r.class_a_latency_us.percentile(99))
          .put("pacing_share_pct", share_pct(r.class_a.pacing_us, r.class_a))
          .put("queueing_share_pct",
               share_pct(r.class_a.queueing_us, r.class_a))
          .put("serialization_share_pct",
               share_pct(r.class_a.serialization_us, r.class_a))
          .put("retransmit_share_pct",
               share_pct(r.class_a.retransmit_us, r.class_a))
          .put("p99_queueing_us", r.class_a.queueing_us.percentile(99))
          .put("messages", r.class_a.messages);
      per_scheme.put(sim::scheme_name(schemes[i]), s);
    }
    out.put("schemes", per_scheme);
    write_json_file("BENCH_breakdown.json", out);
  }

  obs::RunManifest m;
  m.bench = "breakdown";
  m.seed = ec.seed;
  m.topology = {{"pods", ec.pods},
                {"racks_per_pod", ec.racks_per_pod},
                {"servers_per_rack", ec.servers_per_rack},
                {"vm_slots_per_server", ec.slots}};
  m.params = {{"duration_ms", std::to_string(ec.duration / kMsec)},
              {"load_factor", std::to_string(ec.load_factor)},
              {"schemes", "silo,dctcp,tcp (metrics: silo run)"}};
  maybe_write_manifest(flags, m, results[0].metrics);

  return ok ? 0 : 1;
}
