// Flow-simulator solver scaling: event-driven incremental component
// re-solve (SolverMode::kIncremental) versus the global re-solve reference
// (SolverMode::kReference) at 256 / 1K / 4K servers.
//
// Both modes run the identical seeded workload on the identical
// event-driven timeline; the bench checks the correctness bar inline
// (admitted counts, completed jobs, utilization and occupancy must be
// bit-identical across modes) before reporting the speedup. The reference
// re-solves every open flow (locality) or every live tenant (Silo) on each
// flow arrival/completion — quadratic-ish in load, which is exactly why
// the incremental mode exists — so per-size durations keep it tractable.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "flowsim/flow_sim.h"

using namespace silo;
using namespace silo::bench;
using namespace silo::flowsim;

namespace {

struct ScaleSpec {
  const char* name;
  int pods, racks_per_pod, servers_per_rack;
  double duration_s;  ///< sim horizon; shorter at sizes where kReference
                      ///< would otherwise dominate the bench's wall clock
  int servers() const { return pods * racks_per_pod * servers_per_rack; }
};

constexpr ScaleSpec kScales[] = {
    {"256", 4, 4, 16, 300.0},
    {"1k", 8, 8, 16, 120.0},
    {"4k", 4, 40, 25, 60.0},
};

struct ModeRun {
  FlowSimResult result;
  double wall_s = 0;
};

ModeRun run_mode(const ScaleSpec& spec, placement::Policy policy,
                 SolverMode mode, double occupancy, double duration_scale,
                 std::uint64_t seed) {
  FlowSimConfig cfg;
  cfg.topo.pods = spec.pods;
  cfg.topo.racks_per_pod = spec.racks_per_pod;
  cfg.topo.servers_per_rack = spec.servers_per_rack;
  cfg.policy = policy;
  cfg.solver = mode;
  cfg.occupancy = occupancy;
  cfg.mean_vms = 16.0;
  cfg.sim_duration_s = spec.duration_s * duration_scale;
  cfg.warmup_s = cfg.sim_duration_s / 4;
  cfg.seed = seed;
  ModeRun out;
  const auto start = std::chrono::steady_clock::now();
  out.result = run_flow_sim(cfg);
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

bool bit_identical(const FlowSimResult& a, const FlowSimResult& b) {
  return a.arrivals == b.arrivals && a.admitted == b.admitted &&
         a.admitted_a == b.admitted_a && a.admitted_b == b.admitted_b &&
         a.completed_jobs == b.completed_jobs &&
         a.network_utilization == b.network_utilization &&
         a.avg_occupancy == b.avg_occupancy &&
         a.avg_job_duration_s == b.avg_job_duration_s;
}

const char* policy_name(placement::Policy p) {
  return p == placement::Policy::kSilo ? "Silo" : "Locality";
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string sizes = flags.gets("sizes", "256,1k,4k");
  const double occupancy = flags.get("occupancy", 0.9);
  const double duration_scale = flags.get("duration-scale", 1.0);
  const auto seed = static_cast<std::uint64_t>(flags.geti("seed", 9));

  print_header(
      "Flow-simulator solver scaling: incremental vs global reference",
      "Identical seeded event-driven runs per mode; kIncremental re-solves\n"
      "only the touched sharing-graph component (locality) or tenant hose\n"
      "(Silo), kReference re-solves globally per flow change. Results must\n"
      "be bit-identical; the speedup is pure solver savings.");

  TextTable table({"scale", "policy", "inc wall s", "ref wall s", "speedup",
                   "inc flows/solve", "ref flows/solve", "golden"});
  JsonObject json;
  json.put("bench", std::string("flowsim_scale"))
      .put("occupancy", occupancy)
      .put("seed", static_cast<std::int64_t>(seed));
  bool all_golden = true;
  double speedup_4k = 0;

  for (const auto& spec : kScales) {
    if (sizes.find(spec.name) == std::string::npos) continue;
    for (const auto policy :
         {placement::Policy::kSilo, placement::Policy::kLocality}) {
      const auto inc = run_mode(spec, policy, SolverMode::kIncremental,
                                occupancy, duration_scale, seed);
      const auto ref = run_mode(spec, policy, SolverMode::kReference,
                                occupancy, duration_scale, seed);
      const bool golden = bit_identical(inc.result, ref.result);
      all_golden = all_golden && golden;
      const double speedup = ref.wall_s / inc.wall_s;
      if (std::string(spec.name) == "4k" &&
          policy == placement::Policy::kSilo)
        speedup_4k = speedup;
      const auto per_solve = [](const FlowSimPerf& p) {
        return p.solves ? static_cast<double>(p.solved_flows) /
                              static_cast<double>(p.solves)
                        : 0.0;
      };
      table.add_row({spec.name, policy_name(policy),
                     TextTable::fmt(inc.wall_s, 2),
                     TextTable::fmt(ref.wall_s, 2),
                     TextTable::fmt(speedup, 1),
                     TextTable::fmt(per_solve(inc.result.perf), 1),
                     TextTable::fmt(per_solve(ref.result.perf), 1),
                     golden ? "ok" : "MISMATCH"});

      JsonObject entry;
      entry.put("servers", spec.servers())
          .put("sim_duration_s", spec.duration_s * duration_scale)
          .put("inc_wall_s", inc.wall_s)
          .put("ref_wall_s", ref.wall_s)
          .put("speedup", speedup)
          .put("events", inc.result.perf.events)
          .put("inc_solves", inc.result.perf.solves)
          .put("ref_solves", ref.result.perf.solves)
          .put("inc_solved_flows", inc.result.perf.solved_flows)
          .put("ref_solved_flows", ref.result.perf.solved_flows)
          .put("inc_rate_changes", inc.result.perf.rate_changes)
          .put("ref_rate_changes", ref.result.perf.rate_changes)
          .put("stale_predictions", inc.result.perf.stale_predictions)
          .put("admitted", inc.result.admitted)
          .put("completed_jobs", inc.result.completed_jobs)
          .put("network_utilization", inc.result.network_utilization)
          .put("golden_ok", std::string(golden ? "true" : "false"));
      json.put(std::string(spec.name) + "_" + policy_name(policy), entry);
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("golden: admitted counts, completed jobs, utilization and\n"
              "occupancy %s bit-for-bit across solver modes.\n",
              all_golden ? "agree" : "DISAGREE — investigate");

  if (flags.has("json")) {
    json.put("all_golden", std::string(all_golden ? "true" : "false"));
    if (speedup_4k > 0) json.put("speedup_4k_silo", speedup_4k);
    write_json_file("BENCH_flowsim.json", json);
  }

  obs::RunManifest m;
  m.bench = "flowsim_scale";
  m.seed = static_cast<std::int64_t>(seed);
  m.topology = {{"pods", kScales[2].pods},
                {"racks_per_pod", kScales[2].racks_per_pod},
                {"servers_per_rack", kScales[2].servers_per_rack},
                {"vm_slots_per_server", 8}};
  m.params = {{"sizes", sizes},
              {"occupancy", TextTable::fmt(occupancy, 2)}};
  maybe_write_manifest(flags, m);
  return all_golden ? 0 : 1;
}
