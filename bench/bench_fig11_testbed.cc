// Figure 11 (§6.1): memcached latency distribution (a), tail latency (b)
// and relative throughput (c) for five scenarios on the testbed:
//   TCP (idle)  - tenant A alone, plain TCP
//   TCP         - tenants A+B, plain TCP
//   Silo req1-3 - A guaranteed {1x, 1.5x, 2x} its average bandwidth
//                 (Table 2), B guaranteed the remaining link share
// The message-latency guarantee for a memcached transaction under these
// Silo parameters is 2.01 ms (request + response bounds, §4.1).
#include "bench/bench_util.h"
#include "bench/testbed_common.h"

using namespace silo;
using namespace silo::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto duration = TimeNs{static_cast<std::int64_t>(
      flags.get("duration-s", 0.6) * static_cast<double>(kSec))};
  const double ops = flags.get("ops-per-sec", 40000.0);

  print_header(
      "Figure 11: memcached with Silo guarantees vs TCP on the testbed",
      "Tenant A: memcached (ETC); tenant B: netperf all-to-all. Silo req1-3\n"
      "guarantee A {1x, 1.5x, 2x} its average bandwidth; B gets the rest\n"
      "so that 3*(B_A + B_B) = 10G per host (paper Table 2).");

  // Tenant A's average per-VM bandwidth requirement, measured in
  // isolation (the paper measured 210 Mbps for the full-rate workload).
  TestbedScenario isolation;
  isolation.scheme = sim::Scheme::kTcp;
  isolation.with_bulk = false;
  isolation.duration = duration;
  isolation.ops_per_sec = ops;
  const auto r_idle = run_testbed(isolation);

  // netperf-alone baseline for relative throughput.
  TestbedScenario bulk_alone = isolation;
  bulk_alone.memcached_active = false;
  bulk_alone.with_bulk = true;
  const auto r_bulk_alone = run_testbed(bulk_alone);

  TestbedScenario tcp = isolation;
  tcp.with_bulk = true;
  const auto r_tcp = run_testbed(tcp);

  // Average transaction is ~90 B request + ~330 B value + headers + ACKs;
  // the server VM is the hose bottleneck. Like the paper's measured
  // 210 Mbps (vs ~165 Mbps raw goodput), the measured average includes
  // protocol overhead above the mean payload.
  const double avg_bw = ops * (90 + 330 + 2 * 40) * 8.0 * 1.25;

  struct Row {
    const char* name;
    TestbedResult res;
    double a_bw;
  };
  std::vector<Row> rows;
  rows.push_back({"TCP (idle)", r_idle, 0});
  rows.push_back({"TCP", r_tcp, 0});
  // Guarantees must leave headroom for Ethernet framing (38 B preamble /
  // FCS / IFG per MTU frame), or the stamped load exceeds the wire and
  // NIC lag grows without bound: usable goodput is 10G * 1500/1538.
  const double usable = (10 * kGbps).bps() * 1500.0 / 1538.0;
  int req_idx = 1;
  for (double mult : {1.0, 1.5, 2.0}) {
    TestbedScenario silo = tcp;
    silo.scheme = sim::Scheme::kSilo;
    silo.a_bandwidth = RateBps{avg_bw * mult};
    silo.b_bandwidth = RateBps{usable / 3.0} - silo.a_bandwidth;
    static std::string names[3] = {"Silo req1", "Silo req2", "Silo req3"};
    rows.push_back({names[req_idx - 1].c_str(), run_testbed(silo),
                    silo.a_bandwidth.bps()});
    ++req_idx;
  }

  TextTable lat({"Scenario", "p50 (us)", "p95 (us)", "p99 (us)",
                 "p99.9 (us)", "ops/s", "netperf Gbps"});
  for (const auto& row : rows) {
    const auto& l = row.res.latency_us;
    lat.add_row({row.name, TextTable::fmt(l.percentile(50), 0),
                 TextTable::fmt(l.percentile(95), 0),
                 TextTable::fmt(l.percentile(99), 0),
                 TextTable::fmt(l.percentile(99.9), 0),
                 TextTable::fmt(row.res.mem_ops_per_sec, 0),
                 TextTable::fmt(row.res.bulk_gbps, 2)});
  }
  std::printf("%s\n", lat.to_string().c_str());

  TextTable rel({"Scenario", "memcached tput (rel. to idle)",
                 "netperf tput (rel. to alone)"});
  for (const auto& row : rows) {
    rel.add_row({row.name,
                 TextTable::fmt(row.res.mem_ops_per_sec /
                                    rows[0].res.mem_ops_per_sec,
                                2),
                 row.res.bulk_gbps > 0
                     ? TextTable::fmt(row.res.bulk_gbps /
                                          r_bulk_alone.bulk_gbps,
                                      2)
                     : std::string("-")});
  }
  std::printf("%s\n", rel.to_string().c_str());
  std::printf(
      "Guarantee: 2.01 ms per transaction under Silo req1-3.\n"
      "Paper reference: TCP p99 2.3 ms / p99.9 217 ms; Silo stays within\n"
      "the guarantee at p99 (2.01 ms) for all reqs and at p99.9 for req3;\n"
      "netperf retains 92-99%% of its TCP-alone throughput.\n");

  if (flags.has("json")) {
    JsonObject out;
    out.put("bench", std::string("fig11_testbed"))
        .put("duration_ms", static_cast<std::int64_t>(duration / kMsec))
        .put("ops_per_sec", ops);
    JsonObject scenarios;
    for (const auto& row : rows) {
      JsonObject s;
      s.put("p50_us", row.res.latency_us.percentile(50))
          .put("p99_us", row.res.latency_us.percentile(99))
          .put("p999_us", row.res.latency_us.percentile(99.9))
          .put("mem_ops_per_sec", row.res.mem_ops_per_sec)
          .put("netperf_gbps", row.res.bulk_gbps)
          .put("a_bandwidth_bps", row.a_bw);
      scenarios.put(row.name, s);
    }
    out.put("scenarios", scenarios);
    write_json_file("BENCH_fig11_testbed.json", out);
  }

  obs::RunManifest m;
  m.bench = "fig11_testbed";
  m.seed = TestbedScenario{}.seed;
  m.topology = testbed_topology();
  m.params = {{"duration_ms", std::to_string(duration / kMsec)},
              {"ops_per_sec", TextTable::fmt(ops, 0)},
              {"metrics", "Silo req3 run"}};
  maybe_write_manifest(flags, m, rows.back().res.metrics);
  return 0;
}
