// Figures 15 & 16 (§6.3, datacenter-scale flow simulations):
//   Fig 15a/b - fraction of tenant requests admitted (total / class-A /
//               class-B) at 75% and 90% occupancy for Locality, Oktopus
//               and Silo placement.
//   Fig 16a   - average network utilization vs datacenter occupancy
//               (Permutation-1 class-B traffic).
//   Fig 16b   - network utilization vs Permutation-x at 90% occupancy.
//
// Scaled from the paper's 32K servers to 256 (tunable); three-tier tree
// with 1:5 oversubscription, 50% class-A tenants (all-to-one), class-B
// with Permutation-x flows, Poisson arrivals, jobs = transfer + compute.
#include <vector>

#include "bench/bench_util.h"
#include "flowsim/flow_sim.h"

using namespace silo;
using namespace silo::bench;
using namespace silo::flowsim;

namespace {

FlowSimConfig base_config(const Flags& flags) {
  FlowSimConfig cfg;
  cfg.topo.pods = static_cast<int>(flags.geti("pods", 4));
  cfg.topo.racks_per_pod = static_cast<int>(flags.geti("racks-per-pod", 4));
  cfg.topo.servers_per_rack =
      static_cast<int>(flags.geti("servers-per-rack", 16));
  cfg.topo.vm_slots_per_server = 8;
  cfg.mean_vms = flags.get("mean-vms", 16.0);
  cfg.sim_duration_s = flags.get("duration-s", 600.0);
  cfg.warmup_s = cfg.sim_duration_s / 4;
  cfg.seed = static_cast<std::uint64_t>(flags.geti("seed", 9));
  return cfg;
}

const char* policy_name(placement::Policy p) {
  switch (p) {
    case placement::Policy::kSilo: return "Silo";
    case placement::Policy::kOktopus: return "Oktopus";
    case placement::Policy::kLocality: return "Locality";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::vector<placement::Policy> policies{
      placement::Policy::kLocality, placement::Policy::kOktopus,
      placement::Policy::kSilo};

  print_header(
      "Figures 15-16: admitted requests and network utilization at scale",
      "Flow-level simulation; Locality = greedy packing with ideal-TCP\n"
      "max-min sharing, Oktopus = bandwidth-only reservation, Silo = full\n"
      "queueing-constraint placement.");

  // ---- Figure 15: admitted requests at 75% and 90% occupancy ----------
  for (double occ : {0.75, 0.90}) {
    TextTable t({"Policy", "Total %", "Class-B %", "Class-A %",
                 "measured occupancy"});
    for (auto pol : policies) {
      auto cfg = base_config(flags);
      cfg.policy = pol;
      cfg.occupancy = occ;
      const auto r = run_flow_sim(cfg);
      t.add_row({policy_name(pol), TextTable::fmt(100 * r.admitted_frac(), 1),
                 TextTable::fmt(100 * r.admitted_frac_b(), 1),
                 TextTable::fmt(100 * r.admitted_frac_a(), 1),
                 TextTable::fmt(r.avg_occupancy, 2)});
    }
    std::printf("Figure 15%s: admitted requests, occupancy target %.0f%%\n%s\n",
                occ < 0.8 ? "a" : "b", 100 * occ, t.to_string().c_str());
  }

  // ---- Figure 16a: utilization vs occupancy (Permutation-1) -----------
  {
    TextTable t({"Occupancy", "Silo %", "Oktopus %", "Locality(TCP) %"});
    for (double occ : {0.25, 0.50, 0.75, 0.90}) {
      std::vector<std::string> row{TextTable::fmt(100 * occ, 0)};
      for (auto pol : {placement::Policy::kSilo, placement::Policy::kOktopus,
                       placement::Policy::kLocality}) {
        auto cfg = base_config(flags);
        cfg.policy = pol;
        cfg.occupancy = occ;
        row.push_back(
            TextTable::fmt(100 * run_flow_sim(cfg).network_utilization, 1));
      }
      t.add_row(std::move(row));
    }
    std::printf("Figure 16a: network utilization vs occupancy\n%s\n",
                t.to_string().c_str());
  }

  // ---- Figure 16b: utilization vs Permutation-x at 90% ----------------
  {
    TextTable t({"Permutation-x", "Silo %", "Oktopus %", "Locality(TCP) %",
                 "Silo adm %", "Locality adm %"});
    for (double x : {0.5, 0.75, 1.0, 2.0, 0.0}) {  // 0 = all-to-all (N)
      std::vector<std::string> row{x == 0.0 ? "N (all-to-all)"
                                            : TextTable::fmt(x, 2)};
      double silo_adm = 0, loc_adm = 0;
      for (auto pol : {placement::Policy::kSilo, placement::Policy::kOktopus,
                       placement::Policy::kLocality}) {
        auto cfg = base_config(flags);
        cfg.policy = pol;
        cfg.occupancy = 0.90;
        cfg.permutation_x = x;
        const auto r = run_flow_sim(cfg);
        row.push_back(TextTable::fmt(100 * r.network_utilization, 1));
        if (pol == placement::Policy::kSilo) silo_adm = r.admitted_frac();
        if (pol == placement::Policy::kLocality) loc_adm = r.admitted_frac();
      }
      row.push_back(TextTable::fmt(100 * silo_adm, 1));
      row.push_back(TextTable::fmt(100 * loc_adm, 1));
      t.add_row(std::move(row));
    }
    std::printf("Figure 16b: utilization vs class-B traffic density (90%%)\n%s\n",
                t.to_string().c_str());
  }

  std::printf(
      "Paper reference shape: Silo admits ~4-5%% fewer than Oktopus and\n"
      "its utilization is ~9-11%% lower (the price of delay guarantees);\n"
      "at 90%% occupancy the locality baseline collapses — slow outlier\n"
      "tenants hold slots, so it rejects MORE than Silo — and with denser\n"
      "traffic (larger x) the guarantee-based policies close the\n"
      "utilization gap on the work-conserving TCP baseline.\n");

  // Flow-level simulation — no packet registry; manifest records the run
  // shape with an empty metrics array.
  const auto cfg = base_config(flags);
  obs::RunManifest m;
  m.bench = "fig15_16";
  m.seed = cfg.seed;
  m.topology = {{"pods", cfg.topo.pods},
                {"racks_per_pod", cfg.topo.racks_per_pod},
                {"servers_per_rack", cfg.topo.servers_per_rack},
                {"vm_slots_per_server", cfg.topo.vm_slots_per_server}};
  m.params = {{"mean_vms", TextTable::fmt(cfg.mean_vms, 1)},
              {"duration_s", TextTable::fmt(cfg.sim_duration_s, 0)}};
  maybe_write_manifest(flags, m);
  return 0;
}
