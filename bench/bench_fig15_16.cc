// Figures 15 & 16 (§6.3, datacenter-scale flow simulations):
//   Fig 15a/b - fraction of tenant requests admitted (total / class-A /
//               class-B) at 75% and 90% occupancy for Locality, Oktopus
//               and Silo placement.
//   Fig 16a   - average network utilization vs datacenter occupancy
//               (Permutation-1 class-B traffic).
//   Fig 16b   - network utilization vs Permutation-x at 90% occupancy.
//
// --scale=paper runs the paper's full 32,000-server configuration
// (32 pods x 40 racks x 25 servers, 1500 s simulated) on the event-driven
// incremental flow simulator; --scale=small (the default, and what CI
// runs) keeps the old 256-server scale-down. Explicit --pods /
// --racks-per-pod / --servers-per-rack / --vm-slots / --duration-s /
// --rate-update-s flags override either preset. --threads=N runs the
// distinct (policy, occupancy, x) configurations of the sweep in parallel
// (each flow simulation is self-contained, so the figures are identical
// at any thread count).
#include <chrono>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_util.h"
#include "flowsim/flow_sim.h"
#include "par/thread_executor.h"

using namespace silo;
using namespace silo::bench;
using namespace silo::flowsim;

namespace {

struct BenchSetup {
  FlowSimConfig base;
  bool paper = false;
};

BenchSetup make_setup(const Flags& flags) {
  BenchSetup setup;
  setup.paper = flags.gets("scale", "small") == "paper";
  FlowSimConfig& cfg = setup.base;
  if (setup.paper) {
    cfg.topo.pods = 32;
    cfg.topo.racks_per_pod = 40;
    cfg.topo.servers_per_rack = 25;  // 32,000 servers
    cfg.sim_duration_s = 1500.0;
    cfg.warmup_s = 150.0;
  } else {
    cfg.topo.pods = 4;
    cfg.topo.racks_per_pod = 4;
    cfg.topo.servers_per_rack = 16;  // 256 servers
    cfg.sim_duration_s = 600.0;
    cfg.warmup_s = cfg.sim_duration_s / 4;
  }
  cfg.topo.pods = static_cast<int>(flags.geti("pods", cfg.topo.pods));
  cfg.topo.racks_per_pod =
      static_cast<int>(flags.geti("racks-per-pod", cfg.topo.racks_per_pod));
  cfg.topo.servers_per_rack = static_cast<int>(
      flags.geti("servers-per-rack", cfg.topo.servers_per_rack));
  cfg.topo.vm_slots_per_server = static_cast<int>(
      flags.geti("vm-slots", cfg.topo.vm_slots_per_server));
  cfg.mean_vms = flags.get("mean-vms", 16.0);
  cfg.sim_duration_s = flags.get("duration-s", cfg.sim_duration_s);
  if (flags.has("duration-s")) cfg.warmup_s = cfg.sim_duration_s / 4;
  cfg.solver = flags.gets("solver", "incremental") == "reference"
                   ? SolverMode::kReference
                   : SolverMode::kIncremental;
  // 1 s coalescing grid — the fixed-step fluid simulator's granularity —
  // keeps 90%-occupancy locality tractable once the sharing graph
  // percolates at paper scale; --rate-update-s=0 restores per-event solves.
  cfg.rate_update_s = flags.get("rate-update-s", 1.0);
  cfg.seed = static_cast<std::uint64_t>(flags.geti("seed", 9));
  return setup;
}

const char* policy_name(placement::Policy p) {
  switch (p) {
    case placement::Policy::kSilo: return "Silo";
    case placement::Policy::kOktopus: return "Oktopus";
    case placement::Policy::kLocality: return "Locality";
  }
  return "?";
}

/// Memoized runner: Fig 15 / 16a / 16b revisit the same (policy,
/// occupancy, x) points, and at paper scale each run is minutes of wall
/// clock — run each distinct configuration once.
class Runner {
 public:
  explicit Runner(const FlowSimConfig& base) : base_(base) {}

  struct Entry {
    FlowSimResult result;
    double wall_s = 0;
  };

  const Entry& run(placement::Policy pol, double occ, double x) {
    auto it = cache_.find(key(pol, occ, x));
    if (it != cache_.end()) return it->second;
    Entry e = compute(pol, occ, x);
    total_wall_s += e.wall_s;
    return cache_.emplace(key(pol, occ, x), std::move(e)).first->second;
  }

  /// Fill the cache for `points` using `threads` workers. Each point is an
  /// independent simulation (own config, own RNG seeded from the config),
  /// so parallel pre-warming changes wall clock only, never the figures;
  /// insertion happens sequentially afterwards in the given order.
  void prewarm(const std::vector<std::tuple<placement::Policy, double, double>>&
                   points,
               int threads) {
    std::vector<std::tuple<placement::Policy, double, double>> todo;
    for (const auto& pt : points) {
      const auto [pol, occ, x] = pt;
      if (cache_.count(key(pol, occ, x))) continue;
      bool queued = false;
      for (const auto& q : todo) queued = queued || q == pt;
      if (!queued) todo.push_back(pt);
    }
    if (todo.empty()) return;
    std::vector<Entry> entries(todo.size());
    par::ThreadPoolExecutor pool(threads);
    pool.parallel_for(static_cast<int>(todo.size()), [&](int i) {
      const auto [pol, occ, x] = todo[static_cast<std::size_t>(i)];
      entries[static_cast<std::size_t>(i)] = compute(pol, occ, x);
    });
    for (std::size_t i = 0; i < todo.size(); ++i) {
      const auto [pol, occ, x] = todo[i];
      total_wall_s += entries[i].wall_s;
      cache_.emplace(key(pol, occ, x), std::move(entries[i]));
    }
  }

  double total_wall_s = 0;

 private:
  static std::string key(placement::Policy pol, double occ, double x) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%d|%.4f|%.4f", static_cast<int>(pol),
                  occ, x);
    return buf;
  }

  Entry compute(placement::Policy pol, double occ, double x) const {
    FlowSimConfig cfg = base_;
    cfg.policy = pol;
    cfg.occupancy = occ;
    cfg.permutation_x = x;
    const auto start = std::chrono::steady_clock::now();
    Entry e;
    e.result = run_flow_sim(cfg);
    e.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    return e;
  }

  FlowSimConfig base_;
  std::map<std::string, Entry> cache_;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto setup = make_setup(flags);
  const int servers = setup.base.topo.pods * setup.base.topo.racks_per_pod *
                      setup.base.topo.servers_per_rack;
  Runner runner(setup.base);
  const std::vector<placement::Policy> policies{
      placement::Policy::kLocality, placement::Policy::kOktopus,
      placement::Policy::kSilo};

  // Enumerate every distinct configuration the three figures will ask for
  // and pre-warm the memoized runner — in parallel when --threads > 1.
  const int sweep_threads = static_cast<int>(flags.geti("threads", 1));
  {
    std::vector<std::tuple<placement::Policy, double, double>> points;
    for (double occ : {0.25, 0.50, 0.75, 0.90})
      for (auto pol : policies) points.emplace_back(pol, occ, 1.0);
    std::vector<double> xs{0.5, 0.75, 2.0};
    if (!setup.paper) xs.push_back(0.0);
    for (double x : xs)
      for (auto pol : policies) points.emplace_back(pol, 0.90, x);
    if (sweep_threads > 1) runner.prewarm(points, sweep_threads);
  }

  print_header(
      "Figures 15-16: admitted requests and network utilization at scale",
      "Flow-level simulation; Locality = greedy packing with ideal-TCP\n"
      "max-min sharing, Oktopus = bandwidth-only reservation, Silo = full\n"
      "queueing-constraint placement.");
  std::printf("scale=%s: %d servers, %d VM slots, %.0f s simulated\n\n",
              setup.paper ? "paper" : "small", servers,
              servers * setup.base.topo.vm_slots_per_server,
              setup.base.sim_duration_s);

  JsonObject json;
  json.put("bench", std::string("fig15_16"))
      .put("scale", std::string(setup.paper ? "paper" : "small"))
      .put("servers", servers)
      .put("vm_slots_per_server", setup.base.topo.vm_slots_per_server)
      .put("sim_duration_s", setup.base.sim_duration_s)
      .put("solver", std::string(setup.base.solver == SolverMode::kReference
                                     ? "reference"
                                     : "incremental"))
      .put("sweep_threads", sweep_threads)
      .put("seed", static_cast<std::int64_t>(setup.base.seed));

  // ---- Figure 15: admitted requests at 75% and 90% occupancy ----------
  JsonObject fig15;
  for (double occ : {0.75, 0.90}) {
    TextTable t({"Policy", "Total %", "Class-B %", "Class-A %",
                 "measured occupancy"});
    for (auto pol : policies) {
      const auto& e = runner.run(pol, occ, 1.0);
      const auto& r = e.result;
      t.add_row({policy_name(pol), TextTable::fmt(100 * r.admitted_frac(), 1),
                 TextTable::fmt(100 * r.admitted_frac_b(), 1),
                 TextTable::fmt(100 * r.admitted_frac_a(), 1),
                 TextTable::fmt(r.avg_occupancy, 2)});
      JsonObject entry;
      entry.put("admitted_frac", r.admitted_frac())
          .put("admitted_frac_a", r.admitted_frac_a())
          .put("admitted_frac_b", r.admitted_frac_b())
          .put("arrivals", r.arrivals)
          .put("completed_jobs", r.completed_jobs)
          .put("avg_occupancy", r.avg_occupancy)
          .put("wall_s", e.wall_s);
      char key[48];
      std::snprintf(key, sizeof(key), "%s_occ%.0f", policy_name(pol),
                    100 * occ);
      fig15.put(key, entry);
    }
    std::printf("Figure 15%s: admitted requests, occupancy target %.0f%%\n%s\n",
                occ < 0.8 ? "a" : "b", 100 * occ, t.to_string().c_str());
  }
  json.put("fig15", fig15);

  // ---- Figure 16a: utilization vs occupancy (Permutation-1) -----------
  JsonObject fig16a;
  {
    TextTable t({"Occupancy", "Silo %", "Oktopus %", "Locality(TCP) %"});
    for (double occ : {0.25, 0.50, 0.75, 0.90}) {
      std::vector<std::string> row{TextTable::fmt(100 * occ, 0)};
      JsonObject point;
      for (auto pol : {placement::Policy::kSilo, placement::Policy::kOktopus,
                       placement::Policy::kLocality}) {
        const auto& r = runner.run(pol, occ, 1.0).result;
        row.push_back(TextTable::fmt(100 * r.network_utilization, 1));
        point.put(policy_name(pol), r.network_utilization);
      }
      t.add_row(std::move(row));
      char key[24];
      std::snprintf(key, sizeof(key), "occ%.0f", 100 * occ);
      fig16a.put(key, point);
    }
    std::printf("Figure 16a: network utilization vs occupancy\n%s\n",
                t.to_string().c_str());
  }
  json.put("fig16a", fig16a);

  // ---- Figure 16b: utilization vs Permutation-x at 90% ----------------
  JsonObject fig16b;
  {
    // The all-to-all row (x = 0 sentinel) is quadratic in tenant size:
    // at the paper scale's ~400K admitted 16-VM tenants it would mean
    // hundreds of millions of flows, so it is only run at small scale.
    std::vector<double> xs{0.5, 0.75, 1.0, 2.0};
    if (!setup.paper) xs.push_back(0.0);
    TextTable t({"Permutation-x", "Silo %", "Oktopus %", "Locality(TCP) %",
                 "Silo adm %", "Locality adm %"});
    for (double x : xs) {
      std::vector<std::string> row{x == 0.0 ? "N (all-to-all)"
                                            : TextTable::fmt(x, 2)};
      JsonObject point;
      double silo_adm = 0, loc_adm = 0;
      for (auto pol : {placement::Policy::kSilo, placement::Policy::kOktopus,
                       placement::Policy::kLocality}) {
        const auto& r = runner.run(pol, 0.90, x).result;
        row.push_back(TextTable::fmt(100 * r.network_utilization, 1));
        point.put(policy_name(pol), r.network_utilization);
        if (pol == placement::Policy::kSilo) silo_adm = r.admitted_frac();
        if (pol == placement::Policy::kLocality) loc_adm = r.admitted_frac();
      }
      row.push_back(TextTable::fmt(100 * silo_adm, 1));
      row.push_back(TextTable::fmt(100 * loc_adm, 1));
      t.add_row(std::move(row));
      char key[24];
      if (x == 0.0) {
        std::snprintf(key, sizeof(key), "all_to_all");
      } else {
        std::snprintf(key, sizeof(key), "x%.2f", x);
      }
      fig16b.put(key, point);
    }
    std::printf("Figure 16b: utilization vs class-B traffic density (90%%)\n%s",
                t.to_string().c_str());
    if (setup.paper)
      std::printf("(all-to-all row skipped at paper scale: quadratic flow "
                  "count)\n");
    std::printf("\n");
  }
  json.put("fig16b", fig16b);

  std::printf(
      "Paper reference shape: Silo admits ~4-5%% fewer than Oktopus and\n"
      "its utilization is ~9-11%% lower (the price of delay guarantees);\n"
      "at 90%% occupancy the locality baseline collapses — slow outlier\n"
      "tenants hold slots, so it rejects MORE than Silo — and with denser\n"
      "traffic (larger x) the guarantee-based policies close the\n"
      "utilization gap on the work-conserving TCP baseline.\n");
  std::printf("total simulation wall clock: %.1f s\n", runner.total_wall_s);

  if (flags.has("json")) {
    json.put("total_wall_s", runner.total_wall_s);
    write_json_file("BENCH_fig15_16.json", json);
  }

  obs::RunManifest m;
  m.bench = "fig15_16";
  m.seed = static_cast<std::int64_t>(setup.base.seed);
  m.topology = {{"pods", setup.base.topo.pods},
                {"racks_per_pod", setup.base.topo.racks_per_pod},
                {"servers_per_rack", setup.base.topo.servers_per_rack},
                {"vm_slots_per_server", setup.base.topo.vm_slots_per_server}};
  m.params = {{"scale", setup.paper ? "paper" : "small"},
              {"mean_vms", TextTable::fmt(setup.base.mean_vms, 1)},
              {"duration_s", TextTable::fmt(setup.base.sim_duration_s, 0)}};
  maybe_write_manifest(flags, m);
  return 0;
}
