// Shared harness for the paper's testbed experiments (§2.1 Fig 1 and
// §6.1 Fig 11): five 10 GbE servers, six VM slots each; tenant A runs
// memcached with a Facebook-ETC-like workload (one cache server VM, 14
// clients), tenant B runs netperf-style all-to-all bulk TCP. VMs are
// pinned three-per-tenant-per-server exactly like the testbed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/cluster.h"
#include "util/stats.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

namespace silo::bench {

struct TestbedScenario {
  sim::Scheme scheme = sim::Scheme::kTcp;
  bool with_bulk = true;           ///< tenant B present?
  bool memcached_active = true;    ///< tenant A driving requests?
  RateBps a_bandwidth {};         ///< tenant A guarantee (paced schemes)
  RateBps b_bandwidth {};         ///< tenant B guarantee (paced schemes)
  double ops_per_sec = 40000;
  TimeNs duration = 600 * kMsec;
  std::uint64_t seed = 11;
};

struct TestbedResult {
  Stats latency_us;        ///< memcached transaction latencies
  double mem_ops_per_sec = 0;
  double bulk_gbps = 0;
  workload::BreakdownAgg breakdown;          ///< memcached message legs
  std::vector<obs::MetricSample> metrics;    ///< end-of-run snapshot
};

/// The fixed testbed shape, for --metrics-json manifests.
inline std::vector<std::pair<std::string, std::int64_t>> testbed_topology() {
  return {{"servers", 5}, {"vm_slots_per_server", 6}};
}

inline TestbedResult run_testbed(const TestbedScenario& sc) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 5;
  cfg.topo.vm_slots_per_server = 6;
  cfg.topo.oversubscription = 1.0;
  cfg.scheme = sc.scheme;
  cfg.tcp.min_rto = 200 * kMsec;  // testbed OS stack, not ns2 tuning
  sim::ClusterSim cluster(cfg);

  // Paper layout: three VMs of each tenant on every server. Tenant A's
  // memcached server VM is local VM 0 (on server 0).
  std::vector<int> layout;
  for (int v = 0; v < 15; ++v) layout.push_back(v / 3);

  TenantRequest a;
  a.num_vms = 15;
  a.tenant_class = TenantClass::kDelaySensitive;
  a.guarantee = {sc.a_bandwidth > RateBps{0} ? sc.a_bandwidth : 210 * kMbps,
                 Bytes{1500}, 1 * kMsec, 1 * kGbps};
  const int ta = cluster.add_tenant_pinned(a, layout);

  std::optional<int> tb;
  if (sc.with_bulk) {
    TenantRequest b;
    b.num_vms = 15;
    b.tenant_class = TenantClass::kBandwidthOnly;
    b.guarantee = {sc.b_bandwidth > RateBps{0} ? sc.b_bandwidth : 3 * kGbps,
                   Bytes{1500}, TimeNs{0},
                   sc.b_bandwidth > RateBps{0} ? sc.b_bandwidth : RateBps{0}};
    tb = cluster.add_tenant_pinned(b, layout);
  }

  std::vector<int> clients;
  for (int v = 1; v < 15; ++v) clients.push_back(v);
  workload::EtcDriver::Config etc_cfg;
  etc_cfg.ops_per_sec = sc.ops_per_sec;
  workload::EtcDriver etc(cluster, ta, 0, clients, etc_cfg, sc.seed);

  std::optional<workload::BulkDriver> bulk;
  if (tb) {
    bulk.emplace(cluster, *tb, workload::all_to_all(15), Bytes{256 * kKB});
    bulk->start(sc.duration);
  }
  if (sc.memcached_active) etc.start(sc.duration);
  cluster.run_until(sc.duration + 100 * kMsec);

  TestbedResult res;
  res.latency_us = etc.latencies_us();
  res.mem_ops_per_sec = static_cast<double>(etc.completed_ops()) /
                        (static_cast<double>(sc.duration) / static_cast<double>(kSec));
  if (bulk) res.bulk_gbps = bulk->goodput_bps() / 1e9;
  res.breakdown = etc.breakdown();
  res.metrics = cluster.metrics().snapshot();
  return res;
}

}  // namespace silo::bench
