// Figures 12-14 and Table 4 (§6.2, ns2-scale packet simulations):
// a multi-rooted-tree datacenter at ~90% VM occupancy shared by
//   class-A tenants: delay-sensitive, all-to-one 15 KB message bursts,
//                    guarantees {B~exp(0.25G), S=15KB, d=1ms, Bmax=1G}
//   class-B tenants: bandwidth-only, all-to-all bulk, B~exp(2G), S=1.5KB
// compared across Silo, TCP, DCTCP, HULL, Oktopus and Okto+ (Oktopus
// placement plus burst allowance).
//
// Outputs:
//   Fig 12  - class-A message latency (median / 95th / 99th) per scheme
//   Fig 13  - CDF of class-A tenants by fraction of messages with RTOs
//   Table 4 - outlier tenants whose p99 latency exceeds the §4.1 estimate
//             by >1x / >2x / >8x
//   Fig 14  - class-B message latency normalized to its estimate
//
// Scaled from the paper's 3200 VMs to an 80-VM fabric (tunable via
// flags); the comparison shape, not absolute scale, is the target.
#include <chrono>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "model/guarantee.h"
#include "sim/cluster.h"
#include "util/rng.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

using namespace silo;
using namespace silo::bench;

namespace {

struct SchemeResult {
  Stats class_a_latency_us;              // all class-A messages
  std::vector<double> tenant_rto_frac;   // per class-A tenant
  std::vector<double> tenant_p99_ratio;  // p99 / estimate per class-A tenant
  std::vector<double> b_ratio;           // avg chunk latency / estimate
  int admitted_a = 0, admitted_b = 0, requested = 0;
  // Engine throughput for --json reporting (BENCH_fig12_14.json).
  std::uint64_t events = 0;
  double wall_s = 0;
  std::vector<obs::MetricSample> metrics;  ///< end-of-run snapshot
};

struct ExpConfig {
  // Tenant sizes deliberately do not divide the slot count: servers host
  // VMs of several tenants, so tenants contend on shared NICs and ToR
  // ports exactly as in the paper's 90%-occupancy fabric. Class-A tenants
  // are large enough that a synchronized all-to-one burst
  // ((a_vms-1) x 15 KB = 255 KB) stresses a 312 KB shallow buffer that
  // bulk traffic has already partly filled — the incast regime the
  // paper's Figure 12 runs in.
  int pods = 2, racks_per_pod = 2, servers_per_rack = 8, slots = 4;
  int a_vms = 18, b_vms = 8;
  double occupancy = 0.9;
  double load_factor = 0.12;  ///< aggregator load / hose guarantee
  Bytes a_message = 15 * kKB;
  Bytes b_chunk = 256 * kKB;
  TimeNs duration = 300 * kMsec;
  std::uint64_t seed = 21;
};

SchemeResult run_scheme(sim::Scheme scheme, const ExpConfig& ec) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = ec.pods;
  cfg.topo.racks_per_pod = ec.racks_per_pod;
  cfg.topo.servers_per_rack = ec.servers_per_rack;
  cfg.topo.vm_slots_per_server = ec.slots;
  cfg.topo.oversubscription = 2.5;
  cfg.scheme = scheme;
  cfg.tcp.min_rto = 10 * kMsec;  // ns2-style
  sim::ClusterSim cluster(cfg);
  Rng rng(ec.seed);

  const int total_slots = cfg.topo.pods * cfg.topo.racks_per_pod *
                          cfg.topo.servers_per_rack * cfg.topo.vm_slots_per_server;
  const int target = static_cast<int>(ec.occupancy * total_slots);

  struct ATenant {
    int id;
    SiloGuarantee g;
    std::unique_ptr<workload::BurstDriver> driver;
  };
  struct BTenant {
    int id;
    SiloGuarantee g;
    std::unique_ptr<workload::BulkDriver> driver;
  };
  std::vector<ATenant> as;
  std::vector<BTenant> bs;
  SchemeResult res;

  int placed_vms = 0;
  bool next_is_a = true;
  while (placed_vms + (next_is_a ? ec.a_vms : ec.b_vms) <= target) {
    ++res.requested;
    TenantRequest req;
    req.num_vms = next_is_a ? ec.a_vms : ec.b_vms;
    if (next_is_a) {
      req.tenant_class = TenantClass::kDelaySensitive;
      req.guarantee = {RateBps{std::clamp(rng.exponential(0.25e9), 0.1e9, 0.5e9)},
                       ec.a_message, 1 * kMsec, 1 * kGbps};
    } else {
      req.tenant_class = TenantClass::kBandwidthOnly;
      req.guarantee = {RateBps{std::clamp(rng.exponential(2e9), 0.5e9, 4e9)},
                       Bytes{1500}, TimeNs{0}, RateBps{0}};
      req.guarantee.burst_rate = req.guarantee.bandwidth;
    }
    const auto t = cluster.add_tenant(req);
    if (t) {
      placed_vms += req.num_vms;
      if (next_is_a) {
        as.push_back({*t, req.guarantee, nullptr});
        ++res.admitted_a;
      } else {
        bs.push_back({*t, req.guarantee, nullptr});
        ++res.admitted_b;
      }
    }
    next_is_a = !next_is_a;
  }

  // Drivers: class-A synchronized all-to-one bursts at Poisson epochs,
  // class-B backlogged all-to-all bulk. Each class-A tenant's epoch rate
  // is sized so the aggregator's average load is a fixed fraction of its
  // sampled hose guarantee; the aggregator is the tenant's *last* VM so
  // that (under locality packing) it shares its server and ToR downlink
  // with neighbouring tenants, as fragmentation causes at 90% occupancy.
  std::uint64_t seed = ec.seed * 977;
  for (auto& a : as) {
    workload::BurstDriver::Config bc;
    bc.receiver = ec.a_vms - 1;
    bc.message_size = ec.a_message;
    bc.epochs_per_sec =
        ec.load_factor * a.g.bandwidth.bps() /
        (8.0 * static_cast<double>(ec.a_vms - 1) *
         static_cast<double>(ec.a_message));
    a.driver = std::make_unique<workload::BurstDriver>(cluster, a.id,
                                                       ec.a_vms, bc, ++seed);
    a.driver->start(ec.duration);
  }
  for (auto& b : bs) {
    b.driver = std::make_unique<workload::BulkDriver>(
        cluster, b.id, workload::all_to_all(ec.b_vms), ec.b_chunk);
    b.driver->start(ec.duration);
  }
  const auto wall0 = std::chrono::steady_clock::now();
  cluster.run_until(ec.duration + 100 * kMsec);
  const auto wall1 = std::chrono::steady_clock::now();
  res.events = cluster.events().processed();
  res.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  res.metrics = cluster.metrics().snapshot();

  for (auto& a : as) {
    res.class_a_latency_us.merge(a.driver->latencies_us());
    const auto done = a.driver->completed_messages();
    res.tenant_rto_frac.push_back(
        done > 0 ? 100.0 * static_cast<double>(a.driver->messages_with_rto()) /
                       static_cast<double>(done)
                 : 0.0);
    const double est_us =
        static_cast<double>(max_message_latency(a.g, ec.a_message)) /
        static_cast<double>(kUsec);
    if (done > 0)
      res.tenant_p99_ratio.push_back(
          a.driver->latencies_us().percentile(99) / est_us);
  }
  for (auto& b : bs) {
    // Per-pair achieved rate vs the hose-fair estimate B/(n-1), counting
    // only fabric-crossing pairs (intra-server pairs ride the vswitch and
    // are not network-bound under any scheme).
    const double est_rate = b.g.bandwidth.bps() / (ec.b_vms - 1);
    Stats ratios;
    for (int s = 0; s < ec.b_vms; ++s) {
      for (int d = 0; d < ec.b_vms; ++d) {
        if (s == d || cluster.vm_server(b.id, s) == cluster.vm_server(b.id, d))
          continue;
        const double measured =
            static_cast<double>(cluster.pair_delivered_bytes(b.id, s, d)) *
            8e9 / static_cast<double>(ec.duration);
        if (measured > 0) ratios.add(est_rate / measured);
      }
    }
    if (!ratios.empty()) res.b_ratio.push_back(ratios.mean());
  }
  return res;
}

double frac_above(const std::vector<double>& v, double threshold) {
  if (v.empty()) return 0.0;
  int n = 0;
  for (double x : v) n += x > threshold;
  return 100.0 * n / static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  ExpConfig ec;
  ec.duration = TimeNs{static_cast<std::int64_t>(
      flags.get("duration-ms", 600.0) * static_cast<double>(kMsec))};
  ec.load_factor = flags.get("load-factor", 0.12);
  ec.seed = static_cast<std::uint64_t>(flags.geti("seed", 21));

  print_header(
      "Figures 12-14 + Table 4: message latency across schemes",
      "Class-A: all-to-one 15 KB bursts with {B,S,d,Bmax} guarantees;\n"
      "class-B: all-to-all bulk. Scaled-down ns2-style packet simulation.");

  const std::vector<sim::Scheme> schemes{
      sim::Scheme::kSilo,    sim::Scheme::kTcp,
      sim::Scheme::kDctcp,   sim::Scheme::kHull,
      sim::Scheme::kOktopus, sim::Scheme::kOktopusPlus,
      sim::Scheme::kQjump,   sim::Scheme::kPfabric};

  std::vector<SchemeResult> results;
  for (auto s : schemes) results.push_back(run_scheme(s, ec));

  TextTable fig12({"Scheme", "Median (ms)", "95th (ms)", "99th (ms)",
                   "messages", "admitted A/B"});
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const auto& r = results[i];
    fig12.add_row(
        {sim::scheme_name(schemes[i]),
         TextTable::fmt(r.class_a_latency_us.percentile(50) / 1e3, 3),
         TextTable::fmt(r.class_a_latency_us.percentile(95) / 1e3, 3),
         TextTable::fmt(r.class_a_latency_us.percentile(99) / 1e3, 3),
         std::to_string(r.class_a_latency_us.count()),
         std::to_string(r.admitted_a) + "/" + std::to_string(r.admitted_b)});
  }
  std::printf("Figure 12: class-A message latency\n%s\n",
              fig12.to_string().c_str());

  TextTable fig13({"Scheme", ">0% msgs w/ RTO", ">1%", ">5%", ">10%"});
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const auto& v = results[i].tenant_rto_frac;
    fig13.add_row({sim::scheme_name(schemes[i]),
                   TextTable::fmt(frac_above(v, 0.0), 0) + " %",
                   TextTable::fmt(frac_above(v, 1.0), 0) + " %",
                   TextTable::fmt(frac_above(v, 5.0), 0) + " %",
                   TextTable::fmt(frac_above(v, 10.0), 0) + " %"});
  }
  std::printf("Figure 13: class-A tenants whose messages incur RTOs\n%s\n",
              fig13.to_string().c_str());

  TextTable t4({"Scheme", "Outliers-1x %", "Outliers-2x %", "Outliers-8x %"});
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const auto& v = results[i].tenant_p99_ratio;
    t4.add_row({sim::scheme_name(schemes[i]),
                TextTable::fmt(frac_above(v, 1.0), 1),
                TextTable::fmt(frac_above(v, 2.0), 1),
                TextTable::fmt(frac_above(v, 8.0), 1)});
  }
  std::printf("Table 4: class-A tenants whose p99 exceeds the estimate\n%s\n",
              t4.to_string().c_str());

  TextTable fig14({"Scheme", "<=1x estimate %", "mean ratio", "p95 ratio"});
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const auto& v = results[i].b_ratio;
    Stats s;
    for (double x : v) s.add(x);
    fig14.add_row({sim::scheme_name(schemes[i]),
                   TextTable::fmt(100.0 - frac_above(v, 1.0), 0) + " %",
                   s.empty() ? "-" : TextTable::fmt(s.mean(), 2),
                   s.empty() ? "-" : TextTable::fmt(s.percentile(95), 2)});
  }
  std::printf("Figure 14: class-B message latency / estimate\n%s\n",
              fig14.to_string().c_str());

  std::printf(
      "Paper reference shape: Silo holds ~1 ms class-A latency even at the\n"
      "99th with zero outliers and zero RTO-affected tenants; DCTCP/HULL\n"
      "are ~22x worse at the 99th (2.5x at 95th); Okto (no bursts) is ~60x\n"
      "worse at the median; TCP suffers RTOs for ~21%% of tenants (14%% for\n"
      "HULL). Class-B: Silo/Okto finish exactly at the estimate; TCP/HULL\n"
      "vary around it with a long tail.\n");

  if (flags.has("json")) {
    JsonObject out;
    out.put("bench", std::string("fig12_14"))
        .put("duration_ms", static_cast<std::int64_t>(ec.duration / kMsec))
        .put("load_factor", ec.load_factor)
        .put("seed", static_cast<std::int64_t>(ec.seed));
    JsonObject per_scheme;
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const auto& r = results[i];
      JsonObject s;
      s.put("median_ms", r.class_a_latency_us.percentile(50) / 1e3)
          .put("p95_ms", r.class_a_latency_us.percentile(95) / 1e3)
          .put("p99_ms", r.class_a_latency_us.percentile(99) / 1e3)
          .put("messages", static_cast<std::int64_t>(r.class_a_latency_us.count()))
          .put("admitted_a", r.admitted_a)
          .put("admitted_b", r.admitted_b)
          .put("events", r.events)
          .put("wall_s", r.wall_s)
          .put("events_per_sec", r.events / r.wall_s);
      per_scheme.put(sim::scheme_name(schemes[i]), s);
    }
    out.put("schemes", per_scheme);
    write_json_file("BENCH_fig12_14.json", out);
  }

  obs::RunManifest m;
  m.bench = "fig12_14";
  m.seed = ec.seed;
  m.topology = {{"pods", ec.pods},
                {"racks_per_pod", ec.racks_per_pod},
                {"servers_per_rack", ec.servers_per_rack},
                {"vm_slots_per_server", ec.slots}};
  m.params = {{"duration_ms", std::to_string(ec.duration / kMsec)},
              {"load_factor", TextTable::fmt(ec.load_factor, 3)},
              {"metrics", "Silo run"}};
  maybe_write_manifest(flags, m, results[0].metrics);
  return 0;
}
