// Table 1 (§2.3.1): percentage of messages whose latency exceeds the
// tenant's latency guarantee, as a function of the bandwidth guarantee
// (columns, multiples of the average required bandwidth B) and the burst
// allowance (rows, multiples of the message size M).
//
// Workload: fixed-size messages with Poisson arrivals between two VMs of
// a Silo tenant (pacer enforced, cross-server). A message is "late" when
// its measured latency exceeds the §4.1 bound for the configured
// guarantee. Paper shape: the top-left corner is almost always late; both
// knobs together drive lateness to ~zero toward the bottom right.
#include <vector>

#include "bench/bench_util.h"
#include "model/guarantee.h"
#include "sim/cluster.h"
#include "workload/drivers.h"

using namespace silo;

namespace {

double run_cell(double bw_mult, int burst_mult, Bytes msg, double rate,
                TimeNs duration, std::uint64_t seed,
                std::vector<obs::MetricSample>* snap = nullptr) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 2;
  cfg.topo.vm_slots_per_server = 1;
  cfg.topo.oversubscription = 1.0;
  cfg.scheme = sim::Scheme::kSilo;
  sim::ClusterSim cluster(cfg);

  const double avg_bw = rate * static_cast<double>(msg) * 8.0;
  TenantRequest req;
  req.num_vms = 2;
  req.guarantee = {RateBps{avg_bw * bw_mult}, burst_mult * msg,
                   1 * kMsec, 1 * kGbps};
  req.tenant_class = TenantClass::kDelaySensitive;
  const auto tenant = cluster.add_tenant(req);
  if (!tenant) return -1.0;

  workload::PoissonMessageDriver driver(cluster, *tenant, 0, 1, rate, msg,
                                        seed);
  driver.start(duration);
  cluster.run_until(duration + 200 * kMsec);

  const TimeNs bound = max_message_latency(req.guarantee, msg);
  const double bound_us =
      static_cast<double>(bound) / static_cast<double>(kUsec);
  if (snap) *snap = cluster.metrics().snapshot();
  return 100.0 * driver.latencies_us().fraction_above(bound_us);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const Bytes msg{flags.geti("message-bytes", (10 * kKB).count())};
  const double rate = flags.get("msgs-per-sec", 200.0);
  const auto duration = TimeNs{static_cast<std::int64_t>(
      flags.get("duration-s", 30.0) * static_cast<double>(kSec))};
  const auto seed = static_cast<std::uint64_t>(flags.geti("seed", 1));

  bench::print_header(
      "Table 1: late messages vs bandwidth guarantee and burst allowance",
      "Cell: % of Poisson-arrival messages (size M) whose latency exceeds\n"
      "the guarantee; B = average required bandwidth.");

  const std::vector<double> bw_mults{1.0, 1.4, 1.8, 2.2, 2.6, 3.0};
  const std::vector<int> burst_mults{1, 3, 5, 7, 9};

  TextTable table({"Burst\\Bandwidth", "B", "1.4B", "1.8B", "2.2B", "2.6B",
                   "3B"});
  std::vector<obs::MetricSample> last_snap;
  for (int bm : burst_mults) {
    std::vector<std::string> row{std::to_string(bm) + "M"};
    for (double wm : bw_mults) {
      const double late = run_cell(wm, bm, msg, rate, duration, seed,
                                   &last_snap);
      row.push_back(late < 0 ? "rej" : TextTable::fmt(late, 2));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Paper (Table 1) reference shape: row M: 99 77 55 45 38 33;\n"
              "row 9M: 98 0.4 0.01 0 0 0 — lateness collapses once both\n"
              "burst and bandwidth exceed the average demand.\n");

  obs::RunManifest m;
  m.bench = "table1";
  m.seed = seed;
  m.topology = {{"servers", 2}, {"vm_slots_per_server", 1}};
  m.params = {{"message_bytes", std::to_string(msg.count())},
              {"msgs_per_sec", TextTable::fmt(rate, 1)},
              {"duration_s", std::to_string(duration / kSec)},
              {"metrics", "bottom-right cell (9M / 3B)"}};
  bench::maybe_write_manifest(flags, m, last_snap);
  return 0;
}
