"""Pass 3 — dispatch exhaustiveness.

The engine's determinism story leans on total dispatch: every EventKind has
a case in EventQueue::dispatch, every JournalOp replays, every field of a
protocol struct is folded by its serializer/checksum/apply function. The
compiler warns about a missing enum case only when the switch has no
default; nothing at all checks struct-field coverage ("added a field to
PacerConfigDelta, forgot PacerConfigTable::apply" is a silent wrong-state
bug). This pass makes both total:

  - enum -> handler: every enumerator of a configured enum must be named
    (as `Enum::kVariant` or `case`-style `Kind::kVariant`) inside the
    configured handler function;
  - struct -> handler: every field of a configured struct must be
    referenced (as `.field` or `->field`) inside the configured handler.

Sites are configured in SWITCH_SITES / FIELD_SITES below — adding an
event kind, journal op, or protocol field without updating its handlers
fails CI. Suppress a deliberately-unhandled variant with
`// silo-analyze: allow(dispatch-exhaustive)` on the enumerator/field
declaration line (per-handler exemptions live in the site config with a
reason string).

Rule id: `dispatch-exhaustive`. A site whose enum/struct/function can no
longer be found is itself a finding — config rot fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import lexer
from .base import Finding, Repo

RULE = "dispatch-exhaustive"


@dataclass(frozen=True)
class SwitchSite:
    enum: str        # lexical enum name ("EventKind", "Kind", ...)
    enum_path: str
    fn: str          # qualified handler ("EventQueue::dispatch")
    fn_path: str
    why: str         # what breaks when a variant is unhandled
    exempt: dict = field(default_factory=dict)  # variant -> reason


@dataclass(frozen=True)
class FieldSite:
    struct: str
    struct_path: str
    fn: str
    fn_path: str
    why: str
    exempt: dict = field(default_factory=dict)  # field -> reason


SWITCH_SITES = [
    SwitchSite(
        "EventKind", "src/sim/event_queue.h",
        "EventQueue::dispatch", "src/sim/event_queue.cc",
        "an undispatched event kind is silently dropped by the engine"),
    SwitchSite(
        "JournalOp", "src/core/journal.h",
        "SiloController::recover_from_journal", "src/core/controller.cc",
        "an unreplayed op breaks bit-identical crash recovery"),
    SwitchSite(
        "EvKind", "src/flowsim/flow_sim.cc",
        "Sim::run", "src/flowsim/flow_sim.cc",
        "an undispatched flowsim event stalls the fluid solver"),
    SwitchSite(
        "Kind", "src/sim/faults.h",
        "FaultInjector::execute", "src/sim/faults.cc",
        "an unexecuted fault action makes a chaos schedule a no-op"),
]

FIELD_SITES = [
    FieldSite(
        "PacerConfigDelta", "src/pacer/pacer_config.h",
        "PacerConfigTable::apply", "src/pacer/pacer_config.h",
        "an unapplied delta field diverges hypervisor state from the "
        "controller's snapshot",
        exempt={"server": "routing key; consumed by ControlChannel::ship "
                          "to pick the destination agent, opaque to apply"}),
    FieldSite(
        "JournalRecord", "src/core/journal.h",
        "record_chain", "src/core/journal.cc",
        "a field outside the chain checksum is tamperable without "
        "detection",
        exempt={"chain": "the chain head itself — output of the fold, "
                         "not input"}),
    FieldSite(
        "JournalRecord", "src/core/journal.h",
        "DeltaJournal::serialize", "src/core/journal.cc",
        "an unserialized field is lost across crash + recovery"),
    FieldSite(
        "JournalRecord", "src/core/journal.h",
        "DeltaJournal::deserialize", "src/core/journal.cc",
        "an unread field desynchronizes the byte codec"),
    FieldSite(
        "PacerLeaseRecord", "src/pacer/pacer_config.h",
        "pacer_lease_checksum", "src/pacer/pacer_config.h",
        "a lease field outside the checksum escapes the lending-path "
        "equivalence goldens"),
    FieldSite(
        "PacerConfigRecord", "src/pacer/pacer_config.h",
        "pacer_config_checksum", "src/pacer/pacer_config.h",
        "a config field outside the checksum escapes the delta-vs-snapshot "
        "goldens"),
]


def run(repo: Repo) -> list[Finding]:
    findings: list[Finding] = []
    for site in SWITCH_SITES:
        findings.extend(_check_switch(repo, site))
    for site in FIELD_SITES:
        findings.extend(_check_fields(repo, site))
    return findings


# ---- enum -> handler -------------------------------------------------------

def _check_switch(repo: Repo, site: SwitchSite) -> list[Finding]:
    etoks = lexer.lex(repo.files.get(site.enum_path, ""))
    enum = find_enum(etoks, site.enum)
    if enum is None:
        return [Finding(site.enum_path, 1, RULE,
                        f"configured enum '{site.enum}' not found "
                        f"(dispatch.py site config rotted?)")]
    enum_line, variants = enum
    body = find_function_body(lexer.lex(repo.files.get(site.fn_path, "")),
                              site.fn)
    if body is None:
        return [Finding(site.fn_path, 1, RULE,
                        f"configured handler '{site.fn}' not found "
                        f"(dispatch.py site config rotted?)")]
    _, btoks = body
    handled = _qualified_members(btoks)
    out = []
    for vline, variant in variants:
        if variant in site.exempt or variant in handled:
            continue
        out.append(Finding(
            site.enum_path, vline, RULE,
            f"enum {site.enum}::{variant} has no handler in "
            f"{site.fn} ({site.fn_path}) — {site.why}",
            symbol=f"{site.enum}::{variant}"))
    if not variants:
        out.append(Finding(site.enum_path, enum_line, RULE,
                           f"enum '{site.enum}' parsed with no enumerators"))
    return out


def _qualified_members(toks: list[lexer.Token]) -> set[str]:
    """Identifiers appearing as `Something::name` inside the tokens."""
    out = set()
    for i in range(3, len(toks)):
        if toks[i].kind == lexer.ID and \
                toks[i - 1].value == ":" and toks[i - 2].value == ":":
            out.add(toks[i].value)
    return out


def find_enum(toks: list[lexer.Token],
              name: str) -> tuple[int, list[tuple[int, str]]] | None:
    """Locate `enum [class] <name>` and return (line, [(line, enumerator)]).
    Skips any underlying-type clause; initializer expressions are skipped
    token-wise (until ',' or '}' at depth 0)."""
    n = len(toks)
    for i in range(n - 1):
        if not (toks[i].kind == lexer.ID and toks[i].value == "enum"):
            continue
        j = i + 1
        if j < n and toks[j].value in ("class", "struct"):
            j += 1
        if not (j < n and toks[j].kind == lexer.ID and toks[j].value == name):
            continue
        line = toks[j].line
        j += 1
        while j < n and toks[j].value != "{":
            if toks[j].value == ";":  # forward declaration
                break
            j += 1
        if j >= n or toks[j].value != "{":
            continue
        j += 1
        variants: list[tuple[int, str]] = []
        expect_name = True
        depth = 0
        while j < n:
            v = toks[j].value
            if depth == 0 and v == "}":
                return line, variants
            if v in "({[<":
                depth += 1
            elif v in ")}]>":
                depth -= 1
            elif depth == 0 and v == ",":
                expect_name = True
            elif depth == 0 and expect_name and toks[j].kind == lexer.ID:
                variants.append((toks[j].line, v))
                expect_name = False
            j += 1
        return line, variants
    return None


# ---- struct fields -> handler ----------------------------------------------

def _check_fields(repo: Repo, site: FieldSite) -> list[Finding]:
    stoks = lexer.lex(repo.files.get(site.struct_path, ""))
    fields = find_struct_fields(stoks, site.struct)
    if fields is None:
        return [Finding(site.struct_path, 1, RULE,
                        f"configured struct '{site.struct}' not found "
                        f"(dispatch.py site config rotted?)")]
    body = find_function_body(lexer.lex(repo.files.get(site.fn_path, "")),
                              site.fn)
    if body is None:
        return [Finding(site.fn_path, 1, RULE,
                        f"configured handler '{site.fn}' not found "
                        f"(dispatch.py site config rotted?)")]
    _, btoks = body
    referenced = _member_accesses(btoks)
    out = []
    for fline, fname in fields:
        if fname in site.exempt or fname in referenced:
            continue
        out.append(Finding(
            site.struct_path, fline, RULE,
            f"field {site.struct}::{fname} is not referenced in "
            f"{site.fn} ({site.fn_path}) — {site.why}",
            symbol=f"{site.struct}::{fname}"))
    return out


def _member_accesses(toks: list[lexer.Token]) -> set[str]:
    """Identifiers appearing as `.name` or `->name` inside the tokens."""
    out = set()
    for i in range(1, len(toks)):
        if toks[i].kind != lexer.ID:
            continue
        if toks[i - 1].value == "." or \
                (toks[i - 1].value == ">" and i >= 2 and
                 toks[i - 2].value == "-"):
            out.add(toks[i].value)
    return out


def find_struct_fields(toks: list[lexer.Token],
                       name: str) -> list[tuple[int, str]] | None:
    """Data members of `struct/class <name>`: depth-1 declaration
    statements that are not functions, nested types, usings, or static
    constants. Returns [(line, field_name)] or None if not found."""
    n = len(toks)
    for i in range(n - 1):
        if not (toks[i].kind == lexer.ID and
                toks[i].value in ("struct", "class")):
            continue
        if not (i + 1 < n and toks[i + 1].kind == lexer.ID and
                toks[i + 1].value == name):
            continue
        j = i + 2
        while j < n and toks[j].value not in ("{", ";"):
            j += 1
        if j >= n or toks[j].value != "{":
            continue  # forward declaration; keep looking
        j += 1
        fields: list[tuple[int, str]] = []
        depth = 1
        stmt: list[lexer.Token] = []
        while j < n and depth > 0:
            v = toks[j].value
            if v == "{":
                depth += 1
                stmt = []
            elif v == "}":
                depth -= 1
                stmt = []
            elif depth == 1 and v == ";":
                f = _field_of_stmt(stmt)
                if f is not None:
                    fields.append(f)
                stmt = []
            elif depth == 1 and toks[j].kind != lexer.PP:
                stmt.append(toks[j])
            j += 1
        return fields
    return None


_FIELD_SKIP = {"using", "typedef", "static", "friend", "struct", "class",
               "enum", "union", "template", "static_assert", "operator",
               "public", "private", "protected", "constexpr", "explicit",
               "virtual"}


def _field_of_stmt(stmt: list[lexer.Token]) -> tuple[int, str] | None:
    ids = [t.value for t in stmt if t.kind == lexer.ID]
    if len(ids) < 2 or _FIELD_SKIP & set(ids):
        return None
    last_id = None
    for t in stmt:
        if t.kind == lexer.PUNCT and t.value in ("=", "{"):
            break
        if t.kind == lexer.ID:
            last_id = t
    if last_id is None:
        return None
    # '(' before the initializer marks a member function declaration.
    for t in stmt:
        if t.kind == lexer.PUNCT and t.value in ("=", "{"):
            break
        if t.kind == lexer.PUNCT and t.value == "(":
            return None
    return last_id.line, last_id.value


# ---- function body extraction ----------------------------------------------

def find_function_body(
        toks: list[lexer.Token],
        qualified: str) -> tuple[int, list[lexer.Token]] | None:
    """Locate the definition of `A::B::name` (or a free `name`) and return
    (line, body tokens). Matches the qualified id sequence followed by an
    argument list and an opening brace (skipping member initializers,
    const/noexcept/trailing-return clutter)."""
    parts = qualified.split("::")
    found = _find_body_parts(toks, parts)
    if found is None and len(parts) > 1:
        # In-class definition: `A::b` is written as plain `b` inside the
        # class body. The preceding-token check still rejects calls.
        found = _find_body_parts(toks, parts[-1:])
    return found


def _find_body_parts(
        toks: list[lexer.Token],
        parts: list[str]) -> tuple[int, list[lexer.Token]] | None:
    n = len(toks)
    want = len(parts) * 3 - 2  # ids interleaved with ':' ':' pairs
    for i in range(n - want):
        if not _matches_qualified(toks, i, parts):
            continue
        j = i + want
        if j >= n or toks[j].value != "(":
            continue
        depth = 0
        while j < n:
            v = toks[j].value
            if v == "(":
                depth += 1
            elif v == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        j += 1
        # Scan forward to '{' (body) or ';' (just a declaration).
        while j < n and toks[j].value not in ("{", ";"):
            j += 1
        if j >= n or toks[j].value == ";":
            continue
        line = toks[i].line
        depth = 1
        j += 1
        start = j
        while j < n and depth > 0:
            if toks[j].value == "{":
                depth += 1
            elif toks[j].value == "}":
                depth -= 1
            j += 1
        return line, toks[start:j]
    return None


def _matches_qualified(toks: list[lexer.Token], i: int,
                       parts: list[str]) -> bool:
    for k, part in enumerate(parts):
        idx = i + 3 * k
        if toks[idx].kind != lexer.ID or toks[idx].value != part:
            return False
        if k + 1 < len(parts):
            if toks[idx + 1].value != ":" or toks[idx + 2].value != ":":
                return False
    # Reject a *call* or qualified mention: the id must not be preceded by
    # '.', '->' or '::'.
    if i > 0 and toks[i - 1].value in (".", ":"):
        return False
    return True
