"""CLI for silo-analyze.

Usage:
  python3 scripts/silo_analyze                      # all passes, exit 1 on findings
  python3 scripts/silo_analyze --pass layers --pass metrics
  python3 scripts/silo_analyze --shared-state-out=shared_state.json
  python3 scripts/silo_analyze --list-rules         # rule catalog (id: summary)
  python3 scripts/silo_analyze --self-test          # embedded fixture corpus

Suppression: `// silo-analyze: allow(<rule>)` on the offending line or
alone on the line above. Exit status: 0 clean, 1 findings (or self-test
failure), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __package__ in (None, ""):  # `python3 scripts/silo_analyze` execution
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    __package__ = "silo_analyze"

from . import dispatch, layers, metrics_docs, selftest, shared_state
from .base import Repo

RULES = [
    (layers.RULE_DAG,
     "module include edge not declared in the layer manifest "
     "(scripts/silo_analyze/layers.json), manifest cycle, or stale edge"),
    (layers.RULE_CYCLE,
     "include cycle between src/ files (invisible to the compiler "
     "behind header guards)"),
    (shared_state.RULE_GLOBAL,
     "mutable namespace-scope variable in src/ (process-wide shared "
     "state; blocks the parallel-sim carve-out)"),
    (shared_state.RULE_STATIC_LOCAL,
     "mutable function-local static in src/ (hidden shared state plus "
     "an init guard)"),
    (shared_state.RULE_PTR_KEY,
     "pointer-keyed std::map/std::set in src/ (address-ordered "
     "iteration is allocator-dependent)"),
    (dispatch.RULE,
     "enum variant without a dispatch case, or protocol-struct field "
     "not covered by its serializer/checksum/apply handler"),
    (metrics_docs.RULE_UNDOC,
     "metric registered in src/ but missing from the "
     "docs/OBSERVABILITY.md catalog"),
    (metrics_docs.RULE_UNREG,
     "metric catalogued in docs/OBSERVABILITY.md but registered "
     "nowhere in src/"),
]

PASSES = {
    "layers": layers.run,
    "shared-state": shared_state.run,
    "dispatch": dispatch.run,
    "metrics": metrics_docs.run,
}


def analyze(repo: Repo, pass_names: list[str]) -> tuple[list, list]:
    """Run passes; returns (violations, all census findings)."""
    findings = []
    for name in pass_names:
        findings.extend(PASSES[name](repo))
    repo.apply_allows(findings)
    violations = [f for f in findings if not f.allowed]
    return violations, findings


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="silo_analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog (id: summary) and exit")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded fixture corpus and exit")
    ap.add_argument("--pass", dest="passes", action="append",
                    choices=sorted(PASSES), metavar="NAME",
                    help="run only this pass (repeatable): "
                         + ", ".join(sorted(PASSES)))
    ap.add_argument("--shared-state-out", metavar="PATH",
                    help="write the shared-state census JSON here")
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this file)")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        return 0 if e.code == 0 else 2

    if args.list_rules:
        for rule_id, summary in RULES:
            print(f"{rule_id}: {summary}")
        return 0
    if args.self_test:
        return selftest.run_self_test()

    root = Path(args.root) if args.root else \
        Path(__file__).resolve().parent.parent.parent
    repo = Repo.from_disk(root)
    pass_names = args.passes or sorted(PASSES)
    violations, findings = analyze(repo, pass_names)

    if args.shared_state_out and "shared-state" in pass_names:
        payload = shared_state.census_json(findings)
        Path(args.shared_state_out).write_text(
            json.dumps(payload, indent=2) + "\n")

    for f in violations:
        print(f.format())
    allowed = [f for f in findings if f.allowed]
    summary = (f"silo-analyze: passes [{', '.join(pass_names)}] — "
               f"{len(violations)} violation(s), "
               f"{len(allowed)} reviewed allow(s)")
    if violations:
        print(f"\n{summary}. Suppress a reviewed exception with "
              f"'// silo-analyze: allow(<rule>)'.")
        return 1
    print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
