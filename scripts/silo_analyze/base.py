"""Shared infrastructure for silo-analyze passes: the repo abstraction,
findings, and the `// silo-analyze: allow(<rule>)` suppression protocol.

Suppression mirrors silo-lint: an allow comment on the offending line, or
alone on the line immediately above, suppresses the named rule there. Every
suppression is a reviewed, documented exception — greppable, and carried
into shared_state.json so the census still enumerates allowed state.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

ALLOW_RE = re.compile(
    r"//\s*silo-analyze:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")

SRC_EXTENSIONS = {".h", ".cc", ".cpp", ".hpp"}


@dataclass
class Finding:
    path: str      # repo-relative path the finding anchors to
    line: int      # 1-based
    rule: str
    message: str
    symbol: str = ""     # the variable/enumerator/metric involved, if any
    allowed: bool = False
    note: str = ""       # justification text scraped from the allow line

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Repo:
    """The analyzer's view of the repository: a path->text mapping plus the
    layer manifest. Real runs load from disk; self-tests build synthetic
    repos, so every pass is testable without touching the filesystem."""

    files: dict[str, str]            # repo-relative posix path -> content
    manifest: dict | None = None     # parsed layers.json
    manifest_path: str = "scripts/silo_analyze/layers.json"
    _allow_cache: dict = field(default_factory=dict)

    @staticmethod
    def from_disk(root: Path) -> "Repo":
        files: dict[str, str] = {}
        for top in ("src",):
            base = root / top
            if not base.is_dir():
                continue
            for f in sorted(base.rglob("*")):
                if f.is_file() and f.suffix in SRC_EXTENSIONS:
                    files[f.relative_to(root).as_posix()] = \
                        f.read_text(errors="replace")
        obs = root / "docs/OBSERVABILITY.md"
        if obs.is_file():
            files["docs/OBSERVABILITY.md"] = obs.read_text(errors="replace")
        repo = Repo(files=files)
        mf = root / repo.manifest_path
        if mf.is_file():
            repo.manifest = json.loads(mf.read_text())
        return repo

    def src_files(self) -> list[str]:
        return [p for p in sorted(self.files)
                if p.startswith("src/") and Path(p).suffix in SRC_EXTENSIONS]

    # ---- suppression ----------------------------------------------------

    def _allows(self, path: str) -> dict[int, set[str]]:
        """line -> rule ids allowed on that line (own line or line above)."""
        cached = self._allow_cache.get(path)
        if cached is not None:
            return cached
        allows: dict[int, set[str]] = {}
        lines = self.files.get(path, "").splitlines()
        for ln, text in enumerate(lines, start=1):
            m = ALLOW_RE.search(text)
            if not m:
                continue
            ids = {part.strip() for part in m.group(1).split(",")}
            allows.setdefault(ln, set()).update(ids)
            # An allow comment alone on its line arms the next line too.
            if text.strip().startswith("//"):
                allows.setdefault(ln + 1, set()).update(ids)
        self._allow_cache[path] = allows
        return allows

    def allow_note(self, path: str, line: int) -> str:
        """Justification text: the comment content around an allow() on
        `line` or the armed line above it."""
        lines = self.files.get(path, "").splitlines()
        for ln in (line, line - 1):
            if 1 <= ln <= len(lines) and ALLOW_RE.search(lines[ln - 1]):
                text = lines[ln - 1]
                return text[text.find("//"):].strip()
        return ""

    def apply_allows(self, findings: list[Finding]) -> list[Finding]:
        """Mark findings whose anchor line carries a matching allow()."""
        for f in findings:
            if f.rule in self._allows(f.path).get(f.line, set()):
                f.allowed = True
                f.note = self.allow_note(f.path, f.line)
        return findings


def module_of(path: str) -> str | None:
    """src/<module>/... -> module name; None outside src/."""
    parts = path.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None
