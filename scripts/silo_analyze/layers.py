"""Pass 1 — layer-DAG enforcement over the src/ include graph.

The module layering is frozen in scripts/silo_analyze/layers.json: for each
module under src/, the manifest lists exactly the modules its files may
include from. The pass fails on

  - an include crossing a module boundary without a manifest edge
    (`layer-dag`) — new coupling must be declared in review, not smuggled
    in through a header;
  - a manifest whose declared edges contain a cycle (`layer-dag`) — the
    layering itself must stay a DAG;
  - a declared edge no file uses any more (`layer-dag`) — the manifest
    must shrink when the coupling goes away, so it never overstates what
    the code may do;
  - a src/ module missing from the manifest (`layer-dag`);
  - a cycle between *files* anywhere in src/ (`include-cycle`) — header
    guards hide these from the compiler, and they are exactly the knots a
    per-rack parallel-sim carve-out would have to cut.

Suppress a single include with `// silo-analyze: allow(layer-dag)` on the
include line; prefer fixing the layering.
"""

from __future__ import annotations

import re

from . import lexer
from .base import Finding, Repo, module_of

RULE_DAG = "layer-dag"
RULE_CYCLE = "include-cycle"

_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


def local_includes(text: str) -> list[tuple[int, str]]:
    """(line, quoted include path) for every `#include "..."` in `text`."""
    out = []
    for tok in lexer.lex(text):
        if tok.kind != lexer.PP:
            continue
        m = _INCLUDE_RE.match(tok.value)
        if m:
            out.append((tok.line, m.group(1)))
    return out


def run(repo: Repo) -> list[Finding]:
    findings: list[Finding] = []
    manifest = repo.manifest
    if not manifest or "modules" not in manifest:
        return [Finding(repo.manifest_path, 1, RULE_DAG,
                        "layer manifest missing or has no 'modules' table")]
    declared: dict[str, set[str]] = {
        m: set(deps) for m, deps in manifest["modules"].items()}

    # Manifest self-checks: declared deps must name declared modules, and
    # the declared graph must be acyclic.
    for mod, deps in sorted(declared.items()):
        for dep in sorted(deps - declared.keys()):
            findings.append(Finding(
                repo.manifest_path, 1, RULE_DAG,
                f"module '{mod}' declares dependency on unknown "
                f"module '{dep}'", symbol=f"{mod}->{dep}"))
    for cyc in _cycles({m: sorted(d & declared.keys())
                        for m, d in declared.items()}):
        findings.append(Finding(
            repo.manifest_path, 1, RULE_DAG,
            "declared module layering contains a cycle: " + " -> ".join(cyc),
            symbol=" -> ".join(cyc)))

    # Walk every include in src/.
    used_edges: set[tuple[str, str]] = set()
    file_graph: dict[str, list[tuple[int, str]]] = {}
    for path in repo.src_files():
        mod = module_of(path)
        if mod is None:
            continue
        if mod not in declared:
            findings.append(Finding(
                path, 1, RULE_DAG,
                f"module '{mod}' is not declared in the layer manifest",
                symbol=mod))
            continue
        for line, inc in local_includes(repo.files[path]):
            target = "src/" + inc
            if target in repo.files:
                file_graph.setdefault(path, []).append((line, target))
            tmod = module_of(target)
            if tmod is None or tmod == mod:
                continue
            used_edges.add((mod, tmod))
            if tmod not in declared.get(mod, set()):
                findings.append(Finding(
                    path, line, RULE_DAG,
                    f"include crosses an undeclared layer edge "
                    f"{mod} -> {tmod} (\"{inc}\"); declared deps of "
                    f"'{mod}': {sorted(declared.get(mod, set()))}",
                    symbol=f"{mod}->{tmod}"))

    for mod, deps in sorted(declared.items()):
        for dep in sorted(deps):
            if dep in declared and (mod, dep) not in used_edges:
                findings.append(Finding(
                    repo.manifest_path, 1, RULE_DAG,
                    f"declared edge {mod} -> {dep} is no longer used by any "
                    f"include; remove it from the manifest",
                    symbol=f"{mod}->{dep}"))

    # File-level include cycles.
    plain = {p: [t for _, t in incs] for p, incs in file_graph.items()}
    for cyc in _cycles(plain):
        head = cyc[0]
        line = next((ln for ln, t in file_graph.get(head, [])
                     if t == cyc[1 % len(cyc)]), 1)
        findings.append(Finding(
            head, line, RULE_CYCLE,
            "include cycle between files: " + " -> ".join(cyc),
            symbol=" -> ".join(cyc)))
    return findings


def _cycles(graph: dict[str, list[str]]) -> list[list[str]]:
    """Every distinct cycle found by DFS (reported once, deterministic
    order). Nodes are visited in sorted order, so output is stable."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {v: WHITE for v in graph}
    stack: list[str] = []
    out: list[list[str]] = []
    seen: set[frozenset] = set()

    def visit(v: str) -> None:
        color[v] = GRAY
        stack.append(v)
        for w in graph.get(v, []):
            if w not in color:
                continue
            if color[w] == GRAY:
                cyc = stack[stack.index(w):] + [w]
                key = frozenset(cyc)
                if key not in seen:
                    seen.add(key)
                    out.append(cyc)
            elif color[w] == WHITE:
                visit(w)
        stack.pop()
        color[v] = BLACK

    for v in sorted(graph):
        if color[v] == WHITE:
            visit(v)
    return out
