"""silo-analyze: multi-pass project analyzer for the Silo repo.

Four passes over a real tokenizer + include graph (scripts/silo_lint.py
keeps the per-line determinism rules; this package owns everything that
needs structure):

  layers        module layer-DAG enforcement against layers.json
  shared-state  mutable-shared-state census (emits shared_state.json)
  dispatch      enum/struct dispatch- and serializer-exhaustiveness
  metrics       metric literals vs. the OBSERVABILITY.md catalog

Run `python3 scripts/silo_analyze --help` for the CLI.
"""
