"""Pass 4 — metric-literal extraction vs. the OBSERVABILITY.md catalog.

Every metric registered in src/ must be catalogued, and every catalogued
metric must be registered — the same contract scripts/check_docs.sh used
to enforce with grep. The analyzer does it on the tokenizer instead:

  - src side: every *string literal* matching the dotted metric shape
    `[a-z_]+(\\.[a-z_]+)+` — comments no longer count as registrations
    (grep's classic false negative: a metric deleted from code but still
    named in a comment kept the doc check green);
  - doc side: catalog rows in docs/OBSERVABILITY.md whose first column is
    a backticked dotted name.

Because the comparison is exact-set in both directions, the per-family
checks check_docs.sh carried (controller.diff.*, flowsim.*, ...) are
subsumed: a family vanishing from either side is a set difference.

Rules: `metric-undocumented` (registered, not catalogued — anchored at
the registering literal) and `metric-unregistered` (catalogued, not
registered — anchored at the catalog row).
"""

from __future__ import annotations

import re

from . import lexer
from .base import Finding, Repo

RULE_UNDOC = "metric-undocumented"
RULE_UNREG = "metric-unregistered"

DOC_PATH = "docs/OBSERVABILITY.md"

_METRIC_SHAPE = re.compile(r"^[a-z_]+(\.[a-z_]+)+$")
_DOC_ROW = re.compile(r"^\| `([a-z_]+(?:\.[a-z_]+)+)` \|")


def src_metrics(repo: Repo) -> dict[str, tuple[str, int]]:
    """metric name -> (path, line) of its first registering literal."""
    out: dict[str, tuple[str, int]] = {}
    for path in repo.src_files():
        for tok in lexer.string_literals(repo.files[path]):
            if _METRIC_SHAPE.match(tok.value) and tok.value not in out:
                out[tok.value] = (path, tok.line)
    return out


def doc_metrics(repo: Repo) -> dict[str, int]:
    """catalog metric name -> line of its row."""
    out: dict[str, int] = {}
    for ln, line in enumerate(
            repo.files.get(DOC_PATH, "").splitlines(), start=1):
        m = _DOC_ROW.match(line)
        if m and m.group(1) not in out:
            out[m.group(1)] = ln
    return out


def run(repo: Repo) -> list[Finding]:
    findings: list[Finding] = []
    registered = src_metrics(repo)
    documented = doc_metrics(repo)
    for name in sorted(registered.keys() - documented.keys()):
        path, line = registered[name]
        findings.append(Finding(
            path, line, RULE_UNDOC,
            f"metric '{name}' is registered here but missing from the "
            f"{DOC_PATH} catalog", symbol=name))
    for name in sorted(documented.keys() - registered.keys()):
        findings.append(Finding(
            DOC_PATH, documented[name], RULE_UNREG,
            f"metric '{name}' is catalogued but no string literal in src/ "
            f"registers it", symbol=name))
    return findings
