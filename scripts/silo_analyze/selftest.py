"""Embedded self-test corpus for silo-analyze, in the style of
silo-lint's positive/negative cases: every pass has fixtures that must
flag, fixtures that must stay quiet, and a suppression fixture proving
the `// silo-analyze: allow(<rule>)` escape hatch works. Registered as
the `silo_analyze_selftest` ctest and run first in the CI lint job, so a
rule that silently stops matching fails the build, not the review.
"""

from __future__ import annotations

from . import dispatch, layers, lexer, metrics_docs, shared_state
from .base import Repo

# Each case: (name, files, manifest, pass-runner, expected violations as a
# sorted list of (rule, path) pairs). Allowed findings never count as
# violations — suppression cases expect [].
CASES = []


def case(name, files, manifest, runner, expect):
    CASES.append((name, files, manifest, runner, sorted(expect)))


# ---- layer-DAG pass --------------------------------------------------------

_L_MANIFEST = {"modules": {"a": [], "b": ["a"]}}

case(
    "layers/clean-declared-edge",
    {"src/a/x.h": "#pragma once\n",
     "src/b/y.h": '#pragma once\n#include "a/x.h"\n'},
    _L_MANIFEST, layers.run, [])

case(
    "layers/forbidden-edge",
    {"src/a/x.h": '#include "b/y.h"\n',
     "src/b/y.h": "#pragma once\n"},
    {"modules": {"a": [], "b": []}},
    layers.run, [(layers.RULE_DAG, "src/a/x.h")])

case(
    "layers/forbidden-edge-suppressed",
    {"src/a/x.h":
        '#include "b/y.h"  // silo-analyze: allow(layer-dag) fixture\n',
     "src/b/y.h": "#pragma once\n"},
    {"modules": {"a": [], "b": []}},
    layers.run, [])

case(
    "layers/manifest-cycle",
    {"src/a/x.h": '#include "b/y.h"\n',
     "src/b/y.h": '#include "a/x.h"\n'},
    {"modules": {"a": ["b"], "b": ["a"]}},
    layers.run,
    # The declared layering itself is cyclic, and so is the file graph.
    [(layers.RULE_DAG, "scripts/silo_analyze/layers.json"),
     (layers.RULE_CYCLE, "src/a/x.h")])

case(
    "layers/deliberate-include-cycle",
    {"src/a/x.h": '#pragma once\n#include "a/y.h"\n',
     "src/a/y.h": '#pragma once\n#include "a/x.h"\n'},
    {"modules": {"a": []}},
    layers.run, [(layers.RULE_CYCLE, "src/a/x.h")])

case(
    "layers/stale-declared-edge",
    {"src/a/x.h": "#pragma once\n", "src/b/y.h": "#pragma once\n"},
    _L_MANIFEST, layers.run,
    [(layers.RULE_DAG, "scripts/silo_analyze/layers.json")])

case(
    "layers/undeclared-module",
    {"src/c/z.h": "#pragma once\n"},
    {"modules": {"a": []}},
    layers.run, [(layers.RULE_DAG, "src/c/z.h")])

case(
    "layers/include-in-comment-ignored",
    {"src/a/x.h": '#pragma once\n// #include "b/y.h"\n',
     "src/b/y.h": '#pragma once\n#include "a/x.h"\n'},
    _L_MANIFEST, layers.run, [])

# ---- shared-state census ---------------------------------------------------

_S_MANIFEST = {"modules": {"m": []}}

case(
    "shared-state/mutable-globals",
    {"src/m/x.h": "\n".join([
        "#pragma once",
        "namespace silo {",
        "int counter = 0;",                       # flag
        "inline std::int64_t sink_cell = 0;",     # flag
        "namespace { bool warmed_up; }",          # flag
        "Stats g_stats{};",                       # flag (brace init)
        "constexpr int kTicks = 256;",            # quiet
        "const char kName[] = \"x\";",            # quiet
        "int free_slots(int level);",             # quiet: function decl
        "class Wheel { int depth_ = 0; };",       # quiet: member
        "inline int clamp(int v) { int local = v; return local; }",
        "}",
        ""])},
    _S_MANIFEST, shared_state.run,
    [(shared_state.RULE_GLOBAL, "src/m/x.h")] * 4)

case(
    "shared-state/static-locals",
    {"src/m/x.cc": "\n".join([
        "int next_id() {",
        "  static int id = 0;",                   # flag
        "  static Registry reg{};",               # flag (brace init)
        "  static const Table kT = make();",      # quiet: const
        "  static constexpr int kBits = 8;",      # quiet
        "  return ++id;",
        "}",
        ""])},
    _S_MANIFEST, shared_state.run,
    [(shared_state.RULE_STATIC_LOCAL, "src/m/x.cc")] * 2)

case(
    "shared-state/pointer-keyed",
    {"src/m/x.h": "\n".join([
        "#pragma once",
        "std::map<Packet*, int> by_addr;",            # flag (also a global,
                                                      # hence 2 findings)
        "void f() { std::set<const Flow*> live; }",   # flag
        "void g() { std::map<int, Flow*> by_id; }",   # quiet: pointer value
        "void h() { std::map<std::pair<int, int>, Rec*> m; }",  # quiet
        ""])},
    _S_MANIFEST, shared_state.run,
    [(shared_state.RULE_GLOBAL, "src/m/x.h"),
     (shared_state.RULE_PTR_KEY, "src/m/x.h"),
     (shared_state.RULE_PTR_KEY, "src/m/x.h")])

case(
    # thread_local is the sanctioned escape hatch: per-thread instances
    # cannot be shared across islands, so neither scope form is counted.
    "shared-state/thread-local",
    {"src/m/x.h": "\n".join([
        "#pragma once",
        "namespace silo {",
        "inline thread_local std::int64_t sink_cell = 0;",   # quiet
        "thread_local int scratch;",                         # quiet
        "inline Hist& sink_hist() {",
        "  static thread_local Hist s;",                     # quiet
        "  return s;",
        "}",
        "inline int bump() {",
        "  static int shared_id = 0;",                       # flag: control
        "  return ++shared_id;",
        "}",
        "}",
        ""])},
    _S_MANIFEST, shared_state.run,
    [(shared_state.RULE_STATIC_LOCAL, "src/m/x.h")])

case(
    "shared-state/suppressed",
    {"src/m/x.h": "\n".join([
        "#pragma once",
        "// Sink cell by design: write-only, never read back.",
        "// silo-analyze: allow(mutable-global)",
        "inline std::int64_t sink_cell = 0;",
        "static Hist& h() {",
        "  static Hist s;  // silo-analyze: allow(mutable-static-local)",
        "  return s;",
        "}",
        ""])},
    _S_MANIFEST, shared_state.run, [])

# ---- dispatch exhaustiveness ----------------------------------------------

_DISPATCH_ENUM = "\n".join([
    "#pragma once",
    "enum class EvKind : std::uint8_t {",
    "  kArrival,",
    "  kDepart = 7,",
    "  kTick,",
    "};",
    ""])


def _switch_runner(handler_body: str, exempt=None):
    site = dispatch.SwitchSite(
        "EvKind", "src/m/ev.h", "Engine::dispatch", "src/m/ev.cc",
        "fixture", exempt=exempt or {})

    def run(repo: Repo):
        return dispatch._check_switch(repo, site)
    return run


case(
    "dispatch/complete-switch",
    {"src/m/ev.h": _DISPATCH_ENUM,
     "src/m/ev.cc": "\n".join([
         "void Engine::dispatch(const Ev& ev) {",
         "  switch (ev.kind) {",
         "    case EvKind::kArrival: on_arrival(); break;",
         "    case EvKind::kDepart: on_depart(); break;",
         "    case EvKind::kTick: on_tick(); break;",
         "  }",
         "}",
         ""])},
    None, _switch_runner("", None), [])

case(
    "dispatch/deliberately-missing-case",
    {"src/m/ev.h": _DISPATCH_ENUM,
     "src/m/ev.cc": "\n".join([
         "void Engine::dispatch(const Ev& ev) {",
         "  switch (ev.kind) {",
         "    case EvKind::kArrival: on_arrival(); break;",
         "    case EvKind::kTick: on_tick(); break;",
         "  }",
         "}",
         ""])},
    None, _switch_runner(""), [(dispatch.RULE, "src/m/ev.h")])

case(
    "dispatch/missing-case-suppressed",
    {"src/m/ev.h": _DISPATCH_ENUM.replace(
        "  kDepart = 7,",
        "  kDepart = 7,  // silo-analyze: allow(dispatch-exhaustive)"),
     "src/m/ev.cc": "\n".join([
         "void Engine::dispatch(const Ev& ev) {",
         "  switch (ev.kind) {",
         "    case EvKind::kArrival: on_arrival(); break;",
         "    case EvKind::kTick: on_tick(); break;",
         "  }",
         "}",
         ""])},
    None, _switch_runner(""), [])

case(
    "dispatch/config-rot-fails-loudly",
    {"src/m/ev.h": "#pragma once\n", "src/m/ev.cc": "\n"},
    None, _switch_runner(""), [(dispatch.RULE, "src/m/ev.h")])


def _field_runner(exempt=None):
    site = dispatch.FieldSite(
        "Delta", "src/m/d.h", "Table::apply", "src/m/d.h",
        "fixture", exempt=exempt or {})

    def run(repo: Repo):
        return dispatch._check_fields(repo, site)
    return run


_FIELD_STRUCT = "\n".join([
    "#pragma once",
    "struct Delta {",
    "  int server = -1;",
    "  std::vector<std::pair<std::int64_t, int>> removes;",
    "  std::vector<Rec> upserts;",
    "  bool operator==(const Delta&) const = default;",  # not a field
    "};",
    "class Table {",
    " public:",
    "  void apply(const Delta& delta) {",
    "    for (const auto& k : delta.removes) records_.erase(k);",
    "    for (const auto& r : delta.upserts) records_.insert(r);",
    "  }",
    "};",
    ""])

case(
    "dispatch/field-coverage-in-class-method",
    {"src/m/d.h": _FIELD_STRUCT},
    None, _field_runner(), [(dispatch.RULE, "src/m/d.h")])  # `server` unused

case(
    "dispatch/field-coverage-exempt",
    {"src/m/d.h": _FIELD_STRUCT},
    None, _field_runner(exempt={"server": "routing key"}), [])

# ---- metric catalog --------------------------------------------------------

_M_DOC = "\n".join([
    "### Metric catalog",
    "",
    "| Metric | Type | What |",
    "|--------|------|------|",
    "| `sim.port.drops` | counter | drops |",
    "| `sim.port.ghost` | counter | documented but never registered |",
    ""])

case(
    "metrics/both-directions",
    {"src/m/x.cc": "\n".join([
        'auto c = reg.counter("sim.port.drops", "packets", "port");',
        '// comment naming "sim.port.ghost" must NOT count as registered',
        'auto u = reg.counter("sim.port.undocumented", "packets", "port");',
        ""]),
     "docs/OBSERVABILITY.md": _M_DOC},
    None, metrics_docs.run,
    [(metrics_docs.RULE_UNDOC, "src/m/x.cc"),
     (metrics_docs.RULE_UNREG, "docs/OBSERVABILITY.md")])

case(
    "metrics/clean",
    {"src/m/x.cc":
        'auto c = reg.counter("sim.port.drops", "p", "port");\n'
        '// url in string is fine: log("https://example");\n',
     "docs/OBSERVABILITY.md": "\n".join([
         "| Metric | Type | What |",
         "|--------|------|------|",
         "| `sim.port.drops` | counter | drops |",
         ""])},
    None, metrics_docs.run, [])

case(
    "metrics/undocumented-suppressed",
    {"src/m/x.cc": "\n".join([
        "// internal scratch metric, deliberately uncatalogued",
        "// silo-analyze: allow(metric-undocumented)",
        'auto c = reg.counter("sim.port.scratch", "p", "port");',
        ""]),
     "docs/OBSERVABILITY.md": "| Metric |\n"},
    None, metrics_docs.run, [])

# ---- lexer invariants ------------------------------------------------------

LEXER_CHECKS = [
    # (name, callable -> bool)
    ("lexer/comment-slash-in-string",
     lambda: lexer.split_line_comment(
         'log("https://x"); srand(1);') ==
     ('log("https://x"); srand(1);', "")),
    ("lexer/real-comment-stripped",
     lambda: lexer.split_line_comment(
         "int x = 0;  // srand(1) in comment") ==
     ("int x = 0;  ", "// srand(1) in comment")),
    ("lexer/comment-after-string",
     lambda: lexer.split_line_comment(
         'log("a//b"); // tail') == ('log("a//b"); ', "// tail")),
    ("lexer/escaped-quote",
     lambda: lexer.split_line_comment(
         'log("a\\"//b"); f();') == ('log("a\\"//b"); f();', "")),
    ("lexer/string-literal-extraction",
     lambda: [t.value for t in lexer.string_literals(
         '// "comment.metric"\nreg.counter("a.b");\n/* "block.metric" */\n'
         'auto r = R"(raw.metric)";')] == ["a.b", "raw.metric"]),
    ("lexer/char-literal-not-string",
     lambda: [t.value for t in lexer.string_literals(
         "char c = '\"'; f(\"x.y\");")] == ["x.y"]),
]


# ---- runner ----------------------------------------------------------------

def run_self_test() -> int:
    failures = 0
    for name, files, manifest, runner, expect in CASES:
        repo = Repo(files=files, manifest=manifest)
        findings = repo.apply_allows(runner(repo))
        got = sorted((f.rule, f.path) for f in findings if not f.allowed)
        if got != expect:
            failures += 1
            print(f"SELF-TEST FAIL [{name}]")
            print(f"  expected: {expect}")
            print(f"  got:      {got}")
            for f in findings:
                print(f"    {f.format()}{' (allowed)' if f.allowed else ''}")
    for name, check in LEXER_CHECKS:
        ok = False
        try:
            ok = check()
        except Exception as e:  # noqa: BLE001 - a crash is a failure
            print(f"SELF-TEST ERROR [{name}]: {e!r}")
        if not ok:
            failures += 1
            print(f"SELF-TEST FAIL [{name}]")
    total = len(CASES) + len(LEXER_CHECKS)
    if failures:
        print(f"silo-analyze self-test: {failures} failure(s) "
              f"across {total} cases")
        return 1
    print(f"silo-analyze self-test: {total} cases ok")
    return 0
