"""A small C++ tokenizer for silo-analyze.

silo-lint's per-line regexes are fine for banning identifiers, but the
analyzer passes need to know what is *code*: a metric name in a comment is
documentation, a `//` inside a string literal is not a comment, and
`switch` exhaustiveness needs real brace matching. This lexer produces a
flat token stream that is exact for the constructs the passes care about:

  - line comments, block comments (including multi-line)
  - string literals with escapes, raw strings (R"delim(...)delim"),
    char literals
  - preprocessor directives (one token per directive, continuations folded)
  - identifiers, numbers, and single-character punctuation

It deliberately does not build an AST; the passes walk the token stream
with small, testable helpers (enclosing-function extraction, template
argument scanning, scope classification).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Token kinds
ID = "id"          # identifiers and keywords
NUM = "num"        # numeric literal
STR = "str"        # string literal (value excludes quotes/prefix)
CHAR = "char"      # character literal
PUNCT = "punct"    # one punctuation character
PP = "pp"          # whole preprocessor directive (continuations folded)
COMMENT = "comment"  # // or /* */ comment (value excludes delimiters)


@dataclass
class Token:
    kind: str
    value: str
    line: int  # 1-based line of the token's first character


_ID_START = re.compile(r"[A-Za-z_]")
_ID_CHAR = re.compile(r"[A-Za-z0-9_]")
_RAW_PREFIX = re.compile(r'(?:u8|[uUL])?R$')
_STR_PREFIX = re.compile(r'(?:u8|[uUL])$')


def lex(text: str, *, keep_comments: bool = False) -> list[Token]:
    """Tokenize C++ source. Comments are dropped unless keep_comments."""
    toks: list[Token] = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True  # only whitespace seen since the last newline

    def advance_lines(s: str) -> None:
        nonlocal line
        line += s.count("\n")

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        start_line = line
        # Preprocessor directive: '#' first on its line; fold \-continuations.
        if c == "#" and at_line_start:
            j = i
            while j < n:
                k = text.find("\n", j)
                if k == -1:
                    j = n
                    break
                if text[k - 1] == "\\" if k > 0 else False:
                    j = k + 1
                    continue
                j = k
                break
            directive = text[i:j]
            toks.append(Token(PP, directive, start_line))
            advance_lines(directive)
            i = j
            continue
        at_line_start = False
        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                if j == -1:
                    j = n
                if keep_comments:
                    toks.append(Token(COMMENT, text[i + 2:j], start_line))
                i = j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                j = n if j == -1 else j + 2
                body = text[i:j]
                if keep_comments:
                    toks.append(Token(COMMENT, body[2:-2], start_line))
                advance_lines(body)
                i = j
                continue
        # Identifier (possibly a string-literal prefix).
        if _ID_START.match(c):
            j = i + 1
            while j < n and _ID_CHAR.match(text[j]):
                j += 1
            word = text[i:j]
            if j < n and text[j] == '"' and _RAW_PREFIX.search(word):
                i = _lex_raw_string(text, i, j, toks, start_line)
                advance_lines(text[j:i])
                continue
            if j < n and text[j] in "\"'" and _STR_PREFIX.search(word):
                i = _lex_quoted(text, j, toks, start_line)
                continue
            toks.append(Token(ID, word, start_line))
            i = j
            continue
        # Number (digit, or .digit).
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (_ID_CHAR.match(text[j]) or text[j] == "." or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Token(NUM, text[i:j], start_line))
            i = j
            continue
        # String / char literal.
        if c in "\"'":
            i = _lex_quoted(text, i, toks, start_line)
            continue
        toks.append(Token(PUNCT, c, start_line))
        i += 1
    return toks


def _lex_quoted(text: str, i: int, toks: list[Token], start_line: int) -> int:
    """Lex a quoted literal starting at the quote char; returns end index."""
    quote = text[i]
    j = i + 1
    n = len(text)
    while j < n:
        c = text[j]
        if c == "\\":
            j += 2
            continue
        if c == quote or c == "\n":  # unterminated: stop at newline
            j += 1
            break
        j += 1
    else:
        j = n
    value = text[i + 1:j - 1] if j > i + 1 else ""
    toks.append(Token(STR if quote == '"' else CHAR, value, start_line))
    return j


def _lex_raw_string(text: str, start: int, quote: int,
                    toks: list[Token], start_line: int) -> int:
    """Lex R"delim(...)delim" with the prefix starting at `start`."""
    n = len(text)
    j = quote + 1
    while j < n and text[j] != "(":
        j += 1
    delim = text[quote + 1:j]
    terminator = ")" + delim + '"'
    k = text.find(terminator, j + 1)
    if k == -1:
        toks.append(Token(STR, text[j + 1:], start_line))
        return n
    toks.append(Token(STR, text[j + 1:k], start_line))
    return k + len(terminator)


def split_line_comment(line: str) -> tuple[str, str]:
    """Split one source line into (code, comment) at the first `//` that is
    outside a string/char literal. The comment includes the `//`.

    This is the string-aware replacement for `line.split("//", 1)`:
    `log("https://x"); srand(1);` keeps the srand() call in the code part.
    Block comments are out of scope (silo-lint is line-based and the repo
    style uses `//`); a `/*` on the line is left in the code part.
    """
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            return line[:i], line[i:]
        i += 1
    return line, ""


def string_literals(text: str) -> list[Token]:
    """Every string-literal token in `text` (comments excluded)."""
    return [t for t in lex(text) if t.kind == STR]
