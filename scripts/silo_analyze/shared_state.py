"""Pass 2 — shared-mutable-state census over src/.

The ROADMAP's deterministic-parallel-simulation item needs per-rack
sequential islands; any mutable state reachable from two islands breaks
that carve-out silently. This pass enumerates every place such state can
hide in C++:

  - `mutable-global`: a non-const variable at namespace scope (including
    anonymous namespaces and `inline` variables) — process-wide state two
    engine instances would share;
  - `mutable-static-local`: a non-const function-local `static` — the same
    thing wearing a function costume, plus a C++11 init guard (a hidden
    synchronization point);
  - `pointer-keyed-container`: `std::map`/`std::set` (and multi/unordered
    variants) keyed by a pointer — iteration order is address order, i.e.
    allocator-dependent, the exact nondeterminism silo-lint's
    unordered-container rule exists to keep out.

Beyond pass/fail, the census is a report: run() also feeds
shared_state.json, which enumerates *all* findings including allowed ones
(with their justification comments) — that file is the work-list for the
parallel-sim carve-out.

Detection is precise for this repo's style (token-based, scope-tracked),
not a full C++ parser: `const char* p` counts as const (the pointee is),
and class-static members are left to clang-tidy. The self-test corpus pins
the supported shapes.

`thread_local` variables (namespace-scope or function-local) are *not*
counted: each thread owns its own instance, so two islands running on
different threads cannot race through one, and a single thread never runs
two islands concurrently. That is exactly the confinement the census
exists to prove, so per-thread state is the sanctioned escape hatch —
no allow() comment needed.
"""

from __future__ import annotations

from . import lexer
from .base import Finding, Repo

RULE_GLOBAL = "mutable-global"
RULE_STATIC_LOCAL = "mutable-static-local"
RULE_PTR_KEY = "pointer-keyed-container"

_SKIP_DECL_WORDS = {
    "const", "constexpr", "constinit", "using", "typedef", "friend",
    "template", "static_assert", "extern", "operator", "class", "struct",
    "enum", "union", "namespace", "concept", "requires", "return", "if",
    "for", "while", "switch", "case", "default", "do", "else", "goto",
    "public", "private", "protected", "throw", "delete", "asm",
}

_CONTAINERS = {"map", "set", "multimap", "multiset",
               "unordered_map", "unordered_set",
               "unordered_multimap", "unordered_multiset"}


def run(repo: Repo) -> list[Finding]:
    findings: list[Finding] = []
    for path in repo.src_files():
        toks = lexer.lex(repo.files[path])
        findings.extend(_scan_scopes(path, toks))
        findings.extend(_scan_pointer_keys(path, toks))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ---- namespace-scope / static-local census --------------------------------

def _scan_scopes(path: str, toks: list[lexer.Token]) -> list[Finding]:
    findings: list[Finding] = []
    # Scope kinds: 'namespace' | 'type' | 'block' | 'init'.  File scope
    # behaves like a namespace scope (an empty stack == namespace level).
    stack: list[str] = []
    stmt: list[lexer.Token] = []

    def at_namespace_level() -> bool:
        return all(s == "namespace" for s in stack)

    def innermost() -> str:
        return stack[-1] if stack else "namespace"

    for tok in toks:
        if tok.kind == lexer.PP:
            continue
        v = tok.value
        if tok.kind == lexer.PUNCT and v == "{":
            kind = _classify_open(stmt, innermost())
            if kind == "init":
                if at_namespace_level():
                    _check_decl(path, stmt, findings)
                else:
                    _check_static_local(path, stmt, findings)
            stack.append(kind)
            stmt = []
            continue
        if tok.kind == lexer.PUNCT and v == "}":
            if stack:
                stack.pop()
            stmt = []
            continue
        if tok.kind == lexer.PUNCT and v == ";":
            if at_namespace_level():
                _check_decl(path, stmt, findings)
            elif innermost() == "block":
                _check_static_local(path, stmt, findings)
            stmt = []
            continue
        stmt.append(tok)
    return findings


def _classify_open(stmt: list[lexer.Token], enclosing: str) -> str:
    """What scope does this `{` open, given the statement before it?"""
    ids = [t.value for t in stmt if t.kind == lexer.ID]
    vals = [t.value for t in stmt]
    if ids and ids[0] == "namespace":
        return "namespace"
    if ids and ids[0] == "inline" and len(ids) > 1 and ids[1] == "namespace":
        return "namespace"
    if "=" not in vals and any(w in ids for w in
                               ("class", "struct", "union", "enum")):
        return "type"
    if stmt and stmt[-1].kind == lexer.PUNCT and stmt[-1].value == ")":
        return "block"  # function body / control statement
    if stmt and stmt[-1].value in ("try", "do", "else"):
        return "block"
    # `static Type name{...}` in a function body: a brace-initialized
    # static local, not a nested scope.
    if enclosing == "block" and "static" in ids and len(ids) >= 2 and \
            stmt[-1].kind == lexer.ID:
        return "init"
    # `Type name{...}` / `Type name = {...}` at namespace level is a
    # brace-initialized variable definition, not a new lexical scope kind.
    if enclosing == "namespace" and len(ids) >= 2:
        return "init"
    return "block"


def _decl_name(stmt: list[lexer.Token]) -> lexer.Token | None:
    """The declared identifier: the last ID token before `=` (or before the
    end for `Type name;` / `Type name{...}` forms)."""
    last_id = None
    for t in stmt:
        if t.kind == lexer.PUNCT and t.value == "=":
            break
        if t.kind == lexer.ID:
            last_id = t
    return last_id


def _is_var_decl(stmt: list[lexer.Token]) -> bool:
    ids = [t.value for t in stmt if t.kind == lexer.ID]
    if len(ids) < 2:
        return False  # need at least a type and a name
    if _SKIP_DECL_WORDS & set(ids):
        return False
    # A '(' before any '=' means a function declaration (or a most-vexing
    # parse we choose not to flag; the repo style brace- or =-initializes).
    for t in stmt:
        if t.kind == lexer.PUNCT and t.value == "=":
            break
        if t.kind == lexer.PUNCT and t.value == "(":
            return False
    return True


def _check_decl(path: str, stmt: list[lexer.Token],
                findings: list[Finding]) -> None:
    if any(t.kind == lexer.ID and t.value == "thread_local" for t in stmt):
        return  # per-thread, not shared (see module docstring)
    if not _is_var_decl(stmt):
        return
    name = _decl_name(stmt)
    if name is None:
        return
    findings.append(Finding(
        path, name.line, RULE_GLOBAL,
        f"mutable namespace-scope variable '{name.value}' — process-wide "
        f"state shared by every simulation in the process",
        symbol=name.value))


def _check_static_local(path: str, stmt: list[lexer.Token],
                        findings: list[Finding]) -> None:
    ids = [t.value for t in stmt if t.kind == lexer.ID]
    if "static" not in ids:
        return
    if "thread_local" in ids:
        return  # per-thread, not shared (see module docstring)
    rest = [t for t in stmt if t.value != "static"]
    if not _is_var_decl(rest):
        return
    name = _decl_name(rest)
    if name is None:
        return
    findings.append(Finding(
        path, name.line, RULE_STATIC_LOCAL,
        f"mutable function-local static '{name.value}' — hidden "
        f"process-wide state (plus a C++11 init guard)",
        symbol=name.value))


# ---- pointer-keyed containers ---------------------------------------------

def _scan_pointer_keys(path: str,
                       toks: list[lexer.Token]) -> list[Finding]:
    findings: list[Finding] = []
    n = len(toks)
    for i in range(n - 3):
        if not (toks[i].kind == lexer.ID and toks[i].value == "std"):
            continue
        if not (toks[i + 1].value == ":" and toks[i + 2].value == ":"):
            continue
        j = i + 3
        if j >= n or toks[j].kind != lexer.ID or \
                toks[j].value not in _CONTAINERS:
            continue
        if j + 1 >= n or toks[j + 1].value != "<":
            continue
        # Scan the first template argument (depth-1, up to ',' or '>').
        depth = 1
        k = j + 2
        key_has_ptr = False
        while k < n and depth > 0:
            v = toks[k].value
            if v == "<":
                depth += 1
            elif v == ">":
                depth -= 1
            elif depth == 1 and v == ",":
                break
            elif depth == 1 and v == "*":
                key_has_ptr = True
            k += 1
        if key_has_ptr:
            findings.append(Finding(
                path, toks[j].line, RULE_PTR_KEY,
                f"std::{toks[j].value} keyed by a pointer — iteration "
                f"order is address order (allocator-dependent, breaks "
                f"run-to-run determinism)",
                symbol=f"std::{toks[j].value}"))
    return findings


# ---- machine-readable census ----------------------------------------------

def census_json(findings: list[Finding]) -> dict:
    """shared_state.json payload: every census finding, allowed or not.
    Near-zero entries is the goal; each allowed entry carries the reviewed
    justification comment."""
    ours = [f for f in findings
            if f.rule in (RULE_GLOBAL, RULE_STATIC_LOCAL, RULE_PTR_KEY)]
    return {
        "generator": "scripts/silo_analyze (shared-state census)",
        "schema_version": 1,
        "total": len(ours),
        "violations": sum(1 for f in ours if not f.allowed),
        "allowed": sum(1 for f in ours if f.allowed),
        "entries": [
            {
                "path": f.path,
                "line": f.line,
                "rule": f.rule,
                "symbol": f.symbol,
                "allowed": f.allowed,
                "justification": f.note,
                "message": f.message,
            }
            for f in ours
        ],
    }
