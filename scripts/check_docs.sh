#!/usr/bin/env bash
# Docs consistency checks, run by the CI docs job:
#   1. every relative markdown link points at a file that exists;
#   2. every metric name listed in docs/OBSERVABILITY.md's catalog is
#      actually registered somewhere in src/ (by string literal), and
#      every registered metric appears in the catalog — the table cannot
#      silently rot in either direction.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# ---- 1. relative markdown links ------------------------------------------
while IFS=: read -r file link; do
  # Strip anchors; skip absolute URLs and lambda-capture false positives
  # from C++ code blocks (they contain spaces or '&').
  target="${link%%#*}"
  [ -z "$target" ] && continue
  case "$target" in
    http://*|https://*|mailto:*|*' '*|*'&'*) continue ;;
  esac
  dir=$(dirname "$file")
  if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
    echo "BROKEN LINK: $file -> $link"
    fail=1
  fi
done < <(grep -oHE '\]\(([^)]+)\)' ./*.md docs/*.md \
           | sed -E 's/\]\(([^)]+)\)/\1/')

# ---- 2. metric catalog <-> registration literals -------------------------
# Catalog rows carry the metric name in backticks in the first column;
# metric names are always dotted (sim.*, cluster.*, controller.*), which
# keeps the flight-recorder field table out of this extraction.
doc_metrics=$(grep -oE '^\| `[a-z_]+(\.[a-z_]+)+` \|' docs/OBSERVABILITY.md \
                | sed -E 's/^\| `([a-z_.]+)` \|/\1/' | sort -u)
# Registration calls may wrap the name onto the next line, so extract
# every dotted string literal instead of anchoring on the call.
src_metrics=$(grep -rhoE '"[a-z_]+(\.[a-z_]+)+"' src/ \
                --include='*.cc' --include='*.h' \
                | tr -d '"' | sort -u)

for m in $doc_metrics; do
  if ! grep -rq "\"$m\"" src/; then
    echo "DOCUMENTED BUT NOT REGISTERED: $m"
    fail=1
  fi
done
for m in $src_metrics; do
  if ! grep -q "\`$m\`" docs/OBSERVABILITY.md; then
    echo "REGISTERED BUT NOT DOCUMENTED: $m"
    fail=1
  fi
done

ndoc=$(echo "$doc_metrics" | wc -w)
nsrc=$(echo "$src_metrics" | wc -w)

# ---- 3. metric families cross-checked as sets ----------------------------
# The per-name check above would stay quiet if a whole family vanished
# from both sides (e.g. a prefix rename), so these additionally fail when
# a family has no registrations at all. controller.diff.* spans layers
# (emission counters in src/core, apply-side counters in src/sim), hence
# the whole-src/ scope.
check_family() {  # sets $family_count; flags $fail on mismatch
  local prefix="$1"
  local src doc
  src=$(grep -rhoE "\"${prefix}\.[a-z_]+\"" src/ \
          --include='*.cc' --include='*.h' | tr -d '"' | sort -u)
  doc=$(grep -oE "\`${prefix}\.[a-z_]+\`" docs/OBSERVABILITY.md \
          | tr -d '`' | sort -u)
  if [ -z "$src" ]; then
    echo "NO ${prefix}.* METRICS REGISTERED IN src/"
    fail=1
  fi
  if [ "$src" != "$doc" ]; then
    echo "${prefix}.* FAMILY MISMATCH between src/ and OBSERVABILITY.md"
    echo "  registered: " $src
    echo "  documented: " $doc
    fail=1
  fi
  family_count=$(echo "$src" | wc -w)
}
check_family 'controller\.diff'; ndiff=$family_count
check_family 'controller\.journal'; njournal=$family_count
check_family 'controller\.channel'; nchannel=$family_count
# Lease metrics span layers like controller.diff.*: the controller's own
# grant/revoke accounting lives in src/core, the in-sim issuer's
# (ClusterSim lender) in src/sim — both must stay catalogued.
check_family 'controller\.lease'; nctl_lease=$family_count
check_family 'pacer\.lease'; npacer_lease=$family_count
check_family 'flowsim'; nflowsim=$family_count

# ---- 4. silo-lint rule catalog <-> DESIGN.md -----------------------------
# DESIGN.md's "silo-lint rule catalog" table carries each rule name in
# backticks in its first column; silo_lint.py --list-rules prints
# "name: description" per rule. Both directions must agree, so neither
# the docs nor the linter can grow or drop a rule silently.
lint_rules=$(python3 scripts/silo_lint.py --list-rules \
               | sed -E 's/^([a-z-]+):.*/\1/' | sort -u)
doc_rules=$(grep -oE '^\| `[a-z-]+` \|' DESIGN.md \
              | sed -E 's/^\| `([a-z-]+)` \|/\1/' | sort -u)
for r in $lint_rules; do
  if ! echo "$doc_rules" | grep -qx "$r"; then
    echo "LINT RULE NOT IN DESIGN.md CATALOG: $r"
    fail=1
  fi
done
for r in $doc_rules; do
  if ! echo "$lint_rules" | grep -qx "$r"; then
    echo "DOCUMENTED RULE UNKNOWN TO silo_lint.py: $r"
    fail=1
  fi
done
nrules=$(echo "$lint_rules" | wc -w)

echo "checked markdown links, $ndoc documented / $nsrc registered metrics" \
     "($ndiff controller.diff.*, $njournal controller.journal.*," \
     "$nchannel controller.channel.*, $nctl_lease controller.lease.*," \
     "$npacer_lease pacer.lease.*, $nflowsim flowsim.*), and $nrules" \
     "silo-lint rules against the DESIGN.md catalog"
exit $fail
