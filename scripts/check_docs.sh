#!/usr/bin/env bash
# Docs consistency checks, run by the CI docs job:
#   1. every relative markdown link points at a file that exists;
#   2. the metric catalog in docs/OBSERVABILITY.md matches the metrics
#      registered in src/ — delegated to silo-analyze's metrics pass,
#      which extracts names from *string literals* via a real tokenizer
#      (the grep this script used to carry counted names in comments as
#      registrations, and its per-family checks are subsumed by the
#      exact two-way set comparison);
#   3. the static-analysis rule catalogs (silo-lint + silo-analyze) and
#      the DESIGN.md rule tables agree in both directions.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# ---- 1. relative markdown links ------------------------------------------
while IFS=: read -r file link; do
  # Strip anchors; skip absolute URLs and lambda-capture false positives
  # from C++ code blocks (they contain spaces or '&').
  target="${link%%#*}"
  [ -z "$target" ] && continue
  case "$target" in
    http://*|https://*|mailto:*|*' '*|*'&'*) continue ;;
  esac
  dir=$(dirname "$file")
  if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
    echo "BROKEN LINK: $file -> $link"
    fail=1
  fi
done < <(grep -oHE '\]\(([^)]+)\)' ./*.md docs/*.md \
           | sed -E 's/\]\(([^)]+)\)/\1/')

# ---- 2. metric catalog <-> registration literals -------------------------
if ! python3 scripts/silo_analyze --pass metrics; then
  fail=1
fi

# ---- 3. analyzer rule catalogs <-> DESIGN.md -----------------------------
# DESIGN.md carries each rule name in backticks in the first column of
# its catalog tables; both tools print "name: description" per rule from
# --list-rules. Both directions must agree, so neither the docs nor the
# analyzers can grow or drop a rule silently.
tool_rules=$( (python3 scripts/silo_lint.py --list-rules;
               python3 scripts/silo_analyze --list-rules) \
               | sed -E 's/^([a-z-]+):.*/\1/' | sort -u)
doc_rules=$(grep -oE '^\| `[a-z-]+` \|' DESIGN.md \
              | sed -E 's/^\| `([a-z-]+)` \|/\1/' | sort -u)
for r in $tool_rules; do
  if ! echo "$doc_rules" | grep -qx "$r"; then
    echo "ANALYZER RULE NOT IN DESIGN.md CATALOG: $r"
    fail=1
  fi
done
for r in $doc_rules; do
  if ! echo "$tool_rules" | grep -qx "$r"; then
    echo "DOCUMENTED RULE UNKNOWN TO silo-lint/silo-analyze: $r"
    fail=1
  fi
done
nrules=$(echo "$tool_rules" | wc -w)

echo "checked markdown links, the OBSERVABILITY.md metric catalog" \
     "(via silo-analyze), and $nrules lint/analyze rules against the" \
     "DESIGN.md catalogs"
exit $fail
