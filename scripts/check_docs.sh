#!/usr/bin/env bash
# Docs consistency checks, run by the CI docs job:
#   1. every relative markdown link points at a file that exists;
#   2. every metric name listed in docs/OBSERVABILITY.md's catalog is
#      actually registered somewhere in src/ (by string literal), and
#      every registered metric appears in the catalog — the table cannot
#      silently rot in either direction.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# ---- 1. relative markdown links ------------------------------------------
while IFS=: read -r file link; do
  # Strip anchors; skip absolute URLs and lambda-capture false positives
  # from C++ code blocks (they contain spaces or '&').
  target="${link%%#*}"
  [ -z "$target" ] && continue
  case "$target" in
    http://*|https://*|mailto:*|*' '*|*'&'*) continue ;;
  esac
  dir=$(dirname "$file")
  if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
    echo "BROKEN LINK: $file -> $link"
    fail=1
  fi
done < <(grep -oHE '\]\(([^)]+)\)' ./*.md docs/*.md \
           | sed -E 's/\]\(([^)]+)\)/\1/')

# ---- 2. metric catalog <-> registration literals -------------------------
# Catalog rows carry the metric name in backticks in the first column;
# metric names are always dotted (sim.*, cluster.*, controller.*), which
# keeps the flight-recorder field table out of this extraction.
doc_metrics=$(grep -oE '^\| `[a-z_]+(\.[a-z_]+)+` \|' docs/OBSERVABILITY.md \
                | sed -E 's/^\| `([a-z_.]+)` \|/\1/' | sort -u)
# Registration calls may wrap the name onto the next line, so extract
# every dotted string literal instead of anchoring on the call.
src_metrics=$(grep -rhoE '"[a-z_]+(\.[a-z_]+)+"' src/ \
                --include='*.cc' --include='*.h' \
                | tr -d '"' | sort -u)

for m in $doc_metrics; do
  if ! grep -rq "\"$m\"" src/; then
    echo "DOCUMENTED BUT NOT REGISTERED: $m"
    fail=1
  fi
done
for m in $src_metrics; do
  if ! grep -q "\`$m\`" docs/OBSERVABILITY.md; then
    echo "REGISTERED BUT NOT DOCUMENTED: $m"
    fail=1
  fi
done

ndoc=$(echo "$doc_metrics" | wc -w)
nsrc=$(echo "$src_metrics" | wc -w)
echo "checked markdown links and $ndoc documented / $nsrc registered metrics"
exit $fail
