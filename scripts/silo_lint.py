#!/usr/bin/env python3
"""silo-lint: repo-local determinism and hot-path rules.

The simulator's results are only trustworthy if a run is a pure function of
its configuration and seeds. These checks catch the ways that property has
actually been lost in discrete-event simulators: wall-clock reads, unseeded
randomness, hash-order iteration, and floating-point accumulation of
simulated time. A couple of hot-path hygiene rules ride along.

Usage:
  scripts/silo_lint.py              # lint the repo (src/ bench/ tests/ examples/)
  scripts/silo_lint.py --list-rules # print the rule catalog (id + summary)
  scripts/silo_lint.py --self-test  # run the embedded positive/negative cases

Suppression: append `// silo-lint: allow(<rule-id>)` to the offending line
(or place it alone on the line above). Every suppression is a reviewed,
documented exception - the comment is greppable.

Exit status: 0 clean, 1 findings (or self-test failure), 2 usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from silo_analyze.lexer import split_line_comment  # noqa: E402

REPO_DIRS = ["src", "bench", "tests", "examples"]
EXTENSIONS = {".h", ".cc", ".cpp", ".hpp"}

ALLOW_RE = re.compile(r"//\s*silo-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")


class Rule:
    """One lint rule: a set of (regex, scope-prefixes[, exempt-prefixes])
    patterns.

    A pattern only applies to files whose repo-relative path starts with one
    of its scope prefixes; `("",)` means everywhere. An optional third
    element lists exempt prefixes carved *out* of the scope — narrower than
    FILE_ALLOWLIST (per pattern, not per rule) so e.g. `src/par/` may use
    threading includes while its `<ctime>` ban stays live. `self_test` maps
    synthetic repo paths to (line, should_flag) cases.
    """

    def __init__(self, rule_id, summary, why, patterns, self_test):
        self.id = rule_id
        self.summary = summary
        self.why = why
        self.patterns = [(re.compile(p[0]), p[1], p[2] if len(p) > 2 else ())
                         for p in patterns]
        self.self_test = self_test

    def applies(self, path: str, line: str) -> bool:
        for rx, scopes, exempt in self.patterns:
            if not any(path.startswith(s) for s in scopes):
                continue
            if any(path.startswith(e) for e in exempt):
                continue
            if rx.search(line):
                return True
        return False


RULES = [
    Rule(
        "wall-clock",
        "no wall-clock reads in simulation or test code",
        "A simulated run must be a pure function of config + seeds; reading "
        "host time makes traces unreproducible. steady_clock is additionally "
        "banned in src/ (bench harnesses may use it to time the simulator "
        "itself, which is reported as host perf, never fed back into results).",
        patterns=[
            (r"std::chrono::system_clock", ("",)),
            (r"\bgettimeofday\s*\(", ("",)),
            (r"\bclock_gettime\s*\(", ("",)),
            (r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)", ("",)),
            (r"std::chrono::steady_clock", ("src/",)),
        ],
        self_test=[
            ("src/sim/x.cc", "auto t = std::chrono::system_clock::now();", True),
            ("src/sim/x.cc", "auto t = std::chrono::steady_clock::now();", True),
            ("bench/x.cc", "auto t = std::chrono::steady_clock::now();", False),
            ("tests/x.cc", "srand(time(nullptr));", True),
            ("src/sim/x.cc", "TimeNs transmission_time(Bytes b);", False),
            ("src/sim/x.cc", "const TimeNs t = ev.time(); ", False),
        ],
    ),
    Rule(
        "unseeded-random",
        "no std::random_device, rand(), or srand()",
        "Every random stream must come from the repo's seeded Rng "
        "(src/util/rng.h) so any run can be replayed from its recorded seed. "
        "random_device and the C PRNG have process-global, unseedable state.",
        patterns=[
            (r"std::random_device", ("",)),
            (r"\bsrand\s*\(", ("",)),
            (r"(?:std::|[^\w.])rand\s*\(\s*\)", ("",)),
        ],
        self_test=[
            ("src/util/x.cc", "std::random_device rd;", True),
            ("tests/x.cc", "int r = rand();", True),
            ("bench/x.cc", "srand(42);", True),
            ("src/sim/x.cc", "rng.uniform_int(0, 9);", False),
            ("src/sim/x.cc", "grand_total += 1;", False),
            ("src/sim/x.cc", "x = operand();", False),
            # `//` inside a string literal is not a comment: code after it
            # must still be linted...
            ("src/sim/x.cc", 'log("see https://x.test"); srand(42);', True),
            # ...while a real trailing comment is still stripped.
            ("src/sim/x.cc", "int x = 0;  // srand(1) only in comment", False),
        ],
    ),
    Rule(
        "unordered-container",
        "no std::unordered_map / std::unordered_set in src/",
        "Iteration order of hash containers depends on pointer values and "
        "library version; any trace, checksum, or allocation decision derived "
        "from it silently breaks run-to-run determinism. Use std::map or a "
        "sorted vector (the keyed populations here are small).",
        patterns=[
            (r"\bstd::unordered_(?:map|set|multimap|multiset)\b", ("src/",)),
            (r"#\s*include\s*<unordered_(?:map|set)>", ("src/",)),
        ],
        self_test=[
            ("src/sim/x.h", "std::unordered_map<int, int> m;", True),
            ("src/sim/x.h", "#include <unordered_map>", True),
            ("tests/x.cc", "std::unordered_map<int, int> m;", False),
            ("src/sim/x.h", "std::map<int, int> m;", False),
            # Anti-entropy sweeps iterate per-server state; a hash map there
            # would randomize repair order (and thus every rng draw the
            # repairs make), so the channel must keep sorted containers.
            ("src/sim/control_channel.h",
             "std::unordered_map<int, PacerConfigTable> shadow_;", True),
            ("src/sim/control_channel.h",
             "std::map<int, Agent> agents_;", False),
        ],
    ),
    Rule(
        "raw-new-delete",
        "no raw new/delete in sim hot paths (src/sim/, src/pacer/)",
        "The per-packet path must stay allocation-free (PacketPool, recycled "
        "slots); raw new/delete both allocates and invites lifetime bugs the "
        "pool's checked handles exist to prevent. Cold setup code uses "
        "std::make_unique, which is exempt.",
        patterns=[
            (r"(?:^|[^\w_])new\s+[A-Za-z_:][\w:<>, ]*[({]", ("src/sim/", "src/pacer/")),
            (r"(?:^|[^\w_])delete\s*(?:\[\s*\])?\s+?[A-Za-z_*(]", ("src/sim/", "src/pacer/")),
        ],
        self_test=[
            ("src/sim/x.cc", "Packet* p = new Packet();", True),
            ("src/sim/x.cc", "delete p;", True),
            ("src/sim/x.cc", "delete[] arr;", True),
            ("src/sim/x.cc", "auto p = std::make_unique<Packet>();", False),
            ("src/sim/x.cc", "TcpFlow(const TcpFlow&) = delete;", False),
            ("src/core/x.cc", "Packet* p = new Packet();", False),
            ("src/sim/x.cc", "renewed = true;", False),
            ("src/sim/x.cc", "// new rcv_next_ is re-ACKed, not delivered", False),
        ],
    ),
    Rule(
        "float-time",
        "no float/double variables holding simulated time",
        "Accumulating simulated time in floating point loses nanoseconds as "
        "magnitudes grow, so event order drifts with run length. Simulated "
        "time is TimeNs (int64) end to end; doubles touching time must be "
        "transient conversions at the edges, never named time-carrying state.",
        patterns=[
            (r"\b(?:float|double)\s+\w*(?:time_ns|now_ns|clock_ns|_deadline_ns)\b", ("",)),
            (r"\b(?:float|double)\s+(?:now|clock)_\w*", ("",)),
            (r"std::chrono::duration<\s*(?:float|double)", ("src/",)),
        ],
        self_test=[
            ("src/sim/x.h", "double now_ns = 0;", True),
            ("src/sim/x.h", "float sim_time_ns;", True),
            ("src/sim/x.h", "double clock_ns_;", True),
            ("src/sim/x.h", "std::chrono::duration<double> d;", True),
            ("bench/x.cc", "std::chrono::duration<double>(t1 - t0).count();", False),
            ("src/pacer/x.h", "const double wait_ns = deficit * 8e9 / r;", False),
            ("src/sim/x.h", "TimeNs now_ {};", False),
        ],
    ),
    Rule(
        "banned-include",
        "no <ctime>, <thread>, <mutex>, <condition_variable>, <future> "
        "(threading carve-out: src/par/ only); <random> only inside "
        "src/util/rng.h",
        "The simulator core is single-threaded and deterministic by design: "
        "thread primitives would introduce scheduling nondeterminism, <ctime> "
        "is wall clock, and raw <random> bypasses the seeded Rng wrapper that "
        "makes every stream replayable. The one sanctioned exception is "
        "src/par/ — the conservative-window island executor, whose whole job "
        "is to confine threads behind barrier-separated phases; protocol code "
        "everywhere else in src/ stays thread-free so islands can run it "
        "sequentially. Wall clock stays banned even there.",
        patterns=[
            (r"#\s*include\s*<(?:thread|mutex|condition_variable|future)>",
             ("",), ("src/par/",)),
            (r"#\s*include\s*<ctime>", ("",)),
            (r"#\s*include\s*<random>", ("src/",)),
        ],
        self_test=[
            ("src/sim/x.cc", "#include <thread>", True),
            ("src/sim/x.cc", "#include <ctime>", True),
            ("src/core/x.cc", "#include <random>", True),
            ("src/util/rng.h", "#include <random>", False),  # via allowlist below
            ("src/sim/x.cc", "#include <functional>", False),
            ("tests/x.cc", "#include <random>", False),
            # src/par/ carve-out: threading primitives are the sync layer's
            # reason to exist; everything else stays banned there too.
            ("src/par/thread_executor.h", "#include <thread>", False),
            ("src/par/thread_executor.cc", "#include <mutex>", False),
            ("src/par/thread_executor.cc", "#include <condition_variable>", False),
            ("src/par/thread_executor.cc", "#include <ctime>", True),
            ("src/par/thread_executor.cc", "#include <random>", True),
            # The carve-out is exactly src/par/ — not sim, not bench.
            ("src/sim/parallel.cc", "#include <mutex>", True),
            ("bench/bench_event_engine.cc", "#include <thread>", True),
        ],
    ),
]

# Files exempt from specific rules by design, equivalent to an allow()
# comment on every matching line. Keep this list short and justified:
#   - src/util/rng.h IS the seeded wrapper around <random>.
FILE_ALLOWLIST = {
    "src/util/rng.h": {"banned-include"},
}


def allowed_ids(line: str) -> set[str]:
    m = ALLOW_RE.search(line)
    if not m:
        return set()
    return {part.strip() for part in m.group(1).split(",")}


def lint_lines(path: str, lines: list[str]):
    """Yield (line_number, rule, text) findings for one file."""
    prev_allow: set[str] = set()
    for ln, line in enumerate(lines, start=1):
        here_allow = allowed_ids(line) | prev_allow
        # A line that is only an allow-comment arms suppression for the next line.
        prev_allow = allowed_ids(line) if line.strip().startswith("//") else set()
        # Rules never match comments — but a `//` inside a string literal
        # (a URL, a path) is not a comment; the old `line.split("//", 1)`
        # truncated there and hid anything after it from every rule.
        stripped = split_line_comment(line)[0]
        for rule in RULES:
            if rule.id in here_allow or rule.id in FILE_ALLOWLIST.get(path, set()):
                continue
            if rule.applies(path, stripped):
                yield ln, rule, line.rstrip()


def run_lint(root: Path) -> int:
    findings = 0
    for top in REPO_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for f in sorted(base.rglob("*")):
            if f.suffix not in EXTENSIONS or not f.is_file():
                continue
            rel = f.relative_to(root).as_posix()
            lines = f.read_text(errors="replace").splitlines()
            for ln, rule, text in lint_lines(rel, lines):
                print(f"{rel}:{ln}: [{rule.id}] {rule.summary}")
                print(f"    {text.strip()}")
                findings += 1
    if findings:
        print(f"\nsilo-lint: {findings} finding(s). Suppress a reviewed "
              f"exception with '// silo-lint: allow(<rule>)'.")
        return 1
    print("silo-lint: clean")
    return 0


def run_self_test() -> int:
    failures = 0
    for rule in RULES:
        for path, line, should_flag in rule.self_test:
            flagged = any(
                r.id == rule.id
                for _, r, _ in lint_lines(path, [line])
            )
            if flagged != should_flag:
                print(f"SELF-TEST FAIL [{rule.id}] {path}: {line!r} "
                      f"expected flag={should_flag}, got {flagged}")
                failures += 1
        # The escape hatch must suppress every rule's positive cases.
        for path, line, should_flag in rule.self_test:
            if not should_flag:
                continue
            esc = line + f"  // silo-lint: allow({rule.id})"
            if any(r.id == rule.id for _, r, _ in lint_lines(path, [esc])):
                print(f"SELF-TEST FAIL [{rule.id}] allow() did not suppress: {esc!r}")
                failures += 1
    n = sum(len(r.self_test) for r in RULES)
    if failures:
        print(f"silo-lint self-test: {failures} failure(s) across {n} cases")
        return 1
    print(f"silo-lint self-test: {n} cases ok "
          f"(+{sum(1 for r in RULES for c in r.self_test if c[2])} suppression checks)")
    return 0


def list_rules() -> int:
    for rule in RULES:
        print(f"{rule.id}: {rule.summary}")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        print(__doc__, file=sys.stderr)
        return 2
    root = Path(__file__).resolve().parent.parent
    if argv == ["--self-test"]:
        return run_self_test()
    if argv == ["--list-rules"]:
        return list_rules()
    if argv:
        print(f"unknown argument: {argv[0]}", file=sys.stderr)
        return 2
    return run_lint(root)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
