#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"
#include "workload/patterns.h"

namespace silo::workload {
namespace {

TEST(Patterns, AllToOne) {
  const auto pairs = all_to_one(5, 2);
  EXPECT_EQ(pairs.size(), 4u);
  for (const auto& [s, d] : pairs) {
    EXPECT_EQ(d, 2);
    EXPECT_NE(s, 2);
  }
  EXPECT_THROW(all_to_one(1), std::invalid_argument);
}

TEST(Patterns, AllToAll) {
  const auto pairs = all_to_all(4);
  EXPECT_EQ(pairs.size(), 12u);
  std::set<std::pair<int, int>> uniq(pairs.begin(), pairs.end());
  EXPECT_EQ(uniq.size(), 12u);
  for (const auto& [s, d] : pairs) EXPECT_NE(s, d);
}

TEST(Patterns, PermutationIntegerX) {
  Rng rng(3);
  const auto pairs = permutation(10, 2.0, rng);
  EXPECT_EQ(pairs.size(), 20u);
  // No self-loops, no duplicate destination per sender.
  std::set<std::pair<int, int>> uniq(pairs.begin(), pairs.end());
  EXPECT_EQ(uniq.size(), pairs.size());
  for (const auto& [s, d] : pairs) EXPECT_NE(s, d);
}

TEST(Patterns, PermutationFractionalX) {
  Rng rng(4);
  // x = 0.5: on average half the VMs send one flow.
  std::size_t total = 0;
  for (int trial = 0; trial < 200; ++trial)
    total += permutation(10, 0.5, rng).size();
  EXPECT_NEAR(static_cast<double>(total) / 200.0, 5.0, 0.6);
}

TEST(Patterns, PermutationNMinusOneIsAllToAll) {
  Rng rng(5);
  const auto pairs = permutation(6, 5.0, rng);
  EXPECT_EQ(pairs.size(), 30u);
}

TEST(Patterns, Validation) {
  Rng rng(6);
  EXPECT_THROW(permutation(1, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(permutation(4, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(all_to_all(1), std::invalid_argument);
}

}  // namespace
}  // namespace silo::workload
