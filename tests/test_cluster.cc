#include <gtest/gtest.h>

#include "core/controller.h"
#include "sim/cluster.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

namespace silo::sim {
namespace {

ClusterConfig small_cluster(Scheme scheme) {
  ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 5;
  cfg.topo.vm_slots_per_server = 6;
  cfg.topo.server_link_rate = 10 * kGbps;
  cfg.topo.oversubscription = 1.0;
  cfg.scheme = scheme;
  cfg.tcp.min_rto = 10 * kMsec;
  return cfg;
}

TenantRequest silo_tenant(int vms, RateBps bw, Bytes burst = 15 * kKB,
                          TimeNs delay = 1 * kMsec) {
  TenantRequest r;
  r.num_vms = vms;
  r.guarantee = {bw, burst, delay, 1 * kGbps};
  r.tenant_class = TenantClass::kDelaySensitive;
  return r;
}

TEST(ClusterSim, AdmitsAndPlacesTenant) {
  ClusterSim sim(small_cluster(Scheme::kSilo));
  const auto t = sim.add_tenant(silo_tenant(10, 300 * kMbps));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(sim.tenant_vm_count(*t), 10);
  for (int v = 0; v < 10; ++v) {
    EXPECT_GE(sim.vm_server(*t, v), 0);
    EXPECT_LT(sim.vm_server(*t, v), 5);
  }
}

TEST(ClusterSim, ConfigDeltaApplicationConsumesSimulatedTime) {
  ClusterSim sim(small_cluster(Scheme::kSilo));
  SiloController ctl(small_cluster(Scheme::kSilo).topo);
  const auto h = ctl.admit(silo_tenant(4, 300 * kMbps));
  ASSERT_TRUE(h.has_value());
  const auto deltas = ctl.drain_config_deltas();
  ASSERT_FALSE(deltas.empty());

  sim.apply_config_deltas(deltas);
  // The cost is charged up front; the table lands only after the shipping
  // latency, so just before the first landing nothing is applied yet.
  EXPECT_EQ(sim.metrics().value("controller.diff.applied"), 0);
  std::int64_t expected_ns = 0;
  for (const auto& d : deltas)
    expected_ns +=
        (sim.config().config_apply_delay +
         sim.config().config_record_apply_cost *
             static_cast<std::int64_t>(d.removes.size() + d.upserts.size()))
            .count();
  EXPECT_EQ(sim.metrics().value("controller.diff.apply_ns"), expected_ns);

  sim.run_until(1 * kSec);
  EXPECT_EQ(sim.metrics().value("controller.diff.applied"),
            static_cast<std::int64_t>(deltas.size()));
  // Each server's applied table now reproduces the controller snapshot.
  for (const auto& d : deltas) {
    const auto snapshot = ctl.server_config(d.server);
    EXPECT_EQ(sim.host(d.server).pacer_config().checksum(),
              pacer_config_checksum(snapshot));
  }
}

TEST(ClusterSim, MessageDelivery) {
  ClusterSim sim(small_cluster(Scheme::kTcp));
  TenantRequest req;
  req.num_vms = 2;
  req.guarantee = {1 * kGbps, 15 * kKB, TimeNs{0}, 1 * kGbps};
  const auto t = sim.add_tenant(req);
  ASSERT_TRUE(t);
  bool done = false;
  TimeNs latency {};
  sim.send_message(*t, 0, 1, 10 * kKB,
                   [&](const ClusterSim::MessageResult& r) {
                     done = true;
                     latency = r.latency;
                   });
  sim.run_until(1 * kSec);
  ASSERT_TRUE(done);
  EXPECT_GT(latency, TimeNs{0});
  EXPECT_LT(latency, 1 * kMsec);
  EXPECT_EQ(sim.pair_delivered_bytes(*t, 0, 1), (10 * kKB).count());
  // Drained run: every pool packet was returned (exactly-one-owner).
  EXPECT_EQ(sim.events().pool().live(), 0);
}

// Intra-server traffic rides the vswitch and is deliberately unpaced (the
// paper's guarantees are NIC-to-NIC); tests about pacing therefore pin one
// VM per server to force fabric paths.
ClusterConfig spread_cluster(Scheme scheme) {
  auto cfg = small_cluster(scheme);
  cfg.topo.vm_slots_per_server = 1;
  return cfg;
}

TEST(ClusterSim, SiloMessageMeetsGuarantee) {
  // One paced tenant alone: message latency must stay within the §4.1
  // bound M/Bmax + d (single burst-compliant message).
  ClusterSim sim(spread_cluster(Scheme::kSilo));
  const auto g = SiloGuarantee{500 * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  TenantRequest req;
  req.num_vms = 2;
  req.guarantee = g;
  req.tenant_class = TenantClass::kDelaySensitive;
  const auto t = sim.add_tenant(req);
  ASSERT_TRUE(t);
  ASSERT_NE(sim.vm_server(*t, 0), sim.vm_server(*t, 1));
  std::vector<TimeNs> latencies;
  for (int i = 0; i < 5; ++i) {
    sim.events().at(i * 100 * kMsec, [&, t] {
      sim.send_message(*t, 0, 1, 10 * kKB,
                       [&](const ClusterSim::MessageResult& r) {
                         latencies.push_back(r.latency);
                       });
    });
  }
  sim.run_until(1 * kSec);
  ASSERT_EQ(latencies.size(), 5u);
  const TimeNs bound = max_message_latency(g, 10 * kKB);
  for (TimeNs l : latencies) {
    EXPECT_LE(l, bound);
    // Physics floor: the first MTU leaves on a full bucket, the rest are
    // paced at Bmax.
    EXPECT_GT(l, transmission_time(10 * kKB - kMtu, 1 * kGbps));
  }
  EXPECT_EQ(sim.events().pool().live(), 0);  // all five messages drained
}

TEST(ClusterSim, PacingThrottlesAboveGuarantee) {
  // A backlogged Silo flow must be capped near its bandwidth guarantee.
  ClusterSim sim(spread_cluster(Scheme::kSilo));
  const auto t = sim.add_tenant(silo_tenant(2, 500 * kMbps, 15 * kKB));
  ASSERT_TRUE(t);
  ASSERT_NE(sim.vm_server(*t, 0), sim.vm_server(*t, 1));
  workload::BulkDriver bulk(sim, *t, {{0, 1}}, 128 * kKB);
  bulk.start(500 * kMsec);
  sim.run_until(500 * kMsec);
  const double gbps = bulk.goodput_bps() / 1e9;
  EXPECT_LT(gbps, 0.55);
  EXPECT_GT(gbps, 0.40);
}

TEST(ClusterSim, TcpUsesFullLink) {
  ClusterSim sim(small_cluster(Scheme::kTcp));
  TenantRequest req;
  req.num_vms = 2;
  req.guarantee = {500 * kMbps, Bytes{1500}, TimeNs{0}, RateBps{0}};
  const auto t = sim.add_tenant(req);
  ASSERT_TRUE(t);
  workload::BulkDriver bulk(sim, *t, {{0, 1}}, 256 * kKB);
  bulk.start(200 * kMsec);
  sim.run_until(200 * kMsec);
  // No pacing: TCP grabs (most of) the 10G link regardless of guarantee.
  EXPECT_GT(bulk.goodput_bps() / 1e9, 5.0);
}

TEST(ClusterSim, HoseShareSplitsAcrossSenders) {
  // Three senders blast one receiver: EyeQ-style coordination caps the
  // receiver at its hose bandwidth B, shared among the senders.
  ClusterSim sim(spread_cluster(Scheme::kSilo));
  const auto t = sim.add_tenant(silo_tenant(4, 900 * kMbps));
  ASSERT_TRUE(t);
  for (int v = 1; v < 4; ++v) ASSERT_NE(sim.vm_server(*t, v), sim.vm_server(*t, 0));
  workload::BulkDriver bulk(sim, *t, {{1, 0}, {2, 0}, {3, 0}}, 128 * kKB);
  bulk.start(500 * kMsec);
  sim.run_until(500 * kMsec);
  const double total = bulk.goodput_bps() / 1e9;
  EXPECT_LT(total, 1.0);   // <= B (plus slack)
  EXPECT_GT(total, 0.65);  // but the guarantee is actually delivered
}

TEST(ClusterSim, ContentionHurtsTcpButNotSilo) {
  // Miniature Fig 1 / Fig 11: a small-message tenant shares the cluster
  // with an all-to-all bulk tenant.
  auto run = [&](Scheme scheme) {
    auto cfg = small_cluster(scheme);
    cfg.topo.vm_slots_per_server = 3;  // tenants must span servers
    ClusterSim sim(cfg);
    TenantRequest a;
    a.num_vms = 4;
    a.guarantee = {300 * kMbps, 3 * kKB, 1 * kMsec, 1 * kGbps};
    a.tenant_class = TenantClass::kDelaySensitive;
    TenantRequest b;
    b.num_vms = 8;
    b.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
    const auto ta = sim.add_tenant(a);
    const auto tb = sim.add_tenant(b);
    EXPECT_TRUE(ta && tb);
    // Pick a cross-server VM pair of tenant A for the latency probe.
    int src = 1;
    for (int v = 1; v < a.num_vms; ++v)
      if (sim.vm_server(*ta, v) != sim.vm_server(*ta, 0)) src = v;
    EXPECT_NE(sim.vm_server(*ta, src), sim.vm_server(*ta, 0));
    workload::BulkDriver bulk(sim, *tb, workload::all_to_all(8), 256 * kKB);
    bulk.start(400 * kMsec);
    workload::PoissonMessageDriver msgs(sim, *ta, src, 0, 500.0, 2 * kKB, 42);
    msgs.start(400 * kMsec);
    sim.run_until(420 * kMsec);
    EXPECT_GT(msgs.completed(), 50);
    return msgs.latencies_us().percentile(99);
  };
  const double tcp99 = run(Scheme::kTcp);
  const double silo99 = run(Scheme::kSilo);
  EXPECT_LT(silo99, tcp99);  // predictability under contention
}

TEST(ClusterSim, PlacementRejectionPropagates) {
  ClusterSim sim(small_cluster(Scheme::kSilo));
  // Demand far beyond the cluster: 31 VMs > 30 slots.
  EXPECT_FALSE(sim.add_tenant(silo_tenant(31, 100 * kMbps)).has_value());
  // Bandwidth overload: 6 VMs per server * 3 Gbps > 10 G access links.
  int admitted = 0;
  for (int i = 0; i < 5; ++i)
    if (sim.add_tenant(silo_tenant(6, 3 * kGbps, Bytes{1500}))) ++admitted;
  EXPECT_LT(admitted, 5);
}

TEST(ClusterSim, RtoTrackingPerTenant) {
  ClusterSim sim(small_cluster(Scheme::kTcp));
  TenantRequest req;
  req.num_vms = 6;
  req.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, RateBps{0}};
  const auto t = sim.add_tenant(req);
  ASSERT_TRUE(t);
  EXPECT_EQ(sim.tenant_rto_count(*t), 0);
  // All-to-one incast of large bursts across tenants: drops are expected
  // with TCP; we only assert the counter plumbing works (>= 0 and bounded).
  workload::BurstDriver bursts(sim, *t, 6, {2000.0, 64 * kKB}, 7);
  bursts.start(100 * kMsec);
  sim.run_until(150 * kMsec);
  EXPECT_GT(bursts.completed_messages(), 0);
  EXPECT_GE(sim.tenant_rto_count(*t), 0);
}

TEST(ClusterSim, EtcDriverRoundTrips) {
  ClusterSim sim(small_cluster(Scheme::kSilo));
  const auto t = sim.add_tenant(silo_tenant(5, 210 * kMbps, 3 * kKB, 2 * kMsec));
  ASSERT_TRUE(t);
  workload::EtcDriver etc(sim, *t, 0, {1, 2, 3, 4}, {}, 13);
  etc.start(200 * kMsec);
  sim.run_until(250 * kMsec);
  EXPECT_GT(etc.completed_ops(), 100);
  EXPECT_GE(etc.issued_ops(), etc.completed_ops());
  // Transactions complete in sane time (well under a second each).
  EXPECT_LT(etc.latencies_us().percentile(99), 1e5);
}

TEST(ClusterSim, BestEffortRidesLowPriority) {
  ClusterSim sim(small_cluster(Scheme::kSilo));
  TenantRequest be;
  be.num_vms = 2;
  be.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
  be.tenant_class = TenantClass::kBestEffort;
  const auto t = sim.add_tenant(be);
  ASSERT_TRUE(t);
  bool done = false;
  sim.send_message(*t, 0, 1, 100 * kKB,
                   [&](const ClusterSim::MessageResult&) { done = true; });
  sim.run_until(1 * kSec);
  EXPECT_TRUE(done);  // unreserved but functional
}


TEST(ClusterSim, QjumpLevelsAndPriorities) {
  // QJUMP (§7): delay-sensitive tenants get one packet per network epoch
  // at high priority; bulk tenants are unpaced at low priority.
  ClusterSim sim(spread_cluster(Scheme::kQjump));
  TenantRequest a;
  a.num_vms = 2;
  a.tenant_class = TenantClass::kDelaySensitive;
  a.guarantee = {500 * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  const auto ta = sim.add_tenant(a);
  ASSERT_TRUE(ta);
  // A backlogged "latency level" flow is throttled to ~1 MTU per epoch,
  // far below the nominal guarantee.
  workload::BulkDriver bulk(sim, *ta, {{0, 1}}, 64 * kKB);
  bulk.start(300 * kMsec);
  sim.run_until(300 * kMsec);
  const double epoch_rate =
      static_cast<double>(kMtu) * 8e9 / static_cast<double>(sim.qjump_epoch());
  EXPECT_LT(bulk.goodput_bps(), 1.5 * epoch_rate);
  EXPECT_GT(bulk.goodput_bps(), 0.3 * epoch_rate);
}

TEST(ClusterSim, QjumpSmallMessagesBeatTcpUnderContention) {
  // The property QJUMP is built for: tiny high-priority messages keep a
  // low tail even next to bulk traffic (at the price of tiny bandwidth).
  auto cfg = small_cluster(Scheme::kQjump);
  cfg.topo.vm_slots_per_server = 3;
  ClusterSim sim(cfg);
  TenantRequest a;
  a.num_vms = 4;
  a.tenant_class = TenantClass::kDelaySensitive;
  a.guarantee = {300 * kMbps, 3 * kKB, 1 * kMsec, 1 * kGbps};
  TenantRequest b;
  b.num_vms = 8;
  b.tenant_class = TenantClass::kBandwidthOnly;
  b.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
  const auto ta = sim.add_tenant(a);
  const auto tb = sim.add_tenant(b);
  ASSERT_TRUE(ta && tb);
  int src = 1;
  for (int v = 1; v < a.num_vms; ++v)
    if (sim.vm_server(*ta, v) != sim.vm_server(*ta, 0)) src = v;
  workload::BulkDriver bulk(sim, *tb, workload::all_to_all(8), 256 * kKB);
  bulk.start(300 * kMsec);
  // Single-packet messages: the regime QJUMP guarantees.
  workload::PoissonMessageDriver msgs(sim, *ta, src, 0, 300.0, Bytes{1200}, 42);
  msgs.start(300 * kMsec);
  sim.run_until(350 * kMsec);
  EXPECT_GT(msgs.completed(), 50);
  // High-priority single packets cross a loaded fabric in well under a
  // millisecond at the tail.
  EXPECT_LT(msgs.latencies_us().percentile(99), 1000.0);
}
// Every scheme must deliver messages correctly; only timing differs.
class SchemeMatrix : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeMatrix, DeliversUnderLoad) {
  ClusterSim sim(small_cluster(GetParam()));
  TenantRequest req;
  req.num_vms = 6;
  req.guarantee = {500 * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  req.tenant_class = TenantClass::kDelaySensitive;
  const auto t = sim.add_tenant(req);
  ASSERT_TRUE(t);
  workload::BurstDriver bursts(sim, *t, 6, {200.0, 10 * kKB}, 3);
  bursts.start(200 * kMsec);
  sim.run_until(400 * kMsec);
  EXPECT_GT(bursts.completed_messages(),
            bursts.issued_messages() * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeMatrix,
                         ::testing::Values(Scheme::kSilo, Scheme::kTcp,
                                           Scheme::kDctcp, Scheme::kHull,
                                           Scheme::kOktopus,
                                           Scheme::kOktopusPlus,
                                           Scheme::kQjump,
                                           Scheme::kPfabric),
                         [](const auto& info) {
                           const std::string n = scheme_name(info.param);
                           return n == "Okto+" ? std::string("OktoPlus") : n;
                         });

}  // namespace
}  // namespace silo::sim
