#include <gtest/gtest.h>

#include "model/guarantee.h"

namespace silo {
namespace {

SiloGuarantee paper_guarantee() {
  // §6.1 tenant A, req 1: 210 Mbps, 1.5 KB burst, 1 ms delay, 1 Gbps Bmax.
  return {210 * kMbps, Bytes{1500}, 1 * kMsec, 1 * kGbps};
}

TEST(Guarantee, SmallMessageWithinBurst) {
  // M <= S: latency = M/Bmax + d.
  const auto g = paper_guarantee();
  const TimeNs lat = max_message_latency(g, Bytes{1500});
  EXPECT_EQ(lat, transmission_time(Bytes{1500}, 1 * kGbps) + 1 * kMsec);
}

TEST(Guarantee, PaperMemcachedBound) {
  // The paper reports a 2.01 ms message-latency guarantee for the
  // memcached experiment. A transaction is a ~400 B request plus a
  // <= 1 KB response: two one-way messages and two delay bounds.
  const auto g = paper_guarantee();
  const TimeNs request = max_message_latency(g, Bytes{400});
  const TimeNs response = max_message_latency(g, Bytes{1024});
  const double total_ms =
      static_cast<double>(request + response) / static_cast<double>(kMsec);
  EXPECT_NEAR(total_ms, 2.01, 0.02);
}

TEST(Guarantee, LargeMessageUsesAverageBandwidth) {
  // M > S: latency = S/Bmax + (M-S)/B + d.
  const auto g = paper_guarantee();
  const Bytes m = 100 * kKB;
  const TimeNs expected = transmission_time(Bytes{1500}, 1 * kGbps) +
                          transmission_time(m - Bytes{1500}, 210 * kMbps) + 1 * kMsec;
  EXPECT_EQ(max_message_latency(g, m), expected);
}

TEST(Guarantee, MonotoneInSize) {
  const auto g = paper_guarantee();
  TimeNs prev {};
  for (Bytes m : {Bytes{100}, Bytes{1500}, Bytes{1501}, Bytes{15000},
                  Bytes{1500000}}) {
    const TimeNs lat = max_message_latency(g, m);
    EXPECT_GE(lat, prev) << m;
    prev = lat;
  }
}

TEST(Guarantee, BurstRateDefaultsToBandwidth) {
  SiloGuarantee g{1 * kGbps, 10 * kKB, TimeNs{0}, RateBps{0}};
  EXPECT_EQ(max_message_latency(g, Bytes{1000}),
            transmission_time(Bytes{1000}, 1 * kGbps));
}

TEST(Guarantee, Validation) {
  SiloGuarantee g{};
  EXPECT_THROW(max_message_latency(g, Bytes{100}), std::invalid_argument);
  const auto ok = paper_guarantee();
  EXPECT_THROW(max_message_latency(ok, Bytes{-1}), std::invalid_argument);
}

TEST(Guarantee, DelayFlag) {
  EXPECT_TRUE(paper_guarantee().wants_delay_guarantee());
  SiloGuarantee bw_only{1 * kGbps, Bytes{1500}, TimeNs{0}, RateBps{0}};
  EXPECT_FALSE(bw_only.wants_delay_guarantee());
}

// Table 1 analytics: a message of size M on guarantee B*k with burst j*M
// should have bound (min(M, jM)/Bmax + ...) — check the bound shrinks as
// either knob grows.
class LatencyKnobs : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LatencyKnobs, BoundShrinksWithKnobs) {
  const auto [burst_mult, bw_mult] = GetParam();
  const Bytes msg = 10 * kKB;
  SiloGuarantee g{bw_mult * 100 * kMbps, burst_mult * msg, TimeNs{0},
                  1 * kGbps};
  SiloGuarantee tighter = g;
  tighter.bandwidth = tighter.bandwidth * 2;
  EXPECT_LE(max_message_latency(tighter, 5 * msg),
            max_message_latency(g, 5 * msg));
  SiloGuarantee burstier = g;
  burstier.burst += msg;
  EXPECT_LE(max_message_latency(burstier, 5 * msg),
            max_message_latency(g, 5 * msg));
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, LatencyKnobs,
    ::testing::Combine(::testing::Values(1, 3, 5, 7, 9),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace silo
