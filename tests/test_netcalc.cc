#include <gtest/gtest.h>

#include "netcalc/curve.h"

namespace silo::netcalc {
namespace {

TEST(Curve, TokenBucketValues) {
  // A_{B,S}(t) = S + B*t : 1 Gbps, 100 KB burst.
  const auto a = Curve::token_bucket(1 * kGbps, 100 * kKB);
  EXPECT_DOUBLE_EQ(a.value(TimeNs{0}), 100e3);
  EXPECT_NEAR(a.value(1 * kMsec), 100e3 + 125e3, 1.0);
  EXPECT_DOUBLE_EQ(a.value(TimeNs{-5}), 0.0);
  EXPECT_DOUBLE_EQ(a.burst(), 100e3);
  EXPECT_NEAR(a.long_run_slope() * 8e9, 1e9, 1.0);
}

TEST(Curve, RateLimitedBurstIsBelowTokenBucket) {
  // A'(t) = min(mtu + Bmax t, S + B t) <= A_{B,S}(t) everywhere.
  const auto tb = Curve::token_bucket(1 * kGbps, 100 * kKB);
  const auto rl =
      Curve::rate_limited_burst(1 * kGbps, 100 * kKB, 10 * kGbps);
  for (TimeNs t : {TimeNs{0}, TimeNs{10 * kUsec}, TimeNs{79 * kUsec},
                   TimeNs{200 * kUsec}, TimeNs{5 * kMsec}}) {
    EXPECT_LE(rl.value(t), tb.value(t) + 1e-3) << "t=" << t;
  }
  // Before the crossover the burst drains at Bmax.
  EXPECT_NEAR(rl.value(TimeNs{0}), static_cast<double>(kMtu), 1.0);
  // After (100KB-1.5KB)/(10G-1G) = ~87.6 us the curves meet.
  EXPECT_NEAR(rl.value(1 * kMsec), tb.value(1 * kMsec), 2000.0);
}

TEST(Curve, RateLimitedBurstDegenerateCases) {
  // Burst no larger than one MTU: single segment at rate B.
  const auto c = Curve::rate_limited_burst(1 * kGbps, kMtu, 10 * kGbps);
  EXPECT_EQ(c.segments().size(), 1u);
  EXPECT_THROW(Curve::rate_limited_burst(2 * kGbps, 10 * kKB, 1 * kGbps),
               std::invalid_argument);
}

TEST(Curve, ConstructorRejectsNonConcave) {
  EXPECT_THROW(Curve({{TimeNs{0}, 0.0, 1.0}, {TimeNs{10}, 10.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(Curve({{TimeNs{5}, 0.0, 1.0}}), std::invalid_argument);   // not at 0
  EXPECT_THROW(Curve({{TimeNs{0}, 0.0, 1.0}, {TimeNs{10}, 99.0, 0.5}}),          // discontinuous
               std::invalid_argument);
}

TEST(Curve, PlusAddsValuesAndSlopes) {
  const auto a = Curve::token_bucket(1 * kGbps, 10 * kKB);
  const auto b = Curve::rate_limited_burst(2 * kGbps, 50 * kKB, 10 * kGbps);
  const auto sum = a.plus(b);
  for (TimeNs t : {TimeNs{0}, TimeNs{5 * kUsec}, TimeNs{100 * kUsec}}) {
    EXPECT_NEAR(sum.value(t), a.value(t) + b.value(t), 1e-3) << t;
  }
}

TEST(Curve, PlusWithZeroIsIdentity) {
  const auto a = Curve::token_bucket(1 * kGbps, 10 * kKB);
  const Curve zero;
  EXPECT_NEAR(a.plus(zero).value(10 * kUsec), a.value(10 * kUsec), 1e-9);
  EXPECT_NEAR(zero.plus(a).value(10 * kUsec), a.value(10 * kUsec), 1e-9);
}

TEST(Curve, MinWithComputesPointwiseMin) {
  const auto a = Curve::token_bucket(1 * kGbps, 100 * kKB);
  const auto b = Curve::token_bucket(10 * kGbps, Bytes{1500});
  const auto m = a.min_with(b);
  for (TimeNs t :
       {TimeNs{0}, TimeNs{20 * kUsec}, TimeNs{87 * kUsec}, TimeNs{1 * kMsec}}) {
    EXPECT_NEAR(m.value(t), std::min(a.value(t), b.value(t)), 20.0) << t;
  }
}

TEST(Curve, ScaledMultiplies) {
  const auto a = Curve::token_bucket(1 * kGbps, 10 * kKB);
  const auto s = a.scaled(3.0);
  EXPECT_NEAR(s.value(10 * kUsec), 3 * a.value(10 * kUsec), 1e-6);
  EXPECT_TRUE(a.scaled(0.0).is_zero());
  EXPECT_THROW(a.scaled(-1.0), std::invalid_argument);
}

TEST(Curve, TimeToReach) {
  const auto a = Curve::token_bucket(8 * kGbps, Bytes{1000});  // 1 B/ns slope
  EXPECT_EQ(a.time_to_reach(0), TimeNs{0});
  EXPECT_EQ(a.time_to_reach(1000.0).value(), TimeNs{0});
  EXPECT_EQ(a.time_to_reach(2000.0).value(), TimeNs{1000});
  const auto flat = Curve({{TimeNs{0}, 100.0, 0.0}});
  EXPECT_FALSE(flat.time_to_reach(200.0).has_value());
}

TEST(QueueAnalysis, NFlowsNPacketsInsight) {
  // §3.1: n flows, each bursting one packet, total guaranteed bandwidth
  // below capacity -> max queue is n packets.
  const int n = 8;
  Curve agg;
  for (int i = 0; i < n; ++i)
    agg = agg.plus(Curve::token_bucket(1 * kGbps, kMtu));
  const auto q = analyze_queue(agg, Curve::constant_rate(10 * kGbps));
  ASSERT_TRUE(q.backlog_bound.has_value());
  EXPECT_LE(*q.backlog_bound, static_cast<double>(n * kMtu) + 1.0);
  EXPECT_GT(*q.backlog_bound, static_cast<double>((n - 1) * kMtu));
  ASSERT_TRUE(q.queue_bound.has_value());
  // Delay bound ~= n packets serialized at link rate.
  EXPECT_NEAR(static_cast<double>(*q.queue_bound),
              static_cast<double>(transmission_time(n * kMtu, 10 * kGbps)),
              static_cast<double>(transmission_time(kMtu, 10 * kGbps)));
}

TEST(QueueAnalysis, OverloadIsUnbounded) {
  const auto a = Curve::token_bucket(11 * kGbps, kMtu);
  const auto q = analyze_queue(a, Curve::constant_rate(10 * kGbps));
  EXPECT_FALSE(q.queue_bound.has_value());
  EXPECT_FALSE(q.backlog_bound.has_value());
}

TEST(QueueAnalysis, ZeroArrivalZeroBounds) {
  const auto q = analyze_queue(Curve{}, Curve::constant_rate(10 * kGbps));
  EXPECT_EQ(q.queue_bound.value(), TimeNs{0});
  EXPECT_DOUBLE_EQ(q.backlog_bound.value(), 0.0);
}

TEST(QueueAnalysis, Fig5WorstCaseBuffering) {
  // Paper Fig. 5 arithmetic treats the burst as a one-shot event (no
  // token refill while bursting): eight VMs deliver 800 KB at 20 Gbps
  // into a 10 Gbps port -> half the bytes queue: 400 KB.
  const auto burst8 =
      Curve::rate_limited_burst(RateBps{0}, 800 * kKB, 20 * kGbps);
  const auto q = analyze_queue(burst8, Curve::constant_rate(10 * kGbps));
  ASSERT_TRUE(q.backlog_bound.has_value());
  EXPECT_NEAR(*q.backlog_bound, 400e3, 5e3);

  // Silo's placement leaves only 6 senders behind the port: 600 KB at
  // 20 Gbps -> 300 KB of buffering suffices.
  const auto burst6 =
      Curve::rate_limited_burst(RateBps{0}, 600 * kKB, 20 * kGbps);
  const auto q2 = analyze_queue(burst6, Curve::constant_rate(10 * kGbps));
  EXPECT_NEAR(*q2.backlog_bound, 300e3, 5e3);

  // With sustained-rate refill during the burst (what placement actually
  // assumes), the bound is strictly larger — the conservative direction.
  const auto refill =
      Curve::rate_limited_burst(8 * 1 * kGbps, 800 * kKB, 20 * kGbps);
  const auto q3 = analyze_queue(refill, Curve::constant_rate(10 * kGbps));
  EXPECT_GT(*q3.backlog_bound, *q.backlog_bound);
}

TEST(QueueAnalysis, BusyPeriodExists) {
  const auto a = Curve::rate_limited_burst(1 * kGbps, 100 * kKB, 10 * kGbps);
  const auto q = analyze_queue(a, Curve::constant_rate(10 * kGbps));
  ASSERT_TRUE(q.busy_period.has_value());
  // The queue must drain within p; p >= time to serve the whole burst.
  EXPECT_GT(*q.busy_period, TimeNs{0});
  EXPECT_TRUE(q.queue_bound.has_value());
  EXPECT_LE(*q.queue_bound, *q.busy_period);
}

TEST(TenantCutCurve, HoseTightening) {
  // 10 VMs, 7 on one side: sustained rate is min(7,3)*B but burst is 7*S.
  const auto c =
      tenant_cut_curve(10, 7, 1 * kGbps, 10 * kKB, 2 * kGbps, 100 * kGbps);
  EXPECT_NEAR(c.long_run_slope() * 8e9, 3e9, 1e3);
  // Burst: value reached quickly: at the knee the curve carries ~70KB.
  const auto tb = Curve::token_bucket(3 * kGbps, 70 * kKB);
  EXPECT_NEAR(c.value(1 * kMsec), tb.value(1 * kMsec), 2500.0);
}

TEST(TenantCutCurve, SymmetricCut) {
  const auto a =
      tenant_cut_curve(10, 5, 1 * kGbps, 10 * kKB, 2 * kGbps, 100 * kGbps);
  EXPECT_NEAR(a.long_run_slope() * 8e9, 5e9, 1e3);
  EXPECT_THROW(tenant_cut_curve(1, 0, kGbps, Bytes{1}, kGbps, kGbps),
               std::invalid_argument);
  EXPECT_THROW(tenant_cut_curve(4, 4, kGbps, Bytes{1}, kGbps, kGbps),
               std::invalid_argument);
}

TEST(Propagation, BurstGrowsByRateTimesCapacity) {
  // §4.2.2: a VM with A_{B,S} sends at most B*c + S in time c, so the
  // egress curve after a port with queue capacity c is A_{B, B*c+S}.
  const auto in = Curve::token_bucket(1 * kGbps, 10 * kKB);
  const TimeNs c = 80 * kUsec;
  const auto out = propagate_through_port(in, c, 10 * kGbps);
  EXPECT_NEAR(out.long_run_slope(), in.long_run_slope(), 1e-12);
  // Egress burst = in.value(c) = 10 KB + 1 Gbps * 80 us = 20 KB: at long
  // horizons the egress curve sits exactly B*c above the ingress curve.
  EXPECT_NEAR(out.value(10 * kMsec) - in.value(10 * kMsec), 10e3, 100.0);
  // Against a downstream port slower than the propagation line rate the
  // inflated burst translates into a strictly larger backlog bound.
  const auto q_in = analyze_queue(in, Curve::constant_rate(2 * kGbps));
  const auto q_out = analyze_queue(out, Curve::constant_rate(2 * kGbps));
  ASSERT_TRUE(q_out.backlog_bound.has_value());
  EXPECT_GT(*q_out.backlog_bound, *q_in.backlog_bound);
  EXPECT_GE(*q_out.queue_bound, *q_in.queue_bound);
}

TEST(Propagation, ZeroCurvePassesThrough) {
  const Curve zero;
  EXPECT_TRUE(propagate_through_port(zero, kUsec, 10 * kGbps).is_zero());
}


TEST(Concatenation, ClosedForm) {
  const auto path = concatenate({{10 * kGbps, 10 * kUsec},
                                 {8 * kGbps, 20 * kUsec},
                                 {16 * kGbps, 5 * kUsec}});
  EXPECT_NEAR(path.rate.bps(), (8 * kGbps).bps(), 1);
  EXPECT_EQ(path.latency, 35 * kUsec);
  EXPECT_THROW(concatenate({}), std::invalid_argument);
  EXPECT_THROW(concatenate({{RateBps{0}, TimeNs{0}}}), std::invalid_argument);
}

TEST(Concatenation, PayBurstsOnlyOnce) {
  // The classic network-calculus result: the end-to-end bound through the
  // concatenated path service is tighter than summing per-hop bounds with
  // burst propagation between hops (what Silo's placement conservatively
  // does).
  const auto a = Curve::rate_limited_burst(1 * kGbps, 100 * kKB, 10 * kGbps);
  const std::vector<RateLatency> hops(3, RateLatency{10 * kGbps, 5 * kUsec});

  const auto e2e = end_to_end_delay_bound(a, concatenate(hops));
  ASSERT_TRUE(e2e.has_value());

  TimeNs per_hop_sum {};
  Curve at_hop = a;
  for (const auto& hop : hops) {
    const auto q = analyze_queue(at_hop, Curve::constant_rate(hop.rate));
    ASSERT_TRUE(q.queue_bound.has_value());
    per_hop_sum += hop.latency + *q.queue_bound;
    at_hop = propagate_through_port(at_hop, *q.queue_bound, hop.rate);
  }
  EXPECT_LT(*e2e, per_hop_sum);
  EXPECT_GT(*e2e, TimeNs{0});
}

TEST(Concatenation, OverloadedPathUnbounded) {
  const auto a = Curve::token_bucket(9 * kGbps, kMtu);
  EXPECT_FALSE(
      end_to_end_delay_bound(a, {8 * kGbps, 10 * kUsec}).has_value());
  // Zero traffic still pays the scheduling latency.
  EXPECT_EQ(end_to_end_delay_bound(Curve{}, {8 * kGbps, 10 * kUsec}),
            10 * kUsec);
}
// Property sweep: queue bound grows with burst, shrinks with service rate.
class QueueBoundSweep : public ::testing::TestWithParam<int> {};

TEST_P(QueueBoundSweep, MonotoneInBurst) {
  const Bytes s = GetParam() * kKB;
  const auto a1 = Curve::token_bucket(1 * kGbps, s);
  const auto a2 = Curve::token_bucket(1 * kGbps, s + 10 * kKB);
  const auto q1 = analyze_queue(a1, Curve::constant_rate(10 * kGbps));
  const auto q2 = analyze_queue(a2, Curve::constant_rate(10 * kGbps));
  EXPECT_LE(*q1.queue_bound, *q2.queue_bound);
  EXPECT_LE(*q1.backlog_bound, *q2.backlog_bound);
}

TEST_P(QueueBoundSweep, MonotoneInServiceRate) {
  const Bytes s = GetParam() * kKB;
  const auto a = Curve::token_bucket(2 * kGbps, s);
  const auto slow = analyze_queue(a, Curve::constant_rate(5 * kGbps));
  const auto fast = analyze_queue(a, Curve::constant_rate(10 * kGbps));
  EXPECT_GE(*slow.queue_bound, *fast.queue_bound);
}

INSTANTIATE_TEST_SUITE_P(Bursts, QueueBoundSweep,
                         ::testing::Values(1, 5, 10, 50, 100, 300));

}  // namespace
}  // namespace silo::netcalc
