#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "flowsim/flow_sim.h"
#include "flowsim/flow_table.h"
#include "flowsim/maxmin.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace silo::flowsim {
namespace {

FlowSimConfig quick(placement::Policy policy, double occupancy) {
  FlowSimConfig cfg;
  cfg.topo.pods = 2;
  cfg.topo.racks_per_pod = 2;
  cfg.topo.servers_per_rack = 8;
  cfg.topo.vm_slots_per_server = 8;
  cfg.policy = policy;
  cfg.occupancy = occupancy;
  cfg.sim_duration_s = 400;
  cfg.warmup_s = 100;
  cfg.compute_time_mean_s = 30;
  cfg.mean_vms = 6;
  cfg.seed = 9;
  cfg.mean_vms = 12;
  cfg.b_transfer_time_mean_s = 30;
  return cfg;
}

TEST(FlowSim, RunsAndProducesSaneMetrics) {
  const auto res = run_flow_sim(quick(placement::Policy::kSilo, 0.6));
  EXPECT_GT(res.arrivals, 20);
  EXPECT_GT(res.admitted, 0);
  EXPECT_LE(res.admitted, res.arrivals);
  EXPECT_GE(res.network_utilization, 0.0);
  EXPECT_LE(res.network_utilization, 1.0);
  EXPECT_GT(res.avg_occupancy, 0.2);
  EXPECT_LT(res.avg_occupancy, 1.0);
  EXPECT_GT(res.completed_jobs, 0);
}

TEST(FlowSim, LocalityAdmitsMostAtLowOccupancy) {
  // Locality only rejects on slot shortage, so at light load it admits
  // nearly everything (geometric-tail giants may still not fit).
  const auto res = run_flow_sim(quick(placement::Policy::kLocality, 0.4));
  EXPECT_GT(res.admitted_frac(), 0.9);
}

TEST(FlowSim, SiloRejectsMoreThanOktopus) {
  const auto silo = run_flow_sim(quick(placement::Policy::kSilo, 0.85));
  const auto okto = run_flow_sim(quick(placement::Policy::kOktopus, 0.85));
  EXPECT_LE(silo.admitted_frac(), okto.admitted_frac() + 0.02);
  // Class-A (delay) tenants are the harder ones for Silo (paper §6.3).
  EXPECT_LE(silo.admitted_frac_a(), silo.admitted_frac_b() + 0.05);
}

TEST(FlowSim, OccupancyTracksTarget) {
  const auto lo = run_flow_sim(quick(placement::Policy::kLocality, 0.3));
  const auto hi = run_flow_sim(quick(placement::Policy::kLocality, 0.8));
  EXPECT_LT(lo.avg_occupancy, hi.avg_occupancy);
}

TEST(FlowSim, DenserTrafficRaisesUtilization) {
  auto sparse = quick(placement::Policy::kSilo, 0.7);
  sparse.permutation_x = 0.5;
  auto dense = quick(placement::Policy::kSilo, 0.7);
  dense.permutation_x = 0;  // all-to-all
  const auto u_sparse = run_flow_sim(sparse).network_utilization;
  const auto u_dense = run_flow_sim(dense).network_utilization;
  EXPECT_GT(u_dense, u_sparse);
}

TEST(FlowSim, DeterministicForFixedSeed) {
  const auto a = run_flow_sim(quick(placement::Policy::kOktopus, 0.6));
  const auto b = run_flow_sim(quick(placement::Policy::kOktopus, 0.6));
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_DOUBLE_EQ(a.network_utilization, b.network_utilization);
}

// --- max-min solver properties ---------------------------------------------

/// Seeded random open-flow population over a topology, returned as a flow
/// table plus the rates the solver assigned.
struct SolverFixture {
  topology::Topology topo;
  FlowTable table;
  MaxMinSolver solver;
  std::vector<int> flow_ids;

  SolverFixture(topology::TopologyConfig tc, int n_flows, std::uint64_t seed)
      : topo(tc), table(topo.num_ports()), solver(topo, table) {
    Rng rng(seed);
    const int servers = topo.num_servers();
    for (int i = 0; i < n_flows; ++i) {
      const int src = static_cast<int>(rng.uniform_int(0, servers - 1));
      int dst = static_cast<int>(rng.uniform_int(0, servers - 2));
      if (dst >= src) ++dst;  // distinct, so every flow crosses the fabric
      flow_ids.push_back(table.allocate(topo.path_span(src, dst)));
    }
  }

  void apply(const std::vector<std::pair<int, double>>& rates) {
    for (const auto& [f, r] : rates) table.flow(f).rate = r;
  }
};

/// Validity of any max-min solution: no port over capacity, and every flow
/// is bottlenecked — some port on its path is saturated AND the flow's rate
/// is the largest on that port (otherwise its rate could be raised without
/// lowering a smaller flow, contradicting max-min fairness).
void expect_maxmin_valid(SolverFixture& fx) {
  std::vector<double> load(static_cast<std::size_t>(fx.topo.num_ports()), 0);
  for (const int f : fx.flow_ids) {
    const SimFlow& fl = fx.table.flow(f);
    EXPECT_GT(fl.rate, 0.0);
    for (int i = 0; i < fl.n_ports; ++i)
      load[static_cast<std::size_t>(fl.ports[static_cast<std::size_t>(i)])] +=
          fl.rate;
  }
  for (int p = 0; p < fx.topo.num_ports(); ++p) {
    const double cap = fx.topo.port({p}).rate.bps();
    EXPECT_LE(load[static_cast<std::size_t>(p)], cap * (1.0 + 1e-9))
        << "port " << p << " over capacity";
  }
  for (const int f : fx.flow_ids) {
    const SimFlow& fl = fx.table.flow(f);
    bool bottlenecked = false;
    for (int i = 0; i < fl.n_ports && !bottlenecked; ++i) {
      const int p = fl.ports[static_cast<std::size_t>(i)];
      const double cap = fx.topo.port({p}).rate.bps();
      if (load[static_cast<std::size_t>(p)] < cap * (1.0 - 1e-9)) continue;
      bool largest = true;
      for (const int g : fx.table.flows_on_port(p))
        if (fx.table.flow(g).rate > fl.rate * (1.0 + 1e-9)) largest = false;
      bottlenecked = largest;
    }
    EXPECT_TRUE(bottlenecked) << "flow " << f << " has no saturated "
                              << "bottleneck port where it is the largest";
  }
}

TEST(MaxMinSolver, SolutionIsValidAcrossSeeds) {
  topology::TopologyConfig tc;
  tc.pods = 2;
  tc.racks_per_pod = 2;
  tc.servers_per_rack = 4;
  for (const std::uint64_t seed : {1u, 7u, 21u, 33u, 54u}) {
    SolverFixture fx(tc, 120, seed);
    fx.apply(fx.solver.solve_all());
    expect_maxmin_valid(fx);
  }
}

TEST(MaxMinSolver, ComponentResolveMatchesGlobalBitIdentically) {
  topology::TopologyConfig tc;
  tc.pods = 3;
  tc.racks_per_pod = 2;
  tc.servers_per_rack = 5;
  for (const std::uint64_t seed : {2u, 11u, 40u}) {
    SolverFixture fx(tc, 90, seed);
    const auto global = fx.solver.solve_all();  // reference: all components
    // Re-solving the component touched by each flow must reproduce the
    // global rates exactly — this is the foundation of SolverMode
    // equivalence, so it is ==, not near.
    for (const int f : fx.flow_ids) {
      const SimFlow& fl = fx.table.flow(f);
      std::vector<int> ports;
      for (int i = 0; i < fl.n_ports; ++i)
        ports.push_back(fl.ports[static_cast<std::size_t>(i)]);
      for (const auto& [g, rate] : fx.solver.solve_touching(ports)) {
        const auto it = std::lower_bound(
            global.begin(), global.end(), g,
            [](const std::pair<int, double>& e, int id) { return e.first < id; });
        ASSERT_TRUE(it != global.end() && it->first == g);
        EXPECT_EQ(it->second, rate);
      }
    }
  }
}

// --- cross-mode equivalence -------------------------------------------------

/// The reference solver re-solves globally on every flow change; the
/// incremental solver touches only the affected component/tenant. Both must
/// produce *bit-identical* runs — exact == on every result field, the same
/// pin placement applies to AdmissionMode::kFullRescan.
void expect_modes_equivalent(FlowSimConfig cfg) {
  cfg.solver = SolverMode::kIncremental;
  const auto inc = run_flow_sim(cfg);
  cfg.solver = SolverMode::kReference;
  const auto ref = run_flow_sim(cfg);
  EXPECT_EQ(inc.arrivals, ref.arrivals);
  EXPECT_EQ(inc.admitted, ref.admitted);
  EXPECT_EQ(inc.admitted_a, ref.admitted_a);
  EXPECT_EQ(inc.admitted_b, ref.admitted_b);
  EXPECT_EQ(inc.completed_jobs, ref.completed_jobs);
  EXPECT_EQ(inc.network_utilization, ref.network_utilization);
  EXPECT_EQ(inc.avg_occupancy, ref.avg_occupancy);
  EXPECT_EQ(inc.avg_job_duration_s, ref.avg_job_duration_s);
  // The perf counters are where the modes are *supposed* to differ.
  EXPECT_LE(inc.perf.solved_flows, ref.perf.solved_flows);
}

TEST(FlowSim, IncrementalMatchesReferenceSmall) {
  for (const auto policy :
       {placement::Policy::kSilo, placement::Policy::kOktopus,
        placement::Policy::kLocality}) {
    for (const std::uint64_t seed : {9ull, 77ull}) {
      auto cfg = quick(policy, 0.8);
      cfg.seed = seed;
      expect_modes_equivalent(cfg);
    }
  }
}

TEST(FlowSim, IncrementalMatchesReferenceMid) {
  for (const auto policy :
       {placement::Policy::kSilo, placement::Policy::kLocality}) {
    auto cfg = quick(policy, 0.9);
    cfg.topo.pods = 3;
    cfg.topo.racks_per_pod = 3;
    cfg.topo.servers_per_rack = 10;
    cfg.sim_duration_s = 250;
    expect_modes_equivalent(cfg);
  }
}

TEST(FlowSim, IncrementalMatchesReferenceAllToAll) {
  auto cfg = quick(placement::Policy::kOktopus, 0.7);
  cfg.permutation_x = 0;  // all-to-all class-B pattern
  cfg.sim_duration_s = 250;
  expect_modes_equivalent(cfg);
}

TEST(FlowSim, IncrementalMatchesReferenceCoalesced) {
  // rate_update_s > 0 batches flow-set changes onto a grid; the batching
  // decisions depend only on the shared event timeline, so cross-mode
  // equivalence must hold with coalescing on too (paper-scale Fig 15/16
  // runs with a 1 s grid).
  for (const auto policy :
       {placement::Policy::kSilo, placement::Policy::kLocality}) {
    auto cfg = quick(policy, 0.9);
    cfg.rate_update_s = 1.0;
    expect_modes_equivalent(cfg);
  }
}

TEST(FlowSim, CoalescedRunStaysSane) {
  // Coalescing changes the trajectory (new flows idle until their first
  // grid solve) but not the physics: utilization, occupancy, and
  // completions stay in range and jobs still finish.
  auto cfg = quick(placement::Policy::kLocality, 0.8);
  cfg.rate_update_s = 1.0;
  const auto res = run_flow_sim(cfg);
  EXPECT_GT(res.completed_jobs, 0);
  EXPECT_GT(res.network_utilization, 0.0);
  EXPECT_LE(res.network_utilization, 1.0);
  EXPECT_GT(res.avg_occupancy, 0.2);
  EXPECT_LT(res.avg_occupancy, 1.0);
}

TEST(FlowSim, PublishesMetricsFamily) {
  obs::MetricsRegistry reg;
  const auto res = run_flow_sim(quick(placement::Policy::kSilo, 0.6), &reg);
  EXPECT_EQ(reg.value("flowsim.events"), res.perf.events);
  EXPECT_EQ(reg.value("flowsim.solves"), res.perf.solves);
  EXPECT_EQ(reg.value("flowsim.solved_flows"), res.perf.solved_flows);
  EXPECT_EQ(reg.value("flowsim.rate_changes"), res.perf.rate_changes);
  EXPECT_EQ(reg.value("flowsim.maxmin_rounds"), res.perf.maxmin_rounds);
  EXPECT_EQ(reg.value("flowsim.stale_predictions"),
            res.perf.stale_predictions);
  EXPECT_GT(res.perf.events, 0);
  EXPECT_GT(res.perf.rate_changes, 0);
}

}  // namespace
}  // namespace silo::flowsim
