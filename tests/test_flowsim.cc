#include <gtest/gtest.h>

#include "flowsim/flow_sim.h"

namespace silo::flowsim {
namespace {

FlowSimConfig quick(placement::Policy policy, double occupancy) {
  FlowSimConfig cfg;
  cfg.topo.pods = 2;
  cfg.topo.racks_per_pod = 2;
  cfg.topo.servers_per_rack = 8;
  cfg.topo.vm_slots_per_server = 8;
  cfg.policy = policy;
  cfg.occupancy = occupancy;
  cfg.sim_duration_s = 400;
  cfg.warmup_s = 100;
  cfg.compute_time_mean_s = 30;
  cfg.mean_vms = 6;
  cfg.seed = 9;
  cfg.mean_vms = 12;
  cfg.b_transfer_time_mean_s = 30;
  return cfg;
}

TEST(FlowSim, RunsAndProducesSaneMetrics) {
  const auto res = run_flow_sim(quick(placement::Policy::kSilo, 0.6));
  EXPECT_GT(res.arrivals, 20);
  EXPECT_GT(res.admitted, 0);
  EXPECT_LE(res.admitted, res.arrivals);
  EXPECT_GE(res.network_utilization, 0.0);
  EXPECT_LE(res.network_utilization, 1.0);
  EXPECT_GT(res.avg_occupancy, 0.2);
  EXPECT_LT(res.avg_occupancy, 1.0);
  EXPECT_GT(res.completed_jobs, 0);
}

TEST(FlowSim, LocalityAdmitsMostAtLowOccupancy) {
  // Locality only rejects on slot shortage, so at light load it admits
  // nearly everything (geometric-tail giants may still not fit).
  const auto res = run_flow_sim(quick(placement::Policy::kLocality, 0.4));
  EXPECT_GT(res.admitted_frac(), 0.9);
}

TEST(FlowSim, SiloRejectsMoreThanOktopus) {
  const auto silo = run_flow_sim(quick(placement::Policy::kSilo, 0.85));
  const auto okto = run_flow_sim(quick(placement::Policy::kOktopus, 0.85));
  EXPECT_LE(silo.admitted_frac(), okto.admitted_frac() + 0.02);
  // Class-A (delay) tenants are the harder ones for Silo (paper §6.3).
  EXPECT_LE(silo.admitted_frac_a(), silo.admitted_frac_b() + 0.05);
}

TEST(FlowSim, OccupancyTracksTarget) {
  const auto lo = run_flow_sim(quick(placement::Policy::kLocality, 0.3));
  const auto hi = run_flow_sim(quick(placement::Policy::kLocality, 0.8));
  EXPECT_LT(lo.avg_occupancy, hi.avg_occupancy);
}

TEST(FlowSim, DenserTrafficRaisesUtilization) {
  auto sparse = quick(placement::Policy::kSilo, 0.7);
  sparse.permutation_x = 0.5;
  auto dense = quick(placement::Policy::kSilo, 0.7);
  dense.permutation_x = 0;  // all-to-all
  const auto u_sparse = run_flow_sim(sparse).network_utilization;
  const auto u_dense = run_flow_sim(dense).network_utilization;
  EXPECT_GT(u_dense, u_sparse);
}

TEST(FlowSim, DeterministicForFixedSeed) {
  const auto a = run_flow_sim(quick(placement::Policy::kOktopus, 0.6));
  const auto b = run_flow_sim(quick(placement::Policy::kOktopus, 0.6));
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_DOUBLE_EQ(a.network_utilization, b.network_utilization);
}

}  // namespace
}  // namespace silo::flowsim
