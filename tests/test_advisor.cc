#include <gtest/gtest.h>

#include "core/advisor.h"
#include "util/rng.h"

namespace silo {
namespace {

WorkloadProfile fixed_profile(Bytes size = 10 * kKB, double rate = 200.0) {
  WorkloadProfile p;
  p.message_sizes.assign(64, size);
  p.messages_per_sec = rate;
  p.packet_delay = 1 * kMsec;
  p.burst_rate = 1 * kGbps;
  return p;
}

TEST(Advisor, AverageBandwidthAloneIsAlmostAlwaysLate) {
  // Table 1, row M / column B: guaranteeing the raw average leaves the
  // overwhelming majority of Poisson messages late.
  const auto p = fixed_profile();
  SiloGuarantee g{RateBps{p.messages_per_sec * 10e3 * 8}, 10 * kKB,
                  1 * kMsec, 1 * kGbps};
  const double late = evaluate_late_fraction(p, g, 20000, 1);
  EXPECT_GT(late, 0.5);
}

TEST(Advisor, GenerousGuaranteeIsNeverLate) {
  // Table 1, bottom-right corner.
  const auto p = fixed_profile();
  SiloGuarantee g{RateBps{p.messages_per_sec * 10e3 * 8 * 3.0}, 9 * 10 * kKB,
                  1 * kMsec, 1 * kGbps};
  EXPECT_LT(evaluate_late_fraction(p, g, 20000, 1), 0.005);
}

TEST(Advisor, LatenessMonotoneInBandwidth) {
  const auto p = fixed_profile();
  double prev = 1.1;
  for (double mult : {1.0, 1.5, 2.0, 3.0}) {
    SiloGuarantee g{RateBps{p.messages_per_sec * 10e3 * 8 * mult},
                    3 * 10 * kKB, 1 * kMsec, 1 * kGbps};
    const double late = evaluate_late_fraction(p, g, 20000, 2);
    EXPECT_LE(late, prev + 0.02) << mult;
    prev = late;
  }
}

TEST(Advisor, RecommendationMeetsTarget) {
  const auto p = fixed_profile();
  AdvisorOptions opts;
  opts.target_late_fraction = 0.01;
  const auto rec = recommend_guarantee(p, opts);
  ASSERT_TRUE(rec.feasible);
  EXPECT_LE(rec.expected_late_fraction, opts.target_late_fraction);
  EXPECT_GT(rec.guarantee.bandwidth.bps(), rec.average_bandwidth * 0.99);
  EXPECT_GE(rec.guarantee.burst, 10 * kKB);
  // Recommendation is reproducible (deterministic seed).
  const auto rec2 = recommend_guarantee(p, opts);
  EXPECT_DOUBLE_EQ(rec.guarantee.bandwidth.bps(), rec2.guarantee.bandwidth.bps());
  EXPECT_EQ(rec.guarantee.burst, rec2.guarantee.burst);
}

TEST(Advisor, InfeasibleTargetReportsBestEffort) {
  // An absurd arrival rate against a capped candidate grid cannot hit an
  // (effectively) zero lateness target.
  auto p = fixed_profile(100 * kKB, 2000.0);
  p.burst_rate = 200 * kMbps;  // Bmax barely above the demands
  AdvisorOptions opts;
  opts.target_late_fraction = 0.0;
  opts.bandwidth_multiples = {1.0};
  opts.burst_multiples = {1.0};
  const auto rec = recommend_guarantee(p, opts);
  EXPECT_FALSE(rec.feasible);
  EXPECT_GT(rec.expected_late_fraction, 0.0);
}

TEST(Advisor, Validation) {
  WorkloadProfile empty;
  empty.messages_per_sec = 10;
  EXPECT_THROW(recommend_guarantee(empty), std::invalid_argument);
  auto p = fixed_profile();
  p.messages_per_sec = 0;
  SiloGuarantee g{RateBps{1e9}, Bytes{1500}, TimeNs{0}, RateBps{1e9}};
  EXPECT_THROW(evaluate_late_fraction(p, g, 100, 1), std::invalid_argument);
}

}  // namespace
}  // namespace silo
