// Congestion-control details: DCTCP's alpha dynamics, ECN echo fidelity,
// RTT estimation, and recovery behavior — beyond the black-box transport
// tests in test_sim.cc.
#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/port.h"
#include "sim/transport.h"

namespace silo::sim {
namespace {

PortConfig port(Bytes buffer = 312 * kKB, Bytes ecn = Bytes{0}) {
  PortConfig cfg;
  cfg.rate = 10 * kGbps;
  cfg.buffer = buffer;
  cfg.ecn_threshold = ecn;
  cfg.link_delay = TimeNs{500};
  return cfg;
}

struct Loop {
  EventQueue ev;
  SwitchPortSim fwd;
  SwitchPortSim rev;
  std::unique_ptr<TcpFlow> flow;

  explicit Loop(TcpConfig cfg = {}, PortConfig pcfg = port())
      : fwd(ev, pcfg, [this](PacketHandle h) { consume(h); }),
        rev(ev, port(), [this](PacketHandle h) { consume(h); }) {
    flow = std::make_unique<TcpFlow>(
        ev, 0, 0, 1, 0, 1, cfg, [this](PacketHandle h) { fwd.enqueue(h); },
        [this](PacketHandle h) { rev.enqueue(h); });
  }

  void consume(PacketHandle h) {
    const Packet p = ev.pool().get(h);  // copy: on_packet allocates the ACK
    ev.pool().free(h);
    flow->on_packet(p);
  }
};

TEST(Dctcp, ConvergesWithoutDropsWhenMarked) {
  TcpConfig cfg;
  cfg.dctcp = true;
  Loop loop(cfg, port(312 * kKB, 30 * kKB));
  loop.flow->app_write(30 * kMB);
  loop.ev.run_all();
  EXPECT_EQ(loop.flow->bytes_acked(), (30 * kMB).count());
  EXPECT_GT(loop.fwd.stats().ecn_marks, 0);
  EXPECT_EQ(loop.fwd.stats().drops, 0);   // marking averts loss entirely
  EXPECT_TRUE(loop.flow->rto_events().empty());
}

TEST(Dctcp, ThroughputSurvivesMarking) {
  // DCTCP's proportional backoff keeps throughput near the line despite
  // persistent marking (unlike Reno's halving on loss).
  TcpConfig cfg;
  cfg.dctcp = true;
  Loop loop(cfg, port(312 * kKB, 30 * kKB));
  loop.flow->app_write(25 * kMB);
  loop.ev.run_all();
  const double secs =
      static_cast<double>(loop.ev.now()) / static_cast<double>(kSec);
  EXPECT_GT(25e6 * 8 / secs / 1e9, 6.0);
}

TEST(Dctcp, EcnEchoOnlyWhenMarked) {
  // Below the marking threshold no packet carries CE, so a DCTCP flow
  // behaves exactly like TCP (alpha stays 0, no cwnd reductions).
  TcpConfig cfg;
  cfg.dctcp = true;
  Loop loop(cfg, port(312 * kKB, 200 * kKB));  // threshold far above BDP
  loop.flow->app_write(256 * kKB);
  loop.ev.run_all();
  EXPECT_EQ(loop.fwd.stats().ecn_marks, 0);
  EXPECT_EQ(loop.flow->bytes_acked(), (256 * kKB).count());
}

TEST(Transport, CwndGrowsInSlowStart) {
  Loop loop;
  const double initial = loop.flow->cwnd_bytes();
  loop.flow->app_write(1 * kMB);
  loop.ev.run_all();
  EXPECT_GT(loop.flow->cwnd_bytes(), 2 * initial);
}

TEST(Transport, ZeroLossTransferHasNoRetransmits) {
  // Cap the window below the buffer so slow start cannot overshoot.
  TcpConfig cfg;
  cfg.max_cwnd_pkts = 150;  // ~219 KB < 312 KB buffer
  Loop loop(cfg);
  std::int64_t delivered = 0;
  loop.flow->set_on_delivery([&](std::int64_t d) { delivered = d; });
  loop.flow->app_write(4 * kMB);
  loop.ev.run_all();
  EXPECT_EQ(delivered, (4 * kMB).count());
  EXPECT_EQ(loop.fwd.stats().drops, 0);
  // Bytes on the wire == bytes delivered + headers: no duplicates.
  EXPECT_EQ(loop.fwd.stats().tx_bytes,
            (4 * kMB).count() + loop.fwd.stats().tx_packets * kHeaderBytes.count());
}

TEST(Transport, ManySmallMessagesInterleaved) {
  Loop loop;
  std::int64_t delivered = 0;
  loop.flow->set_on_delivery([&](std::int64_t d) { delivered = d; });
  for (int i = 0; i < 200; ++i) {
    loop.ev.at(i * 50 * kUsec, [&] { loop.flow->app_write(Bytes{700}); });
  }
  loop.ev.run_all();
  EXPECT_EQ(delivered, 200 * 700);
}

TEST(Transport, BackpressureGateIsHonored) {
  Loop loop;
  int allowed = 3;
  loop.flow->set_can_send([&](int, Bytes) { return allowed-- > 0; });
  loop.flow->app_write(1 * kMB);
  // Only the first three segments may leave immediately.
  EXPECT_EQ(loop.flow->bytes_written() - (1 * kMB).count(), 0);
  loop.ev.run_until(100 * kUsec);
  EXPECT_LE(loop.flow->bytes_acked(), (3 * kMss).count());
}

TEST(Transport, RtoBacksOffExponentially) {
  EventQueue ev;
  TcpConfig cfg;
  cfg.min_rto = 10 * kMsec;
  int delivered = 0;
  SwitchPortSim fwd(ev, port(), [&](PacketHandle h) {
    ++delivered;
    ev.pool().free(h);
  });
  TcpFlow flow(ev, 0, 0, 1, 0, 1, cfg,
               [&](PacketHandle h) { fwd.enqueue(h); },
               [&](PacketHandle h) { ev.pool().free(h); /* ACK black hole */ });
  flow.app_write(Bytes{1000});
  ev.run_until(200 * kMsec);
  const auto& rtos = flow.rto_events();
  ASSERT_GE(rtos.size(), 3u);
  // Gaps grow ~2x each time.
  const auto g1 = rtos[1] - rtos[0];
  const auto g2 = rtos[2] - rtos[1];
  EXPECT_NEAR(static_cast<double>(g2) / static_cast<double>(g1), 2.0, 0.3);
}

}  // namespace
}  // namespace silo::sim
