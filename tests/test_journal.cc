// DeltaJournal durability tests: chained-checksum integrity, the
// serialize/deserialize codec, write-ahead ordering, compaction, and the
// headline property — a controller crashed at an arbitrary point and
// rebuilt from its journal is bit-identical to one that never crashed
// (placement decisions, shipped pacer configs, metric counters).
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/journal.h"
#include "util/rng.h"

namespace silo {
namespace {

topology::TopologyConfig small_dc() {
  topology::TopologyConfig cfg;
  cfg.pods = 2;
  cfg.racks_per_pod = 2;
  cfg.servers_per_rack = 4;
  cfg.vm_slots_per_server = 4;
  return cfg;
}

TenantRequest sample_request(Rng& rng) {
  TenantRequest req;
  req.num_vms = 2 + static_cast<int>(rng.uniform_int(0, 4));
  if (rng.uniform() < 0.5) {
    req.tenant_class = TenantClass::kDelaySensitive;
    req.guarantee = {300 * kMbps, 15 * kKB, 1300 * kUsec, 1 * kGbps};
  } else {
    req.tenant_class = TenantClass::kBandwidthOnly;
    req.guarantee = {500 * kMbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
  }
  return req;
}

TEST(Journal, WriteAheadAppendEveryOpAndVerify) {
  SiloController ctl(small_dc());
  DeltaJournal journal;
  ctl.attach_journal(&journal);
  Rng rng(3);

  const auto h1 = ctl.admit(sample_request(rng));
  const auto h2 = ctl.admit(sample_request(rng));
  ASSERT_TRUE(h1 && h2);
  ctl.release(*h1);
  ctl.handle_server_failure(h2->vm_to_server.front());
  ctl.restore_server(h2->vm_to_server.front());

  // One record per mutation, in op order, chain intact.
  EXPECT_EQ(journal.total_appends(), 5);
  EXPECT_EQ(journal.records().size(), 5u);
  EXPECT_TRUE(journal.verify());
  EXPECT_EQ(journal.records()[0].op, JournalOp::kAdmit);
  EXPECT_EQ(journal.records()[2].op, JournalOp::kRelease);
  EXPECT_EQ(journal.records()[3].op, JournalOp::kServerFailure);
  EXPECT_EQ(journal.records()[4].op, JournalOp::kServerRestore);
  EXPECT_EQ(journal.metrics().value("controller.journal.appends"), 5);

  // Rejected admissions are journaled too (write-ahead: the record lands
  // before the outcome is known), so replay reproduces rejection counters.
  TenantRequest impossible;
  impossible.num_vms = 10000;
  impossible.guarantee = {1 * kGbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  EXPECT_FALSE(ctl.admit(impossible).has_value());
  EXPECT_EQ(journal.total_appends(), 6);
  EXPECT_TRUE(journal.verify());
}

TEST(Journal, SerializeRoundtripPreservesChainAndDetectsTampering) {
  SiloController ctl(small_dc());
  DeltaJournal journal;
  ctl.attach_journal(&journal);
  Rng rng(11);
  for (int i = 0; i < 6; ++i) ctl.admit(sample_request(rng));

  const std::string blob = journal.serialize();
  DeltaJournal copy = DeltaJournal::deserialize(blob);
  EXPECT_EQ(copy.chain(), journal.chain());
  EXPECT_EQ(copy.records().size(), journal.records().size());
  EXPECT_EQ(copy.total_appends(), journal.total_appends());
  EXPECT_TRUE(copy.verify());

  // Any flipped byte in a record breaks the chained checksum.
  std::string tampered = blob;
  tampered[tampered.size() / 2] =
      static_cast<char>(tampered[tampered.size() / 2] ^ 0x40);
  EXPECT_THROW(DeltaJournal::deserialize(tampered), std::runtime_error);
  // Truncation is caught by the codec before the chain even runs.
  EXPECT_THROW(DeltaJournal::deserialize(blob.substr(0, blob.size() - 3)),
               std::runtime_error);
}

TEST(Journal, CompactionBoundsRecordsAndKeepsChainContinuity) {
  SiloController ctl(small_dc());
  DeltaJournal journal;
  ctl.attach_journal(&journal, /*snapshot_every=*/4);
  Rng rng(5);
  std::vector<TenantHandle> live;
  for (int i = 0; i < 14; ++i) {
    if (i % 3 == 2 && !live.empty()) {
      ctl.release(live.back());
      live.pop_back();
    } else if (const auto h = ctl.admit(sample_request(rng))) {
      live.push_back(*h);
    }
  }
  EXPECT_TRUE(journal.has_snapshot());
  // Compaction trims the tail: at most snapshot_every - 1 loose records.
  EXPECT_LT(journal.records().size(), 4u);
  EXPECT_EQ(journal.total_appends(), 14);
  EXPECT_GE(journal.metrics().value("controller.journal.snapshots"), 3);
  EXPECT_TRUE(journal.verify());

  // The compacted journal still recovers the exact controller state.
  DeltaJournal reloaded = DeltaJournal::deserialize(journal.serialize());
  SiloController recovered(small_dc());
  recovered.recover_from_journal(reloaded);
  for (int s = 0; s < ctl.topo().num_servers(); ++s)
    EXPECT_EQ(pacer_config_checksum(recovered.server_config(s)),
              pacer_config_checksum(ctl.server_config(s)))
        << "server " << s;
  EXPECT_EQ(recovered.stats().free_slots, ctl.stats().free_slots);
}

TEST(Journal, RecoverRequiresFreshController) {
  SiloController ctl(small_dc());
  DeltaJournal journal;
  ctl.attach_journal(&journal);
  Rng rng(9);
  ASSERT_TRUE(ctl.admit(sample_request(rng)));

  SiloController dirty(small_dc());
  ASSERT_TRUE(dirty.admit(sample_request(rng)));
  EXPECT_THROW(dirty.recover_from_journal(journal), std::logic_error);
}

// ---------------------------------------------------------------------------
// Storm equivalence: twin controllers driven in lockstep through a seeded
// admit/release/fail/restore storm; one crashes at a seeded point and is
// rebuilt from its serialized journal. Every observable — placement
// decisions, per-server shipped configs (via drained deltas AND snapshots),
// tenant statuses, stats, metric counters — must match the twin that never
// crashed.

const char* kControllerCounters[] = {
    "controller.admissions",          "controller.rejections",
    "controller.releases",            "controller.recovery.replaced",
    "controller.recovery.degraded",   "controller.recovery.unplaced",
    "controller.recovery.promotions", "controller.diff.deltas",
    "controller.diff.upserts",        "controller.diff.removes",
};

void run_twin_storm(std::uint64_t seed, std::int64_t crash_at,
                    std::int64_t snapshot_every) {
  SCOPED_TRACE("seed " + std::to_string(seed) + " crash_at " +
               std::to_string(crash_at) + " snapshot_every " +
               std::to_string(snapshot_every));
  const auto cfg = small_dc();
  std::optional<SiloController> a;  // crashes; journaled
  a.emplace(cfg);
  SiloController b(cfg);  // never crashes
  DeltaJournal journal;
  a->attach_journal(&journal, snapshot_every);

  // Hypervisor-side fold of each controller's drained delta stream.
  std::map<int, PacerConfigTable> fleet_a, fleet_b;
  const auto drain = [](SiloController& ctl,
                        std::map<int, PacerConfigTable>& fleet) {
    for (const auto& delta : ctl.drain_config_deltas())
      fleet[delta.server].apply(delta);
  };

  Rng rng(seed);
  std::vector<TenantHandle> live;
  const std::int64_t ops = 60;
  for (std::int64_t op = 0; op < ops; ++op) {
    const auto roll = rng.uniform_int(0, 9);
    if (roll < 4 || live.empty()) {
      const auto req = sample_request(rng);
      const auto ha = a->admit(req);
      const auto hb = b.admit(req);
      ASSERT_EQ(ha.has_value(), hb.has_value());
      if (ha) {
        ASSERT_EQ(ha->id, hb->id);
        ASSERT_EQ(ha->vm_to_server, hb->vm_to_server);
        live.push_back(*ha);
      }
    } else if (roll < 7) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      a->release(live[i]);
      b.release(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const int anchor = live[i].vm_to_server.front();
      if (anchor >= 0) {
        if (roll < 9) {
          a->handle_server_failure(anchor);
          b.handle_server_failure(anchor);
          a->restore_server(anchor);
          b.restore_server(anchor);
        } else {
          const auto port = a->topo().server_down(anchor);
          a->handle_link_failure(port);
          b.handle_link_failure(port);
          a->restore_link(port);
          b.restore_link(port);
        }
        // Re-placement may have moved every VM of the affected tenants;
        // refresh anchors from the (identical) twin state.
        for (auto& handle : live)
          handle.vm_to_server = b.tenant_placement(handle.id);
      }
    }
    drain(*a, fleet_a);
    drain(b, fleet_b);

    if (op == crash_at) {
      // Crash: the controller object dies; only the serialized journal
      // bytes survive. Recovery replays into a fresh controller and
      // re-emits the whole delta backlog, which the fleet folds in (a
      // deliberate full resync; anti-entropy would dedupe it online).
      journal = DeltaJournal::deserialize(journal.serialize());
      a.emplace(cfg);
      a->recover_from_journal(journal, snapshot_every);
      drain(*a, fleet_a);
      EXPECT_GE(journal.metrics().value("controller.journal.replays"), 1);
    }
  }

  // Stats and per-tenant status match.
  const auto sa = a->stats();
  const auto sb = b.stats();
  EXPECT_EQ(sa.free_slots, sb.free_slots);
  EXPECT_EQ(sa.admitted_tenants, sb.admitted_tenants);
  EXPECT_EQ(sa.degraded_tenants, sb.degraded_tenants);
  EXPECT_EQ(sa.unplaced_tenants, sb.unplaced_tenants);
  EXPECT_DOUBLE_EQ(sa.max_port_reservation, sb.max_port_reservation);
  for (const auto& handle : live) {
    EXPECT_EQ(a->tenant_status(handle.id), b.tenant_status(handle.id));
    EXPECT_EQ(a->tenant_placement(handle.id), b.tenant_placement(handle.id));
  }

  // Shipped configs match: snapshots across controllers, and each fleet's
  // delta-built tables reproduce its controller's snapshots.
  for (int s = 0; s < b.topo().num_servers(); ++s) {
    const auto snap = pacer_config_checksum(b.server_config(s));
    EXPECT_EQ(pacer_config_checksum(a->server_config(s)), snap)
        << "server " << s;
    const auto applied = [&](std::map<int, PacerConfigTable>& fleet) {
      const auto it = fleet.find(s);
      return it == fleet.end() ? pacer_config_checksum({})
                               : it->second.checksum();
    };
    EXPECT_EQ(applied(fleet_a), snap) << "server " << s;
    EXPECT_EQ(applied(fleet_b), snap) << "server " << s;
  }
  EXPECT_EQ(a->paced_servers(), b.paced_servers());

  // Metric counters replay exactly (write-ahead covers rejections too).
  for (const char* name : kControllerCounters)
    EXPECT_EQ(a->metrics().value(name), b.metrics().value(name)) << name;
}

TEST(Journal, CrashRecoveryIsBitIdenticalAcrossSeedsAndCrashPoints) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng pick(seed * 77);
    run_twin_storm(seed, pick.uniform_int(5, 50), /*snapshot_every=*/0);
    run_twin_storm(seed + 10, pick.uniform_int(5, 50),
                   /*snapshot_every=*/7);
  }
}

TEST(Journal, RecoveredControllerKeepsJournalingSeamlessly) {
  const auto cfg = small_dc();
  std::optional<SiloController> ctl;
  ctl.emplace(cfg);
  DeltaJournal journal;
  ctl->attach_journal(&journal, /*snapshot_every=*/5);
  Rng rng(21);
  for (int i = 0; i < 8; ++i) ctl->admit(sample_request(rng));

  journal = DeltaJournal::deserialize(journal.serialize());
  ctl.emplace(cfg);
  ctl->recover_from_journal(journal, /*snapshot_every=*/5);
  const auto appends_at_recovery = journal.total_appends();

  // The recovered controller journals new ops into the same journal; a
  // second crash+recover covering both generations of ops still works.
  for (int i = 0; i < 6; ++i) ctl->admit(sample_request(rng));
  EXPECT_EQ(journal.total_appends(), appends_at_recovery + 6);
  SiloController twin(cfg);
  twin.recover_from_journal(journal);
  for (int s = 0; s < twin.topo().num_servers(); ++s)
    EXPECT_EQ(pacer_config_checksum(twin.server_config(s)),
              pacer_config_checksum(ctl->server_config(s)));
}

}  // namespace
}  // namespace silo
