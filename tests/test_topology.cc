#include <gtest/gtest.h>

#include "topology/topology.h"

namespace silo::topology {
namespace {

TopologyConfig small() {
  TopologyConfig cfg;
  cfg.pods = 2;
  cfg.racks_per_pod = 3;
  cfg.servers_per_rack = 4;
  cfg.vm_slots_per_server = 8;
  cfg.server_link_rate = 10 * kGbps;
  cfg.oversubscription = 5.0;
  cfg.port_buffer = 312 * kKB;
  return cfg;
}

TEST(Topology, Dimensions) {
  Topology t(small());
  EXPECT_EQ(t.num_pods(), 2);
  EXPECT_EQ(t.num_racks(), 6);
  EXPECT_EQ(t.num_servers(), 24);
  EXPECT_EQ(t.total_vm_slots(), 192);
  // 2 ports per server + 2 per rack + 2 per pod.
  EXPECT_EQ(t.num_ports(), 2 * 24 + 2 * 6 + 2 * 2);
}

TEST(Topology, Oversubscription) {
  Topology t(small());
  // Rack uplink: 4 servers * 10G / 5 = 8 Gbps.
  EXPECT_NEAR(t.rack_uplink_rate().bps(), (8 * kGbps).bps(), 1);
  // Pod uplink: 3 racks * 8G / 5 = 4.8 Gbps.
  EXPECT_NEAR(t.pod_uplink_rate().bps(), (4.8 * kGbps).bps(), 1e3);
  EXPECT_NEAR(t.port(t.rack_up(0)).rate.bps(), (8 * kGbps).bps(), 1);
  EXPECT_NEAR(t.port(t.pod_down(1)).rate.bps(), (4.8 * kGbps).bps(), 1e3);
}

TEST(Topology, IndexMaps) {
  Topology t(small());
  EXPECT_EQ(t.rack_of_server(0), 0);
  EXPECT_EQ(t.rack_of_server(4), 1);
  EXPECT_EQ(t.pod_of_server(11), 0);
  EXPECT_EQ(t.pod_of_server(12), 1);
  EXPECT_EQ(t.first_server_of_rack(2), 8);
  EXPECT_EQ(t.first_rack_of_pod(1), 3);
}

TEST(Topology, QueueCapacityDerivedFromBuffer) {
  Topology t(small());
  // 312 KB at 10 Gbps = 249.6 us.
  EXPECT_NEAR(static_cast<double>(t.port(t.server_up(0)).queue_capacity),
              249.6e3, 1e3);
  // Slower ports drain slower: higher queue capacity.
  EXPECT_GT(t.port(t.pod_up(0)).queue_capacity,
            t.port(t.server_up(0)).queue_capacity);
}

TEST(Topology, QueueCapacityOverride) {
  auto cfg = small();
  cfg.queue_capacity_override = 100 * kUsec;
  Topology t(cfg);
  EXPECT_EQ(t.port(t.server_up(0)).queue_capacity, 100 * kUsec);
  EXPECT_EQ(t.port(t.pod_up(0)).queue_capacity, 100 * kUsec);
}

TEST(Topology, IntraServerPathIsEmpty) {
  Topology t(small());
  EXPECT_TRUE(t.path(3, 3).empty());
  EXPECT_EQ(t.path_queue_capacity(3, 3), TimeNs{0});
}

TEST(Topology, IntraRackPath) {
  Topology t(small());
  const auto p = t.path(0, 1);  // same rack
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].value, t.server_up(0).value);
  EXPECT_EQ(p[1].value, t.server_down(1).value);
}

TEST(Topology, IntraPodPath) {
  Topology t(small());
  const auto p = t.path(0, 5);  // rack 0 -> rack 1, same pod
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0].value, t.server_up(0).value);
  EXPECT_EQ(p[1].value, t.rack_up(0).value);
  EXPECT_EQ(p[2].value, t.rack_down(1).value);
  EXPECT_EQ(p[3].value, t.server_down(5).value);
}

TEST(Topology, CrossPodPath) {
  Topology t(small());
  const auto p = t.path(0, 23);  // pod 0 -> pod 1
  ASSERT_EQ(p.size(), 6u);
  EXPECT_EQ(p[1].value, t.rack_up(0).value);
  EXPECT_EQ(p[2].value, t.pod_up(0).value);
  EXPECT_EQ(p[3].value, t.pod_down(1).value);
  EXPECT_EQ(p[4].value, t.rack_down(5).value);
}

TEST(Topology, PathCapacityIncreasesWithDistance) {
  Topology t(small());
  const auto intra_rack = t.path_queue_capacity(0, 1);
  const auto intra_pod = t.path_queue_capacity(0, 5);
  const auto cross_pod = t.path_queue_capacity(0, 23);
  EXPECT_LT(intra_rack, intra_pod);
  EXPECT_LT(intra_pod, cross_pod);
}

TEST(Topology, RejectsBadConfig) {
  auto cfg = small();
  cfg.pods = 0;
  EXPECT_THROW(Topology{cfg}, std::invalid_argument);
  cfg = small();
  cfg.oversubscription = 0.5;
  EXPECT_THROW(Topology{cfg}, std::invalid_argument);
}

TEST(Topology, RejectsOutOfRange) {
  Topology t(small());
  EXPECT_THROW(t.path(0, 24), std::out_of_range);
  EXPECT_THROW(t.server_up(-1), std::out_of_range);
  EXPECT_THROW(t.rack_up(6), std::out_of_range);
  EXPECT_THROW(t.pod_down(2), std::out_of_range);
}

}  // namespace
}  // namespace silo::topology
