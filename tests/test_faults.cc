// Fault injection & recovery tests: port link faults, loss windows, server
// crashes, transport aborts, driver retries, and the headline scenario —
// a ToR uplink dies mid data-shuffle, comes back, and every message still
// completes with zero leaked pool packets and a bit-identical replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "core/controller.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

namespace silo::sim {
namespace {

// ---------------------------------------------------------------------------
// Port-level fault semantics (direct SwitchPortSim unit tests).

TEST(PortFaults, DownedLinkKillsQueuedInFlightAndArrivals) {
  EventQueue ev;
  PacketPool& pool = ev.pool();
  int delivered = 0;
  SwitchPortSim port(ev, PortConfig{},
                     [&](PacketHandle h) {
                       ++delivered;
                       ev.pool().free(h);
                     });
  auto send = [&] {
    const PacketHandle h = pool.alloc();
    pool.get(h).wire_bytes = Bytes{1500};
    port.enqueue(h);
  };

  send();  // goes straight onto the wire
  send();  // queued
  send();  // queued
  port.set_link_up(false);
  // The queued pair dies immediately; the one on the wire dies at tx-done.
  EXPECT_EQ(port.stats().fault_drops, 2);
  send();  // arrival on a dead link
  EXPECT_EQ(port.stats().fault_drops, 3);
  ev.run_until(1 * kMsec);
  EXPECT_EQ(port.stats().fault_drops, 4);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(port.queued_bytes(), Bytes{0});

  port.set_link_up(true);
  send();
  ev.run_until(2 * kMsec);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(port.stats().fault_drops, 4);  // restore did not re-drop
  EXPECT_EQ(port.stats().drops, 0);        // none of this was congestion
  EXPECT_EQ(pool.live(), 0);
}

TEST(PortFaults, LossWindowConservesEveryPacket) {
  EventQueue ev;
  PacketPool& pool = ev.pool();
  std::int64_t delivered = 0;
  SwitchPortSim port(ev, PortConfig{},
                     [&](PacketHandle h) {
                       ++delivered;
                       ev.pool().free(h);
                     });
  Rng rng(7);
  port.set_loss(0.5, &rng);
  const int sent = 200;
  for (int i = 0; i < sent; ++i) {
    const PacketHandle h = pool.alloc();
    pool.get(h).wire_bytes = Bytes{1500};
    port.enqueue(h);
  }
  ev.run_until(1 * kSec);
  EXPECT_EQ(delivered + port.stats().fault_drops, sent);
  EXPECT_GT(port.stats().fault_drops, sent / 4);  // rate 0.5, n = 200
  EXPECT_LT(port.stats().fault_drops, 3 * sent / 4);
  EXPECT_EQ(port.stats().drops, 0);  // loss is a fault, not congestion
  EXPECT_EQ(pool.live(), 0);

  port.set_loss(0, nullptr);
  const std::int64_t before = delivered;
  for (int i = 0; i < 20; ++i) {
    const PacketHandle h = pool.alloc();
    pool.get(h).wire_bytes = Bytes{1500};
    port.enqueue(h);
  }
  ev.run_until(2 * kSec);
  EXPECT_EQ(delivered - before, 20);  // window closed: lossless again
  EXPECT_EQ(pool.live(), 0);
}

// ---------------------------------------------------------------------------
// Transport aborts and recovery through the full cluster stack.

ClusterConfig two_server_cluster() {
  ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 2;
  cfg.topo.vm_slots_per_server = 1;
  cfg.topo.oversubscription = 1.0;
  cfg.scheme = Scheme::kTcp;
  cfg.tcp.min_rto = 2 * kMsec;
  cfg.tcp.max_consecutive_rtos = 3;
  return cfg;
}

TEST(ClusterFaults, LinkDownAbortsMessageThenRecovers) {
  ClusterSim sim(two_server_cluster());
  TenantRequest req;
  req.num_vms = 2;
  req.tenant_class = TenantClass::kBandwidthOnly;
  req.guarantee = {1 * kGbps, Bytes{15 * kKB}, TimeNs{0}, 1 * kGbps};
  const auto t = sim.add_tenant(req);
  ASSERT_TRUE(t);
  ASSERT_NE(sim.vm_server(*t, 0), sim.vm_server(*t, 1));

  // ToR egress toward the receiver is dead: data never arrives, ACKs never
  // come back, and after max_consecutive_rtos the transport must give up.
  const auto dead = sim.topo().server_down(sim.vm_server(*t, 1));
  sim.fabric().port(dead).set_link_up(false);

  ClusterSim::MessageResult first;
  bool first_done = false;
  sim.send_message(*t, 0, 1, 64 * kKB, [&](const ClusterSim::MessageResult& r) {
    first_done = true;
    first = r;
  });
  sim.run_until(200 * kMsec);
  ASSERT_TRUE(first_done);
  EXPECT_TRUE(first.aborted);
  EXPECT_TRUE(first.had_rto);
  EXPECT_GE(sim.tenant_abort_count(*t), 1);
  EXPECT_EQ(sim.tenant_counters(*t).aborted, 1);
  EXPECT_EQ(sim.tenant_counters(*t).completed, 0);
  EXPECT_EQ(sim.total_aborted_messages(), 1);
  EXPECT_GT(sim.total_fault_drops(), 0);

  // Restore the link: the same flow (reset by the abort) carries the next
  // message to completion.
  sim.fabric().port(dead).set_link_up(true);
  ClusterSim::MessageResult second;
  bool second_done = false;
  sim.send_message(*t, 0, 1, 64 * kKB, [&](const ClusterSim::MessageResult& r) {
    second_done = true;
    second = r;
  });
  sim.run_until(400 * kMsec);
  ASSERT_TRUE(second_done);
  EXPECT_FALSE(second.aborted);
  EXPECT_EQ(sim.tenant_counters(*t).completed, 1);
  EXPECT_EQ(sim.total_completed_messages(), 1);
  EXPECT_EQ(sim.events().pool().live(), 0);
}

TEST(ClusterFaults, ServerCrashViaInjectorAbortsThenRecovers) {
  ClusterSim sim(two_server_cluster());
  TenantRequest req;
  req.num_vms = 2;
  req.tenant_class = TenantClass::kBandwidthOnly;
  req.guarantee = {1 * kGbps, Bytes{15 * kKB}, TimeNs{0}, 1 * kGbps};
  const auto t = sim.add_tenant(req);
  ASSERT_TRUE(t);
  const int dst_server = sim.vm_server(*t, 1);

  // Crash the receiver 1 ms into a ~8 ms transfer; restore at 21 ms.
  FaultPlan plan;
  plan.server_crash(1 * kMsec, dst_server, 20 * kMsec);
  FaultInjector chaos(sim, plan);
  chaos.arm();

  ClusterSim::MessageResult first;
  bool first_done = false;
  sim.send_message(*t, 0, 1, 10 * kMB, [&](const ClusterSim::MessageResult& r) {
    first_done = true;
    first = r;
  });
  sim.run_until(100 * kMsec);
  EXPECT_EQ(chaos.executed(), 2);
  ASSERT_TRUE(first_done);
  EXPECT_TRUE(first.aborted);
  EXPECT_GT(sim.host(dst_server).fault_drops(), 0);
  EXPECT_TRUE(sim.host(dst_server).up());  // plan restored it

  ClusterSim::MessageResult second;
  bool second_done = false;
  sim.send_message(*t, 0, 1, 64 * kKB, [&](const ClusterSim::MessageResult& r) {
    second_done = true;
    second = r;
  });
  sim.run_until(300 * kMsec);
  ASSERT_TRUE(second_done);
  EXPECT_FALSE(second.aborted);
  EXPECT_EQ(sim.events().pool().live(), 0);
}

// ---------------------------------------------------------------------------
// Headline scenario: a ToR uplink dies mid data-shuffle and comes back.
// Every chunk must eventually complete (driver retries after transport
// aborts), no pool packet may leak, and the whole run must replay
// bit-identically under the same seed.

// FNV-1a over every delivered packet's observable fields (same scheme as
// the determinism goldens).
struct TraceChecksum {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

struct ShuffleOutcome {
  std::uint64_t checksum = 0;
  std::uint64_t packets = 0;
  std::int64_t completed = 0;
  std::int64_t aborted = 0;
  std::int64_t retried = 0;
  std::int64_t abandoned = 0;
  std::int64_t fault_drops = 0;
  std::int64_t pool_live = -1;
};

ShuffleOutcome run_tor_uplink_shuffle() {
  ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 2;
  cfg.topo.servers_per_rack = 2;
  cfg.topo.vm_slots_per_server = 1;
  cfg.topo.oversubscription = 1.0;
  cfg.scheme = Scheme::kSilo;
  cfg.tcp.min_rto = 2 * kMsec;
  cfg.tcp.max_consecutive_rtos = 3;
  ClusterSim sim(cfg);

  TraceChecksum ck;
  std::uint64_t packets = 0;
  sim.set_packet_tap([&](const Packet& p) {
    ++packets;
    ck.mix(static_cast<std::uint64_t>(sim.events().now()));
    ck.mix(static_cast<std::uint64_t>(p.flow_id));
    ck.mix(static_cast<std::uint64_t>(p.seq));
    ck.mix(static_cast<std::uint64_t>(p.ack_seq));
    ck.mix(static_cast<std::uint64_t>(p.payload));
    ck.mix(p.is_ack ? 1u : 0u);
  });

  TenantRequest req;
  req.num_vms = 4;
  req.tenant_class = TenantClass::kBandwidthOnly;
  req.guarantee = {500 * kMbps, Bytes{15 * kKB}, TimeNs{0}, 1 * kGbps};
  const auto t = sim.add_tenant(req);
  EXPECT_TRUE(t.has_value());
  // One VM per server: the shuffle necessarily crosses the rack uplink.
  bool cross_rack = false;
  for (int v = 0; v < req.num_vms; ++v)
    cross_rack |= sim.topo().rack_of_server(sim.vm_server(*t, v)) !=
                  sim.topo().rack_of_server(sim.vm_server(*t, 0));
  EXPECT_TRUE(cross_rack);

  workload::BulkDriver shuffle(sim, *t, workload::all_to_all(req.num_vms),
                               64 * kKB, /*seed=*/7);
  workload::RetryPolicy rp;
  rp.enabled = true;
  shuffle.set_retry(rp);
  shuffle.start(30 * kMsec);

  // Kill rack 0's uplink from 10 ms to 40 ms — mid-shuffle, long enough
  // that min_rto 2 ms * 3 consecutive RTOs aborts every cross-rack flow.
  FaultPlan plan;
  plan.link_flap(10 * kMsec, sim.topo().rack_up(0), 30 * kMsec);
  FaultInjector chaos(sim, plan);
  chaos.arm();

  // Long drain horizon: retry backoff reaches ~60 ms past the restore.
  sim.run_until(1 * kSec);

  ShuffleOutcome out;
  out.checksum = ck.h;
  out.packets = packets;
  out.completed = shuffle.completed_chunks();
  out.aborted = shuffle.aborted_messages();
  out.retried = shuffle.retried_messages();
  out.abandoned = shuffle.abandoned_chunks();
  out.fault_drops = sim.total_fault_drops();
  out.pool_live = sim.events().pool().live();
  EXPECT_EQ(sim.total_aborted_messages(), out.aborted);
  return out;
}

TEST(ClusterFaults, TorUplinkFlapEveryMessageEventuallyCompletes) {
  const auto out = run_tor_uplink_shuffle();
  // The outage was real: packets died on the downed uplink and cross-rack
  // transfers aborted...
  EXPECT_GT(out.fault_drops, 0);
  EXPECT_GT(out.aborted, 0);
  EXPECT_GT(out.completed, 0);
  // ...but the drivers retried every aborted chunk to completion: nothing
  // was abandoned, every retry was accounted, and no pool packet leaked.
  EXPECT_EQ(out.abandoned, 0);
  EXPECT_GE(out.retried, out.aborted - out.abandoned);
  EXPECT_EQ(out.pool_live, 0);
}

TEST(ClusterFaults, TorUplinkFlapReplaysBitIdentically) {
  const auto a = run_tor_uplink_shuffle();
  const auto b = run_tor_uplink_shuffle();
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.retried, b.retried);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
}

// ---------------------------------------------------------------------------
// Deterministic chaos soak: a seeded random fault plan (flaps, loss
// windows, server crashes) against a mixed workload. CI varies the seed
// window via SOAK_SEED_BASE; any failure prints the seed to reproduce.

std::uint64_t soak_seed_base() {
  const char* env = std::getenv("SOAK_SEED_BASE");
  if (env && *env) return std::strtoull(env, nullptr, 10);
  return 20260805ull;  // fixed default: the tier-1 run stays deterministic
}

struct SoakOutcome {
  std::uint64_t checksum = 0;
  std::int64_t completed = 0;
  std::int64_t aborted = 0;
  std::int64_t fault_drops = 0;
  std::int64_t pool_live = -1;
  int faults_executed = 0;
};

SoakOutcome run_soak(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 2;
  cfg.topo.servers_per_rack = 2;
  cfg.topo.vm_slots_per_server = 2;
  cfg.topo.oversubscription = 1.0;
  cfg.scheme = Scheme::kSilo;
  cfg.tcp.min_rto = 2 * kMsec;
  cfg.tcp.max_consecutive_rtos = 3;
  ClusterSim sim(cfg);

  TraceChecksum ck;
  sim.set_packet_tap([&](const Packet& p) {
    ck.mix(static_cast<std::uint64_t>(sim.events().now()));
    ck.mix(static_cast<std::uint64_t>(p.flow_id));
    ck.mix(static_cast<std::uint64_t>(p.seq));
    ck.mix(static_cast<std::uint64_t>(p.payload));
  });

  TenantRequest bulk_req;
  bulk_req.num_vms = 4;
  bulk_req.tenant_class = TenantClass::kBandwidthOnly;
  bulk_req.guarantee = {500 * kMbps, Bytes{15 * kKB}, TimeNs{0}, 1 * kGbps};
  const auto tb = sim.add_tenant(bulk_req);
  TenantRequest msg_req;
  msg_req.num_vms = 2;
  msg_req.tenant_class = TenantClass::kDelaySensitive;
  msg_req.guarantee = {300 * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  const auto tm = sim.add_tenant(msg_req);
  EXPECT_TRUE(tb.has_value());
  EXPECT_TRUE(tm.has_value());

  workload::RetryPolicy rp;
  rp.enabled = true;
  workload::BulkDriver bulk(sim, *tb, workload::all_to_all(bulk_req.num_vms),
                            64 * kKB, seed);
  bulk.set_retry(rp);
  workload::PoissonMessageDriver msgs(sim, *tm, 0, 1, /*msgs_per_sec=*/2000,
                                      10 * kKB, seed + 1);
  msgs.set_retry(rp);
  bulk.start(25 * kMsec);
  msgs.start(25 * kMsec);

  const TimeNs horizon = 40 * kMsec;
  FaultPlan plan = FaultPlan::random(sim.topo(), seed, horizon, /*events=*/4);
  FaultInjector chaos(sim, plan);
  chaos.arm();

  sim.run_until(1 * kSec);  // every fault repaired by 32 ms; long drain

  SoakOutcome out;
  out.checksum = ck.h;
  out.completed = sim.total_completed_messages();
  out.aborted = sim.total_aborted_messages();
  out.fault_drops = sim.total_fault_drops();
  out.pool_live = sim.events().pool().live();
  out.faults_executed = chaos.executed();
  return out;
}

TEST(FaultSoak, RandomPlansConservePacketsAndReplayExactly) {
  const std::uint64_t base = soak_seed_base();
  for (std::uint64_t seed = base; seed < base + 2; ++seed) {
    const auto a = run_soak(seed);
    // Recovery: all traffic drained, nothing left in the packet arena.
    EXPECT_EQ(a.pool_live, 0) << "seed " << seed;
    EXPECT_GT(a.completed, 0) << "seed " << seed;
    EXPECT_GT(a.faults_executed, 0) << "seed " << seed;
    // Determinism: the identical seed replays the identical trace.
    const auto b = run_soak(seed);
    EXPECT_EQ(a.checksum, b.checksum) << "seed " << seed;
    EXPECT_EQ(a.completed, b.completed) << "seed " << seed;
    EXPECT_EQ(a.aborted, b.aborted) << "seed " << seed;
    EXPECT_EQ(a.fault_drops, b.fault_drops) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Golden fault-scenario checksums. The replay tests above prove run-to-run
// stability *within* one build; these pin the traces and the control-plane
// recovery ordering *across* builds, so a refactor that silently changes
// event ordering, retry scheduling, or the controller's recovery ladder
// (map iteration order, report sorting) trips a hard-coded constant
// instead of sailing through.

TEST(ClusterFaults, TorUplinkFlapMatchesGoldenChecksum) {
  const auto out = run_tor_uplink_shuffle();
  EXPECT_EQ(out.checksum, 8871870258756233443ull);
  EXPECT_EQ(out.packets, 6258u);
}

// Drive the controller through the full recovery ladder — admissions up to
// near-capacity, a server death, a ToR uplink death, then both restores —
// and checksum every RecoveryReport in order: which tenants were affected,
// how each one fared (replaced / degraded / unplaced), and the exact pacer
// records pushed back out. The golden value locks the deterministic
// ordering contract of RecoveryReport (sorted ids, stable map iteration).
TEST(ControllerFaults, RecoveryLadderMatchesGoldenChecksum) {
  topology::TopologyConfig topo;
  topo.pods = 1;
  topo.racks_per_pod = 2;
  topo.servers_per_rack = 4;
  topo.vm_slots_per_server = 2;
  SiloController ctl(topo);

  TraceChecksum ck;
  const auto mix_records = [&](const std::vector<PacerConfigRecord>& recs) {
    ck.mix(recs.size());
    for (const auto& r : recs) {
      ck.mix(static_cast<std::uint64_t>(r.tenant));
      ck.mix(static_cast<std::uint64_t>(r.vm_index));
      ck.mix(static_cast<std::uint64_t>(r.server));
      for (const auto& [peer_vm, peer_server] : r.peers) {
        ck.mix(static_cast<std::uint64_t>(peer_vm));
        ck.mix(static_cast<std::uint64_t>(peer_server));
      }
    }
  };
  const auto mix_report = [&](const RecoveryReport& rep) {
    for (const auto* ids :
         {&rep.affected, &rep.replaced, &rep.degraded, &rep.unplaced}) {
      ck.mix(ids->size());
      for (const auto id : *ids) ck.mix(static_cast<std::uint64_t>(id));
    }
    mix_records(rep.refreshed);
  };

  // Three delay-sensitive tenants fill 12 of 16 slots; re-placement room
  // exists but is scarce, so failures exercise every ladder rung.
  std::vector<TenantHandle> handles;
  for (const int vms : {6, 4, 2}) {
    TenantRequest req;
    req.num_vms = vms;
    req.tenant_class = TenantClass::kDelaySensitive;
    req.guarantee = {500 * kMbps, 15 * kKB, 2 * kMsec, 1 * kGbps};
    const auto h = ctl.admit(req);
    ASSERT_TRUE(h.has_value()) << vms << " VMs";
    handles.push_back(*h);
    for (const int s : h->vm_to_server) ck.mix(static_cast<std::uint64_t>(s));
  }

  mix_report(ctl.handle_server_failure(0));
  mix_report(ctl.handle_link_failure(ctl.topo().rack_up(0)));
  mix_report(ctl.restore_link(ctl.topo().rack_up(0)));
  mix_report(ctl.restore_server(0));

  // Final state: per-tenant status and placement, plus what each server's
  // hypervisor would be told to pace.
  for (const auto& h : handles) {
    ck.mix(static_cast<std::uint64_t>(ctl.tenant_status(h.id)));
    for (const int s : ctl.tenant_placement(h.id))
      ck.mix(static_cast<std::uint64_t>(s));
  }
  for (int s = 0; s < ctl.topo().num_servers(); ++s)
    mix_records(ctl.server_config(s));

  EXPECT_EQ(ck.h, 872242249491521731ull);
}

}  // namespace
}  // namespace silo::sim
