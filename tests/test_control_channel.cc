// ControlChannel / PacerAgentFleet tests: sequenced idempotent delivery
// (any permutation-with-duplicates of a delta stream converges to the
// in-order result), loss + retry + anti-entropy reconciliation, epoch
// handling across controller restarts, stale-remove accounting, and the
// rotating-seed control-plane chaos soak.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/journal.h"
#include "sim/cluster.h"
#include "sim/control_channel.h"
#include "sim/faults.h"
#include "util/rng.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

namespace silo::sim {
namespace {

topology::TopologyConfig small_dc() {
  topology::TopologyConfig cfg;
  cfg.pods = 2;
  cfg.racks_per_pod = 2;
  cfg.servers_per_rack = 4;
  cfg.vm_slots_per_server = 4;
  return cfg;
}

TenantRequest sample_request(Rng& rng) {
  TenantRequest req;
  req.num_vms = 2 + static_cast<int>(rng.uniform_int(0, 4));
  if (rng.uniform() < 0.5) {
    req.tenant_class = TenantClass::kDelaySensitive;
    req.guarantee = {300 * kMbps, 15 * kKB, 1300 * kUsec, 1 * kGbps};
  } else {
    req.tenant_class = TenantClass::kBandwidthOnly;
    req.guarantee = {500 * kMbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
  }
  return req;
}

/// Agent state must equal the controller's server_config everywhere the
/// channel knows about, and the channel must consider itself converged.
void expect_fleet_matches(const SiloController& ctl,
                          const PacerAgentFleet& fleet,
                          const ControlChannel& channel) {
  EXPECT_TRUE(channel.converged());
  for (const int s : channel.shadow_servers()) {
    const auto want = pacer_config_checksum(ctl.server_config(s));
    EXPECT_EQ(channel.shadow_checksum(s), want) << "shadow, server " << s;
    EXPECT_EQ(fleet.checksum(s), want) << "agent, server " << s;
    EXPECT_EQ(fleet.buffered(s), 0) << "server " << s;
  }
}

TEST(ControlChannel, LosslessShipReproducesServerConfig) {
  EventQueue events;
  PacerAgentFleet fleet;
  ControlChannel channel(events, fleet, ChannelConfig{});
  SiloController ctl(small_dc());
  Rng rng(4);

  std::vector<TenantHandle> live;
  for (int i = 0; i < 10; ++i)
    if (const auto h = ctl.admit(sample_request(rng))) live.push_back(*h);
  channel.ship(ctl.drain_config_deltas());
  events.run_all();
  ctl.release(live.back());
  live.pop_back();
  ctl.handle_server_failure(live.front().vm_to_server.front());
  ctl.restore_server(live.front().vm_to_server.front());
  channel.ship(ctl.drain_config_deltas());
  events.run_all();

  expect_fleet_matches(ctl, fleet, channel);
  const auto& m = channel.metrics();
  EXPECT_GT(m.value("controller.channel.shipped"), 0);
  EXPECT_EQ(m.value("controller.channel.shipped"),
            m.value("controller.channel.applied"));
  EXPECT_EQ(m.value("controller.channel.dropped"), 0);
  EXPECT_EQ(m.value("controller.channel.retries"), 0);
  EXPECT_EQ(m.value("controller.channel.desyncs_repaired"), 0);
  EXPECT_GT(channel.last_convergence_delay(), TimeNs{0});
}

// ---------------------------------------------------------------------------
// Sequencing: the delta stream is order-sensitive at the table level (a
// remove that precedes its record's upsert is a no-op), so convergence
// under reordering must come from the seq/gap logic, not from luck.

std::vector<PacerConfigDelta> order_sensitive_stream(int server, int n) {
  std::vector<PacerConfigDelta> stream;
  for (int i = 0; i < n; ++i) {
    PacerConfigDelta d;
    d.server = server;
    if (i > 0) d.removes.emplace_back(i - 1, i - 1);  // kill the previous
    PacerConfigRecord rec;
    rec.tenant = i;
    rec.vm_index = i;
    rec.server = server;
    rec.guarantee = {(100 + i) * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
    d.upserts.push_back(rec);
    stream.push_back(d);
  }
  return stream;
}

std::uint64_t checksum_after(const std::vector<PacerConfigDelta>& stream,
                             const std::vector<int>& order, int server) {
  PacerAgentFleet fleet;
  for (const int i : order)
    fleet.deliver_delta(server, /*epoch=*/1, /*seq=*/i + 1, stream[i]);
  return fleet.checksum(server);
}

TEST(ControlChannel, EveryPermutationWithDuplicatesConvergesInOrder) {
  const int server = 3;
  const auto stream = order_sensitive_stream(server, 5);
  std::vector<int> order(stream.size());
  std::iota(order.begin(), order.end(), 0);
  const std::uint64_t want = checksum_after(stream, order, server);

  // Raw-table control: naive out-of-order apply really does diverge, so
  // the equality below is earned by the sequencing layer.
  {
    PacerConfigTable naive;
    for (auto it = stream.rbegin(); it != stream.rend(); ++it)
      naive.apply(*it);
    EXPECT_NE(naive.checksum(), want);
  }

  do {
    // Each permutation delivered once... (120 permutations)
    EXPECT_EQ(checksum_after(stream, order, server), want)
        << ::testing::PrintToString(order);
    // ...and once more with every delta duplicated after its first copy.
    PacerAgentFleet fleet;
    for (const int i : order) {
      fleet.deliver_delta(server, 1, i + 1, stream[i]);
      fleet.deliver_delta(server, 1, i + 1, stream[i]);
    }
    EXPECT_EQ(fleet.checksum(server), want)
        << "dup " << ::testing::PrintToString(order);
    EXPECT_EQ(fleet.buffered(server), 0);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(ControlChannel, SeededShufflesWithDuplicatesConvergeAtLargerN) {
  const int server = 0;
  const auto stream = order_sensitive_stream(server, 16);
  std::vector<int> order(stream.size());
  std::iota(order.begin(), order.end(), 0);
  const std::uint64_t want = checksum_after(stream, order, server);

  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    // Fisher-Yates with the deterministic Rng, plus seeded duplicates.
    for (int i = static_cast<int>(order.size()) - 1; i > 0; --i)
      std::swap(order[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(rng.uniform_int(0, i))]);
    PacerAgentFleet fleet;
    PacerAgentFleet::DeliveryResult last;
    for (const int i : order) {
      last = fleet.deliver_delta(server, 1, i + 1, stream[i]);
      if (rng.uniform() < 0.3)
        fleet.deliver_delta(server, 1, i + 1, stream[i]);
    }
    EXPECT_EQ(fleet.checksum(server), want) << "trial " << trial;
    EXPECT_EQ(last.acked_through,
              static_cast<std::int64_t>(stream.size()));
  }
}

TEST(ControlChannel, AgentCountsGapsDuplicatesAndStaleEpochs) {
  PacerAgentFleet fleet;
  const auto stream = order_sensitive_stream(7, 3);

  auto r = fleet.deliver_delta(7, 1, 2, stream[1]);  // ahead of seq: gap
  EXPECT_EQ(r.gaps, 1);
  EXPECT_EQ(r.applied, 0);
  EXPECT_EQ(r.acked_through, 0);
  EXPECT_EQ(fleet.buffered(7), 1);

  r = fleet.deliver_delta(7, 1, 1, stream[0]);  // fills the gap, drains
  EXPECT_EQ(r.applied, 2);
  EXPECT_EQ(r.acked_through, 2);
  EXPECT_EQ(fleet.buffered(7), 0);

  r = fleet.deliver_delta(7, 1, 1, stream[0]);  // replayed duplicate
  EXPECT_EQ(r.duplicates, 1);
  EXPECT_EQ(r.applied, 0);

  // A new epoch restarts the sequence space; the old epoch goes silent.
  r = fleet.deliver_delta(7, 2, 1, stream[2]);
  EXPECT_EQ(r.applied, 1);
  EXPECT_EQ(r.epoch, 2u);
  r = fleet.deliver_delta(7, 1, 3, stream[2]);
  EXPECT_EQ(r.stale_epoch, 1);
  EXPECT_EQ(r.applied, 0);
}

TEST(ControlChannel, StaleRemovesAreCountedNotSwallowed) {
  // Table level: apply() reports how many removes missed.
  PacerConfigTable table;
  PacerConfigDelta bogus;
  bogus.server = 0;
  bogus.removes.emplace_back(42, 0);  // never upserted
  EXPECT_EQ(table.apply(bogus).stale_removes, 1);
  EXPECT_EQ(table.apply(PacerConfigDelta{}).stale_removes, 0);

  // Channel level: the miss surfaces on the shadow-apply path, where the
  // stream is reliable and in order — a genuine controller-side bug smell.
  EventQueue events;
  PacerAgentFleet fleet;
  ControlChannel channel(events, fleet, ChannelConfig{});
  channel.ship({bogus});
  events.run_all();
  EXPECT_EQ(channel.metrics().value("controller.channel.stale_removes"), 1);
}

TEST(ControlChannel, LossyChannelRetriesThenAntiEntropyRepairs) {
  EventQueue events;
  PacerAgentFleet fleet;
  ChannelConfig ccfg;
  ccfg.drop_rate = 0.5;
  ccfg.retry.max_attempts = 3;  // force some abandons: anti-entropy's job
  ccfg.seed = 17;
  ControlChannel channel(events, fleet, ccfg);
  SiloController ctl(small_dc());
  Rng rng(17);
  for (int i = 0; i < 12; ++i) ctl.admit(sample_request(rng));
  channel.ship(ctl.drain_config_deltas());
  events.run_all();

  const auto& m = channel.metrics();
  EXPECT_GT(m.value("controller.channel.dropped"), 0);
  EXPECT_GT(m.value("controller.channel.retries"), 0);

  // Loss window ends; bounded anti-entropy rounds must finish the job.
  channel.set_drop_rate(0);
  int rounds = 0;
  while (!channel.converged() && rounds < 8) {
    ++rounds;
    channel.anti_entropy_round();
    events.run_all();
  }
  EXPECT_LE(rounds, 8);
  expect_fleet_matches(ctl, fleet, channel);
  if (m.value("controller.channel.abandoned") > 0) {
    EXPECT_GT(m.value("controller.channel.desyncs_repaired"), 0);
  }
}

TEST(ControlChannel, RestartBumpsEpochAndResyncsRecoveredController) {
  EventQueue events;
  PacerAgentFleet fleet;
  ChannelConfig ccfg;
  ccfg.drop_rate = 0.3;  // the pre-crash stream is itself lossy
  ccfg.seed = 5;
  ControlChannel channel(events, fleet, ccfg);

  const auto cfg = small_dc();
  std::optional<SiloController> ctl;
  ctl.emplace(cfg);
  DeltaJournal journal;
  ctl->attach_journal(&journal, /*snapshot_every=*/6);
  Rng rng(23);
  std::vector<TenantHandle> live;
  for (int i = 0; i < 8; ++i)
    if (const auto h = ctl->admit(sample_request(rng))) live.push_back(*h);
  channel.ship(ctl->drain_config_deltas());
  events.run_all();

  // Crash mid-flight: journal recovery + channel epoch bump. The replay
  // backlog is dropped — the restart rebuilds the shadow from the
  // recovered controller, and anti-entropy reconciles the agents.
  journal = DeltaJournal::deserialize(journal.serialize());
  ctl.emplace(cfg);
  ctl->recover_from_journal(journal, /*snapshot_every=*/6);
  (void)ctl->drain_config_deltas();
  channel.set_drop_rate(0);
  channel.restart(*ctl);
  EXPECT_EQ(channel.epoch(), 2u);

  // Post-recovery ops flow through the new epoch like nothing happened.
  ctl->release(live.back());
  live.pop_back();
  if (const auto h = ctl->admit(sample_request(rng))) live.push_back(*h);
  channel.ship(ctl->drain_config_deltas());
  events.run_all();

  int rounds = 0;
  while (!channel.converged() && rounds < 8) {
    ++rounds;
    channel.anti_entropy_round();
    events.run_all();
  }
  expect_fleet_matches(*ctl, fleet, channel);
  EXPECT_EQ(channel.metrics().value("controller.channel.stale_removes"), 0);
}

TEST(ControlChannel, FaultPlanDrivesChannelLossWindows) {
  ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 2;
  cfg.topo.vm_slots_per_server = 1;
  ClusterSim sim(cfg);
  PacerAgentFleet fleet;
  ControlChannel channel(sim.events(), fleet, ChannelConfig{});

  FaultPlan plan;
  plan.channel_loss_window(1 * kMsec, 2 * kMsec, 0.4);
  FaultInjector chaos(sim, plan);
  chaos.attach_channel(&channel);
  chaos.arm();

  sim.run_until(1500 * kUsec);
  EXPECT_DOUBLE_EQ(channel.drop_rate(), 0.4);
  sim.run_until(3 * kMsec);
  EXPECT_DOUBLE_EQ(channel.drop_rate(), 0.0);
  EXPECT_EQ(chaos.executed(), 2);
}

// ---------------------------------------------------------------------------
// Control-plane chaos soak: data-plane faults (flaps, loss windows, server
// crashes) run against real traffic while the external control plane —
// journaled controller, lossy channel, agent fleet — takes a channel loss
// window and two controller crash/recover cycles mid-storm. At quiesce
// every agent matches the controller's shipped state and no pool packet
// leaked. CI rotates seeds via SOAK_SEED_BASE.

std::uint64_t soak_seed_base() {
  const char* env = std::getenv("SOAK_SEED_BASE");
  if (env && *env) return std::strtoull(env, nullptr, 10);
  return 20260808ull;  // fixed default: the tier-1 run stays deterministic
}

struct ControlSoakOutcome {
  bool converged = false;
  bool fleet_matches = true;
  std::int64_t pool_live = -1;
  std::int64_t completed = 0;
  int faults_executed = 0;
  std::uint64_t state_checksum = 0;  ///< per-server config checksums folded
  std::int64_t shipped = 0, applied = 0, dropped = 0, repaired = 0;
  std::int64_t replays = 0;
};

ControlSoakOutcome run_control_soak(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 2;
  cfg.topo.servers_per_rack = 2;
  cfg.topo.vm_slots_per_server = 2;
  cfg.topo.oversubscription = 1.0;
  cfg.scheme = Scheme::kSilo;
  cfg.tcp.min_rto = 2 * kMsec;
  cfg.tcp.max_consecutive_rtos = 3;
  ClusterSim sim(cfg);

  // Data-plane traffic so the pool-leak assertion has teeth.
  TenantRequest bulk_req;
  bulk_req.num_vms = 4;
  bulk_req.tenant_class = TenantClass::kBandwidthOnly;
  bulk_req.guarantee = {500 * kMbps, Bytes{15 * kKB}, TimeNs{0}, 1 * kGbps};
  const auto tb = sim.add_tenant(bulk_req);
  EXPECT_TRUE(tb.has_value());
  workload::RetryPolicy rp;
  rp.enabled = true;
  workload::BulkDriver bulk(sim, *tb, workload::all_to_all(bulk_req.num_vms),
                            64 * kKB, seed);
  bulk.set_retry(rp);
  bulk.start(25 * kMsec);

  // External control plane on the same event queue: journaled controller
  // over its own (bigger) datacenter model, lossy channel, agent fleet
  // counting applies through the hook.
  const auto ctl_topo = small_dc();
  std::optional<SiloController> ctl;
  ctl.emplace(ctl_topo);
  DeltaJournal journal;
  ctl->attach_journal(&journal, /*snapshot_every=*/8);
  PacerAgentFleet fleet;
  std::int64_t hook_applies = 0;
  fleet.set_apply_hook(
      [&](int, const PacerConfigDelta&) { ++hook_applies; });
  ChannelConfig ccfg;
  ccfg.anti_entropy_period = 2 * kMsec;
  ccfg.seed = seed + 1;
  ControlChannel channel(sim.events(), fleet, ccfg);

  // Data-plane chaos + a control-channel loss window from one plan.
  const TimeNs horizon = 40 * kMsec;
  FaultPlan plan = FaultPlan::random(sim.topo(), seed, horizon, /*events=*/3);
  plan.channel_loss_window(2 * kMsec, 22 * kMsec, 0.35);
  FaultInjector chaos(sim, plan);
  chaos.attach_channel(&channel);
  chaos.arm();

  // Seeded control-plane storm: one op every 400 us for 30 ms.
  Rng storm(seed * 0x9e3779b97f4a7c15ull + 7);
  std::vector<TenantHandle> live;
  const auto storm_op = [&] {
    const auto roll = storm.uniform_int(0, 9);
    if (roll < 5 || live.empty()) {
      if (const auto h = ctl->admit(sample_request(storm)))
        live.push_back(*h);
    } else if (roll < 8) {
      const auto i = static_cast<std::size_t>(
          storm.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      ctl->release(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else {
      const auto i = static_cast<std::size_t>(
          storm.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const int anchor = live[i].vm_to_server.front();
      if (anchor >= 0) {
        ctl->handle_server_failure(anchor);
        ctl->restore_server(anchor);
        for (auto& handle : live)
          handle.vm_to_server = ctl->tenant_placement(handle.id);
      }
    }
    channel.ship(ctl->drain_config_deltas());
  };
  for (int i = 0; i < 75; ++i)
    sim.events().at(TimeNs{400'000} * (i + 1), storm_op);

  // Two controller crash/recover cycles while the storm (and possibly the
  // channel loss window) is still running.
  const auto crash_and_recover = [&] {
    journal = DeltaJournal::deserialize(journal.serialize());
    ctl.emplace(ctl_topo);
    ctl->recover_from_journal(journal, /*snapshot_every=*/8);
    (void)ctl->drain_config_deltas();
    channel.restart(*ctl);
  };
  sim.events().at(9 * kMsec, crash_and_recover);
  sim.events().at(18 * kMsec, crash_and_recover);

  sim.run_until(1 * kSec);  // storm over by 30 ms; long convergence drain

  ControlSoakOutcome out;
  out.converged = channel.converged();
  out.state_checksum = 1469598103934665603ull;
  for (const int s : channel.shadow_servers()) {
    const auto want = pacer_config_checksum(ctl->server_config(s));
    if (fleet.checksum(s) != want || channel.shadow_checksum(s) != want ||
        fleet.buffered(s) != 0)
      out.fleet_matches = false;
    for (int b = 0; b < 64; b += 8) {
      out.state_checksum ^= (want >> b) & 0xff;
      out.state_checksum *= 1099511628211ull;
    }
  }
  out.pool_live = sim.events().pool().live();
  out.completed = sim.total_completed_messages();
  out.faults_executed = chaos.executed();
  const auto& m = channel.metrics();
  out.shipped = m.value("controller.channel.shipped");
  out.applied = m.value("controller.channel.applied");
  out.dropped = m.value("controller.channel.dropped");
  out.repaired = m.value("controller.channel.desyncs_repaired");
  out.replays = journal.metrics().value("controller.journal.replays");
  EXPECT_GT(hook_applies, 0);
  return out;
}

TEST(ControlPlaneSoak, RotatingSeedChaosConvergesAndReplaysExactly) {
  const std::uint64_t base = soak_seed_base();
  for (std::uint64_t seed = base; seed < base + 2; ++seed) {
    const auto a = run_control_soak(seed);
    EXPECT_TRUE(a.converged) << "seed " << seed;
    EXPECT_TRUE(a.fleet_matches) << "seed " << seed;
    EXPECT_EQ(a.pool_live, 0) << "seed " << seed;
    EXPECT_GT(a.completed, 0) << "seed " << seed;
    EXPECT_GT(a.faults_executed, 0) << "seed " << seed;
    EXPECT_GT(a.shipped, 0) << "seed " << seed;
    EXPECT_GT(a.dropped, 0) << "seed " << seed;
    EXPECT_EQ(a.replays, 2) << "seed " << seed;
    // Determinism: same seed, same chaos, same convergence trace.
    const auto b = run_control_soak(seed);
    EXPECT_EQ(a.state_checksum, b.state_checksum) << "seed " << seed;
    EXPECT_EQ(a.shipped, b.shipped) << "seed " << seed;
    EXPECT_EQ(a.applied, b.applied) << "seed " << seed;
    EXPECT_EQ(a.dropped, b.dropped) << "seed " << seed;
    EXPECT_EQ(a.repaired, b.repaired) << "seed " << seed;
  }
}

}  // namespace
}  // namespace silo::sim
