// Event-ordering determinism regression tests guarding the event engine.
//
// The simulator's contract is bit-exact reproducibility: the same seed and
// scenario must produce the identical packet trace on every run, whether
// driven by one run_until or many small steps. The golden checksums below
// were captured from the seed std::function/priority_queue engine and pin
// the trace across the timing-wheel engine swap and all future scheduler
// changes: same-time ties must keep breaking by insertion sequence.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "sim/cluster.h"
#include "sim/packet_pool.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

namespace silo {
namespace {

// FNV-1a over every delivered packet's observable fields.
struct TraceChecksum {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

struct ScenarioResult {
  std::uint64_t checksum = 0;
  std::uint64_t packets = 0;
  TimeNs end_time {};
};

// A scaled-down Fig-12-style scenario: one class-A OLDI tenant doing
// synchronized all-to-one bursts plus one class-B all-to-all bulk tenant,
// sharing a two-rack fabric. `step` > 0 drives the clock through run_until
// in fixed increments instead of one shot.
ScenarioResult run_scenario(sim::Scheme scheme, TimeNs step = TimeNs{0}) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 2;
  cfg.topo.servers_per_rack = 4;
  cfg.topo.vm_slots_per_server = 2;
  cfg.scheme = scheme;
  cfg.tcp.min_rto = 10 * kMsec;
  sim::ClusterSim cluster(cfg);

  TraceChecksum ck;
  std::uint64_t packets = 0;
  cluster.set_packet_tap([&](const sim::Packet& p) {
    ++packets;
    ck.mix(static_cast<std::uint64_t>(cluster.events().now()));
    ck.mix(static_cast<std::uint64_t>(p.flow_id));
    ck.mix(static_cast<std::uint64_t>(p.seq));
    ck.mix(static_cast<std::uint64_t>(p.ack_seq));
    ck.mix(static_cast<std::uint64_t>(p.payload));
    ck.mix((p.is_ack ? 1u : 0u) | (p.ecn_echo ? 2u : 0u) |
           (p.ecn_marked ? 4u : 0u));
  });

  TenantRequest a;
  a.num_vms = 6;
  a.tenant_class = TenantClass::kDelaySensitive;
  a.guarantee = {RateBps{0.3e9}, 15 * kKB, 1 * kMsec, 1 * kGbps};
  const auto ta = cluster.add_tenant(a);
  TenantRequest b;
  b.num_vms = 4;
  b.tenant_class = TenantClass::kBandwidthOnly;
  b.guarantee = {RateBps{1e9}, Bytes{1500}, TimeNs{0}, RateBps{1e9}};
  const auto tb = cluster.add_tenant(b);
  EXPECT_TRUE(ta.has_value());
  EXPECT_TRUE(tb.has_value());

  workload::BurstDriver::Config bc;
  bc.receiver = 0;
  bc.message_size = 15 * kKB;
  bc.epochs_per_sec = 2000;
  workload::BurstDriver burst(cluster, *ta, a.num_vms, bc, 42);
  workload::BulkDriver bulk(cluster, *tb, workload::all_to_all(b.num_vms),
                            64 * kKB);
  burst.start(30 * kMsec);
  bulk.start(30 * kMsec);

  const TimeNs horizon = 40 * kMsec;
  if (step > TimeNs{0}) {
    for (TimeNs t = step; t <= horizon; t += step) cluster.run_until(t);
    cluster.run_until(horizon);
  } else {
    cluster.run_until(horizon);
  }
  return {ck.h, packets, cluster.events().now()};
}

TEST(Determinism, IdenticalTraceAcrossRuns) {
  for (auto scheme : {sim::Scheme::kSilo, sim::Scheme::kTcp,
                      sim::Scheme::kDctcp, sim::Scheme::kPfabric}) {
    const auto first = run_scenario(scheme);
    const auto second = run_scenario(scheme);
    EXPECT_EQ(first.checksum, second.checksum) << sim::scheme_name(scheme);
    EXPECT_EQ(first.packets, second.packets) << sim::scheme_name(scheme);
    EXPECT_GT(first.packets, 1000u) << sim::scheme_name(scheme);
  }
}

TEST(Determinism, SteppedRunUntilMatchesSingleShot) {
  for (auto scheme : {sim::Scheme::kSilo, sim::Scheme::kPfabric}) {
    const auto whole = run_scenario(scheme);
    const auto stepped = run_scenario(scheme, 613 * kUsec);  // odd step size
    EXPECT_EQ(whole.checksum, stepped.checksum) << sim::scheme_name(scheme);
    EXPECT_EQ(whole.packets, stepped.packets) << sim::scheme_name(scheme);
  }
}

// Golden trace checksums captured from the seed engine (std::function
// closures over a binary heap). The timing-wheel engine must reproduce them
// exactly: any divergence means event ordering or packet handling changed.
TEST(Determinism, GoldenTraceChecksums) {
  EXPECT_EQ(run_scenario(sim::Scheme::kSilo).checksum,
            10889528649918140941ull);
  EXPECT_EQ(run_scenario(sim::Scheme::kTcp).checksum,
            12519951386387445179ull);
  EXPECT_EQ(run_scenario(sim::Scheme::kPfabric).checksum,
            2041424980266702288ull);
}

// The tx hot path must not heap-allocate in steady state: once the warmup
// phase has sized the packet arena, further traffic recycles handles and
// rides typed events. The pool capacity and the std::function event count
// are the two regression counters.
TEST(PacketPool, SteadyStateIsAllocationFree) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 2;
  cfg.topo.servers_per_rack = 4;
  cfg.topo.vm_slots_per_server = 2;
  cfg.scheme = sim::Scheme::kSilo;
  cfg.tcp.min_rto = 10 * kMsec;
  sim::ClusterSim cluster(cfg);

  TenantRequest b;
  b.num_vms = 4;
  b.tenant_class = TenantClass::kBandwidthOnly;
  b.guarantee = {RateBps{1e9}, Bytes{1500}, TimeNs{0}, RateBps{1e9}};
  const auto tb = cluster.add_tenant(b);
  ASSERT_TRUE(tb.has_value());
  workload::BulkDriver bulk(cluster, *tb, workload::all_to_all(b.num_vms),
                            64 * kKB);
  bulk.start(200 * kMsec);

  cluster.run_until(50 * kMsec);  // warmup: flows reach steady cwnd
  const auto& pool = cluster.events().pool();
  const std::size_t warm_capacity = pool.capacity();
  const std::int64_t warm_allocs = pool.total_allocs();
  const std::uint64_t warm_callbacks = cluster.events().callback_events();

  cluster.run_until(200 * kMsec);  // 3x more traffic than the warmup

  // Arena stopped growing: every post-warmup packet reused a freed slot.
  EXPECT_EQ(pool.capacity(), warm_capacity);
  EXPECT_GT(pool.total_allocs(), 2 * warm_allocs);  // traffic kept flowing
  // std::function events are message-granularity (driver completions), not
  // packet-granularity: orders of magnitude fewer than pool allocations.
  const std::uint64_t callbacks_grown =
      cluster.events().callback_events() - warm_callbacks;
  const auto packets_grown =
      static_cast<std::uint64_t>(pool.total_allocs() - warm_allocs);
  EXPECT_LT(callbacks_grown * 20, packets_grown);
  // Conservation: nothing leaked beyond what is still queued in flight.
  EXPECT_EQ(pool.total_allocs(), pool.total_frees() + pool.live());
  EXPECT_LE(pool.live(), static_cast<std::int64_t>(pool.capacity()));
}

// Same invariant with the observability layer fully enabled: the metrics
// registry (always wired), the packet-timeline side table, and a flight
// recorder capturing every event. All of it must ride the warm arena —
// recording is a POD store into a preallocated ring and the timeline only
// grows when the pool grows, so steady state stays allocation-free.
TEST(PacketPool, SteadyStateAllocationFreeWithObservability) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 2;
  cfg.topo.servers_per_rack = 4;
  cfg.topo.vm_slots_per_server = 2;
  cfg.scheme = sim::Scheme::kSilo;
  cfg.tcp.min_rto = 10 * kMsec;
  sim::ClusterSim cluster(cfg);
  auto& rec = cluster.enable_flight_recorder(4096);
  rec.enable_all();

  TenantRequest b;
  b.num_vms = 4;
  b.tenant_class = TenantClass::kBandwidthOnly;
  b.guarantee = {RateBps{1e9}, Bytes{1500}, TimeNs{0}, RateBps{1e9}};
  const auto tb = cluster.add_tenant(b);
  ASSERT_TRUE(tb.has_value());
  workload::BulkDriver bulk(cluster, *tb, workload::all_to_all(b.num_vms),
                            64 * kKB);
  bulk.start(200 * kMsec);

  cluster.run_until(50 * kMsec);
  const auto& pool = cluster.events().pool();
  const std::size_t warm_capacity = pool.capacity();
  const std::size_t warm_timeline = cluster.events().timeline().capacity();
  const std::int64_t warm_allocs = pool.total_allocs();
  const std::uint64_t warm_recorded = rec.total_recorded();

  cluster.run_until(200 * kMsec);

  // Neither the arena nor the attribution side table grew post-warmup.
  EXPECT_EQ(pool.capacity(), warm_capacity);
  EXPECT_EQ(cluster.events().timeline().capacity(), warm_timeline);
  EXPECT_GT(pool.total_allocs(), 2 * warm_allocs);
  // The recorder kept recording (ring overwrites, never grows).
  EXPECT_GT(rec.total_recorded(), warm_recorded);
  EXPECT_EQ(rec.capacity(), 4096u);
  EXPECT_EQ(rec.size(), 4096u);  // long past wraparound
  EXPECT_EQ(pool.total_allocs(), pool.total_frees() + pool.live());
}

TEST(PacketPool, DoubleFreeThrows) {
  sim::PacketPool pool;
  const auto h = pool.alloc();
  pool.free(h);
  EXPECT_THROW(pool.free(h), std::logic_error);
  EXPECT_THROW(pool.free(sim::kNullPacket), std::logic_error);
  const auto h2 = pool.alloc();
  // The freelist recycled the slot, but the generation tag advanced: the
  // stale handle can never alias the new occupant.
  EXPECT_EQ(sim::PacketPool::slot_of(h2), sim::PacketPool::slot_of(h));
  EXPECT_NE(sim::PacketPool::generation_of(h2),
            sim::PacketPool::generation_of(h));
  EXPECT_THROW(pool.free(h), std::logic_error);  // stale handle still dead
  pool.free(h2);
  EXPECT_EQ(pool.total_allocs(), pool.total_frees());
  EXPECT_EQ(pool.live(), 0);
}

}  // namespace
}  // namespace silo
