#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

namespace silo::workload {
namespace {

sim::ClusterConfig tiny() {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 4;
  cfg.topo.vm_slots_per_server = 4;
  cfg.topo.oversubscription = 1.0;
  cfg.scheme = sim::Scheme::kTcp;
  return cfg;
}

TEST(EtcDriver, IssuesAtConfiguredRate) {
  sim::ClusterSim sim(tiny());
  TenantRequest req;
  req.num_vms = 5;
  req.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, RateBps{0}};
  const auto t = sim.add_tenant(req);
  ASSERT_TRUE(t);
  EtcDriver::Config cfg;
  cfg.ops_per_sec = 5000;
  EtcDriver etc(sim, *t, 0, {1, 2, 3, 4}, cfg, 3);
  etc.start(500 * kMsec);
  sim.run_until(600 * kMsec);
  // Poisson process: expect ~2500 ops +- a few percent.
  EXPECT_NEAR(static_cast<double>(etc.issued_ops()), 2500.0, 200.0);
  EXPECT_EQ(etc.completed_ops(), etc.issued_ops());
}

TEST(EtcDriver, LatencyIncludesProcessingTime) {
  sim::ClusterSim sim(tiny());
  TenantRequest req;
  req.num_vms = 2;
  req.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, RateBps{0}};
  const auto t = sim.add_tenant(req);
  ASSERT_TRUE(t);
  EtcDriver::Config fast;
  fast.ops_per_sec = 2000;
  fast.server_processing_mean = 1 * kUsec;
  EtcDriver quick(sim, *t, 0, {1}, fast, 3);
  quick.start(200 * kMsec);
  sim.run_until(300 * kMsec);

  sim::ClusterSim sim2(tiny());
  const auto t2 = sim2.add_tenant(req);
  EtcDriver::Config slow = fast;
  slow.server_processing_mean = 200 * kUsec;
  EtcDriver laggy(sim2, *t2, 0, {1}, slow, 3);
  laggy.start(200 * kMsec);
  sim2.run_until(300 * kMsec);

  EXPECT_GT(laggy.latencies_us().mean(), quick.latencies_us().mean() + 100);
}

TEST(BurstDriver, IssuesPerEpochFanIn) {
  sim::ClusterSim sim(tiny());
  TenantRequest req;
  req.num_vms = 6;
  req.guarantee = {1 * kGbps, 15 * kKB, TimeNs{0}, 1 * kGbps};
  const auto t = sim.add_tenant(req);
  ASSERT_TRUE(t);
  BurstDriver::Config cfg;
  cfg.epochs_per_sec = 100;
  cfg.message_size = 10 * kKB;
  cfg.receiver = 5;
  BurstDriver bursts(sim, *t, 6, cfg, 9);
  bursts.start(500 * kMsec);
  sim.run_until(700 * kMsec);
  // Each epoch issues exactly n-1 = 5 messages.
  EXPECT_EQ(bursts.issued_messages() % 5, 0);
  EXPECT_NEAR(static_cast<double>(bursts.issued_messages()), 5 * 50.0, 75.0);
  EXPECT_EQ(bursts.completed_messages(), bursts.issued_messages());
  EXPECT_EQ(bursts.messages_with_rto(), 0);
}

TEST(BulkDriver, KeepsFlowsBacklogged) {
  sim::ClusterSim sim(tiny());
  TenantRequest req;
  req.num_vms = 2;
  req.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, RateBps{0}};
  const auto t = sim.add_tenant(req);
  ASSERT_TRUE(t);
  BulkDriver bulk(sim, *t, {{0, 1}}, Bytes{64 * kKB});
  bulk.start(100 * kMsec);
  sim.run_until(100 * kMsec);
  // Chunks completed back-to-back the whole time; chunk latency recorded.
  EXPECT_GT(bulk.chunk_latencies_us().count(), 100u);
  EXPECT_GT(bulk.goodput_bps() / 1e9, 1.0);  // unpaced TCP, 10G fabric
  EXPECT_EQ(bulk.chunk_size(), 64 * kKB);
}

TEST(PoissonDriver, RespectsStopTime) {
  sim::ClusterSim sim(tiny());
  TenantRequest req;
  req.num_vms = 2;
  req.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, RateBps{0}};
  const auto t = sim.add_tenant(req);
  ASSERT_TRUE(t);
  PoissonMessageDriver msgs(sim, *t, 0, 1, 1000.0, 2 * kKB, 4);
  msgs.start(100 * kMsec);
  sim.run_until(1 * kSec);
  const auto at_end = msgs.issued();
  sim.run_until(2 * kSec);
  EXPECT_EQ(msgs.issued(), at_end);  // nothing scheduled past the stop
  EXPECT_NEAR(static_cast<double>(at_end), 100.0, 35.0);
}

}  // namespace
}  // namespace silo::workload
