#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"

namespace silo {
namespace {

TEST(Units, TransmissionTimeRoundsUp) {
  // 1500 B at 10 Gbps = 1200 ns exactly.
  EXPECT_EQ(transmission_time(Bytes{1500}, 10 * kGbps), TimeNs{1200});
  // 1 B at 10 Gbps = 0.8 ns -> rounds up to 1.
  EXPECT_EQ(transmission_time(Bytes{1}, 10 * kGbps), TimeNs{1});
  EXPECT_EQ(transmission_time(Bytes{0}, 10 * kGbps), TimeNs{0});
  EXPECT_EQ(transmission_time(Bytes{1500}, RateBps{0}), TimeNs{0});
}

TEST(Units, PaperVoidPacketSpacing) {
  // The paper: an 84-byte void packet at 10 Gbps gives ~68 ns granularity.
  EXPECT_NEAR(static_cast<double>(transmission_time(kMinWireFrame, 10 * kGbps)),
              67.2, 1.0);
}

TEST(Units, BytesInInterval) {
  EXPECT_EQ(bytes_in(10 * kGbps, TimeNs{1200}), Bytes{1500});
  EXPECT_EQ(bytes_in(1 * kGbps, TimeNs{8}), Bytes{1});
  EXPECT_EQ(bytes_in(1 * kGbps, TimeNs{0}), Bytes{0});
  EXPECT_EQ(bytes_in(RateBps{-1.0}, TimeNs{100}), Bytes{0});
}

TEST(Units, NineGbpsInterPacketGap) {
  // §1: 9 Gbps limit with 1.5 KB packets on a 10 Gbps link needs 133 ns
  // of inter-packet spacing.
  const TimeNs at_9g = transmission_time(Bytes{1500}, 9 * kGbps);
  const TimeNs at_10g = transmission_time(Bytes{1500}, 10 * kGbps);
  EXPECT_NEAR(static_cast<double>(at_9g - at_10g), 133.0, 2.0);
}

TEST(Stats, BasicMoments) {
  Stats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, Percentiles) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.05);
}

TEST(Stats, PercentileOfEmptyIsNaN) {
  // Empty stats are a normal outcome of faulted runs; report paths render
  // them as "-" instead of crashing.
  Stats s;
  EXPECT_TRUE(std::isnan(s.percentile(50)));
  EXPECT_TRUE(std::isnan(s.median()));
  EXPECT_THROW([] { Stats t; t.add(1); t.percentile(101); }(),
               std::invalid_argument);
}

TEST(TextTable, FormatsNaNAsDash) {
  EXPECT_EQ(TextTable::fmt(std::numeric_limits<double>::quiet_NaN()), "-");
  EXPECT_EQ(TextTable::fmt(1.5), "1.50");
}

TEST(Stats, FractionAbove) {
  Stats s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.fraction_above(10.0), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_above(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_above(0.0), 1.0);
}

TEST(Stats, AddAfterQueryStaysCorrect) {
  Stats s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.median(), 10);
  s.add(0);
  s.add(20);
  EXPECT_DOUBLE_EQ(s.median(), 10);
  EXPECT_DOUBLE_EQ(s.min(), 0);
}

TEST(Stats, MergeCombinesSamples) {
  Stats a, b;
  a.add(1);
  a.add(2);
  b.add(3);
  b.add(4);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
}

TEST(Stats, CdfMonotone) {
  Stats s;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) s.add(rng.uniform());
  const auto cdf = s.cdf(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
}

TEST(Stats, EmptySeriesEdgeCases) {
  Stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.percentile(50)));
  EXPECT_DOUBLE_EQ(s.fraction_above(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_TRUE(s.cdf(10).empty());
}

TEST(Stats, SingleSampleEdgeCases) {
  Stats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  // fraction_above is strictly-greater.
  EXPECT_DOUBLE_EQ(s.fraction_above(4.9), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_above(5.0), 0.0);
  // A single-sample CDF is flat: every point reports the sample.
  const auto cdf = s.cdf(4);
  ASSERT_EQ(cdf.size(), 4u);
  for (const auto& [frac, value] : cdf) {
    EXPECT_GT(frac, 0.0);
    EXPECT_LE(frac, 1.0);
    EXPECT_DOUBLE_EQ(value, 5.0);
  }
}

TEST(Stats, CdfIsCeilOrderStatistic) {
  // The value at cumulative fraction f must be the ceil(f*n)-th sample.
  // The old floor(f*n) index reported every point one sample high: at
  // f=0.25 over {10,20,30,40} it returned 20 instead of 10.
  Stats s;
  for (double v : {40.0, 10.0, 30.0, 20.0}) s.add(v);
  const auto cdf = s.cdf(4);
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0].second, 10.0);  // ceil(0.25*4) = 1st sample
  EXPECT_DOUBLE_EQ(cdf[1].second, 20.0);
  EXPECT_DOUBLE_EQ(cdf[2].second, 30.0);
  EXPECT_DOUBLE_EQ(cdf[3].second, 40.0);
  // Fractions that don't land on a sample boundary round *up*: over n=4
  // samples, f=0.5 needs the 2nd sample but f=0.34 already the 2nd too.
  const auto coarse = s.cdf(3);
  EXPECT_DOUBLE_EQ(coarse[0].second, 20.0);  // ceil(4/3) = 2nd sample
  EXPECT_DOUBLE_EQ(coarse[1].second, 30.0);  // ceil(8/3) = 3rd
  EXPECT_DOUBLE_EQ(coarse[2].second, 40.0);
}

TEST(Stats, CdfAgreesWithPercentile) {
  // Where both definitions pick an exact order statistic they must agree:
  // the final point is the max, and for odd n the midpoint is the median.
  Stats s;
  for (double v : {5.0, 1.0, 4.0, 2.0, 3.0}) s.add(v);
  const auto cdf = s.cdf(5);
  ASSERT_EQ(cdf.size(), 5u);
  EXPECT_DOUBLE_EQ(cdf.back().second, s.percentile(100));
  EXPECT_DOUBLE_EQ(cdf[2].second, s.percentile(50));  // f=0.6 -> 3rd of 5
  EXPECT_DOUBLE_EQ(cdf[0].second, s.percentile(0));   // f=0.2 -> 1st of 5
}

TEST(TextTable, AddRowRejectsColumnMismatch) {
  TextTable t({"a", "b", "c"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3", "4"}), std::invalid_argument);
  t.add_row({"1", "2", "3"});
  EXPECT_NE(t.to_string().find("3"), std::string::npos);
}

TEST(Stats, CdfZeroPointsIsEmpty) {
  Stats s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_TRUE(s.cdf(0).empty());
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ExponentialMean) {
  Rng rng(1);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, GeneralizedParetoMean) {
  // Mean of GP(mu=0, sigma, xi) is sigma / (1 - xi) for xi < 1.
  Rng rng(2);
  const double sigma = 214.48, xi = 0.348;
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += rng.generalized_pareto(0, sigma, xi);
  EXPECT_NEAR(sum / n, sigma / (1 - xi), 10.0);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
  }
}

TEST(TextTable, FormatsRows) {
  TextTable t({"a", "bb"});
  t.add_row({"1", "2"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(TextTable::fmt(1.2345, 2), "1.23");
}

}  // namespace
}  // namespace silo
