// Observability layer: metrics registry semantics, flight-recorder ring
// behaviour, run-manifest schema (golden file), and the exact-sum
// latency-attribution invariant on a live cluster.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "sim/cluster.h"
#include "workload/drivers.h"

namespace silo {
namespace {

using obs::FlightEvent;
using obs::FlightEventType;
using obs::FlightRecorder;
using obs::MetricSample;
using obs::MetricsRegistry;
using obs::MetricType;

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricsRegistry reg;
  auto c = reg.counter("test.count", "packets", "test");
  auto g = reg.gauge("test.depth", "bytes", "test");
  auto h = reg.histogram("test.lat", "us", "test", {1.0, 10.0});

  c.inc();
  c.inc(4);
  g.set(7);
  g.set_max(3);   // lower: no effect
  g.set_max(11);  // higher: wins
  h.record(0.5);
  h.record(5.0);
  h.record(100.0);

  EXPECT_EQ(reg.size(), 3u);
  EXPECT_TRUE(reg.has("test.count"));
  EXPECT_FALSE(reg.has("test.missing"));
  EXPECT_EQ(reg.value("test.count"), 5);
  EXPECT_EQ(reg.value("test.depth"), 11);

  const auto& hs = h.state();
  ASSERT_EQ(hs.counts.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(hs.counts[0], 1);
  EXPECT_EQ(hs.counts[1], 1);
  EXPECT_EQ(hs.counts[2], 1);
  EXPECT_EQ(hs.count, 3);
  EXPECT_DOUBLE_EQ(hs.sum, 105.5);
}

TEST(Metrics, DefaultHandlesAreSinks) {
  // Components update metrics unconditionally; unwired handles must
  // absorb the updates without crashing or touching any registry.
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) {
    c.inc();
    g.set_max(i);
    h.record(static_cast<double>(i));
  }
  MetricsRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Metrics, DuplicateNameThrows) {
  MetricsRegistry reg;
  (void)reg.counter("dup", "packets", "test");
  EXPECT_THROW((void)reg.counter("dup", "packets", "test"),
               std::invalid_argument);
  EXPECT_THROW((void)reg.gauge("dup", "bytes", "test"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("dup", "us", "test", {1.0}),
               std::invalid_argument);
}

TEST(Metrics, ValueThrowsOnUnknownNameAndHistogram) {
  MetricsRegistry reg;
  (void)reg.histogram("hist", "us", "test", {1.0});
  EXPECT_THROW((void)reg.value("nope"), std::invalid_argument);
  EXPECT_THROW((void)reg.value("hist"), std::invalid_argument);
}

TEST(Metrics, SnapshotOutlivesRegistry) {
  std::vector<MetricSample> snap;
  {
    MetricsRegistry reg;
    auto c = reg.counter("c", "packets", "test");
    auto h = reg.histogram("h", "us", "test", {2.0});
    c.inc(42);
    h.record(1.0);
    h.record(9.0);
    snap = reg.snapshot();
  }  // registry destroyed — the snapshot must own everything it reports
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "c");
  EXPECT_EQ(snap[0].type, MetricType::kCounter);
  EXPECT_EQ(snap[0].value, 42);
  EXPECT_EQ(snap[1].type, MetricType::kHistogram);
  ASSERT_TRUE(snap[1].hist.has_value());
  EXPECT_EQ(snap[1].hist->count, 2);
  ASSERT_EQ(snap[1].hist->counts.size(), 2u);
  EXPECT_EQ(snap[1].hist->counts[0], 1);
  EXPECT_EQ(snap[1].hist->counts[1], 1);
  EXPECT_DOUBLE_EQ(snap[1].hist->sum, 10.0);
}

// --------------------------------------------------------- flight recorder

FlightEvent make_event(TimeNs at, std::int32_t flow, std::int32_t location) {
  FlightEvent ev;
  ev.at = at;
  ev.packet_id = static_cast<std::uint64_t>(at);
  ev.flow_id = flow;
  ev.location = location;
  ev.bytes = 1500;
  ev.type = FlightEventType::kEnqueued;
  return ev;
}

TEST(FlightRecorder, CapacityZeroThrows) {
  EXPECT_THROW(FlightRecorder r(0), std::invalid_argument);
}

TEST(FlightRecorder, RingWrapsAndKeepsNewestWindow) {
  FlightRecorder rec(4);
  rec.enable_all();
  for (int i = 0; i < 10; ++i) rec.record(make_event(TimeNs{i}, 0, 0));

  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.overwritten(), 6u);

  const auto events = rec.in_order();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[static_cast<std::size_t>(i)].at, TimeNs{6 + i});
}

TEST(FlightRecorder, BeforeWrapSizeTracksRecorded) {
  FlightRecorder rec(8);
  rec.enable_all();
  for (int i = 0; i < 3; ++i) rec.record(make_event(TimeNs{i}, 0, 0));
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.overwritten(), 0u);
  const auto events = rec.in_order();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().at, TimeNs{0});
  EXPECT_EQ(events.back().at, TimeNs{2});
}

TEST(FlightRecorder, TenantFilterResolvesViaFlowTable) {
  FlightRecorder rec(16);
  const std::vector<int> flow_tenant{7, 8, 7};  // flow -> tenant
  rec.set_flow_tenants(&flow_tenant);
  rec.enable_tenant(7);

  rec.record(make_event(TimeNs{1}, 0, 0));  // tenant 7: kept
  rec.record(make_event(TimeNs{2}, 1, 0));  // tenant 8: filtered
  rec.record(make_event(TimeNs{3}, 2, 0));  // tenant 7: kept
  rec.record(make_event(TimeNs{4}, -1, 0)); // unresolvable: filtered

  const auto events = rec.in_order();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tenant, 7);
  EXPECT_EQ(events[1].tenant, 7);
  EXPECT_EQ(events[1].at, TimeNs{3});
}

TEST(FlightRecorder, LocationFilterMatchesHostEncoding) {
  FlightRecorder rec(16);
  rec.enable_port(obs::host_location(2));  // server 2's NIC -> -3

  rec.record(make_event(TimeNs{1}, -1, obs::host_location(2)));  // kept
  rec.record(make_event(TimeNs{2}, -1, obs::host_location(0)));  // filtered
  rec.record(make_event(TimeNs{3}, -1, 5));                      // fabric: filtered

  const auto events = rec.in_order();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].location, -3);
}

TEST(FlightRecorder, DumpsAreWellFormed) {
  FlightRecorder rec(4);
  rec.enable_all();
  for (int i = 0; i < 6; ++i) rec.record(make_event(TimeNs{i}, 0, i % 2));

  std::ostringstream jsonl;
  rec.dump_jsonl(jsonl);
  int lines = 0;
  std::istringstream in(jsonl.str());
  for (std::string line; std::getline(in, line); ++lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":\"enqueued\""), std::string::npos);
  }
  EXPECT_EQ(lines, 4);  // ring holds the newest window only

  std::ostringstream trace;
  rec.dump_chrome_trace(trace);
  const std::string t = trace.str();
  EXPECT_EQ(t.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(t.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(t.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
}

// ---------------------------------------------------------------- manifest

TEST(Manifest, GoldenSchemaV1) {
  obs::RunManifest m;
  m.bench = "golden";
  m.seed = 7;
  m.git = "TEST";  // override the baked-in git describe for determinism
  m.topology = {{"servers", 2}, {"vm_slots_per_server", 1}};
  m.params = {{"note", "fixed"}};

  std::vector<MetricSample> metrics(3);
  metrics[0].name = "a.count";
  metrics[0].type = MetricType::kCounter;
  metrics[0].unit = "packets";
  metrics[0].owner = "test";
  metrics[0].value = 3;
  metrics[1].name = "b.depth";
  metrics[1].type = MetricType::kGauge;
  metrics[1].unit = "bytes";
  metrics[1].owner = "test";
  metrics[1].value = 9;
  metrics[2].name = "c.lat";
  metrics[2].type = MetricType::kHistogram;
  metrics[2].unit = "us";
  metrics[2].owner = "test";
  metrics[2].hist = obs::HistogramState{{1.0, 10.0}, {1, 0, 2}, 3, 25.5};

  std::ifstream golden(std::string(SILO_TESTS_DIR) +
                       "/golden/manifest_v1.json");
  ASSERT_TRUE(golden.is_open()) << "golden file missing";
  std::ostringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(obs::manifest_json(m, metrics), want.str());
}

TEST(Manifest, EscapesStringsAndHandlesEmptyMetrics) {
  obs::RunManifest m;
  m.bench = "quote\"and\\slash";
  m.git = "TEST";
  const auto json = obs::manifest_json(m, std::vector<MetricSample>{});
  EXPECT_NE(json.find("quote\\\"and\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": []"), std::string::npos);
}

// ------------------------------------------------ attribution on a cluster

// The attribution contract: for every delivered message the breakdown
// components partition the observed latency exactly (integer ns). Run a
// real cluster per scheme and assert the driver-observed worst error.
TEST(Breakdown, ComponentsSumExactlyToLatency) {
  for (const auto scheme : {sim::Scheme::kSilo, sim::Scheme::kTcp}) {
    sim::ClusterConfig cfg;
    cfg.topo.pods = 1;
    cfg.topo.racks_per_pod = 1;
    cfg.topo.servers_per_rack = 4;
    cfg.topo.vm_slots_per_server = 2;
    cfg.scheme = scheme;
    sim::ClusterSim cluster(cfg);

    TenantRequest req;
    req.num_vms = 4;
    req.tenant_class = TenantClass::kDelaySensitive;
    req.guarantee = {300 * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
    const auto tenant = cluster.add_tenant(req);
    ASSERT_TRUE(tenant.has_value());

    workload::PoissonMessageDriver drv(cluster, *tenant, 0, 3, 2000.0,
                                       15 * kKB, 11);
    drv.start(50 * kMsec);
    cluster.run_until(80 * kMsec);

    const auto& agg = drv.breakdown();
    EXPECT_GT(agg.messages, 0) << sim::scheme_name(scheme);
    EXPECT_LE(agg.max_sum_error_ns, TimeNs{1}) << sim::scheme_name(scheme);
    // Every component series sees one sample per delivered message.
    EXPECT_EQ(static_cast<std::int64_t>(agg.queueing_us.count()),
              agg.messages);
    // Serialization is never zero for a 15 KB message on finite links.
    EXPECT_GT(agg.serialization_us.mean(), 0.0);
  }
}

TEST(Breakdown, ClusterRecorderCapturesDeliveries) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 4;
  cfg.topo.vm_slots_per_server = 2;
  sim::ClusterSim cluster(cfg);
  auto& rec = cluster.enable_flight_recorder(512);

  TenantRequest req;
  req.num_vms = 2;
  req.tenant_class = TenantClass::kDelaySensitive;
  req.guarantee = {300 * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  const auto tenant = cluster.add_tenant(req);
  ASSERT_TRUE(tenant.has_value());
  rec.enable_tenant(*tenant);

  bool delivered = false;
  cluster.send_message(*tenant, 0, 1, 15 * kKB,
                       [&](const sim::ClusterSim::MessageResult& r) {
                         delivered = !r.aborted;
                       });
  cluster.run_until(20 * kMsec);
  ASSERT_TRUE(delivered);

  EXPECT_GT(rec.total_recorded(), 0u);
  bool saw_delivered = false;
  for (const auto& ev : rec.in_order()) {
    EXPECT_EQ(ev.tenant, *tenant);  // tenant filter resolved every event
    if (ev.type == FlightEventType::kDelivered && !ev.is_ack)
      saw_delivered = true;
  }
  EXPECT_TRUE(saw_delivered);
}

}  // namespace
}  // namespace silo
