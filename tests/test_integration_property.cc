// End-to-end property tests of the system's central promise: for ANY
// workload a Silo placement admitted, worst-case bursts cannot overflow
// any switch buffer — zero fabric drops, ever. The queue-bound constraint
// at admission plus pacer conformance at runtime must compose; these
// sweeps drive randomized tenants and traffic against that invariant.
#include <gtest/gtest.h>

#include <memory>

#include "sim/cluster.h"
#include "sim/trace.h"
#include "util/rng.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

namespace silo::sim {
namespace {

struct SweepCase {
  std::uint64_t seed;
  int pods, racks, servers, slots;
  double oversub;
};

class NoOverflowSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(NoOverflowSweep, SiloAdmittedTrafficNeverDropsInFabric) {
  const auto param = GetParam();
  Rng rng(param.seed);

  ClusterConfig cfg;
  cfg.topo.pods = param.pods;
  cfg.topo.racks_per_pod = param.racks;
  cfg.topo.servers_per_rack = param.servers;
  cfg.topo.vm_slots_per_server = param.slots;
  cfg.topo.oversubscription = param.oversub;
  cfg.scheme = Scheme::kSilo;
  ClusterSim sim(cfg);

  // Fill ~85% of slots with randomized tenants: a mix of bursty
  // delay-sensitive and bulk bandwidth-only ones.
  struct Running {
    int id;
    int vms;
    bool bursty;
    SiloGuarantee g;
    std::unique_ptr<workload::BurstDriver> bursts;
    std::unique_ptr<workload::BulkDriver> bulk;
  };
  std::vector<Running> tenants;
  const int total_slots = sim.topo().total_vm_slots();
  int placed = 0;
  int attempts = 0;
  while (placed < 85 * total_slots / 100 && attempts < 64) {
    ++attempts;
    TenantRequest req;
    req.num_vms = 3 + static_cast<int>(rng.uniform_int(0, 9));
    const bool bursty = rng.uniform() < 0.5;
    if (bursty) {
      req.tenant_class = TenantClass::kDelaySensitive;
      req.guarantee = {RateBps{rng.uniform(0.1e9, 0.5e9)}, 15 * kKB, 2 * kMsec,
                       1 * kGbps};
    } else {
      req.tenant_class = TenantClass::kBandwidthOnly;
      const double bw = rng.uniform(0.3e9, 2e9);
      req.guarantee = {RateBps{bw}, Bytes{1500}, TimeNs{0}, RateBps{bw}};
    }
    const auto t = sim.add_tenant(req);
    if (!t) continue;
    placed += req.num_vms;
    tenants.push_back({*t, req.num_vms, bursty, req.guarantee, nullptr,
                       nullptr});
  }
  ASSERT_GT(tenants.size(), 1u);

  // Drive everything hard: bulk tenants backlogged, bursty tenants at
  // ~half their hose with synchronized all-to-one bursts.
  const TimeNs duration = 150 * kMsec;
  std::uint64_t seed = param.seed * 131;
  for (auto& t : tenants) {
    if (t.bursty) {
      workload::BurstDriver::Config bc;
      bc.receiver = t.vms - 1;
      bc.message_size = 15 * kKB;
      bc.epochs_per_sec =
          0.5 * t.g.bandwidth.bps() / (8.0 * (t.vms - 1) * 15000.0);
      t.bursts = std::make_unique<workload::BurstDriver>(sim, t.id, t.vms,
                                                         bc, ++seed);
      t.bursts->start(duration);
    } else {
      t.bulk = std::make_unique<workload::BulkDriver>(
          sim, t.id, workload::all_to_all(t.vms), Bytes{128 * kKB});
      t.bulk->start(duration);
    }
  }

  FabricTracer tracer(sim, 100 * kUsec);
  tracer.start(duration);
  sim.run_until(duration + 50 * kMsec);

  // The invariant: the fabric never dropped a packet, and no sampled
  // queue ever exceeded its buffer.
  EXPECT_EQ(sim.fabric().total_drops(), 0)
      << "Silo-admitted workload overflowed a switch buffer";
  EXPECT_LE(tracer.max_queued_anywhere(), cfg.topo.port_buffer);

  // And the workload was real: traffic actually flowed.
  std::int64_t moved = 0;
  for (auto& t : tenants) {
    if (t.bulk) moved += static_cast<std::int64_t>(t.bulk->goodput_bps());
    if (t.bursts) moved += t.bursts->completed_messages();
  }
  EXPECT_GT(moved, 0);
}

INSTANTIATE_TEST_SUITE_P(
    RandomClusters, NoOverflowSweep,
    ::testing::Values(SweepCase{1, 1, 1, 5, 4, 1.0},
                      SweepCase{2, 1, 2, 4, 4, 2.0},
                      SweepCase{3, 2, 2, 4, 2, 2.5},
                      SweepCase{4, 1, 1, 8, 2, 1.0},
                      SweepCase{5, 2, 2, 3, 4, 5.0}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// The same fabric under plain TCP does drop under this pressure — the
// contrast that makes the invariant above meaningful.
TEST(NoOverflowContrast, TcpDropsUnderTheSamePressure) {
  ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 5;
  cfg.topo.vm_slots_per_server = 4;
  cfg.topo.oversubscription = 1.0;
  cfg.scheme = Scheme::kTcp;
  ClusterSim sim(cfg);
  TenantRequest bulk;
  bulk.num_vms = 12;
  bulk.guarantee = {2 * kGbps, Bytes{1500}, TimeNs{0}, RateBps{0}};
  TenantRequest oldi;
  oldi.num_vms = 8;
  oldi.tenant_class = TenantClass::kDelaySensitive;
  oldi.guarantee = {0.25 * kGbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  const auto tb = sim.add_tenant(bulk);
  const auto ta = sim.add_tenant(oldi);
  ASSERT_TRUE(tb && ta);
  workload::BulkDriver drv(sim, *tb, workload::all_to_all(12),
                           Bytes{256 * kKB});
  workload::BurstDriver::Config bc;
  bc.receiver = 7;
  bc.message_size = 15 * kKB;
  bc.epochs_per_sec = 200;
  workload::BurstDriver bursts(sim, *ta, 8, bc, 77);
  drv.start(150 * kMsec);
  bursts.start(150 * kMsec);
  sim.run_until(200 * kMsec);
  EXPECT_GT(sim.fabric().total_drops(), 0);
}

}  // namespace
}  // namespace silo::sim
