#include <gtest/gtest.h>

#include <map>

#include "core/controller.h"
#include "util/rng.h"

namespace silo {
namespace {

topology::TopologyConfig small_dc() {
  topology::TopologyConfig cfg;
  cfg.pods = 2;
  cfg.racks_per_pod = 2;
  cfg.servers_per_rack = 4;
  cfg.vm_slots_per_server = 4;
  return cfg;
}

TenantRequest tenant(int vms, RateBps bw = 500 * kMbps) {
  TenantRequest r;
  r.num_vms = vms;
  r.guarantee = {bw, 15 * kKB, 2 * kMsec, 1 * kGbps};
  r.tenant_class = TenantClass::kDelaySensitive;
  return r;
}

TEST(Controller, AdmitReleaseLifecycle) {
  SiloController ctl(small_dc());
  const auto before = ctl.stats();
  EXPECT_EQ(before.free_slots, before.total_slots);

  const auto h = ctl.admit(tenant(8));
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->vm_to_server.size(), 8u);
  EXPECT_EQ(ctl.stats().free_slots, before.total_slots - 8);
  EXPECT_EQ(ctl.stats().admitted_tenants, 1);

  ctl.release(*h);
  const auto after = ctl.stats();
  EXPECT_EQ(after.free_slots, after.total_slots);
  EXPECT_EQ(after.admitted_tenants, 0);
  EXPECT_DOUBLE_EQ(after.max_port_reservation, 0.0);
}

TEST(Controller, ServerConfigListsHostedVmsWithPeers) {
  SiloController ctl(small_dc());
  const auto h = ctl.admit(tenant(6));
  ASSERT_TRUE(h);
  int records_total = 0;
  for (int s = 0; s < ctl.topo().num_servers(); ++s) {
    const auto cfg = ctl.server_config(s);
    records_total += static_cast<int>(cfg.size());
    for (const auto& rec : cfg) {
      EXPECT_EQ(rec.server, s);
      EXPECT_EQ(rec.tenant, h->id);
      EXPECT_EQ(rec.peers.size(), 5u);  // everyone else in the tenant
      EXPECT_EQ(h->vm_to_server[static_cast<std::size_t>(rec.vm_index)], s);
      EXPECT_DOUBLE_EQ(rec.guarantee.bandwidth.bps(), 500e6);
      for (const auto& [peer_vm, peer_server] : rec.peers) {
        EXPECT_NE(peer_vm, rec.vm_index);
        EXPECT_EQ(h->vm_to_server[static_cast<std::size_t>(peer_vm)],
                  peer_server);
      }
    }
  }
  EXPECT_EQ(records_total, 6);  // one record per VM, across all servers
}

TEST(Controller, BestEffortVmsAreNotPaced) {
  SiloController ctl(small_dc());
  TenantRequest be = tenant(4);
  be.tenant_class = TenantClass::kBestEffort;
  const auto h = ctl.admit(be);
  ASSERT_TRUE(h);
  for (int s = 0; s < ctl.topo().num_servers(); ++s)
    EXPECT_TRUE(ctl.server_config(s).empty());
}

TEST(Controller, StatsReflectHeadroom) {
  SiloController ctl(small_dc());
  for (int i = 0; i < 6; ++i) ctl.admit(tenant(8, 1 * kGbps));
  const auto s = ctl.stats();
  EXPECT_GT(s.max_port_reservation, 0.0);
  EXPECT_LE(s.max_port_reservation, 1.0 + 1e-9);
  EXPECT_GT(s.max_queue_headroom_used, 0.0);
  EXPECT_LE(s.max_queue_headroom_used, 1.0 + 1e-9);  // Silo's invariant
}

TEST(Controller, RejectsBeyondCapacity) {
  SiloController ctl(small_dc());
  int admitted = 0;
  for (int i = 0; i < 30; ++i)
    if (ctl.admit(tenant(8, 2 * kGbps))) ++admitted;
  EXPECT_LT(admitted, 30);
  // Whatever was admitted keeps every port's queue bound within capacity.
  EXPECT_LE(ctl.stats().max_queue_headroom_used, 1.0 + 1e-9);
}

TEST(Controller, LatencyBoundHelperMatchesCore) {
  SiloGuarantee g{500 * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  EXPECT_EQ(SiloController::message_latency_bound(g, 10 * kKB),
            max_message_latency(g, 10 * kKB));
}

TEST(Controller, ReadmitAfterReleaseRestoresStats) {
  // admit -> release -> re-admit must be a no-op on the datacenter model:
  // releasing B returns the stats to the A-only snapshot, and re-admitting
  // the identical request reproduces the combined snapshot exactly.
  SiloController ctl(small_dc());
  const auto a = ctl.admit(tenant(8));
  ASSERT_TRUE(a);
  const auto only_a = ctl.stats();

  const auto b = ctl.admit(tenant(6, 800 * kMbps));
  ASSERT_TRUE(b);
  const auto with_b = ctl.stats();
  ASSERT_NE(with_b.free_slots, only_a.free_slots);

  ctl.release(*b);
  const auto released = ctl.stats();
  EXPECT_EQ(released.free_slots, only_a.free_slots);
  EXPECT_EQ(released.admitted_tenants, only_a.admitted_tenants);
  EXPECT_NEAR(released.max_port_reservation, only_a.max_port_reservation,
              1e-12);
  EXPECT_NEAR(released.max_queue_headroom_used, only_a.max_queue_headroom_used,
              1e-12);

  const auto b2 = ctl.admit(tenant(6, 800 * kMbps));
  ASSERT_TRUE(b2);
  EXPECT_EQ(b2->vm_to_server, b->vm_to_server);  // same greedy decision
  const auto readmitted = ctl.stats();
  EXPECT_EQ(readmitted.free_slots, with_b.free_slots);
  EXPECT_EQ(readmitted.admitted_tenants, with_b.admitted_tenants);
  EXPECT_DOUBLE_EQ(readmitted.max_port_reservation,
                   with_b.max_port_reservation);
  EXPECT_DOUBLE_EQ(readmitted.max_queue_headroom_used,
                   with_b.max_queue_headroom_used);
}

TEST(Controller, ServerFailureReplacesWithinGuarantees) {
  SiloController ctl(small_dc());
  const auto h = ctl.admit(tenant(6));
  ASSERT_TRUE(h);
  const int victim = h->vm_to_server.front();

  const auto report = ctl.handle_server_failure(victim);
  ASSERT_EQ(report.affected.size(), 1u);
  EXPECT_EQ(report.affected[0], h->id);
  ASSERT_EQ(report.replaced.size(), 1u);
  EXPECT_TRUE(report.degraded.empty());
  EXPECT_TRUE(report.unplaced.empty());
  // Re-placement re-ran full admission: fresh pacer configs were emitted,
  // the tenant keeps its guarantees, and no VM sits on dead hardware.
  EXPECT_EQ(report.refreshed.size(), 6u);
  EXPECT_EQ(ctl.tenant_status(h->id), TenantStatus::kGuaranteed);
  for (int s : ctl.tenant_placement(h->id)) EXPECT_NE(s, victim);
  const auto stats = ctl.stats();
  EXPECT_EQ(stats.degraded_tenants, 0);
  EXPECT_EQ(stats.unplaced_tenants, 0);
  // The dead server's slots (used and free alike) left the pool.
  EXPECT_EQ(stats.free_slots, stats.total_slots - 4 - 6);
}

TEST(Controller, LinkFailureDegradesThenRestorePromotes) {
  // Two one-slot servers: the tenant must span both, so its traffic
  // depends on the ToR egress toward server 1. When that link dies the
  // guarantees are infeasible (any spread placement reserves capacity on
  // the dead port; colocation has no slots) and the controller must fall
  // back to explicit best-effort degraded mode, then promote the tenant
  // back once the link returns.
  topology::TopologyConfig cfg;
  cfg.pods = 1;
  cfg.racks_per_pod = 1;
  cfg.servers_per_rack = 2;
  cfg.vm_slots_per_server = 1;
  SiloController ctl(cfg);
  const auto h = ctl.admit(tenant(2));
  ASSERT_TRUE(h);

  const auto dead = ctl.topo().server_down(1);
  const auto report = ctl.handle_link_failure(dead);
  ASSERT_EQ(report.affected.size(), 1u);
  ASSERT_EQ(report.degraded.size(), 1u);
  EXPECT_TRUE(report.replaced.empty());
  EXPECT_TRUE(report.unplaced.empty());
  EXPECT_TRUE(report.refreshed.empty());
  EXPECT_EQ(ctl.tenant_status(h->id), TenantStatus::kDegraded);
  EXPECT_EQ(ctl.stats().degraded_tenants, 1);
  // Degraded VMs still hold slots but run unpaced at low priority.
  for (int s = 0; s < ctl.topo().num_servers(); ++s)
    EXPECT_TRUE(ctl.server_config(s).empty());

  const auto back = ctl.restore_link(dead);
  ASSERT_EQ(back.replaced.size(), 1u);
  EXPECT_EQ(back.refreshed.size(), 2u);
  EXPECT_EQ(ctl.tenant_status(h->id), TenantStatus::kGuaranteed);
  EXPECT_EQ(ctl.stats().degraded_tenants, 0);
  int paced = 0;
  for (int s = 0; s < ctl.topo().num_servers(); ++s)
    paced += static_cast<int>(ctl.server_config(s).size());
  EXPECT_EQ(paced, 2);
}

TEST(Controller, ServerFailureUnplacedWhenNoSlotsThenRestored) {
  topology::TopologyConfig cfg;
  cfg.pods = 1;
  cfg.racks_per_pod = 1;
  cfg.servers_per_rack = 2;
  cfg.vm_slots_per_server = 1;
  SiloController ctl(cfg);
  const auto h = ctl.admit(tenant(2));
  ASSERT_TRUE(h);

  // One surviving server with one slot cannot hold two VMs even
  // best-effort: the tenant is evacuated with nowhere to go.
  const auto report = ctl.handle_server_failure(1);
  ASSERT_EQ(report.unplaced.size(), 1u);
  EXPECT_EQ(ctl.tenant_status(h->id), TenantStatus::kUnplaced);
  EXPECT_EQ(ctl.stats().unplaced_tenants, 1);
  for (int s : ctl.tenant_placement(h->id)) EXPECT_EQ(s, -1);
  for (int s = 0; s < ctl.topo().num_servers(); ++s)
    EXPECT_TRUE(ctl.server_config(s).empty());

  const auto back = ctl.restore_server(1);
  ASSERT_EQ(back.replaced.size(), 1u);
  EXPECT_EQ(ctl.tenant_status(h->id), TenantStatus::kGuaranteed);
  EXPECT_EQ(ctl.stats().unplaced_tenants, 0);
  EXPECT_EQ(ctl.stats().free_slots, 0);  // both slots in use again
}

// --- Incremental pacer-config diff protocol (goldens) ---------------------

/// Hypervisor-side model: every server's PacerConfigTable fed only by
/// drained deltas. apply() folds the controller's queue; verify() pins each
/// table's checksum against a freshly computed full snapshot.
struct PacerFleet {
  std::map<int, PacerConfigTable> tables;

  void apply(SiloController& ctl) {
    for (const auto& delta : ctl.drain_config_deltas()) {
      ASSERT_GE(delta.server, 0);
      tables[delta.server].apply(delta);
    }
  }
  void verify(const SiloController& ctl) {
    for (int s = 0; s < ctl.topo().num_servers(); ++s) {
      const auto snapshot = ctl.server_config(s);
      const auto it = tables.find(s);
      const std::uint64_t applied =
          it == tables.end() ? pacer_config_checksum({}) : it->second.checksum();
      ASSERT_EQ(applied, pacer_config_checksum(snapshot)) << "server " << s;
      if (it != tables.end())
        ASSERT_EQ(it->second.size(), snapshot.size()) << "server " << s;
    }
  }
};

TEST(ControllerDiff, AdmitEmitsOneDeltaPerAffectedServer) {
  SiloController ctl(small_dc());
  const auto h = ctl.admit(tenant(6));
  ASSERT_TRUE(h);
  const auto deltas = ctl.drain_config_deltas();
  std::map<int, int> upserts_by_server;
  for (const auto& d : deltas) {
    EXPECT_TRUE(d.removes.empty());  // fresh tenant: nothing to remove
    upserts_by_server[d.server] += static_cast<int>(d.upserts.size());
  }
  std::map<int, int> expected;
  for (int s : h->vm_to_server) ++expected[s];
  EXPECT_EQ(upserts_by_server, expected);
  EXPECT_TRUE(ctl.drain_config_deltas().empty());  // drain is destructive
  EXPECT_EQ(ctl.metrics().value("controller.diff.deltas"),
            static_cast<std::int64_t>(deltas.size()));
  EXPECT_EQ(ctl.metrics().value("controller.diff.upserts"), 6);
  EXPECT_EQ(ctl.metrics().value("controller.diff.removes"), 0);
}

TEST(ControllerDiff, BestEffortTenantsEmitNoDeltas) {
  SiloController ctl(small_dc());
  TenantRequest be = tenant(4);
  be.tenant_class = TenantClass::kBestEffort;
  const auto h = ctl.admit(be);
  ASSERT_TRUE(h);
  EXPECT_TRUE(ctl.drain_config_deltas().empty());
  ctl.release(*h);
  EXPECT_TRUE(ctl.drain_config_deltas().empty());
}

TEST(ControllerDiff, ReleaseThenReadmitReproducesSnapshotChecksums) {
  // Satellite: release -> re-admit under sharded state must restore stats
  // and leave the delta-applied pacer state checksum-identical to freshly
  // computed full snapshots at every step.
  SiloController ctl(small_dc());
  PacerFleet fleet;

  const auto a = ctl.admit(tenant(8));
  ASSERT_TRUE(a);
  fleet.apply(ctl);
  fleet.verify(ctl);
  const auto only_a = ctl.stats();

  const auto b = ctl.admit(tenant(6, 800 * kMbps));
  ASSERT_TRUE(b);
  fleet.apply(ctl);
  fleet.verify(ctl);

  ctl.release(*b);
  fleet.apply(ctl);
  fleet.verify(ctl);
  const auto released = ctl.stats();
  EXPECT_EQ(released.free_slots, only_a.free_slots);
  EXPECT_NEAR(released.max_port_reservation, only_a.max_port_reservation,
              1e-12);
  EXPECT_NEAR(released.max_queue_headroom_used,
              only_a.max_queue_headroom_used, 1e-12);

  const auto b2 = ctl.admit(tenant(6, 800 * kMbps));
  ASSERT_TRUE(b2);
  EXPECT_EQ(b2->vm_to_server, b->vm_to_server);
  fleet.apply(ctl);
  fleet.verify(ctl);
}

TEST(ControllerDiff, FailureRecoveryDeltasTrackSnapshots) {
  SiloController ctl(small_dc());
  PacerFleet fleet;
  std::vector<TenantHandle> live;
  for (int i = 0; i < 4; ++i) {
    const auto h = ctl.admit(tenant(5, 400 * kMbps));
    ASSERT_TRUE(h);
    live.push_back(*h);
  }
  fleet.apply(ctl);
  fleet.verify(ctl);

  const int victim = live[0].vm_to_server.front();
  ctl.handle_server_failure(victim);
  fleet.apply(ctl);
  fleet.verify(ctl);  // replaced/degraded/unplaced all reflected via deltas

  ctl.restore_server(victim);
  fleet.apply(ctl);
  fleet.verify(ctl);

  const auto dead = ctl.topo().server_down(live[1].vm_to_server.front());
  ctl.handle_link_failure(dead);
  fleet.apply(ctl);
  fleet.verify(ctl);

  ctl.restore_link(dead);
  fleet.apply(ctl);
  fleet.verify(ctl);
}

TEST(ControllerDiff, ChurnStormMatchesFullRescanController) {
  // Drive an incremental and a full-rescan controller with the identical
  // op sequence: placements, stats and per-server config checksums must
  // stay bit-identical, and the incremental side's delta stream must keep
  // reproducing its own snapshots.
  SiloController::Options inc_opts;
  SiloController::Options full_opts;
  full_opts.admission_mode = placement::AdmissionMode::kFullRescan;
  SiloController inc(small_dc(), inc_opts);
  SiloController full(small_dc(), full_opts);
  PacerFleet fleet;

  Rng rng(11);
  std::vector<std::pair<TenantHandle, TenantHandle>> live;
  const auto check = [&] {
    const auto si = inc.stats();
    const auto sf = full.stats();
    ASSERT_EQ(si.free_slots, sf.free_slots);
    ASSERT_EQ(si.admitted_tenants, sf.admitted_tenants);
    ASSERT_EQ(si.degraded_tenants, sf.degraded_tenants);
    ASSERT_EQ(si.unplaced_tenants, sf.unplaced_tenants);
    ASSERT_DOUBLE_EQ(si.max_port_reservation, sf.max_port_reservation);
    ASSERT_DOUBLE_EQ(si.max_queue_headroom_used, sf.max_queue_headroom_used);
    for (int s = 0; s < inc.topo().num_servers(); ++s)
      ASSERT_EQ(pacer_config_checksum(inc.server_config(s)),
                pacer_config_checksum(full.server_config(s)));
    fleet.apply(inc);
    fleet.verify(inc);
    ASSERT_TRUE(full.drain_config_deltas().empty());  // full mode: no diffs
  };

  for (int step = 0; step < 120; ++step) {
    const auto roll = rng.uniform_int(0, 9);
    if (roll < 5) {
      const int vms = 2 + static_cast<int>(rng.uniform_int(0, 5));
      const auto req = tenant(vms, 300 * kMbps);
      const auto a = inc.admit(req);
      const auto b = full.admit(req);
      ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
      if (a) {
        ASSERT_EQ(a->vm_to_server, b->vm_to_server);
        live.emplace_back(*a, *b);
      }
    } else if (roll < 8 && !live.empty()) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      inc.release(live[i].first);
      full.release(live[i].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (roll == 8) {
      const int s = static_cast<int>(
          rng.uniform_int(0, inc.topo().num_servers() - 1));
      if (!inc.placement().server_failed(s)) {
        inc.handle_server_failure(s);
        full.handle_server_failure(s);
        check();
        inc.restore_server(s);
        full.restore_server(s);
      }
    } else {
      const int s = static_cast<int>(
          rng.uniform_int(0, inc.topo().num_servers() - 1));
      const auto p = inc.topo().server_down(s);
      if (!inc.placement().port_failed(p)) {
        inc.handle_link_failure(p);
        full.handle_link_failure(p);
        check();
        inc.restore_link(p);
        full.restore_link(p);
      }
    }
    check();
  }
}

}  // namespace
}  // namespace silo
