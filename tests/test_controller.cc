#include <gtest/gtest.h>

#include "core/controller.h"

namespace silo {
namespace {

topology::TopologyConfig small_dc() {
  topology::TopologyConfig cfg;
  cfg.pods = 2;
  cfg.racks_per_pod = 2;
  cfg.servers_per_rack = 4;
  cfg.vm_slots_per_server = 4;
  return cfg;
}

TenantRequest tenant(int vms, RateBps bw = 500 * kMbps) {
  TenantRequest r;
  r.num_vms = vms;
  r.guarantee = {bw, 15 * kKB, 2 * kMsec, 1 * kGbps};
  r.tenant_class = TenantClass::kDelaySensitive;
  return r;
}

TEST(Controller, AdmitReleaseLifecycle) {
  SiloController ctl(small_dc());
  const auto before = ctl.stats();
  EXPECT_EQ(before.free_slots, before.total_slots);

  const auto h = ctl.admit(tenant(8));
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->vm_to_server.size(), 8u);
  EXPECT_EQ(ctl.stats().free_slots, before.total_slots - 8);
  EXPECT_EQ(ctl.stats().admitted_tenants, 1);

  ctl.release(*h);
  const auto after = ctl.stats();
  EXPECT_EQ(after.free_slots, after.total_slots);
  EXPECT_EQ(after.admitted_tenants, 0);
  EXPECT_DOUBLE_EQ(after.max_port_reservation, 0.0);
}

TEST(Controller, ServerConfigListsHostedVmsWithPeers) {
  SiloController ctl(small_dc());
  const auto h = ctl.admit(tenant(6));
  ASSERT_TRUE(h);
  int records_total = 0;
  for (int s = 0; s < ctl.topo().num_servers(); ++s) {
    const auto cfg = ctl.server_config(s);
    records_total += static_cast<int>(cfg.size());
    for (const auto& rec : cfg) {
      EXPECT_EQ(rec.server, s);
      EXPECT_EQ(rec.tenant, h->id);
      EXPECT_EQ(rec.peers.size(), 5u);  // everyone else in the tenant
      EXPECT_EQ(h->vm_to_server[static_cast<std::size_t>(rec.vm_index)], s);
      EXPECT_DOUBLE_EQ(rec.guarantee.bandwidth.bps(), 500e6);
      for (const auto& [peer_vm, peer_server] : rec.peers) {
        EXPECT_NE(peer_vm, rec.vm_index);
        EXPECT_EQ(h->vm_to_server[static_cast<std::size_t>(peer_vm)],
                  peer_server);
      }
    }
  }
  EXPECT_EQ(records_total, 6);  // one record per VM, across all servers
}

TEST(Controller, BestEffortVmsAreNotPaced) {
  SiloController ctl(small_dc());
  TenantRequest be = tenant(4);
  be.tenant_class = TenantClass::kBestEffort;
  const auto h = ctl.admit(be);
  ASSERT_TRUE(h);
  for (int s = 0; s < ctl.topo().num_servers(); ++s)
    EXPECT_TRUE(ctl.server_config(s).empty());
}

TEST(Controller, StatsReflectHeadroom) {
  SiloController ctl(small_dc());
  for (int i = 0; i < 6; ++i) ctl.admit(tenant(8, 1 * kGbps));
  const auto s = ctl.stats();
  EXPECT_GT(s.max_port_reservation, 0.0);
  EXPECT_LE(s.max_port_reservation, 1.0 + 1e-9);
  EXPECT_GT(s.max_queue_headroom_used, 0.0);
  EXPECT_LE(s.max_queue_headroom_used, 1.0 + 1e-9);  // Silo's invariant
}

TEST(Controller, RejectsBeyondCapacity) {
  SiloController ctl(small_dc());
  int admitted = 0;
  for (int i = 0; i < 30; ++i)
    if (ctl.admit(tenant(8, 2 * kGbps))) ++admitted;
  EXPECT_LT(admitted, 30);
  // Whatever was admitted keeps every port's queue bound within capacity.
  EXPECT_LE(ctl.stats().max_queue_headroom_used, 1.0 + 1e-9);
}

TEST(Controller, LatencyBoundHelperMatchesCore) {
  SiloGuarantee g{500 * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  EXPECT_EQ(SiloController::message_latency_bound(g, 10 * kKB),
            max_message_latency(g, 10 * kKB));
}

TEST(Controller, ReadmitAfterReleaseRestoresStats) {
  // admit -> release -> re-admit must be a no-op on the datacenter model:
  // releasing B returns the stats to the A-only snapshot, and re-admitting
  // the identical request reproduces the combined snapshot exactly.
  SiloController ctl(small_dc());
  const auto a = ctl.admit(tenant(8));
  ASSERT_TRUE(a);
  const auto only_a = ctl.stats();

  const auto b = ctl.admit(tenant(6, 800 * kMbps));
  ASSERT_TRUE(b);
  const auto with_b = ctl.stats();
  ASSERT_NE(with_b.free_slots, only_a.free_slots);

  ctl.release(*b);
  const auto released = ctl.stats();
  EXPECT_EQ(released.free_slots, only_a.free_slots);
  EXPECT_EQ(released.admitted_tenants, only_a.admitted_tenants);
  EXPECT_NEAR(released.max_port_reservation, only_a.max_port_reservation,
              1e-12);
  EXPECT_NEAR(released.max_queue_headroom_used, only_a.max_queue_headroom_used,
              1e-12);

  const auto b2 = ctl.admit(tenant(6, 800 * kMbps));
  ASSERT_TRUE(b2);
  EXPECT_EQ(b2->vm_to_server, b->vm_to_server);  // same greedy decision
  const auto readmitted = ctl.stats();
  EXPECT_EQ(readmitted.free_slots, with_b.free_slots);
  EXPECT_EQ(readmitted.admitted_tenants, with_b.admitted_tenants);
  EXPECT_DOUBLE_EQ(readmitted.max_port_reservation,
                   with_b.max_port_reservation);
  EXPECT_DOUBLE_EQ(readmitted.max_queue_headroom_used,
                   with_b.max_queue_headroom_used);
}

TEST(Controller, ServerFailureReplacesWithinGuarantees) {
  SiloController ctl(small_dc());
  const auto h = ctl.admit(tenant(6));
  ASSERT_TRUE(h);
  const int victim = h->vm_to_server.front();

  const auto report = ctl.handle_server_failure(victim);
  ASSERT_EQ(report.affected.size(), 1u);
  EXPECT_EQ(report.affected[0], h->id);
  ASSERT_EQ(report.replaced.size(), 1u);
  EXPECT_TRUE(report.degraded.empty());
  EXPECT_TRUE(report.unplaced.empty());
  // Re-placement re-ran full admission: fresh pacer configs were emitted,
  // the tenant keeps its guarantees, and no VM sits on dead hardware.
  EXPECT_EQ(report.refreshed.size(), 6u);
  EXPECT_EQ(ctl.tenant_status(h->id), TenantStatus::kGuaranteed);
  for (int s : ctl.tenant_placement(h->id)) EXPECT_NE(s, victim);
  const auto stats = ctl.stats();
  EXPECT_EQ(stats.degraded_tenants, 0);
  EXPECT_EQ(stats.unplaced_tenants, 0);
  // The dead server's slots (used and free alike) left the pool.
  EXPECT_EQ(stats.free_slots, stats.total_slots - 4 - 6);
}

TEST(Controller, LinkFailureDegradesThenRestorePromotes) {
  // Two one-slot servers: the tenant must span both, so its traffic
  // depends on the ToR egress toward server 1. When that link dies the
  // guarantees are infeasible (any spread placement reserves capacity on
  // the dead port; colocation has no slots) and the controller must fall
  // back to explicit best-effort degraded mode, then promote the tenant
  // back once the link returns.
  topology::TopologyConfig cfg;
  cfg.pods = 1;
  cfg.racks_per_pod = 1;
  cfg.servers_per_rack = 2;
  cfg.vm_slots_per_server = 1;
  SiloController ctl(cfg);
  const auto h = ctl.admit(tenant(2));
  ASSERT_TRUE(h);

  const auto dead = ctl.topo().server_down(1);
  const auto report = ctl.handle_link_failure(dead);
  ASSERT_EQ(report.affected.size(), 1u);
  ASSERT_EQ(report.degraded.size(), 1u);
  EXPECT_TRUE(report.replaced.empty());
  EXPECT_TRUE(report.unplaced.empty());
  EXPECT_TRUE(report.refreshed.empty());
  EXPECT_EQ(ctl.tenant_status(h->id), TenantStatus::kDegraded);
  EXPECT_EQ(ctl.stats().degraded_tenants, 1);
  // Degraded VMs still hold slots but run unpaced at low priority.
  for (int s = 0; s < ctl.topo().num_servers(); ++s)
    EXPECT_TRUE(ctl.server_config(s).empty());

  const auto back = ctl.restore_link(dead);
  ASSERT_EQ(back.replaced.size(), 1u);
  EXPECT_EQ(back.refreshed.size(), 2u);
  EXPECT_EQ(ctl.tenant_status(h->id), TenantStatus::kGuaranteed);
  EXPECT_EQ(ctl.stats().degraded_tenants, 0);
  int paced = 0;
  for (int s = 0; s < ctl.topo().num_servers(); ++s)
    paced += static_cast<int>(ctl.server_config(s).size());
  EXPECT_EQ(paced, 2);
}

TEST(Controller, ServerFailureUnplacedWhenNoSlotsThenRestored) {
  topology::TopologyConfig cfg;
  cfg.pods = 1;
  cfg.racks_per_pod = 1;
  cfg.servers_per_rack = 2;
  cfg.vm_slots_per_server = 1;
  SiloController ctl(cfg);
  const auto h = ctl.admit(tenant(2));
  ASSERT_TRUE(h);

  // One surviving server with one slot cannot hold two VMs even
  // best-effort: the tenant is evacuated with nowhere to go.
  const auto report = ctl.handle_server_failure(1);
  ASSERT_EQ(report.unplaced.size(), 1u);
  EXPECT_EQ(ctl.tenant_status(h->id), TenantStatus::kUnplaced);
  EXPECT_EQ(ctl.stats().unplaced_tenants, 1);
  for (int s : ctl.tenant_placement(h->id)) EXPECT_EQ(s, -1);
  for (int s = 0; s < ctl.topo().num_servers(); ++s)
    EXPECT_TRUE(ctl.server_config(s).empty());

  const auto back = ctl.restore_server(1);
  ASSERT_EQ(back.replaced.size(), 1u);
  EXPECT_EQ(ctl.tenant_status(h->id), TenantStatus::kGuaranteed);
  EXPECT_EQ(ctl.stats().unplaced_tenants, 0);
  EXPECT_EQ(ctl.stats().free_slots, 0);  // both slots in use again
}

}  // namespace
}  // namespace silo
