#include <gtest/gtest.h>

#include "core/controller.h"

namespace silo {
namespace {

topology::TopologyConfig small_dc() {
  topology::TopologyConfig cfg;
  cfg.pods = 2;
  cfg.racks_per_pod = 2;
  cfg.servers_per_rack = 4;
  cfg.vm_slots_per_server = 4;
  return cfg;
}

TenantRequest tenant(int vms, RateBps bw = 500 * kMbps) {
  TenantRequest r;
  r.num_vms = vms;
  r.guarantee = {bw, 15 * kKB, 2 * kMsec, 1 * kGbps};
  r.tenant_class = TenantClass::kDelaySensitive;
  return r;
}

TEST(Controller, AdmitReleaseLifecycle) {
  SiloController ctl(small_dc());
  const auto before = ctl.stats();
  EXPECT_EQ(before.free_slots, before.total_slots);

  const auto h = ctl.admit(tenant(8));
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->vm_to_server.size(), 8u);
  EXPECT_EQ(ctl.stats().free_slots, before.total_slots - 8);
  EXPECT_EQ(ctl.stats().admitted_tenants, 1);

  ctl.release(*h);
  const auto after = ctl.stats();
  EXPECT_EQ(after.free_slots, after.total_slots);
  EXPECT_EQ(after.admitted_tenants, 0);
  EXPECT_DOUBLE_EQ(after.max_port_reservation, 0.0);
}

TEST(Controller, ServerConfigListsHostedVmsWithPeers) {
  SiloController ctl(small_dc());
  const auto h = ctl.admit(tenant(6));
  ASSERT_TRUE(h);
  int records_total = 0;
  for (int s = 0; s < ctl.topo().num_servers(); ++s) {
    const auto cfg = ctl.server_config(s);
    records_total += static_cast<int>(cfg.size());
    for (const auto& rec : cfg) {
      EXPECT_EQ(rec.server, s);
      EXPECT_EQ(rec.tenant, h->id);
      EXPECT_EQ(rec.peers.size(), 5u);  // everyone else in the tenant
      EXPECT_EQ(h->vm_to_server[static_cast<std::size_t>(rec.vm_index)], s);
      EXPECT_DOUBLE_EQ(rec.guarantee.bandwidth, 500e6);
      for (const auto& [peer_vm, peer_server] : rec.peers) {
        EXPECT_NE(peer_vm, rec.vm_index);
        EXPECT_EQ(h->vm_to_server[static_cast<std::size_t>(peer_vm)],
                  peer_server);
      }
    }
  }
  EXPECT_EQ(records_total, 6);  // one record per VM, across all servers
}

TEST(Controller, BestEffortVmsAreNotPaced) {
  SiloController ctl(small_dc());
  TenantRequest be = tenant(4);
  be.tenant_class = TenantClass::kBestEffort;
  const auto h = ctl.admit(be);
  ASSERT_TRUE(h);
  for (int s = 0; s < ctl.topo().num_servers(); ++s)
    EXPECT_TRUE(ctl.server_config(s).empty());
}

TEST(Controller, StatsReflectHeadroom) {
  SiloController ctl(small_dc());
  for (int i = 0; i < 6; ++i) ctl.admit(tenant(8, 1 * kGbps));
  const auto s = ctl.stats();
  EXPECT_GT(s.max_port_reservation, 0.0);
  EXPECT_LE(s.max_port_reservation, 1.0 + 1e-9);
  EXPECT_GT(s.max_queue_headroom_used, 0.0);
  EXPECT_LE(s.max_queue_headroom_used, 1.0 + 1e-9);  // Silo's invariant
}

TEST(Controller, RejectsBeyondCapacity) {
  SiloController ctl(small_dc());
  int admitted = 0;
  for (int i = 0; i < 30; ++i)
    if (ctl.admit(tenant(8, 2 * kGbps))) ++admitted;
  EXPECT_LT(admitted, 30);
  // Whatever was admitted keeps every port's queue bound within capacity.
  EXPECT_LE(ctl.stats().max_queue_headroom_used, 1.0 + 1e-9);
}

TEST(Controller, LatencyBoundHelperMatchesCore) {
  SiloGuarantee g{500 * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  EXPECT_EQ(SiloController::message_latency_bound(g, 10 * kKB),
            max_message_latency(g, 10 * kKB));
}

}  // namespace
}  // namespace silo
