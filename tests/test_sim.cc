#include <gtest/gtest.h>

#include <algorithm>

#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/port.h"
#include "sim/transport.h"

namespace silo::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue ev;
  std::vector<int> order;
  ev.at(TimeNs{30}, [&] { order.push_back(3); });
  ev.at(TimeNs{10}, [&] { order.push_back(1); });
  ev.at(TimeNs{20}, [&] { order.push_back(2); });
  ev.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ev.now(), TimeNs{30});
  EXPECT_EQ(ev.processed(), 3u);
}

TEST(EventQueue, TiesBreakByInsertion) {
  EventQueue ev;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) ev.at(TimeNs{7}, [&, i] { order.push_back(i); });
  ev.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ReentrantScheduling) {
  EventQueue ev;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) ev.after(TimeNs{5}, tick);
  };
  ev.after(TimeNs{0}, tick);
  ev.run_all();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(ev.now(), TimeNs{45});
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue ev;
  int fired = 0;
  ev.at(TimeNs{10}, [&] { ++fired; });
  ev.at(TimeNs{100}, [&] { ++fired; });
  ev.run_until(TimeNs{50});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(ev.now(), TimeNs{50});
  EXPECT_EQ(ev.pending(), 1u);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue ev;
  ev.at(TimeNs{100}, [] {});
  ev.run_all();
  TimeNs seen {-1};
  ev.at(TimeNs{5}, [&] { seen = ev.now(); });  // in the past: clamps to now
  ev.run_all();
  EXPECT_EQ(seen, TimeNs{100});
}

// --- Timing-wheel specifics: ordering across slot, group and overflow
// boundaries of the hierarchical wheel (256 ns ticks, 256 slots, 2 levels).

TEST(EventQueue, OrdersAcrossAllWheelLevels) {
  EventQueue ev;
  // One event per magnitude: same tick, level-0 slot, level-1 slot, and
  // overflow heap (~65 us and ~16.8 ms are the level spans).
  const std::vector<TimeNs> times = {3 * kSec,  20 * kMsec, 70 * kUsec,
                                     1 * kUsec, TimeNs{100}, TimeNs{1}};
  std::vector<TimeNs> fired;
  for (TimeNs t : times) ev.at(t, [&, t] { fired.push_back(t); });
  ev.run_all();
  std::vector<TimeNs> want = times;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(fired, want);
  EXPECT_EQ(ev.now(), 3 * kSec);
}

TEST(EventQueue, TiesBreakByInsertionInEveryLevel) {
  EventQueue ev;
  std::vector<int> order;
  // Ties at a far-future time pass through overflow -> level 1 -> level 0
  // -> due run; insertion order must survive the whole cascade.
  for (int i = 0; i < 8; ++i) ev.at(123 * kMsec, [&, i] { order.push_back(i); });
  ev.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, ReentrantSchedulingAcrossGroupBoundaries) {
  EventQueue ev;
  // Each event schedules the next one ~one level-0 span away, repeatedly
  // forcing group advancement and cascades while dispatching.
  int count = 0;
  std::function<void()> hop = [&] {
    if (++count < 100) ev.after(63 * kUsec + TimeNs{7}, hop);
  };
  ev.after(TimeNs{0}, hop);
  ev.run_all();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(ev.now(), 99 * (63 * kUsec + TimeNs{7}));
}

TEST(EventQueue, InterleavedNearAndFarEvents) {
  EventQueue ev;
  std::vector<std::pair<TimeNs, int>> fired;
  // Far-future periodic (overflow heap) interleaved with dense near-term
  // events scheduled reentrantly.
  for (int i = 1; i <= 4; ++i)
    ev.at(i * 20 * kMsec, [&, i] { fired.push_back({ev.now(), 1000 + i}); });
  int n = 0;
  std::function<void()> tick = [&] {
    fired.push_back({ev.now(), n});
    if (++n < 5000) ev.after(17 * kUsec, tick);
  };
  ev.at(TimeNs{0}, tick);
  ev.run_all();
  ASSERT_EQ(fired.size(), 5004u);
  for (std::size_t i = 1; i < fired.size(); ++i)
    EXPECT_LE(fired[i - 1].first, fired[i].first);
  EXPECT_EQ(ev.processed(), 5004u);
}

PortConfig port_10g() {
  PortConfig cfg;
  cfg.rate = 10 * kGbps;
  cfg.buffer = 312 * kKB;
  cfg.link_delay = TimeNs{500};
  return cfg;
}

Packet data_packet(std::uint64_t id, Bytes payload = Bytes{1460}) {
  Packet p;
  p.id = id;
  p.flow_id = 0;
  p.payload = payload;
  p.wire_bytes = payload + kHeaderBytes;
  return p;
}

TEST(SwitchPort, TransmitsAtLineRate) {
  EventQueue ev;
  std::vector<TimeNs> deliveries;
  SwitchPortSim port(ev, port_10g(), [&](PacketHandle h) {
    deliveries.push_back(ev.now());
    ev.pool().free(h);
  });
  for (int i = 0; i < 5; ++i) port.enqueue(ev.pool().clone(data_packet(i)));
  ev.run_all();
  ASSERT_EQ(deliveries.size(), 5u);
  // 1500+38 wire bytes at 10G = ~1230 ns per packet, back to back.
  for (std::size_t i = 1; i < deliveries.size(); ++i)
    EXPECT_NEAR(static_cast<double>(deliveries[i] - deliveries[i - 1]), 1231,
                5);
  EXPECT_EQ(port.stats().tx_packets, 5);
}

TEST(SwitchPort, DropsWhenBufferFull) {
  EventQueue ev;
  int delivered = 0;
  auto cfg = port_10g();
  cfg.buffer = Bytes{5 * 1500};  // room for ~5 packets
  SwitchPortSim port(ev, cfg, [&](PacketHandle h) {
    ++delivered;
    ev.pool().free(h);
  });
  for (int i = 0; i < 20; ++i) port.enqueue(ev.pool().clone(data_packet(i)));
  ev.run_all();
  EXPECT_GT(port.stats().drops, 0);
  EXPECT_EQ(delivered + port.stats().drops, 20);
}

TEST(SwitchPort, EcnMarksAboveThreshold) {
  EventQueue ev;
  int marked = 0;
  auto cfg = port_10g();
  cfg.ecn_threshold = Bytes{3000};
  SwitchPortSim port(ev, cfg, [&](PacketHandle h) {
    marked += ev.pool().get(h).ecn_marked;
    ev.pool().free(h);
  });
  for (int i = 0; i < 10; ++i) port.enqueue(ev.pool().clone(data_packet(i)));
  ev.run_all();
  EXPECT_GT(marked, 0);
  EXPECT_LT(marked, 10);  // first packets see an empty queue
}

TEST(SwitchPort, PhantomQueueMarksEarly) {
  EventQueue ev;
  int marked = 0;
  auto cfg = port_10g();
  cfg.phantom_queue = true;
  cfg.phantom_threshold = Bytes{3000};
  cfg.phantom_drain = 0.95;
  SwitchPortSim port(ev, cfg, [&](PacketHandle h) {
    marked += ev.pool().get(h).ecn_marked;
    ev.pool().free(h);
  });
  // Line-rate arrivals: the phantom queue (draining at 95%) builds up and
  // marks even though the real queue would be shallow.
  for (int i = 0; i < 50; ++i)
    ev.at(TimeNs{i * 1231}, [&, i] { port.enqueue(ev.pool().clone(data_packet(i))); });
  ev.run_all();
  EXPECT_GT(marked, 5);
}

TEST(SwitchPort, PriorityServesGuaranteedFirst) {
  EventQueue ev;
  std::vector<Priority> order;
  SwitchPortSim port(ev, port_10g(), [&](PacketHandle h) {
    order.push_back(ev.pool().get(h).priority);
    ev.pool().free(h);
  });
  // Fill while port is busy with the first packet.
  Packet low = data_packet(1);
  low.priority = Priority::kBestEffort;
  Packet high = data_packet(2);
  port.enqueue(ev.pool().clone(data_packet(0)));  // occupies the wire
  port.enqueue(ev.pool().clone(low));
  port.enqueue(ev.pool().clone(high));
  ev.run_all();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], Priority::kGuaranteed);  // high jumped the low queue
  EXPECT_EQ(order[2], Priority::kBestEffort);
}


TEST(SwitchPort, PfabricServesSmallestRemainingFirst) {
  EventQueue ev;
  auto cfg = port_10g();
  cfg.pfabric = true;
  std::vector<std::int64_t> order;
  SwitchPortSim port(ev, cfg, [&](PacketHandle h) {
    order.push_back(ev.pool().get(h).remaining);
    ev.pool().free(h);
  });
  // First packet occupies the wire; the rest queue with mixed urgency.
  Packet first = data_packet(0);
  first.remaining = 1;
  port.enqueue(ev.pool().clone(first));
  for (std::int64_t r : {500000, 1000, 200000, 50}) {
    Packet p = data_packet(1);
    p.remaining = r;
    port.enqueue(ev.pool().clone(p));
  }
  ev.run_all();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[1], 50);       // most urgent jumps the queue
  EXPECT_EQ(order[2], 1000);
  EXPECT_EQ(order[3], 200000);
  EXPECT_EQ(order[4], 500000);
}

TEST(SwitchPort, PfabricEvictsLargestOnOverflow) {
  EventQueue ev;
  auto cfg = port_10g();
  cfg.pfabric = true;
  cfg.buffer = Bytes{4 * 1500};  // room for ~4 packets
  std::vector<std::int64_t> delivered;
  SwitchPortSim port(ev, cfg, [&](PacketHandle h) {
    delivered.push_back(ev.pool().get(h).remaining);
    ev.pool().free(h);
  });
  // Fill with bulky packets, then push urgent ones: bulk gets evicted.
  for (int i = 0; i < 5; ++i) {
    Packet p = data_packet(i);
    p.remaining = 1000000 + i;
    port.enqueue(ev.pool().clone(p));
  }
  for (int i = 0; i < 3; ++i) {
    Packet p = data_packet(10 + i);
    p.remaining = 10 + i;
    port.enqueue(ev.pool().clone(p));
  }
  ev.run_all();
  EXPECT_GT(port.stats().drops, 0);
  // Every urgent packet survived the overflow.
  int urgent = 0;
  for (auto r : delivered) urgent += r < 100;
  EXPECT_EQ(urgent, 3);
}
// One TcpFlow across a single bottleneck port and back.
struct Loop {
  EventQueue ev;
  SwitchPortSim fwd;
  SwitchPortSim rev;
  std::unique_ptr<TcpFlow> flow;

  explicit Loop(TcpConfig cfg = {}, PortConfig pcfg = port_10g())
      : fwd(ev, pcfg, [this](PacketHandle h) { consume(h); }),
        rev(ev, pcfg, [this](PacketHandle h) { consume(h); }) {
    flow = std::make_unique<TcpFlow>(
        ev, 0, 0, 1, 0, 1, cfg, [this](PacketHandle h) { fwd.enqueue(h); },
        [this](PacketHandle h) { rev.enqueue(h); });
  }

  void consume(PacketHandle h) {
    const Packet p = ev.pool().get(h);  // copy: on_packet allocates the ACK
    ev.pool().free(h);
    flow->on_packet(p);
  }
};

TEST(TcpFlow, DeliversAllBytesInOrder) {
  Loop loop;
  std::int64_t delivered = 0;
  loop.flow->set_on_delivery([&](std::int64_t d) { delivered = d; });
  loop.flow->app_write(1 * kMB);
  loop.ev.run_all();
  EXPECT_EQ(delivered, (1 * kMB).count());
  EXPECT_EQ(loop.flow->bytes_acked(), (1 * kMB).count());
  EXPECT_TRUE(loop.flow->rto_events().empty());
}

TEST(TcpFlow, ApproachesLineRate) {
  Loop loop;
  loop.flow->app_write(20 * kMB);
  loop.ev.run_all();
  const double secs =
      static_cast<double>(loop.ev.now()) / static_cast<double>(kSec);
  const double gbps = 20e6 * 8 / secs / 1e9;
  // The transfer includes one slow-start overshoot + NewReno recovery
  // episode, so average goodput sits below the 10G wire but well above
  // half of it.
  EXPECT_GT(gbps, 5.0);
  EXPECT_LT(gbps, 10.0);
}

TEST(TcpFlow, RecoversFromLossViaFastRetransmit) {
  auto pcfg = port_10g();
  pcfg.buffer = Bytes{8 * 1500};  // shallow: slow-start overshoot drops packets
  Loop loop({}, pcfg);
  std::int64_t delivered = 0;
  loop.flow->set_on_delivery([&](std::int64_t d) { delivered = d; });
  loop.flow->app_write(5 * kMB);
  loop.ev.run_all();
  EXPECT_EQ(delivered, (5 * kMB).count());
  EXPECT_GT(loop.fwd.stats().drops, 0);  // loss actually happened
}

TEST(TcpFlow, DctcpKeepsQueuesShorter) {
  auto run = [&](bool dctcp) {
    auto pcfg = port_10g();
    pcfg.buffer = 312 * kKB;
    if (dctcp) pcfg.ecn_threshold = 30 * kKB;
    TcpConfig tcp;
    tcp.dctcp = dctcp;
    Loop loop(tcp, pcfg);
    loop.flow->app_write(30 * kMB);
    loop.ev.run_all();
    return loop.fwd.stats().max_queue_bytes;
  };
  const auto q_tcp = run(false);
  const auto q_dctcp = run(true);
  EXPECT_LT(q_dctcp, q_tcp / 2);
}

TEST(TcpFlow, RtoFiresWhenAllAcksLost) {
  // Reverse path with zero buffer: every ACK dropped -> sender must RTO.
  EventQueue ev;
  TcpConfig cfg;
  cfg.min_rto = 10 * kMsec;
  auto pcfg = port_10g();
  int got_data = 0;
  SwitchPortSim fwd(ev, pcfg, [&](PacketHandle h) {
    ++got_data;
    ev.pool().free(h);
  });
  auto flow = std::make_unique<TcpFlow>(
      ev, 0, 0, 1, 0, 1, cfg, [&](PacketHandle h) { fwd.enqueue(h); },
      [&](PacketHandle h) { ev.pool().free(h); /* ACK black hole */ });
  flow->app_write(Bytes{10000});
  ev.run_until(100 * kMsec);
  EXPECT_GT(flow->rto_events().size(), 1u);  // retried with backoff
  EXPECT_GT(got_data, 0);
}

TEST(Fabric, RoutesAcrossRacksAndDropsVoids) {
  EventQueue ev;
  topology::TopologyConfig tcfg;
  tcfg.pods = 2;
  tcfg.racks_per_pod = 2;
  tcfg.servers_per_rack = 2;
  topology::Topology topo(tcfg);
  Fabric fabric(ev, topo, PortConfig{});
  std::vector<Packet> received;
  fabric.set_host_deliver([&](PacketHandle h) {
    received.push_back(ev.pool().get(h));
    ev.pool().free(h);
  });

  Packet p = data_packet(1);
  p.src_server = 0;
  p.dst_server = 7;  // cross-pod
  fabric.ingress_from_host(ev.pool().clone(p));
  Packet v = p;
  v.is_void = true;
  fabric.ingress_from_host(ev.pool().clone(v));
  ev.run_all();
  ASSERT_EQ(received.size(), 1u);  // the void died at the first hop
  EXPECT_EQ(received[0].dst_server, 7);
  // Cross-pod: 5 switch hops each adding serialization + link delay.
  EXPECT_GT(ev.now(), TimeNs{5 * 500});
}

TEST(Host, PacedHostSpacesPacketsOnWire) {
  EventQueue ev;
  topology::TopologyConfig tcfg;
  tcfg.pods = 1;
  tcfg.racks_per_pod = 1;
  tcfg.servers_per_rack = 2;
  topology::Topology topo(tcfg);
  Fabric fabric(ev, topo, PortConfig{});
  std::vector<TimeNs> arrivals;
  fabric.set_host_deliver([&](PacketHandle h) {
    arrivals.push_back(ev.now());
    ev.pool().free(h);
  });

  Host::Config hcfg;
  hcfg.nic_mode = pacer::NicMode::kPacedVoid;
  Host host(ev, fabric, 0, hcfg);
  SiloGuarantee g{1 * kGbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
  pacer::VmPacer pacer(g);
  host.attach_pacer(0, &pacer);

  for (int i = 0; i < 10; ++i) {
    Packet p = data_packet(i);
    p.src_vm = 0;
    p.dst_vm = 1;
    p.src_server = 0;
    p.dst_server = 1;
    host.send(ev.pool().clone(p));
  }
  ev.run_all();
  ASSERT_EQ(arrivals.size(), 10u);
  // 1500 B at 1 Gbps: 12 us spacing (modulo the last-hop serialization,
  // which is identical for every packet).
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    EXPECT_NEAR(static_cast<double>(arrivals[i] - arrivals[i - 1]), 12000,
                300);
  EXPECT_GT(host.nic_stats().void_packets, 0);
}

TEST(Host, LoopbackBypassesFabric) {
  EventQueue ev;
  topology::TopologyConfig tcfg;
  tcfg.pods = 1;
  tcfg.racks_per_pod = 1;
  tcfg.servers_per_rack = 2;
  topology::Topology topo(tcfg);
  Fabric fabric(ev, topo, PortConfig{});
  fabric.set_host_deliver(
      [](PacketHandle) { FAIL() << "loopback hit the fabric"; });
  Host host(ev, fabric, 0, Host::Config{});
  int local = 0;
  host.set_local_deliver([&](PacketHandle h) {
    ++local;
    ev.pool().free(h);
  });
  Packet p = data_packet(1);
  p.src_server = 0;
  p.dst_server = 0;
  host.send(ev.pool().clone(p));
  ev.run_all();
  EXPECT_EQ(local, 1);
}

}  // namespace
}  // namespace silo::sim
