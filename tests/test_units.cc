// Property tests for the strong unit types (src/util/units.h): dimensional
// operator algebra, overflow checking, and exactness of the __int128
// transmission-time path at byte counts where the old double round-trip
// went wrong. Cross-unit *rejection* (TimeNs = Bytes must not compile) is
// proved separately by the compile-fail harness in tests/compile_fail/.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/units.h"

namespace silo {
namespace {

// ---------------------------------------------------------------------------
// Compile-time surface: the unit algebra is constexpr end to end, so the
// constants below fail the *build* if an operator loses constexpr-ness.
static_assert(TimeNs{3} + TimeNs{4} == TimeNs{7});
static_assert(2 * kUsec + TimeNs{500} == TimeNs{2500});
static_assert(kSec / kUsec == 1000 * 1000);    // dimensionless ratio
static_assert(kSec % (999 * kUsec) == kUsec);  // 1e9 = 1001*999e3 + 1e3
static_assert(Bytes{1500} * 3 == Bytes{4500});
static_assert(3 * kKiB / Bytes{1024} == 3);
static_assert(transmission_time(Bytes{1500}, RateBps{1e9}) == TimeNs{12000});
static_assert(bytes_in(RateBps{1e9}, TimeNs{12000}) == Bytes{1500});
static_assert(Bytes{1500} / (10 * kGbps) == TimeNs{1200});
static_assert(RateBps{1e9} * kUsec == Bytes{125});
static_assert(TimeNs{} == TimeNs{0});  // default construction is zero
static_assert(Bytes{} == Bytes{0});
static_assert(static_cast<double>(TimeNs{250}) == 250.0);
static_assert(static_cast<std::int64_t>(Bytes{42}) == 42);

TEST(Units, RoundTripBytesThroughTime) {
  // bytes_in(transmission_time(b)) returns b for whole-byte-per-ns-exact
  // cases, and never *exceeds* b: ceil on the way to time, truncation on
  // the way back means a link can't deliver more than was serialized.
  const RateBps rates[] = {100 * kMbps, 1 * kGbps, 10 * kGbps, 40 * kGbps};
  for (const RateBps r : rates) {
    for (std::int64_t n : {1, 84, 1500, 1538, 65535, 1 << 20}) {
      const Bytes b{n};
      const TimeNs t = transmission_time(b, r);
      const Bytes back = bytes_in(r, t);
      EXPECT_GE(back, b) << n << " B @ " << r;  // ceil'd time covers b
      // ...but only by what the link emits during the sub-ns rounding
      // slack: strictly less than one nanosecond's worth of bytes.
      EXPECT_LE(static_cast<double>((back - b).count()), r.bps() / 8e9)
          << n << " B @ " << r;
    }
  }
}

TEST(Units, TransmissionTimeExactAtLargeByteCounts) {
  // The old double path computed bytes*8e9 and lost integer exactness past
  // 2^53 (~1.1 MB at 1 Gbps). The __int128 path must stay exact: check
  // against hand-computed ceil(bytes*8e9/rate) at sizes around and far
  // beyond that boundary.
  struct Case {
    std::int64_t bytes;
    std::int64_t rate;
    std::int64_t want_ns;  // ceil(bytes * 8e9 / rate)
  };
  const Case cases[] = {
      // 2^53 / 8e9 = 1125899.9... bytes: straddle the double-exactness edge.
      {1125899, 1000000000, 9007192},
      {1125900, 1000000000, 9007200},
      {1125901, 1000000000, 9007208},
      // 1 GiB at 1G: the product 2^30 * 8e9 needs 63 bits — far past
      // double exactness, exactly bytes*8 ns.
      {1 << 30, 1000000000, 8589934592},
      // 1 GB at 3 Gbps: product 8e18 close to the int64 limit and the
      // quotient 2666666666.67 forces a true ceil in 128-bit arithmetic.
      {1000000000, 3000000000, 2666666667},
      // Non-divisible small case: 1 B at 3 bps = 2.66...e9 ns, ceil.
      {1, 3, 2666666667},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(transmission_time(Bytes{c.bytes}, RateBps{c.rate}),
              TimeNs{c.want_ns})
        << c.bytes << " B @ " << c.rate << " bps";
  }
}

TEST(Units, TransmissionTimeMonotoneAcrossDoubleBoundary) {
  // One more byte never serializes faster. Scan a window across the 2^53
  // boundary where the double path used to plateau/jitter.
  const RateBps r{1e9};
  TimeNs prev = transmission_time(Bytes{1125890}, r);
  for (std::int64_t b = 1125891; b < 1125910; ++b) {
    const TimeNs t = transmission_time(Bytes{b}, r);
    EXPECT_GT(t, prev) << b;  // strictly: 8 ns per byte at 1 Gbps
    EXPECT_EQ((t - prev).count(), 8) << b;
    prev = t;
  }
}

TEST(Units, TransmissionTimeFractionalRateStillCeils) {
  // Fractional rates use the double path but must still round up.
  const TimeNs t = transmission_time(Bytes{1}, RateBps{2.5});
  EXPECT_EQ(t, TimeNs{3200000000});  // 8e9 / 2.5 exactly
  const TimeNs t2 = transmission_time(Bytes{1}, RateBps{2.6});
  EXPECT_EQ(t2, TimeNs{3076923077});  // ceil(3076923076.9...)
}

TEST(Units, TransmissionTimeEdgeCases) {
  EXPECT_EQ(transmission_time(Bytes{0}, 1 * kGbps), TimeNs{0});
  EXPECT_EQ(transmission_time(Bytes{-5}, 1 * kGbps), TimeNs{0});
  EXPECT_EQ(transmission_time(Bytes{1500}, RateBps{0}), TimeNs{0});
  EXPECT_EQ(transmission_time(Bytes{1500}, RateBps{-1e9}), TimeNs{0});
  EXPECT_EQ(bytes_in(RateBps{1e9}, TimeNs{-1}), Bytes{0});
  EXPECT_EQ(bytes_in(RateBps{0}, kSec), Bytes{0});
}

TEST(Units, AverageRateOperator) {
  // 1500 B over 12 us -> 1 Gbps.
  const RateBps r = Bytes{1500} / (12 * kUsec);
  EXPECT_DOUBLE_EQ(r.bps(), 1e9);
  EXPECT_EQ(Bytes{1500} / TimeNs{0}, RateBps{0});
}

#ifdef SILO_UNITS_CHECKED
TEST(Units, OverflowGuardsThrowWhenChecked) {
  EXPECT_THROW(TimeNs::max() + kNsec, std::overflow_error);
  EXPECT_THROW(TimeNs::min() - kNsec, std::overflow_error);
  EXPECT_THROW(TimeNs::max() * 2, std::overflow_error);
  EXPECT_THROW(Bytes::max() + Bytes{1}, std::overflow_error);
  EXPECT_THROW(Bytes::max() * 2, std::overflow_error);
  // In-range arithmetic is untouched by the guards.
  EXPECT_EQ(TimeNs::max() - kNsec + kNsec, TimeNs::max());
}
#else
TEST(Units, OverflowGuardsCompiledOut) {
  // Release builds wrap (the guards are debug/audit-only); just prove the
  // expression still compiles and runs without UB being observable here.
  const TimeNs t = TimeNs{std::numeric_limits<std::int64_t>::max() - 1};
  EXPECT_EQ((t + kNsec).count(), std::numeric_limits<std::int64_t>::max());
}
#endif

TEST(Units, ComparisonAndOrdering) {
  EXPECT_LT(TimeNs{1}, TimeNs{2});
  EXPECT_GE(kMsec, 1000 * kUsec);
  EXPECT_EQ(kMsec, 1000 * kUsec);
  EXPECT_LT(kKB, kKiB);
  EXPECT_LT(RateBps{1e6}, RateBps{1e9});
}

TEST(Units, StreamInsertionPrintsRawCount) {
  std::ostringstream os;
  os << TimeNs{42} << " " << Bytes{1500} << " " << RateBps{1e9};
  EXPECT_EQ(os.str(), "42 1500 1e+09");
}

}  // namespace
}  // namespace silo
