// Regression tests for defects found while bringing the system up. Each
// test documents the failure mode it pins down.
#include <gtest/gtest.h>

#include "netcalc/curve.h"
#include "pacer/token_bucket.h"
#include "pacer/vm_pacer.h"
#include "placement/port_load.h"
#include "sim/cluster.h"
#include "sim/network.h"
#include "workload/drivers.h"

namespace silo {
namespace {

// A conformance query at a chained (future) time must not disturb the
// bucket: shared middle/bottom buckets otherwise inherit one
// destination's wait and serialize all destinations behind it.
TEST(Regression, TokenBucketConformanceIsPure) {
  pacer::TokenBucket tb(1 * kGbps, 15 * kKB);
  tb.consume(TimeNs{0}, 15 * kKB);  // empty at t=0
  const TimeNs far = tb.earliest_conformance(TimeNs{0}, 15 * kKB);
  EXPECT_GT(far, 100 * kUsec);
  // Querying for the far future must not change what a query "now" sees.
  const TimeNs near1 = tb.earliest_conformance(TimeNs{0}, Bytes{1500});
  (void)tb.earliest_conformance(1 * kSec, 15 * kKB);
  const TimeNs near2 = tb.earliest_conformance(TimeNs{0}, Bytes{1500});
  EXPECT_EQ(near1, near2);
  EXPECT_DOUBLE_EQ(tb.tokens(TimeNs{0}), tb.tokens(TimeNs{0}));
}

TEST(Regression, VmPacerPeekDoesNotConsume) {
  pacer::VmPacer pacer({1 * kGbps, 15 * kKB, TimeNs{0}, 1 * kGbps});
  const TimeNs p1 = pacer.peek(TimeNs{0}, 1, Bytes{1500});
  const TimeNs p2 = pacer.peek(TimeNs{0}, 1, Bytes{1500});
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(pacer.stamp(TimeNs{0}, 1, Bytes{1500}), p1);
}

// One slow destination must not starve the others: the host's release
// scheduler has to stay work-conserving across destination queues
// (release-order charging + round-robin tie breaking).
TEST(Regression, HostSchedulerIsFairAcrossDestinations) {
  sim::EventQueue ev;
  topology::TopologyConfig tc;
  tc.pods = 1;
  tc.racks_per_pod = 1;
  tc.servers_per_rack = 5;
  tc.vm_slots_per_server = 1;
  topology::Topology topo(tc);
  sim::Fabric fabric(ev, topo, sim::PortConfig{});
  std::int64_t recv[5] = {0, 0, 0, 0, 0};
  fabric.set_host_deliver([&](sim::PacketHandle h) {
    const sim::Packet& p = ev.pool().get(h);
    recv[p.dst_vm] += p.payload.count();
    ev.pool().free(h);
  });
  sim::Host::Config hc;
  hc.nic_mode = pacer::NicMode::kPacedVoid;
  sim::Host host(ev, fabric, 0, hc);
  pacer::VmPacer pacer({2 * kGbps, Bytes{1500}, TimeNs{0}, 2 * kGbps});
  host.attach_pacer(0, &pacer);
  for (int d = 1; d <= 3; ++d)
    pacer.set_destination_rate(TimeNs{0}, d, RateBps{2e9 / 3});

  // Continuous backlog toward three destinations.
  std::function<void()> refill = [&] {
    for (int d = 1; d <= 3; ++d) {
      for (int i = 0; i < 10; ++i) {
        sim::Packet p;
        p.id = 1;
        p.src_vm = 0;
        p.dst_vm = d;
        p.src_server = 0;
        p.dst_server = d;
        p.payload = Bytes{1460};
        p.wire_bytes = Bytes{1500};
        host.send(ev.pool().clone(p));
      }
    }
    if (ev.now() < 50 * kMsec) ev.after(100 * kUsec, refill);
  };
  ev.after(TimeNs{0}, refill);
  ev.run_until(50 * kMsec);

  const double total = static_cast<double>(recv[1] + recv[2] + recv[3]);
  EXPECT_GT(total * 8 / 50e-3 / 1e9, 1.7);  // aggregate near B = 2G
  for (int d = 1; d <= 3; ++d) {
    const double share = static_cast<double>(recv[d]) / total;
    EXPECT_NEAR(share, 1.0 / 3.0, 0.05) << "dst " << d;
  }
}

// Destination-rate coordination must address the buckets the data path
// stamps with (global VM ids), not tenant-local indices — a second
// tenant (vm_base > 0) would otherwise be coordinated into phantom
// buckets while real traffic ran unthrottled at the default rate.
TEST(Regression, SecondTenantHoseCoordinationUsesGlobalIds) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 5;
  cfg.topo.vm_slots_per_server = 1;  // force cross-server pairs
  cfg.scheme = sim::Scheme::kSilo;
  sim::ClusterSim cluster(cfg);

  TenantRequest first;  // occupies vm id 0 so tenant 2 has a base > 0
  first.num_vms = 1;
  first.guarantee = {100 * kMbps, Bytes{1500}, TimeNs{0}, 100 * kMbps};
  ASSERT_TRUE(cluster.add_tenant(first).has_value());

  TenantRequest second;
  second.num_vms = 4;
  second.guarantee = {400 * kMbps, Bytes{1500}, TimeNs{0}, 400 * kMbps};
  const auto t = cluster.add_tenant(second);
  ASSERT_TRUE(t.has_value());

  // Three senders blast VM 0 of tenant 2: receiver hose must cap the
  // aggregate near 400 Mbps (plus bounded slack), not 3x the default.
  workload::BulkDriver bulk(cluster, *t, {{1, 0}, {2, 0}, {3, 0}},
                            Bytes{128 * kKB});
  bulk.start(400 * kMsec);
  cluster.run_until(400 * kMsec);
  EXPECT_LT(bulk.goodput_bps() / 1e9, 0.5);
  EXPECT_GT(bulk.goodput_bps() / 1e9, 0.3);
}

// The O(1) admission fast path must agree with the full network-calculus
// analysis it replaces.
class QueueBoundParity : public ::testing::TestWithParam<int> {};

TEST_P(QueueBoundParity, ClosedFormMatchesCurveAnalysis) {
  const int k = GetParam();
  placement::PortLoad load;
  for (int i = 0; i < k; ++i) {
    placement::PortContribution c;
    c.rate_bps = 0.4e9 + 0.1e9 * i;
    c.burst_bytes = 20e3 * (i + 1);
    c.burst_rate_bps = 2e9;
    c.jump_bytes = 1500;
    load.add(c);
  }
  const RateBps service = 10 * kGbps;
  const TimeNs fast = load.queue_bound(service);
  const auto slow = netcalc::analyze_queue(
      load.arrival_curve(), netcalc::Curve::constant_rate(service));
  ASSERT_TRUE(slow.queue_bound.has_value());
  ASSERT_GE(fast, TimeNs{0});
  EXPECT_NEAR(static_cast<double>(fast),
              static_cast<double>(*slow.queue_bound),
              2.0 + 0.001 * static_cast<double>(*slow.queue_bound));
}

INSTANTIATE_TEST_SUITE_P(Loads, QueueBoundParity,
                         ::testing::Values(1, 2, 4, 6, 8));

TEST(Regression, QueueBoundOverloadReturnsNegative) {
  placement::PortLoad load;
  placement::PortContribution c;
  c.rate_bps = 11e9;
  c.burst_rate_bps = 11e9;
  load.add(c);
  EXPECT_EQ(load.queue_bound(10 * kGbps), TimeNs{-1});
}

TEST(Regression, ShiftedLeftSemantics) {
  const auto a =
      netcalc::Curve::rate_limited_burst(1 * kGbps, 100 * kKB, 10 * kGbps);
  const TimeNs delta = 30 * kUsec;
  const auto s = a.shifted_left(delta);
  for (TimeNs t : {TimeNs{0}, TimeNs{20 * kUsec}, TimeNs{57 * kUsec},
                   TimeNs{500 * kUsec}}) {
    EXPECT_NEAR(s.value(t), a.value(t + delta), 1.0) << t;
  }
  // Shift by zero (or on the zero curve) is the identity.
  EXPECT_NEAR(a.shifted_left(TimeNs{0}).value(kUsec), a.value(kUsec), 1e-9);
  EXPECT_TRUE(netcalc::Curve{}.shifted_left(delta).is_zero());
}

TEST(Regression, SustainedInterceptIsTokenBucketBurst) {
  const auto a =
      netcalc::Curve::rate_limited_burst(1 * kGbps, 100 * kKB, 10 * kGbps);
  EXPECT_NEAR(a.sustained_intercept(), 100e3, 20.0);
  const auto tb = netcalc::Curve::token_bucket(2 * kGbps, 5 * kKB);
  EXPECT_NEAR(tb.sustained_intercept(), 5e3, 1e-6);
}

}  // namespace
}  // namespace silo
