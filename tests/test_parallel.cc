// Deterministic parallel execution: partition invariants, the zero-
// lookahead edge case, and the determinism matrix — the same scenario run
// sequentially, under the parallel engine's serial fallback, and under the
// threaded executor at 1/2/4/8 threads must produce bit-identical delivery
// traces and merged metrics. See DESIGN.md "Parallel execution &
// conservative synchronization".
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "par/thread_executor.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "sim/parallel.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

namespace silo {
namespace {

using sim::IslandPartition;

topology::TopologyConfig two_pod_topo() {
  topology::TopologyConfig t;
  t.pods = 2;
  t.racks_per_pod = 2;
  t.servers_per_rack = 4;
  t.vm_slots_per_server = 2;
  return t;
}

// ------------------------------------------------------ partition builder

TEST(IslandPartition, TenantRacksShareOneIsland) {
  const topology::Topology topo(two_pod_topo());
  // Tenant 0 spans racks 0 and 2 (across pods); tenant 1 lives in rack 1.
  const auto part = IslandPartition::build(topo, TimeNs{500},
                                           {{0, 8}, {4, 5}});
  EXPECT_EQ(part.rack_island[0], part.rack_island[2]);
  EXPECT_NE(part.rack_island[0], part.rack_island[1]);
  EXPECT_EQ(part.tenant_island[0], part.rack_island[0]);
  EXPECT_EQ(part.tenant_island[1], part.rack_island[1]);
  // Rack-level queues belong to their rack's island.
  EXPECT_EQ(part.port_island[static_cast<std::size_t>(topo.rack_up(1).value)],
            part.rack_island[1]);
  EXPECT_EQ(
      part.port_island[static_cast<std::size_t>(topo.server_down(4).value)],
      part.rack_island[1]);
}

TEST(IslandPartition, SharedPodQueuesBecomeDedicatedIslands) {
  const topology::Topology topo(two_pod_topo());
  // Two pod-spanning tenants from different rack groups: both send through
  // pod 0's and pod 1's aggregation queues, so those become their own
  // islands and every crossing has positive lookahead.
  const auto part = IslandPartition::build(topo, TimeNs{500},
                                           {{0, 8}, {4, 12}});
  const int a = part.tenant_island[0];
  const int b = part.tenant_island[1];
  EXPECT_NE(a, b);
  const int up0 = part.port_island[static_cast<std::size_t>(topo.pod_up(0).value)];
  EXPECT_NE(up0, a);
  EXPECT_NE(up0, b);
  EXPECT_EQ(part.num_islands, 6);  // 2 rack groups + 4 pod queues
  EXPECT_GT(part.crossing_edges, 0);
  EXPECT_EQ(part.merged_zero_latency, 0);
  // All six islands exchange traffic: one component, lookahead = the link.
  EXPECT_EQ(part.num_components, 1);
  EXPECT_EQ(part.component_lookahead[0], TimeNs{500});
}

TEST(IslandPartition, RackLocalTenantsAreIsolatedComponents) {
  const topology::Topology topo(two_pod_topo());
  const auto part = IslandPartition::build(topo, TimeNs{500},
                                           {{0, 1}, {4, 5}, {8, 9}});
  // No pod-spanning tenant: no crossings, every island runs to the
  // deadline unconstrained (infinite lookahead).
  EXPECT_EQ(part.crossing_edges, 0);
  EXPECT_EQ(part.num_components, part.num_islands);
  for (const TimeNs la : part.component_lookahead)
    EXPECT_EQ(la, sim::kTimeInfinity);
}

TEST(IslandPartition, ZeroLookaheadCrossingsAreMergedAway) {
  const topology::Topology topo(two_pod_topo());
  // Degenerate 0 ns fabric: a conservative window can never advance past a
  // zero-latency crossing, so the would-be neighbors are merged at build
  // time instead — the deadlock/livelock case is unrepresentable.
  const auto part = IslandPartition::build(topo, TimeNs{0},
                                           {{0, 8}, {4, 12}});
  EXPECT_GT(part.merged_zero_latency, 0);
  EXPECT_EQ(part.crossing_edges, 0);
  EXPECT_EQ(part.tenant_island[0], part.tenant_island[1]);
}

// -------------------------------------------------- determinism scenarios

struct Outcome {
  std::uint64_t delivery_checksum = 0;
  std::uint64_t island_checksum = 0;
  std::int64_t deliveries = 0;
  std::int64_t ties = 0;
  std::int64_t rounds = 0;
  int islands = 0;
  std::int64_t completed = 0;
  std::vector<obs::MetricSample> metrics;
};

/// threads == -1: classic sequential engine. threads == 0: parallel engine,
/// serial fallback. threads >= 1: parallel engine, thread-pool executor.
Outcome run_flap_scenario(int threads) {
  sim::ClusterConfig cfg;
  cfg.topo = two_pod_topo();
  cfg.scheme = sim::Scheme::kSilo;
  cfg.tcp.min_rto = 2 * kMsec;
  cfg.parallel.enabled = threads >= 0;
  sim::ClusterSim cluster(cfg);
  std::unique_ptr<par::ThreadPoolExecutor> pool;
  if (threads >= 1) {
    pool = std::make_unique<par::ThreadPoolExecutor>(threads);
    cluster.set_island_executor(pool.get());
  }
  cluster.enable_delivery_trace();

  const auto ds = [] {
    TenantRequest r;
    r.num_vms = 2;
    r.tenant_class = TenantClass::kDelaySensitive;
    r.guarantee = {RateBps{0.3e9}, 15 * kKB, 1 * kMsec, 1 * kGbps};
    return r;
  }();
  const auto bulk = [] {
    TenantRequest r;
    r.num_vms = 2;
    r.tenant_class = TenantClass::kBandwidthOnly;
    r.guarantee = {RateBps{1e9}, Bytes{1500}, TimeNs{0}, RateBps{1e9}};
    return r;
  }();
  // Two pod-spanning tenants (cross-island traffic through the shared pod
  // queues) and two rack-local ones (island-internal load).
  const int ta = cluster.add_tenant_pinned(ds, {0, 8});
  const int tb = cluster.add_tenant_pinned(ds, {4, 12});
  const int tc = cluster.add_tenant_pinned(bulk, {1, 2});
  const int td = cluster.add_tenant_pinned(bulk, {5, 6});

  workload::RetryPolicy rp;
  rp.enabled = true;
  workload::PoissonMessageDriver pa(cluster, ta, 0, 1, 4000, 15 * kKB, 11);
  workload::PoissonMessageDriver pb(cluster, tb, 0, 1, 4000, 15 * kKB, 12);
  workload::BulkDriver bc(cluster, tc, workload::all_to_all(2), 64 * kKB, 13);
  workload::BulkDriver bd(cluster, td, workload::all_to_all(2), 64 * kKB, 14);
  pa.set_retry(rp);
  pb.set_retry(rp);
  bc.set_retry(rp);
  bd.set_retry(rp);
  pa.start(30 * kMsec);
  pb.start(30 * kMsec);
  bc.start(30 * kMsec);
  bd.start(30 * kMsec);

  // The satellite fault scenario: flap rack 0's ToR uplink mid-run. The
  // downed link kills tenant A's cross-pod traffic; retries recover it.
  sim::FaultPlan plan;
  plan.link_flap(10 * kMsec, cluster.topo().rack_up(0), 8 * kMsec);
  sim::FaultInjector chaos(cluster, plan);
  chaos.arm();

  cluster.run_until(60 * kMsec);

  Outcome out;
  out.delivery_checksum = cluster.delivery_trace_checksum();
  out.island_checksum = cluster.island_trace_checksum();
  out.deliveries = cluster.delivery_trace_size();
  out.ties = cluster.cross_tie_collisions();
  out.rounds = cluster.parallel_rounds();
  out.islands = cluster.num_islands();
  out.completed = cluster.total_completed_messages();
  out.metrics = cluster.merged_metrics();
  return out;
}

/// Churn-storm-sized scenario: every rack also runs local all-to-all bulk
/// while both pod-spanning tenants stream, unpaced TCP this time.
Outcome run_storm_scenario(int threads) {
  sim::ClusterConfig cfg;
  cfg.topo = two_pod_topo();
  cfg.scheme = sim::Scheme::kTcp;
  cfg.tcp.min_rto = 10 * kMsec;
  cfg.parallel.enabled = threads >= 0;
  sim::ClusterSim cluster(cfg);
  std::unique_ptr<par::ThreadPoolExecutor> pool;
  if (threads >= 1) {
    pool = std::make_unique<par::ThreadPoolExecutor>(threads);
    cluster.set_island_executor(pool.get());
  }
  cluster.enable_delivery_trace();

  TenantRequest quad;
  quad.num_vms = 4;
  quad.tenant_class = TenantClass::kBandwidthOnly;
  quad.guarantee = {RateBps{1e9}, Bytes{1500}, TimeNs{0}, RateBps{1e9}};
  std::vector<std::unique_ptr<workload::BulkDriver>> drivers;
  // One all-to-all tenant per rack...
  for (int r = 0; r < 4; ++r) {
    const int base = r * 4;
    const int t = cluster.add_tenant_pinned(
        quad, {base, base + 1, base + 2, base + 3});
    drivers.push_back(std::make_unique<workload::BulkDriver>(
        cluster, t, workload::all_to_all(4), 64 * kKB,
        static_cast<std::uint64_t>(20 + r)));
  }
  // ...plus two pod-spanning tenants sharing the aggregation queues. One
  // saturating bulk stream and one Poisson message source: two identical
  // streams started together phase-lock on the batch-windowed NICs and
  // land same-ns arrivals in the shared pod queues (cross-island ties);
  // exponential inter-arrivals land off the other stream's MTU grid, so
  // the scenario stays tie-free and the matrix can assert ties == 0.
  TenantRequest pair = quad;
  pair.num_vms = 2;
  const int tx = cluster.add_tenant_pinned(pair, {3, 11});
  const int ty = cluster.add_tenant_pinned(pair, {7, 15});
  drivers.push_back(std::make_unique<workload::BulkDriver>(
      cluster, tx, workload::all_to_all(2), 64 * kKB, 30));
  workload::PoissonMessageDriver dy(cluster, ty, 0, 1, 3000, 15 * kKB, 31);
  for (auto& d : drivers) d->start(25 * kMsec);
  dy.start(25 * kMsec);

  cluster.run_until(40 * kMsec);

  Outcome out;
  out.delivery_checksum = cluster.delivery_trace_checksum();
  out.island_checksum = cluster.island_trace_checksum();
  out.deliveries = cluster.delivery_trace_size();
  out.ties = cluster.cross_tie_collisions();
  out.rounds = cluster.parallel_rounds();
  out.islands = cluster.num_islands();
  out.completed = cluster.total_completed_messages();
  out.metrics = cluster.merged_metrics();
  return out;
}

/// exact_hist_sum: histogram sums are double accumulators, so a merged
/// multi-island snapshot matches a sequential one only up to fp addition
/// order; across parallel runs of the same partition they are bit-equal.
///
/// skip_boundary_samples: under equal-rate store-and-forward links a cross-
/// island arrival can land at the exact nanosecond the destination port's
/// in-flight packet finishes transmitting. Enqueue-before-tx-done and
/// tx-done-before-enqueue commute for FIFO delivery (the delivery trace is
/// bit-identical either way) but the enqueue-side queue-depth *sample* sees
/// the departing packet or not. The sequential engine orders the pair by
/// global schedule seq, which a mailbox re-injection cannot reproduce, so a
/// saturating scenario compares queue-depth sample metrics only among
/// parallel runs (where they are bit-equal) and skips them vs sequential.
void expect_metrics_equal(const std::vector<obs::MetricSample>& a,
                          const std::vector<obs::MetricSample>& b,
                          bool exact_hist_sum = true,
                          bool skip_boundary_samples = false) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    if (skip_boundary_samples &&
        a[i].name.find("queue_bytes") != std::string::npos)
      continue;
    EXPECT_EQ(a[i].value, b[i].value) << a[i].name;
    ASSERT_EQ(a[i].hist.has_value(), b[i].hist.has_value()) << a[i].name;
    if (a[i].hist) {
      EXPECT_EQ(a[i].hist->counts, b[i].hist->counts) << a[i].name;
      if (exact_hist_sum)
        EXPECT_EQ(a[i].hist->sum, b[i].hist->sum) << a[i].name;
      else
        EXPECT_NEAR(a[i].hist->sum, b[i].hist->sum,
                    1e-9 * (1.0 + std::abs(a[i].hist->sum)))
            << a[i].name;
    }
  }
}

// The tentpole acceptance test. Baseline: the classic single-queue engine.
// Every parallel run — serial fallback and thread pool at 1/2/4/8 — must
// reproduce its delivery trace bit-for-bit, agree on the merged metric
// snapshot, and never hit a cross-island tie (which certifies the checksum
// equality is structural, not a lucky tie-break).
TEST(ParallelDeterminism, FlapMatrixBitIdenticalAcrossThreadCounts) {
  const Outcome seq = run_flap_scenario(-1);
  ASSERT_GT(seq.deliveries, 1000);
  EXPECT_GT(seq.completed, 0);

  const Outcome serial = run_flap_scenario(0);
  EXPECT_EQ(serial.islands, 6);
  EXPECT_GT(serial.rounds, 0);
  EXPECT_EQ(serial.ties, 0);
  EXPECT_EQ(serial.delivery_checksum, seq.delivery_checksum);
  EXPECT_EQ(serial.deliveries, seq.deliveries);
  EXPECT_EQ(serial.completed, seq.completed);
  expect_metrics_equal(serial.metrics, seq.metrics, /*exact_hist_sum=*/false);

  for (const int threads : {1, 2, 4, 8}) {
    const Outcome par = run_flap_scenario(threads);
    EXPECT_EQ(par.delivery_checksum, seq.delivery_checksum) << threads;
    EXPECT_EQ(par.island_checksum, serial.island_checksum) << threads;
    EXPECT_EQ(par.deliveries, seq.deliveries) << threads;
    EXPECT_EQ(par.rounds, serial.rounds) << threads;
    EXPECT_EQ(par.ties, 0) << threads;
    EXPECT_EQ(par.completed, seq.completed) << threads;
    expect_metrics_equal(par.metrics, serial.metrics);
  }
}

TEST(ParallelDeterminism, StormMatrixBitIdenticalAcrossThreadCounts) {
  const Outcome seq = run_storm_scenario(-1);
  ASSERT_GT(seq.deliveries, 1000);

  const Outcome serial = run_storm_scenario(0);
  EXPECT_EQ(serial.islands, 6);
  EXPECT_EQ(serial.ties, 0);
  EXPECT_EQ(serial.delivery_checksum, seq.delivery_checksum);
  EXPECT_EQ(serial.deliveries, seq.deliveries);
  // Saturated equal-rate links: same-ns boundary coincidences shift a few
  // queue-depth samples vs the sequential engine (see expect_metrics_equal);
  // everything else, including the full delivery trace, matches exactly.
  expect_metrics_equal(serial.metrics, seq.metrics, /*exact_hist_sum=*/false,
                       /*skip_boundary_samples=*/true);

  for (const int threads : {1, 2, 4, 8}) {
    const Outcome par = run_storm_scenario(threads);
    EXPECT_EQ(par.delivery_checksum, seq.delivery_checksum) << threads;
    EXPECT_EQ(par.island_checksum, serial.island_checksum) << threads;
    EXPECT_EQ(par.rounds, serial.rounds) << threads;
    EXPECT_EQ(par.ties, 0) << threads;
    expect_metrics_equal(par.metrics, serial.metrics);
  }
}

// Zero-lookahead regression (satellite): a 0 ns fabric merges the would-be
// neighbors into one island, and the run terminates with the sequential
// engine's exact trace instead of deadlocking or livelocking.
TEST(ParallelDeterminism, ZeroLatencyFabricRunsToCompletion) {
  const auto run = [](bool parallel) {
    sim::ClusterConfig cfg;
    cfg.topo = two_pod_topo();
    cfg.scheme = sim::Scheme::kTcp;
    cfg.link_delay = TimeNs{0};
    cfg.parallel.enabled = parallel;
    sim::ClusterSim cluster(cfg);
    cluster.enable_delivery_trace();
    TenantRequest r;
    r.num_vms = 2;
    r.tenant_class = TenantClass::kBandwidthOnly;
    r.guarantee = {RateBps{1e9}, Bytes{1500}, TimeNs{0}, RateBps{1e9}};
    const int ta = cluster.add_tenant_pinned(r, {0, 8});
    const int tb = cluster.add_tenant_pinned(r, {4, 12});
    workload::BulkDriver da(cluster, ta, workload::all_to_all(2), 64 * kKB, 5);
    workload::BulkDriver db(cluster, tb, workload::all_to_all(2), 64 * kKB, 6);
    da.start(5 * kMsec);
    db.start(5 * kMsec);
    cluster.run_until(10 * kMsec);
    return std::pair<std::uint64_t, std::int64_t>{
        cluster.delivery_trace_checksum(), cluster.delivery_trace_size()};
  };
  const auto seq = run(false);
  const auto par = run(true);
  ASSERT_GT(seq.second, 100);
  EXPECT_EQ(par.first, seq.first);
  EXPECT_EQ(par.second, seq.second);
}

// Sequential-only surfaces must refuse loudly in parallel mode instead of
// silently racing: the single-queue accessor, the unsharded registry, the
// debug tap, controller deltas, lending, loss-rate fault windows, and
// post-materialization admission.
TEST(ParallelMode, SequentialOnlySurfacesThrow) {
  sim::ClusterConfig cfg;
  cfg.topo = two_pod_topo();
  cfg.parallel.enabled = true;
  sim::ClusterSim cluster(cfg);
  EXPECT_THROW(cluster.events(), std::logic_error);
  EXPECT_THROW(cluster.metrics(), std::logic_error);
  EXPECT_THROW(cluster.set_packet_tap([](const sim::Packet&) {}),
               std::logic_error);
  EXPECT_THROW(cluster.apply_config_deltas({}), std::logic_error);
  EXPECT_THROW(cluster.enable_flight_recorder(64), std::logic_error);

  sim::FaultPlan loss;
  loss.loss_window(kMsec, 2 * kMsec, cluster.topo().rack_up(0), 0.1);
  sim::FaultInjector chaos(cluster, loss);
  EXPECT_THROW(chaos.arm(), std::logic_error);

  sim::ClusterConfig lend = cfg;
  lend.lending.enabled = true;
  EXPECT_THROW(sim::ClusterSim{lend}, std::invalid_argument);

  TenantRequest r;
  r.num_vms = 2;
  r.tenant_class = TenantClass::kBandwidthOnly;
  r.guarantee = {RateBps{1e9}, Bytes{1500}, TimeNs{0}, RateBps{1e9}};
  cluster.add_tenant_pinned(r, {0, 1});
  cluster.run_until(kMsec);  // materializes the partition
  EXPECT_THROW(cluster.add_tenant_pinned(r, {4, 5}), std::logic_error);
}

// The thread-pool executor itself: all indices run exactly once, the
// return is a barrier, and a throwing body surfaces deterministically
// (lowest index) without wedging the pool.
TEST(ThreadPoolExecutor, RunsAllAndRethrowsLowestIndex) {
  par::ThreadPoolExecutor pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<int> hits(64, 0);
  pool.parallel_for(64, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);

  try {
    pool.parallel_for(8, [](int i) {
      if (i == 3 || i == 6) throw std::runtime_error("island " + std::to_string(i));
    });
    FAIL() << "expected the island exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "island 3");
  }
  // The pool survives: the next round still runs everything.
  std::vector<int> again(16, 0);
  pool.parallel_for(16, [&](int i) { again[static_cast<std::size_t>(i)]++; });
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(again[static_cast<std::size_t>(i)], 1);
}

}  // namespace
}  // namespace silo
