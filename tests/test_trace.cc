#include <gtest/gtest.h>

#include "sim/trace.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

namespace silo::sim {
namespace {

ClusterConfig tiny(Scheme scheme) {
  ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 4;
  cfg.topo.vm_slots_per_server = 2;
  cfg.topo.oversubscription = 1.0;
  cfg.scheme = scheme;
  return cfg;
}

TEST(Trace, SamplesAtFixedPeriod) {
  ClusterSim sim(tiny(Scheme::kTcp));
  PortTracer tracer(sim, sim.topo().server_down(0), 100 * kUsec);
  tracer.start(1 * kMsec);
  sim.run_until(2 * kMsec);
  ASSERT_EQ(tracer.samples().size(), 11u);  // t = 0, 100us, ..., 1ms
  for (std::size_t i = 1; i < tracer.samples().size(); ++i)
    EXPECT_EQ(tracer.samples()[i].at - tracer.samples()[i - 1].at, 100 * kUsec);
}

TEST(Trace, IdleFabricShowsEmptyQueues) {
  ClusterSim sim(tiny(Scheme::kTcp));
  FabricTracer tracer(sim, 50 * kUsec);
  tracer.start(1 * kMsec);
  sim.run_until(2 * kMsec);
  EXPECT_EQ(tracer.max_queued_anywhere(), Bytes{0});
}

TEST(Trace, BulkTrafficBuildsQueuesUnderTcpNotSilo) {
  auto run = [&](Scheme scheme) {
    ClusterSim sim(tiny(scheme));
    TenantRequest req;
    req.num_vms = 8;
    req.tenant_class = TenantClass::kBandwidthOnly;
    req.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
    auto t = sim.add_tenant(req);
    EXPECT_TRUE(t.has_value());
    workload::BulkDriver bulk(sim, *t, workload::all_to_all(8),
                              Bytes{128 * kKB});
    FabricTracer tracer(sim, 50 * kUsec);
    bulk.start(100 * kMsec);
    tracer.start(100 * kMsec);
    sim.run_until(100 * kMsec);
    return tracer.max_queued_anywhere();
  };
  const Bytes tcp_q = run(Scheme::kTcp);
  const Bytes silo_q = run(Scheme::kSilo);
  // Unpaced TCP fills shallow buffers; Silo's pacing keeps fabric queues
  // a couple of orders of magnitude smaller.
  EXPECT_GT(tcp_q, 100 * kKB);
  EXPECT_LT(silo_q, tcp_q / 10);
}

TEST(Trace, HottestPortsSortedDescending) {
  ClusterSim sim(tiny(Scheme::kTcp));
  TenantRequest req;
  req.num_vms = 4;
  req.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, RateBps{0}};
  auto t = sim.add_tenant(req);
  ASSERT_TRUE(t.has_value());
  workload::BulkDriver bulk(sim, *t, {{0, 2}, {1, 2}, {3, 2}},
                            Bytes{128 * kKB});
  FabricTracer tracer(sim, 50 * kUsec);
  bulk.start(50 * kMsec);
  tracer.start(50 * kMsec);
  sim.run_until(50 * kMsec);
  const auto hot = tracer.hottest_ports(3);
  ASSERT_EQ(hot.size(), 3u);
  EXPECT_GE(hot[0].second, hot[1].second);
  EXPECT_GE(hot[1].second, hot[2].second);
  EXPECT_GT(hot[0].second, Bytes{0});
}

}  // namespace
}  // namespace silo::sim
