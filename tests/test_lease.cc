// Work-conserving lease tests (docs/WORKCONSERVING.md): lease-table
// semantics (epoch-bounded expiry, benign-vs-stale remove accounting,
// checksum separation), the VmPacer lease overlay, the HeadroomLender
// policy, controller grant/revoke/expiry with crash recovery (replay must
// not resurrect expired leases), lossy-channel delivery gaps, and the
// ClusterSim end-to-end lend/reclaim loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "core/controller.h"
#include "core/journal.h"
#include "pacer/headroom_lender.h"
#include "pacer/pacer_config.h"
#include "pacer/vm_pacer.h"
#include "sim/cluster.h"
#include "sim/control_channel.h"

namespace silo {
namespace {

topology::TopologyConfig tiny_dc() {
  topology::TopologyConfig cfg;
  cfg.pods = 1;
  cfg.racks_per_pod = 1;
  cfg.servers_per_rack = 2;
  cfg.vm_slots_per_server = 4;
  return cfg;
}

TenantRequest guaranteed_request(int vms) {
  TenantRequest req;
  req.num_vms = vms;
  req.tenant_class = TenantClass::kBandwidthOnly;
  req.guarantee = {500 * kMbps, Bytes{15 * kKB}, TimeNs{0}, 1 * kGbps};
  return req;
}

PacerLeaseRecord make_lease(std::uint64_t id, std::uint64_t expiry) {
  PacerLeaseRecord l;
  l.id = id;
  l.owner = 0;
  l.borrower = 1;
  l.vm_index = 0;
  l.server = 0;
  l.rate = 100 * kMbps;
  l.issued_epoch = 0;
  l.expiry_epoch = expiry;
  return l;
}

/// Borrower VM index + shared server for a lease between two placed
/// tenants, if any pair of their VMs is colocated.
struct ColoPair {
  int borrower_vm = -1;
  int server = -1;
};
std::optional<ColoPair> colocated(const TenantHandle& owner,
                                  const TenantHandle& borrower) {
  for (std::size_t v = 0; v < borrower.vm_to_server.size(); ++v) {
    const int s = borrower.vm_to_server[v];
    if (std::find(owner.vm_to_server.begin(), owner.vm_to_server.end(), s) !=
        owner.vm_to_server.end())
      return ColoPair{static_cast<int>(v), s};
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Lease table semantics

TEST(LeaseTable, EpochBoundedExpiryAndRemoveClassification) {
  PacerConfigTable table;
  PacerConfigDelta grant;
  grant.server = 0;
  grant.lease_upserts.push_back(make_lease(1, /*expiry=*/2));
  const auto r0 = table.apply(grant);
  EXPECT_EQ(r0.lease_expired, 0);
  EXPECT_EQ(table.lease_count(), 1u);

  // The server's own clock kills the lease at its expiry epoch.
  const auto died = table.advance_epoch(2);
  ASSERT_EQ(died.size(), 1u);
  EXPECT_EQ(died[0].id, 1u);
  EXPECT_EQ(table.lease_count(), 0u);

  // A late revoke for the just-expired lease is benign, not stale.
  PacerConfigDelta late;
  late.server = 0;
  late.lease_removes.push_back(1);
  const auto r1 = table.apply(late);
  EXPECT_EQ(r1.lease_expired, 1);
  EXPECT_EQ(r1.stale_removes, 0);

  // A remove for a lease that never existed is a real protocol stale.
  PacerConfigDelta bogus;
  bogus.server = 0;
  bogus.lease_removes.push_back(99);
  const auto r2 = table.apply(bogus);
  EXPECT_EQ(r2.lease_expired, 0);
  EXPECT_EQ(r2.stale_removes, 1);

  // A grant that arrives after its own expiry is dead on arrival.
  PacerConfigDelta doa;
  doa.server = 0;
  doa.lease_upserts.push_back(make_lease(2, /*expiry=*/1));
  const auto r3 = table.apply(doa);
  EXPECT_EQ(r3.lease_expired, 1);
  EXPECT_EQ(table.lease_count(), 0u);
}

TEST(LeaseTable, LeasesAreExcludedFromConfigChecksum) {
  PacerConfigTable table;
  PacerConfigDelta cfg;
  cfg.server = 0;
  PacerConfigRecord rec;
  rec.tenant = 0;
  rec.vm_index = 0;
  rec.server = 0;
  rec.guarantee = {300 * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  cfg.upserts.push_back(rec);
  table.apply(cfg);

  const auto config_sum = pacer_config_checksum(table.records());
  const auto lease_sum = table.lease_checksum();
  PacerConfigDelta grant;
  grant.server = 0;
  grant.lease_upserts.push_back(make_lease(1, /*expiry=*/5));
  table.apply(grant);

  // Anti-entropy compares config checksums; leases must never perturb
  // them (lease divergence self-heals by epoch expiry instead).
  EXPECT_EQ(pacer_config_checksum(table.records()), config_sum);
  EXPECT_NE(table.lease_checksum(), lease_sum);
}

TEST(LeaseTable, DeltaEpochAdvancesClockMonotonically) {
  PacerConfigTable table;
  PacerConfigDelta grant;
  grant.server = 0;
  grant.lease_epoch = 3;
  grant.lease_upserts.push_back(make_lease(1, /*expiry=*/5));
  table.apply(grant);
  EXPECT_EQ(table.epoch(), 3u);

  PacerConfigDelta stale;
  stale.server = 0;
  stale.lease_epoch = 2;  // out-of-order delivery must not rewind the clock
  table.apply(stale);
  EXPECT_EQ(table.epoch(), 3u);

  PacerConfigDelta heartbeat;
  heartbeat.server = 0;
  heartbeat.lease_epoch = 5;
  table.apply(heartbeat);
  EXPECT_EQ(table.epoch(), 5u);
  EXPECT_EQ(table.lease_count(), 0u);  // expired by the epoch stamp alone
}

// ---------------------------------------------------------------------------
// VmPacer lease overlay

TEST(LeasePacer, OverlayRaisesHoseRateAndRestoresExactly) {
  SiloGuarantee g{1 * kGbps, Bytes{1500}, TimeNs{0}, 2 * kGbps};
  pacer::VmPacer p(g, Bytes{1500});
  EXPECT_EQ(p.hose_rate(), 1 * kGbps);

  // Conformance times ceil to the next ns, hence the 2 ns slack.
  const TimeNs t0 = p.stamp(TimeNs{0}, 1, Bytes{1500});
  const TimeNs t1 = p.stamp(TimeNs{0}, 1, Bytes{1500});
  EXPECT_NEAR((t1 - t0).count(), 12000, 2);  // 1500 B at 1 Gbps

  p.set_lease_rate(t1, 1 * kGbps);
  EXPECT_EQ(p.hose_rate(), 2 * kGbps);
  const TimeNs t2 = p.stamp(t1, 1, Bytes{1500});
  const TimeNs t3 = p.stamp(t1, 1, Bytes{1500});
  EXPECT_NEAR((t3 - t2).count(), 6000, 2);  // 1500 B at the leased 2 Gbps

  p.set_lease_rate(t3, RateBps{0});
  EXPECT_EQ(p.hose_rate(), 1 * kGbps);
  const TimeNs t4 = p.stamp(t3, 1, Bytes{1500});
  const TimeNs t5 = p.stamp(t3, 1, Bytes{1500});
  EXPECT_NEAR((t5 - t4).count(), 12000, 2);  // back to the admitted curve

  EXPECT_EQ(p.take_stamped_bytes(), Bytes{6 * 1500});
  EXPECT_EQ(p.take_stamped_bytes(), Bytes{0});  // reading clears
}

// ---------------------------------------------------------------------------
// HeadroomLender policy

pacer::LenderVmStats vm_stats(std::int64_t tenant, int vm, int server,
                              RateBps reserved, Bytes sent, Bytes backlog,
                              Bytes tenant_backlog) {
  pacer::LenderVmStats s;
  s.tenant = tenant;
  s.vm_index = vm;
  s.server = server;
  s.reserved = reserved;
  s.guaranteed = true;
  s.sent = sent;
  s.backlog = backlog;
  s.tenant_backlog = tenant_backlog;
  return s;
}

TEST(Lender, LendsIdleReservationAndReclaimsOnOwnerReturn) {
  pacer::LenderConfig lc;
  lc.idle_fraction = 0.1;
  lc.lend_fraction = 0.8;
  lc.min_lease_rate = 10 * kMbps;
  pacer::HeadroomLender lender(lc);
  const TimeNs epoch = 1 * kMsec;

  std::vector<pacer::LenderVmStats> stats = {
      vm_stats(0, 0, 0, 1 * kGbps, Bytes{0}, Bytes{0}, Bytes{0}),  // idle
      vm_stats(1, 0, 0, 500 * kMbps, 60 * kKB, 1 * kMB, 1 * kMB),  // busy
  };
  const auto d0 = lender.evaluate(epoch, stats, {});
  ASSERT_EQ(d0.upserts.size(), 1u);
  EXPECT_EQ(d0.upserts[0].id, 0u);  // new grant: issuer assigns the id
  EXPECT_EQ(d0.upserts[0].owner, 0);
  EXPECT_EQ(d0.upserts[0].borrower, 1);
  EXPECT_EQ(d0.upserts[0].rate, (1 * kGbps) * 0.8);
  EXPECT_TRUE(d0.revokes.empty());

  // Same picture with the lease live: renewal re-upserts the same id.
  auto live = d0.upserts[0];
  live.id = 7;
  const auto d1 = lender.evaluate(epoch, stats, {live});
  ASSERT_EQ(d1.upserts.size(), 1u);
  EXPECT_EQ(d1.upserts[0].id, 7u);
  EXPECT_TRUE(d1.revokes.empty());

  // Owner demand returns: the lease is revoked, not renewed — the
  // one-epoch reclamation bound of the safety argument.
  stats[0].backlog = 500 * kKB;
  stats[0].tenant_backlog = 500 * kKB;
  const auto d2 = lender.evaluate(epoch, stats, {live});
  EXPECT_TRUE(d2.upserts.empty());
  ASSERT_EQ(d2.revokes.size(), 1u);
  EXPECT_EQ(d2.revokes[0], 7u);
}

TEST(Lender, SplitsAcrossBorrowersAndEnforcesMinRate) {
  pacer::LenderConfig lc;
  lc.idle_fraction = 0.1;
  lc.lend_fraction = 0.8;
  lc.min_lease_rate = 500 * kMbps;
  pacer::HeadroomLender lender(lc);
  const TimeNs epoch = 1 * kMsec;

  const std::vector<pacer::LenderVmStats> stats = {
      vm_stats(0, 0, 0, 1 * kGbps, Bytes{0}, Bytes{0}, Bytes{0}),
      vm_stats(1, 0, 0, 500 * kMbps, 60 * kKB, 1 * kMB, 1 * kMB),
      vm_stats(2, 0, 0, 500 * kMbps, 60 * kKB, 1 * kMB, 1 * kMB),
  };
  // 800 Mbps split two ways = 400 Mbps each, below the 500 Mbps floor:
  // no leases at all rather than two token ones.
  EXPECT_TRUE(lender.evaluate(epoch, stats, {}).upserts.empty());

  pacer::LenderConfig low = lc;
  low.min_lease_rate = 100 * kMbps;
  const auto d = pacer::HeadroomLender(low).evaluate(epoch, stats, {});
  ASSERT_EQ(d.upserts.size(), 2u);
  EXPECT_EQ(d.upserts[0].rate, (1 * kGbps) * 0.4);
  EXPECT_EQ(d.upserts[1].rate, (1 * kGbps) * 0.4);
  EXPECT_NE(d.upserts[0].borrower, d.upserts[1].borrower);
}

TEST(Lender, NeverLendsFromBusyBestEffortOrSameTenant) {
  pacer::LenderConfig lc;
  lc.min_lease_rate = 10 * kMbps;
  pacer::HeadroomLender lender(lc);
  const TimeNs epoch = 1 * kMsec;

  // Busy owner: over the idle send threshold even with no backlog.
  std::vector<pacer::LenderVmStats> stats = {
      vm_stats(0, 0, 0, 1 * kGbps, 60 * kKB, Bytes{0}, Bytes{0}),
      vm_stats(1, 0, 0, 500 * kMbps, 60 * kKB, 1 * kMB, 1 * kMB),
  };
  EXPECT_TRUE(lender.evaluate(epoch, stats, {}).upserts.empty());

  // Unguaranteed reservation is not lendable.
  stats[0].sent = Bytes{0};
  stats[0].guaranteed = false;
  EXPECT_TRUE(lender.evaluate(epoch, stats, {}).upserts.empty());

  // An idle VM of the borrower's own tenant adds nothing (a tenant cannot
  // exceed its own hose by lending to itself).
  stats[0].guaranteed = true;
  stats[0].tenant = 1;
  EXPECT_TRUE(lender.evaluate(epoch, stats, {}).upserts.empty());
}

// ---------------------------------------------------------------------------
// Controller: grant/revoke/expiry, journaling, crash recovery

TEST(LeaseController, GrantValidatesAndReleaseRevokes) {
  SiloController ctl(tiny_dc());
  const auto owner = ctl.admit(guaranteed_request(2));
  const auto borrower = ctl.admit(guaranteed_request(2));
  ASSERT_TRUE(owner && borrower);
  const auto colo = colocated(*owner, *borrower);
  ASSERT_TRUE(colo.has_value());
  ctl.drain_config_deltas();

  // Invalid grants are rejected and journal-safe: owner == borrower,
  // non-positive rate, rate above the owner's reservation.
  EXPECT_FALSE(ctl.grant_lease(owner->id, owner->id, 0, 100 * kMbps));
  EXPECT_FALSE(
      ctl.grant_lease(owner->id, borrower->id, colo->borrower_vm, RateBps{0}));
  EXPECT_FALSE(
      ctl.grant_lease(owner->id, borrower->id, colo->borrower_vm, 2 * kGbps));

  const auto id = ctl.grant_lease(owner->id, borrower->id, colo->borrower_vm,
                                  200 * kMbps, /*duration_epochs=*/4);
  ASSERT_TRUE(id.has_value());
  ASSERT_EQ(ctl.active_leases().size(), 1u);
  EXPECT_EQ(ctl.active_leases()[0].server, colo->server);
  const auto deltas = ctl.drain_config_deltas();
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].server, colo->server);
  ASSERT_EQ(deltas[0].lease_upserts.size(), 1u);
  EXPECT_EQ(deltas[0].lease_upserts[0].id, *id);

  // Releasing either party revokes its leases in the same op.
  ctl.release(*owner);
  EXPECT_TRUE(ctl.active_leases().empty());
  bool saw_remove = false;
  for (const auto& d : ctl.drain_config_deltas())
    for (const auto rid : d.lease_removes) saw_remove |= rid == *id;
  EXPECT_TRUE(saw_remove);
}

TEST(LeaseController, ReplayDoesNotResurrectExpiredLeases) {
  SiloController ctl(tiny_dc());
  DeltaJournal journal;
  ctl.attach_journal(&journal);
  const auto owner = ctl.admit(guaranteed_request(2));
  const auto borrower = ctl.admit(guaranteed_request(2));
  ASSERT_TRUE(owner && borrower);
  const auto colo = colocated(*owner, *borrower);
  ASSERT_TRUE(colo.has_value());

  // Lease 1 expires at epoch 1; lease 2 lives to epoch 6.
  const auto short_id = ctl.grant_lease(owner->id, borrower->id,
                                        colo->borrower_vm, 100 * kMbps,
                                        /*duration_epochs=*/1);
  const auto long_id = ctl.grant_lease(owner->id, borrower->id,
                                       colo->borrower_vm, 50 * kMbps,
                                       /*duration_epochs=*/6);
  ASSERT_TRUE(short_id && long_id);
  const auto expired = ctl.advance_lease_epoch();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, *short_id);
  ASSERT_EQ(ctl.active_leases().size(), 1u);

  // Crash + replay: the expired lease must stay dead, the live one must
  // survive with the same id, and the id allocator must not fork.
  ASSERT_TRUE(journal.verify());
  SiloController recovered(tiny_dc());
  recovered.recover_from_journal(journal);
  EXPECT_EQ(recovered.lease_epoch(), ctl.lease_epoch());
  const auto live = recovered.active_leases();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].id, *long_id);
  EXPECT_EQ(live[0].rate, 50 * kMbps);
  const auto next_a = ctl.grant_lease(owner->id, borrower->id,
                                      colo->borrower_vm, 10 * kMbps);
  const auto next_b = recovered.grant_lease(owner->id, borrower->id,
                                            colo->borrower_vm, 10 * kMbps);
  ASSERT_TRUE(next_a && next_b);
  EXPECT_EQ(*next_a, *next_b);
}

TEST(LeaseController, CompactedSnapshotCarriesLeaseState) {
  SiloController ctl(tiny_dc());
  DeltaJournal journal;
  ctl.attach_journal(&journal, /*snapshot_every=*/2);
  const auto owner = ctl.admit(guaranteed_request(2));
  const auto borrower = ctl.admit(guaranteed_request(2));
  ASSERT_TRUE(owner && borrower);
  const auto colo = colocated(*owner, *borrower);
  ASSERT_TRUE(colo.has_value());
  const auto id = ctl.grant_lease(owner->id, borrower->id, colo->borrower_vm,
                                  100 * kMbps, /*duration_epochs=*/8);
  ASSERT_TRUE(id.has_value());
  ctl.advance_lease_epoch();
  ctl.advance_lease_epoch();
  ctl.advance_lease_epoch();  // several compactions behind us by now

  auto reloaded = DeltaJournal::deserialize(journal.serialize());
  SiloController recovered(tiny_dc());
  recovered.recover_from_journal(reloaded);
  EXPECT_EQ(recovered.lease_epoch(), ctl.lease_epoch());
  ASSERT_EQ(recovered.active_leases().size(), 1u);
  EXPECT_EQ(recovered.active_leases()[0].id, *id);
}

// ---------------------------------------------------------------------------
// Lossy channel: a lost revoke is bounded by epoch expiry, never repaired
// into a guarantee violation.

TEST(LeaseChannel, LostRevokeIsBoundedByEpochExpiry) {
  sim::EventQueue events;
  sim::PacerAgentFleet fleet;
  sim::ChannelConfig ccfg;
  sim::ControlChannel channel(events, fleet, ccfg);
  SiloController ctl(tiny_dc());
  const auto owner = ctl.admit(guaranteed_request(2));
  const auto borrower = ctl.admit(guaranteed_request(2));
  ASSERT_TRUE(owner && borrower);
  const auto colo = colocated(*owner, *borrower);
  ASSERT_TRUE(colo.has_value());
  channel.ship(ctl.drain_config_deltas());
  events.run_all();

  const auto id = ctl.grant_lease(owner->id, borrower->id, colo->borrower_vm,
                                  100 * kMbps, /*duration_epochs=*/2);
  ASSERT_TRUE(id.has_value());
  channel.ship(ctl.drain_config_deltas());
  events.run_all();
  ASSERT_NE(fleet.table(colo->server), nullptr);
  EXPECT_EQ(fleet.table(colo->server)->lease_count(), 1u);

  // Total loss: the revoke (and its retries) never arrives.
  channel.set_drop_rate(1.0);
  EXPECT_TRUE(ctl.revoke_lease(*id));
  channel.ship(ctl.drain_config_deltas());
  events.run_all();
  EXPECT_GT(channel.metrics().value("controller.channel.abandoned"), 0);
  EXPECT_EQ(fleet.table(colo->server)->lease_count(), 1u);  // stale, bounded

  // The loss window ends. The abandoned revoke left a sequence gap, so
  // later deltas buffer until a real config change diverges the config
  // checksum and anti-entropy ships a snapshot repair (which leaves agent
  // leases untouched — they only die by epoch).
  channel.set_drop_rate(0.0);
  ctl.advance_lease_epoch();
  ctl.advance_lease_epoch();  // past the lease's expiry epoch
  ctl.release(*borrower);     // persistent config change on colo->server
  channel.ship(ctl.drain_config_deltas());
  events.run_all();
  channel.anti_entropy_round();
  events.run_all();
  EXPECT_GT(channel.metrics().value("controller.channel.desyncs_repaired"),
            0);

  // Ordinary control traffic stamps the current lease epoch on every
  // config delta, so the next in-order delivery expires the stale lease.
  // Six VMs exceed either server's four slots, so both servers —
  // colo->server included — receive an epoch-stamped delta.
  const auto refill = ctl.admit(guaranteed_request(6));
  ASSERT_TRUE(refill.has_value());
  channel.ship(ctl.drain_config_deltas());
  events.run_all();
  for (int round = 0;
       round < 8 && fleet.table(colo->server)->lease_count() > 0; ++round) {
    channel.anti_entropy_round();
    events.run_all();
  }
  EXPECT_EQ(fleet.table(colo->server)->lease_count(), 0u);
  // The agent's lease clock caught up with the controller's.
  EXPECT_EQ(fleet.table(colo->server)->epoch(), ctl.lease_epoch());
}

// ---------------------------------------------------------------------------
// ClusterSim end to end: lend, then reclaim when the owner returns.

sim::ClusterConfig lending_cluster(bool enabled) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 2;
  cfg.topo.vm_slots_per_server = 2;
  cfg.scheme = sim::Scheme::kSilo;
  cfg.lending.enabled = enabled;
  cfg.lending.epoch = 500 * kUsec;
  return cfg;
}

TEST(LeaseCluster, LendsToBacklogAndReclaimsWhenOwnerWakes) {
  sim::ClusterSim sim(lending_cluster(true));
  const int owner = sim.add_tenant_pinned(guaranteed_request(2), {0, 1});
  const int borrower = sim.add_tenant_pinned(guaranteed_request(2), {0, 1});

  // Borrower streams while the owner sleeps: its stranded reservation is
  // lent within a few epochs and shows up as a raised hose rate.
  sim.send_message(borrower, 0, 1, 2 * kMB);
  sim.run_until(5 * kMsec);
  const auto& m = sim.metrics();
  EXPECT_GT(sim.lease_epoch(), 0u);
  EXPECT_GE(m.value("pacer.lease.granted"), 1);
  EXPECT_GE(m.value("pacer.lease.applied"), 1);
  EXPECT_FALSE(sim.active_leases().empty());
  bool owner_lends = false;
  for (const auto& l : sim.active_leases())
    owner_lends |= l.owner == owner && l.borrower == borrower;
  EXPECT_TRUE(owner_lends);

  // Owner demand returns: its leases are reclaimed within an epoch or two.
  sim.send_message(owner, 0, 1, 2 * kMB);
  sim.run_until(10 * kMsec);
  EXPECT_GE(m.value("pacer.lease.revoked") + m.value("pacer.lease.expired"),
            1);
  bool owner_still_lends = false;
  for (const auto& l : sim.active_leases())
    owner_still_lends |= l.owner == owner;
  EXPECT_FALSE(owner_still_lends);
}

TEST(LeaseCluster, LendingOffSchedulesNothingAndCountsNothing) {
  sim::ClusterSim sim(lending_cluster(false));
  const int borrower = sim.add_tenant_pinned(guaranteed_request(2), {0, 1});
  sim.add_tenant_pinned(guaranteed_request(2), {0, 1});
  sim.send_message(borrower, 0, 1, 1 * kMB);
  sim.run_until(10 * kMsec);
  EXPECT_EQ(sim.lease_epoch(), 0u);
  EXPECT_TRUE(sim.active_leases().empty());
  const auto& m = sim.metrics();
  EXPECT_EQ(m.value("pacer.lease.granted"), 0);
  EXPECT_EQ(m.value("pacer.lease.applied"), 0);
  EXPECT_EQ(m.value("pacer.lease.active"), 0);
}

}  // namespace
}  // namespace silo
