// MUST COMPILE: positive control for the compile-fail harness. If this
// snippet stops compiling, the harness's include path or dialect flags are
// broken and every WILL_FAIL test above is passing vacuously.
#include "util/units.h"

silo::TimeNs t = silo::TimeNs{5} + 2 * silo::kUsec;
silo::Bytes b = silo::RateBps{1e9} * silo::kMsec;
silo::TimeNs ser = silo::kMtu / (10 * silo::kGbps);
