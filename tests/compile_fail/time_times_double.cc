// MUST NOT COMPILE: simulated time scales by integers only — float
// scaling is how rounding drift sneaks into a deterministic clock.
#include "util/units.h"

silo::TimeNs t = silo::TimeNs{1000} * 1.5;
