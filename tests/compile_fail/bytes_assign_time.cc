// MUST NOT COMPILE: a size cannot be initialized from a duration.
#include "util/units.h"

silo::Bytes b = silo::TimeNs{12000};
