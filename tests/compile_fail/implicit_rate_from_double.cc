// MUST NOT COMPILE: RateBps construction from a raw double is explicit.
#include "util/units.h"

silo::RateBps r = 1e9;
