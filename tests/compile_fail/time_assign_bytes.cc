// MUST NOT COMPILE: a duration cannot be initialized from a size.
#include "util/units.h"

silo::TimeNs t = silo::Bytes{1500};
