// MUST NOT COMPILE: adding bytes to nanoseconds is dimensionally absurd.
#include "util/units.h"

silo::TimeNs t = silo::TimeNs{5} + silo::Bytes{5};
