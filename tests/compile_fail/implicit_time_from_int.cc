// MUST NOT COMPILE: construction from a raw number is explicit-only, so a
// bare integer never silently becomes simulated time.
#include "util/units.h"

silo::TimeNs t = 5;
