#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "placement/placement.h"
#include "util/rng.h"

namespace silo::placement {
namespace {

topology::TopologyConfig small_topo() {
  topology::TopologyConfig cfg;
  cfg.pods = 2;
  cfg.racks_per_pod = 2;
  cfg.servers_per_rack = 4;
  cfg.vm_slots_per_server = 4;
  cfg.server_link_rate = 10 * kGbps;
  cfg.oversubscription = 2.0;
  cfg.port_buffer = 312 * kKB;
  return cfg;
}

TenantRequest class_a(int vms, RateBps bw = 500 * kMbps) {
  TenantRequest r;
  r.num_vms = vms;
  r.guarantee = {bw, 15 * kKB, 2 * kMsec, std::max(bw, 1 * kGbps)};
  r.tenant_class = TenantClass::kDelaySensitive;
  return r;
}

TenantRequest class_b(int vms, RateBps bw = 1 * kGbps) {
  TenantRequest r;
  r.num_vms = vms;
  r.guarantee = {bw, Bytes{1500}, TimeNs{0}, bw};
  r.tenant_class = TenantClass::kBandwidthOnly;
  return r;
}

TEST(Placement, SingleVmAlwaysFitsAnywhere) {
  topology::Topology topo(small_topo());
  PlacementEngine eng(topo, Policy::kSilo);
  const auto a = eng.place(class_a(1));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->vm_to_server.size(), 1u);
  EXPECT_EQ(eng.free_slots(), topo.total_vm_slots() - 1);
}

TEST(Placement, PrefersSmallestScope) {
  topology::Topology topo(small_topo());
  PlacementEngine eng(topo, Policy::kSilo);
  // 4 VMs fit on one server: all on the same server, no fabric use.
  const auto a = eng.place(class_a(4));
  ASSERT_TRUE(a.has_value());
  for (int s : a->vm_to_server) EXPECT_EQ(s, a->vm_to_server[0]);
  // Next 4 land on the next server.
  const auto b = eng.place(class_a(4));
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(b->vm_to_server[0], a->vm_to_server[0]);
}

TEST(Placement, SpansRackWhenServerFull) {
  topology::Topology topo(small_topo());
  PlacementEngine eng(topo, Policy::kSilo);
  const auto a = eng.place(class_a(6));
  ASSERT_TRUE(a.has_value());
  // All six stay within one rack.
  const int rack = topo.rack_of_server(a->vm_to_server[0]);
  for (int s : a->vm_to_server) EXPECT_EQ(topo.rack_of_server(s), rack);
}

TEST(Placement, DelayGuaranteeRestrictsScope) {
  topology::Topology topo(small_topo());
  PlacementEngine eng(topo, Policy::kSilo);
  // Rack-scope path capacity (two server-level ports at 312KB/10G each)
  // is ~499 us; a 600 us guarantee forces single-rack placement and a
  // tenant larger than a rack must be rejected.
  const TimeNs rack_cap = eng.scope_path_capacity(Scope::kRack);
  const TimeNs pod_cap = eng.scope_path_capacity(Scope::kPod);
  ASSERT_LT(rack_cap, pod_cap);

  TenantRequest tight = class_a(17);  // rack holds 16
  tight.guarantee.delay = rack_cap + TimeNs{1000};
  EXPECT_FALSE(eng.place(tight).has_value());

  TenantRequest fits = class_a(16);
  fits.guarantee.delay = rack_cap + TimeNs{1000};
  fits.guarantee.bandwidth = 100 * kMbps;
  const auto got = eng.place(fits);
  ASSERT_TRUE(got.has_value());
  const int rack = topo.rack_of_server(got->vm_to_server[0]);
  for (int s : got->vm_to_server) EXPECT_EQ(topo.rack_of_server(s), rack);
}

TEST(Placement, RejectsWhenNoSlots) {
  topology::Topology topo(small_topo());
  PlacementEngine eng(topo, Policy::kLocality);
  ASSERT_TRUE(eng.place(class_b(60)).has_value());
  EXPECT_FALSE(eng.place(class_b(10)).has_value());
  EXPECT_TRUE(eng.place(class_b(4)).has_value());
}

TEST(Placement, RemoveRestoresCapacity) {
  topology::Topology topo(small_topo());
  PlacementEngine eng(topo, Policy::kSilo);
  const int before = eng.free_slots();
  const auto a = eng.place(class_a(8));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(eng.free_slots(), before - 8);
  eng.remove(a->id);
  EXPECT_EQ(eng.free_slots(), before);
  EXPECT_EQ(eng.admitted_tenants(), 0);
  // Port reservations fully released.
  for (int p = 0; p < topo.num_ports(); ++p)
    EXPECT_DOUBLE_EQ(eng.port_reservation(topology::PortId{p}), 0.0);
}

TEST(Placement, BandwidthAdmissionControl) {
  topology::Topology topo(small_topo());
  PlacementEngine eng(topo, Policy::kOktopus);
  // Each tenant of 8 VMs spread over 2 servers with 5 Gbps hose would
  // oversubscribe access links quickly; admission must stop before that.
  int admitted = 0;
  for (int i = 0; i < 16; ++i)
    if (eng.place(class_b(8, 5 * kGbps))) ++admitted;
  EXPECT_GT(admitted, 0);
  EXPECT_LT(admitted, 16);
  // No port is reserved beyond its capacity.
  for (int p = 0; p < topo.num_ports(); ++p)
    EXPECT_LE(eng.port_reservation(topology::PortId{p}), 1.0 + 1e-6);
}

TEST(Placement, LocalityIgnoresBandwidth) {
  topology::Topology topo(small_topo());
  PlacementEngine eng(topo, Policy::kLocality);
  int admitted = 0;
  for (int i = 0; i < 8; ++i)
    if (eng.place(class_b(8, 5 * kGbps))) ++admitted;
  EXPECT_EQ(admitted, 8);  // 64 VMs = full datacenter, all accepted
}

TEST(Placement, SiloQueueBoundsWithinCapacity) {
  topology::Topology topo(small_topo());
  PlacementEngine eng(topo, Policy::kSilo);
  for (int i = 0; i < 12; ++i) eng.place(class_a(6));
  for (int p = 0; p < topo.num_ports(); ++p) {
    const auto id = topology::PortId{p};
    const TimeNs bound = eng.port_queue_bound(id);
    ASSERT_GE(bound, TimeNs{0}) << "unbounded queue at port " << p;
    EXPECT_LE(bound, topo.port(id).queue_capacity) << "port " << p;
  }
}

TEST(Placement, SiloAdmitsFewerThanOktopus) {
  // Burst + delay constraints can only reduce admissions vs bandwidth-only.
  auto run = [&](Policy pol) {
    topology::Topology topo(small_topo());
    PlacementEngine eng(topo, pol);
    int admitted = 0;
    for (int i = 0; i < 20; ++i)
      if (eng.place(class_a(6, 2 * kGbps))) ++admitted;
    return admitted;
  };
  EXPECT_LE(run(Policy::kSilo), run(Policy::kOktopus));
  EXPECT_LE(run(Policy::kOktopus), run(Policy::kLocality));
}

TEST(Placement, BestEffortTenantsReserveNothing) {
  topology::Topology topo(small_topo());
  PlacementEngine eng(topo, Policy::kSilo);
  TenantRequest be;
  be.num_vms = 8;
  be.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
  be.tenant_class = TenantClass::kBestEffort;
  ASSERT_TRUE(eng.place(be).has_value());
  for (int p = 0; p < topo.num_ports(); ++p)
    EXPECT_DOUBLE_EQ(eng.port_reservation(topology::PortId{p}), 0.0);
}

TEST(Placement, MalformedGuaranteeRejected) {
  topology::Topology topo(small_topo());
  PlacementEngine eng(topo, Policy::kSilo);
  TenantRequest bad = class_a(2);
  bad.guarantee.burst_rate = bad.guarantee.bandwidth / 2;  // Bmax < B
  EXPECT_FALSE(eng.place(bad).has_value());
  EXPECT_FALSE(eng.place(TenantRequest{}).has_value());
}

TEST(Placement, Fig5NineVmScenario) {
  // Paper Fig. 5: 3 servers, 10 Gbps switch; tenant wants 9 VMs with
  // 1 Gbps, 100 KB burst, 1 ms delay, bursting at up to 10 Gbps.
  topology::TopologyConfig cfg;
  cfg.pods = 1;
  cfg.racks_per_pod = 1;
  cfg.servers_per_rack = 3;
  cfg.vm_slots_per_server = 3;
  cfg.server_link_rate = 10 * kGbps;
  cfg.oversubscription = 1.0;
  // The paper's arithmetic (600 KB burst at 20 Gbps -> 300 KB backlog)
  // ignores token refill during the burst drain; the rigorous dual-token-
  // bucket bound is 600KB/(1 - 3G/20G) ~= 706 KB of burst-phase bytes,
  // needing ~354 KB of buffering. 400 KB ports therefore admit.
  cfg.port_buffer = 400 * kKB;
  topology::Topology topo(cfg);
  PlacementEngine eng(topo, Policy::kSilo);

  TenantRequest req;
  req.num_vms = 9;
  req.guarantee = {1 * kGbps, 100 * kKB, 1 * kMsec, 10 * kGbps};
  req.tenant_class = TenantClass::kDelaySensitive;
  const auto got = eng.place(req);
  ASSERT_TRUE(got.has_value());
  // Silo spreads 3/3/3, and every switch port's queue bound stays within
  // its capacity, so worst-case bursts cannot overflow buffers.
  std::vector<int> per_server(3, 0);
  for (int s : got->vm_to_server) ++per_server[static_cast<std::size_t>(s)];
  for (int c : per_server) EXPECT_EQ(c, 3);
  for (int p = 0; p < topo.num_ports(); ++p) {
    const auto id = topology::PortId{p};
    EXPECT_LE(eng.port_queue_bound(id), topo.port(id).queue_capacity);
  }

  // With the paper's 300 KB buffers the rigorous bound does not fit:
  // admission control must reject rather than risk buffer overflow.
  cfg.port_buffer = 300 * kKB;
  topology::Topology topo_small(cfg);
  PlacementEngine eng_small(topo_small, Policy::kSilo);
  EXPECT_FALSE(eng_small.place(req).has_value());
}


TEST(Placement, FaultDomainsForceSpreading) {
  topology::Topology topo(small_topo());
  PlacementEngine eng(topo, Policy::kSilo);
  // 4 VMs fit on one server, but 2 fault domains force at least two.
  auto req = class_a(4);
  req.min_fault_domains = 2;
  const auto got = eng.place(req);
  ASSERT_TRUE(got.has_value());
  std::set<int> servers(got->vm_to_server.begin(), got->vm_to_server.end());
  EXPECT_GE(servers.size(), 2u);
  // Three domains for 9 VMs: no server may hold more than ceil(9/3) = 3.
  auto req3 = class_a(9);
  req3.min_fault_domains = 3;
  const auto got3 = eng.place(req3);
  ASSERT_TRUE(got3.has_value());
  std::map<int, int> counts;
  for (int s : got3->vm_to_server) ++counts[s];
  EXPECT_GE(counts.size(), 3u);
  for (const auto& [s, c] : counts) EXPECT_LE(c, 3);
}

TEST(Placement, HoseTighteningAdmitsMore) {
  // Ablation (DESIGN.md #1): the naive m*B aggregate admits no more than
  // the hose-tightened min(m, N-m)*B bound.
  auto run = [&](bool tighten) {
    topology::Topology topo(small_topo());
    PlacementEngine eng(topo, Policy::kSilo, 50 * kUsec, tighten);
    int admitted = 0;
    for (int i = 0; i < 20; ++i)
      if (eng.place(class_a(8, 2 * kGbps))) ++admitted;
    return admitted;
  };
  const int with = run(true);
  const int without = run(false);
  EXPECT_GE(with, without);
  EXPECT_GT(with, 0);
}
// Property sweep: for any tenant size, if Silo admits, all port queue
// bounds stay within capacity.
class PlacementInvariant : public ::testing::TestWithParam<int> {};

TEST_P(PlacementInvariant, QueueBoundsHold) {
  topology::Topology topo(small_topo());
  PlacementEngine eng(topo, Policy::kSilo);
  int admitted = 0;
  while (eng.place(class_a(GetParam(), 800 * kMbps))) ++admitted;
  EXPECT_GT(admitted, 0);
  for (int p = 0; p < topo.num_ports(); ++p) {
    const auto id = topology::PortId{p};
    const TimeNs bound = eng.port_queue_bound(id);
    ASSERT_GE(bound, TimeNs{0});
    EXPECT_LE(bound, topo.port(id).queue_capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(TenantSizes, PlacementInvariant,
                         ::testing::Values(2, 3, 5, 8, 12, 16));

// The tentpole correctness bar: a seeded admit/release/fail/restore storm
// must produce bit-identical decisions and derived state in incremental
// (sharded, cached) and full-rescan (reference rebuild) modes.
TEST(Placement, IncrementalModeMatchesFullRescanUnderChurn) {
  topology::Topology topo(small_topo());
  PlacementEngine inc(topo, Policy::kSilo, 50 * kUsec, true,
                      AdmissionMode::kIncremental);
  PlacementEngine full(topo, Policy::kSilo, 50 * kUsec, true,
                       AdmissionMode::kFullRescan);
  ASSERT_EQ(inc.admission_mode(), AdmissionMode::kIncremental);
  ASSERT_EQ(full.admission_mode(), AdmissionMode::kFullRescan);

  Rng rng(7);
  std::vector<TenantId> live_inc, live_full;
  const auto check_state = [&] {
    ASSERT_EQ(inc.free_slots(), full.free_slots());
    ASSERT_EQ(inc.admitted_tenants(), full.admitted_tenants());
    ASSERT_DOUBLE_EQ(inc.max_port_reservation(), full.max_port_reservation());
    ASSERT_DOUBLE_EQ(inc.max_queue_headroom_used(),
                     full.max_queue_headroom_used());
    for (int p = 0; p < topo.num_ports(); ++p) {
      const auto id = topology::PortId{p};
      ASSERT_DOUBLE_EQ(inc.port_reservation(id), full.port_reservation(id));
      ASSERT_EQ(inc.port_queue_bound(id), full.port_queue_bound(id));
    }
    for (int s = 0; s < topo.num_servers(); ++s)
      ASSERT_EQ(inc.tenants_on_server(s), full.tenants_on_server(s));
  };

  for (int step = 0; step < 200; ++step) {
    const auto roll = rng.uniform_int(0, 9);
    if (roll < 5) {  // admit
      const int vms = 2 + static_cast<int>(rng.uniform_int(0, 6));
      const auto req = (rng.uniform_int(0, 1) != 0)
                           ? class_a(vms, 300 * kMbps)
                           : class_b(vms, 500 * kMbps);
      const auto a = inc.place(req);
      const auto b = full.place(req);
      ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
      if (a) {
        ASSERT_EQ(a->vm_to_server, b->vm_to_server) << "step " << step;
        ASSERT_EQ(a->id, b->id);
        live_inc.push_back(a->id);
        live_full.push_back(b->id);
      }
    } else if (roll < 8 && !live_inc.empty()) {  // release
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live_inc.size()) - 1));
      inc.remove(live_inc[i]);
      full.remove(live_full[i]);
      live_inc.erase(live_inc.begin() + static_cast<std::ptrdiff_t>(i));
      live_full.erase(live_full.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (roll == 8) {  // server fail + restore
      const int s = static_cast<int>(
          rng.uniform_int(0, topo.num_servers() - 1));
      if (!inc.server_failed(s)) {
        inc.fail_server(s);
        full.fail_server(s);
        check_state();
        inc.restore_server(s);
        full.restore_server(s);
      }
    } else {  // link fail + restore
      const auto p = topology::PortId{
          static_cast<int>(rng.uniform_int(0, topo.num_ports() - 1))};
      if (!inc.port_failed(p)) {
        inc.fail_port(p);
        full.fail_port(p);
        const auto req = class_a(4, 200 * kMbps);
        const auto a = inc.place(req);
        const auto b = full.place(req);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
          ASSERT_EQ(a->vm_to_server, b->vm_to_server);
          inc.remove(a->id);
          full.remove(b->id);
        }
        inc.restore_port(p);
        full.restore_port(p);
      }
    }
    check_state();
  }
}

}  // namespace
}  // namespace silo::placement
