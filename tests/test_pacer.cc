#include <gtest/gtest.h>

#include "pacer/hose_allocator.h"
#include "pacer/paced_nic.h"
#include "pacer/token_bucket.h"
#include "pacer/vm_pacer.h"
#include "util/rng.h"

namespace silo::pacer {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket tb(1 * kGbps, 10 * kKB);
  EXPECT_EQ(tb.earliest_conformance(TimeNs{0}, 10 * kKB), TimeNs{0});
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb(8 * kGbps, Bytes{1000});  // 1 byte per ns
  tb.consume(TimeNs{0}, Bytes{1000});
  // 500 more bytes need 500 ns.
  EXPECT_EQ(tb.earliest_conformance(TimeNs{0}, Bytes{500}), TimeNs{501});
  EXPECT_EQ(tb.earliest_conformance(TimeNs{1000}, Bytes{500}), TimeNs{1000});
}

TEST(TokenBucket, CapacityCaps) {
  TokenBucket tb(8 * kGbps, Bytes{1000});
  // After a long idle period the bucket holds only its capacity.
  EXPECT_DOUBLE_EQ(tb.tokens(1 * kSec), 1000.0);
}

TEST(TokenBucket, LongRunRateRespected) {
  TokenBucket tb(1 * kGbps, Bytes{3000});
  Rng rng(5);
  TimeNs now {};
  Bytes sent {};
  for (int i = 0; i < 20000; ++i) {
    const Bytes pkt{100 + rng.uniform_int(0, 1400)};
    now = tb.earliest_conformance(now, pkt);
    tb.consume(now, pkt);
    sent += pkt;
  }
  const double rate = static_cast<double>(sent) * 8e9 / static_cast<double>(now);
  EXPECT_LE(rate, 1.02e9);
  EXPECT_GE(rate, 0.98e9);
}

TEST(TokenBucket, SetRateTakesEffect) {
  TokenBucket tb(1 * kGbps, Bytes{1500});
  tb.consume(TimeNs{0}, Bytes{1500});
  tb.set_rate(TimeNs{0}, 2 * kGbps);
  // 1500 B at 2 Gbps: 6 us.
  EXPECT_NEAR(static_cast<double>(tb.earliest_conformance(TimeNs{0}, Bytes{1500})),
              6000, 10);
  EXPECT_THROW(tb.set_rate(TimeNs{0}, RateBps{0}), std::invalid_argument);
  EXPECT_THROW(TokenBucket(RateBps{0}, Bytes{100}), std::invalid_argument);
}

TEST(VmPacer, PacesAtGuaranteedRate) {
  // 1 Gbps guarantee, bursting at most one packet: packets space ~12 us.
  SiloGuarantee g{1 * kGbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
  VmPacer pacer(g);
  TimeNs prev = pacer.stamp(TimeNs{0}, 1, Bytes{1500});
  for (int i = 0; i < 50; ++i) {
    const TimeNs t = pacer.stamp(prev, 1, Bytes{1500});
    EXPECT_NEAR(static_cast<double>(t - prev), 12000.0, 20.0);
    prev = t;
  }
}

TEST(VmPacer, BurstGoesAtBurstRate) {
  // 100 Mbps average but 10 KB burst at 1 Gbps: the first ~6 full packets
  // are spaced at 1 Gbps (12 us), later ones at 100 Mbps (120 us).
  SiloGuarantee g{100 * kMbps, 10 * kKB, TimeNs{0}, 1 * kGbps};
  VmPacer pacer(g);
  std::vector<TimeNs> stamps;
  TimeNs now {};
  for (int i = 0; i < 12; ++i) {
    now = pacer.stamp(now, 1, Bytes{1500});
    stamps.push_back(now);
  }
  EXPECT_NEAR(static_cast<double>(stamps[1] - stamps[0]), 12000.0, 20.0);
  EXPECT_NEAR(static_cast<double>(stamps[11] - stamps[10]), 120000.0, 200.0);
}

TEST(VmPacer, HoseRateLimitsPerDestination) {
  SiloGuarantee g{1 * kGbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
  VmPacer pacer(g);
  pacer.set_destination_rate(TimeNs{0}, 7, 100 * kMbps);
  TimeNs t1 = pacer.stamp(TimeNs{0}, 7, Bytes{1500});
  TimeNs t2 = pacer.stamp(t1, 7, Bytes{1500});
  EXPECT_GE(t2 - t1, TimeNs{115000});  // ~120 us at 100 Mbps
}

TEST(VmPacer, RejectsBadInput) {
  SiloGuarantee g{1 * kGbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
  VmPacer pacer(g);
  EXPECT_THROW(pacer.stamp(TimeNs{0}, 1, Bytes{0}), std::invalid_argument);
  EXPECT_THROW(pacer.stamp(TimeNs{0}, 1, kMtu + Bytes{1}), std::invalid_argument);
  SiloGuarantee zero{};
  EXPECT_THROW(VmPacer{zero}, std::invalid_argument);
  SiloGuarantee inverted{1 * kGbps, Bytes{1500}, TimeNs{0}, 500 * kMbps};
  EXPECT_THROW(VmPacer{inverted}, std::invalid_argument);
}

TEST(HoseAllocator, SingleFlowGetsFullRate) {
  const std::vector<HoseDemand> one{{0, 1, RateBps{5e9}}};
  const std::vector<RateBps> cap2(2, RateBps{1e9});
  const auto r = hose_allocate(one, cap2, cap2);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0].bps(), 1e9, 1);
}

TEST(HoseAllocator, AllToOneSharesReceiver) {
  // N senders into one receiver: each gets B/N (the hose semantics of §4.1).
  std::vector<HoseDemand> demands;
  for (int i = 1; i <= 4; ++i) demands.push_back({i, 0, RateBps{1e9}});
  const std::vector<RateBps> caps(5, RateBps{1e9});
  const auto r = hose_allocate(demands, caps, caps);
  for (RateBps v : r) EXPECT_NEAR(v.bps(), 0.25e9, 1e3);
}

TEST(HoseAllocator, MaxMinNotEqualSplit) {
  // Two flows from VM0 (cap 1G) to different receivers, plus one flow into
  // receiver 1 from VM3. Max-min: f(0->1) and f(3->1) share receiver 1.
  std::vector<HoseDemand> demands{
      {0, 1, RateBps{1e9}}, {0, 2, RateBps{1e9}}, {3, 1, RateBps{1e9}}};
  const std::vector<RateBps> caps(4, RateBps{1e9});
  const auto r = hose_allocate(demands, caps, caps);
  EXPECT_NEAR(r[0].bps(), 0.5e9, 1e6);  // receiver-1 bottleneck
  EXPECT_NEAR(r[1].bps(), 0.5e9, 1e6);  // sender-0 leftover
  EXPECT_NEAR(r[2].bps(), 0.5e9, 1e6);
}

TEST(HoseAllocator, RespectsDemandCeilings) {
  std::vector<HoseDemand> demands{{0, 1, RateBps{0.2e9}}, {0, 2, RateBps{5e9}}};
  const std::vector<RateBps> caps(3, RateBps{1e9});
  const auto r = hose_allocate(demands, caps, caps);
  EXPECT_NEAR(r[0].bps(), 0.2e9, 1e3);
  EXPECT_NEAR(r[1].bps(), 0.8e9, 1e6);
}

TEST(HoseAllocator, CapsNeverExceeded) {
  Rng rng(11);
  const int n = 12;
  std::vector<HoseDemand> demands;
  for (int i = 0; i < 60; ++i)
    demands.push_back({static_cast<int>(rng.uniform_int(0, n - 1)),
                       static_cast<int>(rng.uniform_int(0, n - 1)),
                       RateBps{rng.uniform(0.1e9, 3e9)}});
  std::vector<RateBps> caps;
  for (int i = 0; i < n; ++i) caps.push_back(RateBps{rng.uniform(0.2e9, 2e9)});
  const auto r = hose_allocate(demands, caps, caps);
  std::vector<double> out(n, 0), in(n, 0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_LE(r[i].bps(), demands[i].demand.bps() + 1e3);
    out[demands[i].src] += r[i].bps();
    in[demands[i].dst] += r[i].bps();
  }
  for (int v = 0; v < n; ++v) {
    EXPECT_LE(out[v], caps[v].bps() * 1.001) << v;
    EXPECT_LE(in[v], caps[v].bps() * 1.001) << v;
  }
}

TEST(PacedNic, VoidFillPreservesSpacing) {
  // 2 Gbps pacing on a 10 Gbps link (paper Fig. 9): data packets must be
  // spaced ~6 us on the wire; voids fill the gaps.
  PacedNic nic(10 * kGbps, NicMode::kPacedVoid);
  const TimeNs gap = transmission_time(Bytes{1500}, 2 * kGbps);  // 6 us
  for (int i = 0; i < 8; ++i)  // 8 releases fit inside one 50 us batch
    nic.enqueue(i * gap, Bytes{1500} - kEthOverhead,
                static_cast<std::uint64_t>(i + 1));
  const auto slots = nic.build_batch(TimeNs{0});
  std::vector<TimeNs> data_starts;
  for (const auto& s : slots)
    if (!s.is_void) data_starts.push_back(s.start);
  ASSERT_EQ(data_starts.size(), 8u);
  for (std::size_t i = 1; i < data_starts.size(); ++i) {
    const auto spacing = data_starts[i] - data_starts[i - 1];
    // Never early; late by at most one minimum void frame (~68 ns).
    EXPECT_GE(spacing, gap - TimeNs{1});
    EXPECT_LE(spacing, gap + TimeNs{80});
  }
  EXPECT_GT(nic.stats().void_packets, 0);
}

TEST(PacedNic, BatchedModeBunchesPackets) {
  PacedNic nic(10 * kGbps, NicMode::kBatched);
  const TimeNs gap = 5 * kUsec;  // all 10 releases inside one 50 us batch
  for (int i = 0; i < 10; ++i) nic.enqueue(i * gap, Bytes{1462}, i + 1);
  const auto slots = nic.build_batch(TimeNs{0});
  ASSERT_EQ(slots.size(), 10u);
  // Back to back at line rate: spacing is the serialization time, not gap.
  const auto spacing = slots[1].start - slots[0].start;
  EXPECT_LT(spacing, TimeNs{2000});
  EXPECT_EQ(nic.stats().void_packets, 0);
}

TEST(PacedNic, MinimumSpacingIs68ns) {
  // §5: the smallest void frame is 84 B -> 67.2 ns at 10 Gbps.
  PacedNic nic(10 * kGbps, NicMode::kPacedVoid);
  nic.enqueue(TimeNs{0}, Bytes{1462}, 1);
  nic.enqueue(TimeNs{1250}, Bytes{1462}, 2);  // data takes 1200+30.4ns; +~20ns gap
  const auto slots = nic.build_batch(TimeNs{0});
  std::vector<const WireSlot*> data;
  for (const auto& s : slots)
    if (!s.is_void) data.push_back(&s);
  ASSERT_EQ(data.size(), 2u);
  // The sub-minimum gap was rounded up to one 84-byte void: never early.
  EXPECT_GE(data[1]->start, TimeNs{1250});
  EXPECT_LE(data[1]->start, TimeNs{1250 + 70});
}

TEST(PacedNic, WindowLimitsBatch) {
  PacedNic nic(10 * kGbps, NicMode::kPacedVoid, 50 * kUsec);
  // Two packets: one now, one beyond the window.
  nic.enqueue(TimeNs{0}, Bytes{1462}, 1);
  nic.enqueue(200 * kUsec, Bytes{1462}, 2);
  const auto slots = nic.build_batch(TimeNs{0});
  int data = 0;
  for (const auto& s : slots) data += s.is_void ? 0 : 1;
  EXPECT_EQ(data, 1);
  EXPECT_EQ(nic.backlog(), 1u);
  EXPECT_EQ(nic.next_start(TimeNs{0}), 200 * kUsec);
}

TEST(PacedNic, PerPacketModeOnePerBatch) {
  PacedNic nic(10 * kGbps, NicMode::kPerPacket);
  nic.enqueue(TimeNs{0}, Bytes{1462}, 1);
  nic.enqueue(TimeNs{100}, Bytes{1462}, 2);
  EXPECT_EQ(nic.build_batch(TimeNs{0}).size(), 1u);
  EXPECT_EQ(nic.backlog(), 1u);
}

TEST(PacedNic, StatsAccounting) {
  PacedNic nic(10 * kGbps, NicMode::kPacedVoid);
  const TimeNs gap = transmission_time(Bytes{1500}, 1 * kGbps);
  for (int i = 0; i < 4; ++i) nic.enqueue(i * gap, Bytes{1462}, i + 1);
  (void)nic.build_batch(TimeNs{0});
  const auto& st = nic.stats();
  EXPECT_EQ(st.data_packets, 4);
  EXPECT_GT(st.void_wire_bytes, Bytes{0});
  EXPECT_EQ(st.batches, 1);
  // Wire occupancy: data + voids roughly fill the paced span at line rate.
  const double span_bytes = static_cast<double>(bytes_in(10 * kGbps, 3 * gap));
  EXPECT_NEAR(static_cast<double>(st.data_wire_bytes + st.void_wire_bytes),
              span_bytes + 1500, 2100.0);
}

TEST(TenantPacerGroup, RebalanceEnforcesHose) {
  SiloGuarantee g{1 * kGbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
  TenantPacerGroup group(g, 4);
  // Three senders toward VM 0: after rebalance each is ~B/3.
  std::vector<HoseDemand> demands{
      {1, 0, RateBps{1e9}}, {2, 0, RateBps{1e9}}, {3, 0, RateBps{1e9}}};
  group.rebalance(TimeNs{0}, demands);
  for (int v = 1; v <= 3; ++v) {
    TimeNs t1 = group.vm(v).stamp(TimeNs{0}, 0, Bytes{1500});
    TimeNs t2 = group.vm(v).stamp(t1, 0, Bytes{1500});
    // 1500 B at ~333 Mbps: ~36 us.
    EXPECT_NEAR(static_cast<double>(t2 - t1), 36000.0, 1000.0);
  }
}

}  // namespace
}  // namespace silo::pacer
