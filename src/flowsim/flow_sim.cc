#include "flowsim/flow_sim.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "flowsim/flow_table.h"
#include "flowsim/maxmin.h"
#include "pacer/hose_allocator.h"
#include "util/rng.h"
#include "workload/patterns.h"

namespace silo::flowsim {
namespace {

struct Job {
  placement::TenantId placement_id = -1;
  bool class_a = false;
  int n_vms = 0;
  SiloGuarantee guarantee;
  std::vector<int> vm_server;
  std::vector<int> flow_ids;
  int open_flows = 0;
  double arrive_s = 0;
  double compute_end_s = 0;
  bool departed = false;
  bool counted = false;  ///< arrived after warmup
};

enum class EvKind : std::uint8_t {
  kArrival,
  kFlowDone,
  kComputeDone,
  kRateUpdate,  ///< coalesced re-solve grid point (rate_update_s > 0)
};

/// Heap entry. `seq` breaks time ties FIFO; because rate changes (the only
/// conditional pushes) are bit-identical across solver modes, the push
/// sequence — and therefore the whole event order — is identical too.
struct Ev {
  double t = 0;
  std::uint64_t seq = 0;
  std::int32_t id = 0;    ///< arrival index / flow id / job id
  std::uint32_t gen = 0;  ///< flow generation at prediction time
  EvKind kind = EvKind::kArrival;
};

struct EvLater {
  bool operator()(const Ev& a, const Ev& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

/// Event-driven fluid simulation: rates are piecewise-constant between
/// flow-set changes, so each flow's remaining bytes are integrated
/// analytically from its last touch point (`updated_s`) whenever its rate
/// changes or it completes.
///
/// Cross-mode equivalence invariant: every floating-point accumulation
/// (util_acc_, occupancy_acc_, per-flow remaining) happens in an order
/// fully determined by the event sequence plus the sorted-by-flow-id apply
/// order, and a rate write only happens when the solved value differs from
/// the current one. Untouched components/tenants re-solve to bit-identical
/// rates, so kReference performs exactly the same sequence of writes and
/// accumulations as kIncremental — only more (discarded) solver arithmetic.
class Sim {
 public:
  Sim(const FlowSimConfig& cfg, obs::MetricsRegistry* metrics)
      : cfg_(cfg),
        metrics_(metrics),
        topo_(cfg.topo),
        placer_(topo_, cfg.policy),
        table_(topo_.num_ports()),
        solver_(topo_, table_),
        rng_(cfg.seed),
        total_slots_(topo_.total_vm_slots()) {}

  FlowSimResult run();

 private:
  // --- event plumbing --------------------------------------------------
  void push_event(double t, EvKind kind, std::int32_t id,
                  std::uint32_t gen = 0) {
    heap_.push(Ev{t, seq_++, id, gen, kind});
  }

  void on_arrival(int index);
  void on_flow_done(int f, std::uint32_t gen);
  void on_compute_done(int job_id);
  void depart(int job_id);

  // --- analytic integration --------------------------------------------
  /// Portion of [a, b] inside the measurement window.
  double measured_overlap(double a, double b) const {
    const double lo = std::max(a, cfg_.warmup_s);
    const double hi = std::min(b, cfg_.sim_duration_s);
    return hi > lo ? hi - lo : 0.0;
  }

  /// Advance flow f's remaining bytes (and fabric bit-seconds) from its
  /// last touch point to the current time under its current rate.
  void integrate(int f) {
    SimFlow& fl = table_.flow(f);
    if (fl.updated_s >= t_) return;
    if (fl.rate > 0) {
      fl.remaining -= fl.rate * (t_ - fl.updated_s) / 8.0;
      if (fl.n_ports > 0)
        util_acc_ += fl.rate * measured_overlap(fl.updated_s, t_);
    }
    fl.updated_s = t_;
  }

  /// Integrate occupied slot-seconds up to `t`; call before any placement
  /// mutation so the interval is charged at the pre-change occupancy.
  void occupancy_advance(double t) {
    occupancy_acc_ += used_slots_ * measured_overlap(occupancy_mark_s_, t);
    occupancy_mark_s_ = t;
  }

  // --- rate solving ----------------------------------------------------
  /// The apply gate: write a rate only when it actually changed. Untouched
  /// flows re-solved by kReference take this branch and leave no trace.
  void set_rate(int f, double rate_bps) {
    SimFlow& fl = table_.flow(f);
    if (fl.rate == rate_bps) return;
    integrate(f);
    fl.rate = rate_bps;
    ++fl.generation;
    ++perf_.rate_changes;
    predict_completion(f);
  }

  void predict_completion(int f) {
    const SimFlow& fl = table_.flow(f);
    if (fl.rate <= 0) return;
    double done_s = fl.updated_s + fl.remaining * 8.0 / fl.rate;
    if (done_s < t_) done_s = t_;  // clamp FP residue from integration
    push_event(done_s, EvKind::kFlowDone, f, fl.generation);
  }

  /// Re-solve after the fabric flow set changed. `job_id` is the affected
  /// tenant (reserved policies); `ports` are the path ports of the added/
  /// removed flows (locality component seeds). With rate_update_s > 0 the
  /// change is queued and solved at the next grid point instead (see
  /// on_rate_update); a queued new flow runs at rate 0 until that solve,
  /// so it has no prediction event and cannot complete early.
  void solve_for_change(int job_id, const std::vector<int>& ports) {
    const bool locality = cfg_.policy == placement::Policy::kLocality;
    if (locality && ports.empty()) return;  // intra-server: no fabric change
    if (cfg_.rate_update_s > 0) {
      if (locality)
        pending_ports_.insert(pending_ports_.end(), ports.begin(),
                              ports.end());
      else
        pending_jobs_.push_back(job_id);
      if (!update_scheduled_) {
        update_scheduled_ = true;
        const double g = cfg_.rate_update_s;
        push_event((std::floor(t_ / g) + 1.0) * g, EvKind::kRateUpdate, 0);
      }
      return;
    }
    solve_now(job_id, ports);
  }

  void solve_now(int job_id, const std::vector<int>& ports) {
    if (cfg_.policy == placement::Policy::kLocality) {
      ++perf_.solves;
      // Dense-change shortcut: when the seed ports alone approach the open
      // fabric flow count (coalesced grid under saturation, where the
      // sharing graph is one giant component anyway), the component BFS
      // would scatter-walk nearly every flow just to conclude "all of
      // them" — a linear global re-solve is cheaper and, because a
      // superset solve waterfills untouched components to bit-identical
      // rates, produces exactly the same result.
      const bool dense =
          ports.size() * 8 > static_cast<std::size_t>(open_fabric_flows_);
      const auto& rates =
          cfg_.solver == SolverMode::kIncremental && !dense
              ? solver_.solve_touching(ports, open_fabric_flows_)
              : solver_.solve_all();
      for (const auto& [f, r] : rates) set_rate(f, r);
    } else if (cfg_.solver == SolverMode::kIncremental) {
      solve_job(job_id);
    } else {
      for (const int j : live_jobs_) solve_job(j);
    }
  }

  /// Drain queued changes at a grid point. Both modes queue the same
  /// changes and schedule the same grid events (the decisions depend only
  /// on the shared event timeline), the incremental solve covers the union
  /// of every touched component — closed flows' ports are queued too, so
  /// residual components are seeded — and the apply order stays ascending
  /// flow/job id. Coalescing therefore preserves the cross-mode
  /// write-sequence equivalence.
  void on_rate_update() {
    update_scheduled_ = false;
    if (cfg_.policy == placement::Policy::kLocality) {
      std::sort(pending_ports_.begin(), pending_ports_.end());
      pending_ports_.erase(
          std::unique(pending_ports_.begin(), pending_ports_.end()),
          pending_ports_.end());
      solve_now(-1, pending_ports_);
      pending_ports_.clear();
    } else if (cfg_.solver == SolverMode::kIncremental) {
      std::sort(pending_jobs_.begin(), pending_jobs_.end());
      pending_jobs_.erase(
          std::unique(pending_jobs_.begin(), pending_jobs_.end()),
          pending_jobs_.end());
      for (const int j : pending_jobs_) solve_job(j);  // departed: no-op
      pending_jobs_.clear();
    } else {
      pending_jobs_.clear();
      for (const int j : live_jobs_) solve_job(j);
    }
  }

  /// Reserved-rate sharing for Silo/Oktopus: the tenant's open flows split
  /// its hose guarantee max-min fairly (no sharing across tenants, so one
  /// tenant is always a complete component).
  void solve_job(int job_id) {
    const Job& job = jobs_[static_cast<std::size_t>(job_id)];
    if (job.open_flows == 0) return;
    ++perf_.solves;
    hose_demands_.clear();
    hose_ids_.clear();
    for (const int f : job.flow_ids) {
      const SimFlow& fl = table_.flow(f);
      if (!fl.open || fl.job != job_id) continue;
      hose_demands_.push_back(
          {fl.src_local, fl.dst_local, job.guarantee.bandwidth});
      hose_ids_.push_back(f);
    }
    const std::vector<RateBps> caps(static_cast<std::size_t>(job.n_vms),
                                    job.guarantee.bandwidth);
    const auto rates = pacer::hose_allocate(hose_demands_, caps, caps);
    perf_.solved_flows += static_cast<std::int64_t>(hose_ids_.size());
    for (std::size_t i = 0; i < hose_ids_.size(); ++i)
      set_rate(hose_ids_[i], rates[i].bps());
  }

  // --- workload sampling (draw order is part of the seed contract) ------
  int sample_vms() {
    // Geometric around the mean, at least 2 (a tenant needs VM pairs).
    const double p = 1.0 / std::max(1.0, cfg_.mean_vms - 1.0);
    int n = 2;
    while (rng_.uniform() > p && n < 8 * cfg_.mean_vms) ++n;
    return n;
  }
  RateBps sample_bw(RateBps mean) {
    return RateBps{std::clamp(rng_.exponential(mean.bps()),
                              cfg_.topo.server_link_rate.bps() / 100.0,
                              cfg_.topo.server_link_rate.bps() / 2.0)};
  }

  const FlowSimConfig& cfg_;
  obs::MetricsRegistry* metrics_;
  topology::Topology topo_;
  placement::PlacementEngine placer_;
  FlowTable table_;
  MaxMinSolver solver_;
  Rng rng_;
  FlowSimResult result_;
  FlowSimPerf perf_;

  std::vector<double> arrivals_;
  std::vector<Job> jobs_;
  std::vector<int> live_jobs_;  ///< non-departed job ids, ascending
  std::priority_queue<Ev, std::vector<Ev>, EvLater> heap_;
  std::uint64_t seq_ = 0;
  double t_ = 0;

  const int total_slots_;
  int used_slots_ = 0;
  int open_fabric_flows_ = 0;  ///< open flows with at least one fabric hop
  double util_acc_ = 0;          ///< bit-seconds carried by the fabric
  double occupancy_acc_ = 0;     ///< slot-seconds occupied
  double occupancy_mark_s_ = 0;  ///< occupancy integrated up to here
  double job_duration_acc_ = 0;

  // Coalesced-mode queues (rate_update_s > 0): flow-set changes
  // accumulated since the last grid solve.
  std::vector<int> pending_ports_, pending_jobs_;
  bool update_scheduled_ = false;

  // Scratch reused across events.
  std::vector<int> touched_ports_;
  std::vector<pacer::HoseDemand> hose_demands_;
  std::vector<int> hose_ids_;
};

void Sim::on_arrival(int index) {
  if (static_cast<std::size_t>(index) + 1 < arrivals_.size())
    push_event(arrivals_[static_cast<std::size_t>(index) + 1],
               EvKind::kArrival, index + 1);
  const double at = t_;
  const bool measuring = at >= cfg_.warmup_s;

  const bool class_a = rng_.uniform() < cfg_.class_a_fraction;
  TenantRequest req;
  req.num_vms = sample_vms();
  req.tenant_class =
      class_a ? TenantClass::kDelaySensitive : TenantClass::kBandwidthOnly;
  if (class_a) {
    req.guarantee = {sample_bw(cfg_.a_bandwidth_mean), cfg_.a_burst,
                     cfg_.a_delay, cfg_.a_burst_rate};
    req.guarantee.burst_rate =
        std::max(req.guarantee.burst_rate, req.guarantee.bandwidth);
  } else {
    req.guarantee = {sample_bw(cfg_.b_bandwidth_mean), cfg_.b_burst,
                     TimeNs{0}, RateBps{0}};
  }
  if (measuring) {
    ++result_.arrivals;
    (class_a ? result_.arrivals_a : result_.arrivals_b)++;
  }
  occupancy_advance(at);
  auto admitted = placer_.place(req);
  used_slots_ = total_slots_ - placer_.free_slots();
  if (!admitted) return;
  if (measuring) {
    ++result_.admitted;
    (class_a ? result_.admitted_a : result_.admitted_b)++;
  }

  const int job_id = static_cast<int>(jobs_.size());
  Job job;
  job.placement_id = admitted->id;
  job.class_a = class_a;
  job.n_vms = req.num_vms;
  job.guarantee = req.guarantee;
  job.vm_server = admitted->vm_to_server;
  job.arrive_s = at;
  job.compute_end_s = at + rng_.exponential(cfg_.compute_time_mean_s);
  job.counted = measuring;

  std::vector<workload::Pair> pairs;
  if (class_a) {
    pairs = workload::all_to_one(req.num_vms);
  } else if (cfg_.permutation_x <= 0 ||
             cfg_.permutation_x >= req.num_vms - 1) {
    pairs = workload::all_to_all(req.num_vms);
  } else {
    pairs = workload::permutation(req.num_vms, cfg_.permutation_x, rng_);
  }
  // One transfer-duration draw per job; each flow carries the bytes its
  // reserved share moves in that time (class-A flows share the
  // aggregator's hose, class-B flows get the full per-VM rate).
  const double duration_s = rng_.exponential(
      class_a ? cfg_.a_transfer_time_mean_s : cfg_.b_transfer_time_mean_s);
  const double per_flow_rate =
      class_a ? req.guarantee.bandwidth.bps() / (req.num_vms - 1)
              : req.guarantee.bandwidth.bps();
  const double flow_bytes = std::max(1.0, per_flow_rate / 8.0 * duration_s);

  touched_ports_.clear();
  for (const auto& [src, dst] : pairs) {
    const int ss = job.vm_server[static_cast<std::size_t>(src)];
    const int ds = job.vm_server[static_cast<std::size_t>(dst)];
    const topology::PortSpan span = topo_.path_span(ss, ds);
    const int fid = table_.allocate(span);
    SimFlow& fl = table_.flow(fid);
    fl.job = job_id;
    fl.src_local = src;
    fl.dst_local = dst;
    fl.remaining = flow_bytes;
    fl.updated_s = at;
    job.flow_ids.push_back(fid);
    ++job.open_flows;
    if (span.size > 0) ++open_fabric_flows_;
    for (const topology::PortId p : span) touched_ports_.push_back(p.value);
  }
  jobs_.push_back(std::move(job));
  live_jobs_.push_back(job_id);  // ids are monotonic: stays sorted
  push_event(jobs_.back().compute_end_s, EvKind::kComputeDone, job_id);

  if (cfg_.policy == placement::Policy::kLocality) {
    // Intra-server flows never touch the fabric: access-link rate, fixed.
    for (const int f : jobs_.back().flow_ids)
      if (table_.flow(f).n_ports == 0)
        set_rate(f, cfg_.topo.server_link_rate.bps());
  }
  solve_for_change(job_id, touched_ports_);
}

void Sim::on_flow_done(int f, std::uint32_t gen) {
  SimFlow& fl = table_.flow(f);
  if (!fl.open || fl.generation != gen) {
    ++perf_.stale_predictions;
    return;
  }
  integrate(f);  // final fabric bit-seconds under the closing rate
  fl.remaining = 0;
  const int job_id = fl.job;
  touched_ports_.clear();
  for (int i = 0; i < fl.n_ports; ++i)
    touched_ports_.push_back(fl.ports[static_cast<std::size_t>(i)]);
  if (fl.n_ports > 0) --open_fabric_flows_;
  table_.close(f);
  Job& job = jobs_[static_cast<std::size_t>(job_id)];
  --job.open_flows;
  solve_for_change(job_id, touched_ports_);
  if (job.open_flows == 0 && job.compute_end_s <= t_) depart(job_id);
}

void Sim::on_compute_done(int job_id) {
  const Job& job = jobs_[static_cast<std::size_t>(job_id)];
  if (!job.departed && job.open_flows == 0) depart(job_id);
}

void Sim::depart(int job_id) {
  Job& job = jobs_[static_cast<std::size_t>(job_id)];
  job.departed = true;
  occupancy_advance(t_);
  placer_.remove(job.placement_id);
  used_slots_ = total_slots_ - placer_.free_slots();
  live_jobs_.erase(
      std::lower_bound(live_jobs_.begin(), live_jobs_.end(), job_id));
  if (job.counted) {
    ++result_.completed_jobs;
    job_duration_acc_ += t_ - job.arrive_s;
  }
}

FlowSimResult Sim::run() {
  // Pre-generate Poisson arrivals. Residence = max(compute, transfer
  // duration) per class, both of which are sampled directly, so the
  // arrival rate that realizes the occupancy target is predictable across
  // policies.
  const double res_a =
      std::max(cfg_.compute_time_mean_s, cfg_.a_transfer_time_mean_s) * 1.15;
  const double res_b =
      std::max(cfg_.compute_time_mean_s, cfg_.b_transfer_time_mean_s) * 1.15;
  const double residence_est = cfg_.class_a_fraction * res_a +
                               (1.0 - cfg_.class_a_fraction) * res_b;
  const double lambda =
      cfg_.occupancy * total_slots_ / (cfg_.mean_vms * residence_est);
  for (double t = rng_.exponential(1.0 / lambda); t < cfg_.sim_duration_s;
       t += rng_.exponential(1.0 / lambda))
    arrivals_.push_back(t);
  if (!arrivals_.empty()) push_event(arrivals_[0], EvKind::kArrival, 0);

  while (!heap_.empty() && heap_.top().t < cfg_.sim_duration_s) {
    const Ev ev = heap_.top();
    heap_.pop();
    t_ = ev.t;
    ++perf_.events;
    switch (ev.kind) {
      case EvKind::kArrival:
        on_arrival(ev.id);
        break;
      case EvKind::kFlowDone:
        on_flow_done(ev.id, ev.gen);
        break;
      case EvKind::kComputeDone:
        on_compute_done(ev.id);
        break;
      case EvKind::kRateUpdate:
        on_rate_update();
        break;
    }
  }

  // Close the measurement window: charge open flows and occupied slots up
  // to the horizon. Ascending flow id, the canonical apply order.
  t_ = cfg_.sim_duration_s;
  const int n_slots = table_.size();
  for (int f = 0; f < n_slots; ++f)
    if (table_.flow(f).open) integrate(f);
  occupancy_advance(t_);

  const double measured_s =
      std::max(0.0, cfg_.sim_duration_s - cfg_.warmup_s);
  const double fabric_capacity = static_cast<double>(topo_.num_servers()) *
                                 cfg_.topo.server_link_rate.bps();
  if (measured_s > 0) {
    result_.network_utilization = util_acc_ / (fabric_capacity * measured_s);
    result_.avg_occupancy = occupancy_acc_ / (total_slots_ * measured_s);
  }
  if (result_.completed_jobs > 0)
    result_.avg_job_duration_s = job_duration_acc_ / result_.completed_jobs;

  perf_.maxmin_rounds = solver_.waterfill_rounds();
  if (cfg_.policy == placement::Policy::kLocality)
    perf_.solved_flows = solver_.solved_flows();
  result_.perf = perf_;
  if (metrics_) {
    metrics_->counter("flowsim.events", "events", "flowsim")
        .inc(perf_.events);
    metrics_->counter("flowsim.solves", "solves", "flowsim")
        .inc(perf_.solves);
    metrics_->counter("flowsim.solved_flows", "flows", "flowsim")
        .inc(perf_.solved_flows);
    metrics_->counter("flowsim.rate_changes", "changes", "flowsim")
        .inc(perf_.rate_changes);
    metrics_->counter("flowsim.maxmin_rounds", "rounds", "flowsim")
        .inc(perf_.maxmin_rounds);
    metrics_->counter("flowsim.stale_predictions", "events", "flowsim")
        .inc(perf_.stale_predictions);
  }
  return result_;
}

}  // namespace

FlowSimResult run_flow_sim(const FlowSimConfig& cfg,
                           obs::MetricsRegistry* metrics) {
  Sim sim(cfg, metrics);
  return sim.run();
}

}  // namespace silo::flowsim
