#include "flowsim/flow_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "pacer/hose_allocator.h"
#include "util/rng.h"
#include "workload/patterns.h"

namespace silo::flowsim {
namespace {

struct Flow {
  int job = -1;
  int src_local = -1, dst_local = -1;
  double remaining = 0;  ///< bytes
  double rate = 0;       ///< bits/s, recomputed each step
  std::vector<int> ports;
  bool open = true;
};

struct Job {
  placement::TenantId placement_id = -1;
  bool class_a = false;
  int n_vms = 0;
  SiloGuarantee guarantee;
  std::vector<int> vm_server;
  std::vector<int> flow_ids;
  int open_flows = 0;
  double arrive_s = 0;
  double compute_end_s = 0;
  bool departed = false;
  bool counted = false;  ///< arrived after warmup
};

/// Global max-min fairness over port capacities — ideal TCP emulation for
/// the locality baseline. Intra-server flows (empty port list) are not
/// fabric-constrained and run at the access-link rate.
void maxmin_rates(std::vector<Flow>& flows, const std::vector<int>& active,
                  const topology::Topology& topo) {
  const int n_ports = topo.num_ports();
  std::vector<double> cap(n_ports);
  std::vector<int> count(n_ports, 0);
  for (int p = 0; p < n_ports; ++p)
    cap[p] = topo.port(topology::PortId{p}).rate.bps();

  std::vector<int> unfrozen;
  for (int f : active) {
    if (flows[f].ports.empty()) {
      flows[f].rate = topo.config().server_link_rate.bps();
      continue;
    }
    unfrozen.push_back(f);
    for (int p : flows[f].ports) ++count[p];
  }

  while (!unfrozen.empty()) {
    // Bottleneck port: smallest fair share among loaded ports.
    double best = std::numeric_limits<double>::infinity();
    int best_port = -1;
    for (int p = 0; p < n_ports; ++p) {
      if (count[p] == 0) continue;
      const double share = cap[p] / count[p];
      if (share < best) {
        best = share;
        best_port = p;
      }
    }
    if (best_port < 0) break;
    // Freeze every unfrozen flow crossing the bottleneck at the share.
    std::vector<int> rest;
    rest.reserve(unfrozen.size());
    for (int f : unfrozen) {
      const bool hits = std::find(flows[f].ports.begin(), flows[f].ports.end(),
                                  best_port) != flows[f].ports.end();
      if (!hits) {
        rest.push_back(f);
        continue;
      }
      flows[f].rate = best;
      for (int p : flows[f].ports) {
        cap[p] -= best;
        if (cap[p] < 0) cap[p] = 0;
        --count[p];
      }
    }
    unfrozen.swap(rest);
  }
}

/// Reserved-rate sharing for Silo/Oktopus: each job's open flows split the
/// tenant's hose guarantees max-min fairly (no sharing across tenants).
void reserved_rates(std::vector<Flow>& flows, Job& job) {
  std::vector<pacer::HoseDemand> demands;
  std::vector<int> ids;
  for (int f : job.flow_ids) {
    if (!flows[f].open) continue;
    demands.push_back({flows[f].src_local, flows[f].dst_local,
                       job.guarantee.bandwidth});
    ids.push_back(f);
  }
  if (demands.empty()) return;
  const std::vector<RateBps> caps(static_cast<std::size_t>(job.n_vms),
                                  job.guarantee.bandwidth);
  const auto rates = pacer::hose_allocate(demands, caps, caps);
  for (std::size_t i = 0; i < ids.size(); ++i)
    flows[ids[i]].rate = rates[i].bps();
}

}  // namespace

FlowSimResult run_flow_sim(const FlowSimConfig& cfg) {
  topology::Topology topo(cfg.topo);
  placement::PlacementEngine placer(topo, cfg.policy);
  Rng rng(cfg.seed);
  FlowSimResult result;

  const int total_slots = topo.total_vm_slots();
  // Residence = max(compute, transfer duration) per class, both of which
  // are sampled directly, so the Poisson arrival rate that realizes the
  // occupancy target is predictable across policies.
  const double res_a =
      std::max(cfg.compute_time_mean_s, cfg.a_transfer_time_mean_s) * 1.15;
  const double res_b =
      std::max(cfg.compute_time_mean_s, cfg.b_transfer_time_mean_s) * 1.15;
  const double residence_est = cfg.class_a_fraction * res_a +
                               (1.0 - cfg.class_a_fraction) * res_b;
  const double lambda =
      cfg.occupancy * total_slots / (cfg.mean_vms * residence_est);

  // Pre-generate Poisson arrivals.
  std::vector<double> arrivals;
  for (double t = rng.exponential(1.0 / lambda); t < cfg.sim_duration_s;
       t += rng.exponential(1.0 / lambda))
    arrivals.push_back(t);

  std::vector<Flow> flows;
  std::vector<Job> jobs;
  std::vector<int> active_flows;

  auto sample_vms = [&] {
    // Geometric around the mean, at least 2 (a tenant needs VM pairs).
    const double p = 1.0 / std::max(1.0, cfg.mean_vms - 1.0);
    int n = 2;
    while (rng.uniform() > p && n < 8 * cfg.mean_vms) ++n;
    return n;
  };
  auto sample_bw = [&](RateBps mean) {
    return RateBps{std::clamp(rng.exponential(mean.bps()),
                              cfg.topo.server_link_rate.bps() / 100.0,
                              cfg.topo.server_link_rate.bps() / 2.0)};
  };

  double util_acc = 0;      // bit-seconds carried by the fabric
  double occupancy_acc = 0; // slot-seconds occupied
  double measured_s = 0;
  double job_duration_acc = 0;

  std::size_t next_arrival = 0;
  const int steps =
      static_cast<int>(std::ceil(cfg.sim_duration_s / cfg.step_s));
  for (int step = 0; step < steps; ++step) {
    const double t = step * cfg.step_s;
    const bool measuring = t >= cfg.warmup_s;

    // --- Arrivals -----------------------------------------------------
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival] < t + cfg.step_s) {
      const double at = arrivals[next_arrival++];
      const bool class_a = rng.uniform() < cfg.class_a_fraction;
      TenantRequest req;
      req.num_vms = sample_vms();
      req.tenant_class = class_a ? TenantClass::kDelaySensitive
                                 : TenantClass::kBandwidthOnly;
      if (class_a) {
        req.guarantee = {sample_bw(cfg.a_bandwidth_mean), cfg.a_burst,
                         cfg.a_delay, cfg.a_burst_rate};
        req.guarantee.burst_rate =
            std::max(req.guarantee.burst_rate, req.guarantee.bandwidth);
      } else {
        req.guarantee = {sample_bw(cfg.b_bandwidth_mean), cfg.b_burst,
                         TimeNs{0}, RateBps{0}};
      }
      if (measuring) {
        ++result.arrivals;
        (class_a ? result.arrivals_a : result.arrivals_b)++;
      }
      auto admitted = placer.place(req);
      if (!admitted) continue;
      if (measuring) {
        ++result.admitted;
        (class_a ? result.admitted_a : result.admitted_b)++;
      }

      Job job;
      job.placement_id = admitted->id;
      job.class_a = class_a;
      job.n_vms = req.num_vms;
      job.guarantee = req.guarantee;
      job.vm_server = admitted->vm_to_server;
      job.arrive_s = at;
      job.compute_end_s = at + rng.exponential(cfg.compute_time_mean_s);
      job.counted = measuring;

      std::vector<workload::Pair> pairs;
      if (class_a) {
        pairs = workload::all_to_one(req.num_vms);
      } else if (cfg.permutation_x <= 0 ||
                 cfg.permutation_x >= req.num_vms - 1) {
        pairs = workload::all_to_all(req.num_vms);
      } else {
        pairs = workload::permutation(req.num_vms, cfg.permutation_x, rng);
      }
      // One transfer-duration draw per job; each flow carries the bytes its
      // reserved share moves in that time (class-A flows share the
      // aggregator's hose, class-B flows get the full per-VM rate).
      const double duration_s = rng.exponential(
          class_a ? cfg.a_transfer_time_mean_s : cfg.b_transfer_time_mean_s);
      const double per_flow_rate =
          class_a ? req.guarantee.bandwidth.bps() / (req.num_vms - 1)
                  : req.guarantee.bandwidth.bps();
      const double flow_bytes =
          std::max(1.0, per_flow_rate / 8.0 * duration_s);
      const int job_id = static_cast<int>(jobs.size());
      for (const auto& [src, dst] : pairs) {
        Flow fl;
        fl.job = job_id;
        fl.src_local = src;
        fl.dst_local = dst;
        fl.remaining = flow_bytes;
        const int ss = job.vm_server[static_cast<std::size_t>(src)];
        const int ds = job.vm_server[static_cast<std::size_t>(dst)];
        for (auto pid : topo.path(ss, ds)) fl.ports.push_back(pid.value);
        const int fid = static_cast<int>(flows.size());
        flows.push_back(std::move(fl));
        job.flow_ids.push_back(fid);
        active_flows.push_back(fid);
        ++job.open_flows;
      }
      jobs.push_back(std::move(job));
    }

    // --- Rates ---------------------------------------------------------
    if (cfg.policy == placement::Policy::kLocality) {
      maxmin_rates(flows, active_flows, topo);
    } else {
      for (auto& job : jobs)
        if (!job.departed && job.open_flows > 0) reserved_rates(flows, job);
    }

    // --- Integrate -----------------------------------------------------
    std::vector<int> still_active;
    still_active.reserve(active_flows.size());
    for (int f : active_flows) {
      Flow& fl = flows[f];
      const double moved = fl.rate * cfg.step_s / 8.0;  // bytes this step
      fl.remaining -= moved;
      if (measuring && !fl.ports.empty())
        util_acc += fl.rate * cfg.step_s;  // bit-seconds on the fabric
      if (fl.remaining <= 0) {
        fl.open = false;
        fl.rate = 0;
        --jobs[fl.job].open_flows;
      } else {
        still_active.push_back(f);
      }
    }
    active_flows.swap(still_active);

    // --- Departures & occupancy ----------------------------------------
    for (auto& job : jobs) {
      if (job.departed) continue;
      if (job.open_flows == 0 && job.compute_end_s <= t + cfg.step_s) {
        job.departed = true;
        placer.remove(job.placement_id);
        if (job.counted) {
          ++result.completed_jobs;
          job_duration_acc += (t + cfg.step_s) - job.arrive_s;
        }
      }
    }
    if (measuring) {
      occupancy_acc +=
          (total_slots - placer.free_slots()) * cfg.step_s;
      measured_s += cfg.step_s;
    }
  }

  const double fabric_capacity =
      static_cast<double>(topo.num_servers()) * cfg.topo.server_link_rate.bps();
  if (measured_s > 0) {
    result.network_utilization = util_acc / (fabric_capacity * measured_s);
    result.avg_occupancy = occupancy_acc / (total_slots * measured_s);
  }
  if (result.completed_jobs > 0)
    result.avg_job_duration_s = job_duration_acc / result.completed_jobs;
  return result;
}

}  // namespace silo::flowsim
