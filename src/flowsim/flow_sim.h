// Flow-level datacenter simulator (§6.3): Poisson tenant arrivals into a
// large multi-rooted tree, jobs that move data between their VMs and then
// finish after a compute time, and three bandwidth regimes —
//   Silo / Oktopus : flows run at their (hose-model) reserved rates
//   Locality (TCP) : ideal TCP emulation, global max-min fairness over
//                    link capacities
// The simulator advances in fixed fluid steps: rates are recomputed each
// step, remaining bytes integrated, and finished jobs release their VMs.
#pragma once

#include <cstdint>

#include "placement/placement.h"
#include "topology/topology.h"
#include "util/units.h"

namespace silo::flowsim {

struct FlowSimConfig {
  topology::TopologyConfig topo;
  placement::Policy policy = placement::Policy::kSilo;

  double occupancy = 0.75;       ///< target average VM-slot occupancy
  double class_a_fraction = 0.5;
  double permutation_x = 1.0;    ///< class-B pattern; <= 0 means all-to-all
  /// Geometric tenant size (>= 2). Keep this above vm_slots_per_server so
  /// tenants actually span servers and exercise the fabric.
  double mean_vms = 12.0;

  // Class-A (delay-sensitive, all-to-one) guarantee means — Table 3.
  RateBps a_bandwidth_mean = 0.25 * kGbps;
  Bytes a_burst = 15 * kKB;
  TimeNs a_delay = 1 * kMsec;
  RateBps a_burst_rate = 1 * kGbps;

  // Class-B (bandwidth-only) guarantee means — Table 3.
  RateBps b_bandwidth_mean = 2 * kGbps;
  Bytes b_burst {1500};

  /// Flow volumes are sized as (reserved per-flow rate) x (job transfer
  /// duration), so a job's network time is the sampled duration no matter
  /// what bandwidth it drew — occupancy stays the controlled variable,
  /// matching the paper's methodology. OLDI (class-A) jobs move little
  /// data; data-parallel (class-B) jobs are transfer-dominated.
  double a_transfer_time_mean_s = 5.0;
  double b_transfer_time_mean_s = 60.0;

  double compute_time_mean_s = 20.0;
  double sim_duration_s = 1500.0;
  double warmup_s = 150.0;
  double step_s = 1.0;
  std::uint64_t seed = 1;
};

struct FlowSimResult {
  int arrivals = 0, admitted = 0;
  int arrivals_a = 0, admitted_a = 0;
  int arrivals_b = 0, admitted_b = 0;
  double admitted_frac() const {
    return arrivals ? static_cast<double>(admitted) / arrivals : 0;
  }
  double admitted_frac_a() const {
    return arrivals_a ? static_cast<double>(admitted_a) / arrivals_a : 0;
  }
  double admitted_frac_b() const {
    return arrivals_b ? static_cast<double>(admitted_b) / arrivals_b : 0;
  }
  /// Time-averaged fabric throughput over the aggregate server access
  /// capacity (intra-server flows carry no fabric traffic).
  double network_utilization = 0;
  double avg_occupancy = 0;
  double avg_job_duration_s = 0;
  int completed_jobs = 0;
};

FlowSimResult run_flow_sim(const FlowSimConfig& cfg);

}  // namespace silo::flowsim
