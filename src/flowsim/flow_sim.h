// Flow-level datacenter simulator (§6.3): Poisson tenant arrivals into a
// large multi-rooted tree, jobs that move data between their VMs and then
// finish after a compute time, and three bandwidth regimes —
//   Silo / Oktopus : flows run at their (hose-model) reserved rates
//   Locality (TCP) : ideal TCP emulation, global max-min fairness over
//                    link capacities
// The simulator is event-driven: rates are piecewise-constant between flow
// arrivals and departures, so remaining bytes are integrated analytically
// and the only events are job arrival, predicted transfer completion,
// compute-done, and (optionally) coalesced rate-update grid points.
// On each flow add/remove only the affected connected
// component of the flow<->port sharing graph (locality) or the affected
// tenant's hose (Silo/Oktopus) is re-solved; a reference mode re-solves
// globally and is pinned bit-identical by cross-mode tests.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "placement/placement.h"
#include "topology/topology.h"
#include "util/units.h"

namespace silo::flowsim {

/// How rates are re-solved when the active flow set changes. Both modes
/// share the event-driven timeline and produce bit-identical results; they
/// differ only in how much of the rate problem is recomputed per event
/// (cf. placement::AdmissionMode, where kFullRescan plays the same role).
enum class SolverMode {
  /// Re-solve only the connected component(s) of the flow<->port sharing
  /// graph touched by the change (locality), or only the affected tenant's
  /// hose allocation (Silo/Oktopus).
  kIncremental,
  /// Reference: globally re-solve every open flow (locality) or every live
  /// tenant (Silo/Oktopus) on each change.
  kReference,
};

struct FlowSimConfig {
  topology::TopologyConfig topo;
  placement::Policy policy = placement::Policy::kSilo;
  SolverMode solver = SolverMode::kIncremental;

  double occupancy = 0.75;       ///< target average VM-slot occupancy
  double class_a_fraction = 0.5;
  double permutation_x = 1.0;    ///< class-B pattern; <= 0 means all-to-all
  /// Geometric tenant size (>= 2). Keep this above vm_slots_per_server so
  /// tenants actually span servers and exercise the fabric.
  double mean_vms = 12.0;

  // Class-A (delay-sensitive, all-to-one) guarantee means — Table 3.
  RateBps a_bandwidth_mean = 0.25 * kGbps;
  Bytes a_burst = 15 * kKB;
  TimeNs a_delay = 1 * kMsec;
  RateBps a_burst_rate = 1 * kGbps;

  // Class-B (bandwidth-only) guarantee means — Table 3.
  RateBps b_bandwidth_mean = 2 * kGbps;
  Bytes b_burst {1500};

  /// Flow volumes are sized as (reserved per-flow rate) x (job transfer
  /// duration), so a job's network time is the sampled duration no matter
  /// what bandwidth it drew — occupancy stays the controlled variable,
  /// matching the paper's methodology. OLDI (class-A) jobs move little
  /// data; data-parallel (class-B) jobs are transfer-dominated.
  double a_transfer_time_mean_s = 5.0;
  double b_transfer_time_mean_s = 60.0;

  double compute_time_mean_s = 20.0;
  double sim_duration_s = 1500.0;
  double warmup_s = 150.0;
  /// Rate re-solve coalescing grid (seconds). 0 = re-solve on every flow
  /// add/remove (pure event-driven). > 0 = queue flow-set changes and
  /// re-solve once per grid point — the granularity the fixed-step fluid
  /// simulator used — which bounds solver work when sustained saturation
  /// percolates the sharing graph into one giant component (32K-server
  /// locality at 90% occupancy). Queued flows run at rate 0 until their
  /// first grid solve, so they can never complete early. The grid applies
  /// identically in both solver modes: cross-mode bit-equivalence holds at
  /// any value.
  double rate_update_s = 0.0;
  std::uint64_t seed = 1;
};

/// Solver-side work counters — the basis of the flowsim.* metric family
/// and of the bench_flowsim_scale speedup measurement. These are *not*
/// part of the cross-mode equivalence contract (the reference mode does
/// strictly more solver work by design).
struct FlowSimPerf {
  std::int64_t events = 0;             ///< arrival/flow-done/compute events
  std::int64_t solves = 0;             ///< solver invocations
  std::int64_t solved_flows = 0;       ///< flows passed through a solve
  std::int64_t rate_changes = 0;       ///< solve outputs that moved a rate
  std::int64_t maxmin_rounds = 0;      ///< waterfill freeze rounds (locality)
  std::int64_t stale_predictions = 0;  ///< lazily discarded heap entries
};

struct FlowSimResult {
  int arrivals = 0, admitted = 0;
  int arrivals_a = 0, admitted_a = 0;
  int arrivals_b = 0, admitted_b = 0;
  double admitted_frac() const {
    return arrivals ? static_cast<double>(admitted) / arrivals : 0;
  }
  double admitted_frac_a() const {
    return arrivals_a ? static_cast<double>(admitted_a) / arrivals_a : 0;
  }
  double admitted_frac_b() const {
    return arrivals_b ? static_cast<double>(admitted_b) / arrivals_b : 0;
  }
  /// Time-averaged fabric throughput over the aggregate server access
  /// capacity (intra-server flows carry no fabric traffic).
  double network_utilization = 0;
  double avg_occupancy = 0;
  double avg_job_duration_s = 0;
  int completed_jobs = 0;
  FlowSimPerf perf;
};

/// Run one simulation. When `metrics` is non-null the run's perf counters
/// are published once at the end under the flowsim.* family — pass a fresh
/// registry per run (counter names, like all registry names, are
/// register-once).
FlowSimResult run_flow_sim(const FlowSimConfig& cfg,
                           obs::MetricsRegistry* metrics = nullptr);

}  // namespace silo::flowsim
