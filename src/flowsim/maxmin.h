// Max-min fair rate solver over the flow<->port sharing graph, used by the
// flow-level simulator's locality baseline (ideal per-flow TCP fairness).
//
// Two entry points share one waterfill routine:
//   - solve_touching(ports): incremental — BFS the connected component(s) of
//     the sharing graph reachable from the given ports, then waterfill only
//     those flows. A flow add/remove can only change rates inside its own
//     component, so this is exact, not approximate.
//   - solve_all(): reference — waterfill every open fabric flow at once.
//
// Bit-identical equivalence: the waterfill freezes flows bottleneck-first,
// always picking the *strictly* smallest per-port fair share, with ties
// broken by ascending port id. A port's fair share and residual capacity
// are arithmetic over that port's own flows only, so interleaving other
// components into the scan (as solve_all does) changes neither the values
// nor the freeze round a flow lands in. Results are sorted by flow id
// before returning, so the caller's apply order is identical under both
// entry points — the foundation of SolverMode::kReference equivalence.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "flowsim/flow_table.h"
#include "topology/topology.h"

namespace silo::flowsim {

class MaxMinSolver {
 public:
  MaxMinSolver(const topology::Topology& topo, const FlowTable& table);

  /// Re-solve the component(s) of the sharing graph containing `ports`
  /// (the path ports of just-added or just-removed flows; removed flows
  /// must already be unlinked). Returns (flow, rate_bps) sorted by flow
  /// id, covering every flow in the touched components — including flows
  /// whose rate comes out unchanged; the caller's apply gate skips those.
  ///
  /// `open_flows_hint` (0 = unknown) is the caller's live open-flow
  /// count: once the BFS has visited more than half of it, the component
  /// is effectively global — discovery is abandoned and the solve
  /// restarts as solve_all(), whose linear table scan beats the
  /// scatter-walk. A superset solve waterfills to bit-identical rates,
  /// so this is purely a cost decision.
  const std::vector<std::pair<int, double>>& solve_touching(
      const std::vector<int>& ports, int open_flows_hint = 0);

  /// Reference: solve every open fabric flow from scratch.
  const std::vector<std::pair<int, double>>& solve_all();

  std::int64_t waterfill_rounds() const { return rounds_; }
  std::int64_t solved_flows() const { return solved_flows_; }

 private:
  void visit_flow(int f);
  void waterfill();

  const topology::Topology& topo_;
  const FlowTable& table_;

  // Epoch-stamped scratch: bumping epoch_ invalidates every mark without
  // touching the arrays, so a component re-solve costs O(component), not
  // O(cluster).
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> flow_epoch_, port_epoch_;
  /// Port list already enumerated by this solve's BFS. Without this mark
  /// a port's list is rescanned once per incident visited flow — O(k^2)
  /// per k-flow port, ruinous on saturated core ports.
  std::vector<std::uint32_t> scan_epoch_;
  std::vector<double> port_cap_;   ///< residual capacity, valid when marked
  std::vector<int> port_count_;    ///< unfrozen flows crossing, when marked

  std::vector<int> comp_flows_, comp_ports_;  ///< discovery order
  std::vector<int> bfs_stack_, freeze_;
  std::vector<std::uint32_t> frozen_epoch_;
  /// Lazy min-heap of (fair share, port id) candidates. Shares only rise
  /// as rounds release capacity, so a stored key is never above the true
  /// share — popping a key that still matches is popping the true minimum.
  std::vector<std::pair<double, int>> heap_;
  std::vector<std::pair<int, double>> result_;

  std::int64_t rounds_ = 0, solved_flows_ = 0;
};

}  // namespace silo::flowsim
