#include "flowsim/maxmin.h"

#include <algorithm>

namespace silo::flowsim {

MaxMinSolver::MaxMinSolver(const topology::Topology& topo,
                           const FlowTable& table)
    : topo_(topo), table_(table) {
  port_epoch_.assign(static_cast<std::size_t>(topo.num_ports()), 0);
  scan_epoch_.assign(static_cast<std::size_t>(topo.num_ports()), 0);
  port_cap_.assign(static_cast<std::size_t>(topo.num_ports()), 0.0);
  port_count_.assign(static_cast<std::size_t>(topo.num_ports()), 0);
}

void MaxMinSolver::visit_flow(int f) {
  comp_flows_.push_back(f);
  const SimFlow& fl = table_.flow(f);
  for (int i = 0; i < fl.n_ports; ++i) {
    const int p = fl.ports[static_cast<std::size_t>(i)];
    const auto pi = static_cast<std::size_t>(p);
    if (port_epoch_[pi] != epoch_) {
      port_epoch_[pi] = epoch_;
      port_cap_[pi] = topo_.port({p}).rate.bps();
      port_count_[pi] = 0;
      comp_ports_.push_back(p);
    }
    ++port_count_[pi];
  }
}

const std::vector<std::pair<int, double>>& MaxMinSolver::solve_touching(
    const std::vector<int>& ports, int open_flows_hint) {
  ++epoch_;
  flow_epoch_.resize(static_cast<std::size_t>(table_.size()), 0);
  comp_flows_.clear();
  comp_ports_.clear();
  bfs_stack_.clear();
  const std::size_t bail =
      open_flows_hint > 0 ? static_cast<std::size_t>(open_flows_hint) / 2
                          : static_cast<std::size_t>(-1);
  // Seed the BFS with every open flow currently crossing a touched port;
  // expand across shared ports until the component(s) close. Each port's
  // list is enumerated at most once (scan_epoch_) — membership is static
  // during a solve, so one scan discovers everything.
  auto push_port_flows = [&](int p) {
    const auto si = static_cast<std::size_t>(p);
    if (scan_epoch_[si] == epoch_) return;
    scan_epoch_[si] = epoch_;
    for (int f : table_.flows_on_port(p)) {
      const auto fi = static_cast<std::size_t>(f);
      if (flow_epoch_[fi] != epoch_) {
        flow_epoch_[fi] = epoch_;
        bfs_stack_.push_back(f);
      }
    }
  };
  for (int p : ports) push_port_flows(p);
  while (!bfs_stack_.empty()) {
    const int f = bfs_stack_.back();
    bfs_stack_.pop_back();
    visit_flow(f);
    if (comp_flows_.size() > bail) return solve_all();  // giant component
    const SimFlow& fl = table_.flow(f);
    for (int i = 0; i < fl.n_ports; ++i)
      push_port_flows(fl.ports[static_cast<std::size_t>(i)]);
  }
  waterfill();
  return result_;
}

const std::vector<std::pair<int, double>>& MaxMinSolver::solve_all() {
  ++epoch_;
  comp_flows_.clear();
  comp_ports_.clear();
  const int n = table_.size();
  for (int f = 0; f < n; ++f) {
    const SimFlow& fl = table_.flow(f);
    if (fl.open && fl.n_ports > 0) visit_flow(f);
  }
  waterfill();
  return result_;
}

void MaxMinSolver::waterfill() {
  // comp_flows_/comp_ports_ stay in discovery order: the heap's (share,
  // port id) comparator is a total order, so the pop sequence — and with
  // it every freeze — is independent of insertion order, and the final
  // result sort restores the canonical ascending-flow-id apply order.
  solved_flows_ += static_cast<std::int64_t>(comp_flows_.size());
  result_.clear();
  frozen_epoch_.resize(static_cast<std::size_t>(table_.size()), 0);

  // Bottleneck selection via a lazy min-heap instead of a per-round port
  // scan (dense components made that O(rounds x ports)). Fair shares only
  // rise as rounds release capacity, so a stored key is never above the
  // port's true share: a popped key that still matches the live value is
  // the true strict minimum, with ties to the lowest port id via the pair
  // ordering — the same selection, and the same freeze arithmetic in the
  // same ascending-flow-id order, as the scan it replaces.
  const auto later = [](const std::pair<double, int>& a,
                        const std::pair<double, int>& b) { return a > b; };
  heap_.clear();
  for (int p : comp_ports_) {
    const auto pi = static_cast<std::size_t>(p);
    if (port_count_[pi] > 0)
      heap_.emplace_back(port_cap_[pi] / port_count_[pi], p);
  }
  std::make_heap(heap_.begin(), heap_.end(), later);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    const auto [key, p] = heap_.back();
    heap_.pop_back();
    const auto pi = static_cast<std::size_t>(p);
    if (port_count_[pi] == 0) continue;  // fully frozen since the push
    const double share = port_cap_[pi] / port_count_[pi];
    if (share != key) {  // stale-low key: refresh and retry
      heap_.emplace_back(share, p);
      std::push_heap(heap_.begin(), heap_.end(), later);
      continue;
    }
    ++rounds_;
    // Freeze every unfrozen flow crossing the tightest port at its fair
    // share and release that bandwidth from the flow's other ports.
    freeze_.clear();
    for (int f : table_.flows_on_port(p))
      if (frozen_epoch_[static_cast<std::size_t>(f)] != epoch_)
        freeze_.push_back(f);
    std::sort(freeze_.begin(), freeze_.end());
    for (int f : freeze_) {
      frozen_epoch_[static_cast<std::size_t>(f)] = epoch_;
      result_.emplace_back(f, share);
      const SimFlow& fl = table_.flow(f);
      for (int i = 0; i < fl.n_ports; ++i) {
        const auto qi =
            static_cast<std::size_t>(fl.ports[static_cast<std::size_t>(i)]);
        port_cap_[qi] -= share;
        if (port_cap_[qi] < 0.0) port_cap_[qi] = 0.0;
        --port_count_[qi];
      }
    }
  }
  std::sort(result_.begin(), result_.end());
}

}  // namespace silo::flowsim
