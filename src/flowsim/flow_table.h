// Flow table of the flow-level simulator: pooled per-flow state plus the
// port-occupancy index (port -> open fabric flows) that the incremental
// max-min solver walks to find the connected component a flow change
// touches.
//
// Flow slots are recycled through a free list, so table size is bounded by
// the peak number of *concurrent* flows, not the total ever created (a
// 32K-server run churns millions). Every slot carries a generation that is
// bumped on each recycle and on each rate change; stale heap entries
// (completion predictions made under an older rate) are detected by
// generation mismatch and discarded lazily.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "topology/topology.h"

namespace silo::flowsim {

struct SimFlow {
  std::int32_t job = -1;
  std::int32_t src_local = -1, dst_local = -1;
  double remaining = 0;   ///< bytes outstanding as of updated_s
  double rate = 0;        ///< bits/s, piecewise constant between re-solves
  double updated_s = 0;   ///< last analytic integration point
  /// Bumped on recycle and on every rate change; completion predictions
  /// carry the generation they were made under.
  std::uint32_t generation = 0;
  /// Fabric egress ports (path order) and, per port, this flow's position
  /// in that port's occupancy list — so unlinking is O(path length).
  std::array<std::int32_t, topology::PortSpan::kMaxPorts> ports {};
  std::array<std::int32_t, topology::PortSpan::kMaxPorts> port_pos {};
  std::uint8_t n_ports = 0;  ///< 0 for intra-server flows (no fabric hop)
  bool open = false;
};

class FlowTable {
 public:
  explicit FlowTable(int num_ports)
      : port_flows_(static_cast<std::size_t>(num_ports)) {}

  /// Allocate (or recycle) a slot and link it into the occupancy index.
  /// The slot's generation survives recycling, so predictions against a
  /// previous occupant can never be mistaken for the new one.
  int allocate(const topology::PortSpan& span) {
    int f;
    if (!free_.empty()) {
      f = free_.back();
      free_.pop_back();
    } else {
      f = static_cast<int>(flows_.size());
      flows_.emplace_back();
    }
    SimFlow& fl = flows_[static_cast<std::size_t>(f)];
    const std::uint32_t gen = fl.generation + 1;
    fl = SimFlow{};
    fl.generation = gen;
    fl.open = true;
    fl.n_ports = static_cast<std::uint8_t>(span.size);
    for (int i = 0; i < span.size; ++i) {
      const int p = span.port[static_cast<std::size_t>(i)].value;
      auto& list = port_flows_[static_cast<std::size_t>(p)];
      fl.ports[static_cast<std::size_t>(i)] = p;
      fl.port_pos[static_cast<std::size_t>(i)] = static_cast<int>(list.size());
      list.push_back(f);
    }
    return f;
  }

  /// Close a flow: unlink it from the occupancy index (swap-with-back, the
  /// moved flow's back-pointer is patched) and return the slot to the free
  /// list. The slot stays readable until recycled.
  void close(int f) {
    SimFlow& fl = flows_[static_cast<std::size_t>(f)];
    for (int i = 0; i < fl.n_ports; ++i) {
      const int p = fl.ports[static_cast<std::size_t>(i)];
      auto& list = port_flows_[static_cast<std::size_t>(p)];
      const int pos = fl.port_pos[static_cast<std::size_t>(i)];
      const int moved = list.back();
      list[static_cast<std::size_t>(pos)] = moved;
      list.pop_back();
      if (moved != f) {
        SimFlow& mf = flows_[static_cast<std::size_t>(moved)];
        for (int j = 0; j < mf.n_ports; ++j) {
          if (mf.ports[static_cast<std::size_t>(j)] == p) {
            mf.port_pos[static_cast<std::size_t>(j)] = pos;
            break;
          }
        }
      }
    }
    fl.open = false;
    fl.rate = 0;
    free_.push_back(f);
  }

  SimFlow& flow(int f) { return flows_[static_cast<std::size_t>(f)]; }
  const SimFlow& flow(int f) const {
    return flows_[static_cast<std::size_t>(f)];
  }

  /// Open fabric flows currently crossing port `p` (unspecified order).
  const std::vector<int>& flows_on_port(int p) const {
    return port_flows_[static_cast<std::size_t>(p)];
  }

  int num_ports() const { return static_cast<int>(port_flows_.size()); }
  /// Slot-table size (peak concurrent flows), not the live count.
  int size() const { return static_cast<int>(flows_.size()); }

 private:
  std::vector<SimFlow> flows_;
  std::vector<int> free_;
  std::vector<std::vector<int>> port_flows_;
};

}  // namespace silo::flowsim
