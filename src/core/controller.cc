#include "core/controller.h"

#include <algorithm>
#include <stdexcept>

#include "netcalc/curve.h"

namespace silo {

SiloController::SiloController(const topology::TopologyConfig& topo,
                               const Options& options)
    : topo_(topo),
      engine_(topo_, options.policy, options.nic_delay_allowance,
              options.hose_tightening, options.admission_mode) {
  m_admissions_ = metrics_.counter("controller.admissions", "tenants",
                                   "controller");
  m_rejections_ = metrics_.counter("controller.rejections", "tenants",
                                   "controller");
  m_releases_ = metrics_.counter("controller.releases", "tenants",
                                 "controller");
  m_replaced_ = metrics_.counter("controller.recovery.replaced", "tenants",
                                 "controller");
  m_degraded_ = metrics_.counter("controller.recovery.degraded", "tenants",
                                 "controller");
  m_unplaced_ = metrics_.counter("controller.recovery.unplaced", "tenants",
                                 "controller");
  m_promotions_ = metrics_.counter("controller.recovery.promotions", "tenants",
                                   "controller");
  m_diff_deltas_ = metrics_.counter("controller.diff.deltas", "deltas",
                                    "controller");
  m_diff_upserts_ = metrics_.counter("controller.diff.upserts", "records",
                                     "controller");
  m_diff_removes_ = metrics_.counter("controller.diff.removes", "records",
                                     "controller");
  m_lease_granted_ = metrics_.counter("controller.lease.granted", "leases",
                                      "controller");
  m_lease_revoked_ = metrics_.counter("controller.lease.revoked", "leases",
                                      "controller");
  m_lease_expired_ = metrics_.counter("controller.lease.expired", "leases",
                                      "controller");
  m_lease_rejected_ = metrics_.counter("controller.lease.rejected", "leases",
                                       "controller");
  m_lease_active_ = metrics_.gauge("controller.lease.active", "leases",
                                   "controller");
}

void SiloController::journal_op(JournalRecord rec) {
  if (journal_ == nullptr || replaying_) return;
  journal_->append(std::move(rec));
}

void SiloController::maybe_compact() {
  if (journal_ == nullptr || replaying_ || snapshot_every_ <= 0) return;
  if (++ops_since_snapshot_ < snapshot_every_) return;
  journal_->compact(snapshot());
  ops_since_snapshot_ = 0;
}

void SiloController::attach_journal(DeltaJournal* journal,
                                    std::int64_t snapshot_every) {
  journal_ = journal;
  snapshot_every_ = snapshot_every;
  ops_since_snapshot_ = 0;
}

std::optional<TenantHandle> SiloController::admit(
    const TenantRequest& request) {
  JournalRecord jrec;
  jrec.op = JournalOp::kAdmit;
  jrec.request = request;
  journal_op(std::move(jrec));
  auto placed = engine_.place(request);
  if (!placed) {
    m_rejections_.inc();
    maybe_compact();
    return std::nullopt;
  }
  m_admissions_.inc();
  TenantHandle handle{placed->id, placed->vm_to_server};
  auto it = tenants_
                .emplace(placed->id,
                         TenantState{request, placed->vm_to_server, {},
                                     placed->id, TenantStatus::kGuaranteed})
                .first;
  engine_to_external_.emplace(placed->id, placed->id);
  emit_config_deltas(placed->id, it->second,
                     request.tenant_class != TenantClass::kBestEffort);
  maybe_compact();
  return handle;
}

void SiloController::release(const TenantHandle& handle) {
  auto it = tenants_.find(handle.id);
  if (it == tenants_.end()) return;
  JournalRecord jrec;
  jrec.op = JournalOp::kRelease;
  jrec.tenant = handle.id;
  journal_op(std::move(jrec));
  auto& state = it->second;
  if (state.engine_id >= 0) {
    engine_.remove(state.engine_id);
    engine_to_external_.erase(state.engine_id);
  }
  revoke_leases_for_tenant(handle.id);
  emit_config_deltas(handle.id, state, /*now_paced=*/false);
  count_status(state.status, -1);
  tenants_.erase(it);
  m_releases_.inc();
  maybe_compact();
}

void SiloController::count_status(TenantStatus status, int delta) {
  if (status == TenantStatus::kDegraded) degraded_count_ += delta;
  if (status == TenantStatus::kUnplaced) unplaced_count_ += delta;
}

std::vector<placement::TenantId> SiloController::to_external(
    const std::vector<placement::TenantId>& engine_ids) const {
  std::vector<placement::TenantId> out;
  out.reserve(engine_ids.size());
  for (const auto eid : engine_ids) {
    auto it = engine_to_external_.find(eid);
    if (it != engine_to_external_.end()) out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<placement::TenantId> SiloController::non_guaranteed_tenants()
    const {
  std::vector<placement::TenantId> out;
  for (const auto& [id, state] : tenants_) {
    if (state.status != TenantStatus::kGuaranteed) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

PacerConfigRecord SiloController::make_record(placement::TenantId id,
                                              const TenantState& state,
                                              int vm) const {
  PacerConfigRecord rec;
  rec.tenant = id;
  rec.vm_index = vm;
  rec.server = state.vm_to_server[static_cast<std::size_t>(vm)];
  rec.guarantee = state.request.guarantee;
  for (int p = 0; p < state.request.num_vms; ++p) {
    if (p == vm) continue;
    rec.peers.emplace_back(p, state.vm_to_server[static_cast<std::size_t>(p)]);
  }
  return rec;
}

void SiloController::append_records(
    placement::TenantId id, const TenantState& state,
    std::vector<PacerConfigRecord>& out) const {
  if (state.request.tenant_class == TenantClass::kBestEffort) return;
  for (int v = 0; v < state.request.num_vms; ++v) {
    out.push_back(make_record(id, state, v));
  }
}

void SiloController::emit_config_deltas(placement::TenantId id,
                                        TenantState& state, bool now_paced) {
  if (engine_.admission_mode() != placement::AdmissionMode::kIncremental) {
    // Full-snapshot protocol: nothing queued, but track shipped state so a
    // mode flip mid-life (not supported) fails loudly in tests.
    state.paced_vm_to_server.clear();
    if (now_paced) state.paced_vm_to_server = state.vm_to_server;
    return;
  }
  const bool was_paced = !state.paced_vm_to_server.empty();
  if (!was_paced && !now_paced) return;
  // One delta per affected server; within a delta removals apply before
  // upserts, so a VM whose record merely changed (e.g. a peer moved) is
  // simply rewritten in place.
  std::map<int, PacerConfigDelta> by_server;
  for (std::size_t v = 0; v < state.paced_vm_to_server.size(); ++v) {
    const int server = state.paced_vm_to_server[v];
    if (server < 0) continue;
    by_server[server].removes.emplace_back(id, static_cast<int>(v));
  }
  if (now_paced) {
    for (int v = 0; v < state.request.num_vms; ++v) {
      const int server = state.vm_to_server[static_cast<std::size_t>(v)];
      by_server[server].upserts.push_back(make_record(id, state, v));
    }
  }
  for (auto& [server, delta] : by_server) {
    delta.server = server;
    delta.lease_epoch = lease_epoch_;
    m_diff_deltas_.inc();
    m_diff_upserts_.inc(static_cast<std::int64_t>(delta.upserts.size()));
    m_diff_removes_.inc(static_cast<std::int64_t>(delta.removes.size()));
    pending_deltas_.push_back(std::move(delta));
  }
  state.paced_vm_to_server.clear();
  if (now_paced) state.paced_vm_to_server = state.vm_to_server;
}

std::vector<PacerConfigDelta> SiloController::drain_config_deltas() {
  std::vector<PacerConfigDelta> out;
  out.swap(pending_deltas_);
  return out;
}

// --- Work-conserving leases ---------------------------------------------

void SiloController::emit_lease_delta(int server,
                                      std::vector<std::uint64_t> removes,
                                      std::vector<PacerLeaseRecord> upserts) {
  if (engine_.admission_mode() != placement::AdmissionMode::kIncremental)
    return;  // lease overlays ride the delta protocol only
  PacerConfigDelta delta;
  delta.server = server;
  delta.lease_epoch = lease_epoch_;
  delta.lease_removes = std::move(removes);
  delta.lease_upserts = std::move(upserts);
  m_diff_deltas_.inc();
  pending_deltas_.push_back(std::move(delta));
}

std::optional<std::uint64_t> SiloController::grant_lease(
    placement::TenantId owner, placement::TenantId borrower, int borrower_vm,
    RateBps rate, std::uint64_t duration_epochs) {
  // Write-ahead: the *inputs* are journaled (like admit journals the
  // request); replay re-runs validation and the id allocator, so the
  // outcome — including rejections — reproduces deterministically.
  JournalRecord jrec;
  jrec.op = JournalOp::kLeaseGrant;
  jrec.lease.owner = owner;
  jrec.lease.borrower = borrower;
  jrec.lease.vm_index = borrower_vm;
  jrec.lease.rate = rate;
  jrec.lease.expiry_epoch = duration_epochs;  // relative until granted
  journal_op(std::move(jrec));

  const auto oit = tenants_.find(owner);
  const auto bit = tenants_.find(borrower);
  bool ok = oit != tenants_.end() && bit != tenants_.end() &&
            owner != borrower && duration_epochs > 0 && rate.bps() > 0;
  if (ok) {
    const auto& ostate = oit->second;
    // Only a paced, fully-guaranteed owner has a reservation to lend, and
    // it cannot lend more than its own per-VM hose rate.
    ok = ostate.status == TenantStatus::kGuaranteed &&
         ostate.request.tenant_class != TenantClass::kBestEffort &&
         rate.bps() <= ostate.request.guarantee.bandwidth.bps();
  }
  int server = -1;
  if (ok) {
    const auto& bstate = bit->second;
    ok = borrower_vm >= 0 && borrower_vm < bstate.request.num_vms;
    if (ok) server = bstate.vm_to_server[static_cast<std::size_t>(borrower_vm)];
    ok = ok && server >= 0;
  }
  if (ok) {
    // Same-server lending only: the lent headroom is the owner's idle
    // uplink reservation on the very NIC the borrower shares.
    const auto& placed = oit->second.vm_to_server;
    ok = std::find(placed.begin(), placed.end(), server) != placed.end();
  }
  if (!ok) {
    m_lease_rejected_.inc();
    maybe_compact();
    return std::nullopt;
  }
  PacerLeaseRecord lease;
  lease.id = next_lease_id_++;
  lease.owner = owner;
  lease.borrower = borrower;
  lease.vm_index = borrower_vm;
  lease.server = server;
  lease.rate = rate;
  lease.issued_epoch = lease_epoch_;
  lease.expiry_epoch = lease_epoch_ + duration_epochs;
  leases_.emplace(lease.id, lease);
  m_lease_granted_.inc();
  m_lease_active_.set(static_cast<std::int64_t>(leases_.size()));
  emit_lease_delta(server, {}, {lease});
  maybe_compact();
  return lease.id;
}

bool SiloController::revoke_lease(std::uint64_t id) {
  JournalRecord jrec;
  jrec.op = JournalOp::kLeaseRevoke;
  jrec.lease.id = id;
  journal_op(std::move(jrec));
  const auto it = leases_.find(id);
  if (it == leases_.end()) {
    maybe_compact();
    return false;
  }
  const int server = it->second.server;
  leases_.erase(it);
  m_lease_revoked_.inc();
  m_lease_active_.set(static_cast<std::int64_t>(leases_.size()));
  emit_lease_delta(server, {id}, {});
  maybe_compact();
  return true;
}

std::vector<PacerLeaseRecord> SiloController::advance_lease_epoch() {
  JournalRecord jrec;
  jrec.op = JournalOp::kLeaseEpoch;
  journal_op(std::move(jrec));
  ++lease_epoch_;
  // Expired leases get no remove: agents kill them locally when the
  // epoch-stamped heartbeat (or their own clock) reaches expiry_epoch —
  // data-plane expiry must never depend on a delivery.
  std::vector<PacerLeaseRecord> expired;
  std::vector<int> servers;
  for (auto it = leases_.begin(); it != leases_.end();) {
    servers.push_back(it->second.server);
    if (it->second.expiry_epoch <= lease_epoch_) {
      expired.push_back(it->second);
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
  m_lease_expired_.inc(static_cast<std::int64_t>(expired.size()));
  m_lease_active_.set(static_cast<std::int64_t>(leases_.size()));
  std::sort(servers.begin(), servers.end());
  servers.erase(std::unique(servers.begin(), servers.end()), servers.end());
  for (const int s : servers) emit_lease_delta(s, {}, {});
  maybe_compact();
  return expired;
}

void SiloController::revoke_leases_for_tenant(placement::TenantId id) {
  std::map<int, std::vector<std::uint64_t>> by_server;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.owner == id || it->second.borrower == id) {
      by_server[it->second.server].push_back(it->first);
      m_lease_revoked_.inc();
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
  if (by_server.empty()) return;
  m_lease_active_.set(static_cast<std::int64_t>(leases_.size()));
  for (auto& [server, ids] : by_server)
    emit_lease_delta(server, std::move(ids), {});
}

std::vector<PacerLeaseRecord> SiloController::active_leases() const {
  std::vector<PacerLeaseRecord> out;
  out.reserve(leases_.size());
  for (const auto& [id, lease] : leases_) out.push_back(lease);
  return out;
}

RecoveryReport SiloController::recover(
    std::vector<placement::TenantId> affected) {
  std::sort(affected.begin(), affected.end());
  RecoveryReport report;
  report.affected = affected;
  for (const auto id : affected) {
    auto& state = tenants_.at(id);
    const TenantStatus old_status = state.status;
    count_status(old_status, -1);
    // Placement is about to change under any lease this tenant lends or
    // borrows; reclaim first (inside the already-journaled failure op).
    revoke_leases_for_tenant(id);
    if (state.engine_id >= 0) {
      engine_.remove(state.engine_id);
      engine_to_external_.erase(state.engine_id);
      state.engine_id = -1;
    }
    // Full re-admission first: exactly the network-calculus checks the
    // tenant's original admission ran, against the post-failure fabric.
    if (auto placed = engine_.place(state.request)) {
      if (old_status != TenantStatus::kGuaranteed) m_promotions_.inc();
      state.engine_id = placed->id;
      engine_to_external_.emplace(placed->id, id);
      state.vm_to_server = placed->vm_to_server;
      state.status = TenantStatus::kGuaranteed;
      report.replaced.push_back(id);
      m_replaced_.inc();
      append_records(id, state, report.refreshed);
      emit_config_deltas(
          id, state, state.request.tenant_class != TenantClass::kBestEffort);
      continue;
    }
    // Guarantees infeasible: run the VMs best-effort (slots only, low
    // priority, unpaced) so the tenant keeps computing while degraded.
    TenantRequest degraded = state.request;
    degraded.tenant_class = TenantClass::kBestEffort;
    if (auto placed = engine_.place(degraded)) {
      state.engine_id = placed->id;
      engine_to_external_.emplace(placed->id, id);
      state.vm_to_server = placed->vm_to_server;
      state.status = TenantStatus::kDegraded;
      count_status(state.status, +1);
      report.degraded.push_back(id);
      m_degraded_.inc();
      emit_config_deltas(id, state, /*now_paced=*/false);
      continue;
    }
    state.engine_id = -1;
    state.vm_to_server.assign(
        static_cast<std::size_t>(state.request.num_vms), -1);
    state.status = TenantStatus::kUnplaced;
    count_status(state.status, +1);
    report.unplaced.push_back(id);
    m_unplaced_.inc();
    emit_config_deltas(id, state, /*now_paced=*/false);
  }
  return report;
}

RecoveryReport SiloController::handle_server_failure(int server) {
  JournalRecord jrec;
  jrec.op = JournalOp::kServerFailure;
  jrec.server = server;
  journal_op(std::move(jrec));
  const auto affected = to_external(engine_.tenants_on_server(server));
  engine_.fail_server(server);
  auto report = recover(affected);
  maybe_compact();
  return report;
}

RecoveryReport SiloController::handle_link_failure(topology::PortId port) {
  JournalRecord jrec;
  jrec.op = JournalOp::kLinkFailure;
  jrec.port = port.value;
  journal_op(std::move(jrec));
  const auto affected = to_external(engine_.tenants_using_port(port));
  engine_.fail_port(port);
  auto report = recover(affected);
  maybe_compact();
  return report;
}

RecoveryReport SiloController::restore_server(int server) {
  JournalRecord jrec;
  jrec.op = JournalOp::kServerRestore;
  jrec.server = server;
  journal_op(std::move(jrec));
  engine_.restore_server(server);
  auto report = recover(non_guaranteed_tenants());
  maybe_compact();
  return report;
}

RecoveryReport SiloController::restore_link(topology::PortId port) {
  JournalRecord jrec;
  jrec.op = JournalOp::kLinkRestore;
  jrec.port = port.value;
  journal_op(std::move(jrec));
  engine_.restore_port(port);
  auto report = recover(non_guaranteed_tenants());
  maybe_compact();
  return report;
}

ControllerSnapshot SiloController::snapshot() const {
  ControllerSnapshot snap;
  snap.engine = engine_.snapshot();
  snap.tenants.reserve(tenants_.size());
  for (const auto& [id, state] : tenants_) {  // map order: ascending id
    ControllerSnapshot::Tenant t;
    t.id = id;
    t.request = state.request;
    t.status = static_cast<std::uint8_t>(state.status);
    t.engine_id = state.engine_id;
    t.vm_to_server = state.vm_to_server;
    t.paced_vm_to_server = state.paced_vm_to_server;
    snap.tenants.push_back(std::move(t));
  }
  // Fixed order; restore_snapshot() replays these onto fresh counters so
  // recovered metrics match the never-crashed controller exactly.
  snap.counters = {m_admissions_.value(),    m_rejections_.value(),
                   m_releases_.value(),      m_replaced_.value(),
                   m_degraded_.value(),      m_unplaced_.value(),
                   m_promotions_.value(),    m_diff_deltas_.value(),
                   m_diff_upserts_.value(),  m_diff_removes_.value(),
                   m_lease_granted_.value(), m_lease_revoked_.value(),
                   m_lease_expired_.value(), m_lease_rejected_.value()};
  snap.leases = active_leases();
  snap.lease_epoch = lease_epoch_;
  snap.next_lease_id = next_lease_id_;
  return snap;
}

void SiloController::restore_snapshot(const ControllerSnapshot& snap) {
  if (!tenants_.empty() || m_admissions_.value() != 0 ||
      m_rejections_.value() != 0)
    throw std::logic_error(
        "SiloController::restore_snapshot requires a fresh controller");
  engine_.restore(snap.engine);
  for (const auto& t : snap.tenants) {
    TenantState state;
    state.request = t.request;
    state.vm_to_server = t.vm_to_server;
    state.paced_vm_to_server = t.paced_vm_to_server;
    state.engine_id = t.engine_id;
    state.status = static_cast<TenantStatus>(t.status);
    if (t.engine_id >= 0) engine_to_external_.emplace(t.engine_id, t.id);
    count_status(state.status, +1);
    tenants_.emplace(t.id, std::move(state));
  }
  if (snap.counters.size() >= 10) {
    m_admissions_.inc(snap.counters[0]);
    m_rejections_.inc(snap.counters[1]);
    m_releases_.inc(snap.counters[2]);
    m_replaced_.inc(snap.counters[3]);
    m_degraded_.inc(snap.counters[4]);
    m_unplaced_.inc(snap.counters[5]);
    m_promotions_.inc(snap.counters[6]);
    m_diff_deltas_.inc(snap.counters[7]);
    m_diff_upserts_.inc(snap.counters[8]);
    m_diff_removes_.inc(snap.counters[9]);
  }
  if (snap.counters.size() >= 14) {
    m_lease_granted_.inc(snap.counters[10]);
    m_lease_revoked_.inc(snap.counters[11]);
    m_lease_expired_.inc(snap.counters[12]);
    m_lease_rejected_.inc(snap.counters[13]);
  }
  for (const auto& lease : snap.leases) leases_.emplace(lease.id, lease);
  lease_epoch_ = snap.lease_epoch;
  next_lease_id_ = snap.next_lease_id;
  m_lease_active_.set(static_cast<std::int64_t>(leases_.size()));
}

void SiloController::recover_from_journal(DeltaJournal& journal,
                                          std::int64_t snapshot_every) {
  if (!tenants_.empty() || journal_ != nullptr)
    throw std::logic_error(
        "SiloController::recover_from_journal requires a fresh controller");
  replaying_ = true;
  if (journal.has_snapshot()) restore_snapshot(journal.snapshot());
  for (const auto& rec : journal.records()) {
    switch (rec.op) {
      case JournalOp::kAdmit:
        admit(rec.request);
        break;
      case JournalOp::kRelease: {
        TenantHandle handle;
        handle.id = rec.tenant;
        release(handle);
        break;
      }
      case JournalOp::kServerFailure:
        handle_server_failure(rec.server);
        break;
      case JournalOp::kLinkFailure:
        handle_link_failure(topology::PortId{rec.port});
        break;
      case JournalOp::kServerRestore:
        restore_server(rec.server);
        break;
      case JournalOp::kLinkRestore:
        restore_link(topology::PortId{rec.port});
        break;
      case JournalOp::kLeaseGrant:
        // expiry_epoch holds the requested duration in grant records.
        grant_lease(rec.lease.owner, rec.lease.borrower, rec.lease.vm_index,
                    rec.lease.rate, rec.lease.expiry_epoch);
        break;
      case JournalOp::kLeaseRevoke:
        revoke_lease(rec.lease.id);
        break;
      case JournalOp::kLeaseEpoch:
        advance_lease_epoch();
        break;
    }
  }
  replaying_ = false;
  journal.note_replay(static_cast<std::int64_t>(journal.records().size()));
  attach_journal(&journal, snapshot_every);
}

std::vector<int> SiloController::paced_servers() const {
  std::vector<int> out;
  for (const auto& [id, state] : tenants_) {
    for (const int s : state.paced_vm_to_server)
      if (s >= 0) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<PacerConfigRecord> SiloController::server_config(
    int server) const {
  std::vector<PacerConfigRecord> out;
  if (engine_.admission_mode() == placement::AdmissionMode::kIncremental) {
    // Only tenants indexed on this server can have records here.
    for (const auto eid : engine_.tenants_on_server(server)) {
      const auto ext = engine_to_external_.find(eid);
      if (ext == engine_to_external_.end()) continue;
      const auto& state = tenants_.at(ext->second);
      if (state.request.tenant_class == TenantClass::kBestEffort)
        continue;  // best-effort VMs run unpaced at low priority (§4.4)
      if (state.status != TenantStatus::kGuaranteed)
        continue;  // degraded/unplaced tenants are not paced
      for (int v = 0; v < state.request.num_vms; ++v) {
        if (state.vm_to_server[static_cast<std::size_t>(v)] != server)
          continue;
        out.push_back(make_record(ext->second, state, v));
      }
    }
  } else {
    for (const auto& [id, state] : tenants_) {
      if (state.request.tenant_class == TenantClass::kBestEffort) continue;
      if (state.status != TenantStatus::kGuaranteed) continue;
      for (int v = 0; v < state.request.num_vms; ++v) {
        if (state.vm_to_server[static_cast<std::size_t>(v)] != server)
          continue;
        out.push_back(make_record(id, state, v));
      }
    }
  }
  // Deterministic order for config diffing by the driver.
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.tenant != b.tenant ? a.tenant < b.tenant
                                : a.vm_index < b.vm_index;
  });
  return out;
}

DatacenterStats SiloController::stats() const {
  DatacenterStats s;
  s.total_slots = topo_.total_vm_slots();
  s.free_slots = engine_.free_slots();
  s.admitted_tenants = engine_.admitted_tenants();
  s.degraded_tenants = degraded_count_;
  s.unplaced_tenants = unplaced_count_;
  s.max_port_reservation = engine_.max_port_reservation();
  s.max_queue_headroom_used = engine_.max_queue_headroom_used();
  return s;
}

}  // namespace silo
