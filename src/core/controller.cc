#include "core/controller.h"

#include <algorithm>

#include "netcalc/curve.h"

namespace silo {

SiloController::SiloController(const topology::TopologyConfig& topo,
                               const Options& options)
    : topo_(topo),
      engine_(topo_, options.policy, options.nic_delay_allowance,
              options.hose_tightening) {
  m_admissions_ = metrics_.counter("controller.admissions", "tenants",
                                   "controller");
  m_rejections_ = metrics_.counter("controller.rejections", "tenants",
                                   "controller");
  m_releases_ = metrics_.counter("controller.releases", "tenants",
                                 "controller");
  m_replaced_ = metrics_.counter("controller.recovery.replaced", "tenants",
                                 "controller");
  m_degraded_ = metrics_.counter("controller.recovery.degraded", "tenants",
                                 "controller");
  m_unplaced_ = metrics_.counter("controller.recovery.unplaced", "tenants",
                                 "controller");
  m_promotions_ = metrics_.counter("controller.recovery.promotions", "tenants",
                                   "controller");
}

std::optional<TenantHandle> SiloController::admit(
    const TenantRequest& request) {
  auto placed = engine_.place(request);
  if (!placed) {
    m_rejections_.inc();
    return std::nullopt;
  }
  m_admissions_.inc();
  TenantHandle handle{placed->id, placed->vm_to_server};
  tenants_.emplace(placed->id,
                   TenantState{request, placed->vm_to_server, placed->id,
                               TenantStatus::kGuaranteed});
  return handle;
}

void SiloController::release(const TenantHandle& handle) {
  auto it = tenants_.find(handle.id);
  if (it == tenants_.end()) return;
  if (it->second.engine_id >= 0) engine_.remove(it->second.engine_id);
  tenants_.erase(it);
  m_releases_.inc();
}

std::vector<placement::TenantId> SiloController::to_external(
    const std::vector<placement::TenantId>& engine_ids) const {
  std::vector<placement::TenantId> out;
  for (const auto eid : engine_ids) {
    for (const auto& [id, state] : tenants_) {
      if (state.engine_id == eid) {
        out.push_back(id);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<placement::TenantId> SiloController::non_guaranteed_tenants()
    const {
  std::vector<placement::TenantId> out;
  for (const auto& [id, state] : tenants_) {
    if (state.status != TenantStatus::kGuaranteed) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SiloController::append_records(
    placement::TenantId id, const TenantState& state,
    std::vector<PacerConfigRecord>& out) const {
  if (state.request.tenant_class == TenantClass::kBestEffort) return;
  for (int v = 0; v < state.request.num_vms; ++v) {
    PacerConfigRecord rec;
    rec.tenant = id;
    rec.vm_index = v;
    rec.server = state.vm_to_server[static_cast<std::size_t>(v)];
    rec.guarantee = state.request.guarantee;
    for (int p = 0; p < state.request.num_vms; ++p) {
      if (p == v) continue;
      rec.peers.emplace_back(p,
                             state.vm_to_server[static_cast<std::size_t>(p)]);
    }
    out.push_back(std::move(rec));
  }
}

RecoveryReport SiloController::recover(
    std::vector<placement::TenantId> affected) {
  std::sort(affected.begin(), affected.end());
  RecoveryReport report;
  report.affected = affected;
  for (const auto id : affected) {
    auto& state = tenants_.at(id);
    if (state.engine_id >= 0) engine_.remove(state.engine_id);
    // Full re-admission first: exactly the network-calculus checks the
    // tenant's original admission ran, against the post-failure fabric.
    if (auto placed = engine_.place(state.request)) {
      if (state.status != TenantStatus::kGuaranteed) m_promotions_.inc();
      state.engine_id = placed->id;
      state.vm_to_server = placed->vm_to_server;
      state.status = TenantStatus::kGuaranteed;
      report.replaced.push_back(id);
      m_replaced_.inc();
      append_records(id, state, report.refreshed);
      continue;
    }
    // Guarantees infeasible: run the VMs best-effort (slots only, low
    // priority, unpaced) so the tenant keeps computing while degraded.
    TenantRequest degraded = state.request;
    degraded.tenant_class = TenantClass::kBestEffort;
    if (auto placed = engine_.place(degraded)) {
      state.engine_id = placed->id;
      state.vm_to_server = placed->vm_to_server;
      state.status = TenantStatus::kDegraded;
      report.degraded.push_back(id);
      m_degraded_.inc();
      continue;
    }
    state.engine_id = -1;
    state.vm_to_server.assign(
        static_cast<std::size_t>(state.request.num_vms), -1);
    state.status = TenantStatus::kUnplaced;
    report.unplaced.push_back(id);
    m_unplaced_.inc();
  }
  return report;
}

RecoveryReport SiloController::handle_server_failure(int server) {
  const auto affected = to_external(engine_.tenants_on_server(server));
  engine_.fail_server(server);
  return recover(affected);
}

RecoveryReport SiloController::handle_link_failure(topology::PortId port) {
  const auto affected = to_external(engine_.tenants_using_port(port));
  engine_.fail_port(port);
  return recover(affected);
}

RecoveryReport SiloController::restore_server(int server) {
  engine_.restore_server(server);
  return recover(non_guaranteed_tenants());
}

RecoveryReport SiloController::restore_link(topology::PortId port) {
  engine_.restore_port(port);
  return recover(non_guaranteed_tenants());
}

std::vector<PacerConfigRecord> SiloController::server_config(
    int server) const {
  std::vector<PacerConfigRecord> out;
  for (const auto& [id, state] : tenants_) {
    if (state.request.tenant_class == TenantClass::kBestEffort)
      continue;  // best-effort VMs run unpaced at low priority (§4.4)
    if (state.status != TenantStatus::kGuaranteed)
      continue;  // degraded/unplaced tenants are not paced
    for (int v = 0; v < state.request.num_vms; ++v) {
      if (state.vm_to_server[static_cast<std::size_t>(v)] != server) continue;
      PacerConfigRecord rec;
      rec.tenant = id;
      rec.vm_index = v;
      rec.server = server;
      rec.guarantee = state.request.guarantee;
      for (int p = 0; p < state.request.num_vms; ++p) {
        if (p == v) continue;
        rec.peers.emplace_back(p,
                               state.vm_to_server[static_cast<std::size_t>(p)]);
      }
      out.push_back(std::move(rec));
    }
  }
  // Deterministic order for config diffing by the driver.
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.tenant != b.tenant ? a.tenant < b.tenant
                                : a.vm_index < b.vm_index;
  });
  return out;
}

DatacenterStats SiloController::stats() const {
  DatacenterStats s;
  s.total_slots = topo_.total_vm_slots();
  s.free_slots = engine_.free_slots();
  s.admitted_tenants = engine_.admitted_tenants();
  for (const auto& [id, state] : tenants_) {
    if (state.status == TenantStatus::kDegraded) ++s.degraded_tenants;
    if (state.status == TenantStatus::kUnplaced) ++s.unplaced_tenants;
  }
  for (int p = 0; p < topo_.num_ports(); ++p) {
    const topology::PortId id{p};
    s.max_port_reservation =
        std::max(s.max_port_reservation, engine_.port_reservation(id));
    const TimeNs bound = engine_.port_queue_bound(id);
    if (bound >= TimeNs{0} && topo_.port(id).queue_capacity > TimeNs{0}) {
      s.max_queue_headroom_used =
          std::max(s.max_queue_headroom_used,
                   static_cast<double>(bound) /
                       static_cast<double>(topo_.port(id).queue_capacity));
    }
  }
  return s;
}

}  // namespace silo
