#include "core/controller.h"

#include <algorithm>

#include "netcalc/curve.h"

namespace silo {

SiloController::SiloController(const topology::TopologyConfig& topo,
                               const Options& options)
    : topo_(topo),
      engine_(topo_, options.policy, options.nic_delay_allowance,
              options.hose_tightening) {}

std::optional<TenantHandle> SiloController::admit(
    const TenantRequest& request) {
  auto placed = engine_.place(request);
  if (!placed) return std::nullopt;
  TenantHandle handle{placed->id, placed->vm_to_server};
  tenants_.emplace(placed->id, TenantState{request, placed->vm_to_server});
  return handle;
}

void SiloController::release(const TenantHandle& handle) {
  engine_.remove(handle.id);
  tenants_.erase(handle.id);
}

std::vector<PacerConfigRecord> SiloController::server_config(
    int server) const {
  std::vector<PacerConfigRecord> out;
  for (const auto& [id, state] : tenants_) {
    if (state.request.tenant_class == TenantClass::kBestEffort)
      continue;  // best-effort VMs run unpaced at low priority (§4.4)
    for (int v = 0; v < state.request.num_vms; ++v) {
      if (state.vm_to_server[static_cast<std::size_t>(v)] != server) continue;
      PacerConfigRecord rec;
      rec.tenant = id;
      rec.vm_index = v;
      rec.server = server;
      rec.guarantee = state.request.guarantee;
      for (int p = 0; p < state.request.num_vms; ++p) {
        if (p == v) continue;
        rec.peers.emplace_back(p,
                               state.vm_to_server[static_cast<std::size_t>(p)]);
      }
      out.push_back(std::move(rec));
    }
  }
  // Deterministic order for config diffing by the driver.
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.tenant != b.tenant ? a.tenant < b.tenant
                                : a.vm_index < b.vm_index;
  });
  return out;
}

DatacenterStats SiloController::stats() const {
  DatacenterStats s;
  s.total_slots = topo_.total_vm_slots();
  s.free_slots = engine_.free_slots();
  s.admitted_tenants = engine_.admitted_tenants();
  for (int p = 0; p < topo_.num_ports(); ++p) {
    const topology::PortId id{p};
    s.max_port_reservation =
        std::max(s.max_port_reservation, engine_.port_reservation(id));
    const TimeNs bound = engine_.port_queue_bound(id);
    if (bound >= 0 && topo_.port(id).queue_capacity > 0) {
      s.max_queue_headroom_used =
          std::max(s.max_queue_headroom_used,
                   static_cast<double>(bound) /
                       static_cast<double>(topo_.port(id).queue_capacity));
    }
  }
  return s;
}

}  // namespace silo
