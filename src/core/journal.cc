#include "core/journal.h"

#include <cstring>
#include <stdexcept>

namespace silo {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
// "SILOJRN1" little-endian; no dots so the docs metric grep ignores it.
constexpr std::uint64_t kMagic = 0x314e524a4f4c4953ull;
// v2: lease payload on every record + lease state in snapshots.
constexpr std::uint32_t kVersion = 2;

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t double_bits(double d) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

std::uint64_t fnv_bytes(const std::string& bytes) {
  std::uint64_t h = kFnvOffset;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// Chain one record onto the running head. Payload fields that the op does
/// not use are fixed defaults, so the fold is total and unambiguous.
bool lease_op(JournalOp op) {
  return op == JournalOp::kLeaseGrant || op == JournalOp::kLeaseRevoke ||
         op == JournalOp::kLeaseEpoch;
}

std::uint64_t record_chain(std::uint64_t prev, const JournalRecord& rec) {
  std::uint64_t h = prev;
  h = mix64(h, static_cast<std::uint64_t>(rec.op));
  h = mix64(h, static_cast<std::uint64_t>(rec.request.num_vms));
  h = mix64(h, double_bits(rec.request.guarantee.bandwidth.bps()));
  h = mix64(h, static_cast<std::uint64_t>(rec.request.guarantee.burst.count()));
  h = mix64(h, static_cast<std::uint64_t>(rec.request.guarantee.delay.count()));
  h = mix64(h, double_bits(rec.request.guarantee.burst_rate.bps()));
  h = mix64(h, static_cast<std::uint64_t>(rec.request.tenant_class));
  h = mix64(h, static_cast<std::uint64_t>(rec.request.min_fault_domains));
  h = mix64(h, static_cast<std::uint64_t>(rec.tenant));
  h = mix64(h, static_cast<std::uint64_t>(rec.server));
  h = mix64(h, static_cast<std::uint64_t>(rec.port));
  // The lease payload folds in only for lease ops, so chains of the
  // original op set are byte-identical to journal v1.
  if (lease_op(rec.op)) {
    h = mix64(h, rec.lease.id);
    h = mix64(h, static_cast<std::uint64_t>(rec.lease.owner));
    h = mix64(h, static_cast<std::uint64_t>(rec.lease.borrower));
    h = mix64(h, static_cast<std::uint64_t>(rec.lease.vm_index));
    h = mix64(h, static_cast<std::uint64_t>(rec.lease.server));
    h = mix64(h, double_bits(rec.lease.rate.bps()));
    h = mix64(h, rec.lease.issued_epoch);
    h = mix64(h, rec.lease.expiry_epoch);
  }
  return h;
}

// ------------------------------------------------------------- byte codec

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(double_bits(v)); }
  void ints(const std::vector<int>& v) {
    u64(v.size());
    for (const int x : v) i32(x);
  }
  const std::string& bytes() const { return out_; }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}
  std::uint8_t u8() {
    if (pos_ >= bytes_.size())
      throw std::runtime_error("journal corrupt: truncated");
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }
  std::vector<int> ints() {
    const std::uint64_t n = count();
    std::vector<int> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(i32());
    return v;
  }
  /// Element count with a sanity bound: every element costs >= 1 byte, so
  /// a count beyond the remaining bytes is corruption, not allocation bait.
  std::uint64_t count() {
    const std::uint64_t n = u64();
    if (n > bytes_.size() - pos_ + 1)
      throw std::runtime_error("journal corrupt: implausible count");
    return n;
  }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

void write_request(ByteWriter& w, const TenantRequest& req) {
  w.i32(req.num_vms);
  w.f64(req.guarantee.bandwidth.bps());
  w.i64(req.guarantee.burst.count());
  w.i64(req.guarantee.delay.count());
  w.f64(req.guarantee.burst_rate.bps());
  w.u8(static_cast<std::uint8_t>(req.tenant_class));
  w.i32(req.min_fault_domains);
}

TenantRequest read_request(ByteReader& r) {
  TenantRequest req;
  req.num_vms = r.i32();
  req.guarantee.bandwidth = RateBps{r.f64()};
  req.guarantee.burst = Bytes{r.i64()};
  req.guarantee.delay = TimeNs{r.i64()};
  req.guarantee.burst_rate = RateBps{r.f64()};
  req.tenant_class = static_cast<TenantClass>(r.u8());
  req.min_fault_domains = r.i32();
  return req;
}

void write_lease(ByteWriter& w, const PacerLeaseRecord& l) {
  w.u64(l.id);
  w.i64(l.owner);
  w.i64(l.borrower);
  w.i32(l.vm_index);
  w.i32(l.server);
  w.f64(l.rate.bps());
  w.u64(l.issued_epoch);
  w.u64(l.expiry_epoch);
}

PacerLeaseRecord read_lease(ByteReader& r) {
  PacerLeaseRecord l;
  l.id = r.u64();
  l.owner = r.i64();
  l.borrower = r.i64();
  l.vm_index = r.i32();
  l.server = r.i32();
  l.rate = RateBps{r.f64()};
  l.issued_epoch = r.u64();
  l.expiry_epoch = r.u64();
  return l;
}

void write_snapshot(ByteWriter& w, const ControllerSnapshot& snap) {
  w.u64(snap.engine.tenants.size());
  for (const auto& t : snap.engine.tenants) {
    w.i64(t.id);
    write_request(w, t.request);
    w.ints(t.vm_to_server);
    w.u64(t.contributions.size());
    for (const auto& [port, c] : t.contributions) {
      w.i32(port);
      w.f64(c.rate_bps);
      w.f64(c.burst_bytes);
      w.f64(c.burst_rate_bps);
      w.f64(c.jump_bytes);
    }
  }
  w.u64(snap.engine.failed_servers.size());
  for (const auto& f : snap.engine.failed_servers) {
    w.i32(f.server);
    w.i32(f.free_slots);
    w.i32(f.quarantined);
  }
  w.ints(snap.engine.failed_ports);
  w.i64(snap.engine.next_id);
  w.u64(snap.tenants.size());
  for (const auto& t : snap.tenants) {
    w.i64(t.id);
    write_request(w, t.request);
    w.u8(t.status);
    w.i64(t.engine_id);
    w.ints(t.vm_to_server);
    w.ints(t.paced_vm_to_server);
  }
  w.u64(snap.counters.size());
  for (const std::int64_t c : snap.counters) w.i64(c);
  w.u64(snap.lease_epoch);
  w.u64(snap.next_lease_id);
  w.u64(snap.leases.size());
  for (const auto& l : snap.leases) write_lease(w, l);
}

ControllerSnapshot read_snapshot(ByteReader& r) {
  ControllerSnapshot snap;
  const std::uint64_t n_engine = r.count();
  for (std::uint64_t i = 0; i < n_engine; ++i) {
    placement::EngineSnapshot::Tenant t;
    t.id = r.i64();
    t.request = read_request(r);
    t.vm_to_server = r.ints();
    const std::uint64_t n_contrib = r.count();
    for (std::uint64_t j = 0; j < n_contrib; ++j) {
      const int port = r.i32();
      placement::PortContribution c;
      c.rate_bps = r.f64();
      c.burst_bytes = r.f64();
      c.burst_rate_bps = r.f64();
      c.jump_bytes = r.f64();
      t.contributions.emplace_back(port, c);
    }
    snap.engine.tenants.push_back(std::move(t));
  }
  const std::uint64_t n_failed = r.count();
  for (std::uint64_t i = 0; i < n_failed; ++i) {
    placement::EngineSnapshot::FailedServer f;
    f.server = r.i32();
    f.free_slots = r.i32();
    f.quarantined = r.i32();
    snap.engine.failed_servers.push_back(f);
  }
  snap.engine.failed_ports = r.ints();
  snap.engine.next_id = r.i64();
  const std::uint64_t n_tenants = r.count();
  for (std::uint64_t i = 0; i < n_tenants; ++i) {
    ControllerSnapshot::Tenant t;
    t.id = r.i64();
    t.request = read_request(r);
    t.status = r.u8();
    t.engine_id = r.i64();
    t.vm_to_server = r.ints();
    t.paced_vm_to_server = r.ints();
    snap.tenants.push_back(std::move(t));
  }
  const std::uint64_t n_counters = r.count();
  for (std::uint64_t i = 0; i < n_counters; ++i)
    snap.counters.push_back(r.i64());
  snap.lease_epoch = r.u64();
  snap.next_lease_id = r.u64();
  const std::uint64_t n_leases = r.count();
  for (std::uint64_t i = 0; i < n_leases; ++i)
    snap.leases.push_back(read_lease(r));
  return snap;
}

std::string snapshot_bytes(const ControllerSnapshot& snap) {
  ByteWriter w;
  write_snapshot(w, snap);
  return w.bytes();
}

}  // namespace

DeltaJournal::DeltaJournal()
    : pre_snapshot_chain_(kFnvOffset), chain_(kFnvOffset) {
  m_appends_ = metrics_.counter("controller.journal.appends", "records",
                                "journal");
  m_snapshots_ = metrics_.counter("controller.journal.snapshots", "snapshots",
                                  "journal");
  m_replays_ = metrics_.counter("controller.journal.replays", "recoveries",
                                "journal");
  m_replayed_records_ = metrics_.counter("controller.journal.replayed_records",
                                         "records", "journal");
}

std::uint64_t DeltaJournal::append(JournalRecord rec) {
  chain_ = record_chain(chain_, rec);
  rec.chain = chain_;
  records_.push_back(std::move(rec));
  m_appends_.inc();
  return chain_;
}

void DeltaJournal::compact(ControllerSnapshot snapshot) {
  // pre_snapshot_chain_ becomes the current head (which already covers
  // every record being dropped), then the snapshot bytes fold on top —
  // the chain stays continuous across any number of compactions.
  pre_snapshot_chain_ = chain_;
  chain_ = mix64(chain_, fnv_bytes(snapshot_bytes(snapshot)));
  snapshot_ = std::move(snapshot);
  records_.clear();
  m_snapshots_.inc();
}

bool DeltaJournal::verify() const {
  std::uint64_t h = pre_snapshot_chain_;
  if (snapshot_) h = mix64(h, fnv_bytes(snapshot_bytes(*snapshot_)));
  for (const auto& rec : records_) {
    h = record_chain(h, rec);
    if (h != rec.chain) return false;
  }
  return h == chain_;
}

std::string DeltaJournal::serialize() const {
  ByteWriter w;
  w.u64(kMagic);
  w.u32(kVersion);
  w.i64(m_appends_.value());
  w.i64(m_snapshots_.value());
  w.i64(m_replays_.value());
  w.i64(m_replayed_records_.value());
  w.u64(pre_snapshot_chain_);
  w.u8(snapshot_ ? 1 : 0);
  if (snapshot_) write_snapshot(w, *snapshot_);
  w.u64(records_.size());
  for (const auto& rec : records_) {
    w.u8(static_cast<std::uint8_t>(rec.op));
    write_request(w, rec.request);
    w.i64(rec.tenant);
    w.i32(rec.server);
    w.i32(rec.port);
    // Lease payload only for lease ops: every serialized byte stays
    // covered by the record chain (tamper detection needs no dead zones).
    if (lease_op(rec.op)) write_lease(w, rec.lease);
    w.u64(rec.chain);
  }
  w.u64(chain_);
  return w.bytes();
}

DeltaJournal DeltaJournal::deserialize(const std::string& bytes) {
  ByteReader r(bytes);
  if (r.u64() != kMagic) throw std::runtime_error("journal corrupt: bad magic");
  if (r.u32() != kVersion)
    throw std::runtime_error("journal corrupt: unknown version");
  DeltaJournal j;
  j.m_appends_.inc(r.i64());
  j.m_snapshots_.inc(r.i64());
  j.m_replays_.inc(r.i64());
  j.m_replayed_records_.inc(r.i64());
  j.pre_snapshot_chain_ = r.u64();
  if (r.u8() != 0) j.snapshot_ = read_snapshot(r);
  const std::uint64_t n = r.count();
  for (std::uint64_t i = 0; i < n; ++i) {
    JournalRecord rec;
    rec.op = static_cast<JournalOp>(r.u8());
    rec.request = read_request(r);
    rec.tenant = r.i64();
    rec.server = r.i32();
    rec.port = r.i32();
    if (lease_op(rec.op)) rec.lease = read_lease(r);
    rec.chain = r.u64();
    j.records_.push_back(std::move(rec));
  }
  j.chain_ = r.u64();
  if (!r.done()) throw std::runtime_error("journal corrupt: trailing bytes");
  if (!j.verify())
    throw std::runtime_error("journal corrupt: chain checksum mismatch");
  return j;
}

void DeltaJournal::note_replay(std::int64_t replayed_records) {
  m_replays_.inc();
  m_replayed_records_.inc(replayed_records);
}

}  // namespace silo
