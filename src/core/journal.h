// Write-ahead delta journal for the SiloController (control-plane
// durability).
//
// Every public controller mutation — admit, release, server/link failure,
// server/link restore — appends one JournalRecord *before* it executes.
// Because the controller is deterministic, replaying the journal through a
// fresh controller rebuilds the full placement/pacer state bit-identically:
// placement decisions, shipped pacer configs, and metric counters all match
// a controller that never crashed (pinned by the storm equivalence tests in
// tests/test_journal.cc).
//
// Records are FNV-1a chain-checksummed (same constants and byte-wise mixing
// as pacer_config_checksum): each record's `chain` folds the previous chain
// head with the record payload, so truncation, reordering, or bit-rot
// anywhere breaks verification of everything after it. Periodic compaction
// replaces the prefix with an exact ControllerSnapshot; the snapshot's
// serialized bytes are mixed into the chain, keeping it continuous across
// compactions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/guarantee.h"
#include "obs/metrics.h"
#include "pacer/pacer_config.h"
#include "placement/placement.h"

namespace silo {

/// The controller operations that mutate placement/pacer state.
enum class JournalOp : std::uint8_t {
  kAdmit = 1,
  kRelease = 2,
  kServerFailure = 3,
  kLinkFailure = 4,
  kServerRestore = 5,
  kLinkRestore = 6,
  kLeaseGrant = 7,
  kLeaseRevoke = 8,
  kLeaseEpoch = 9,
};

struct JournalRecord {
  JournalOp op = JournalOp::kAdmit;
  TenantRequest request;     ///< kAdmit payload
  std::int64_t tenant = -1;  ///< kRelease payload
  std::int32_t server = -1;  ///< kServerFailure / kServerRestore payload
  std::int32_t port = -1;    ///< kLinkFailure / kLinkRestore payload
  /// kLeaseGrant payload (full record); kLeaseRevoke uses lease.id only;
  /// kLeaseEpoch uses lease.issued_epoch as the epoch being advanced to.
  PacerLeaseRecord lease;
  /// FNV-1a chain head after folding this record (filled by append()).
  std::uint64_t chain = 0;
};

/// Exact logical controller state at a compaction point: the placement
/// engine's snapshot plus the controller-layer tenant map and metric
/// counter values. Pending (undrained) config deltas are *not* captured —
/// recovery re-emits every delta since the snapshot, and the control
/// channel reconciles the fleet via resync + anti-entropy.
struct ControllerSnapshot {
  struct Tenant {
    std::int64_t id = -1;
    TenantRequest request;     ///< the original (pre-degradation) request
    std::uint8_t status = 0;   ///< TenantStatus
    std::int64_t engine_id = -1;
    std::vector<int> vm_to_server;
    std::vector<int> paced_vm_to_server;
  };
  placement::EngineSnapshot engine;
  std::vector<Tenant> tenants;          ///< ascending id
  std::vector<std::int64_t> counters;   ///< controller counter values, fixed order
  std::vector<PacerLeaseRecord> leases; ///< active leases, ascending id
  std::uint64_t lease_epoch = 0;        ///< controller lease epoch
  std::uint64_t next_lease_id = 1;      ///< lease id allocator cursor
};

/// Append-only op log with chained checksums and compacted snapshots.
/// Owns its own MetricsRegistry (`controller.journal.*`) because the
/// journal outlives controller crashes — the counters must too.
class DeltaJournal {
 public:
  DeltaJournal();

  /// Chain-checksum and store one record (write-ahead: call before the op
  /// executes). Returns the new chain head.
  std::uint64_t append(JournalRecord rec);

  /// Replace everything up to now with an exact snapshot; subsequent
  /// records chain from the snapshot's serialized bytes.
  void compact(ControllerSnapshot snapshot);

  bool has_snapshot() const { return snapshot_.has_value(); }
  const ControllerSnapshot& snapshot() const { return *snapshot_; }
  /// Records appended since the last compaction (oldest first).
  const std::vector<JournalRecord>& records() const { return records_; }
  std::uint64_t chain() const { return chain_; }
  std::int64_t total_appends() const { return m_appends_.value(); }

  /// Recompute the chain from the last trusted base (snapshot-or-genesis)
  /// and compare against every stored chain value.
  bool verify() const;

  /// Durable byte form (what a deployment would fsync). deserialize()
  /// re-derives and checks every chain value and throws std::runtime_error
  /// on any corruption or truncation.
  std::string serialize() const;
  static DeltaJournal deserialize(const std::string& bytes);

  /// Called by SiloController::recover_from_journal after a replay.
  void note_replay(std::int64_t replayed_records);

  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  /// Chain value at the last compaction, before the snapshot bytes were
  /// mixed in (FNV offset basis when never compacted). verify() restarts
  /// from here.
  std::uint64_t pre_snapshot_chain_;
  std::optional<ControllerSnapshot> snapshot_;
  std::vector<JournalRecord> records_;
  std::uint64_t chain_;

  obs::MetricsRegistry metrics_;
  obs::Counter m_appends_;           ///< records ever appended
  obs::Counter m_snapshots_;         ///< compactions performed
  obs::Counter m_replays_;           ///< recoveries replayed from this journal
  obs::Counter m_replayed_records_;  ///< records replayed across recoveries
};

}  // namespace silo
