// Guarantee advisor: pick {B, S, Bmax} for an observed message workload.
//
// The paper (§4.1) expects tenants to choose guarantees with tools like
// Cicada and demonstrates the trade-off in Table 1: guaranteeing only the
// average bandwidth leaves almost every message late, while modest
// multiples of bandwidth and burst drive lateness to ~zero. This module
// automates that choice: given an empirical message-size distribution and
// a Poisson arrival rate, it Monte-Carlo-evaluates the pacer's token
// buckets analytically (no packet simulation) and returns the cheapest
// guarantee whose expected late fraction meets the target.
#pragma once

#include <vector>

#include "model/guarantee.h"
#include "util/units.h"

namespace silo {

struct WorkloadProfile {
  /// Empirical message sizes (bytes); sampled uniformly during evaluation.
  std::vector<Bytes> message_sizes;
  double messages_per_sec = 0;
  /// The in-network delay bound the provider offers for the chosen class.
  TimeNs packet_delay = 1 * kMsec;
  /// The delay packets actually experience in a Silo-provisioned fabric —
  /// typically far below the bound `d`; the difference is slack the pacer
  /// can spend on absorbing bursts before a message goes "late".
  TimeNs expected_network_delay = 100 * kUsec;
  /// The provider's burst-rate cap for the class.
  RateBps burst_rate = 1 * kGbps;
};

struct AdvisorOptions {
  double target_late_fraction = 0.001;  ///< e.g. 99.9% of messages on time
  int evaluated_messages = 20000;
  std::uint64_t seed = 1;
  /// Candidate grids, as multiples of the average bandwidth and of the
  /// largest observed message respectively (Table 1's axes).
  std::vector<double> bandwidth_multiples{1.0, 1.2, 1.4, 1.6, 1.8, 2.0,
                                          2.4, 2.8, 3.2, 4.0};
  std::vector<double> burst_multiples{1.0, 2.0, 3.0, 5.0, 7.0, 9.0};
};

struct GuaranteeRecommendation {
  SiloGuarantee guarantee;
  double expected_late_fraction = 1.0;
  double average_bandwidth = 0;  ///< the workload's raw average (bits/s)
  bool feasible = false;         ///< a candidate met the target
};

/// Evaluate one candidate guarantee against the workload: the fraction of
/// messages whose pacer-release completion exceeds the §4.1 latency bound.
double evaluate_late_fraction(const WorkloadProfile& profile,
                              const SiloGuarantee& candidate,
                              int messages, std::uint64_t seed);

/// Search the candidate grid for the cheapest guarantee (smallest
/// bandwidth, then smallest burst) meeting the target late fraction. If
/// none does, returns the best-performing candidate with feasible=false.
GuaranteeRecommendation recommend_guarantee(const WorkloadProfile& profile,
                                            const AdvisorOptions& options = {});

}  // namespace silo
