#include "core/advisor.h"

#include <algorithm>
#include <stdexcept>

#include "pacer/token_bucket.h"
#include "util/rng.h"

namespace silo {
namespace {

double mean_size(const std::vector<Bytes>& sizes) {
  double sum = 0;
  for (Bytes b : sizes) sum += static_cast<double>(b);
  return sum / static_cast<double>(sizes.size());
}

}  // namespace

double evaluate_late_fraction(const WorkloadProfile& profile,
                              const SiloGuarantee& candidate, int messages,
                              std::uint64_t seed) {
  if (profile.message_sizes.empty() || profile.messages_per_sec <= 0)
    throw std::invalid_argument("advisor needs sizes and a positive rate");
  Rng rng(seed);
  // The pacer model of §4.3 reduced to message granularity: the {B, S}
  // bucket gates the message body; the Bmax cap turns bucket-conformant
  // bytes into wire time. A message is late when its completion exceeds
  // the §4.1 bound for this guarantee.
  pacer::TokenBucket bucket(candidate.bandwidth,
                            std::max<Bytes>(candidate.burst, kMtu));
  const RateBps bmax =
      candidate.burst_rate > RateBps{0} ? candidate.burst_rate
                                        : candidate.bandwidth;
  TimeNs now {};
  TimeNs busy_until {};  // the Bmax serializer
  int late = 0;
  for (int i = 0; i < messages; ++i) {
    now += TimeNs{static_cast<std::int64_t>(
        rng.exponential(1.0 / profile.messages_per_sec) *
        static_cast<double>(kSec))};
    const Bytes size = profile.message_sizes[static_cast<std::size_t>(
        rng.uniform_int(0,
                        static_cast<std::int64_t>(profile.message_sizes.size()) -
                            1))];
    // Drain the message through the bucket in MTU chunks, each serialized
    // at Bmax behind previously released bytes.
    TimeNs done = now;
    Bytes left = size;
    while (left > Bytes{0}) {
      const Bytes chunk = std::min<Bytes>(left, kMtu);
      TimeNs t = bucket.earliest_conformance(done, chunk);
      bucket.consume(t, chunk);
      t = std::max(t, busy_until);
      busy_until = t + transmission_time(chunk, bmax);
      done = busy_until;
      left -= chunk;
    }
    const TimeNs bound = max_message_latency(candidate, size);
    if (done - now + profile.expected_network_delay > bound) ++late;
  }
  return static_cast<double>(late) / static_cast<double>(messages);
}

GuaranteeRecommendation recommend_guarantee(const WorkloadProfile& profile,
                                            const AdvisorOptions& options) {
  if (profile.message_sizes.empty())
    throw std::invalid_argument("advisor needs at least one message size");
  GuaranteeRecommendation best;
  best.average_bandwidth =
      profile.messages_per_sec * mean_size(profile.message_sizes) * 8.0;
  const Bytes max_msg =
      *std::max_element(profile.message_sizes.begin(),
                        profile.message_sizes.end());

  for (double bw_mult : options.bandwidth_multiples) {
    for (double burst_mult : options.burst_multiples) {
      SiloGuarantee cand;
      cand.bandwidth = RateBps{best.average_bandwidth * bw_mult};
      cand.burst = static_cast<Bytes>(burst_mult * static_cast<double>(max_msg));
      cand.delay = profile.packet_delay;
      cand.burst_rate = std::max(profile.burst_rate, cand.bandwidth);
      const double late = evaluate_late_fraction(
          profile, cand, options.evaluated_messages, options.seed);
      if (late <= options.target_late_fraction) {
        // Cheapest wins: bandwidth dominates cost, then burst.
        const bool cheaper =
            !best.feasible ||
            cand.bandwidth < best.guarantee.bandwidth - RateBps{1.0} ||
            (cand.bandwidth <= best.guarantee.bandwidth + RateBps{1.0} &&
             cand.burst < best.guarantee.burst);
        if (cheaper) {
          best.guarantee = cand;
          best.expected_late_fraction = late;
          best.feasible = true;
        }
      } else if (!best.feasible && late < best.expected_late_fraction) {
        best.guarantee = cand;
        best.expected_late_fraction = late;
      }
    }
  }
  return best;
}

}  // namespace silo
