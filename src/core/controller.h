// SiloController: the provider-facing control plane.
//
// This is the non-simulation API a deployment would embed: it owns the
// datacenter model and admission control, and for every admitted tenant
// emits the per-server pacer configuration records that the hypervisor
// filter driver (the prototype's NDIS driver) consumes — which VM slots
// to pace, with what {B, S, Bmax}, and which peer VMs share the tenant's
// hose so destination buckets can be coordinated.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/guarantee.h"
#include "placement/placement.h"
#include "topology/topology.h"

namespace silo {

/// One VM's pacing assignment on a server — everything the hypervisor
/// needs to enforce the tenant's guarantees locally.
struct PacerConfigRecord {
  placement::TenantId tenant = -1;
  int vm_index = 0;   ///< tenant-local VM id
  int server = 0;
  SiloGuarantee guarantee;
  /// (tenant-local VM id, server) of every peer VM: the hypervisor keys
  /// its per-destination token buckets and EyeQ coordination off these.
  std::vector<std::pair<int, int>> peers;
};

struct TenantHandle {
  placement::TenantId id = -1;
  std::vector<int> vm_to_server;
};

struct DatacenterStats {
  int total_slots = 0;
  int free_slots = 0;
  int admitted_tenants = 0;
  /// Highest fraction of any port's line rate that is reserved.
  double max_port_reservation = 0;
  /// Worst admitted queue bound anywhere, as a fraction of that port's
  /// queue capacity (<= 1 by construction for Silo policy).
  double max_queue_headroom_used = 0;
};

class SiloController {
 public:
  struct Options {
    placement::Policy policy = placement::Policy::kSilo;
    TimeNs nic_delay_allowance = 50 * kUsec;
    bool hose_tightening = true;
  };

  explicit SiloController(const topology::TopologyConfig& topo)
      : SiloController(topo, Options{}) {}
  SiloController(const topology::TopologyConfig& topo, const Options& options);

  /// Admission control + placement; nullopt when the request cannot be
  /// accommodated without violating someone's guarantees.
  std::optional<TenantHandle> admit(const TenantRequest& request);

  /// Release a tenant's VMs and reservations.
  void release(const TenantHandle& handle);

  /// Pacer configuration for every guaranteed VM currently on `server` —
  /// the state pushed to that server's hypervisor driver.
  std::vector<PacerConfigRecord> server_config(int server) const;

  /// The §4.1 worst-case message latency a tenant admitted with
  /// `guarantee` may advertise to its application.
  static TimeNs message_latency_bound(const SiloGuarantee& guarantee,
                                      Bytes message) {
    return max_message_latency(guarantee, message);
  }

  DatacenterStats stats() const;

  const topology::Topology& topo() const { return topo_; }
  const placement::PlacementEngine& placement() const { return engine_; }

 private:
  struct TenantState {
    TenantRequest request;
    std::vector<int> vm_to_server;
  };

  topology::Topology topo_;
  placement::PlacementEngine engine_;
  std::unordered_map<placement::TenantId, TenantState> tenants_;
};

}  // namespace silo
