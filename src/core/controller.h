// SiloController: the provider-facing control plane.
//
// This is the non-simulation API a deployment would embed: it owns the
// datacenter model and admission control, and for every admitted tenant
// emits the per-server pacer configuration records that the hypervisor
// filter driver (the prototype's NDIS driver) consumes — which VM slots
// to pace, with what {B, S, Bmax}, and which peer VMs share the tenant's
// hose so destination buckets can be coordinated. Config shipping is
// incremental: each admit/release/recovery enqueues PacerConfigDeltas for
// the affected servers only (drain_config_deltas); server_config() stays
// available as the full-snapshot reference the deltas must reproduce.
#pragma once

#include <optional>
#include <map>
#include <vector>

#include "model/guarantee.h"
#include "core/journal.h"
#include "obs/metrics.h"
#include "pacer/pacer_config.h"
#include "placement/placement.h"
#include "topology/topology.h"

namespace silo {

struct TenantHandle {
  placement::TenantId id = -1;
  std::vector<int> vm_to_server;
};

/// Per-tenant guarantee status after failures (§4.1 only holds while the
/// tenant's reservation is in place end to end).
enum class TenantStatus {
  kGuaranteed,  ///< placed with full guarantees validated
  kDegraded,    ///< re-placed best-effort after a failure; no guarantees
  kUnplaced,    ///< no capacity anywhere; awaiting hardware restore
};

struct DatacenterStats {
  int total_slots = 0;
  int free_slots = 0;
  int admitted_tenants = 0;
  /// Tenants running without their guarantees after a failure.
  int degraded_tenants = 0;
  /// Tenants with no placement at all (evacuated, nowhere to go).
  int unplaced_tenants = 0;
  /// Highest fraction of any port's line rate that is reserved.
  double max_port_reservation = 0;
  /// Worst admitted queue bound anywhere, as a fraction of that port's
  /// queue capacity (<= 1 by construction for Silo policy).
  double max_queue_headroom_used = 0;
};

/// Outcome of one failure/restore event: which tenants were touched and
/// where they ended up, plus the pacer records to push to hypervisors for
/// every re-placed guaranteed VM.
struct RecoveryReport {
  std::vector<placement::TenantId> affected;  ///< sorted, deterministic
  std::vector<placement::TenantId> replaced;  ///< full guarantees re-validated
  std::vector<placement::TenantId> degraded;  ///< best-effort fallback
  std::vector<placement::TenantId> unplaced;  ///< no slots anywhere
  std::vector<PacerConfigRecord> refreshed;   ///< configs for replaced VMs
};

class SiloController {
 public:
  struct Options {
    placement::Policy policy = placement::Policy::kSilo;
    TimeNs nic_delay_allowance = 50 * kUsec;
    bool hose_tightening = true;
    /// kFullRescan keeps the quadratic reference path (full port-load
    /// rebuilds, no delta emission) for equivalence tests and benchmarks.
    placement::AdmissionMode admission_mode =
        placement::AdmissionMode::kIncremental;
  };

  explicit SiloController(const topology::TopologyConfig& topo)
      : SiloController(topo, Options{}) {}
  SiloController(const topology::TopologyConfig& topo, const Options& options);

  /// Admission control + placement; nullopt when the request cannot be
  /// accommodated without violating someone's guarantees.
  std::optional<TenantHandle> admit(const TenantRequest& request);

  /// Release a tenant's VMs and reservations.
  void release(const TenantHandle& handle);

  /// A server died: evacuate every tenant with a VM on it and re-place
  /// each one under the same admission checks it was originally admitted
  /// with. Tenants that no longer fit with guarantees drop to explicit
  /// best-effort degraded mode (or unplaced when no slots exist at all).
  RecoveryReport handle_server_failure(int server);

  /// A fabric link died: re-place every tenant whose traffic crosses it so
  /// no guaranteed tenant depends on the dead link. Same fallback ladder.
  RecoveryReport handle_link_failure(topology::PortId port);

  /// Hardware came back: re-validate every degraded/unplaced tenant,
  /// promoting those whose full guarantees are feasible again.
  RecoveryReport restore_server(int server);
  RecoveryReport restore_link(topology::PortId port);

  TenantStatus tenant_status(placement::TenantId id) const {
    return tenants_.at(id).status;
  }
  /// Current placement (may differ from the admit-time handle after
  /// recovery; -1 entries mean the VM is unplaced).
  const std::vector<int>& tenant_placement(placement::TenantId id) const {
    return tenants_.at(id).vm_to_server;
  }

  /// Pacer configuration for every guaranteed VM currently on `server` —
  /// the full-snapshot reference the incremental deltas must reproduce.
  std::vector<PacerConfigRecord> server_config(int server) const;

  /// Incremental pacer-config updates queued since the last drain, in
  /// emission order: one delta per affected server per admit/release/
  /// recovery event. Applying each to its server's PacerConfigTable yields
  /// exactly server_config(server). Empty in kFullRescan mode (full
  /// snapshots are the only protocol there).
  std::vector<PacerConfigDelta> drain_config_deltas();

  // --- Work-conserving leases (docs/WORKCONSERVING.md) ------------------

  /// Lend `rate` of `owner`'s idle reservation to `borrower`'s VM
  /// `borrower_vm` on the server that hosts it, until `duration_epochs`
  /// lease epochs from now have elapsed. Validated: the owner must be a
  /// guaranteed (paced) tenant with a VM on the borrower's server, the
  /// borrower VM must be placed, and `rate` must be positive and within
  /// the owner's per-VM reservation. Returns the lease id, or nullopt on
  /// rejection (`controller.lease.rejected`). Journaled write-ahead like
  /// every other mutation, so leases survive crash recovery.
  std::optional<std::uint64_t> grant_lease(placement::TenantId owner,
                                           placement::TenantId borrower,
                                           int borrower_vm, RateBps rate,
                                           std::uint64_t duration_epochs = 1);

  /// Early reclamation — the owner's demand returned before expiry.
  /// Returns false when the lease is unknown (already expired/revoked).
  bool revoke_lease(std::uint64_t id);

  /// Advance the controller lease epoch by one: expires every due lease
  /// and emits an epoch-stamped heartbeat delta to each server that held
  /// lease state, so agent-side clocks advance even when no new grants
  /// flow. Returns the leases that expired this tick.
  std::vector<PacerLeaseRecord> advance_lease_epoch();

  std::uint64_t lease_epoch() const { return lease_epoch_; }
  /// Active (granted, unexpired) leases in ascending id order.
  std::vector<PacerLeaseRecord> active_leases() const;

  // --- Durability (write-ahead journal) ---------------------------------

  /// Journal every subsequent mutation (write-ahead: the record is
  /// appended before the op executes). When `snapshot_every > 0` the
  /// journal is compacted with an exact snapshot() after that many
  /// journaled ops. The journal must outlive the controller.
  void attach_journal(DeltaJournal* journal, std::int64_t snapshot_every = 0);

  /// Rebuild state by replaying `journal` (snapshot restore + record
  /// replay), then attach it for subsequent ops. Only valid on a fresh
  /// controller (throws std::logic_error otherwise). Determinism makes the
  /// result bit-identical to the never-crashed controller: placement
  /// decisions, server_config snapshots, and metric counters all match.
  /// Pending config deltas are re-emitted for every replayed op — callers
  /// drain them and resync the fleet through the control channel.
  void recover_from_journal(DeltaJournal& journal,
                            std::int64_t snapshot_every = 0);

  /// Exact logical state (engine snapshot + tenant map + counters).
  ControllerSnapshot snapshot() const;
  /// Restore from snapshot(); fresh controllers only (throws otherwise).
  void restore_snapshot(const ControllerSnapshot& snap);

  /// Servers with at least one shipped (paced) record, ascending — the
  /// control channel resyncs its shadow tables from these after recovery.
  std::vector<int> paced_servers() const;

  /// The §4.1 worst-case message latency a tenant admitted with
  /// `guarantee` may advertise to its application.
  static TimeNs message_latency_bound(const SiloGuarantee& guarantee,
                                      Bytes message) {
    return max_message_latency(guarantee, message);
  }

  DatacenterStats stats() const;

  /// Control-plane metric registry: admissions, rejections, and recovery
  /// ladder transitions, updated via cached handles.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  const topology::Topology& topo() const { return topo_; }
  const placement::PlacementEngine& placement() const { return engine_; }

 private:
  struct TenantState {
    TenantRequest request;
    std::vector<int> vm_to_server;
    /// Placement last shipped to the pacers via deltas; empty when no
    /// records are live (never paced, released, degraded or unplaced).
    std::vector<int> paced_vm_to_server;
    /// Current placement-engine id — changes on every re-placement while
    /// the controller-facing tenant id stays stable; -1 when unplaced.
    placement::TenantId engine_id = -1;
    TenantStatus status = TenantStatus::kGuaranteed;
  };

  /// Evacuate + re-place each affected tenant: full guarantees first,
  /// best-effort degraded second, unplaced as the last resort.
  RecoveryReport recover(std::vector<placement::TenantId> affected);
  std::vector<placement::TenantId> to_external(
      const std::vector<placement::TenantId>& engine_ids) const;
  std::vector<placement::TenantId> non_guaranteed_tenants() const;
  void append_records(placement::TenantId id, const TenantState& state,
                      std::vector<PacerConfigRecord>& out) const;
  PacerConfigRecord make_record(placement::TenantId id,
                                const TenantState& state, int vm) const;
  /// Queue removals for the previously shipped records and, when
  /// `now_paced`, upserts for the current placement — one delta per
  /// affected server — then record what is now shipped. No-op (state
  /// cleared only) in kFullRescan mode.
  void emit_config_deltas(placement::TenantId id, TenantState& state,
                          bool now_paced);
  /// Keep degraded_count_/unplaced_count_ in sync on a status change.
  void count_status(TenantStatus status, int delta);
  /// Revoke every lease naming `id` as owner or borrower (placement is
  /// changing under it). Runs inside already-journaled ops — release and
  /// recovery — so replay reproduces the cascade without extra records.
  void revoke_leases_for_tenant(placement::TenantId id);
  /// Queue a lease-only delta (epoch-stamped) for `server`.
  void emit_lease_delta(int server, std::vector<std::uint64_t> removes,
                        std::vector<PacerLeaseRecord> upserts);
  /// Write-ahead append (no-op when unattached or replaying).
  void journal_op(JournalRecord rec);
  /// Compact the journal with a fresh snapshot every snapshot_every_ ops.
  void maybe_compact();

  topology::Topology topo_;
  placement::PlacementEngine engine_;
  std::map<placement::TenantId, TenantState> tenants_;
  /// Live engine id -> controller-facing tenant id (engine ids churn on
  /// every re-placement; this replaces the full-map scans to_external and
  /// server_config used to need).
  std::map<placement::TenantId, placement::TenantId> engine_to_external_;
  std::vector<PacerConfigDelta> pending_deltas_;
  int degraded_count_ = 0;
  int unplaced_count_ = 0;
  std::map<std::uint64_t, PacerLeaseRecord> leases_;  ///< active, by id
  std::uint64_t lease_epoch_ = 0;
  std::uint64_t next_lease_id_ = 1;

  DeltaJournal* journal_ = nullptr;
  std::int64_t snapshot_every_ = 0;
  std::int64_t ops_since_snapshot_ = 0;
  bool replaying_ = false;

  obs::MetricsRegistry metrics_;
  obs::Counter m_admissions_;
  obs::Counter m_rejections_;
  obs::Counter m_releases_;
  obs::Counter m_replaced_;   ///< recoveries that kept full guarantees
  obs::Counter m_degraded_;   ///< recoveries falling to best-effort
  obs::Counter m_unplaced_;   ///< recoveries with no slots anywhere
  obs::Counter m_promotions_; ///< degraded/unplaced back to guaranteed
  obs::Counter m_diff_deltas_;   ///< per-server deltas emitted
  obs::Counter m_diff_upserts_;  ///< records upserted across all deltas
  obs::Counter m_diff_removes_;  ///< record keys removed across all deltas
  obs::Counter m_lease_granted_;  ///< leases issued
  obs::Counter m_lease_revoked_;  ///< early reclamations (incl. cascades)
  obs::Counter m_lease_expired_;  ///< clean epoch expiries
  obs::Counter m_lease_rejected_; ///< grant requests that failed validation
  obs::Gauge m_lease_active_;     ///< currently outstanding leases
};

}  // namespace silo
