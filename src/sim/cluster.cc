#include "sim/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace silo::sim {

namespace {

/// FNV-1a over one 64-bit word, byte by byte (matches the golden-trace
/// convention used by the determinism tests).
std::uint64_t fnv1a_word(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvSeed = 14695981039346656037ull;

}  // namespace

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kSilo: return "Silo";
    case Scheme::kTcp: return "TCP";
    case Scheme::kDctcp: return "DCTCP";
    case Scheme::kHull: return "HULL";
    case Scheme::kOktopus: return "Okto";
    case Scheme::kOktopusPlus: return "Okto+";
    case Scheme::kQjump: return "QJUMP";
    case Scheme::kPfabric: return "pFabric";
  }
  return "?";
}

ClusterSim::ClusterSim(const ClusterConfig& cfg)
    : cfg_(cfg), parallel_(cfg.parallel.enabled) {
  topo_ = std::make_unique<topology::Topology>(cfg.topo);
  placer_ = std::make_unique<placement::PlacementEngine>(*topo_,
                                                         placement_policy());
  port_template_.link_delay = cfg.link_delay;
  if (cfg.scheme == Scheme::kDctcp)
    port_template_.ecn_threshold = cfg.ecn_threshold;
  if (cfg.scheme == Scheme::kHull) {
    port_template_.phantom_queue = true;
    port_template_.phantom_drain = cfg.phantom_drain;
    port_template_.phantom_threshold = cfg.phantom_threshold;
  }
  if (cfg.scheme == Scheme::kPfabric) port_template_.pfabric = true;

  host_template_.link_rate = cfg.topo.server_link_rate;
  host_template_.nic_mode = scheme_paced() ? pacer::NicMode::kPacedVoid
                                           : pacer::NicMode::kBatched;
  host_template_.batch_window = cfg.batch_window;
  host_template_.tor_link_delay = cfg.link_delay;
  host_template_.loopback_delay = cfg.loopback_delay;

  if (parallel_) {
    // The island partition is a function of the admitted placement, so
    // fabric/hosts materialize lazily once admissions settle (first run,
    // driver attach, or fabric access). Lending's epoch tick walks every
    // host from one event — inherently cross-island — so it stays a
    // sequential-mode feature.
    if (cfg_.lending.enabled)
      throw std::invalid_argument(
          "ClusterSim: headroom lending is unsupported in parallel mode");
    part_ = IslandPartition::single(*topo_, 0);
    return;
  }

  // Sequential mode: one island, built here exactly as it always was.
  islands_.push_back(std::make_unique<IslandState>());
  IslandState& isl = *islands_.front();
  part_ = IslandPartition::single(*topo_, 0);
  fabric_ = std::make_unique<Fabric>(isl.events, *topo_, port_template_);
  fabric_->set_host_deliver([this](PacketHandle h) { dispatch(0, h); });
  hosts_.reserve(topo_->num_servers());
  for (int s = 0; s < topo_->num_servers(); ++s) {
    hosts_.push_back(
        std::make_unique<Host>(isl.events, *fabric_, s, host_template_));
    hosts_.back()->set_local_deliver([this](PacketHandle h) { dispatch(0, h); });
  }

  // Register the metric catalog (see docs/OBSERVABILITY.md) and hand the
  // cached cells to every component. The cells are shared cluster-wide:
  // all ports increment one counter, all hosts another, and so on.
  register_catalog(isl);
  for (int p = 0; p < topo_->num_ports(); ++p)
    fabric_->port(topology::PortId{p}).set_metrics(isl.pm);
  for (auto& h : hosts_) h->set_metrics(isl.hm, isl.pm);
  materialized_ = true;

  if (cfg_.lending.enabled) {
    lender_ = std::make_unique<pacer::HeadroomLender>(cfg_.lending.policy);
    isl.events.schedule_after(cfg_.lending.epoch, EventKind::kClusterLeaseEpoch,
                              this, 0);
  }
}

void ClusterSim::register_catalog(IslandState& isl) {
  obs::MetricsRegistry& m = isl.metrics;
  isl.pm.tx_packets = m.counter("sim.port.tx_packets", "packets", "port");
  isl.pm.tx_bytes = m.counter("sim.port.tx_bytes", "bytes", "port");
  isl.pm.drops = m.counter("sim.port.drops", "packets", "port");
  isl.pm.fault_drops = m.counter("sim.port.fault_drops", "packets", "port");
  isl.pm.ecn_marks = m.counter("sim.port.ecn_marks", "packets", "port");
  isl.pm.peak_queue_bytes =
      m.gauge("sim.port.peak_queue_bytes", "bytes", "port");
  isl.pm.queue_bytes = m.histogram(
      "sim.port.queue_bytes", "bytes", "port",
      {1024, 8192, 32768, 131072, 524288, 2097152});

  isl.hm.data_packets = m.counter("sim.pacer.data_packets", "packets", "pacer");
  isl.hm.void_packets = m.counter("sim.pacer.void_packets", "packets", "pacer");
  isl.hm.batches = m.counter("sim.pacer.batches", "batches", "pacer");
  isl.hm.throttled = m.counter("sim.pacer.throttled", "packets", "pacer");
  isl.hm.pacer_drops = m.counter("sim.pacer.queue_drops", "packets", "pacer");
  isl.hm.fault_drops = m.counter("sim.host.fault_drops", "packets", "host");

  isl.flow_metrics.segments =
      m.counter("sim.transport.segments", "packets", "transport");
  isl.flow_metrics.retransmits =
      m.counter("sim.transport.retransmits", "packets", "transport");
  isl.flow_metrics.acks =
      m.counter("sim.transport.acks", "packets", "transport");
  isl.flow_metrics.rtos =
      m.counter("sim.transport.rtos", "events", "transport");
  isl.flow_metrics.aborts =
      m.counter("sim.transport.aborts", "events", "transport");

  isl.admissions = m.counter("cluster.admissions", "tenants", "cluster");
  isl.rejections = m.counter("cluster.rejections", "tenants", "cluster");
  isl.msgs_completed =
      m.counter("cluster.messages_completed", "messages", "cluster");
  isl.msgs_aborted =
      m.counter("cluster.messages_aborted", "messages", "cluster");
  isl.slo_violations =
      m.counter("cluster.slo_violations", "messages", "cluster");
  isl.diff_applied = m.counter("controller.diff.applied", "deltas", "cluster");
  isl.diff_apply_ns = m.counter("controller.diff.apply_ns", "ns", "cluster");

  isl.lease_granted = m.counter("pacer.lease.granted", "leases", "cluster");
  isl.lease_revoked = m.counter("pacer.lease.revoked", "leases", "cluster");
  isl.lease_expired = m.counter("pacer.lease.expired", "leases", "cluster");
  isl.lease_applied = m.counter("pacer.lease.applied", "records", "cluster");
  isl.lease_active = m.gauge("pacer.lease.active", "leases", "cluster");
  isl.lease_lent_bps = m.gauge("pacer.lease.lent_bps", "bps", "cluster");
}

void ClusterSim::materialize() {
  if (materialized_) return;
  materialized_ = true;

  std::vector<std::vector<int>> tenant_servers;
  tenant_servers.reserve(tenants_.size());
  for (const auto& rt : tenants_) tenant_servers.push_back(rt.vm_server);
  part_ = IslandPartition::build(*topo_, cfg_.link_delay, tenant_servers);
  if (part_.num_islands > (1 << 11))
    throw std::length_error(
        "ClusterSim: island count exceeds the flow-id encoding (2^11)");

  islands_.reserve(static_cast<std::size_t>(part_.num_islands));
  for (int i = 0; i < part_.num_islands; ++i) {
    islands_.push_back(std::make_unique<IslandState>());
    IslandState& isl = *islands_.back();
    isl.id = i;
    register_catalog(isl);
    isl.gateway.bind(
        this,
        [](void* ctx, int island, std::uint32_t h) {
          static_cast<ClusterSim*>(ctx)->island_arrival(island, h);
        },
        i);
  }

  std::vector<EventQueue*> queues;
  queues.reserve(islands_.size());
  for (auto& isl : islands_) queues.push_back(&isl->events);
  fabric_ = std::make_unique<Fabric>(*topo_, port_template_, part_.port_island,
                                     queues);
  fabric_->set_island_deliver(
      [this](int island, EventQueue&, PacketHandle h) { dispatch(island, h); });
  handoff_.owner = this;
  for (int p = 0; p < topo_->num_ports(); ++p) {
    SwitchPortSim& port = fabric_->port(topology::PortId{p});
    port.set_metrics(islands_[static_cast<std::size_t>(
                                  part_.port_island[static_cast<std::size_t>(p)])]
                         ->pm);
    port.set_tx_handoff(&handoff_);
  }

  hosts_.reserve(topo_->num_servers());
  for (int s = 0; s < topo_->num_servers(); ++s) {
    const int isl_id = part_.island_of_server(*topo_, s);
    Host::Config hc = host_template_;
    hc.island = isl_id;
    hosts_.push_back(std::make_unique<Host>(
        islands_[static_cast<std::size_t>(isl_id)]->events, *fabric_, s, hc));
    hosts_.back()->set_local_deliver(
        [this, isl_id](PacketHandle h) { dispatch(isl_id, h); });
    hosts_.back()->set_metrics(
        islands_[static_cast<std::size_t>(isl_id)]->hm,
        islands_[static_cast<std::size_t>(isl_id)]->pm);
  }

  // Deferred admission plumbing: pacer attachment needs hosts, the
  // rebalance timer needs the tenant's island queue. Tenant order keeps
  // the initial event layout input-determined.
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    auto& rt = tenants_[t];
    if (!rt.pacers) continue;
    for (int v = 0; v < rt.request.num_vms; ++v)
      hosts_[static_cast<std::size_t>(rt.vm_server[static_cast<std::size_t>(v)])]
          ->attach_pacer(rt.vm_base + v, &rt.pacers->vm(v));
    islands_[static_cast<std::size_t>(part_.tenant_island[t])]
        ->events.schedule_after(cfg_.rebalance_period,
                                EventKind::kClusterRebalance, this,
                                static_cast<std::uint32_t>(t));
  }
  islands_.front()->admissions.inc(pending_admissions_);
  islands_.front()->rejections.inc(pending_rejections_);
}

// ------------------------------------------------------------- accessors

EventQueue& ClusterSim::events() {
  if (parallel_)
    throw std::logic_error(
        "ClusterSim::events(): parallel mode is island-sharded; use "
        "tenant_events()/port_events()/server_events()");
  return islands_.front()->events;
}

obs::MetricsRegistry& ClusterSim::metrics() {
  if (parallel_)
    throw std::logic_error(
        "ClusterSim::metrics(): parallel mode shards the registry per "
        "island; use merged_metrics()");
  return islands_.front()->metrics;
}

const obs::MetricsRegistry& ClusterSim::metrics() const {
  if (parallel_)
    throw std::logic_error(
        "ClusterSim::metrics(): parallel mode shards the registry per "
        "island; use merged_metrics()");
  return islands_.front()->metrics;
}

Fabric& ClusterSim::fabric() {
  materialize();
  return *fabric_;
}

Host& ClusterSim::host_mut(int server) {
  materialize();
  return *hosts_.at(static_cast<std::size_t>(server));
}

void ClusterSim::run_until(TimeNs t) {
  if (!parallel_) {
    islands_.front()->events.run_until(t);
    return;
  }
  run_parallel_until(t);
}

const IslandPartition& ClusterSim::partition() {
  materialize();
  return part_;
}

int ClusterSim::num_islands() {
  materialize();
  return static_cast<int>(islands_.size());
}

EventQueue& ClusterSim::tenant_events(int tenant) {
  if (!parallel_) return islands_.front()->events;
  materialize();
  return islands_[static_cast<std::size_t>(
                      part_.tenant_island.at(static_cast<std::size_t>(tenant)))]
      ->events;
}

EventQueue& ClusterSim::port_events(topology::PortId id) {
  if (!parallel_) return islands_.front()->events;
  materialize();
  return islands_[static_cast<std::size_t>(
                      part_.port_island.at(static_cast<std::size_t>(id.value)))]
      ->events;
}

EventQueue& ClusterSim::server_events(int server) {
  if (!parallel_) return islands_.front()->events;
  materialize();
  return islands_[static_cast<std::size_t>(
                      part_.island_of_server(*topo_, server))]
      ->events;
}

EventQueue& ClusterSim::control_events() {
  if (parallel_) materialize();
  return islands_.front()->events;
}

void ClusterSim::set_packet_tap(PacketTap tap) {
  if (parallel_)
    throw std::logic_error(
        "ClusterSim::set_packet_tap(): sequential-mode debug tap; use "
        "enable_delivery_trace() in parallel mode");
  tap_ = std::move(tap);
}

// ------------------------------------------------- configuration plumbing

void ClusterSim::apply_config_deltas(
    const std::vector<PacerConfigDelta>& deltas) {
  if (parallel_)
    throw std::logic_error(
        "ClusterSim::apply_config_deltas(): controller delta shipping is "
        "sequential-mode only");
  IslandState& isl = *islands_.front();
  for (const auto& delta : deltas) {
    if (delta.server < 0 ||
        delta.server >= static_cast<int>(hosts_.size()))
      throw std::out_of_range("config delta server");
    const auto records = static_cast<std::int64_t>(
        delta.removes.size() + delta.upserts.size() +
        delta.lease_removes.size() + delta.lease_upserts.size());
    const TimeNs cost =
        cfg_.config_apply_delay + cfg_.config_record_apply_cost * records;
    isl.diff_apply_ns.inc(cost.count());
    Host* host = hosts_[static_cast<std::size_t>(delta.server)].get();
    obs::Counter applied = isl.diff_applied;
    isl.events.after(cost, [this, host, delta, applied]() mutable {
      host->apply_pacer_config(delta);
      applied.inc();
      // Lease-bearing deltas re-derive the borrower pacers' overlays from
      // the host's applied table (grants raise, revokes lower).
      if (!delta.lease_removes.empty() || !delta.lease_upserts.empty())
        refresh_lease_rates(delta.server);
    });
  }
}

obs::FlightRecorder& ClusterSim::enable_flight_recorder(std::size_t capacity) {
  if (parallel_)
    throw std::logic_error(
        "ClusterSim::enable_flight_recorder(): the flight recorder is a "
        "single-ring sequential-mode tool; use enable_delivery_trace()");
  recorder_ = std::make_unique<obs::FlightRecorder>(capacity);
  recorder_->set_flow_tenants(&islands_.front()->flow_tenant);
  islands_.front()->events.set_flight_recorder(recorder_.get());
  return *recorder_;
}

ClusterSim::~ClusterSim() = default;

placement::Policy ClusterSim::placement_policy() const {
  switch (cfg_.scheme) {
    case Scheme::kSilo:
      return placement::Policy::kSilo;
    case Scheme::kOktopus:
    case Scheme::kOktopusPlus:
      return placement::Policy::kOktopus;
    default:
      return placement::Policy::kLocality;
  }
}

TimeNs ClusterSim::qjump_epoch() const {
  // QJUMP's network epoch: long enough for every host to push one
  // maximum-size packet through the shared fabric plus propagation —
  // 2 * (n * mtu_time + path delay), the guaranteed-latency level.
  const TimeNs mtu_time =
      transmission_time(kMtu + kEthOverhead, cfg_.topo.server_link_rate);
  return 2 * (topo_->num_servers() * mtu_time + 6 * cfg_.link_delay);
}

SiloGuarantee ClusterSim::pacing_guarantee(const SiloGuarantee& g) const {
  SiloGuarantee out = g;
  if (cfg_.scheme == Scheme::kOktopus) {
    // Oktopus enforces the bandwidth reservation with no burst allowance.
    out.burst = kMtu;
    out.burst_rate = g.bandwidth;
  } else if (cfg_.scheme == Scheme::kQjump) {
    // One full packet per network epoch, regardless of the requested
    // guarantee: QJUMP's guaranteed-latency level is deliberately slow.
    out.bandwidth = RateBps{static_cast<double>(kMtu) * 8e9 /
                            static_cast<double>(qjump_epoch())};
    out.burst = kMtu;
    out.burst_rate = out.bandwidth;
  }
  return out;
}

std::optional<int> ClusterSim::add_tenant(const TenantRequest& request) {
  auto admitted = placer_->place(request);
  if (!admitted) {
    if (parallel_ && !materialized_)
      ++pending_rejections_;
    else
      islands_.front()->rejections.inc();
    return std::nullopt;
  }
  return finish_admission(request, std::move(admitted->vm_to_server));
}

int ClusterSim::add_tenant_pinned(const TenantRequest& request,
                                  std::vector<int> vm_to_server) {
  if (static_cast<int>(vm_to_server.size()) != request.num_vms)
    throw std::invalid_argument("pinned placement size != num_vms");
  for (int s : vm_to_server)
    if (s < 0 || s >= topo_->num_servers())
      throw std::out_of_range("pinned placement server index");
  return finish_admission(request, std::move(vm_to_server));
}

int ClusterSim::finish_admission(const TenantRequest& request,
                                 std::vector<int> vm_to_server) {
  if (parallel_ && materialized_)
    throw std::logic_error(
        "ClusterSim: parallel mode fixes the island partition at the first "
        "run — admit every tenant before running");
  TenantRuntime rt;
  rt.request = request;
  rt.vm_server = std::move(vm_to_server);
  rt.vm_base = next_global_vm_;
  next_global_vm_ += request.num_vms;
  if (tenant_paced(request)) {
    rt.pacers = std::make_unique<pacer::TenantPacerGroup>(
        pacing_guarantee(request.guarantee), request.num_vms, kMtu,
        rt.vm_base);
    // Parallel mode: hosts do not exist yet; materialize() attaches.
    if (!parallel_) {
      for (int v = 0; v < request.num_vms; ++v) {
        hosts_[static_cast<std::size_t>(
                   rt.vm_server[static_cast<std::size_t>(v)])]
            ->attach_pacer(rt.vm_base + v, &rt.pacers->vm(v));
      }
    }
  }
  tenants_.push_back(std::move(rt));
  if (parallel_)
    ++pending_admissions_;
  else
    islands_.front()->admissions.inc();
  const int tenant = static_cast<int>(tenants_.size()) - 1;
  if (tenants_[static_cast<std::size_t>(tenant)].pacers && !parallel_) {
    // Kick off periodic EyeQ-style destination-rate coordination.
    islands_.front()->events.schedule_after(
        cfg_.rebalance_period, EventKind::kClusterRebalance, this,
        static_cast<std::uint32_t>(tenant));
  }
  return tenant;
}

int ClusterSim::tenant_vm_count(int tenant) const {
  return tenants_.at(static_cast<std::size_t>(tenant)).request.num_vms;
}

int ClusterSim::vm_server(int tenant, int local_vm) const {
  return tenants_.at(static_cast<std::size_t>(tenant))
      .vm_server.at(static_cast<std::size_t>(local_vm));
}

void ClusterSim::rebalance_tenant(int tenant) {
  auto& rt = tenants_[static_cast<std::size_t>(tenant)];
  EventQueue& ev = tenant_events(tenant);
  std::vector<pacer::HoseDemand> demands;
  for (const auto& [key, flow_id] : rt.pair_to_flow) {
    const auto& f = *flow_runtime(flow_id).flow;
    if (f.bytes_written() > f.bytes_acked()) {
      // Demand up to the VM's current hose rate: the admitted B, or B plus
      // the lease overlay while one is active (equal when lending is off).
      const int src = f.src_vm() - rt.vm_base;
      demands.push_back({src, f.dst_vm() - rt.vm_base,
                         rt.pacers->vm(src).hose_rate()});
    }
  }
  if (!demands.empty()) rt.pacers->rebalance(ev.now(), demands);
  ev.schedule_after(cfg_.rebalance_period, EventKind::kClusterRebalance, this,
                    static_cast<std::uint32_t>(tenant));
}

std::vector<PacerLeaseRecord> ClusterSim::active_leases() const {
  std::vector<PacerLeaseRecord> out;
  out.reserve(issued_.size());
  for (const auto& [id, lease] : issued_) out.push_back(lease);
  return out;
}

std::vector<pacer::LenderVmStats> ClusterSim::collect_lender_stats() {
  std::vector<pacer::LenderVmStats> out;
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    auto& rt = tenants_[t];
    if (!rt.pacers) continue;
    std::vector<Bytes> backlog(static_cast<std::size_t>(rt.request.num_vms),
                               Bytes{0});
    Bytes total {0};
    for (const auto& [key, flow_id] : rt.pair_to_flow) {
      const auto& f = *flow_runtime(flow_id).flow;
      if (f.bytes_written() <= f.bytes_acked()) continue;
      const Bytes b{f.bytes_written() - f.bytes_acked()};
      backlog[static_cast<std::size_t>(f.src_vm() - rt.vm_base)] += b;
      total += b;
    }
    const bool guaranteed =
        rt.request.tenant_class != TenantClass::kBestEffort;
    for (int v = 0; v < rt.request.num_vms; ++v) {
      pacer::LenderVmStats s;
      s.tenant = static_cast<std::int64_t>(t);
      s.vm_index = v;
      s.server = rt.vm_server[static_cast<std::size_t>(v)];
      s.reserved = rt.pacers->vm(v).guarantee().bandwidth;
      s.guaranteed = guaranteed;
      s.sent = rt.pacers->vm(v).take_stamped_bytes();
      s.backlog = backlog[static_cast<std::size_t>(v)];
      s.tenant_backlog = total;
      out.push_back(s);
    }
  }
  return out;
}

void ClusterSim::refresh_lease_rates(int server) {
  // Sum of applied lease rates per borrower (tenant, vm) on this server.
  std::map<std::pair<std::int64_t, int>, RateBps> extra;
  for (const auto& lease : hosts_[static_cast<std::size_t>(server)]
                               ->pacer_config()
                               .leases()) {
    extra[{lease.borrower, lease.vm_index}] += lease.rate;
  }
  const TimeNs now = islands_.front()->events.now();
  const auto push = [&](std::pair<std::int64_t, int> key, RateBps rate) {
    if (key.first < 0 ||
        key.first >= static_cast<std::int64_t>(tenants_.size()))
      return;
    auto& rt = tenants_[static_cast<std::size_t>(key.first)];
    if (!rt.pacers || key.second < 0 || key.second >= rt.request.num_vms)
      return;
    rt.pacers->vm(key.second).set_lease_rate(now, rate);
    islands_.front()->lease_applied.inc();
  };
  auto& applied = applied_lease_rate_[server];
  for (auto it = applied.begin(); it != applied.end();) {
    if (extra.find(it->first) == extra.end()) {
      push(it->first, RateBps{0});  // lease vanished: restore admitted B
      it = applied.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [key, rate] : extra) {
    const auto it = applied.find(key);
    if (it != applied.end() && it->second == rate) continue;
    push(key, rate);
    applied[key] = rate;
  }
}

void ClusterSim::lease_epoch_tick() {
  IslandState& isl = *islands_.front();
  ++lease_epoch_;
  // Expiry is clock-driven on every server's own table (never waits on
  // delta delivery): a lost revoke delays reclamation of borrowed rate
  // only until this tick — the owner's guarantee is never gated on it.
  for (auto& h : hosts_) {
    const auto died = h->advance_lease_epoch(lease_epoch_);
    if (!died.empty()) {
      isl.lease_expired.inc(static_cast<std::int64_t>(died.size()));
      refresh_lease_rates(h->server_id());
    }
  }
  for (auto it = issued_.begin(); it != issued_.end();) {
    it = it->second.expiry_epoch <= lease_epoch_ ? issued_.erase(it)
                                                 : std::next(it);
  }

  const auto decision = lender_->evaluate(
      cfg_.lending.epoch, collect_lender_stats(), active_leases());
  std::map<int, PacerConfigDelta> by_server;
  for (const auto id : decision.revokes) {
    const auto it = issued_.find(id);
    if (it == issued_.end()) continue;
    by_server[it->second.server].lease_removes.push_back(id);
    issued_.erase(it);
    isl.lease_revoked.inc();
  }
  for (auto lease : decision.upserts) {
    if (lease.id == 0) {  // new grant; renewals keep their id
      lease.id = next_lease_id_++;
      isl.lease_granted.inc();
    }
    lease.issued_epoch = lease_epoch_;
    lease.expiry_epoch = lease_epoch_ + lender_->config().duration_epochs;
    by_server[lease.server].lease_upserts.push_back(lease);
    issued_[lease.id] = lease;
  }
  std::vector<PacerConfigDelta> deltas;
  deltas.reserve(by_server.size());
  for (auto& [server, delta] : by_server) {
    delta.server = server;
    delta.lease_epoch = lease_epoch_;
    deltas.push_back(std::move(delta));
  }
  apply_config_deltas(deltas);

  isl.lease_active.set(static_cast<std::int64_t>(issued_.size()));
  double lent_bps = 0;
  for (const auto& [id, lease] : issued_) lent_bps += lease.rate.bps();
  isl.lease_lent_bps.set(static_cast<std::int64_t>(lent_bps));
  isl.events.schedule_after(cfg_.lending.epoch, EventKind::kClusterLeaseEpoch,
                            this, 0);
}

ClusterSim::FlowRuntime& ClusterSim::flow_for(int tenant, int src_local,
                                              int dst_local) {
  auto& rt = tenants_.at(static_cast<std::size_t>(tenant));
  const std::int64_t key =
      static_cast<std::int64_t>(src_local) * rt.request.num_vms + dst_local;
  auto it = rt.pair_to_flow.find(key);
  if (it != rt.pair_to_flow.end()) return flow_runtime(it->second);

  const int island =
      parallel_ ? part_.tenant_island.at(static_cast<std::size_t>(tenant)) : 0;
  IslandState& isl = *islands_[static_cast<std::size_t>(island)];
  const int local = static_cast<int>(isl.flows.size());
  if (local > kLocalFlowMask)
    throw std::length_error("ClusterSim: per-island flow table full");
  const int flow_id = (island << kIslandShift) | local;
  const int src_vm = rt.vm_base + src_local;
  const int dst_vm = rt.vm_base + dst_local;
  const int src_server = rt.vm_server.at(static_cast<std::size_t>(src_local));
  const int dst_server = rt.vm_server.at(static_cast<std::size_t>(dst_local));
  TcpConfig tcp = cfg_.tcp;
  tcp.dctcp =
      cfg_.scheme == Scheme::kDctcp || cfg_.scheme == Scheme::kHull;
  if (cfg_.scheme == Scheme::kPfabric) {
    // pFabric's minimal transport: start near line rate and rely on the
    // fabric's priority scheduling + a tight timeout for loss.
    tcp.init_cwnd_pkts = 64;
    tcp.min_rto = std::min<TimeNs>(cfg_.tcp.min_rto, 2 * kMsec);
  }

  auto fr = std::make_unique<FlowRuntime>();
  fr->flow = std::make_unique<TcpFlow>(
      isl.events, flow_id, src_vm, dst_vm, src_server, dst_server, tcp,
      [this, src_server](PacketHandle h) {
        hosts_[static_cast<std::size_t>(src_server)]->send(h);
      },
      [this, dst_server](PacketHandle h) {
        hosts_[static_cast<std::size_t>(dst_server)]->send(h);
      });
  if (rt.request.tenant_class == TenantClass::kBestEffort ||
      (cfg_.scheme == Scheme::kQjump &&
       rt.request.tenant_class != TenantClass::kDelaySensitive))
    fr->flow->set_priority(Priority::kBestEffort);
  if (scheme_paced()) {
    EventQueue* evp = &isl.events;
    fr->flow->set_can_send([this, evp, src_server, src_vm](int dst,
                                                           Bytes bytes) {
      return hosts_[static_cast<std::size_t>(src_server)]->pacer_delay(
                 evp->now(), src_vm, dst, bytes) <= cfg_.tsq_horizon;
    });
  }
  fr->flow->set_on_delivery([this, flow_id](std::int64_t delivered) {
    on_flow_delivery(flow_id, delivered);
  });
  fr->flow->set_on_abort([this, flow_id] { on_flow_abort(flow_id); });
  fr->flow->set_metrics(isl.flow_metrics);
  fr->paced = tenant_paced(rt.request);
  isl.flows.push_back(std::move(fr));
  isl.flow_tenant.push_back(tenant);
  rt.pair_to_flow.emplace(key, flow_id);
  return *isl.flows[static_cast<std::size_t>(local)];
}

const ClusterSim::FlowRuntime* ClusterSim::find_flow(int tenant, int src_local,
                                                     int dst_local) const {
  const auto& rt = tenants_.at(static_cast<std::size_t>(tenant));
  const std::int64_t key =
      static_cast<std::int64_t>(src_local) * rt.request.num_vms + dst_local;
  auto it = rt.pair_to_flow.find(key);
  return it == rt.pair_to_flow.end() ? nullptr : &flow_runtime(it->second);
}

void ClusterSim::send_message(int tenant, int src_local, int dst_local,
                              Bytes size, MsgCallback done) {
  if (size <= Bytes{0})
    throw std::invalid_argument("message size must be positive");
  const TimeNs now = tenant_events(tenant).now();
  auto& fr = flow_for(tenant, src_local, dst_local);
  if (fr.boundaries.empty()) {
    // Idle flow: start a fresh attribution epoch so the quiet period
    // before this message never counts toward its breakdown.
    fr.attr_mark = now;
    fr.msg_free_at = now;
    fr.accum = MessageBreakdown{};
  }
  FlowRuntime::Boundary b;
  b.end_seq = fr.flow->bytes_written() + size.count();
  b.size = size;
  b.start = now;
  b.rto_index = fr.flow->rto_events().size();
  b.done = std::move(done);
  fr.boundaries.push_back(std::move(b));
  fr.flow->app_write(size);
}

void ClusterSim::on_flow_delivery(int flow_id, std::int64_t delivered) {
  IslandState& isl =
      *islands_[static_cast<std::size_t>(flow_island(flow_id))];
  const std::size_t local = static_cast<std::size_t>(flow_id & kLocalFlowMask);
  auto& fr = *isl.flows[local];
  auto& rt = tenants_[static_cast<std::size_t>(isl.flow_tenant[local])];
  const TimeNs now = isl.events.now();

  // Latency-breakdown attribution. Every in-order advance attributes the
  // flow-progress interval (attr_mark, now] using the arriving packet's
  // stage timeline (captured in dispatch() before its handle was freed):
  //   - the gap before the packet was even emitted is a sender-side stall —
  //     retransmission recovery if a resend/RTO is involved, otherwise
  //     pacer wait on paced flows / stream queueing on unpaced ones;
  //   - the packet's own pacing/queueing/serialization segments cover the
  //     rest, clipped where they overlap time already attributed to earlier
  //     packets (pipelining). Clipping consumes the earliest stages first.
  // Gap + clipped stages == now - attr_mark exactly, so the per-message
  // accumulators always sum to the observed latency.
  const std::size_t rto_count = fr.flow->rto_events().size();
  if (now > fr.attr_mark && isl.pending_arrival == now &&
      isl.pending_stages.tracked) {
    const obs::PacketStages& st = isl.pending_stages;
    const bool retrans = st.retransmit || rto_count > fr.rto_seen;
    const TimeNs gap = st.emitted - fr.attr_mark;
    if (gap > TimeNs{0}) {
      if (retrans)
        fr.accum.retransmit_ns += gap;
      else if (fr.paced)
        fr.accum.pacing_ns += gap;
      else
        fr.accum.queueing_ns += gap;
    }
    TimeNs clip = fr.attr_mark - st.emitted;
    TimeNs p = st.pacing_ns, q = st.queue_ns, s = st.serial_ns;
    if (clip > TimeNs{0}) {
      TimeNs c = std::min(clip, p);
      p -= c;
      clip -= c;
      c = std::min(clip, q);
      q -= c;
      clip -= c;
      s -= std::min(clip, s);
    }
    fr.accum.pacing_ns += p;
    fr.accum.queueing_ns += q;
    fr.accum.serialization_ns += s;
    fr.attr_mark = now;
  }
  fr.rto_seen = rto_count;

  while (!fr.boundaries.empty() && fr.boundaries.front().end_seq <= delivered) {
    auto b = std::move(fr.boundaries.front());
    fr.boundaries.pop_front();
    MessageResult res;
    res.latency = now - b.start;
    res.had_rto = fr.flow->rto_events().size() > b.rto_index;
    res.breakdown = fr.accum;
    // Wait behind earlier messages on the same flow counts as queueing
    // (the stream is a queue); attribution restarts for the next message.
    const TimeNs hol = fr.msg_free_at - b.start;
    if (hol > TimeNs{0}) res.breakdown.queueing_ns += hol;
    fr.accum = MessageBreakdown{};
    fr.msg_free_at = now;
    ++rt.counters.completed;
    isl.msgs_completed.inc();
    // SLO accounting against the §4.1 bound the tenant was admitted with.
    const SiloGuarantee& g = rt.request.guarantee;
    if (rt.request.tenant_class != TenantClass::kBestEffort &&
        g.wants_delay_guarantee() && g.bandwidth > RateBps{0} &&
        res.latency > max_message_latency(g, b.size)) {
      ++rt.counters.slo_violations;
      isl.slo_violations.inc();
    }
    if (b.done) b.done(res);
  }
}

void ClusterSim::on_flow_abort(int flow_id) {
  // The transport discarded its undelivered tail, so every outstanding
  // message on the flow is dead — including ones queued behind the stuck
  // head. Owners see `aborted` and may retry on a fresh epoch.
  IslandState& isl =
      *islands_[static_cast<std::size_t>(flow_island(flow_id))];
  const std::size_t local = static_cast<std::size_t>(flow_id & kLocalFlowMask);
  auto& fr = *isl.flows[local];
  auto& rt = tenants_[static_cast<std::size_t>(isl.flow_tenant[local])];
  const TimeNs now = isl.events.now();
  while (!fr.boundaries.empty()) {
    auto b = std::move(fr.boundaries.front());
    fr.boundaries.pop_front();
    ++rt.counters.aborted;
    isl.msgs_aborted.inc();
    if (b.done) {
      MessageResult res;
      res.latency = now - b.start;
      res.had_rto = true;
      res.aborted = true;
      // The whole wait was loss recovery that never completed.
      res.breakdown.retransmit_ns = res.latency;
      b.done(res);
    }
  }
  fr.accum = MessageBreakdown{};
  fr.attr_mark = now;
  fr.msg_free_at = now;
}

std::int64_t ClusterSim::pair_delivered_bytes(int tenant, int src_local,
                                              int dst_local) const {
  const auto* fr = find_flow(tenant, src_local, dst_local);
  return fr ? fr->flow->bytes_delivered() : 0;
}

int ClusterSim::tenant_rto_count(int tenant) const {
  int total = 0;
  for (const auto& isl : islands_) {
    for (std::size_t i = 0; i < isl->flows.size(); ++i) {
      if (isl->flow_tenant[i] == tenant)
        total += static_cast<int>(isl->flows[i]->flow->rto_events().size());
    }
  }
  return total;
}

int ClusterSim::tenant_abort_count(int tenant) const {
  int total = 0;
  for (const auto& isl : islands_) {
    for (std::size_t i = 0; i < isl->flows.size(); ++i) {
      if (isl->flow_tenant[i] == tenant)
        total += isl->flows[i]->flow->abort_count();
    }
  }
  return total;
}

std::int64_t ClusterSim::total_aborted_messages() const {
  std::int64_t total = 0;
  for (const auto& rt : tenants_) total += rt.counters.aborted;
  return total;
}

std::int64_t ClusterSim::total_completed_messages() const {
  std::int64_t total = 0;
  for (const auto& rt : tenants_) total += rt.counters.completed;
  return total;
}

std::int64_t ClusterSim::total_fault_drops() const {
  if (!fabric_) return 0;
  std::int64_t total = fabric_->total_fault_drops();
  for (const auto& h : hosts_) total += h->fault_drops();
  return total;
}

void ClusterSim::dispatch(int island, PacketHandle h) {
  IslandState& isl = *islands_[static_cast<std::size_t>(island)];
  EventQueue& ev = isl.events;
  // Copy out and recycle the handle first: on_packet allocates the ACK from
  // the same pool, which may grow the arena under a live reference.
  const Packet p = ev.pool().get(h);
  if (!hosts_[static_cast<std::size_t>(p.dst_server)]->up()) {
    // Delivered to a crashed server: the frame dies at the dead NIC.
    hosts_[static_cast<std::size_t>(p.dst_server)]->drop_faulted(h);
    return;
  }
  // Snapshot the stage timeline before the handle is recycled — the
  // attribution in on_flow_delivery (called under on_packet) needs it.
  isl.pending_stages = ev.timeline().stages(PacketPool::slot_of(h));
  isl.pending_arrival = ev.now();
  ev.pool().free(h);
  const std::size_t local = static_cast<std::size_t>(p.flow_id & kLocalFlowMask);
  if (p.flow_id < 0 || flow_island(p.flow_id) != island ||
      local >= isl.flows.size())
    return;
  record_flight(ev, p, obs::FlightEventType::kDelivered,
                obs::host_location(p.dst_server));
  if (tap_) tap_(p);
  if (trace_enabled_) {
    DeliveryRecord rec;
    rec.at = ev.now();
    rec.src_vm = p.src_vm;
    rec.dst_vm = p.dst_vm;
    rec.seq = p.seq;
    rec.ack_seq = p.ack_seq;
    rec.payload = p.payload.count();
    rec.flags = static_cast<std::uint32_t>(p.is_ack) |
                (static_cast<std::uint32_t>(p.ecn_marked) << 1) |
                (static_cast<std::uint32_t>(p.ecn_echo) << 2) |
                (static_cast<std::uint32_t>(p.priority) << 3);
    isl.trace.push_back(rec);
  }
  isl.flows[local]->flow->on_packet(p);
}

// ------------------------------------------ conservative window protocol

int ClusterSim::next_hop_port(const Packet& p) const {
  const topology::PortSpan path = topo_->path_span(p.src_server, p.dst_server);
  if (p.hop >= path.size) return -1;
  return path.port[static_cast<std::size_t>(p.hop)].value;
}

bool ClusterSim::CrossIslandHandoff::offer(SwitchPortSim& port, PacketHandle h,
                                           TimeNs deliver_at) {
  return owner->offer_cross_island(port, h, deliver_at);
}

bool ClusterSim::offer_cross_island(SwitchPortSim& port, PacketHandle h,
                                    TimeNs deliver_at) {
  // Fabric ports carry their PortId as the flight-recorder location.
  const int src = part_.port_island[static_cast<std::size_t>(port.location())];
  IslandState& src_isl = *islands_[static_cast<std::size_t>(src)];
  EventQueue& ev = src_isl.events;
  const Packet& p = ev.pool().get(h);
  const int next = next_hop_port(p);
  if (next < 0) return false;  // final hop: host delivery is island-local
  const int dst = part_.port_island[static_cast<std::size_t>(next)];
  if (dst == src) return false;
  MailboxRecord rec;
  rec.arrival = deliver_at;
  rec.seq = src_isl.mailbox_seq++;
  rec.src_island = src;
  rec.dst_island = dst;
  rec.packet = p;
  rec.stages = ev.timeline().stages(PacketPool::slot_of(h));
  src_isl.outbox.push_back(rec);
  ev.pool().free(h);
  return true;
}

void ClusterSim::island_arrival(int island, PacketHandle h) {
  IslandState& isl = *islands_[static_cast<std::size_t>(island)];
  // The propagation across the boundary is wire time, exactly as a local
  // kPortDeliver would have charged it.
  isl.events.timeline().advance(PacketPool::slot_of(h), isl.events.now(),
                                obs::Stage::kSerialization);
  fabric_->advance_from_gateway(island, isl.events, h);
}

void ClusterSim::drain_inbox(int island) {
  IslandState& isl = *islands_[static_cast<std::size_t>(island)];
  if (isl.inbox.empty()) return;
  // The only ordering decision the parallel engine ever makes, and it is a
  // pure function of the records: (arrival, src-island, per-source seq).
  std::sort(isl.inbox.begin(), isl.inbox.end(),
            [](const MailboxRecord& a, const MailboxRecord& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              if (a.src_island != b.src_island)
                return a.src_island < b.src_island;
              return a.seq < b.seq;
            });
  const TimeNs now = isl.events.now();
  for (std::size_t r = 0; r < isl.inbox.size(); ++r) {
    const MailboxRecord& rec = isl.inbox[r];
    if (rec.arrival <= now)
      throw std::logic_error(
          "ClusterSim: cross-island arrival inside the closed window "
          "(lookahead violated)");
    const PacketHandle h = isl.events.pool().clone(rec.packet);
    isl.events.timeline().restore(PacketPool::slot_of(h), rec.stages);
    isl.events.schedule(rec.arrival, EventKind::kIslandArrival, &isl.gateway,
                        h);
  }
  // Tie census: same-instant arrivals into the same next queue from
  // different source islands are the one case where the fixed drain order
  // above actually decides something the sequential engine decided by
  // emission interleaving. The determinism matrix asserts this stays 0,
  // certifying checksum equality is structural, not coincidental.
  std::size_t g0 = 0;
  while (g0 < isl.inbox.size()) {
    std::size_t g1 = g0 + 1;
    while (g1 < isl.inbox.size() &&
           isl.inbox[g1].arrival == isl.inbox[g0].arrival)
      ++g1;
    for (std::size_t i = g0; i < g1; ++i) {
      for (std::size_t j = i + 1; j < g1; ++j) {
        if (isl.inbox[i].src_island != isl.inbox[j].src_island &&
            next_hop_port(isl.inbox[i].packet) ==
                next_hop_port(isl.inbox[j].packet))
          ++isl.tie_collisions;
      }
    }
    g0 = g1;
  }
  isl.inbox.clear();
}

std::uint64_t ClusterSim::total_processed() const {
  std::uint64_t total = 0;
  for (const auto& isl : islands_) total += isl->events.processed();
  return total;
}

std::uint64_t ClusterSim::island_processed(int island) const {
  return islands_.at(static_cast<std::size_t>(island))->events.processed();
}

void ClusterSim::run_parallel_until(TimeNs deadline) {
  materialize();
  IslandExecutor* exec = executor_ != nullptr
                             ? executor_
                             : static_cast<IslandExecutor*>(&serial_executor_);
  const int k = static_cast<int>(islands_.size());
  std::vector<TimeNs> comp_min;
  std::vector<TimeNs> horizon(static_cast<std::size_t>(k));
  while (true) {
    // Conservative horizons: W_c = min next event in the component plus its
    // lookahead, minus one — no cross-island arrival can land at or before
    // it. Isolated components (lookahead = infinity) run straight to the
    // deadline; that is the common fast path for rack-local traffic.
    comp_min.assign(static_cast<std::size_t>(part_.num_components),
                    kTimeInfinity);
    TimeNs global_min = kTimeInfinity;
    for (int i = 0; i < k; ++i) {
      const auto next = islands_[static_cast<std::size_t>(i)]
                            ->events.peek_next_time();
      if (!next) continue;
      const auto c = static_cast<std::size_t>(part_.component[
          static_cast<std::size_t>(i)]);
      if (*next < comp_min[c]) comp_min[c] = *next;
      if (*next < global_min) global_min = *next;
    }
    if (global_min > deadline) break;
    for (int i = 0; i < k; ++i) {
      const auto c = static_cast<std::size_t>(
          part_.component[static_cast<std::size_t>(i)]);
      TimeNs w = sat_add(comp_min[c], part_.component_lookahead[c]);
      if (w != kTimeInfinity) w = w - TimeNs{1};
      horizon[static_cast<std::size_t>(i)] = std::min(w, deadline);
    }
    const std::uint64_t before = total_processed();
    exec->parallel_for(k, [this, &horizon](int i) {
      islands_[static_cast<std::size_t>(i)]->events.run_until(
          horizon[static_cast<std::size_t>(i)]);
    });
    // Barrier reached: distribute outboxes serially in island order (a
    // pure pointer shuffle), then drain every inbox in parallel — the
    // drain order inside each island is fixed by the record sort.
    std::size_t moved = 0;
    for (int i = 0; i < k; ++i) {
      auto& out = islands_[static_cast<std::size_t>(i)]->outbox;
      moved += out.size();
      for (auto& rec : out)
        islands_[static_cast<std::size_t>(rec.dst_island)]->inbox.push_back(
            std::move(rec));
      out.clear();
    }
    exec->parallel_for(k, [this](int i) { drain_inbox(i); });
    ++rounds_;
    if (total_processed() == before && moved == 0)
      throw std::logic_error(
          "ClusterSim: window protocol made no progress (zero-lookahead "
          "cycle should have been merged at partition time)");
  }
  // No island has events at or before the deadline: land every clock on it.
  for (int i = 0; i < k; ++i)
    islands_[static_cast<std::size_t>(i)]->events.run_until(deadline);
}

std::int64_t ClusterSim::cross_tie_collisions() const {
  std::int64_t total = 0;
  for (const auto& isl : islands_) total += isl->tie_collisions;
  return total;
}

// --------------------------------------------------- merged observability

std::vector<obs::MetricSample> ClusterSim::merged_metrics() const {
  if (islands_.empty())
    throw std::logic_error(
        "ClusterSim::merged_metrics(): islands not materialized yet (run, "
        "or access fabric() first)");
  auto merged = islands_.front()->metrics.snapshot();
  for (std::size_t i = 1; i < islands_.size(); ++i) {
    const auto shard = islands_[i]->metrics.snapshot();
    if (shard.size() != merged.size())
      throw std::logic_error("ClusterSim: island metric catalogs diverged");
    for (std::size_t m = 0; m < shard.size(); ++m) {
      obs::MetricSample& dst = merged[m];
      const obs::MetricSample& src = shard[m];
      if (src.name != dst.name || src.type != dst.type)
        throw std::logic_error("ClusterSim: island metric catalogs diverged");
      switch (dst.type) {
        case obs::MetricType::kCounter:
          dst.value += src.value;
          break;
        case obs::MetricType::kGauge:
          dst.value = std::max(dst.value, src.value);
          break;
        case obs::MetricType::kHistogram: {
          obs::HistogramState& dh = *dst.hist;
          const obs::HistogramState& sh = *src.hist;
          for (std::size_t b = 0; b < dh.counts.size(); ++b)
            dh.counts[b] += sh.counts[b];
          dh.count += sh.count;
          dh.sum += sh.sum;
          break;
        }
      }
    }
  }
  return merged;
}

namespace {

std::uint64_t fold_record(std::uint64_t h, TimeNs at, int src_vm, int dst_vm,
                          std::int64_t seq, std::int64_t ack_seq,
                          std::int64_t payload, std::uint32_t flags) {
  h = fnv1a_word(h, static_cast<std::uint64_t>(at.count()));
  h = fnv1a_word(h, static_cast<std::uint64_t>(src_vm));
  h = fnv1a_word(h, static_cast<std::uint64_t>(dst_vm));
  h = fnv1a_word(h, static_cast<std::uint64_t>(seq));
  h = fnv1a_word(h, static_cast<std::uint64_t>(ack_seq));
  h = fnv1a_word(h, static_cast<std::uint64_t>(payload));
  h = fnv1a_word(h, flags);
  return h;
}

}  // namespace

std::uint64_t ClusterSim::delivery_trace_checksum() const {
  // Canonical order: sort by the full record tuple. Flow ids are excluded
  // from the record on purpose — they encode the island and would differ
  // between sequential and parallel runs of the same scenario.
  std::vector<DeliveryRecord> all;
  for (const auto& isl : islands_)
    all.insert(all.end(), isl->trace.begin(), isl->trace.end());
  std::sort(all.begin(), all.end(),
            [](const DeliveryRecord& a, const DeliveryRecord& b) {
              return std::tie(a.at, a.src_vm, a.dst_vm, a.seq, a.ack_seq,
                              a.payload, a.flags) <
                     std::tie(b.at, b.src_vm, b.dst_vm, b.seq, b.ack_seq,
                              b.payload, b.flags);
            });
  std::uint64_t h = kFnvSeed;
  for (const auto& r : all)
    h = fold_record(h, r.at, r.src_vm, r.dst_vm, r.seq, r.ack_seq, r.payload,
                    r.flags);
  return h;
}

std::uint64_t ClusterSim::island_trace_checksum() const {
  // Unsorted: island by island, records in the order they were observed.
  // Any executor-dependent reordering anywhere in the engine changes this.
  std::uint64_t h = kFnvSeed;
  for (const auto& isl : islands_) {
    h = fnv1a_word(h, static_cast<std::uint64_t>(isl->id));
    for (const auto& r : isl->trace)
      h = fold_record(h, r.at, r.src_vm, r.dst_vm, r.seq, r.ack_seq, r.payload,
                      r.flags);
  }
  return h;
}

std::int64_t ClusterSim::delivery_trace_size() const {
  std::int64_t total = 0;
  for (const auto& isl : islands_)
    total += static_cast<std::int64_t>(isl->trace.size());
  return total;
}

}  // namespace silo::sim
