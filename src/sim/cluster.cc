#include "sim/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace silo::sim {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kSilo: return "Silo";
    case Scheme::kTcp: return "TCP";
    case Scheme::kDctcp: return "DCTCP";
    case Scheme::kHull: return "HULL";
    case Scheme::kOktopus: return "Okto";
    case Scheme::kOktopusPlus: return "Okto+";
    case Scheme::kQjump: return "QJUMP";
    case Scheme::kPfabric: return "pFabric";
  }
  return "?";
}

ClusterSim::ClusterSim(const ClusterConfig& cfg) : cfg_(cfg) {
  topo_ = std::make_unique<topology::Topology>(cfg.topo);
  placer_ = std::make_unique<placement::PlacementEngine>(*topo_,
                                                         placement_policy());
  PortConfig port_template;
  port_template.link_delay = cfg.link_delay;
  if (cfg.scheme == Scheme::kDctcp) port_template.ecn_threshold = cfg.ecn_threshold;
  if (cfg.scheme == Scheme::kHull) {
    port_template.phantom_queue = true;
    port_template.phantom_drain = cfg.phantom_drain;
    port_template.phantom_threshold = cfg.phantom_threshold;
  }
  if (cfg.scheme == Scheme::kPfabric) port_template.pfabric = true;
  fabric_ = std::make_unique<Fabric>(events_, *topo_, port_template);
  fabric_->set_host_deliver([this](PacketHandle h) { dispatch(h); });

  Host::Config host_cfg;
  host_cfg.link_rate = cfg.topo.server_link_rate;
  host_cfg.nic_mode = scheme_paced() ? pacer::NicMode::kPacedVoid
                                     : pacer::NicMode::kBatched;
  host_cfg.batch_window = cfg.batch_window;
  host_cfg.tor_link_delay = cfg.link_delay;
  host_cfg.loopback_delay = cfg.loopback_delay;
  hosts_.reserve(topo_->num_servers());
  for (int s = 0; s < topo_->num_servers(); ++s) {
    hosts_.push_back(std::make_unique<Host>(events_, *fabric_, s, host_cfg));
    hosts_.back()->set_local_deliver([this](PacketHandle h) { dispatch(h); });
  }

  // Register the metric catalog (see docs/OBSERVABILITY.md) and hand the
  // cached cells to every component. The cells are shared cluster-wide:
  // all ports increment one counter, all hosts another, and so on.
  PortMetricHooks pm;
  pm.tx_packets = metrics_.counter("sim.port.tx_packets", "packets", "port");
  pm.tx_bytes = metrics_.counter("sim.port.tx_bytes", "bytes", "port");
  pm.drops = metrics_.counter("sim.port.drops", "packets", "port");
  pm.fault_drops = metrics_.counter("sim.port.fault_drops", "packets", "port");
  pm.ecn_marks = metrics_.counter("sim.port.ecn_marks", "packets", "port");
  pm.peak_queue_bytes =
      metrics_.gauge("sim.port.peak_queue_bytes", "bytes", "port");
  pm.queue_bytes = metrics_.histogram(
      "sim.port.queue_bytes", "bytes", "port",
      {1024, 8192, 32768, 131072, 524288, 2097152});
  for (int p = 0; p < topo_->num_ports(); ++p)
    fabric_->port(topology::PortId{p}).set_metrics(pm);

  HostMetricHooks hm;
  hm.data_packets =
      metrics_.counter("sim.pacer.data_packets", "packets", "pacer");
  hm.void_packets =
      metrics_.counter("sim.pacer.void_packets", "packets", "pacer");
  hm.batches = metrics_.counter("sim.pacer.batches", "batches", "pacer");
  hm.throttled = metrics_.counter("sim.pacer.throttled", "packets", "pacer");
  hm.pacer_drops =
      metrics_.counter("sim.pacer.queue_drops", "packets", "pacer");
  hm.fault_drops = metrics_.counter("sim.host.fault_drops", "packets", "host");
  for (auto& h : hosts_) h->set_metrics(hm, pm);

  flow_metrics_.segments =
      metrics_.counter("sim.transport.segments", "packets", "transport");
  flow_metrics_.retransmits =
      metrics_.counter("sim.transport.retransmits", "packets", "transport");
  flow_metrics_.acks =
      metrics_.counter("sim.transport.acks", "packets", "transport");
  flow_metrics_.rtos =
      metrics_.counter("sim.transport.rtos", "events", "transport");
  flow_metrics_.aborts =
      metrics_.counter("sim.transport.aborts", "events", "transport");

  admissions_ = metrics_.counter("cluster.admissions", "tenants", "cluster");
  rejections_ = metrics_.counter("cluster.rejections", "tenants", "cluster");
  msgs_completed_ =
      metrics_.counter("cluster.messages_completed", "messages", "cluster");
  msgs_aborted_ =
      metrics_.counter("cluster.messages_aborted", "messages", "cluster");
  slo_violations_ =
      metrics_.counter("cluster.slo_violations", "messages", "cluster");
  diff_applied_ =
      metrics_.counter("controller.diff.applied", "deltas", "cluster");
  diff_apply_ns_ = metrics_.counter("controller.diff.apply_ns", "ns", "cluster");

  lease_granted_ = metrics_.counter("pacer.lease.granted", "leases", "cluster");
  lease_revoked_ = metrics_.counter("pacer.lease.revoked", "leases", "cluster");
  lease_expired_ = metrics_.counter("pacer.lease.expired", "leases", "cluster");
  lease_applied_ =
      metrics_.counter("pacer.lease.applied", "records", "cluster");
  lease_active_ = metrics_.gauge("pacer.lease.active", "leases", "cluster");
  lease_lent_bps_ = metrics_.gauge("pacer.lease.lent_bps", "bps", "cluster");
  if (cfg_.lending.enabled) {
    lender_ = std::make_unique<pacer::HeadroomLender>(cfg_.lending.policy);
    events_.schedule_after(cfg_.lending.epoch, EventKind::kClusterLeaseEpoch,
                           this, 0);
  }
}

void ClusterSim::apply_config_deltas(
    const std::vector<PacerConfigDelta>& deltas) {
  for (const auto& delta : deltas) {
    if (delta.server < 0 ||
        delta.server >= static_cast<int>(hosts_.size()))
      throw std::out_of_range("config delta server");
    const auto records = static_cast<std::int64_t>(
        delta.removes.size() + delta.upserts.size() +
        delta.lease_removes.size() + delta.lease_upserts.size());
    const TimeNs cost =
        cfg_.config_apply_delay + cfg_.config_record_apply_cost * records;
    diff_apply_ns_.inc(cost.count());
    Host* host = hosts_[static_cast<std::size_t>(delta.server)].get();
    obs::Counter applied = diff_applied_;
    events_.after(cost, [this, host, delta, applied]() mutable {
      host->apply_pacer_config(delta);
      applied.inc();
      // Lease-bearing deltas re-derive the borrower pacers' overlays from
      // the host's applied table (grants raise, revokes lower).
      if (!delta.lease_removes.empty() || !delta.lease_upserts.empty())
        refresh_lease_rates(delta.server);
    });
  }
}

obs::FlightRecorder& ClusterSim::enable_flight_recorder(std::size_t capacity) {
  recorder_ = std::make_unique<obs::FlightRecorder>(capacity);
  recorder_->set_flow_tenants(&flow_tenant_);
  events_.set_flight_recorder(recorder_.get());
  return *recorder_;
}

ClusterSim::~ClusterSim() = default;

placement::Policy ClusterSim::placement_policy() const {
  switch (cfg_.scheme) {
    case Scheme::kSilo:
      return placement::Policy::kSilo;
    case Scheme::kOktopus:
    case Scheme::kOktopusPlus:
      return placement::Policy::kOktopus;
    default:
      return placement::Policy::kLocality;
  }
}

TimeNs ClusterSim::qjump_epoch() const {
  // QJUMP's network epoch: long enough for every host to push one
  // maximum-size packet through the shared fabric plus propagation —
  // 2 * (n * mtu_time + path delay), the guaranteed-latency level.
  const TimeNs mtu_time =
      transmission_time(kMtu + kEthOverhead, cfg_.topo.server_link_rate);
  return 2 * (topo_->num_servers() * mtu_time + 6 * cfg_.link_delay);
}

SiloGuarantee ClusterSim::pacing_guarantee(const SiloGuarantee& g) const {
  SiloGuarantee out = g;
  if (cfg_.scheme == Scheme::kOktopus) {
    // Oktopus enforces the bandwidth reservation with no burst allowance.
    out.burst = kMtu;
    out.burst_rate = g.bandwidth;
  } else if (cfg_.scheme == Scheme::kQjump) {
    // One full packet per network epoch, regardless of the requested
    // guarantee: QJUMP's guaranteed-latency level is deliberately slow.
    out.bandwidth = RateBps{static_cast<double>(kMtu) * 8e9 /
                            static_cast<double>(qjump_epoch())};
    out.burst = kMtu;
    out.burst_rate = out.bandwidth;
  }
  return out;
}

std::optional<int> ClusterSim::add_tenant(const TenantRequest& request) {
  auto admitted = placer_->place(request);
  if (!admitted) {
    rejections_.inc();
    return std::nullopt;
  }
  return finish_admission(request, std::move(admitted->vm_to_server));
}

int ClusterSim::add_tenant_pinned(const TenantRequest& request,
                                  std::vector<int> vm_to_server) {
  if (static_cast<int>(vm_to_server.size()) != request.num_vms)
    throw std::invalid_argument("pinned placement size != num_vms");
  for (int s : vm_to_server)
    if (s < 0 || s >= topo_->num_servers())
      throw std::out_of_range("pinned placement server index");
  return finish_admission(request, std::move(vm_to_server));
}

int ClusterSim::finish_admission(const TenantRequest& request,
                                 std::vector<int> vm_to_server) {
  TenantRuntime rt;
  rt.request = request;
  rt.vm_server = std::move(vm_to_server);
  rt.vm_base = next_global_vm_;
  next_global_vm_ += request.num_vms;
  if (tenant_paced(request)) {
    rt.pacers = std::make_unique<pacer::TenantPacerGroup>(
        pacing_guarantee(request.guarantee), request.num_vms, kMtu,
        rt.vm_base);
    for (int v = 0; v < request.num_vms; ++v) {
      hosts_[rt.vm_server[v]]->attach_pacer(rt.vm_base + v, &rt.pacers->vm(v));
    }
  }
  tenants_.push_back(std::move(rt));
  admissions_.inc();
  const int tenant = static_cast<int>(tenants_.size()) - 1;
  if (tenants_[tenant].pacers) {
    // Kick off periodic EyeQ-style destination-rate coordination.
    events_.schedule_after(cfg_.rebalance_period, EventKind::kClusterRebalance,
                           this, static_cast<std::uint32_t>(tenant));
  }
  return tenant;
}

int ClusterSim::tenant_vm_count(int tenant) const {
  return tenants_.at(tenant).request.num_vms;
}

int ClusterSim::vm_server(int tenant, int local_vm) const {
  return tenants_.at(tenant).vm_server.at(local_vm);
}

void ClusterSim::rebalance_tenant(int tenant) {
  auto& rt = tenants_[tenant];
  std::vector<pacer::HoseDemand> demands;
  for (const auto& [key, flow_id] : rt.pair_to_flow) {
    const auto& f = *flows_[flow_id]->flow;
    if (f.bytes_written() > f.bytes_acked()) {
      // Demand up to the VM's current hose rate: the admitted B, or B plus
      // the lease overlay while one is active (equal when lending is off).
      const int src = f.src_vm() - rt.vm_base;
      demands.push_back({src, f.dst_vm() - rt.vm_base,
                         rt.pacers->vm(src).hose_rate()});
    }
  }
  if (!demands.empty()) rt.pacers->rebalance(events_.now(), demands);
  events_.schedule_after(cfg_.rebalance_period, EventKind::kClusterRebalance,
                         this, static_cast<std::uint32_t>(tenant));
}

std::vector<PacerLeaseRecord> ClusterSim::active_leases() const {
  std::vector<PacerLeaseRecord> out;
  out.reserve(issued_.size());
  for (const auto& [id, lease] : issued_) out.push_back(lease);
  return out;
}

std::vector<pacer::LenderVmStats> ClusterSim::collect_lender_stats() {
  std::vector<pacer::LenderVmStats> out;
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    auto& rt = tenants_[t];
    if (!rt.pacers) continue;
    std::vector<Bytes> backlog(static_cast<std::size_t>(rt.request.num_vms),
                               Bytes{0});
    Bytes total {0};
    for (const auto& [key, flow_id] : rt.pair_to_flow) {
      const auto& f = *flows_[flow_id]->flow;
      if (f.bytes_written() <= f.bytes_acked()) continue;
      const Bytes b{f.bytes_written() - f.bytes_acked()};
      backlog[static_cast<std::size_t>(f.src_vm() - rt.vm_base)] += b;
      total += b;
    }
    const bool guaranteed =
        rt.request.tenant_class != TenantClass::kBestEffort;
    for (int v = 0; v < rt.request.num_vms; ++v) {
      pacer::LenderVmStats s;
      s.tenant = static_cast<std::int64_t>(t);
      s.vm_index = v;
      s.server = rt.vm_server[static_cast<std::size_t>(v)];
      s.reserved = rt.pacers->vm(v).guarantee().bandwidth;
      s.guaranteed = guaranteed;
      s.sent = rt.pacers->vm(v).take_stamped_bytes();
      s.backlog = backlog[static_cast<std::size_t>(v)];
      s.tenant_backlog = total;
      out.push_back(s);
    }
  }
  return out;
}

void ClusterSim::refresh_lease_rates(int server) {
  // Sum of applied lease rates per borrower (tenant, vm) on this server.
  std::map<std::pair<std::int64_t, int>, RateBps> extra;
  for (const auto& lease : hosts_[static_cast<std::size_t>(server)]
                               ->pacer_config()
                               .leases()) {
    extra[{lease.borrower, lease.vm_index}] += lease.rate;
  }
  const TimeNs now = events_.now();
  const auto push = [&](std::pair<std::int64_t, int> key, RateBps rate) {
    if (key.first < 0 ||
        key.first >= static_cast<std::int64_t>(tenants_.size()))
      return;
    auto& rt = tenants_[static_cast<std::size_t>(key.first)];
    if (!rt.pacers || key.second < 0 || key.second >= rt.request.num_vms)
      return;
    rt.pacers->vm(key.second).set_lease_rate(now, rate);
    lease_applied_.inc();
  };
  auto& applied = applied_lease_rate_[server];
  for (auto it = applied.begin(); it != applied.end();) {
    if (extra.find(it->first) == extra.end()) {
      push(it->first, RateBps{0});  // lease vanished: restore admitted B
      it = applied.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [key, rate] : extra) {
    const auto it = applied.find(key);
    if (it != applied.end() && it->second == rate) continue;
    push(key, rate);
    applied[key] = rate;
  }
}

void ClusterSim::lease_epoch_tick() {
  ++lease_epoch_;
  // Expiry is clock-driven on every server's own table (never waits on
  // delta delivery): a lost revoke delays reclamation of borrowed rate
  // only until this tick — the owner's guarantee is never gated on it.
  for (auto& h : hosts_) {
    const auto died = h->advance_lease_epoch(lease_epoch_);
    if (!died.empty()) {
      lease_expired_.inc(static_cast<std::int64_t>(died.size()));
      refresh_lease_rates(h->server_id());
    }
  }
  for (auto it = issued_.begin(); it != issued_.end();) {
    it = it->second.expiry_epoch <= lease_epoch_ ? issued_.erase(it)
                                                 : std::next(it);
  }

  const auto decision = lender_->evaluate(
      cfg_.lending.epoch, collect_lender_stats(), active_leases());
  std::map<int, PacerConfigDelta> by_server;
  for (const auto id : decision.revokes) {
    const auto it = issued_.find(id);
    if (it == issued_.end()) continue;
    by_server[it->second.server].lease_removes.push_back(id);
    issued_.erase(it);
    lease_revoked_.inc();
  }
  for (auto lease : decision.upserts) {
    if (lease.id == 0) {  // new grant; renewals keep their id
      lease.id = next_lease_id_++;
      lease_granted_.inc();
    }
    lease.issued_epoch = lease_epoch_;
    lease.expiry_epoch = lease_epoch_ + lender_->config().duration_epochs;
    by_server[lease.server].lease_upserts.push_back(lease);
    issued_[lease.id] = lease;
  }
  std::vector<PacerConfigDelta> deltas;
  deltas.reserve(by_server.size());
  for (auto& [server, delta] : by_server) {
    delta.server = server;
    delta.lease_epoch = lease_epoch_;
    deltas.push_back(std::move(delta));
  }
  apply_config_deltas(deltas);

  lease_active_.set(static_cast<std::int64_t>(issued_.size()));
  double lent_bps = 0;
  for (const auto& [id, lease] : issued_) lent_bps += lease.rate.bps();
  lease_lent_bps_.set(static_cast<std::int64_t>(lent_bps));
  events_.schedule_after(cfg_.lending.epoch, EventKind::kClusterLeaseEpoch,
                         this, 0);
}

ClusterSim::FlowRuntime& ClusterSim::flow_for(int tenant, int src_local,
                                              int dst_local) {
  auto& rt = tenants_.at(tenant);
  const std::int64_t key =
      static_cast<std::int64_t>(src_local) * rt.request.num_vms + dst_local;
  auto it = rt.pair_to_flow.find(key);
  if (it != rt.pair_to_flow.end()) return *flows_[it->second];

  const int flow_id = static_cast<int>(flows_.size());
  const int src_vm = rt.vm_base + src_local;
  const int dst_vm = rt.vm_base + dst_local;
  const int src_server = rt.vm_server.at(src_local);
  const int dst_server = rt.vm_server.at(dst_local);
  TcpConfig tcp = cfg_.tcp;
  tcp.dctcp =
      cfg_.scheme == Scheme::kDctcp || cfg_.scheme == Scheme::kHull;
  if (cfg_.scheme == Scheme::kPfabric) {
    // pFabric's minimal transport: start near line rate and rely on the
    // fabric's priority scheduling + a tight timeout for loss.
    tcp.init_cwnd_pkts = 64;
    tcp.min_rto = std::min<TimeNs>(cfg_.tcp.min_rto, 2 * kMsec);
  }

  auto fr = std::make_unique<FlowRuntime>();
  fr->flow = std::make_unique<TcpFlow>(
      events_, flow_id, src_vm, dst_vm, src_server, dst_server, tcp,
      [this, src_server](PacketHandle h) { hosts_[src_server]->send(h); },
      [this, dst_server](PacketHandle h) { hosts_[dst_server]->send(h); });
  if (rt.request.tenant_class == TenantClass::kBestEffort ||
      (cfg_.scheme == Scheme::kQjump &&
       rt.request.tenant_class != TenantClass::kDelaySensitive))
    fr->flow->set_priority(Priority::kBestEffort);
  if (scheme_paced()) {
    fr->flow->set_can_send([this, src_server, src_vm](int dst, Bytes bytes) {
      return hosts_[src_server]->pacer_delay(events_.now(), src_vm, dst,
                                             bytes) <= cfg_.tsq_horizon;
    });
  }
  fr->flow->set_on_delivery([this, flow_id](std::int64_t delivered) {
    on_flow_delivery(flow_id, delivered);
  });
  fr->flow->set_on_abort([this, flow_id] { on_flow_abort(flow_id); });
  fr->flow->set_metrics(flow_metrics_);
  fr->paced = tenant_paced(rt.request);
  flows_.push_back(std::move(fr));
  flow_tenant_.push_back(tenant);
  rt.pair_to_flow.emplace(key, flow_id);
  return *flows_[flow_id];
}

const ClusterSim::FlowRuntime* ClusterSim::find_flow(int tenant, int src_local,
                                                     int dst_local) const {
  const auto& rt = tenants_.at(tenant);
  const std::int64_t key =
      static_cast<std::int64_t>(src_local) * rt.request.num_vms + dst_local;
  auto it = rt.pair_to_flow.find(key);
  return it == rt.pair_to_flow.end() ? nullptr : flows_[it->second].get();
}

void ClusterSim::send_message(int tenant, int src_local, int dst_local,
                              Bytes size, MsgCallback done) {
  if (size <= Bytes{0})
    throw std::invalid_argument("message size must be positive");
  auto& fr = flow_for(tenant, src_local, dst_local);
  if (fr.boundaries.empty()) {
    // Idle flow: start a fresh attribution epoch so the quiet period
    // before this message never counts toward its breakdown.
    fr.attr_mark = events_.now();
    fr.msg_free_at = events_.now();
    fr.accum = MessageBreakdown{};
  }
  FlowRuntime::Boundary b;
  b.end_seq = fr.flow->bytes_written() + size.count();
  b.size = size;
  b.start = events_.now();
  b.rto_index = fr.flow->rto_events().size();
  b.done = std::move(done);
  fr.boundaries.push_back(std::move(b));
  fr.flow->app_write(size);
}

void ClusterSim::on_flow_delivery(int flow_id, std::int64_t delivered) {
  auto& fr = *flows_[flow_id];
  auto& rt = tenants_[flow_tenant_[flow_id]];
  const TimeNs now = events_.now();

  // Latency-breakdown attribution. Every in-order advance attributes the
  // flow-progress interval (attr_mark, now] using the arriving packet's
  // stage timeline (captured in dispatch() before its handle was freed):
  //   - the gap before the packet was even emitted is a sender-side stall —
  //     retransmission recovery if a resend/RTO is involved, otherwise
  //     pacer wait on paced flows / stream queueing on unpaced ones;
  //   - the packet's own pacing/queueing/serialization segments cover the
  //     rest, clipped where they overlap time already attributed to earlier
  //     packets (pipelining). Clipping consumes the earliest stages first.
  // Gap + clipped stages == now - attr_mark exactly, so the per-message
  // accumulators always sum to the observed latency.
  const std::size_t rto_count = fr.flow->rto_events().size();
  if (now > fr.attr_mark && pending_arrival_ == now &&
      pending_stages_.tracked) {
    const obs::PacketStages& st = pending_stages_;
    const bool retrans = st.retransmit || rto_count > fr.rto_seen;
    const TimeNs gap = st.emitted - fr.attr_mark;
    if (gap > TimeNs{0}) {
      if (retrans)
        fr.accum.retransmit_ns += gap;
      else if (fr.paced)
        fr.accum.pacing_ns += gap;
      else
        fr.accum.queueing_ns += gap;
    }
    TimeNs clip = fr.attr_mark - st.emitted;
    TimeNs p = st.pacing_ns, q = st.queue_ns, s = st.serial_ns;
    if (clip > TimeNs{0}) {
      TimeNs c = std::min(clip, p);
      p -= c;
      clip -= c;
      c = std::min(clip, q);
      q -= c;
      clip -= c;
      s -= std::min(clip, s);
    }
    fr.accum.pacing_ns += p;
    fr.accum.queueing_ns += q;
    fr.accum.serialization_ns += s;
    fr.attr_mark = now;
  }
  fr.rto_seen = rto_count;

  while (!fr.boundaries.empty() && fr.boundaries.front().end_seq <= delivered) {
    auto b = std::move(fr.boundaries.front());
    fr.boundaries.pop_front();
    MessageResult res;
    res.latency = now - b.start;
    res.had_rto = fr.flow->rto_events().size() > b.rto_index;
    res.breakdown = fr.accum;
    // Wait behind earlier messages on the same flow counts as queueing
    // (the stream is a queue); attribution restarts for the next message.
    const TimeNs hol = fr.msg_free_at - b.start;
    if (hol > TimeNs{0}) res.breakdown.queueing_ns += hol;
    fr.accum = MessageBreakdown{};
    fr.msg_free_at = now;
    ++rt.counters.completed;
    msgs_completed_.inc();
    // SLO accounting against the §4.1 bound the tenant was admitted with.
    const SiloGuarantee& g = rt.request.guarantee;
    if (rt.request.tenant_class != TenantClass::kBestEffort &&
        g.wants_delay_guarantee() && g.bandwidth > RateBps{0} &&
        res.latency > max_message_latency(g, b.size)) {
      ++rt.counters.slo_violations;
      slo_violations_.inc();
    }
    if (b.done) b.done(res);
  }
}

void ClusterSim::on_flow_abort(int flow_id) {
  // The transport discarded its undelivered tail, so every outstanding
  // message on the flow is dead — including ones queued behind the stuck
  // head. Owners see `aborted` and may retry on a fresh epoch.
  auto& fr = *flows_[flow_id];
  auto& rt = tenants_[flow_tenant_[flow_id]];
  while (!fr.boundaries.empty()) {
    auto b = std::move(fr.boundaries.front());
    fr.boundaries.pop_front();
    ++rt.counters.aborted;
    msgs_aborted_.inc();
    if (b.done) {
      MessageResult res;
      res.latency = events_.now() - b.start;
      res.had_rto = true;
      res.aborted = true;
      // The whole wait was loss recovery that never completed.
      res.breakdown.retransmit_ns = res.latency;
      b.done(res);
    }
  }
  fr.accum = MessageBreakdown{};
  fr.attr_mark = events_.now();
  fr.msg_free_at = events_.now();
}

std::int64_t ClusterSim::pair_delivered_bytes(int tenant, int src_local,
                                              int dst_local) const {
  const auto* fr = find_flow(tenant, src_local, dst_local);
  return fr ? fr->flow->bytes_delivered() : 0;
}

int ClusterSim::tenant_rto_count(int tenant) const {
  int total = 0;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (flow_tenant_[i] == tenant)
      total += static_cast<int>(flows_[i]->flow->rto_events().size());
  }
  return total;
}

int ClusterSim::tenant_abort_count(int tenant) const {
  int total = 0;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (flow_tenant_[i] == tenant) total += flows_[i]->flow->abort_count();
  }
  return total;
}

std::int64_t ClusterSim::total_aborted_messages() const {
  std::int64_t total = 0;
  for (const auto& rt : tenants_) total += rt.counters.aborted;
  return total;
}

std::int64_t ClusterSim::total_completed_messages() const {
  std::int64_t total = 0;
  for (const auto& rt : tenants_) total += rt.counters.completed;
  return total;
}

std::int64_t ClusterSim::total_fault_drops() const {
  std::int64_t total = fabric_->total_fault_drops();
  for (const auto& h : hosts_) total += h->fault_drops();
  return total;
}

void ClusterSim::dispatch(PacketHandle h) {
  // Copy out and recycle the handle first: on_packet allocates the ACK from
  // the same pool, which may grow the arena under a live reference.
  const Packet p = events_.pool().get(h);
  if (!hosts_[p.dst_server]->up()) {
    // Delivered to a crashed server: the frame dies at the dead NIC.
    hosts_[p.dst_server]->drop_faulted(h);
    return;
  }
  // Snapshot the stage timeline before the handle is recycled — the
  // attribution in on_flow_delivery (called under on_packet) needs it.
  pending_stages_ = events_.timeline().stages(PacketPool::slot_of(h));
  pending_arrival_ = events_.now();
  events_.pool().free(h);
  if (p.flow_id < 0 || p.flow_id >= static_cast<int>(flows_.size())) return;
  record_flight(events_, p, obs::FlightEventType::kDelivered,
                obs::host_location(p.dst_server));
  if (tap_) tap_(p);
  flows_[p.flow_id]->flow->on_packet(p);
}

}  // namespace silo::sim
