#include "sim/network.h"

#include <algorithm>

namespace silo::sim {

Fabric::Fabric(EventQueue& events, const topology::Topology& topo,
               const PortConfig& port_template)
    : Fabric(topo, port_template,
             std::vector<int>(static_cast<std::size_t>(topo.num_ports()), 0),
             {&events}) {
  events_ = &events;
}

Fabric::Fabric(const topology::Topology& topo,
               const PortConfig& port_template, std::vector<int> port_island,
               const std::vector<EventQueue*>& island_queues)
    : topo_(topo), port_island_(std::move(port_island)) {
  ports_.resize(static_cast<std::size_t>(topo.num_ports()));
  for (int i = 0; i < topo.num_ports(); ++i) {
    PortConfig cfg = port_template;
    cfg.rate = topo.port(topology::PortId{i}).rate;
    cfg.buffer = topo.port(topology::PortId{i}).buffer;
    const int island = port_island_[static_cast<std::size_t>(i)];
    EventQueue* q = island_queues.at(static_cast<std::size_t>(island));
    ports_[static_cast<std::size_t>(i)] = std::make_unique<SwitchPortSim>(
        *q, cfg,
        [this, island, q](PacketHandle h) { advance(island, *q, h); });
    ports_[static_cast<std::size_t>(i)]->set_location(i);
  }
}

void Fabric::ingress_from_host(PacketHandle h) {
  ingress_from_host(0, *events_, h);
}

void Fabric::ingress_from_host(int island, EventQueue& q, PacketHandle h) {
  Packet& p = q.pool().get(h);
  if (p.is_void) {  // first-hop switch drops void frames
    q.pool().free(h);
    return;
  }
  p.hop = 1;  // path[0] (the NIC egress) was the host's wire
  advance(island, q, h);
}

void Fabric::advance(int island, EventQueue& q, PacketHandle h) {
  Packet& p = q.pool().get(h);
  const topology::PortSpan path = topo_.path_span(p.src_server, p.dst_server);
  if (p.hop >= path.size) {
    if (deliver_)
      deliver_(island, q, h);
    else
      q.pool().free(h);
    return;
  }
  // In island mode the next hop is always island-local: a transmission
  // whose next queue lives elsewhere was claimed by the egress handoff
  // hook and re-enters through the destination island's gateway instead.
  const auto port_id = path.port[static_cast<std::size_t>(p.hop)];
  ++p.hop;
  ports_[static_cast<std::size_t>(port_id.value)]->enqueue(h);
}

std::int64_t Fabric::total_drops() const {
  std::int64_t total = 0;
  for (const auto& port : ports_) total += port->stats().drops;
  return total;
}

std::int64_t Fabric::total_ecn_marks() const {
  std::int64_t total = 0;
  for (const auto& port : ports_) total += port->stats().ecn_marks;
  return total;
}

std::int64_t Fabric::total_fault_drops() const {
  std::int64_t total = 0;
  for (const auto& port : ports_) total += port->stats().fault_drops;
  return total;
}

Host::Host(EventQueue& events, Fabric& fabric, int server_id,
           const Config& cfg)
    : events_(events),
      fabric_(fabric),
      server_id_(server_id),
      cfg_(cfg),
      nic_(cfg.link_rate, cfg.nic_mode, cfg.batch_window) {
  PortConfig lo;
  lo.rate = cfg.loopback_rate;
  lo.buffer = cfg.loopback_buffer;
  lo.link_delay = cfg.loopback_delay;
  loopback_ =
      std::make_unique<SwitchPortSim>(events, lo, [this](PacketHandle h) {
        if (local_deliver_)
          local_deliver_(h);
        else
          events_.pool().free(h);
      });
  loopback_->set_location(obs::host_location(server_id));
}

void Host::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (up) {
    loopback_->set_link_up(true);
    return;
  }
  // Crash: everything parked on this server dies. Per-VM pacer queues,
  // the NIC batch queue (slot ids are pool handles) and the loopback
  // vswitch all hold live handles that must go back to the pool.
  for (auto& [vm, v] : tx_) {
    for (auto& [dst, dq] : v.dests) {
      for (const PacketHandle h : dq.q) drop_faulted(h);
      dq.q.clear();
      dq.bytes = Bytes{0};
    }
  }
  for (const std::uint64_t id : nic_.drain())
    drop_faulted(static_cast<PacketHandle>(id));
  loopback_->set_link_up(false);
}

void Host::drop_faulted(PacketHandle h) {
  ++fault_drops_;
  metrics_.fault_drops.inc();
  record_flight(events_, events_.pool().get(h), obs::FlightEventType::kDropped,
                obs::host_location(server_id_), /*fault=*/true);
  events_.pool().free(h);
}

void Host::send(PacketHandle h) {
  if (!up_) {
    drop_faulted(h);
    return;
  }
  const Packet& p = events_.pool().get(h);
  if (p.dst_server == server_id_) {
    // VM-to-VM on the same server: the virtual switch forwards internally
    // at memory speed — fast, but a finite, contended resource.
    loopback_->enqueue(h);
    return;
  }
  if (pacers_.count(p.src_vm) > 0) {
    const int vm = p.src_vm;
    auto& dq = tx_[vm].dests[p.dst_vm];
    if (dq.bytes + p.wire_bytes > cfg_.pacer_queue_cap) {
      ++pacer_drops_;  // finite driver queue
      metrics_.pacer_drops.inc();
      record_flight(events_, p, obs::FlightEventType::kDropped,
                    obs::host_location(server_id_));
      events_.pool().free(h);
      return;
    }
    dq.bytes += p.wire_bytes;
    dq.q.push_back(h);
    schedule_release(vm);
    return;
  }
  hand_to_nic(h, events_.now());
}

void Host::hand_to_nic(PacketHandle h, TimeNs release) {
  if (release > events_.now()) metrics_.throttled.inc();
  if (obs::FlightRecorder* r = events_.flight_recorder()) {
    const Packet& p = events_.pool().get(h);
    obs::FlightEvent e;
    e.at = release;  // when the pacer allows the first bit on the wire
    e.packet_id = p.id;
    e.seq = p.seq;
    e.flow_id = p.flow_id;
    e.location = obs::host_location(server_id_);
    e.bytes = static_cast<std::int32_t>(p.wire_bytes);
    e.type = obs::FlightEventType::kPaced;
    e.is_ack = p.is_ack;
    r->record(e);
  }
  // The NIC slot id *is* the packet handle — no side map needed.
  nic_.enqueue(release, events_.pool().get(h).wire_bytes, h);
  kick();
}

void Host::schedule_release(int vm) {
  auto& v = tx_[vm];
  auto* pacer = pacers_.at(vm);
  // Earliest conformance over the head packets of all destination queues.
  TimeNs best {-1};
  for (auto& [dst, dq] : v.dests) {
    if (dq.q.empty()) continue;
    const TimeNs t = pacer->peek(events_.now(), dst,
                                 events_.pool().get(dq.q.front()).wire_bytes);
    if (best < TimeNs{0} || t < best) best = t;
  }
  if (best < TimeNs{0}) return;  // all queues empty
  // Eligible one batch window early (NIC lookahead for void filling).
  const TimeNs when =
      std::max(events_.now(), best - nic_.batch_window());
  if (v.release_scheduled && v.scheduled_at <= when) return;
  v.release_scheduled = true;
  v.scheduled_at = when;
  const std::uint64_t gen = ++v.generation;
  events_.schedule(when, EventKind::kHostRelease, this,
                   static_cast<std::uint32_t>(vm), gen);
}

void Host::handle_release(int vm, std::uint64_t generation) {
  auto& v = tx_[vm];
  if (generation != v.generation || !v.release_scheduled) return;
  v.release_scheduled = false;
  auto* pacer = pacers_.at(vm);
  // Re-derive the winner at release time (arrivals may have changed it).
  // Backlogged destinations tie on the shared-bucket conformance time, so
  // ties rotate round-robin after the last served destination — a strict
  // "<" would let the lowest id starve every other queue.
  TimeNs best {-1};
  int best_dst = -1;
  for (auto& [dst, dq] : v.dests) {
    if (dq.q.empty()) continue;
    const TimeNs t = pacer->peek(events_.now(), dst,
                                 events_.pool().get(dq.q.front()).wire_bytes);
    const bool wins =
        best < TimeNs{0} || t < best ||
        (t == best && best_dst <= v.last_served && dst > v.last_served);
    if (wins) {
      best = t;
      best_dst = dst;
    }
  }
  if (best_dst < 0) return;
  v.last_served = best_dst;
  // Release packets whose conformance falls within one NIC batch window —
  // the lookahead Paced IO Batching needs to build void-filled batches.
  // The shared-bucket cross-charging this allows is bounded by one window
  // of bytes, which is negligible skew.
  if (best > events_.now() + nic_.batch_window()) {
    schedule_release(vm);
    return;
  }
  auto& dq = v.dests[best_dst];
  const PacketHandle h = dq.q.front();
  dq.q.pop_front();
  dq.bytes -= events_.pool().get(h).wire_bytes;
  const TimeNs release =
      pacer->stamp(events_.now(), best_dst, events_.pool().get(h).wire_bytes);
  hand_to_nic(h, release);
  schedule_release(vm);
}

TimeNs Host::pacer_delay(TimeNs now, int src_vm, int dst_vm, Bytes bytes) {
  auto it = pacers_.find(src_vm);
  if (it == pacers_.end()) return TimeNs{0};
  const TimeNs head_wait = it->second->peek(now, dst_vm, bytes) - now;
  auto vt = tx_.find(src_vm);
  if (vt == tx_.end()) return head_wait;
  auto dt = vt->second.dests.find(dst_vm);
  if (dt == vt->second.dests.end()) return head_wait;
  // Queued bytes drain at (at least) the VM's hose rate.
  const double drain =
      static_cast<double>(dt->second.bytes + bytes) * 8e9 /
      it->second->guarantee().bandwidth.bps();
  return head_wait + static_cast<TimeNs>(drain);
}

void Host::kick() {
  if (transmitting_) return;  // DMA completion will re-kick
  const TimeNs start = nic_.next_start(events_.now());
  if (start < TimeNs{0}) return;  // queue empty
  if (build_scheduled_ && scheduled_start_ <= start) return;
  build_scheduled_ = true;
  scheduled_start_ = start;
  const std::uint64_t gen = ++build_generation_;
  events_.schedule(start, EventKind::kHostBuild, this, 0, gen);
}

void Host::handle_build(std::uint64_t generation) {
  if (generation != build_generation_ || !build_scheduled_) return;
  build_scheduled_ = false;
  run_batch();
}

void Host::run_batch() {
  const auto& slots = nic_.build_batch(events_.now());
  if (slots.empty()) {
    transmitting_ = false;
    kick();
    return;
  }
  transmitting_ = true;
  metrics_.batches.inc();
  for (const auto& slot : slots) {
    if (slot.is_void) {  // occupies the wire; ToR will not see it
      metrics_.void_packets.inc();
      continue;
    }
    metrics_.data_packets.inc();
    const auto h = static_cast<PacketHandle>(slot.id);
    // Emit -> wire start: pacing delay for paced VMs (token wait + batch
    // alignment), sender-NIC queueing for unpaced ones. Wire start -> end
    // is the NIC's serialization time.
    const bool paced = pacers_.count(events_.pool().get(h).src_vm) > 0;
    events_.timeline().advance(
        PacketPool::slot_of(h), slot.start,
        paced ? obs::Stage::kPacing : obs::Stage::kQueueing);
    events_.timeline().advance(PacketPool::slot_of(h), slot.end,
                               obs::Stage::kSerialization);
    events_.schedule(slot.end + cfg_.tor_link_delay, EventKind::kHostIngress,
                     this, h);
  }
  const TimeNs batch_end = slots.back().end;
  events_.schedule(batch_end, EventKind::kHostBatchEnd, this);
}

void Host::handle_batch_end() {
  transmitting_ = false;
  kick();
}

void Host::handle_ingress(PacketHandle h) {
  // Server -> ToR propagation is wire time.
  events_.timeline().advance(PacketPool::slot_of(h), events_.now(),
                             obs::Stage::kSerialization);
  if (!up_) {
    // The server died after this frame was scheduled onto the wire.
    drop_faulted(h);
    return;
  }
  // The first fabric hop (this server's rack) is always island-local.
  fabric_.ingress_from_host(cfg_.island, events_, h);
}

}  // namespace silo::sim
