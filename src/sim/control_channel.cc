#include "sim/control_channel.h"

#include <algorithm>

#include "core/controller.h"

namespace silo::sim {

TimeNs channel_retry_delay(const ChannelRetryPolicy& p, int attempt, Rng& rng) {
  TimeNs backoff = p.base_backoff;
  for (int i = 1; i < attempt && backoff < p.max_backoff; ++i)
    backoff = backoff * 2;
  backoff = std::min(backoff, p.max_backoff);
  // Full +/- jitter decorrelates retry storms after a shared fault.
  const double factor = 1.0 + p.jitter * (2.0 * rng.uniform() - 1.0);
  return std::max(TimeNs{1},
                  TimeNs{static_cast<std::int64_t>(
                      static_cast<double>(backoff) * factor)});
}

// ---------------------------------------------------------- PacerAgentFleet

void PacerAgentFleet::apply_in_order(int server, Agent& agent,
                                     const PacerConfigDelta& delta) {
  agent.table.apply(delta);
  ++agent.next_seq;
  if (hook_) hook_(server, delta);
}

void PacerAgentFleet::drain(int server, Agent& agent, DeliveryResult& result) {
  for (auto it = agent.pending.begin();
       it != agent.pending.end() && it->first == agent.next_seq;
       it = agent.pending.erase(it)) {
    apply_in_order(server, agent, it->second);
    ++result.applied;
  }
}

PacerAgentFleet::DeliveryResult PacerAgentFleet::deliver_delta(
    int server, std::uint64_t epoch, std::int64_t seq,
    const PacerConfigDelta& delta) {
  DeliveryResult result;
  Agent& agent = agents_[server];
  if (epoch < agent.epoch) {
    result.stale_epoch = 1;
    result.epoch = agent.epoch;
    result.acked_through = agent.next_seq - 1;
    return result;
  }
  if (epoch > agent.epoch) {
    // A new controller incarnation restarts the sequence space; buffered
    // deltas of the dead epoch can never fill their gaps.
    agent.epoch = epoch;
    agent.next_seq = 1;
    agent.pending.clear();
  }
  if (seq < agent.next_seq) {
    result.duplicates = 1;
  } else if (seq == agent.next_seq) {
    apply_in_order(server, agent, delta);
    ++result.applied;
    drain(server, agent, result);
  } else {
    if (agent.pending.emplace(seq, delta).second)
      result.gaps = 1;
    else
      result.duplicates = 1;
  }
  result.epoch = agent.epoch;
  result.acked_through = agent.next_seq - 1;
  return result;
}

PacerAgentFleet::DeliveryResult PacerAgentFleet::deliver_snapshot(
    int server, std::uint64_t epoch, std::int64_t through_seq,
    const std::vector<PacerConfigRecord>& records) {
  DeliveryResult result;
  Agent& agent = agents_[server];
  if (epoch < agent.epoch) {
    result.stale_epoch = 1;
    result.epoch = agent.epoch;
    result.acked_through = agent.next_seq - 1;
    return result;
  }
  if (epoch == agent.epoch && through_seq + 1 < agent.next_seq) {
    // A delayed retransmission of a snapshot the agent has already moved
    // past; resetting would roll back later in-order deltas.
    result.duplicates = 1;
    result.epoch = agent.epoch;
    result.acked_through = agent.next_seq - 1;
    return result;
  }
  // Reset-to-snapshot as one delta (removes of everything present, then
  // the snapshot's upserts), so the hook sees the same protocol shape.
  PacerConfigDelta reset;
  reset.server = server;
  for (const auto& rec : agent.table.records())
    reset.removes.emplace_back(rec.tenant, rec.vm_index);
  reset.upserts = records;
  agent.table.apply(reset);
  if (hook_) hook_(server, reset);
  if (epoch > agent.epoch) {
    agent.epoch = epoch;
    agent.pending.clear();
  } else {
    agent.pending.erase(agent.pending.begin(),
                        agent.pending.upper_bound(through_seq));
  }
  agent.next_seq = through_seq + 1;
  drain(server, agent, result);
  result.epoch = agent.epoch;
  result.acked_through = agent.next_seq - 1;
  return result;
}

std::uint64_t PacerAgentFleet::checksum(int server) const {
  const auto it = agents_.find(server);
  if (it == agents_.end()) return pacer_config_checksum({});
  return it->second.table.checksum();
}

const PacerConfigTable* PacerAgentFleet::table(int server) const {
  const auto it = agents_.find(server);
  return it == agents_.end() ? nullptr : &it->second.table;
}

std::vector<int> PacerAgentFleet::servers() const {
  std::vector<int> out;
  out.reserve(agents_.size());
  for (const auto& [server, agent] : agents_) out.push_back(server);
  return out;
}

int PacerAgentFleet::buffered(int server) const {
  const auto it = agents_.find(server);
  return it == agents_.end() ? 0 : static_cast<int>(it->second.pending.size());
}

// ----------------------------------------------------------- ControlChannel

ControlChannel::ControlChannel(EventQueue& events, PacerAgentFleet& fleet,
                               const ChannelConfig& cfg)
    : events_(events), fleet_(fleet), cfg_(cfg), rng_(cfg.seed) {
  m_shipped_ = metrics_.counter("controller.channel.shipped", "deltas",
                                "channel");
  m_delivered_ = metrics_.counter("controller.channel.delivered", "messages",
                                  "channel");
  m_applied_ = metrics_.counter("controller.channel.applied", "deltas",
                                "channel");
  m_dropped_ = metrics_.counter("controller.channel.dropped", "messages",
                                "channel");
  m_retries_ = metrics_.counter("controller.channel.retries", "messages",
                                "channel");
  m_abandoned_ = metrics_.counter("controller.channel.abandoned", "messages",
                                  "channel");
  m_duplicates_ = metrics_.counter("controller.channel.duplicates", "messages",
                                   "channel");
  m_gaps_ = metrics_.counter("controller.channel.gaps", "messages", "channel");
  m_stale_epoch_ = metrics_.counter("controller.channel.stale_epoch",
                                    "messages", "channel");
  m_stale_removes_ = metrics_.counter("controller.channel.stale_removes",
                                      "records", "channel");
  m_lease_expired_ = metrics_.counter("controller.channel.lease_expired",
                                      "records", "channel");
  m_desyncs_repaired_ = metrics_.counter("controller.channel.desyncs_repaired",
                                         "repairs", "channel");
  m_ae_rounds_ = metrics_.counter("controller.channel.anti_entropy_rounds",
                                  "rounds", "channel");
  m_convergence_ns_ = metrics_.gauge("controller.channel.convergence_ns", "ns",
                                     "channel");
  if (cfg_.anti_entropy_period > TimeNs{0}) arm_anti_entropy();
}

TimeNs ControlChannel::hop_delay() {
  TimeNs d = cfg_.delivery_delay;
  if (cfg_.delivery_jitter > TimeNs{0})
    d = d + TimeNs{rng_.uniform_int(0, cfg_.delivery_jitter.count())};
  return d;
}

bool ControlChannel::dropped() {
  if (cfg_.drop_rate <= 0) return false;
  if (rng_.uniform() >= cfg_.drop_rate) return false;
  m_dropped_.inc();
  return true;
}

void ControlChannel::note_disturbance() {
  if (!was_converged_) return;
  was_converged_ = false;
  disturbance_at_ = events_.now();
}

void ControlChannel::check_converged() {
  if (was_converged_ || !converged()) return;
  was_converged_ = true;
  last_convergence_ = events_.now() - disturbance_at_;
  m_convergence_ns_.set(last_convergence_.count());
}

void ControlChannel::ship(const std::vector<PacerConfigDelta>& deltas) {
  for (const auto& delta : deltas) {
    const int server = delta.server;
    note_disturbance();
    // The shadow is the controller-local authoritative copy — applied
    // reliably at ship time, so stale removes counted here are genuine
    // protocol smells, not reordering artifacts. Revokes that raced a
    // clean epoch expiry are benign and counted apart.
    const PacerApplyResult shadow_applied = shadow_[server].apply(delta);
    m_stale_removes_.inc(shadow_applied.stale_removes);
    m_lease_expired_.inc(shadow_applied.lease_expired);
    const std::int64_t seq = ++last_seq_[server];
    Outstanding& entry = outstanding_[server][seq];
    entry.delta = delta;
    entry.attempt = 1;
    entry.gen = next_gen_++;
    ++total_outstanding_;
    m_shipped_.inc();
    transmit(server, seq);
  }
}

void ControlChannel::transmit(int server, std::int64_t seq) {
  const auto sit = outstanding_.find(server);
  if (sit == outstanding_.end()) return;
  const auto it = sit->second.find(seq);
  if (it == sit->second.end()) return;
  const Outstanding& entry = it->second;
  if (!dropped()) {
    const TimeNs delay = hop_delay();
    if (entry.is_snapshot) {
      events_.after(delay, [this, server, epoch = epoch_,
                            through = entry.through_seq,
                            records = entry.snapshot] {
        on_snapshot_delivered(server, epoch, through, records);
      });
    } else {
      events_.after(delay, [this, server, epoch = epoch_, seq,
                            delta = entry.delta] {
        on_delta_delivered(server, epoch, seq, delta);
      });
    }
  }
  events_.after(cfg_.ack_timeout, [this, server, seq, gen = entry.gen] {
    on_ack_timeout(server, seq, gen);
  });
}

void ControlChannel::count_delivery(const PacerAgentFleet::DeliveryResult& r) {
  m_delivered_.inc();
  m_applied_.inc(r.applied);
  m_duplicates_.inc(r.duplicates);
  m_gaps_.inc(r.gaps);
  m_stale_epoch_.inc(r.stale_epoch);
}

void ControlChannel::send_ack(int server,
                              const PacerAgentFleet::DeliveryResult& r) {
  if (r.stale_epoch) return;  // the dead incarnation gets no answer
  if (dropped()) return;
  events_.after(hop_delay(), [this, server, epoch = r.epoch,
                              acked = r.acked_through] {
    on_ack(server, epoch, acked);
  });
}

void ControlChannel::on_delta_delivered(int server, std::uint64_t epoch,
                                        std::int64_t seq,
                                        const PacerConfigDelta& delta) {
  const auto r = fleet_.deliver_delta(server, epoch, seq, delta);
  count_delivery(r);
  send_ack(server, r);
}

void ControlChannel::on_snapshot_delivered(
    int server, std::uint64_t epoch, std::int64_t through_seq,
    const std::vector<PacerConfigRecord>& records) {
  const auto r = fleet_.deliver_snapshot(server, epoch, through_seq, records);
  count_delivery(r);
  send_ack(server, r);
}

void ControlChannel::on_ack(int server, std::uint64_t epoch,
                            std::int64_t acked_through) {
  if (epoch != epoch_) return;  // ack for a previous incarnation
  const auto sit = outstanding_.find(server);
  if (sit == outstanding_.end()) return;
  auto& per_server = sit->second;
  // Cumulative ack: everything at or below the agent's contiguous cursor
  // has landed (snapshot entries are keyed by their through_seq).
  auto it = per_server.begin();
  while (it != per_server.end() && it->first <= acked_through) {
    it = per_server.erase(it);
    --total_outstanding_;
  }
  if (per_server.empty()) outstanding_.erase(sit);
  check_converged();
}

void ControlChannel::on_ack_timeout(int server, std::int64_t seq,
                                    std::uint64_t gen) {
  const auto sit = outstanding_.find(server);
  if (sit == outstanding_.end()) return;
  const auto it = sit->second.find(seq);
  if (it == sit->second.end() || it->second.gen != gen) return;
  Outstanding& entry = it->second;
  if (entry.attempt >= cfg_.retry.max_attempts) {
    // Give up; the anti-entropy sweep is the backstop for this server.
    m_abandoned_.inc();
    sit->second.erase(it);
    --total_outstanding_;
    if (sit->second.empty()) outstanding_.erase(sit);
    return;
  }
  ++entry.attempt;
  m_retries_.inc();
  const TimeNs backoff = channel_retry_delay(cfg_.retry, entry.attempt, rng_);
  events_.after(backoff, [this, server, seq, gen] {
    const auto s2 = outstanding_.find(server);
    if (s2 == outstanding_.end()) return;
    const auto e2 = s2->second.find(seq);
    if (e2 == s2->second.end() || e2->second.gen != gen) return;
    transmit(server, seq);
  });
}

void ControlChannel::ship_repair(int server) {
  // The snapshot supersedes anything still queued for this server.
  const auto sit = outstanding_.find(server);
  if (sit != outstanding_.end()) {
    total_outstanding_ -= static_cast<std::int64_t>(sit->second.size());
    outstanding_.erase(sit);
  }
  note_disturbance();
  const std::int64_t through = last_seq_[server];
  Outstanding& entry = outstanding_[server][through];
  entry.is_snapshot = true;
  entry.snapshot = shadow_[server].records();
  entry.through_seq = through;
  entry.attempt = 1;
  entry.gen = next_gen_++;
  ++total_outstanding_;
  m_desyncs_repaired_.inc();
  transmit(server, through);
}

int ControlChannel::anti_entropy_round() {
  m_ae_rounds_.inc();
  int repairs = 0;
  // Ascending server id: the sweep order (and thus every rng draw the
  // repairs make) is deterministic.
  for (const int server : union_servers()) {
    const auto sit = outstanding_.find(server);
    if (sit != outstanding_.end() && !sit->second.empty())
      continue;  // still being retried; don't race the in-flight deltas
    if (shadow_checksum(server) == fleet_.checksum(server) &&
        fleet_.buffered(server) == 0)
      continue;
    ship_repair(server);
    ++repairs;
  }
  check_converged();
  return repairs;
}

void ControlChannel::arm_anti_entropy() {
  events_.after(cfg_.anti_entropy_period, [this, gen = ae_generation_] {
    if (gen != ae_generation_) return;  // a restart superseded this timer
    anti_entropy_round();
    arm_anti_entropy();
  });
}

void ControlChannel::restart(const SiloController& ctl) {
  ++epoch_;
  ++ae_generation_;
  outstanding_.clear();
  total_outstanding_ = 0;
  last_seq_.clear();
  shadow_.clear();
  // Shadow = the recovered controller's shipped state, over every server
  // either side knows about (an agent may hold records for a server the
  // new controller no longer paces — it needs an explicit empty shadow so
  // anti-entropy wipes it).
  std::vector<int> servers = ctl.paced_servers();
  const std::vector<int> agents = fleet_.servers();
  std::vector<int> all;
  std::set_union(servers.begin(), servers.end(), agents.begin(), agents.end(),
                 std::back_inserter(all));
  for (const int server : all) {
    PacerConfigDelta full;
    full.server = server;
    full.upserts = ctl.server_config(server);
    shadow_[server].apply(full);
  }
  was_converged_ = true;  // force a fresh disturbance window
  note_disturbance();
  check_converged();  // an empty fleet may already be converged
  if (cfg_.anti_entropy_period > TimeNs{0}) arm_anti_entropy();
}

bool ControlChannel::converged() const {
  if (total_outstanding_ != 0) return false;
  for (const int server : union_servers()) {
    if (shadow_checksum(server) != fleet_.checksum(server)) return false;
    if (fleet_.buffered(server) != 0) return false;
  }
  return true;
}

std::uint64_t ControlChannel::shadow_checksum(int server) const {
  const auto it = shadow_.find(server);
  if (it == shadow_.end()) return pacer_config_checksum({});
  return it->second.checksum();
}

std::vector<int> ControlChannel::shadow_servers() const {
  std::vector<int> out;
  out.reserve(shadow_.size());
  for (const auto& [server, table] : shadow_) out.push_back(server);
  return out;
}

std::vector<int> ControlChannel::union_servers() const {
  const std::vector<int> a = shadow_servers();
  const std::vector<int> b = fleet_.servers();
  std::vector<int> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace silo::sim
