// Lossy control channel between the SiloController and per-server pacer
// agents, with anti-entropy reconciliation.
//
// The controller's PacerConfigDeltas are shipped over a simulated channel
// that can drop, reorder, and delay messages (FaultInjector-drivable).
// Every delta carries an (epoch, per-server sequence number): agents apply
// in order, buffer ahead-of-sequence deltas (gap detection), and discard
// duplicates — so any permutation-with-duplicates of a delta stream
// converges to the in-order result. Undelivered deltas are retried with
// jittered exponential backoff (the driver RetryPolicy shape); a periodic
// anti-entropy sweep walks servers in ascending id order comparing the
// controller-side shadow PacerConfigTable checksum against each agent's
// and ships a full-snapshot repair to any desynced server.
//
// Crash semantics: the PacerAgentFleet is server-side state and survives
// controller crashes; the ControlChannel is controller-side and loses its
// send state with the controller. restart() models the recovered
// controller coming back — it bumps the epoch (agents drop stale-epoch
// messages from the dead incarnation), rebuilds the shadow tables from the
// recovered controller, and lets anti-entropy drive every agent back to
// the shipped state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "obs/metrics.h"
#include "pacer/pacer_config.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/units.h"

namespace silo {
class SiloController;
}

namespace silo::sim {

/// Mirror of workload::RetryPolicy (that type lives above the sim layer in
/// the link graph, so the shape is shared rather than the type).
struct ChannelRetryPolicy {
  int max_attempts = 6;
  TimeNs base_backoff = 400 * kUsec;
  TimeNs max_backoff = 10 * kMsec;
  double jitter = 0.5;  ///< full +/- fraction applied to each backoff
};

/// Doubling backoff with full +/- jitter — same formula as the workload
/// driver's retry_delay. `attempt` counts from 1.
TimeNs channel_retry_delay(const ChannelRetryPolicy& p, int attempt, Rng& rng);

struct ChannelConfig {
  TimeNs delivery_delay = 50 * kUsec;   ///< one-way base latency per hop
  TimeNs delivery_jitter = 20 * kUsec;  ///< uniform extra per hop
  TimeNs ack_timeout = 500 * kUsec;     ///< unacked after this -> retry
  ChannelRetryPolicy retry;
  /// Period of the automatic anti-entropy sweep; 0 means rounds are only
  /// run manually via anti_entropy_round().
  TimeNs anti_entropy_period {};
  double drop_rate = 0;  ///< per one-way hop loss probability
  std::uint64_t seed = 1;
};

/// Server-side pacer agents: per-server (epoch, next_seq, gap buffer,
/// applied PacerConfigTable). Survives controller crashes. The optional
/// apply hook observes every in-order applied delta (and snapshot-repair
/// reset deltas), e.g. to mirror state into ClusterSim hosts.
class PacerAgentFleet {
 public:
  using ApplyHook = std::function<void(int server, const PacerConfigDelta&)>;

  struct DeliveryResult {
    std::uint64_t epoch = 0;          ///< agent epoch after processing
    std::int64_t acked_through = 0;   ///< highest contiguous applied seq
    int applied = 0;                  ///< deltas applied in order (incl. drained)
    int duplicates = 0;               ///< already-seen seqs discarded
    int gaps = 0;                     ///< ahead-of-seq deltas buffered
    int stale_epoch = 0;              ///< messages from a dead epoch dropped
  };

  void set_apply_hook(ApplyHook hook) { hook_ = std::move(hook); }

  /// Idempotent sequenced apply: duplicates drop, gaps buffer, in-order
  /// deltas apply and drain the buffer. A higher epoch resets the sequence
  /// space (the buffer dies with the old epoch; the table survives and is
  /// reconciled by anti-entropy).
  DeliveryResult deliver_delta(int server, std::uint64_t epoch,
                               std::int64_t seq, const PacerConfigDelta& delta);

  /// Full-snapshot repair: resets the agent's table to `records`, adopts
  /// `epoch`, and fast-forwards the sequence cursor to `through_seq`.
  DeliveryResult deliver_snapshot(int server, std::uint64_t epoch,
                                  std::int64_t through_seq,
                                  const std::vector<PacerConfigRecord>& records);

  /// Applied-state checksum (empty-table checksum when no agent exists).
  std::uint64_t checksum(int server) const;
  const PacerConfigTable* table(int server) const;
  std::vector<int> servers() const;  ///< agents ever touched, ascending
  int buffered(int server) const;    ///< gap-buffered deltas held

 private:
  struct Agent {
    std::uint64_t epoch = 0;
    std::int64_t next_seq = 1;
    std::map<std::int64_t, PacerConfigDelta> pending;  ///< seq -> buffered
    PacerConfigTable table;
  };

  void apply_in_order(int server, Agent& agent, const PacerConfigDelta& delta);
  void drain(int server, Agent& agent, DeliveryResult& result);

  std::map<int, Agent> agents_;
  ApplyHook hook_;
};

/// Controller-side channel: sequencing, retries, shadow tables, and the
/// anti-entropy sweep. Owns its own MetricsRegistry
/// (`controller.channel.*`) and Rng; all timing goes through the shared
/// EventQueue, so chaos runs stay bit-reproducible.
class ControlChannel {
 public:
  ControlChannel(EventQueue& events, PacerAgentFleet& fleet,
                 const ChannelConfig& cfg);

  /// Ship drained controller deltas: each is applied to the server's
  /// shadow table (reliable, controller-local) and transmitted with the
  /// next per-server sequence number.
  void ship(const std::vector<PacerConfigDelta>& deltas);

  /// Model a controller crash + recovery on the channel side: bump the
  /// epoch, drop all send state (outstanding transmissions and timers of
  /// the dead incarnation die), and rebuild the shadow tables from the
  /// recovered controller's server_config over the union of its paced
  /// servers and all known agents.
  void restart(const SiloController& ctl);

  /// One sweep over servers in ascending id order: any quiesced server
  /// (nothing outstanding) whose agent checksum disagrees with the shadow
  /// gets a full-snapshot repair. Returns the number of repairs shipped.
  int anti_entropy_round();

  /// All agents match their shadow tables and nothing is in flight.
  bool converged() const;

  void set_drop_rate(double rate) { cfg_.drop_rate = rate; }
  double drop_rate() const { return cfg_.drop_rate; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t shadow_checksum(int server) const;
  /// Servers the controller has ever shipped state for, ascending.
  std::vector<int> shadow_servers() const;
  /// Sim-time from the last disturbance (ship while idle, or restart) to
  /// the most recent observed convergence; also exported as the
  /// `controller.channel.convergence_ns` gauge.
  TimeNs last_convergence_delay() const { return last_convergence_; }

  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct Outstanding {
    PacerConfigDelta delta;                   ///< delta payload
    std::vector<PacerConfigRecord> snapshot;  ///< snapshot-repair payload
    std::int64_t through_seq = 0;             ///< snapshot cursor target
    bool is_snapshot = false;
    int attempt = 0;
    std::uint64_t gen = 0;  ///< guards timer closures against reuse
  };

  void transmit(int server, std::int64_t seq);
  void on_delta_delivered(int server, std::uint64_t epoch, std::int64_t seq,
                          const PacerConfigDelta& delta);
  void on_snapshot_delivered(int server, std::uint64_t epoch,
                             std::int64_t through_seq,
                             const std::vector<PacerConfigRecord>& records);
  void count_delivery(const PacerAgentFleet::DeliveryResult& r);
  void send_ack(int server, const PacerAgentFleet::DeliveryResult& r);
  void on_ack(int server, std::uint64_t epoch, std::int64_t acked_through);
  void on_ack_timeout(int server, std::int64_t seq, std::uint64_t gen);
  void ship_repair(int server);
  void arm_anti_entropy();
  void note_disturbance();
  void check_converged();
  std::vector<int> union_servers() const;
  TimeNs hop_delay();
  bool dropped();

  EventQueue& events_;
  PacerAgentFleet& fleet_;
  ChannelConfig cfg_;
  Rng rng_;
  std::uint64_t epoch_ = 1;
  std::map<int, std::int64_t> last_seq_;
  std::map<int, std::map<std::int64_t, Outstanding>> outstanding_;
  std::int64_t total_outstanding_ = 0;
  std::map<int, PacerConfigTable> shadow_;
  std::uint64_t next_gen_ = 1;
  std::uint64_t ae_generation_ = 0;  ///< invalidates the periodic timer
  TimeNs disturbance_at_ {};
  TimeNs last_convergence_ {};
  bool was_converged_ = true;

  obs::MetricsRegistry metrics_;
  obs::Counter m_shipped_;          ///< deltas shipped (first transmission)
  obs::Counter m_delivered_;        ///< delta messages that reached an agent
  obs::Counter m_applied_;          ///< deltas applied in order at agents
  obs::Counter m_dropped_;          ///< messages lost to injected loss
  obs::Counter m_retries_;          ///< re-transmissions after ack timeout
  obs::Counter m_abandoned_;        ///< sends given up after max attempts
  obs::Counter m_duplicates_;       ///< idempotency: duplicate seqs dropped
  obs::Counter m_gaps_;             ///< out-of-order deltas buffered
  obs::Counter m_stale_epoch_;      ///< dead-epoch messages discarded
  obs::Counter m_stale_removes_;    ///< removes referencing absent records
  obs::Counter m_lease_expired_;    ///< revokes that raced clean lease expiry
  obs::Counter m_desyncs_repaired_; ///< anti-entropy full-snapshot repairs
  obs::Counter m_ae_rounds_;        ///< anti-entropy sweeps run
  obs::Gauge m_convergence_ns_;     ///< disturbance->convergence sim time
};

}  // namespace silo::sim
