// Output-queued switch port: drop-tail shared buffer, two 802.1q priority
// levels, optional DCTCP ECN marking and optional HULL phantom queue.
#pragma once

#include <deque>
#include <functional>

#include "sim/event_queue.h"
#include "sim/packet.h"
#include "util/units.h"

namespace silo::sim {

struct PortConfig {
  RateBps rate = 10 * kGbps;
  Bytes buffer = 312 * kKB;     ///< shared across both priorities
  Bytes ecn_threshold = 0;      ///< DCTCP K in bytes; 0 disables marking
  bool phantom_queue = false;   ///< HULL: mark off a virtual queue instead
  double phantom_drain = 0.95;  ///< phantom queue drains at this link fraction
  Bytes phantom_threshold = 3 * kKB;
  TimeNs link_delay = 500;      ///< propagation + forwarding to next hop
  /// pFabric: serve the packet with the fewest remaining message bytes
  /// first; when the buffer fills, evict the largest-remaining packet.
  bool pfabric = false;
};

struct PortStats {
  std::int64_t tx_packets = 0;
  std::int64_t tx_bytes = 0;
  std::int64_t drops = 0;
  std::int64_t ecn_marks = 0;
  Bytes max_queue_bytes = 0;
};

class SwitchPortSim {
 public:
  using DeliverFn = std::function<void(Packet)>;

  SwitchPortSim(EventQueue& events, PortConfig cfg, DeliverFn deliver)
      : events_(events), cfg_(cfg), deliver_(std::move(deliver)) {}

  /// Queue a packet for transmission; drops when the buffer is full.
  void enqueue(Packet p);

  Bytes queued_bytes() const { return queued_bytes_; }
  const PortStats& stats() const { return stats_; }
  const PortConfig& config() const { return cfg_; }

 private:
  void maybe_mark(Packet& p);
  void start_tx();
  void tx_done(Packet p);
  void enqueue_pfabric(Packet p);
  bool dequeue_next(Packet& out);

  EventQueue& events_;
  PortConfig cfg_;
  DeliverFn deliver_;
  std::deque<Packet> queue_[2];  ///< [0]=guaranteed, [1]=best effort
  std::vector<Packet> pfabric_queue_;  ///< unsorted; linear min/max scans
  Bytes queued_bytes_ = 0;
  bool busy_ = false;
  double phantom_bytes_ = 0;
  TimeNs phantom_updated_ = 0;
  PortStats stats_;
};

}  // namespace silo::sim
