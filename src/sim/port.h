// Output-queued switch port: drop-tail shared buffer, two 802.1q priority
// levels, optional DCTCP ECN marking and optional HULL phantom queue.
//
// Packets are pool handles; transmission and propagation self-schedule as
// typed events (kPortTxDone / kPortDeliver) — nothing on the per-packet
// path allocates. The deliver callback receives ownership of the handle.
#pragma once

#include <deque>
#include <functional>
#include <set>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/packet.h"
#include "sim/packet_pool.h"
#include "util/rng.h"
#include "util/units.h"

namespace silo::sim {

/// Record a flight-recorder event for `p` at the current time, if a
/// recorder is attached to the event queue. One pointer load + null check
/// when recording is off.
inline void record_flight(EventQueue& events, const Packet& p,
                          obs::FlightEventType type, std::int32_t location,
                          bool fault = false) {
  obs::FlightRecorder* r = events.flight_recorder();
  if (!r) return;
  obs::FlightEvent e;
  e.at = events.now();
  e.packet_id = p.id;
  e.seq = p.seq;
  e.flow_id = p.flow_id;
  e.location = location;
  e.bytes = static_cast<std::int32_t>(p.wire_bytes);
  e.type = type;
  e.is_ack = p.is_ack;
  e.fault = fault;
  r->record(e);
}

struct PortConfig {
  RateBps rate = 10 * kGbps;
  Bytes buffer = 312 * kKB;     ///< shared across both priorities
  Bytes ecn_threshold {};      ///< DCTCP K in bytes; 0 disables marking
  bool phantom_queue = false;   ///< HULL: mark off a virtual queue instead
  double phantom_drain = 0.95;  ///< phantom queue drains at this link fraction
  Bytes phantom_threshold = 3 * kKB;
  TimeNs link_delay {500};      ///< propagation + forwarding to next hop
  /// pFabric: serve the packet with the fewest remaining message bytes
  /// first; when the buffer fills, evict the largest-remaining packet.
  bool pfabric = false;
};

/// Registry handles a port updates alongside its local PortStats. The
/// cells are typically shared fabric-wide (every port increments the same
/// counter); default-constructed handles are null sinks, so an unwired
/// port pays one add per event and nothing else.
struct PortMetricHooks {
  obs::Counter tx_packets;
  obs::Counter tx_bytes;
  obs::Counter drops;
  obs::Counter fault_drops;
  obs::Counter ecn_marks;
  obs::Gauge peak_queue_bytes;
  obs::Histogram queue_bytes;
};

struct PortStats {
  std::int64_t tx_packets = 0;
  std::int64_t tx_bytes = 0;
  std::int64_t drops = 0;
  std::int64_t ecn_marks = 0;
  /// Packets killed by injected faults (dead link, random loss) — kept
  /// apart from congestion `drops` so recovery tests can tell them apart.
  std::int64_t fault_drops = 0;
  Bytes max_queue_bytes {};
};

/// Cross-island egress interception point. When attached to a port, every
/// successful transmission is offered to the hook at tx-done, *before* the
/// local kPortDeliver is scheduled. Returning true means the hook consumed
/// the handle (the packet is crossing into another island's mailbox and
/// will be re-materialized there at `deliver_at`); false leaves the
/// sequential delivery path untouched. Because the offer happens at
/// transmission completion, the earliest possible re-entry time is
/// now + link_delay — exactly the lookahead the window protocol assumes.
class PortTxHandoff {
 public:
  virtual ~PortTxHandoff() = default;
  virtual bool offer(SwitchPortSim& port, PacketHandle h,
                     TimeNs deliver_at) = 0;
};

class SwitchPortSim {
 public:
  /// Receives ownership of the delivered packet handle; the callee (next
  /// hop, host, or test) must free or forward it.
  using DeliverFn = std::function<void(PacketHandle)>;

  SwitchPortSim(EventQueue& events, PortConfig cfg, DeliverFn deliver)
      : events_(events), cfg_(cfg), deliver_(std::move(deliver)) {}

  /// Queue a packet for transmission; drops (and frees) when the buffer is
  /// full. Takes ownership of the handle.
  void enqueue(PacketHandle h);

  /// Fault injection: a downed link flushes (and frees) everything queued,
  /// kills the packet currently on the wire at tx-done, and drops all new
  /// arrivals until the link comes back up.
  void set_link_up(bool up);
  bool link_up() const { return link_up_; }

  /// Probabilistic per-link packet loss (injected fault, not congestion).
  /// `rng` must outlive the loss window; rate 0 / nullptr disables.
  void set_loss(double rate, Rng* rng) {
    loss_rate_ = rate;
    loss_rng_ = rate > 0 ? rng : nullptr;
  }

  Bytes queued_bytes() const { return queued_bytes_; }
  const PortStats& stats() const { return stats_; }
  const PortConfig& config() const { return cfg_; }

  /// Attach registry handles (cold path; see PortMetricHooks).
  void set_metrics(const PortMetricHooks& m) { metrics_ = m; }
  /// Attach the cross-island egress hook (parallel mode only; null — the
  /// default — keeps the sequential path bit-identical).
  void set_tx_handoff(PortTxHandoff* hook) { handoff_ = hook; }
  /// Flight-recorder location id: fabric ports use their PortId value,
  /// host-side ports (loopback vswitch) use obs::host_location(server).
  void set_location(std::int32_t location) { location_ = location; }
  std::int32_t location() const { return location_; }

 private:
  friend class EventQueue;  ///< typed-event dispatch

  /// pFabric queue entry: ordered by (remaining, arrival) so the head is
  /// the most urgent packet (earliest arrival among ties) and the largest
  /// remaining value is at the back — both O(log n).
  struct PfEntry {
    std::int64_t remaining;
    std::uint64_t arrival;
    PacketHandle handle;
    bool operator<(const PfEntry& o) const {
      return remaining != o.remaining ? remaining < o.remaining
                                      : arrival < o.arrival;
    }
  };

  // SILO_AUDIT byte-conservation ledger: every wire byte the port accepts
  // must later leave through exactly one of tx-start, pfabric eviction, or
  // a fault flush — or still be queued. An imbalance means a packet was
  // dropped without accounting (leak) or double-counted (corruption). O(1)
  // per check, compiled out entirely without SILO_AUDIT.
#ifdef SILO_AUDIT
  void audit_accept(Bytes b) { audit_in_ += b.count(); }
  void audit_leave(Bytes b) { audit_out_ += b.count(); }
  void audit_conserved() const {
    if (audit_in_ != audit_out_ + queued_bytes_.count())
      throw std::logic_error("SwitchPortSim: queued bytes not conserved");
  }
#else
  void audit_accept(Bytes) {}
  void audit_leave(Bytes) {}
  void audit_conserved() const {}
#endif

  void maybe_mark(Packet& p);
  void start_tx();
  void handle_tx_done(PacketHandle h);
  void handle_deliver(PacketHandle h);
  void enqueue_pfabric(PacketHandle h);
  PacketHandle dequeue_next();
  void flush_queues();

  EventQueue& events_;
  PortConfig cfg_;
  DeliverFn deliver_;
  std::deque<PacketHandle> queue_[2];  ///< [0]=guaranteed, [1]=best effort
  std::set<PfEntry> pfabric_queue_;
  std::uint64_t pfabric_arrivals_ = 0;
  Bytes queued_bytes_ {};
  bool busy_ = false;
  bool link_up_ = true;
  double loss_rate_ = 0;
  Rng* loss_rng_ = nullptr;
  double phantom_bytes_ = 0;
  TimeNs phantom_updated_ {};
  PortStats stats_;
  PortMetricHooks metrics_;
  PortTxHandoff* handoff_ = nullptr;
  std::int32_t location_ = 0;
#ifdef SILO_AUDIT
  std::int64_t audit_in_ = 0;   ///< wire bytes ever accepted into the queue
  std::int64_t audit_out_ = 0;  ///< wire bytes that left (tx/evict/flush)
#endif
};

}  // namespace silo::sim
