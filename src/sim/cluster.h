// ClusterSim: the experiment-facing facade of the packet simulator.
//
// It assembles a full multi-tenant datacenter: topology, switch fabric
// (with per-scheme ECN / phantom-queue configuration), one Host per server,
// VM placement by the scheme-appropriate policy, per-VM pacers for the
// rate-enforcing schemes, and message-oriented TCP/DCTCP flows between VMs.
//
// Schemes reproduce the paper's comparison set (§6.2) — Silo, TCP, DCTCP,
// HULL, Oktopus, Okto+ (Oktopus placement plus burst allowance) — plus the
// two closest related-work designs from §7/Table 5: QJUMP and pFabric.
//
// The simulation state is organized as *islands* — one in sequential mode,
// one per disjoint rack/tenant group (plus dedicated islands for shared
// aggregation queues) when cfg.parallel.enabled. Each island owns an
// EventQueue, a MetricsRegistry shard with the full catalog, and its
// tenants' flows; islands synchronize under the conservative window
// protocol of sim/parallel.h and results are bit-identical for any
// executor, including the serial fallback and the classic single-queue
// engine. See DESIGN.md "Parallel execution & conservative
// synchronization".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "model/guarantee.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/packet_timeline.h"
#include "pacer/headroom_lender.h"
#include "pacer/pacer_config.h"
#include "placement/placement.h"
#include "sim/network.h"
#include "sim/parallel.h"
#include "sim/transport.h"

namespace silo::sim {

/// The paper's comparison set (§6.2) plus QJUMP (§7, its closest related
/// work): rate-limited priority levels — delay-sensitive tenants get a
/// strict one-packet-per-network-epoch rate at high priority, bulk
/// tenants run unpaced at low priority.
enum class Scheme {
  kSilo,
  kTcp,
  kDctcp,
  kHull,
  kOktopus,
  kOktopusPlus,
  kQjump,
  kPfabric,  ///< remaining-size priority queues, aggressive minimal TCP
};

const char* scheme_name(Scheme s);

struct ClusterConfig {
  topology::TopologyConfig topo;
  Scheme scheme = Scheme::kSilo;
  TcpConfig tcp;                       ///< dctcp flag is set by the scheme
  Bytes ecn_threshold = 97 * kKB;      ///< DCTCP K (~65 MTU packets at 10G)
  Bytes phantom_threshold = 3 * kKB;   ///< HULL virtual-queue mark point
  double phantom_drain = 0.95;
  TimeNs link_delay {500};
  TimeNs batch_window = 50 * kUsec;
  TimeNs loopback_delay = 5 * kUsec;
  TimeNs rebalance_period = 1 * kMsec; ///< hose-rate coordination interval
  /// TSQ-style backpressure: a flow stops handing packets to the host
  /// while its pacer backlog exceeds this much queueing time.
  TimeNs tsq_horizon = 1500 * kUsec;
  /// Controller -> hypervisor shipping latency for one pacer-config delta
  /// (RPC to the server's filter driver), plus per-record processing time.
  /// Reconfiguration after admission/recovery is not free: the new pacer
  /// state only takes effect once the delta lands.
  TimeNs config_apply_delay = 200 * kUsec;
  TimeNs config_record_apply_cost {500};
  /// Work-conserving headroom lending (docs/WORKCONSERVING.md). Off by
  /// default: the lending-off path schedules zero lease events and is
  /// pinned bit-identical to pre-lending traces by the golden tests.
  struct Lending {
    bool enabled = false;
    /// Lease epoch — the demand-measurement window and the reclamation
    /// bound: owner demand returning is honored within one epoch.
    TimeNs epoch = 1 * kMsec;
    pacer::LenderConfig policy;
  };
  Lending lending;
  /// Deterministic parallel execution (DESIGN.md "Parallel execution &
  /// conservative synchronization"). When enabled, fabric/host
  /// materialization is deferred until every tenant is admitted — the
  /// island partition is a function of the placement — and run_until()
  /// drives the per-island queues under the conservative window protocol.
  /// Attach a threaded executor with set_island_executor(); without one a
  /// serial fallback runs the same schedule on the caller's thread.
  struct Parallel {
    bool enabled = false;
  };
  Parallel parallel;
};

class ClusterSim {
 public:
  explicit ClusterSim(const ClusterConfig& cfg);
  ~ClusterSim();

  /// Admit and place a tenant; nullopt when the placement policy rejects.
  std::optional<int> add_tenant(const TenantRequest& request);

  /// Admit a tenant at a fixed, manual placement (VM index -> server),
  /// bypassing admission control — used to reproduce the paper's testbed
  /// layouts exactly. Throws on invalid servers.
  int add_tenant_pinned(const TenantRequest& request,
                        std::vector<int> vm_to_server);

  int num_tenants() const { return static_cast<int>(tenants_.size()); }
  int tenant_vm_count(int tenant) const;
  int vm_server(int tenant, int local_vm) const;

  /// Where a delivered message's latency went. Components always sum to
  /// the observed latency exactly (integer ns): per-packet stage segments
  /// partition [emit, deliver], and flow-level gaps (sender stalls,
  /// head-of-line wait behind earlier messages) are attributed by rule —
  /// to retransmit_ns when a retransmission/RTO is involved, otherwise to
  /// pacing_ns on paced flows and queueing_ns on unpaced ones.
  struct MessageBreakdown {
    TimeNs pacing_ns {};         ///< pacer token wait + NIC batch alignment
    TimeNs queueing_ns {};       ///< switch queues + sender-side stream wait
    TimeNs serialization_ns {};  ///< wire transmission + propagation
    TimeNs retransmit_ns {};     ///< loss recovery (RTO backoff, resends)
    TimeNs sum() const {
      return pacing_ns + queueing_ns + serialization_ns + retransmit_ns;
    }
  };

  struct MessageResult {
    TimeNs latency {};
    bool had_rto = false;
    /// The transport aborted (bounded-retry limit) before the message was
    /// delivered — counted apart from completions; drivers retry these.
    bool aborted = false;
    MessageBreakdown breakdown;
  };
  using MsgCallback = std::function<void(const MessageResult&)>;

  /// Per-tenant message accounting, including fault-recovery outcomes.
  struct TenantCounters {
    std::int64_t completed = 0;
    std::int64_t aborted = 0;
    /// Completed messages whose latency exceeded the §4.1 bound the tenant
    /// was admitted with (only tracked for delay-guaranteed tenants).
    std::int64_t slo_violations = 0;
  };

  /// Write a `size`-byte message from one tenant VM to another at the
  /// current simulation time; `done` fires when the last byte is delivered
  /// in order at the receiver.
  void send_message(int tenant, int src_local, int dst_local, Bytes size,
                    MsgCallback done = nullptr);

  /// Total bytes delivered in-order on the (src, dst) pair's flow.
  std::int64_t pair_delivered_bytes(int tenant, int src_local,
                                    int dst_local) const;
  /// RTO count summed over a tenant's flows.
  int tenant_rto_count(int tenant) const;
  /// Aborted-connection count summed over a tenant's flows.
  int tenant_abort_count(int tenant) const;

  const TenantCounters& tenant_counters(int tenant) const {
    return tenants_.at(tenant).counters;
  }
  std::int64_t total_aborted_messages() const;
  std::int64_t total_completed_messages() const;
  /// Packets killed by injected faults anywhere: dead links, loss windows,
  /// crashed servers (sums fabric ports and hosts).
  std::int64_t total_fault_drops() const;

  /// Introspection for tests and debugging: the transport object of a
  /// pair's flow, or nullptr if no message was ever sent on the pair.
  const TcpFlow* debug_flow(int tenant, int src_local, int dst_local) const {
    const auto* fr = find_flow(tenant, src_local, dst_local);
    return fr ? fr->flow.get() : nullptr;
  }

  /// Ship drained controller deltas (SiloController::drain_config_deltas)
  /// to their servers. Each delta lands on its host's pacer-config table
  /// only after the controller->hypervisor latency plus per-record
  /// processing; the simulated cost is accounted in controller.diff.apply_ns
  /// and the landings in controller.diff.applied. Sequential mode only.
  void apply_config_deltas(const std::vector<PacerConfigDelta>& deltas);

  /// QJUMP's network epoch for this fabric (exposed for tests/benches).
  TimeNs qjump_epoch() const;

  // — Work-conserving lending introspection (docs/WORKCONSERVING.md) —
  std::uint64_t lease_epoch() const { return lease_epoch_; }
  /// Leases the issuer currently considers live, ascending id.
  std::vector<PacerLeaseRecord> active_leases() const;

  /// Debug/test tap: observes every packet at final delivery (right before
  /// the transport consumes it). Used by determinism regression tests to
  /// checksum the full delivered-packet trace. Sequential mode only — in
  /// parallel mode use enable_delivery_trace(), whose canonical checksum
  /// is comparable across modes.
  using PacketTap = std::function<void(const Packet&)>;
  void set_packet_tap(PacketTap tap);

  /// The cluster's metric registry (sequential mode: the one shard that
  /// exists; fabric/host/transport/cluster counters are registered at
  /// construction and updated via cached handles). Parallel mode throws —
  /// the shards must be combined; use merged_metrics().
  obs::MetricsRegistry& metrics();
  const obs::MetricsRegistry& metrics() const;

  /// Merged view across every island's registry shard: counters sum,
  /// gauges take the max, histograms merge element-wise (the catalogs are
  /// identical by construction). Sequential mode: == metrics().snapshot().
  std::vector<obs::MetricSample> merged_metrics() const;

  /// Create and attach a flight recorder (bounded ring of `capacity`
  /// events). Call enable_all()/enable_tenant()/enable_port() on the
  /// returned recorder to select traffic; nothing records until one filter
  /// is enabled. Idempotent capacity changes replace the recorder.
  /// Sequential mode only.
  obs::FlightRecorder& enable_flight_recorder(std::size_t capacity);
  obs::FlightRecorder* flight_recorder() { return recorder_.get(); }

  const ClusterConfig& config() const { return cfg_; }
  /// The single event queue (sequential mode). Parallel mode throws —
  /// there is one queue per island; use tenant_events()/port_events().
  EventQueue& events();
  Fabric& fabric();
  const topology::Topology& topo() const { return *topo_; }
  const Host& host(int server) const { return *hosts_.at(server); }
  /// Mutable host access for fault injection (crash / restore).
  Host& host_mut(int server);
  /// Run to `t`: the single queue directly, or every island under the
  /// conservative window protocol when cfg.parallel.enabled.
  void run_until(TimeNs t);

  // — Deterministic parallel execution (cfg.parallel.enabled) —

  /// Attach the executor that runs island bodies each window (src/par/
  /// owns the only threaded implementation). Unset: serial fallback —
  /// bit-identical results by construction.
  void set_island_executor(IslandExecutor* exec) { executor_ = exec; }
  bool parallel_mode() const { return parallel_; }
  /// The static island decomposition (materializes it on first use).
  const IslandPartition& partition();
  int num_islands();
  /// Window-protocol rounds executed so far. With per-round event counts
  /// this is the machine-independent overlap evidence benches record.
  std::int64_t parallel_rounds() const { return rounds_; }
  /// Events processed across every island queue (sequential mode: the one
  /// global queue). Benches report this as the parallel throughput
  /// numerator.
  std::uint64_t total_processed() const;
  /// Events processed by one island. max_i(island_processed) /
  /// total_processed bounds the achievable parallel speedup independent of
  /// the machine the bench ran on (the busiest island is the critical
  /// path).
  std::uint64_t island_processed(int island) const;
  /// Cross-island arrivals that tied in both time and next queue with an
  /// arrival from a *different* source island, summed over drains. Zero
  /// certifies this run's cross-island order never had a choice to make —
  /// the determinism matrix asserts it stays zero.
  std::int64_t cross_tie_collisions() const;

  /// Event queue owning a tenant's state — the queue drivers must schedule
  /// their arrivals and callbacks on. Sequential mode: the global queue.
  EventQueue& tenant_events(int tenant);
  /// Queue driving a fabric port / a server's host (fault routing).
  EventQueue& port_events(topology::PortId id);
  EventQueue& server_events(int server);
  /// Island-0 queue, home of control-plane objects (ControlChannel).
  EventQueue& control_events();

  /// Record every final packet delivery from now on. The canonical
  /// checksum sorts records into a mode-independent order, so sequential
  /// and parallel runs of one scenario must agree; the island checksum
  /// hashes each island's records in arrival order, pinning executor
  /// invariance (threads must not even reorder observation).
  void enable_delivery_trace() { trace_enabled_ = true; }
  std::uint64_t delivery_trace_checksum() const;
  std::uint64_t island_trace_checksum() const;
  std::int64_t delivery_trace_size() const;

 private:
  struct FlowRuntime {
    std::unique_ptr<TcpFlow> flow;
    struct Boundary {
      std::int64_t end_seq;
      Bytes size;
      TimeNs start;
      std::size_t rto_index;  ///< rto_events() size at message start
      MsgCallback done;
    };
    std::deque<Boundary> boundaries;
    // Latency-breakdown attribution state (see on_flow_delivery).
    bool paced = false;       ///< flow belongs to a pacer-enforced tenant
    TimeNs attr_mark {};     ///< end of the last attributed interval
    TimeNs msg_free_at {};   ///< when the flow finished the prior message
    std::size_t rto_seen = 0; ///< rto_events() size at the last attribution
    MessageBreakdown accum;   ///< attributed time since the last boundary
  };

  struct TenantRuntime {
    TenantRequest request;
    std::vector<int> vm_server;  ///< local VM -> server
    int vm_base = 0;             ///< first global VM id
    std::unique_ptr<pacer::TenantPacerGroup> pacers;
    std::map<std::int64_t, int> pair_to_flow;  ///< (src,dst) -> flow id
    TenantCounters counters;
  };

  /// Flow ids are (island << kIslandShift) | island-local index, so a
  /// packet names its flow globally while each island appends to its own
  /// table. Island 0 encodes to the plain index — sequential ids are
  /// unchanged.
  static constexpr int kIslandShift = 20;
  static constexpr int kLocalFlowMask = (1 << kIslandShift) - 1;
  static constexpr int flow_island(int flow_id) {
    return flow_id >> kIslandShift;
  }

  /// One delivered packet, as recorded by the delivery trace.
  struct DeliveryRecord {
    TimeNs at {};
    int src_vm = -1;
    int dst_vm = -1;
    std::int64_t seq = 0;
    std::int64_t ack_seq = 0;
    std::int64_t payload = 0;
    std::uint32_t flags = 0;  ///< is_ack | ecn<<1 | echo<<2 | prio<<3
  };

  /// Everything one island owns. Sequential mode is exactly one of these;
  /// parallel mode holds num_islands() of them and every event executes
  /// against exactly one. The registry shards carry identical catalogs so
  /// merged_metrics() can fold them positionally.
  struct IslandState {
    int id = 0;
    EventQueue events;
    obs::MetricsRegistry metrics;
    IslandGateway gateway;
    // Registry handles, one full catalog per island.
    PortMetricHooks pm;
    HostMetricHooks hm;
    TransportMetricHooks flow_metrics;
    obs::Counter admissions;
    obs::Counter rejections;
    obs::Counter msgs_completed;
    obs::Counter msgs_aborted;
    obs::Counter slo_violations;
    obs::Counter diff_applied;
    obs::Counter diff_apply_ns;
    obs::Counter lease_granted;
    obs::Counter lease_revoked;
    obs::Counter lease_expired;
    obs::Counter lease_applied;
    obs::Gauge lease_active;
    obs::Gauge lease_lent_bps;
    // Island-local flow table, indexed by the low bits of the flow id.
    std::vector<std::unique_ptr<FlowRuntime>> flows;
    std::vector<int> flow_tenant;  ///< local flow index -> tenant
    /// Stage timeline of the packet being dispatched, captured before its
    /// handle is recycled (on_flow_delivery runs inside the dispatch).
    obs::PacketStages pending_stages;
    TimeNs pending_arrival {-1};
    // Window-protocol state. outbox fills during this island's run phase;
    // the barrier distributes records into destination inboxes; drains
    // re-inject in (arrival, src_island, seq) order.
    std::uint64_t mailbox_seq = 0;
    std::vector<MailboxRecord> outbox;
    std::vector<MailboxRecord> inbox;
    std::int64_t tie_collisions = 0;
    std::vector<DeliveryRecord> trace;
  };

  /// Egress hook wired to every fabric port in parallel mode; forwards to
  /// offer_cross_island.
  struct CrossIslandHandoff final : PortTxHandoff {
    ClusterSim* owner = nullptr;
    bool offer(SwitchPortSim& port, PacketHandle h,
               TimeNs deliver_at) override;
  };

  bool scheme_paced() const {
    return cfg_.scheme == Scheme::kSilo || cfg_.scheme == Scheme::kOktopus ||
           cfg_.scheme == Scheme::kOktopusPlus ||
           cfg_.scheme == Scheme::kQjump;
  }
  bool tenant_paced(const TenantRequest& request) const {
    if (!scheme_paced()) return false;
    if (request.tenant_class == TenantClass::kBestEffort) return false;
    // QJUMP only rate-limits the latency-sensitive level.
    if (cfg_.scheme == Scheme::kQjump)
      return request.tenant_class == TenantClass::kDelaySensitive;
    return true;
  }
  placement::Policy placement_policy() const;
  SiloGuarantee pacing_guarantee(const SiloGuarantee& g) const;
  int finish_admission(const TenantRequest& request,
                       std::vector<int> vm_to_server);
  friend class EventQueue;  ///< typed-event dispatch (rebalance timer)

  FlowRuntime& flow_for(int tenant, int src_local, int dst_local);
  const FlowRuntime* find_flow(int tenant, int src_local, int dst_local) const;
  FlowRuntime& flow_runtime(int flow_id) {
    return *islands_[static_cast<std::size_t>(flow_island(flow_id))]
                ->flows[static_cast<std::size_t>(flow_id & kLocalFlowMask)];
  }
  const FlowRuntime& flow_runtime(int flow_id) const {
    return *islands_[static_cast<std::size_t>(flow_island(flow_id))]
                ->flows[static_cast<std::size_t>(flow_id & kLocalFlowMask)];
  }
  void dispatch(int island, PacketHandle h);
  void on_flow_delivery(int flow_id, std::int64_t delivered);
  void on_flow_abort(int flow_id);
  void rebalance_tenant(int tenant);
  /// Headroom-lender epoch tick: expire leases on every host's own clock,
  /// measure per-VM demand, and ship grant/revoke deltas (scheduled only
  /// when cfg_.lending.enabled).
  void lease_epoch_tick();
  std::vector<pacer::LenderVmStats> collect_lender_stats();
  /// Re-derive per-(tenant, vm) lease overlays from `server`'s applied
  /// lease table and push them into the borrower pacers.
  void refresh_lease_rates(int server);

  /// Register the shared metric catalog into one island's registry shard
  /// and cache the handles. Identical names and order on every island.
  void register_catalog(IslandState& isl);
  /// Parallel mode: build the partition from the admitted placement and
  /// construct islands/fabric/hosts. Idempotent; the first run, driver
  /// attach, or fabric access triggers it. Sequential construction runs
  /// the equivalent inline in the constructor.
  void materialize();
  void run_parallel_until(TimeNs deadline);
  void drain_inbox(int island);
  void island_arrival(int island, PacketHandle h);
  bool offer_cross_island(SwitchPortSim& port, PacketHandle h,
                          TimeNs deliver_at);
  int next_hop_port(const Packet& p) const;

  ClusterConfig cfg_;
  bool parallel_ = false;
  bool materialized_ = false;
  PortConfig port_template_;
  Host::Config host_template_;
  std::unique_ptr<topology::Topology> topo_;
  std::unique_ptr<placement::PlacementEngine> placer_;
  std::unique_ptr<Fabric> fabric_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<TenantRuntime> tenants_;
  std::vector<std::unique_ptr<IslandState>> islands_;
  IslandPartition part_;
  IslandExecutor* executor_ = nullptr;
  SerialExecutor serial_executor_;
  CrossIslandHandoff handoff_;
  std::int64_t rounds_ = 0;
  bool trace_enabled_ = false;
  /// Admissions/rejections seen before the islands (and their registry
  /// shards) exist in parallel mode; replayed into island 0 at
  /// materialize().
  std::int64_t pending_admissions_ = 0;
  std::int64_t pending_rejections_ = 0;
  int next_global_vm_ = 0;
  PacketTap tap_;

  std::unique_ptr<obs::FlightRecorder> recorder_;

  // Headroom-lender state (docs/WORKCONSERVING.md). All stays empty/zero
  // while cfg_.lending.enabled is false. Sequential mode only.
  std::unique_ptr<pacer::HeadroomLender> lender_;
  std::uint64_t lease_epoch_ = 0;
  std::uint64_t next_lease_id_ = 1;
  std::map<std::uint64_t, PacerLeaseRecord> issued_;  ///< issuer lease table
  /// Per server: lease overlay last pushed to each (tenant, vm) pacer, so
  /// vanished leases are zeroed out exactly once.
  std::map<int, std::map<std::pair<std::int64_t, int>, RateBps>>
      applied_lease_rate_;
};

}  // namespace silo::sim
