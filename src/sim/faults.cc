#include "sim/faults.h"

#include <algorithm>
#include <stdexcept>

#include "sim/control_channel.h"

namespace silo::sim {

FaultPlan& FaultPlan::link_down(TimeNs at, topology::PortId p) {
  actions.push_back({FaultAction::Kind::kLinkDown, at, p.value, -1, 0});
  return *this;
}

FaultPlan& FaultPlan::link_up(TimeNs at, topology::PortId p) {
  actions.push_back({FaultAction::Kind::kLinkUp, at, p.value, -1, 0});
  return *this;
}

FaultPlan& FaultPlan::link_flap(TimeNs at, topology::PortId p, TimeNs outage) {
  return link_down(at, p).link_up(at + outage, p);
}

FaultPlan& FaultPlan::loss_window(TimeNs from, TimeNs to, topology::PortId p,
                                  double rate) {
  actions.push_back({FaultAction::Kind::kLossStart, from, p.value, -1, rate});
  actions.push_back({FaultAction::Kind::kLossStop, to, p.value, -1, 0});
  return *this;
}

FaultPlan& FaultPlan::channel_loss_window(TimeNs from, TimeNs to,
                                          double rate) {
  actions.push_back(
      {FaultAction::Kind::kChannelLossStart, from, -1, -1, rate});
  actions.push_back({FaultAction::Kind::kChannelLossStop, to, -1, -1, 0});
  return *this;
}

FaultPlan& FaultPlan::server_down(TimeNs at, int server) {
  actions.push_back({FaultAction::Kind::kServerDown, at, -1, server, 0});
  return *this;
}

FaultPlan& FaultPlan::server_up(TimeNs at, int server) {
  actions.push_back({FaultAction::Kind::kServerUp, at, -1, server, 0});
  return *this;
}

FaultPlan& FaultPlan::server_crash(TimeNs at, int server, TimeNs outage) {
  return server_down(at, server).server_up(at + outage, server);
}

namespace {

// A random *switch* egress. Server NIC egresses (server_up) are excluded:
// the host NIC simulates that wire, so the fabric port never sees traffic.
topology::PortId random_switch_port(const topology::Topology& topo, Rng& rng) {
  switch (rng.uniform_int(0, 4)) {
    case 0:
      return topo.server_down(
          static_cast<int>(rng.uniform_int(0, topo.num_servers() - 1)));
    case 1:
      return topo.rack_up(
          static_cast<int>(rng.uniform_int(0, topo.num_racks() - 1)));
    case 2:
      return topo.rack_down(
          static_cast<int>(rng.uniform_int(0, topo.num_racks() - 1)));
    case 3:
      return topo.pod_up(
          static_cast<int>(rng.uniform_int(0, topo.num_pods() - 1)));
    default:
      return topo.pod_down(
          static_cast<int>(rng.uniform_int(0, topo.num_pods() - 1)));
  }
}

}  // namespace

FaultPlan FaultPlan::random(const topology::Topology& topo, std::uint64_t seed,
                            TimeNs horizon, int events) {
  FaultPlan plan;
  plan.seed = seed;
  // Distinct stream from the loss Rng so plan shape and loss draws never
  // correlate across seeds.
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x5bf03635ull);
  const TimeNs start_max = horizon * 6 / 10;
  const TimeNs repair_by = horizon * 8 / 10;
  for (int i = 0; i < events; ++i) {
    const TimeNs at{rng.uniform_int(0, start_max.count())};
    const TimeNs outage =
        std::min(TimeNs{rng.uniform_int((horizon / 50).count(),
                                        (horizon / 5).count())},
                 repair_by - at);
    switch (rng.uniform_int(0, 2)) {
      case 0:
        plan.link_flap(at, random_switch_port(topo, rng), outage);
        break;
      case 1:
        plan.loss_window(at, at + outage, random_switch_port(topo, rng),
                         rng.uniform(0.05, 0.3));
        break;
      default:
        plan.server_crash(
            at, static_cast<int>(rng.uniform_int(0, topo.num_servers() - 1)),
            outage);
        break;
    }
  }
  return plan;
}

FaultInjector::FaultInjector(ClusterSim& sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)), loss_rng_(plan_.seed) {}

void FaultInjector::arm() {
  for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
    const FaultAction& a = plan_.actions[i];
    // Each action fires on the event queue of the island that owns the
    // faulted element, so parallel mode needs no cross-island control
    // events (the action closure only touches island-local state).
    EventQueue* ev = nullptr;
    switch (a.kind) {
      case FaultAction::Kind::kLinkDown:
      case FaultAction::Kind::kLinkUp:
        ev = &sim_.port_events(topology::PortId{a.port});
        break;
      case FaultAction::Kind::kLossStart:
      case FaultAction::Kind::kLossStop:
        // Loss windows draw from one shared Rng whose consumption order
        // depends on global packet interleaving — not a pure function of
        // the partition, so they stay sequential-only.
        if (sim_.parallel_mode())
          throw std::logic_error(
              "FaultInjector: loss windows are sequential-mode only (the "
              "shared loss Rng is not island-confined)");
        ev = &sim_.port_events(topology::PortId{a.port});
        break;
      case FaultAction::Kind::kServerDown:
      case FaultAction::Kind::kServerUp:
        ev = &sim_.server_events(a.server);
        break;
      case FaultAction::Kind::kChannelLossStart:
      case FaultAction::Kind::kChannelLossStop:
        ev = &sim_.control_events();
        break;
    }
    const TimeNs when = std::max(ev->now(), a.at);
    ev->at(when, [this, i] { execute(plan_.actions[i]); });
  }
}

void FaultInjector::execute(const FaultAction& a) {
  ++executed_;
  switch (a.kind) {
    case FaultAction::Kind::kLinkDown:
      sim_.fabric().port(topology::PortId{a.port}).set_link_up(false);
      break;
    case FaultAction::Kind::kLinkUp:
      sim_.fabric().port(topology::PortId{a.port}).set_link_up(true);
      break;
    case FaultAction::Kind::kLossStart:
      sim_.fabric().port(topology::PortId{a.port})
          .set_loss(a.loss_rate, &loss_rng_);
      break;
    case FaultAction::Kind::kLossStop:
      sim_.fabric().port(topology::PortId{a.port}).set_loss(0, nullptr);
      break;
    case FaultAction::Kind::kServerDown:
      sim_.host_mut(a.server).set_up(false);
      break;
    case FaultAction::Kind::kServerUp:
      sim_.host_mut(a.server).set_up(true);
      break;
    case FaultAction::Kind::kChannelLossStart:
      if (channel_ != nullptr) channel_->set_drop_rate(a.loss_rate);
      break;
    case FaultAction::Kind::kChannelLossStop:
      if (channel_ != nullptr) channel_->set_drop_rate(0);
      break;
  }
}

}  // namespace silo::sim
