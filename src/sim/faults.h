// Scriptable fault injection for the cluster simulator.
//
// A FaultPlan is a deterministic schedule of link/server failures, repairs,
// port flaps, and probabilistic per-link loss windows. The FaultInjector
// executes it through the event queue, so fault timing interleaves with
// packet events exactly the same way on every run with the same seed —
// chaos tests are bit-reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cluster.h"
#include "topology/topology.h"
#include "util/rng.h"

namespace silo::sim {

class ControlChannel;

struct FaultAction {
  enum class Kind : std::uint8_t {
    kLinkDown,          ///< fabric port stops forwarding; queued packets die
    kLinkUp,            ///< restore a downed port
    kLossStart,         ///< begin dropping each arriving packet w.p. loss_rate
    kLossStop,          ///< end the loss window
    kServerDown,        ///< crash a host (pacer/NIC/loopback queues flushed)
    kServerUp,          ///< restore a crashed host
    kChannelLossStart,  ///< control channel drops messages w.p. loss_rate
    kChannelLossStop,   ///< end the control-channel loss window
  };
  Kind kind;
  TimeNs at {};
  int port = -1;         ///< topology PortId value for link actions
  int server = -1;       ///< server index for server actions
  double loss_rate = 0;  ///< kLossStart / kChannelLossStart only
};

/// Builder-style deterministic fault schedule. All draws the injected
/// faults make at runtime (loss coin flips) come from one Rng seeded here.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultAction> actions;

  FaultPlan& link_down(TimeNs at, topology::PortId p);
  FaultPlan& link_up(TimeNs at, topology::PortId p);
  /// Down at `at`, back up at `at + outage` — a port flap.
  FaultPlan& link_flap(TimeNs at, topology::PortId p, TimeNs outage);
  FaultPlan& loss_window(TimeNs from, TimeNs to, topology::PortId p,
                         double rate);
  /// Control-plane loss window: the attached ControlChannel drops each
  /// one-way message w.p. `rate` between `from` and `to`.
  FaultPlan& channel_loss_window(TimeNs from, TimeNs to, double rate);
  FaultPlan& server_down(TimeNs at, int server);
  FaultPlan& server_up(TimeNs at, int server);
  /// Crash at `at`, restore at `at + outage`.
  FaultPlan& server_crash(TimeNs at, int server, TimeNs outage);

  /// Seeded random plan for chaos soaks: `events` faults (port flaps, loss
  /// windows, server crashes) start uniformly in the first 60% of
  /// `horizon`; every fault is repaired by 80% of `horizon` so the run can
  /// prove full recovery. Same (topo, seed, horizon, events) -> same plan.
  static FaultPlan random(const topology::Topology& topo, std::uint64_t seed,
                          TimeNs horizon, int events);
};

/// Executes a FaultPlan against a ClusterSim through its event queue.
/// Must outlive the simulation run (ports keep a pointer to the loss Rng).
class FaultInjector {
 public:
  FaultInjector(ClusterSim& sim, FaultPlan plan);

  /// Schedule every action. Call once, before (or during) the run; actions
  /// whose time is already in the past execute at the current time.
  void arm();

  /// Wire a ControlChannel so kChannelLoss* actions reach it; channel
  /// actions are no-ops while unattached. The channel must outlive arm()'d
  /// actions.
  void attach_channel(ControlChannel* channel) { channel_ = channel; }

  int executed() const { return executed_; }

 private:
  void execute(const FaultAction& a);

  ClusterSim& sim_;
  FaultPlan plan_;
  Rng loss_rng_;
  ControlChannel* channel_ = nullptr;
  int executed_ = 0;
};

}  // namespace silo::sim
