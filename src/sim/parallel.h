// Conservative-window parallel execution: topology partition, cross-island
// mailboxes, and the executor interface.
//
// The cluster is split into *islands* — disjoint groups of racks plus
// dedicated islands for shared aggregation ports — such that every piece
// of tenant state (flows, pacers, drivers, per-tenant counters) lives in
// exactly one island and every event executes against exactly one island's
// EventQueue. Islands synchronize YAWNS-style: each round, every island
// publishes its next-event time, a per-component conservative horizon
//
//   W_c = min(next_i : i in component c) + lookahead(c) - 1
//
// is derived (lookahead = the minimum cross-island link latency inside the
// component, infinity for isolated islands), all islands run events with
// time <= their horizon, and cross-island packets handed off through
// per-(src,dst) mailboxes are drained at the barrier in a fixed
// (arrival-time, src-island, per-source-seq) order. Every ordering decision
// is a pure function of the partition and the event contents — never of
// thread count or scheduling — so results are identical for any executor,
// including the serial fallback.
//
// This header is thread-free by design (silo-lint bans threading includes
// in src/sim/): protocol code stays sequential per island, and the only
// component allowed to own threads is the IslandExecutor implementation in
// src/par/, which sees islands purely as opaque indices to run.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "obs/packet_timeline.h"
#include "sim/packet.h"
#include "topology/topology.h"
#include "util/units.h"

namespace silo::sim {

/// Sentinel "no event / no constraint" time for horizon arithmetic.
inline constexpr TimeNs kTimeInfinity{std::numeric_limits<std::int64_t>::max()};

/// `a + b` that sticks to kTimeInfinity instead of overflowing (TimeNs's
/// checked operator+ would throw on infinity + lookahead).
constexpr TimeNs sat_add(TimeNs a, TimeNs b) {
  if (a == kTimeInfinity || b == kTimeInfinity) return kTimeInfinity;
  if (a.count() > kTimeInfinity.count() - b.count()) return kTimeInfinity;
  return a + b;
}

/// The static island decomposition of one topology + tenant placement.
///
/// Invariants established by build():
///   - all racks a tenant touches share one island (tenant state confined);
///   - pod_up/pod_down ports used by tenants from >= 2 islands become
///     their own single-port islands (the only shared fabric queues in the
///     tree path model);
///   - with zero link latency the would-be crossings are merged away
///     instead (a 0 ns lookahead cannot make progress in a conservative
///     protocol), so every remaining crossing edge has positive weight and
///     the window protocol cannot deadlock or livelock by construction;
///   - crossing edges connect islands whose packets can actually traverse
///     between them; weakly-connected components of that graph each get a
///     lookahead = min crossing latency (kTimeInfinity when isolated, i.e.
///     the island may always run to the deadline).
struct IslandPartition {
  int num_islands = 1;
  int num_components = 1;
  std::vector<int> rack_island;           ///< rack -> island
  std::vector<int> port_island;           ///< fabric port id -> island
  std::vector<int> tenant_island;         ///< tenant -> island
  std::vector<int> component;             ///< island -> component
  std::vector<TimeNs> component_lookahead;///< component -> min crossing lat.
  int crossing_edges = 0;                 ///< distinct directed crossings
  int merged_zero_latency = 0;            ///< unions forced by 0 ns links

  int island_of_server(const topology::Topology& topo, int server) const {
    return rack_island[static_cast<std::size_t>(topo.rack_of_server(server))];
  }

  /// Partition for `topo` where tenant t occupies the servers in
  /// `tenant_servers[t]` and every fabric link has latency `link_delay`.
  static IslandPartition build(
      const topology::Topology& topo, TimeNs link_delay,
      const std::vector<std::vector<int>>& tenant_servers);

  /// The trivial single-island partition (sequential mode).
  static IslandPartition single(const topology::Topology& topo,
                                int num_tenants);
};

/// One packet crossing an island boundary. The source island frees its
/// handle and snapshots the POD payload + stage accounting here; the
/// destination island re-allocates from its own arena at drain time, in
/// (arrival, src_island, seq) order, so destination pool allocation order —
/// and therefore every downstream handle — is reproducible.
struct MailboxRecord {
  TimeNs arrival {};        ///< delivery time at the next hop (tx + latency)
  std::uint64_t seq = 0;    ///< per-source-island monotonic tag
  int src_island = 0;
  int dst_island = 0;
  Packet packet {};
  obs::PacketStages stages {};
};

/// Runs island bodies, nothing more. Implementations live outside the sim
/// layer (src/par/ owns threads; tests may use the inline serial one).
/// Contract: fn(i) is invoked exactly once for every i in [0, n), calls for
/// distinct i may run concurrently, and parallel_for returns only after all
/// of them complete (the return is the window barrier — it must establish
/// happens-before between the bodies and the caller).
class IslandExecutor {
 public:
  virtual ~IslandExecutor() = default;
  virtual void parallel_for(int n, const std::function<void(int)>& fn) = 0;
  virtual int threads() const = 0;
};

/// Trivial executor: runs islands 0..n-1 in order on the caller's thread.
/// The protocol's determinism guarantee is exactly that this produces the
/// same results as any threaded executor.
class SerialExecutor final : public IslandExecutor {
 public:
  void parallel_for(int n, const std::function<void(int)>& fn) override {
    for (int i = 0; i < n; ++i) fn(i);
  }
  int threads() const override { return 1; }
};

/// Per-island endpoint for kIslandArrival events. The event queue's typed
/// dispatch calls handle_arrival; the gateway forwards to the owning
/// facade through a captureless trampoline so this header need not see
/// ClusterSim.
class IslandGateway {
 public:
  using ArrivalFn = void (*)(void* ctx, int island, std::uint32_t handle);

  void bind(void* ctx, ArrivalFn fn, int island) {
    ctx_ = ctx;
    fn_ = fn;
    island_ = island;
  }
  void handle_arrival(std::uint32_t h) { fn_(ctx_, island_, h); }
  int island() const { return island_; }

 private:
  void* ctx_ = nullptr;
  ArrivalFn fn_ = nullptr;
  int island_ = 0;
};

}  // namespace silo::sim
