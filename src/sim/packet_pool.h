// Packet arena for the simulator's hot path. Ports, hosts and transports
// pass 4-byte handles instead of moving 80-byte Packet structs through the
// event queue; the backing storage is a freelist-recycled arena that stops
// growing once the simulation reaches its steady-state packet population.
//
// Lifetime contract (see DESIGN.md "Event engine"): exactly one owner per
// live handle. Whoever removes a packet from circulation — a port dropping
// it, the fabric discarding a void frame, ClusterSim consuming a delivery —
// frees it. Double frees and frees of never-allocated handles throw, so
// recycling bugs fail deterministically even in unsanitized builds.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/packet.h"

namespace silo::sim {

using PacketHandle = std::uint32_t;
inline constexpr PacketHandle kNullPacket = 0xffffffffu;

class PacketPool {
 public:
  /// Fresh default-constructed packet. Reuses a freed slot when available;
  /// the arena only grows while the live population sets a new high-water
  /// mark, so steady-state allocation count is zero.
  PacketHandle alloc() {
    ++allocs_;
    PacketHandle h;
    if (!free_.empty()) {
      h = free_.back();
      free_.pop_back();
    } else {
      h = static_cast<PacketHandle>(arena_.size());
      arena_.emplace_back();
      live_bit_.push_back(false);
    }
    arena_[h] = Packet{};
    live_bit_[h] = true;
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    return h;
  }

  /// Allocate a handle holding a copy of `p` (tests and drivers that build
  /// packets by hand).
  PacketHandle clone(const Packet& p) {
    const PacketHandle h = alloc();
    arena_[h] = p;
    return h;
  }

  void free(PacketHandle h) {
    if (h >= arena_.size() || !live_bit_[h])
      throw std::logic_error("PacketPool: free of dead or invalid handle");
    live_bit_[h] = false;
    free_.push_back(h);
    --live_;
    ++frees_;
  }

  Packet& get(PacketHandle h) { return arena_[h]; }
  const Packet& get(PacketHandle h) const { return arena_[h]; }

  /// Live packets currently owned by some component.
  std::int64_t live() const { return live_; }
  /// Arena slots ever created — constant in steady state; growth after
  /// warmup means a leak or an unbounded queue.
  std::size_t capacity() const { return arena_.size(); }
  std::int64_t total_allocs() const { return allocs_; }
  std::int64_t total_frees() const { return frees_; }
  std::int64_t peak_live() const { return peak_live_; }

 private:
  std::vector<Packet> arena_;
  std::vector<bool> live_bit_;  ///< double-free detection, always on
  std::vector<PacketHandle> free_;
  std::int64_t live_ = 0;
  std::int64_t peak_live_ = 0;
  std::int64_t allocs_ = 0;
  std::int64_t frees_ = 0;
};

}  // namespace silo::sim
