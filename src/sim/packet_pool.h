// Packet arena for the simulator's hot path. Ports, hosts and transports
// pass 4-byte handles instead of moving 80-byte Packet structs through the
// event queue; the backing storage is a freelist-recycled arena that stops
// growing once the simulation reaches its steady-state packet population.
//
// Handles are generation-tagged: the low 24 bits index the arena slot, the
// high 8 bits carry the slot's generation, bumped on every free. A stale
// handle (kept across a free/realloc of its slot) therefore never aliases
// the slot's new occupant — free() always rejects it, and under SILO_AUDIT
// every get() validates too, so use-after-free through a recycled handle
// fails deterministically instead of silently reading another packet.
//
// Lifetime contract (see DESIGN.md "Event engine"): exactly one owner per
// live handle. Whoever removes a packet from circulation — a port dropping
// it, the fabric discarding a void frame, ClusterSim consuming a delivery —
// frees it. Double frees and frees of never-allocated handles throw, so
// recycling bugs fail deterministically even in unsanitized builds.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/packet.h"

namespace silo::sim {

using PacketHandle = std::uint32_t;
inline constexpr PacketHandle kNullPacket = 0xffffffffu;

class PacketPool {
 public:
  static constexpr int kSlotBits = 24;
  static constexpr PacketHandle kSlotMask = (1u << kSlotBits) - 1u;

  static constexpr std::uint32_t slot_of(PacketHandle h) {
    return h & kSlotMask;
  }
  static constexpr std::uint32_t generation_of(PacketHandle h) {
    return h >> kSlotBits;
  }

  /// Fresh default-constructed packet. Reuses a freed slot when available;
  /// the arena only grows while the live population sets a new high-water
  /// mark, so steady-state allocation count is zero.
  PacketHandle alloc() {
    ++allocs_;
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      if (arena_.size() >= kSlotMask)
        throw std::length_error("PacketPool: arena exceeds 2^24 slots");
      slot = static_cast<std::uint32_t>(arena_.size());
      arena_.emplace_back();
      live_bit_.push_back(false);
      gen_.push_back(0);
    }
    arena_[slot] = Packet{};
    live_bit_[slot] = true;
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    return make_handle(slot);
  }

  /// Allocate a handle holding a copy of `p` (tests and drivers that build
  /// packets by hand).
  PacketHandle clone(const Packet& p) {
    const PacketHandle h = alloc();
    arena_[slot_of(h)] = p;
    return h;
  }

  void free(PacketHandle h) {
    const std::uint32_t slot = slot_of(h);
    if (slot >= arena_.size() || !live_bit_[slot] ||
        generation_of(h) != gen_[slot])
      throw std::logic_error("PacketPool: free of dead or invalid handle");
    live_bit_[slot] = false;
    gen_[slot] = (gen_[slot] + 1u) & 0xffu;  // invalidate outstanding copies
    free_.push_back(slot);
    --live_;
    ++frees_;
  }

  Packet& get(PacketHandle h) {
    audit(h);
    return arena_[slot_of(h)];
  }
  const Packet& get(PacketHandle h) const {
    audit(h);
    return arena_[slot_of(h)];
  }

  /// Live packets currently owned by some component.
  std::int64_t live() const { return live_; }
  /// Arena slots ever created — constant in steady state; growth after
  /// warmup means a leak or an unbounded queue.
  std::size_t capacity() const { return arena_.size(); }
  std::int64_t total_allocs() const { return allocs_; }
  std::int64_t total_frees() const { return frees_; }
  std::int64_t peak_live() const { return peak_live_; }

 private:
  PacketHandle make_handle(std::uint32_t slot) const {
    return slot | (static_cast<PacketHandle>(gen_[slot]) << kSlotBits);
  }

  void audit(PacketHandle h) const {
#ifdef SILO_AUDIT
    const std::uint32_t slot = slot_of(h);
    if (slot >= arena_.size() || !live_bit_[slot] ||
        generation_of(h) != gen_[slot])
      throw std::logic_error("PacketPool: deref of dead or stale handle");
#else
    (void)h;
#endif
  }

  std::vector<Packet> arena_;
  std::vector<bool> live_bit_;   ///< double-free detection, always on
  std::vector<std::uint8_t> gen_;  ///< per-slot generation (wraps at 256)
  std::vector<std::uint32_t> free_;
  std::int64_t live_ = 0;
  std::int64_t peak_live_ = 0;
  std::int64_t allocs_ = 0;
  std::int64_t frees_ = 0;
};

}  // namespace silo::sim
