// Byte-stream transport over the packet simulator: TCP Reno with fast
// retransmit/recovery and RTO backoff, plus the DCTCP ECN control law
// (Alizadeh et al., SIGCOMM 2010). HULL's host side is DCTCP; its switch
// side is the phantom queue in SwitchPortSim.
//
// One TcpFlow object models one unidirectional stream and both endpoints:
// the simulator is global, so receiver logic (cumulative ACKs, ECN echo,
// out-of-order reassembly, in-order delivery notifications) lives here too.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/packet.h"
#include "sim/packet_pool.h"

namespace silo::sim {

struct TcpConfig {
  Bytes mss = kMss;
  double init_cwnd_pkts = 10;
  double max_cwnd_pkts = 500;
  TimeNs min_rto = 10 * kMsec;   ///< ns2-style floor; testbed-style is 200ms
  TimeNs max_rto = 2 * kSec;
  bool dctcp = false;
  double dctcp_g = 1.0 / 16.0;
  /// Bounded-retry abort: after this many consecutive RTOs with no forward
  /// progress the connection aborts (undelivered stream discarded, owner
  /// notified). 0 disables — the seed behavior of retrying forever.
  int max_consecutive_rtos = 0;
  /// Abort when no byte has been newly acked for this long while data is
  /// outstanding (checked at RTO firings). 0 disables.
  TimeNs conn_deadline {};
};

/// Registry handles shared by every flow of a cluster (see
/// obs::MetricsRegistry — default handles are null sinks).
struct TransportMetricHooks {
  obs::Counter segments;      ///< data segments emitted (incl. retransmits)
  obs::Counter retransmits;   ///< fast-retransmit + go-back-N resends
  obs::Counter acks;          ///< ACK packets processed at the sender
  obs::Counter rtos;          ///< retransmission timeouts fired
  obs::Counter aborts;        ///< bounded-retry connection aborts
};

class TcpFlow {
 public:
  /// `send_data` injects packets at the source host; `send_ack` at the
  /// destination host (ACKs flow through the reverse fabric path). The
  /// callee receives ownership of the pool handle.
  using SendFn = std::function<void(PacketHandle)>;
  using DeliverFn = std::function<void(std::int64_t in_order_bytes)>;
  /// Backpressure probe (TSQ-style): may this flow hand another `bytes`
  /// packet to the host right now? Re-polled on every ACK and app write.
  using CanSendFn = std::function<bool(int dst_vm, Bytes bytes)>;
  /// Fired when the bounded-retry limit aborts the connection; the
  /// undelivered tail of the stream is discarded before the call.
  using AbortFn = std::function<void()>;

  TcpFlow(EventQueue& events, int flow_id, int src_vm, int dst_vm,
          int src_server, int dst_server, TcpConfig cfg, SendFn send_data,
          SendFn send_ack);

  /// Append `n` bytes to the stream (a message body).
  void app_write(Bytes n);

  /// Entry point for every packet addressed to this flow (data at the
  /// receiver side, ACKs at the sender side).
  void on_packet(const Packet& p);

  void set_on_delivery(DeliverFn fn) { on_delivery_ = std::move(fn); }
  void set_priority(Priority p) { priority_ = p; }
  void set_can_send(CanSendFn fn) { can_send_ = std::move(fn); }
  void set_on_abort(AbortFn fn) { on_abort_ = std::move(fn); }
  void set_metrics(const TransportMetricHooks& m) { metrics_ = m; }

  std::int64_t bytes_written() const { return stream_end_; }
  std::int64_t bytes_delivered() const { return rcv_next_; }
  std::int64_t bytes_acked() const { return snd_una_; }
  const std::vector<TimeNs>& rto_events() const { return rto_events_; }
  const std::vector<TimeNs>& abort_events() const { return abort_events_; }
  int abort_count() const { return static_cast<int>(abort_events_.size()); }
  int flow_id() const { return flow_id_; }
  int src_vm() const { return src_vm_; }
  int dst_vm() const { return dst_vm_; }
  double cwnd_bytes() const { return cwnd_; }

 private:
  friend class EventQueue;  ///< typed-event dispatch

  void try_send();
  void emit_segment(std::int64_t seq, Bytes len, bool retransmit);
  void handle_ack(const Packet& ack);
  void handle_data(const Packet& data);
  void arm_rto();
  void cancel_rto() { rto_armed_ = false; }
  void rto_timer_fired();
  void handle_tsq_retry();
  void on_rto();
  void abort_connection();
  void dctcp_on_ack(std::int64_t newly_acked, bool marked);
  void enter_loss_recovery();

  EventQueue& events_;
  TcpConfig cfg_;
  int flow_id_, src_vm_, dst_vm_, src_server_, dst_server_;
  SendFn send_data_, send_ack_;
  DeliverFn on_delivery_;
  CanSendFn can_send_;
  AbortFn on_abort_;
  Priority priority_ = Priority::kGuaranteed;
  TransportMetricHooks metrics_;

  // Sender.
  std::int64_t stream_end_ = 0;  ///< app bytes written so far
  std::int64_t snd_una_ = 0;
  std::int64_t snd_next_ = 0;
  double cwnd_ = 0;
  double ssthresh_ = 0;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_seq_ = 0;
  TimeNs srtt_{}, rttvar_{}, rto_{};
  bool rto_armed_ = false;
  TimeNs rto_deadline_ {};
  bool rto_event_pending_ = false;
  bool tsq_retry_pending_ = false;
  std::vector<TimeNs> rto_events_;
  std::vector<TimeNs> abort_events_;
  int consecutive_rtos_ = 0;
  TimeNs last_progress_ {};  ///< last time snd_una_ advanced (or fresh data)
  std::uint64_t next_packet_id_ = 1;

  // DCTCP.
  double alpha_ = 0.0;
  std::int64_t dctcp_window_end_ = 0;
  std::int64_t dctcp_acked_ = 0, dctcp_marked_ = 0;
  bool cut_this_window_ = false;

  // Receiver.
  std::int64_t rcv_next_ = 0;
  std::map<std::int64_t, std::int64_t> ooo_;  ///< out-of-order [start,end)
};

}  // namespace silo::sim
