#include "sim/parallel.h"

#include <algorithm>
#include <set>
#include <utility>

namespace silo::sim {

namespace {

/// Union-find with the *smallest member index as root*, so the final
/// island numbering is a pure function of the inputs (never of merge
/// order or memory layout).
struct UnionFind {
  std::vector<int> parent;

  explicit UnionFind(int n) : parent(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (b < a) std::swap(a, b);
    parent[static_cast<std::size_t>(b)] = a;
    return true;
  }
};

}  // namespace

IslandPartition IslandPartition::single(const topology::Topology& topo,
                                        int num_tenants) {
  IslandPartition p;
  p.num_islands = 1;
  p.num_components = 1;
  p.rack_island.assign(static_cast<std::size_t>(topo.num_racks()), 0);
  p.port_island.assign(static_cast<std::size_t>(topo.num_ports()), 0);
  p.tenant_island.assign(static_cast<std::size_t>(num_tenants), 0);
  p.component.assign(1, 0);
  p.component_lookahead.assign(1, kTimeInfinity);
  return p;
}

IslandPartition IslandPartition::build(
    const topology::Topology& topo, TimeNs link_delay,
    const std::vector<std::vector<int>>& tenant_servers) {
  const int num_racks = topo.num_racks();
  const int num_pods = topo.num_pods();
  const int num_tenants = static_cast<int>(tenant_servers.size());

  // 1. Tenant state must be island-local: union every rack a tenant
  //    touches. Per-tenant rack lists, deduplicated and sorted, so the
  //    union sequence is deterministic.
  UnionFind uf(num_racks);
  std::vector<std::vector<int>> tenant_racks(
      static_cast<std::size_t>(num_tenants));
  std::vector<std::vector<int>> tenant_pods(
      static_cast<std::size_t>(num_tenants));
  for (int t = 0; t < num_tenants; ++t) {
    auto& racks = tenant_racks[static_cast<std::size_t>(t)];
    for (int s : tenant_servers[static_cast<std::size_t>(t)])
      racks.push_back(topo.rack_of_server(s));
    std::sort(racks.begin(), racks.end());
    racks.erase(std::unique(racks.begin(), racks.end()), racks.end());
    auto& pods = tenant_pods[static_cast<std::size_t>(t)];
    for (int r : racks) pods.push_back(topo.pod_of_rack(r));
    pods.erase(std::unique(pods.begin(), pods.end()), pods.end());
    for (std::size_t k = 1; k < racks.size(); ++k)
      uf.unite(racks[0], racks[k]);
  }

  // 2. Which rack groups send traffic through each pod's shared up/down
  //    aggregation queues? Only pod-spanning tenants do (intra-pod paths
  //    stay on ToR queues the tenant's own island owns).
  std::vector<std::set<int>> pod_user_roots(
      static_cast<std::size_t>(num_pods));
  for (int t = 0; t < num_tenants; ++t) {
    const auto& pods = tenant_pods[static_cast<std::size_t>(t)];
    if (pods.size() < 2) continue;
    const int root = uf.find(tenant_racks[static_cast<std::size_t>(t)][0]);
    for (int p : pods)
      pod_user_roots[static_cast<std::size_t>(p)].insert(root);
  }

  IslandPartition out;

  // 3. Zero-lookahead edge case: a conservative window cannot advance past
  //    a 0 ns crossing (the horizon formula would pin W to the minimum
  //    next-event time forever — livelock). Merge the would-be neighbors
  //    instead; what cannot be overlapped safely runs sequentially.
  if (link_delay <= TimeNs{0}) {
    for (int p = 0; p < num_pods; ++p) {
      const auto& users = pod_user_roots[static_cast<std::size_t>(p)];
      if (users.size() < 2) continue;
      const int first = *users.begin();
      for (int g : users)
        if (uf.unite(first, g)) ++out.merged_zero_latency;
    }
  }

  // 4. Compact rack-group islands, numbered by smallest rack index.
  out.rack_island.assign(static_cast<std::size_t>(num_racks), -1);
  std::vector<int> root_id(static_cast<std::size_t>(num_racks), -1);
  int next_island = 0;
  for (int r = 0; r < num_racks; ++r) {
    const int root = uf.find(r);
    if (root_id[static_cast<std::size_t>(root)] < 0)
      root_id[static_cast<std::size_t>(root)] = next_island++;
    out.rack_island[static_cast<std::size_t>(r)] =
        root_id[static_cast<std::size_t>(root)];
  }

  out.tenant_island.assign(static_cast<std::size_t>(num_tenants), 0);
  for (int t = 0; t < num_tenants; ++t) {
    const auto& racks = tenant_racks[static_cast<std::size_t>(t)];
    if (!racks.empty())
      out.tenant_island[static_cast<std::size_t>(t)] =
          out.rack_island[static_cast<std::size_t>(racks[0])];
  }

  // 5. Port ownership. Rack-level queues belong to their rack's island;
  //    pod queues shared by >= 2 islands become dedicated single-port
  //    islands (numbered after the rack islands, pods in order, up before
  //    down — again input-determined).
  out.port_island.assign(static_cast<std::size_t>(topo.num_ports()), 0);
  const int num_servers = topo.num_servers();
  for (int s = 0; s < num_servers; ++s) {
    const int isl =
        out.rack_island[static_cast<std::size_t>(topo.rack_of_server(s))];
    out.port_island[static_cast<std::size_t>(topo.server_up(s).value)] = isl;
    out.port_island[static_cast<std::size_t>(topo.server_down(s).value)] = isl;
  }
  for (int r = 0; r < num_racks; ++r) {
    const int isl = out.rack_island[static_cast<std::size_t>(r)];
    out.port_island[static_cast<std::size_t>(topo.rack_up(r).value)] = isl;
    out.port_island[static_cast<std::size_t>(topo.rack_down(r).value)] = isl;
  }
  for (int p = 0; p < num_pods; ++p) {
    const auto& users = pod_user_roots[static_cast<std::size_t>(p)];
    std::set<int> user_islands;
    for (int g : users)
      user_islands.insert(out.rack_island[static_cast<std::size_t>(uf.find(g))]);
    int up_isl;
    int down_isl;
    if (user_islands.size() >= 2) {
      up_isl = next_island++;
      down_isl = next_island++;
    } else if (user_islands.size() == 1) {
      up_isl = down_isl = *user_islands.begin();
    } else {
      up_isl = down_isl = out.rack_island[static_cast<std::size_t>(
          topo.first_rack_of_pod(p))];
    }
    out.port_island[static_cast<std::size_t>(topo.pod_up(p).value)] = up_isl;
    out.port_island[static_cast<std::size_t>(topo.pod_down(p).value)] = down_isl;
  }
  out.num_islands = next_island;

  // 6. Crossing edges: walk every pod-spanning tenant's inter-pod path
  //    shape (ToR up -> pod up -> pod down -> ToR down) and record each
  //    boundary between differently-owned consecutive queues.
  std::set<std::pair<int, int>> edges;
  for (int t = 0; t < num_tenants; ++t) {
    const auto& pods = tenant_pods[static_cast<std::size_t>(t)];
    if (pods.size() < 2) continue;
    const int isl = out.tenant_island[static_cast<std::size_t>(t)];
    for (int ps : pods) {
      for (int pd : pods) {
        if (ps == pd) continue;
        const int seq[4] = {
            isl,
            out.port_island[static_cast<std::size_t>(topo.pod_up(ps).value)],
            out.port_island[static_cast<std::size_t>(topo.pod_down(pd).value)],
            isl};
        for (int k = 0; k + 1 < 4; ++k)
          if (seq[k] != seq[k + 1]) edges.insert({seq[k], seq[k + 1]});
      }
    }
  }
  out.crossing_edges = static_cast<int>(edges.size());

  // 7. Weakly-connected components over the crossing graph; the lookahead
  //    inside a component is the minimum crossing latency (uniform
  //    link_delay here), infinity for isolated islands.
  UnionFind cf(out.num_islands);
  for (const auto& e : edges) cf.unite(e.first, e.second);
  std::vector<int> comp_id(static_cast<std::size_t>(out.num_islands), -1);
  out.component.assign(static_cast<std::size_t>(out.num_islands), 0);
  int next_comp = 0;
  for (int i = 0; i < out.num_islands; ++i) {
    const int root = cf.find(i);
    if (comp_id[static_cast<std::size_t>(root)] < 0)
      comp_id[static_cast<std::size_t>(root)] = next_comp++;
    out.component[static_cast<std::size_t>(i)] =
        comp_id[static_cast<std::size_t>(root)];
  }
  out.num_components = next_comp;
  out.component_lookahead.assign(static_cast<std::size_t>(next_comp),
                                 kTimeInfinity);
  for (const auto& e : edges) {
    const int c = out.component[static_cast<std::size_t>(e.first)];
    if (link_delay < out.component_lookahead[static_cast<std::size_t>(c)])
      out.component_lookahead[static_cast<std::size_t>(c)] = link_delay;
  }
  return out;
}

}  // namespace silo::sim
