// Wire packet of the simulator. Kept a plain value type: queues copy it.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace silo::sim {

inline constexpr Bytes kMss {1460};        ///< TCP payload per full segment
inline constexpr Bytes kHeaderBytes {40};  ///< TCP/IP headers

/// 802.1q priority classes (§4.4): guaranteed tenants ride high priority,
/// best-effort tenants low priority.
enum class Priority : std::uint8_t { kGuaranteed = 0, kBestEffort = 1 };

struct Packet {
  std::uint64_t id = 0;
  int flow_id = -1;
  int src_vm = -1;
  int dst_vm = -1;
  int src_server = -1;
  int dst_server = -1;

  Bytes payload {};     ///< TCP payload bytes carried
  Bytes wire_bytes {};  ///< payload + headers (Ethernet framing added by NIC)

  std::int64_t seq = 0;      ///< first payload byte's sequence number
  std::int64_t ack_seq = 0;  ///< cumulative ACK (valid when is_ack)
  bool is_ack = false;
  bool ecn_marked = false;  ///< CE mark set by a congested port
  bool ecn_echo = false;    ///< receiver echoes CE back to sender (on ACKs)
  bool is_void = false;     ///< pacer filler; first-hop switch discards
  Priority priority = Priority::kGuaranteed;

  TimeNs enqueue_time {};  ///< when the transport emitted it
  std::uint8_t hop = 0;     ///< next index into the precomputed path
  /// Bytes left in the message when this packet was emitted — pFabric's
  /// priority (smaller = more urgent). Maintained for every scheme;
  /// only pFabric-mode ports consult it.
  std::int64_t remaining = 0;
};

}  // namespace silo::sim
