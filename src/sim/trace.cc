#include "sim/trace.h"

#include <algorithm>

namespace silo::sim {

PortTracer::PortTracer(ClusterSim& cluster, topology::PortId port,
                       TimeNs period)
    : cluster_(cluster), port_(port), period_(period) {}

void PortTracer::start(TimeNs until) {
  until_ = until;
  sample();
}

void PortTracer::sample() {
  samples_.push_back(
      {cluster_.port_events(port_).now(), cluster_.fabric().port(port_).queued_bytes()});
  if (cluster_.port_events(port_).now() + period_ <= until_) {
    // Typed raw event: periodic sampling stays off the std::function path.
    cluster_.port_events(port_).raw_after(
        period_,
        [](void* self, std::uint32_t) { static_cast<PortTracer*>(self)->sample(); },
        this);
  }
}

Bytes PortTracer::max_queued() const {
  Bytes mx {};
  for (const auto& s : samples_) mx = std::max(mx, s.queued);
  return mx;
}

double PortTracer::mean_queued() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (const auto& s : samples_) sum += static_cast<double>(s.queued);
  return sum / static_cast<double>(samples_.size());
}

double PortTracer::busy_fraction() const {
  if (samples_.empty()) return 0.0;
  int busy = 0;
  for (const auto& s : samples_) busy += s.queued > Bytes{0};
  return static_cast<double>(busy) / static_cast<double>(samples_.size());
}

FabricTracer::FabricTracer(ClusterSim& cluster, TimeNs period) {
  tracers_.reserve(static_cast<std::size_t>(cluster.topo().num_ports()));
  for (int p = 0; p < cluster.topo().num_ports(); ++p)
    tracers_.emplace_back(cluster, topology::PortId{p}, period);
}

void FabricTracer::start(TimeNs until) {
  for (auto& t : tracers_) t.start(until);
}

std::vector<std::pair<int, Bytes>> FabricTracer::hottest_ports(
    std::size_t k) const {
  std::vector<std::pair<int, Bytes>> all;
  all.reserve(tracers_.size());
  for (std::size_t p = 0; p < tracers_.size(); ++p)
    all.emplace_back(static_cast<int>(p), tracers_[p].max_queued());
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (all.size() > k) all.resize(k);
  return all;
}

Bytes FabricTracer::max_queued_anywhere() const {
  Bytes mx {};
  for (const auto& t : tracers_) mx = std::max(mx, t.max_queued());
  return mx;
}

}  // namespace silo::sim
