#include "sim/port.h"

#include <algorithm>

namespace silo::sim {

void SwitchPortSim::maybe_mark(Packet& p) {
  if (cfg_.phantom_queue) {
    // HULL: a virtual queue drains at a fraction of line rate; marking off
    // it keeps the *real* queue near-empty at the cost of bandwidth headroom.
    const TimeNs now = events_.now();
    const double drained = cfg_.rate.bps() * cfg_.phantom_drain / 8e9 *
                           static_cast<double>(now - phantom_updated_);
    phantom_bytes_ = std::max(0.0, phantom_bytes_ - drained);
    phantom_updated_ = now;
    phantom_bytes_ += static_cast<double>(p.wire_bytes);
    if (phantom_bytes_ > static_cast<double>(cfg_.phantom_threshold)) {
      p.ecn_marked = true;
      ++stats_.ecn_marks;
      metrics_.ecn_marks.inc();
    }
    return;
  }
  if (cfg_.ecn_threshold > Bytes{0} && queued_bytes_ > cfg_.ecn_threshold) {
    p.ecn_marked = true;
    ++stats_.ecn_marks;
    metrics_.ecn_marks.inc();
  }
}

void SwitchPortSim::enqueue_pfabric(PacketHandle h) {
  PacketPool& pool = events_.pool();
  const Packet& p = pool.get(h);
  // Buffer full: evict the queued packet with the most remaining bytes if
  // the newcomer is more urgent; otherwise drop the newcomer. The set is
  // ordered by (remaining, arrival), so the victim — earliest arrival among
  // the largest remaining — is found with one lower_bound from the back.
  while (!pfabric_queue_.empty() &&
         queued_bytes_ + p.wire_bytes > cfg_.buffer) {
    const std::int64_t worst_remaining = std::prev(pfabric_queue_.end())->remaining;
    if (worst_remaining <= p.remaining) {
      ++stats_.drops;
      metrics_.drops.inc();
      record_flight(events_, p, obs::FlightEventType::kDropped, location_);
      pool.free(h);
      return;
    }
    const auto worst =
        pfabric_queue_.lower_bound(PfEntry{worst_remaining, 0, kNullPacket});
    queued_bytes_ -= pool.get(worst->handle).wire_bytes;
    audit_leave(pool.get(worst->handle).wire_bytes);
    ++stats_.drops;
    metrics_.drops.inc();
    record_flight(events_, pool.get(worst->handle),
                  obs::FlightEventType::kDropped, location_);
    pool.free(worst->handle);
    pfabric_queue_.erase(worst);
  }
  if (queued_bytes_ + p.wire_bytes > cfg_.buffer) {
    ++stats_.drops;  // alone it exceeds the buffer
    metrics_.drops.inc();
    record_flight(events_, p, obs::FlightEventType::kDropped, location_);
    pool.free(h);
    return;
  }
  queued_bytes_ += p.wire_bytes;
  audit_accept(p.wire_bytes);
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  metrics_.peak_queue_bytes.set_max(queued_bytes_.count());
  metrics_.queue_bytes.record(static_cast<double>(queued_bytes_));
  record_flight(events_, p, obs::FlightEventType::kEnqueued, location_);
  pfabric_queue_.insert(PfEntry{p.remaining, pfabric_arrivals_++, h});
  if (!busy_) start_tx();
}

void SwitchPortSim::set_link_up(bool up) {
  if (up == link_up_) return;
  link_up_ = up;
  if (!up) {
    // Queued packets die with the link; the one on the wire (if any) dies
    // at its tx-done. Freeing here, not at restore, keeps the pool's live
    // count honest through the whole outage.
    flush_queues();
  } else if (!busy_) {
    start_tx();  // queues are empty after the flush, but stay consistent
  }
}

void SwitchPortSim::flush_queues() {
  PacketPool& pool = events_.pool();
  for (auto& q : queue_) {
    for (const PacketHandle h : q) {
      ++stats_.fault_drops;
      metrics_.fault_drops.inc();
      audit_leave(pool.get(h).wire_bytes);
      record_flight(events_, pool.get(h), obs::FlightEventType::kDropped,
                    location_, /*fault=*/true);
      pool.free(h);
    }
    q.clear();
  }
  for (const auto& e : pfabric_queue_) {
    ++stats_.fault_drops;
    metrics_.fault_drops.inc();
    audit_leave(pool.get(e.handle).wire_bytes);
    record_flight(events_, pool.get(e.handle), obs::FlightEventType::kDropped,
                  location_, /*fault=*/true);
    pool.free(e.handle);
  }
  pfabric_queue_.clear();
  queued_bytes_ = Bytes{0};
}

void SwitchPortSim::enqueue(PacketHandle h) {
  if (!link_up_) {
    ++stats_.fault_drops;
    metrics_.fault_drops.inc();
    record_flight(events_, events_.pool().get(h),
                  obs::FlightEventType::kDropped, location_, /*fault=*/true);
    events_.pool().free(h);
    return;
  }
  if (loss_rng_ && loss_rng_->uniform() < loss_rate_) {
    ++stats_.fault_drops;
    metrics_.fault_drops.inc();
    record_flight(events_, events_.pool().get(h),
                  obs::FlightEventType::kDropped, location_, /*fault=*/true);
    events_.pool().free(h);
    return;
  }
  if (cfg_.pfabric) {
    enqueue_pfabric(h);
    return;
  }
  Packet& p = events_.pool().get(h);
  if (queued_bytes_ + p.wire_bytes > cfg_.buffer) {
    ++stats_.drops;
    metrics_.drops.inc();
    record_flight(events_, p, obs::FlightEventType::kDropped, location_);
    events_.pool().free(h);
    return;
  }
  maybe_mark(p);
  queued_bytes_ += p.wire_bytes;
  audit_accept(p.wire_bytes);
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  metrics_.peak_queue_bytes.set_max(queued_bytes_.count());
  metrics_.queue_bytes.record(static_cast<double>(queued_bytes_));
  record_flight(events_, p, obs::FlightEventType::kEnqueued, location_);
  queue_[static_cast<int>(p.priority)].push_back(h);
  if (!busy_) start_tx();
}

PacketHandle SwitchPortSim::dequeue_next() {
  if (cfg_.pfabric) {
    if (pfabric_queue_.empty()) return kNullPacket;
    // Head of the set: fewest remaining bytes, earliest arrival among ties.
    const auto best = pfabric_queue_.begin();
    const PacketHandle h = best->handle;
    pfabric_queue_.erase(best);
    return h;
  }
  auto& q = !queue_[0].empty() ? queue_[0] : queue_[1];
  if (q.empty()) return kNullPacket;
  const PacketHandle h = q.front();
  q.pop_front();
  return h;
}

void SwitchPortSim::start_tx() {
  const PacketHandle h = dequeue_next();
  if (h == kNullPacket) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const Packet& p = events_.pool().get(h);
  queued_bytes_ -= p.wire_bytes;
  audit_leave(p.wire_bytes);
  audit_conserved();
  // Everything since the port accepted the packet was queue wait.
  events_.timeline().advance(PacketPool::slot_of(h), events_.now(),
                             obs::Stage::kQueueing);
  record_flight(events_, p, obs::FlightEventType::kDequeued, location_);
  const TimeNs tx = transmission_time(p.wire_bytes + kEthOverhead, cfg_.rate);
  events_.schedule_after(tx, EventKind::kPortTxDone, this, h);
}

void SwitchPortSim::handle_tx_done(PacketHandle h) {
  if (!link_up_) {
    // The link died mid-transmission: the packet never made it across.
    ++stats_.fault_drops;
    metrics_.fault_drops.inc();
    record_flight(events_, events_.pool().get(h),
                  obs::FlightEventType::kDropped, location_, /*fault=*/true);
    events_.pool().free(h);
    start_tx();  // queue was flushed, so this just clears busy_
    return;
  }
  ++stats_.tx_packets;
  stats_.tx_bytes += events_.pool().get(h).wire_bytes.count();
  metrics_.tx_packets.inc();
  metrics_.tx_bytes.inc(events_.pool().get(h).wire_bytes.count());
  events_.timeline().advance(PacketPool::slot_of(h), events_.now(),
                             obs::Stage::kSerialization);
  // Cross-island egress: if a handoff hook claims the packet, it leaves
  // this island here and re-enters the destination island's queue at the
  // same absolute time a local kPortDeliver would have fired.
  if (handoff_ != nullptr &&
      handoff_->offer(*this, h, events_.now() + cfg_.link_delay)) {
    start_tx();
    return;
  }
  // Hand to the next hop after propagation; transmission of the next
  // packet overlaps with propagation of this one.
  events_.schedule_after(cfg_.link_delay, EventKind::kPortDeliver, this, h);
  start_tx();
}

void SwitchPortSim::handle_deliver(PacketHandle h) {
  // Charge the propagation delay to serialization (wire time, not queue).
  events_.timeline().advance(PacketPool::slot_of(h), events_.now(),
                             obs::Stage::kSerialization);
  deliver_(h);  // ownership moves to the next hop
}

}  // namespace silo::sim
