#include "sim/port.h"

#include <algorithm>

namespace silo::sim {

void SwitchPortSim::maybe_mark(Packet& p) {
  if (cfg_.phantom_queue) {
    // HULL: a virtual queue drains at a fraction of line rate; marking off
    // it keeps the *real* queue near-empty at the cost of bandwidth headroom.
    const TimeNs now = events_.now();
    const double drained = cfg_.rate * cfg_.phantom_drain / 8e9 *
                           static_cast<double>(now - phantom_updated_);
    phantom_bytes_ = std::max(0.0, phantom_bytes_ - drained);
    phantom_updated_ = now;
    phantom_bytes_ += static_cast<double>(p.wire_bytes);
    if (phantom_bytes_ > static_cast<double>(cfg_.phantom_threshold)) {
      p.ecn_marked = true;
      ++stats_.ecn_marks;
    }
    return;
  }
  if (cfg_.ecn_threshold > 0 && queued_bytes_ > cfg_.ecn_threshold) {
    p.ecn_marked = true;
    ++stats_.ecn_marks;
  }
}

void SwitchPortSim::enqueue_pfabric(Packet p) {
  // Buffer full: evict the queued packet with the most remaining bytes if
  // the newcomer is more urgent; otherwise drop the newcomer.
  while (queued_bytes_ + p.wire_bytes > cfg_.buffer) {
    auto worst = pfabric_queue_.begin();
    for (auto it = pfabric_queue_.begin(); it != pfabric_queue_.end(); ++it)
      if (it->remaining > worst->remaining) worst = it;
    if (pfabric_queue_.empty() || worst->remaining <= p.remaining) {
      ++stats_.drops;
      return;
    }
    queued_bytes_ -= worst->wire_bytes;
    ++stats_.drops;
    pfabric_queue_.erase(worst);
  }
  queued_bytes_ += p.wire_bytes;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  pfabric_queue_.push_back(std::move(p));
  if (!busy_) start_tx();
}

void SwitchPortSim::enqueue(Packet p) {
  if (cfg_.pfabric) {
    enqueue_pfabric(std::move(p));
    return;
  }
  if (queued_bytes_ + p.wire_bytes > cfg_.buffer) {
    ++stats_.drops;
    return;
  }
  maybe_mark(p);
  queued_bytes_ += p.wire_bytes;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  queue_[static_cast<int>(p.priority)].push_back(std::move(p));
  if (!busy_) start_tx();
}

bool SwitchPortSim::dequeue_next(Packet& out) {
  if (cfg_.pfabric) {
    if (pfabric_queue_.empty()) return false;
    auto best = pfabric_queue_.begin();
    for (auto it = pfabric_queue_.begin(); it != pfabric_queue_.end(); ++it)
      if (it->remaining < best->remaining) best = it;
    out = std::move(*best);
    pfabric_queue_.erase(best);
    return true;
  }
  auto& q = !queue_[0].empty() ? queue_[0] : queue_[1];
  if (q.empty()) return false;
  out = std::move(q.front());
  q.pop_front();
  return true;
}

void SwitchPortSim::start_tx() {
  Packet p;
  if (!dequeue_next(p)) {
    busy_ = false;
    return;
  }
  busy_ = true;
  queued_bytes_ -= p.wire_bytes;
  const TimeNs tx = transmission_time(p.wire_bytes + kEthOverhead, cfg_.rate);
  events_.after(tx, [this, p = std::move(p)]() mutable { tx_done(std::move(p)); });
}

void SwitchPortSim::tx_done(Packet p) {
  ++stats_.tx_packets;
  stats_.tx_bytes += p.wire_bytes;
  // Hand to the next hop after propagation; transmission of the next
  // packet overlaps with propagation of this one.
  events_.after(cfg_.link_delay,
                [this, p = std::move(p)]() mutable { deliver_(std::move(p)); });
  start_tx();
}

}  // namespace silo::sim
