#include "sim/event_queue.h"

#include <algorithm>

#include "sim/cluster.h"
#include "sim/network.h"
#include "sim/parallel.h"
#include "sim/port.h"
#include "sim/transport.h"

namespace silo::sim {

namespace {
bool event_before(TimeNs ta, std::uint64_t sa, TimeNs tb, std::uint64_t sb) {
  return ta != tb ? ta < tb : sa < sb;
}
}  // namespace

void EventQueue::push(const Event& ev) {
  ++size_;
  if (tick_of(ev.time) <= cur_tick_) {
    // Current (or already-passed) tick: joins the sorted due run directly.
    // cur_tick_ can sit ahead of now_ after a run_until peek, so "passed"
    // ticks are possible and ordering is restored by the sorted insert.
    insert_due(ev);
  } else {
    place_in_wheel(ev);
  }
}

void EventQueue::insert_due(const Event& ev) {
  if (due_head_ == due_.size()) {
    due_.clear();
    due_head_ = 0;
    due_.push_back(ev);
    return;
  }
  if (event_before(due_.back().time, due_.back().seq, ev.time, ev.seq)) {
    due_.push_back(ev);  // common case: later than everything pending
    return;
  }
  const auto pos = std::upper_bound(
      due_.begin() + static_cast<std::ptrdiff_t>(due_head_), due_.end(), ev,
      [](const Event& a, const Event& b) {
        return event_before(a.time, a.seq, b.time, b.seq);
      });
  due_.insert(pos, ev);
}

void EventQueue::place_in_wheel(const Event& ev) {
  const std::uint64_t tick = tick_of(ev.time);
  if ((tick >> kSlotBits) == (cur_tick_ >> kSlotBits)) {
    const auto slot = static_cast<std::uint32_t>(tick & kSlotMask);
    wheel_[0][slot].push_back(ev);
    occupied_[0][slot >> 6] |= 1ull << (slot & 63);
  } else if ((tick >> (2 * kSlotBits)) == (cur_tick_ >> (2 * kSlotBits))) {
    const auto slot = static_cast<std::uint32_t>((tick >> kSlotBits) & kSlotMask);
    wheel_[1][slot].push_back(ev);
    occupied_[1][slot >> 6] |= 1ull << (slot & 63);
  } else {
    overflow_.push(ev);
  }
}

int EventQueue::find_slot(const std::uint64_t* bits, int from) {
  if (from >= kSlots) return -1;
  int word = from >> 6;
  std::uint64_t w = bits[word] & (~0ull << (from & 63));
  for (;;) {
    if (w != 0)
      return (word << 6) + static_cast<int>(__builtin_ctzll(w));
    if (++word >= kSlots / 64) return -1;
    w = bits[word];
  }
}

void EventQueue::take_slot(int level, std::uint32_t slot) {
  occupied_[level][slot >> 6] &= ~(1ull << (slot & 63));
  if (level == 0) {
    // Becomes the due run: sort by (time, seq) — slot order is insertion
    // order, so the sort restores the exact global tie-break contract.
    due_.clear();
    due_head_ = 0;
    due_.swap(wheel_[0][slot]);  // recycles both vectors' capacity
    std::sort(due_.begin(), due_.end(), [](const Event& a, const Event& b) {
      return event_before(a.time, a.seq, b.time, b.seq);
    });
  } else {
    // Cascade one level-1 slot into level 0; cur_tick_ already points at
    // the slot's first tick so every event lands in the level-0 window.
    auto& bucket = wheel_[1][slot];
    for (const Event& ev : bucket) {
      const std::uint64_t tick = tick_of(ev.time);
      const auto s0 = static_cast<std::uint32_t>(tick & kSlotMask);
      wheel_[0][s0].push_back(ev);
      occupied_[0][s0 >> 6] |= 1ull << (s0 & 63);
    }
    bucket.clear();
  }
}

bool EventQueue::advance() {
  for (;;) {
    // Next occupied level-0 slot in the current 256-tick group.
    const int s0 = find_slot(occupied_[0],
                             static_cast<int>(cur_tick_ & kSlotMask));
    if (s0 >= 0) {
      cur_tick_ = (cur_tick_ & ~kSlotMask) | static_cast<std::uint64_t>(s0);
      take_slot(0, static_cast<std::uint32_t>(s0));
      return true;
    }
    // Level 0 exhausted: cascade the next occupied level-1 slot of the
    // current 65536-tick group.
    const std::uint64_t group = cur_tick_ >> kSlotBits;
    const int s1 =
        find_slot(occupied_[1], static_cast<int>(group & kSlotMask) + 1);
    if (s1 >= 0) {
      cur_tick_ = ((group & ~kSlotMask) | static_cast<std::uint64_t>(s1))
                  << kSlotBits;
      take_slot(1, static_cast<std::uint32_t>(s1));
      continue;
    }
    // Both wheels empty: jump to the overflow heap's earliest super-group
    // and drain that whole 16.8 ms window into the wheels.
    if (overflow_.empty()) return false;
    const std::uint64_t super = tick_of(overflow_.top().time) >> (2 * kSlotBits);
    cur_tick_ = super << (2 * kSlotBits);
    while (!overflow_.empty() &&
           (tick_of(overflow_.top().time) >> (2 * kSlotBits)) == super) {
      place_in_wheel(overflow_.top());
      overflow_.pop();
    }
  }
}

bool EventQueue::prepare_next() {
  if (due_head_ != due_.size()) return true;
  if (size_ == 0) return false;
  return advance();
}

void EventQueue::run_callback(const Event& ev) {
  // Free the slot before invoking so a reentrant at() can recycle it.
  Callback cb = std::move(cb_slots_[ev.arg]);
  cb_slots_[ev.arg] = nullptr;
  cb_free_.push_back(ev.arg);
  cb();
}

void EventQueue::dispatch(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kCallback:
      run_callback(ev);
      break;
    case EventKind::kRawCall:
      reinterpret_cast<RawFn>(ev.aux)(ev.target, ev.arg);
      break;
    case EventKind::kPortTxDone:
      static_cast<SwitchPortSim*>(ev.target)->handle_tx_done(ev.arg);
      break;
    case EventKind::kPortDeliver:
      static_cast<SwitchPortSim*>(ev.target)->handle_deliver(ev.arg);
      break;
    case EventKind::kHostRelease:
      static_cast<Host*>(ev.target)->handle_release(
          static_cast<int>(ev.arg), ev.aux);
      break;
    case EventKind::kHostBuild:
      static_cast<Host*>(ev.target)->handle_build(ev.aux);
      break;
    case EventKind::kHostBatchEnd:
      static_cast<Host*>(ev.target)->handle_batch_end();
      break;
    case EventKind::kHostIngress:
      static_cast<Host*>(ev.target)->handle_ingress(ev.arg);
      break;
    case EventKind::kFlowRtoTimer:
      static_cast<TcpFlow*>(ev.target)->rto_timer_fired();
      break;
    case EventKind::kFlowTsqRetry:
      static_cast<TcpFlow*>(ev.target)->handle_tsq_retry();
      break;
    case EventKind::kClusterRebalance:
      static_cast<ClusterSim*>(ev.target)->rebalance_tenant(
          static_cast<int>(ev.arg));
      break;
    case EventKind::kClusterLeaseEpoch:
      static_cast<ClusterSim*>(ev.target)->lease_epoch_tick();
      break;
    case EventKind::kIslandArrival:
      static_cast<IslandGateway*>(ev.target)->handle_arrival(ev.arg);
      break;
  }
}

}  // namespace silo::sim
