// Fabric (switch ports wired per the topology) and Host (per-server NIC
// with Silo pacing) of the packet-level simulator.
//
// Packets travel as PacketPool handles; the NIC batch slot id doubles as
// the packet handle, so there is no per-packet map or allocation between
// the pacer queues and the wire.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "pacer/paced_nic.h"
#include "pacer/vm_pacer.h"
#include "sim/event_queue.h"
#include "sim/packet.h"
#include "sim/packet_pool.h"
#include "sim/port.h"
#include "topology/topology.h"

namespace silo::sim {

/// All switch egress queues of the datacenter, addressed by topology
/// PortId. Routes packets hop by hop along the tree path (computed
/// allocation-free per hop via Topology::path_span — pure, so islands
/// share nothing through routing).
///
/// The fabric can be island-sharded: each port is driven by its island's
/// EventQueue, and routing stays island-local because cross-island
/// transmissions are intercepted at the egress port (PortTxHandoff) before
/// they would hop queues. The single-queue constructor is the sequential
/// mode and behaves exactly as before.
class Fabric {
 public:
  /// Receives ownership of the delivered handle.
  using DeliverFn = std::function<void(PacketHandle)>;
  /// Island-aware delivery: island + queue that ran the final hop.
  using IslandDeliverFn = std::function<void(int, EventQueue&, PacketHandle)>;

  /// Sequential fabric: every port on one queue (island 0).
  Fabric(EventQueue& events, const topology::Topology& topo,
         const PortConfig& port_template);

  /// Island-sharded fabric: port i is driven by
  /// *island_queues[port_island[i]].
  Fabric(const topology::Topology& topo, const PortConfig& port_template,
         std::vector<int> port_island,
         const std::vector<EventQueue*>& island_queues);

  void set_host_deliver(DeliverFn fn) {
    deliver_ = [f = std::move(fn)](int, EventQueue&, PacketHandle h) { f(h); };
  }
  void set_island_deliver(IslandDeliverFn fn) { deliver_ = std::move(fn); }

  /// Entry point for packets leaving a host NIC (the server->ToR wire has
  /// already been simulated by the NIC). Void packets die here: the first
  /// hop switch discards them by MAC address. Takes ownership.
  void ingress_from_host(PacketHandle h);  ///< sequential mode (island 0)
  void ingress_from_host(int island, EventQueue& q, PacketHandle h);

  /// Resume routing for a packet that just crossed into `island` through
  /// the window protocol's mailbox (IslandGateway arrival).
  void advance_from_gateway(int island, EventQueue& q, PacketHandle h) {
    advance(island, q, h);
  }

  SwitchPortSim& port(topology::PortId id) { return *ports_[id.value]; }
  const SwitchPortSim& port(topology::PortId id) const {
    return *ports_[id.value];
  }
  int island_of_port(topology::PortId id) const {
    return port_island_[static_cast<std::size_t>(id.value)];
  }

  std::int64_t total_drops() const;
  std::int64_t total_ecn_marks() const;
  std::int64_t total_fault_drops() const;

 private:
  void advance(int island, EventQueue& q, PacketHandle h);

  const topology::Topology& topo_;
  EventQueue* events_ = nullptr;  ///< sequential default queue (else null)
  std::vector<int> port_island_;
  std::vector<std::unique_ptr<SwitchPortSim>> ports_;
  IslandDeliverFn deliver_;
};

/// Registry handles a host updates (shared across all hosts of a cluster;
/// default handles are null sinks — see obs::MetricsRegistry).
struct HostMetricHooks {
  obs::Counter data_packets;  ///< data frames the NIC put on the wire
  obs::Counter void_packets;  ///< pacer filler frames
  obs::Counter batches;       ///< NIC batches built (DMA interrupts)
  obs::Counter throttled;     ///< packets held back by pacer tokens
  obs::Counter pacer_drops;   ///< finite pacer-queue overflow
  obs::Counter fault_drops;   ///< packets killed by a crashed server
};

/// One physical server: a NIC (optionally doing Paced IO Batching with
/// void packets) plus the per-VM pacers of the tenants hosted here.
class Host {
 public:
  struct Config {
    RateBps link_rate = 10 * kGbps;
    pacer::NicMode nic_mode = pacer::NicMode::kBatched;
    TimeNs batch_window = 50 * kUsec;
    TimeNs tor_link_delay {500};    ///< NIC -> ToR propagation
    TimeNs loopback_delay = 5 * kUsec;  ///< intra-server VM-to-VM delay
    /// Virtual-switch forwarding capacity for colocated VM pairs — memory
    /// bandwidth, not the wire, but decidedly finite.
    RateBps loopback_rate = 20 * kGbps;
    Bytes loopback_buffer = 2 * kMB;
    /// Finite per-destination pacer queue, like the prototype driver's
    /// token-bucket queues: overflow is dropped and TCP reacts to loss
    /// instead of to unbounded stamp delays.
    Bytes pacer_queue_cap = 512 * kKB;
    /// Island this server belongs to (parallel mode; 0 == sequential).
    int island = 0;
  };

  Host(EventQueue& events, Fabric& fabric, int server_id, const Config& cfg);

  int server_id() const { return server_id_; }

  /// Fault injection: crash / restore this server. Crashing frees every
  /// packet parked in the pacer queues, the NIC batch queue and the
  /// loopback vswitch (counted in fault_drops); while down, all packets
  /// sent by or addressed to this host are dropped.
  void set_up(bool up);
  bool up() const { return up_; }

  /// Drop a packet because this host is dead (delivery to a crashed
  /// server). Takes ownership and frees the handle.
  void drop_faulted(PacketHandle h);

  std::int64_t fault_drops() const { return fault_drops_; }

  /// Register the pacer enforcing a hosted VM's guarantees (Silo/Oktopus
  /// schemes). Unpaced VMs simply have no entry.
  void attach_pacer(int global_vm, pacer::VmPacer* pacer) {
    pacers_[global_vm] = pacer;
  }

  /// Hypervisor side of the incremental config protocol: fold a controller
  /// delta into this server's applied pacer-config table.
  PacerApplyResult apply_pacer_config(const PacerConfigDelta& delta) {
    return nic_.apply_config(delta);
  }
  const PacerConfigTable& pacer_config() const { return nic_.config(); }
  /// Clock-driven lease expiry on this server (docs/WORKCONSERVING.md).
  std::vector<PacerLeaseRecord> advance_lease_epoch(std::uint64_t epoch) {
    return nic_.advance_lease_epoch(epoch);
  }

  /// Inject a transport packet originating at a VM on this server.
  /// Takes ownership of the handle.
  void send(PacketHandle h);

  /// Delivery callback to the upper layer (cluster flow dispatch) for
  /// intra-server traffic.
  void set_local_deliver(Fabric::DeliverFn fn) {
    local_deliver_ = std::move(fn);
  }

  const pacer::BatchStats& nic_stats() const { return nic_.stats(); }
  std::int64_t pacer_drops() const { return pacer_drops_; }

  /// Attach registry handles; `loopback` hooks instrument the vswitch port.
  void set_metrics(const HostMetricHooks& m, const PortMetricHooks& loopback) {
    metrics_ = m;
    loopback_->set_metrics(loopback);
  }

  /// Estimated wait a `bytes` packet from `src_vm` to `dst_vm` would see
  /// in the pacer right now (0 for unpaced VMs) — the TSQ-style
  /// backpressure signal transports poll before emitting.
  TimeNs pacer_delay(TimeNs now, int src_vm, int dst_vm, Bytes bytes);

 private:
  friend class EventQueue;  ///< typed-event dispatch

  // Paced transmission path: packets wait in per-destination queues and a
  // single scheduler releases them in conformance order — charging the
  // shared {B, S} bucket in *release* order keeps it work-conserving
  // across destinations (per-flow future stamping would serialize them).
  struct DestQueue {
    std::deque<PacketHandle> q;
    Bytes bytes {};
  };
  struct VmTx {
    std::map<int, DestQueue> dests;
    bool release_scheduled = false;
    TimeNs scheduled_at {};
    std::uint64_t generation = 0;
    int last_served = -1;  ///< round-robin position for conformance ties
  };

  void kick();
  void run_batch();
  void schedule_release(int vm);
  void handle_release(int vm, std::uint64_t generation);
  void handle_build(std::uint64_t generation);
  void handle_batch_end();
  void handle_ingress(PacketHandle h);
  void hand_to_nic(PacketHandle h, TimeNs release);

  EventQueue& events_;
  Fabric& fabric_;
  int server_id_;
  Config cfg_;
  pacer::PacedNic nic_;
  std::unique_ptr<SwitchPortSim> loopback_;
  std::map<int, pacer::VmPacer*> pacers_;
  std::map<int, VmTx> tx_;
  std::int64_t pacer_drops_ = 0;
  std::int64_t fault_drops_ = 0;
  HostMetricHooks metrics_;
  bool up_ = true;
  bool transmitting_ = false;
  bool build_scheduled_ = false;
  TimeNs scheduled_start_ {};
  std::uint64_t build_generation_ = 0;
  Fabric::DeliverFn local_deliver_;
};

}  // namespace silo::sim
