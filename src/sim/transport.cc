#include "sim/transport.h"

#include <algorithm>

namespace silo::sim {

TcpFlow::TcpFlow(EventQueue& events, int flow_id, int src_vm, int dst_vm,
                 int src_server, int dst_server, TcpConfig cfg,
                 SendFn send_data, SendFn send_ack)
    : events_(events),
      cfg_(cfg),
      flow_id_(flow_id),
      src_vm_(src_vm),
      dst_vm_(dst_vm),
      src_server_(src_server),
      dst_server_(dst_server),
      send_data_(std::move(send_data)),
      send_ack_(std::move(send_ack)) {
  cwnd_ = cfg.init_cwnd_pkts * static_cast<double>(cfg.mss);
  ssthresh_ = cfg.max_cwnd_pkts * static_cast<double>(cfg.mss);
  rto_ = cfg.min_rto;
}

void TcpFlow::app_write(Bytes n) {
  // Fresh data on an idle stream starts a new progress epoch, so a long
  // quiet period can never trip the connection deadline by itself.
  if (snd_una_ >= stream_end_) last_progress_ = events_.now();
  stream_end_ += n.count();
  try_send();
}

void TcpFlow::try_send() {
  const auto cwnd_cap = static_cast<std::int64_t>(
      std::min(cwnd_, cfg_.max_cwnd_pkts * static_cast<double>(cfg_.mss)));
  while (snd_next_ < stream_end_) {
    const std::int64_t in_flight = snd_next_ - snd_una_;
    const Bytes len{
        std::min<std::int64_t>(cfg_.mss.count(), stream_end_ - snd_next_)};
    if (in_flight + len.count() > cwnd_cap) break;
    if (can_send_ && !can_send_(dst_vm_, len)) {
      // Pacer backpressure. ACKs usually re-trigger sending, but a flow
      // blocked with nothing outstanding would never hear one — poll.
      if (!tsq_retry_pending_) {
        tsq_retry_pending_ = true;
        events_.schedule_after(250 * kUsec, EventKind::kFlowTsqRetry, this);
      }
      break;
    }
    emit_segment(snd_next_, len, false);
    snd_next_ += len.count();
  }
  if (snd_una_ < snd_next_ && !rto_armed_) arm_rto();
}

void TcpFlow::handle_tsq_retry() {
  tsq_retry_pending_ = false;
  try_send();
}

void TcpFlow::emit_segment(std::int64_t seq, Bytes len, bool retransmit) {
  const PacketHandle h = events_.pool().alloc();
  Packet& p = events_.pool().get(h);
  p.id = next_packet_id_++;
  p.flow_id = flow_id_;
  p.src_vm = src_vm_;
  p.dst_vm = dst_vm_;
  p.src_server = src_server_;
  p.dst_server = dst_server_;
  p.payload = len;
  p.wire_bytes = len + kHeaderBytes;
  p.seq = seq;
  p.enqueue_time = events_.now();
  p.priority = priority_;
  p.remaining = stream_end_ - seq;  // pFabric urgency
  metrics_.segments.inc();
  if (retransmit) metrics_.retransmits.inc();
  events_.timeline().on_emit(PacketPool::slot_of(h), events_.now(),
                              retransmit);
  send_data_(h);
}

void TcpFlow::on_packet(const Packet& p) {
  if (p.is_ack)
    handle_ack(p);
  else
    handle_data(p);
}

void TcpFlow::handle_data(const Packet& p) {
  const std::int64_t start = p.seq;
  const std::int64_t end = p.seq + p.payload.count();
  // `p` may live in the pool arena; copy what the ACK echoes before the
  // alloc below can grow the arena and invalidate the reference.
  const bool ecn_echo = p.ecn_marked;
  const TimeNs data_ts = p.enqueue_time;
  if (end > rcv_next_) {
    // Merge [start, end) into the reassembly map.
    auto [it, inserted] = ooo_.emplace(start, end);
    if (!inserted) it->second = std::max(it->second, end);
    // Coalesce neighbours.
    if (it != ooo_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= it->first) {
        prev->second = std::max(prev->second, it->second);
        it = ooo_.erase(it);
        it = prev;
      }
    }
    auto next = std::next(it);
    while (next != ooo_.end() && it->second >= next->first) {
      it->second = std::max(it->second, next->second);
      next = ooo_.erase(next);
    }
    // Advance in-order delivery point.
    auto head = ooo_.begin();
    if (head->first <= rcv_next_ && head->second > rcv_next_) {
      rcv_next_ = head->second;
      ooo_.erase(head);
      if (on_delivery_) on_delivery_(rcv_next_);
    }
  }
  // Cumulative ACK, echoing the congestion mark and the data timestamp
  // (timestamp option) for RTT sampling.
  const PacketHandle ah = events_.pool().alloc();
  Packet& ack = events_.pool().get(ah);
  ack.id = next_packet_id_++;
  ack.flow_id = flow_id_;
  ack.is_ack = true;
  ack.src_vm = dst_vm_;
  ack.dst_vm = src_vm_;
  ack.src_server = dst_server_;
  ack.dst_server = src_server_;
  ack.wire_bytes = kHeaderBytes;
  ack.ack_seq = rcv_next_;
  ack.ecn_echo = ecn_echo;
  ack.enqueue_time = data_ts;
  ack.priority = priority_;
  // Reset the recycled handle's stage entry so the ACK never inherits the
  // previous occupant's timeline (ACK stages are tracked but unused).
  events_.timeline().on_emit(PacketPool::slot_of(ah), events_.now(), false);
  send_ack_(ah);
}

void TcpFlow::arm_rto() {
  // A single outstanding timer event chases a movable deadline: re-arming
  // on every ACK just slides the deadline instead of flooding the event
  // queue with stale timers.
  rto_armed_ = true;
  rto_deadline_ = events_.now() + rto_;
  if (!rto_event_pending_) {
    rto_event_pending_ = true;
    events_.schedule(rto_deadline_, EventKind::kFlowRtoTimer, this);
  }
}

void TcpFlow::rto_timer_fired() {
  rto_event_pending_ = false;
  if (!rto_armed_) return;
  if (events_.now() < rto_deadline_) {
    rto_event_pending_ = true;
    events_.schedule(rto_deadline_, EventKind::kFlowRtoTimer, this);
    return;
  }
  on_rto();
}

void TcpFlow::on_rto() {
  rto_armed_ = false;
  if (snd_una_ >= stream_end_) return;  // everything got acked meanwhile
  rto_events_.push_back(events_.now());
  metrics_.rtos.inc();
  ++consecutive_rtos_;
  const bool retries_exhausted = cfg_.max_consecutive_rtos > 0 &&
                                 consecutive_rtos_ >= cfg_.max_consecutive_rtos;
  const bool deadline_passed =
      cfg_.conn_deadline > TimeNs{0} &&
      events_.now() - last_progress_ >= cfg_.conn_deadline;
  if (retries_exhausted || deadline_passed) {
    abort_connection();
    return;
  }
  ssthresh_ = std::max((snd_next_ - snd_una_) / 2.0,
                       2.0 * static_cast<double>(cfg_.mss));
  cwnd_ = static_cast<double>(cfg_.mss);
  snd_next_ = snd_una_;  // go-back-N
  in_recovery_ = false;
  dupacks_ = 0;
  rto_ = std::min(rto_ * 2, cfg_.max_rto);  // exponential backoff
  try_send();
}

void TcpFlow::abort_connection() {
  // Connection reset: the undelivered tail of the stream is discarded and
  // both endpoints realign on a fresh epoch at stream_end_. Stale packets
  // from before the reset are harmless — old data falls at or below the
  // new rcv_next_ (re-ACKed, not delivered) and old ACKs are below
  // snd_una_. Congestion state restarts as if the flow were new.
  abort_events_.push_back(events_.now());
  metrics_.aborts.inc();
  snd_una_ = snd_next_ = stream_end_;
  rcv_next_ = stream_end_;
  ooo_.clear();
  cwnd_ = cfg_.init_cwnd_pkts * static_cast<double>(cfg_.mss);
  ssthresh_ = cfg_.max_cwnd_pkts * static_cast<double>(cfg_.mss);
  srtt_ = rttvar_ = TimeNs{0};
  rto_ = cfg_.min_rto;
  dupacks_ = 0;
  in_recovery_ = false;
  consecutive_rtos_ = 0;
  last_progress_ = events_.now();
  cancel_rto();
  if (on_abort_) on_abort_();
}

void TcpFlow::dctcp_on_ack(std::int64_t newly_acked, bool marked) {
  dctcp_acked_ += newly_acked;
  if (marked) dctcp_marked_ += newly_acked;
  if (marked && !cut_this_window_) {
    // React once per window, like a fast-retransmit-scale cut scaled by alpha.
    cwnd_ = std::max(static_cast<double>(cfg_.mss), cwnd_ * (1.0 - alpha_ / 2.0));
    ssthresh_ = cwnd_;
    cut_this_window_ = true;
  }
  if (snd_una_ >= dctcp_window_end_) {
    const double f =
        dctcp_acked_ > 0
            ? static_cast<double>(dctcp_marked_) / static_cast<double>(dctcp_acked_)
            : 0.0;
    alpha_ = (1.0 - cfg_.dctcp_g) * alpha_ + cfg_.dctcp_g * f;
    dctcp_acked_ = dctcp_marked_ = 0;
    dctcp_window_end_ = snd_next_;
    cut_this_window_ = false;
  }
}

void TcpFlow::enter_loss_recovery() {
  ssthresh_ = std::max((snd_next_ - snd_una_) / 2.0,
                       2.0 * static_cast<double>(cfg_.mss));
  cwnd_ = ssthresh_;
  in_recovery_ = true;
  recover_seq_ = snd_next_;
  // Classic fast retransmit of the missing head segment; partial ACKs
  // then retransmit subsequent holes (NewReno).
  const Bytes len{
      std::min<std::int64_t>(cfg_.mss.count(), stream_end_ - snd_una_)};
  if (len > Bytes{0}) emit_segment(snd_una_, len, true);
}

void TcpFlow::handle_ack(const Packet& ack) {
  metrics_.acks.inc();
  if (ack.ack_seq > snd_una_) {
    const std::int64_t newly = ack.ack_seq - snd_una_;
    snd_una_ = ack.ack_seq;
    dupacks_ = 0;
    consecutive_rtos_ = 0;
    last_progress_ = events_.now();
    if (in_recovery_) {
      if (snd_una_ >= recover_seq_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;  // deflate after recovery
      } else {
        // NewReno partial ACK: retransmit the next hole immediately.
        const Bytes len{
            std::min<std::int64_t>(cfg_.mss.count(), stream_end_ - snd_una_)};
        if (len > Bytes{0}) emit_segment(snd_una_, len, true);
      }
    }

    // RTT sample from the echoed timestamp.
    const TimeNs rtt = events_.now() - ack.enqueue_time;
    if (rtt > TimeNs{0}) {
      if (srtt_ == TimeNs{0}) {
        srtt_ = rtt;
        rttvar_ = rtt / 2;
      } else {
        const TimeNs err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
        rttvar_ = (3 * rttvar_ + err) / 4;
        srtt_ = (7 * srtt_ + rtt) / 8;
      }
      rto_ = std::clamp(srtt_ + 4 * rttvar_, cfg_.min_rto, cfg_.max_rto);
    }

    if (cfg_.dctcp) dctcp_on_ack(newly, ack.ecn_echo);

    if (!in_recovery_) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(newly);  // slow start
      } else {
        cwnd_ += static_cast<double>(cfg_.mss) * static_cast<double>(newly) /
                 cwnd_;  // congestion avoidance
      }
      cwnd_ = std::min(cwnd_, cfg_.max_cwnd_pkts * static_cast<double>(cfg_.mss));
    }

    if (snd_una_ >= snd_next_) {
      cancel_rto();
      if (snd_una_ < stream_end_) try_send();
    } else {
      arm_rto();  // restart for remaining outstanding data
    }
    try_send();
  } else if (snd_next_ > snd_una_) {
    // Duplicate ACK with data outstanding.
    if (cfg_.dctcp) dctcp_on_ack(0, ack.ecn_echo);
    ++dupacks_;
    if (dupacks_ == 3 && !in_recovery_) {
      enter_loss_recovery();
    } else if (in_recovery_) {
      // Reno window inflation: each dupack signals a departed packet,
      // letting new data keep the pipe full during recovery.
      cwnd_ += static_cast<double>(cfg_.mss);
      try_send();
    }
  }
}

}  // namespace silo::sim
