// Telemetry for the packet simulator: periodic sampling of switch-port
// queues and host pacers into time series — the instrumentation an
// ns2-style evaluation uses to show queue dynamics (e.g. buffer occupancy
// during a synchronized burst, or that Silo's bounds actually hold
// moment to moment, not just at the endpoints).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/cluster.h"

namespace silo::sim {

struct QueueSample {
  TimeNs at {};
  Bytes queued {};
};

/// Samples one port's queue occupancy on a fixed period.
class PortTracer {
 public:
  PortTracer(ClusterSim& cluster, topology::PortId port,
             TimeNs period = 10 * kUsec);

  /// Begin sampling until `until` (inclusive of the first sample at now).
  void start(TimeNs until);

  const std::vector<QueueSample>& samples() const { return samples_; }
  topology::PortId port() const { return port_; }

  Bytes max_queued() const;
  double mean_queued() const;
  /// Fraction of samples with a non-empty queue.
  double busy_fraction() const;

 private:
  void sample();

  ClusterSim& cluster_;
  topology::PortId port_;
  TimeNs period_;
  TimeNs until_ {};
  std::vector<QueueSample> samples_;
};

/// Traces every port of the fabric and reports the worst offenders —
/// used to verify that no admitted workload ever approaches buffer
/// overflow under Silo, and to find the hot ports under baselines.
class FabricTracer {
 public:
  FabricTracer(ClusterSim& cluster, TimeNs period = 20 * kUsec);

  void start(TimeNs until);

  /// (port id, max queued bytes), sorted descending by occupancy.
  std::vector<std::pair<int, Bytes>> hottest_ports(std::size_t k = 5) const;

  /// The single worst queue occupancy observed anywhere in the fabric.
  Bytes max_queued_anywhere() const;

  const PortTracer& tracer(int port) const { return tracers_.at(port); }

 private:
  std::vector<PortTracer> tracers_;
};

}  // namespace silo::sim
