// Discrete-event engine for the packet-level simulator (the repository's
// ns2 stand-in). Deterministic: ties in time break by insertion order.
//
// The scheduler is a two-level hashed hierarchical timing wheel (256 ns
// ticks, 256 slots per level -> ~65 us level-0 span, ~16.8 ms level-1 span)
// with a small binary-heap overflow for far-future events (RTO timers,
// control-plane periodics). Events are typed POD records dispatched through
// a switch on EventKind — no virtual call, no std::function, and no heap
// allocation anywhere on the per-packet path. Generic std::function
// callbacks remain available for cold control-plane work (tests, drivers'
// response closures); they ride the same wheel via a recycled slot table.
//
// The engine also owns the PacketPool: every component that can schedule
// events can reach the packet arena through it, so packets travel as 4-byte
// handles instead of 80-byte structs captured in closures.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/packet_timeline.h"
#include "sim/packet_pool.h"
#include "util/units.h"

namespace silo::sim {

class SwitchPortSim;
class Host;
class TcpFlow;
class ClusterSim;
class IslandGateway;

/// The simulator's actual event kinds. Hot per-packet kinds carry a packet
/// handle; control kinds carry small integers. kCallback/kRawCall cover
/// everything else.
enum class EventKind : std::uint8_t {
  kCallback,          ///< std::function slot (arg = slot index)
  kRawCall,           ///< captureless fn(void* ctx, uint32 arg); fn in aux
  kPortTxDone,        ///< target SwitchPortSim, arg = packet handle
  kPortDeliver,       ///< target SwitchPortSim, arg = packet handle
  kHostRelease,       ///< target Host, arg = vm, aux = generation
  kHostBuild,         ///< target Host, aux = generation
  kHostBatchEnd,      ///< target Host
  kHostIngress,       ///< target Host, arg = packet handle
  kFlowRtoTimer,      ///< target TcpFlow
  kFlowTsqRetry,      ///< target TcpFlow
  kClusterRebalance,  ///< target ClusterSim, arg = tenant
  kClusterLeaseEpoch, ///< target ClusterSim (headroom-lender epoch tick)
  kIslandArrival,     ///< target IslandGateway, arg = packet handle
                      ///< (cross-island handoff re-entering this island)
};

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using RawFn = void (*)(void* ctx, std::uint32_t arg);

  TimeNs now() const { return now_; }

  PacketPool& pool() { return pool_; }
  const PacketPool& pool() const { return pool_; }

  /// Per-packet stage accounting (latency-breakdown attribution), keyed by
  /// pool handle. Lives here so every component holding the event queue can
  /// reach it without extra plumbing. Always on; pure stores, no branches.
  obs::PacketTimeline& timeline() { return timeline_; }
  const obs::PacketTimeline& timeline() const { return timeline_; }

  /// Optional flight recorder; components check for null before recording.
  /// Owned by the facade (ClusterSim) or the test that enables it.
  void set_flight_recorder(obs::FlightRecorder* r) { recorder_ = r; }
  obs::FlightRecorder* flight_recorder() { return recorder_; }

  /// Schedule a typed event at absolute time `t` (clamped to >= now).
  void schedule(TimeNs t, EventKind kind, void* target, std::uint32_t arg = 0,
                std::uint64_t aux = 0) {
    push(make_event(t, kind, target, arg, aux));
  }
  void schedule_after(TimeNs delay, EventKind kind, void* target,
                      std::uint32_t arg = 0, std::uint64_t aux = 0) {
    schedule(now_ + delay, kind, target, arg, aux);
  }

  /// Schedule a captureless function + context pointer: typed dispatch for
  /// components outside the sim layer (workload arrivals, tracers).
  void raw_at(TimeNs t, RawFn fn, void* ctx, std::uint32_t arg = 0) {
    push(make_event(t, EventKind::kRawCall, ctx, arg,
                    reinterpret_cast<std::uint64_t>(fn)));
  }
  void raw_after(TimeNs delay, RawFn fn, void* ctx, std::uint32_t arg = 0) {
    raw_at(now_ + delay, fn, ctx, arg);
  }

  /// Schedule `cb` at absolute time `t` (>= now). Cold path: the callback
  /// object lives in a recycled slot table.
  void at(TimeNs t, Callback cb) {
    std::uint32_t slot;
    if (!cb_free_.empty()) {
      slot = cb_free_.back();
      cb_free_.pop_back();
      cb_slots_[slot] = std::move(cb);
    } else {
      slot = static_cast<std::uint32_t>(cb_slots_.size());
      cb_slots_.push_back(std::move(cb));
    }
    ++callback_events_;
    push(make_event(t, EventKind::kCallback, nullptr, slot, 0));
  }

  /// Schedule `cb` after a delay.
  void after(TimeNs delay, Callback cb) { at(now_ + delay, std::move(cb)); }

  /// Timestamp of the earliest pending event without dispatching it, or
  /// empty when the queue is idle. The conservative window protocol reads
  /// every island's next-event time to derive safe horizons. Mutates wheel
  /// cursors (cascades slots into the due run) but never the event set —
  /// owner-thread-only, like every other member.
  std::optional<TimeNs> peek_next_time() {
    if (!prepare_next()) return std::nullopt;
    return due_[due_head_].time;
  }

  bool empty() const { return size_ == 0; }
  std::size_t pending() const { return size_; }
  std::uint64_t processed() const { return processed_; }
  /// std::function events ever scheduled — a hot path regression detector:
  /// this must not grow with per-packet work.
  std::uint64_t callback_events() const { return callback_events_; }

  /// Run the earliest event; returns false when none remain.
  bool step() {
    if (!prepare_next()) return false;
    const Event ev = due_[due_head_++];  // copy: dispatch may grow due_
    audit_monotonic(ev.time);
    now_ = ev.time;
    ++processed_;
    --size_;
    dispatch(ev);
    return true;
  }

  /// Run events with time <= deadline; clock lands on the deadline.
  void run_until(TimeNs deadline) {
    while (prepare_next() && due_[due_head_].time <= deadline) {
      const Event ev = due_[due_head_++];
      audit_monotonic(ev.time);
      now_ = ev.time;
      ++processed_;
      --size_;
      dispatch(ev);
    }
    if (now_ < deadline) now_ = deadline;
  }

  void run_all() {
    while (step()) {
    }
  }

 private:
  // Timing-wheel geometry: 2^kTickBits ns per tick, 2^kSlotBits slots per
  // level. Level 0 spans ~65 us, level 1 ~16.8 ms; everything farther out
  // waits in the overflow heap until its 16.8 ms window opens.
  static constexpr int kTickBits = 8;
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;
  static constexpr std::uint64_t kSlotMask = kSlots - 1;

  struct Event {
    TimeNs time;
    std::uint64_t seq;
    void* target;
    std::uint64_t aux;
    std::uint32_t arg;
    EventKind kind;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  static std::uint64_t tick_of(TimeNs t) {
    return static_cast<std::uint64_t>(t) >> kTickBits;
  }

  Event make_event(TimeNs t, EventKind kind, void* target, std::uint32_t arg,
                   std::uint64_t aux) {
    return Event{t < now_ ? now_ : t, seq_++, target, aux, arg, kind};
  }

  /// SILO_AUDIT: the dispatch clock must never run backwards. A violation
  /// means wheel cascading or the due-run merge mis-ordered an event — the
  /// exact class of bug that silently corrupts every downstream trace.
  void audit_monotonic(TimeNs t) const {
#ifdef SILO_AUDIT
    if (t < now_)
      throw std::logic_error("EventQueue: event time ran backwards");
#else
    (void)t;
#endif
  }

  void push(const Event& ev);
  bool prepare_next();  ///< ensures due_ holds the global minimum
  void dispatch(const Event& ev);
  void run_callback(const Event& ev);
  void insert_due(const Event& ev);
  void place_in_wheel(const Event& ev);  ///< tick strictly > cur_tick_
  void take_slot(int level, std::uint32_t slot);
  bool advance();  ///< move cur_tick_ to the next occupied tick, fill due_

  static int find_slot(const std::uint64_t* bits, int from);

  // Sorted run of already-due events ((time, seq) ascending), consumed from
  // due_head_. Same-time reentrant schedules binary-insert here.
  std::vector<Event> due_;
  std::size_t due_head_ = 0;

  std::vector<Event> wheel_[2][kSlots];
  std::uint64_t occupied_[2][kSlots / 64] = {};
  std::uint64_t cur_tick_ = 0;

  std::priority_queue<Event, std::vector<Event>, Later> overflow_;

  std::vector<Callback> cb_slots_;
  std::vector<std::uint32_t> cb_free_;

  PacketPool pool_;
  obs::PacketTimeline timeline_;
  obs::FlightRecorder* recorder_ = nullptr;
  TimeNs now_ {};
  std::uint64_t seq_ = 0;
  std::size_t size_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t callback_events_ = 0;
};

}  // namespace silo::sim
