// Discrete-event engine for the packet-level simulator (the repository's
// ns2 stand-in). Deterministic: ties in time break by insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/units.h"

namespace silo::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  TimeNs now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now).
  void at(TimeNs t, Callback cb) {
    heap_.push(Event{t < now_ ? now_ : t, seq_++, std::move(cb)});
  }

  /// Schedule `cb` after a delay.
  void after(TimeNs delay, Callback cb) { at(now_ + delay, std::move(cb)); }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t processed() const { return processed_; }

  /// Run the earliest event; returns false when none remain.
  bool step() {
    if (heap_.empty()) return false;
    // Moving the callback out before pop keeps reentrant scheduling safe.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    ++processed_;
    ev.cb();
    return true;
  }

  /// Run events with time <= deadline; clock lands on the deadline.
  void run_until(TimeNs deadline) {
    while (!heap_.empty() && heap_.top().time <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Event {
    TimeNs time;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  TimeNs now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace silo::sim
