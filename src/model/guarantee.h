// Silo's tenant-facing abstraction (§4.1): every VM of a tenant gets a
// virtual-network guarantee {B, S, d, Bmax} —
//   B    : average send/receive bandwidth (hose model),
//   S    : burst allowance in bytes (not destination-limited),
//   d    : NIC-to-NIC packet delay bound for bandwidth-compliant packets,
//   Bmax : the static rate cap at which a burst may be sent.
// From these a tenant can independently derive the worst-case latency of
// any message between its VMs (the paper's "Calculating latency guarantee").
#pragma once

#include <stdexcept>

#include "util/units.h"

namespace silo {

struct SiloGuarantee {
  RateBps bandwidth {};        ///< B, bits/s
  Bytes burst {};              ///< S, bytes
  TimeNs delay {};             ///< d, ns (0 = no delay guarantee requested)
  RateBps burst_rate {};       ///< Bmax, bits/s (>= bandwidth)

  bool wants_delay_guarantee() const { return delay > TimeNs{0}; }
};

/// Tenant service classes used throughout the paper's evaluation.
enum class TenantClass {
  kDelaySensitive,   ///< class-A: needs bandwidth + delay + burst
  kBandwidthOnly,    ///< class-B: needs bandwidth only
  kBestEffort,       ///< no guarantees; deprioritized via 802.1q (§4.4)
};

struct TenantRequest {
  int num_vms = 0;
  SiloGuarantee guarantee;
  TenantClass tenant_class = TenantClass::kBandwidthOnly;
  /// Fault tolerance (§4.2.3): the placement must spread the VMs across
  /// at least this many servers (each server is a fault domain). 1 means
  /// no spreading constraint.
  int min_fault_domains = 1;
};

/// Worst-case latency of an M-byte message sent by a VM whose burst
/// allowance is unspent (§4.1):
///   M <= S : M/Bmax + d
///   M >  S : S/Bmax + (M-S)/B + d
inline TimeNs max_message_latency(const SiloGuarantee& g, Bytes message) {
  if (message < Bytes{0}) throw std::invalid_argument("negative message size");
  const RateBps bmax = g.burst_rate > RateBps{0} ? g.burst_rate : g.bandwidth;
  if (bmax <= RateBps{0}) throw std::invalid_argument("guarantee has no bandwidth");
  if (message <= g.burst) return transmission_time(message, bmax) + g.delay;
  if (g.bandwidth <= RateBps{0}) throw std::invalid_argument("burst exceeded, B = 0");
  return transmission_time(g.burst, bmax) +
         transmission_time(message - g.burst, g.bandwidth) + g.delay;
}

}  // namespace silo
