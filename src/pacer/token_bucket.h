// Virtual token bucket (§5): instead of draining packets at absolute times,
// the pacer computes, per packet, the earliest timestamp at which the packet
// conforms, and stamps it. Chaining buckets means taking the max of their
// conformance times.
#pragma once

#include <algorithm>
#include <stdexcept>

#include "util/units.h"

namespace silo::pacer {

class TokenBucket {
 public:
  /// `rate` tokens (bytes) accrue per second up to `capacity` bytes.
  /// The bucket starts full: a fresh VM may immediately spend its burst.
  TokenBucket(RateBps rate, Bytes capacity)
      : rate_(rate), capacity_(capacity), tokens_(static_cast<double>(capacity)) {
    if (rate <= RateBps{0} || capacity <= Bytes{0})
      throw std::invalid_argument("token bucket needs positive rate/capacity");
  }

  RateBps rate() const { return rate_; }
  Bytes capacity() const { return capacity_; }

  /// Change the refill rate (EyeQ-style destination coordination adjusts
  /// per-destination rates at runtime). Tokens accrued so far are kept.
  void set_rate(TimeNs now, RateBps rate) {
    refill(now);
    if (rate <= RateBps{0}) throw std::invalid_argument("rate must be positive");
    rate_ = rate;
  }

  /// Token balance at time `now` (>= last_ uses accrual; earlier times
  /// report the balance as of the bucket's own clock).
  double tokens(TimeNs now) const {
    if (now <= last_) return tokens_;
    return std::min(static_cast<double>(capacity_),
                    tokens_ + rate_.bps() / 8e9 * static_cast<double>(now - last_));
  }

  /// Earliest time >= now at which `bytes` tokens will be available.
  /// PURE: chained conformance queries at hypothetical future times must
  /// not disturb the bucket — shared (chained) buckets would otherwise
  /// inherit one destination's wait. Virtual buckets consume at future
  /// timestamps, so the wait is computed from max(now, last_).
  TimeNs earliest_conformance(TimeNs now, Bytes bytes) const {
    const TimeNs base = std::max(now, last_);
    const double avail = tokens(base);
    if (avail >= static_cast<double>(bytes)) return base;
    const double deficit = static_cast<double>(bytes) - avail;
    const double wait_ns = deficit * 8e9 / rate_.bps();
    return base + static_cast<TimeNs>(wait_ns) + TimeNs{1};
  }

  /// Spend tokens at time `when` (a conformance time; `when >= last_`).
  void consume(TimeNs when, Bytes bytes) {
    refill(when);
    tokens_ -= static_cast<double>(bytes);
  }

 private:
  void refill(TimeNs now) {
    if (now <= last_) return;
    tokens_ = std::min(static_cast<double>(capacity_),
                       tokens_ + rate_.bps() / 8e9 * static_cast<double>(now - last_));
    last_ = now;
  }

  RateBps rate_;
  Bytes capacity_;
  double tokens_;
  TimeNs last_ {};
};

}  // namespace silo::pacer
