#include "pacer/paced_nic.h"

#include <algorithm>
#include <stdexcept>

namespace silo::pacer {

PacedNic::PacedNic(RateBps line_rate, NicMode mode, TimeNs batch_window)
    : line_rate_(line_rate), mode_(mode), batch_window_(batch_window) {
  if (line_rate <= RateBps{0}) throw std::invalid_argument("line rate must be positive");
  if (batch_window <= TimeNs{0}) throw std::invalid_argument("batch window must be positive");
}

void PacedNic::enqueue(TimeNs release_time, Bytes payload_bytes,
                       std::uint64_t id) {
  if (payload_bytes <= Bytes{0} || payload_bytes > kMtu)
    throw std::invalid_argument("NIC takes wire packets of <= one MTU");
  Pending p{release_time, payload_bytes, id};
  // Packets from one VM arrive stamped in order; with multiple VMs the
  // merge point is here. Insertion from the back is O(1) amortized.
  auto it = queue_.end();
  while (it != queue_.begin() && std::prev(it)->release > release_time) --it;
  queue_.insert(it, p);
}

TimeNs PacedNic::next_start(TimeNs now) const {
  if (queue_.empty()) return TimeNs{-1};
  return std::max(now, queue_.front().release);
}

std::vector<std::uint64_t> PacedNic::drain() {
  std::vector<std::uint64_t> ids;
  ids.reserve(queue_.size());
  for (const Pending& p : queue_) ids.push_back(p.id);
  queue_.clear();
  return ids;
}

void PacedNic::fill_void(std::vector<WireSlot>& out, TimeNs& cursor,
                         TimeNs target) {
  while (cursor < target) {
    const TimeNs gap = target - cursor;
    Bytes gap_bytes = bytes_in(line_rate_, gap);
    // Round sub-minimum gaps up to one minimum void frame: data packets may
    // be released a hair late (<= 68 ns at 10 Gbps) but never early.
    Bytes frame = std::clamp<Bytes>(gap_bytes, kMinWireFrame,
                                    kMtu + kEthOverhead);
    // Avoid leaving an un-fillable residual gap smaller than a minimum frame.
    if (gap_bytes - frame > Bytes{0} && gap_bytes - frame < kMinWireFrame)
      frame = gap_bytes - kMinWireFrame;
    const TimeNs dur = transmission_time(frame, line_rate_);
    out.push_back({cursor, cursor + dur, frame, true, 0});
    ++stats_.void_packets;
    stats_.void_wire_bytes += frame;
    cursor += dur;
  }
}

const std::vector<WireSlot>& PacedNic::build_batch(TimeNs now) {
  std::vector<WireSlot>& out = batch_;
  out.clear();
  if (queue_.empty()) return out;

  const TimeNs start = std::max(now, queue_.front().release);
  const TimeNs window_end = start + batch_window_;
  TimeNs cursor = start;
  ++stats_.batches;

  while (!queue_.empty()) {
    const Pending& head = queue_.front();
    if (head.release >= window_end) break;
    const Bytes wire = head.payload + kEthOverhead;
    switch (mode_) {
      case NicMode::kPacedVoid:
        if (head.release > cursor) fill_void(out, cursor, head.release);
        break;
      case NicMode::kBatched:
        break;  // back-to-back: spacing is lost
      case NicMode::kPerPacket:
        cursor = std::max(cursor, head.release);  // exact release, no voids
        break;
    }
    const TimeNs dur = transmission_time(wire, line_rate_);
    out.push_back({cursor, cursor + dur, wire, false, head.id});
    ++stats_.data_packets;
    stats_.data_wire_bytes += wire;
    cursor += dur;
    queue_.pop_front();
    if (mode_ == NicMode::kPerPacket) break;  // one interrupt per packet
  }
  return out;
}

}  // namespace silo::pacer
