#include "pacer/headroom_lender.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace silo::pacer {
namespace {

/// Lease identity: one lease per (owner, borrower, borrower VM, server).
using LeaseKey = std::tuple<std::int64_t, std::int64_t, int, int>;

LeaseKey key_of(const PacerLeaseRecord& l) {
  return {l.owner, l.borrower, l.vm_index, l.server};
}

}  // namespace

LenderDecision HeadroomLender::evaluate(
    TimeNs epoch_len, std::vector<LenderVmStats> vms,
    const std::vector<PacerLeaseRecord>& active) const {
  std::sort(vms.begin(), vms.end(), [](const auto& a, const auto& b) {
    return std::tie(a.server, a.tenant, a.vm_index) <
           std::tie(b.server, b.tenant, b.vm_index);
  });

  const auto idle = [&](const LenderVmStats& v) {
    const Bytes threshold = (v.reserved * cfg_.idle_fraction) * epoch_len;
    return v.backlog <= Bytes{0} && v.sent < threshold;
  };

  // Desired lease set for the coming epoch, one entry per LeaseKey.
  std::map<LeaseKey, RateBps> desired;
  for (std::size_t lo = 0; lo < vms.size();) {
    std::size_t hi = lo;
    while (hi < vms.size() && vms[hi].server == vms[lo].server) ++hi;

    // Every VM of a backlogged tenant is a borrower candidate, not just the
    // VMs with local send backlog: the hose allocation caps a pair at the
    // *receiver's* hose rate too, so a pure receiver must have its lease as
    // well or the extra rate dies at the destination cap.
    std::vector<const LenderVmStats*> busy;
    for (std::size_t i = lo; i < hi; ++i) {
      if (vms[i].tenant_backlog > Bytes{0}) busy.push_back(&vms[i]);
    }

    for (std::size_t i = lo; i < hi; ++i) {
      const auto& owner = vms[i];
      // Tenant-wide veto: demand anywhere in the owner's tenant reclaims
      // every one of its leases next epoch, even from VMs that are
      // send-idle themselves (they may be the busy VM's receivers, and
      // the demand could migrate to them an epoch later).
      if (!owner.guaranteed || owner.reserved <= RateBps{0} ||
          owner.tenant_backlog > Bytes{0} || !idle(owner))
        continue;
      int takers = 0;
      for (const auto* b : busy)
        if (b->tenant != owner.tenant) ++takers;
      if (takers == 0) continue;
      const RateBps share =
          (owner.reserved * cfg_.lend_fraction) / static_cast<double>(takers);
      for (const auto* b : busy) {
        if (b->tenant == owner.tenant) continue;
        desired[{owner.tenant, b->tenant, b->vm_index, b->server}] += share;
      }
    }
    lo = hi;
  }

  std::map<LeaseKey, const PacerLeaseRecord*> live;
  for (const auto& l : active) live.emplace(key_of(l), &l);

  LenderDecision out;
  for (const auto& [key, rate] : desired) {
    if (rate < cfg_.min_lease_rate) continue;
    PacerLeaseRecord lease;
    const auto it = live.find(key);
    lease.id = it == live.end() ? 0 : it->second->id;  // renew in place
    lease.owner = std::get<0>(key);
    lease.borrower = std::get<1>(key);
    lease.vm_index = std::get<2>(key);
    lease.server = std::get<3>(key);
    lease.rate = rate;
    out.upserts.push_back(lease);
  }
  for (const auto& [key, l] : live) {
    const auto it = desired.find(key);
    if (it == desired.end() || it->second < cfg_.min_lease_rate)
      out.revokes.push_back(l->id);
  }
  std::sort(out.revokes.begin(), out.revokes.end());
  return out;
}

}  // namespace silo::pacer
