#include "pacer/vm_pacer.h"

#include <stdexcept>

namespace silo::pacer {
namespace {

RateBps effective_burst_rate(const SiloGuarantee& g) {
  return g.burst_rate > RateBps{0} ? g.burst_rate : g.bandwidth;
}

}  // namespace

VmPacer::VmPacer(const SiloGuarantee& guarantee, Bytes mtu)
    : guarantee_(guarantee),
      mtu_(mtu),
      bottom_(effective_burst_rate(guarantee), mtu),
      middle_(guarantee.bandwidth, std::max(guarantee.burst, mtu)) {
  if (guarantee.bandwidth <= RateBps{0})
    throw std::invalid_argument("pacer needs a positive bandwidth guarantee");
  if (effective_burst_rate(guarantee) < guarantee.bandwidth)
    throw std::invalid_argument("Bmax must be >= B");
}

TokenBucket& VmPacer::dest_bucket(int dst) {
  auto it = per_dest_.find(dst);
  if (it == per_dest_.end()) {
    it = per_dest_
             .emplace(dst, TokenBucket(guarantee_.bandwidth,
                                       std::max(guarantee_.burst, mtu_)))
             .first;
  }
  return it->second;
}

void VmPacer::reset_destination_rates(TimeNs now, RateBps rate) {
  for (auto& [dst, bucket] : per_dest_) bucket.set_rate(now, rate);
}

void VmPacer::set_lease_rate(TimeNs now, RateBps extra) {
  lease_rate_ = std::max(extra, RateBps{0});
  // The middle bucket carries the lease: average rate B + extra, burst depth
  // unchanged. The bottom bucket must not cap below the lease rate, but also
  // never drops below the admitted Bmax.
  middle_.set_rate(now, hose_rate());
  bottom_.set_rate(now, std::max(effective_burst_rate(guarantee_), hose_rate()));
  // Known destinations recover the full (leased) hose rate; the next
  // coordination round redistributes within the new caps.
  reset_destination_rates(now, hose_rate());
}

Bytes VmPacer::take_stamped_bytes() {
  const Bytes out = stamped_;
  stamped_ = Bytes{0};
  return out;
}

void VmPacer::set_destination_rate(TimeNs now, int dst, RateBps rate) {
  // A zero allocation (idle pair) parks the bucket at a trickle so that
  // the next packet re-triggers coordination instead of blocking forever.
  const RateBps floor = guarantee_.bandwidth * 1e-3;
  dest_bucket(dst).set_rate(now, std::max(rate, floor));
}

TimeNs VmPacer::peek(TimeNs now, int dst, Bytes bytes) {
  if (bytes <= Bytes{0} || bytes > mtu_)
    throw std::invalid_argument("pacer stamps wire packets of <= one MTU");
  auto& top = dest_bucket(dst);
  TimeNs t = now;
  t = std::max(t, top.earliest_conformance(t, bytes));
  t = std::max(t, middle_.earliest_conformance(t, bytes));
  t = std::max(t, bottom_.earliest_conformance(t, bytes));
  return t;
}

TimeNs VmPacer::stamp(TimeNs now, int dst, Bytes bytes) {
  if (bytes <= Bytes{0} || bytes > mtu_)
    throw std::invalid_argument("pacer stamps wire packets of <= one MTU");
  auto& top = dest_bucket(dst);
  TimeNs t = now;
  t = std::max(t, top.earliest_conformance(t, bytes));
  t = std::max(t, middle_.earliest_conformance(t, bytes));
  t = std::max(t, bottom_.earliest_conformance(t, bytes));
  top.consume(t, bytes);
  middle_.consume(t, bytes);
  bottom_.consume(t, bytes);
  stamped_ += bytes;
  return t;
}

TenantPacerGroup::TenantPacerGroup(const SiloGuarantee& guarantee, int num_vms,
                                   Bytes mtu, int dst_key_base)
    : guarantee_(guarantee), dst_key_base_(dst_key_base) {
  if (num_vms < 1) throw std::invalid_argument("tenant needs >= 1 VM");
  pacers_.reserve(static_cast<std::size_t>(num_vms));
  for (int i = 0; i < num_vms; ++i)
    pacers_.push_back(std::make_unique<VmPacer>(guarantee, mtu));
}

void TenantPacerGroup::rebalance(TimeNs now,
                                 const std::vector<HoseDemand>& demands) {
  // Idle pairs first recover the full hose rate (their last allocation is
  // stale); backlogged pairs then get their max-min hose-fair share. Caps
  // are per-VM so that a lease overlay (hose_rate() > B) survives the
  // coordination round instead of being clipped back to the admitted B.
  std::vector<RateBps> caps;
  caps.reserve(pacers_.size());
  for (auto& p : pacers_) {
    p->reset_destination_rates(now, p->hose_rate());
    caps.push_back(p->hose_rate());
  }
  const auto rates = hose_allocate(demands, caps, caps);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    vm(demands[i].src)
        .set_destination_rate(now, dst_key_base_ + demands[i].dst, rates[i]);
  }
}

}  // namespace silo::pacer
