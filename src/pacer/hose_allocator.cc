#include "pacer/hose_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace silo::pacer {

std::vector<RateBps> hose_allocate(const std::vector<HoseDemand>& demands,
                                   const std::vector<RateBps>& send_cap,
                                   const std::vector<RateBps>& recv_cap) {
  if (send_cap.size() != recv_cap.size())
    throw std::invalid_argument("cap vectors must have equal size");
  const auto n_caps = static_cast<int>(send_cap.size());
  std::vector<RateBps> rate(demands.size(), RateBps{0.0});
  std::vector<RateBps> send_left = send_cap;
  std::vector<RateBps> recv_left = recv_cap;
  std::vector<RateBps> want(demands.size());
  std::vector<bool> frozen(demands.size(), false);

  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& d = demands[i];
    if (d.src < 0 || d.src >= n_caps || d.dst < 0 || d.dst >= n_caps)
      throw std::out_of_range("demand endpoint out of range");
    want[i] = d.demand;
    if (d.demand <= RateBps{0}) frozen[i] = true;
  }

  // Progressive filling: raise all unfrozen flows together until one hits
  // its demand or saturates an endpoint; freeze and repeat. Each round
  // freezes at least one flow, so at most demands.size() rounds.
  for (;;) {
    std::vector<int> active_out(n_caps, 0), active_in(n_caps, 0);
    int unfrozen = 0;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (frozen[i]) continue;
      ++unfrozen;
      ++active_out[demands[i].src];
      ++active_in[demands[i].dst];
    }
    if (unfrozen == 0) break;

    // The uniform increment every active flow can still take.
    double inc = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (frozen[i]) continue;
      inc = std::min(inc, (want[i] - rate[i]).bps());
      inc = std::min(inc, send_left[demands[i].src].bps() /
                              static_cast<double>(active_out[demands[i].src]));
      inc = std::min(inc, recv_left[demands[i].dst].bps() /
                              static_cast<double>(active_in[demands[i].dst]));
    }
    if (!(inc > 0) || !std::isfinite(inc)) inc = 0;

    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (frozen[i]) continue;
      rate[i] += RateBps{inc};
      send_left[demands[i].src] -= RateBps{inc};
      recv_left[demands[i].dst] -= RateBps{inc};
    }
    // Freeze satisfied flows and flows on saturated endpoints.
    bool any_frozen = false;
    constexpr double kEps = 1e-6;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (frozen[i]) continue;
      const bool sated = rate[i] >= want[i] - RateBps{kEps};
      const bool src_full = send_left[demands[i].src].bps() <= kEps;
      const bool dst_full = recv_left[demands[i].dst].bps() <= kEps;
      if (sated || src_full || dst_full) {
        frozen[i] = true;
        any_frozen = true;
      }
    }
    if (!any_frozen) break;  // numerical stall guard
  }
  return rate;
}

}  // namespace silo::pacer
