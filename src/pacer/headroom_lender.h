// Work-conserving headroom lender (docs/WORKCONSERVING.md).
//
// Silo's admission control reserves each guaranteed tenant's hose rate B on
// every traversed port whether or not the tenant is sending. The lender
// recovers that stranded capacity: once per pacer epoch it inspects each
// guaranteed VM's measured demand, declares VMs idle when they sent less
// than `idle_fraction` of their reservation and hold no backlog, and lends
// `lend_fraction` of the idle reservation to colocated VMs of *other*
// backlogged tenants as epoch-bounded leases. Every VM of a backlogged
// tenant participates — the hose allocation caps a pair at the receiver's
// hose rate as well, so the receive end needs the raise too.
//
// Safety rests on two properties the policy never violates:
//   1. The owner's own pacer is untouched — a lease raises the borrower's
//      hose rate, it never lowers the owner's. When demand returns
//      anywhere in the owner's tenant, the next epoch's evaluation revokes
//      every lease the tenant granted (reclamation within one epoch), and
//      even a lost revoke is bounded by the lease's expiry epoch, enforced
//      by the server's own clock.
//   2. Leases are only cut from capacity the admission control already
//      reserved on this server's ports, so the port is never oversubscribed
//      beyond the admitted envelope for longer than one epoch's transient.
//
// The policy is a pure deterministic function of its inputs: same stats and
// same active set in, same decision out — no clocks, no randomness.
#pragma once

#include <cstdint>
#include <vector>

#include "pacer/pacer_config.h"
#include "util/units.h"

namespace silo::pacer {

struct LenderConfig {
  /// A VM is idle when it sent < idle_fraction * B * epoch and holds no
  /// backlog.
  double idle_fraction = 0.1;
  /// Fraction of an idle VM's reservation that is lent out; the remainder
  /// stays as slack for the owner's return transient.
  double lend_fraction = 0.75;
  /// Grants below this rate are not worth a lease record.
  RateBps min_lease_rate = 50 * kMbps;
  /// Lease lifetime in epochs. Renewal re-upserts the same id each epoch
  /// while the owner stays idle; 2 tolerates one lost renewal without a
  /// reclamation gap.
  std::uint64_t duration_epochs = 2;
};

/// One paced VM's view for a single epoch, as measured by the issuer.
struct LenderVmStats {
  std::int64_t tenant = -1;  ///< issuer-local tenant id
  int vm_index = 0;          ///< tenant-local VM index
  int server = 0;
  RateBps reserved {};       ///< admitted hose rate B (without leases)
  bool guaranteed = false;   ///< only guaranteed reservations are lendable
  Bytes sent {};             ///< bytes stamped over the last epoch
  Bytes backlog {};          ///< unsent bytes queued at this VM
  Bytes tenant_backlog {};   ///< total backlog across the whole tenant
};

struct LenderDecision {
  /// Leases to create or renew. New leases carry id 0 (the issuer assigns);
  /// renewals keep their existing id so the data plane extends in place.
  /// issued_epoch / expiry_epoch are left for the issuer to stamp.
  std::vector<PacerLeaseRecord> upserts;
  /// Active lease ids to reclaim now (owner demand returned or borrower
  /// went idle) — faster than waiting for expiry.
  std::vector<std::uint64_t> revokes;
};

class HeadroomLender {
 public:
  explicit HeadroomLender(const LenderConfig& cfg) : cfg_(cfg) {}

  const LenderConfig& config() const { return cfg_; }

  /// Compute the desired lease set for the coming epoch and diff it against
  /// `active` (the issuer's live lease table). `epoch_len` converts the
  /// idle threshold into bytes. Deterministic: inputs are canonicalized by
  /// sorting before evaluation.
  LenderDecision evaluate(TimeNs epoch_len,
                          std::vector<LenderVmStats> vms,
                          const std::vector<PacerLeaseRecord>& active) const;

 private:
  LenderConfig cfg_;
};

}  // namespace silo::pacer
