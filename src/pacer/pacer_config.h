// Pacer configuration protocol between the controller and the per-server
// hypervisor pacer (the prototype's NDIS filter driver).
//
// The controller's admission/recovery decisions materialize as
// PacerConfigRecords — one per guaranteed VM, naming the server that hosts
// it, its {B, S, d, Bmax} guarantee and its peer VMs. Historically the
// controller pushed a *full snapshot* of every server's records after each
// change; at datacenter scale (32K servers, thousands of tenants) that is
// quadratic. The incremental protocol here ships a PacerConfigDelta per
// *affected* server instead: a batch of keyed removals and upserts that a
// PacerConfigTable folds into its state. Applying every delta in emission
// order reproduces the full snapshot bit for bit — the controller tests
// pin table checksums against freshly computed snapshots.
//
// Header-only on purpose: the pacer library sits below the controller in
// the link graph, so both sides share these types without a dependency
// cycle.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/guarantee.h"

namespace silo {

/// One VM's pacing assignment on a server — everything the hypervisor
/// needs to enforce the tenant's guarantees locally.
struct PacerConfigRecord {
  std::int64_t tenant = -1;
  int vm_index = 0;   ///< tenant-local VM id
  int server = 0;
  SiloGuarantee guarantee;
  /// (tenant-local VM id, server) of every peer VM: the hypervisor keys
  /// its per-destination token buckets and EyeQ coordination off these.
  std::vector<std::pair<int, int>> peers;
};

/// Incremental update to one server's pacer state. Removals apply before
/// upserts, so a VM that moved onto this server within one recovery pass
/// ends up present exactly once.
struct PacerConfigDelta {
  int server = -1;
  /// (tenant, vm_index) keys whose records leave this server.
  std::vector<std::pair<std::int64_t, int>> removes;
  /// Records added or replaced on this server.
  std::vector<PacerConfigRecord> upserts;
};

/// FNV-1a over a record sequence; the golden tests compare delta-built
/// tables against full snapshots through this.
inline std::uint64_t pacer_config_checksum(
    const std::vector<PacerConfigRecord>& records) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  auto mix_rate = [&](RateBps r) {
    const double d = r.bps();
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  for (const auto& rec : records) {
    mix(static_cast<std::uint64_t>(rec.tenant));
    mix(static_cast<std::uint64_t>(rec.vm_index));
    mix(static_cast<std::uint64_t>(rec.server));
    mix_rate(rec.guarantee.bandwidth);
    mix(static_cast<std::uint64_t>(rec.guarantee.burst.count()));
    mix(static_cast<std::uint64_t>(rec.guarantee.delay.count()));
    mix_rate(rec.guarantee.burst_rate);
    mix(static_cast<std::uint64_t>(rec.peers.size()));
    for (const auto& [vm, server] : rec.peers) {
      mix(static_cast<std::uint64_t>(vm));
      mix(static_cast<std::uint64_t>(server));
    }
  }
  return h;
}

/// One server's applied pacer state, keyed by (tenant, vm_index) — the
/// hypervisor-side consumer of PacerConfigDeltas.
class PacerConfigTable {
 public:
  /// Folds one delta in; returns how many removes referenced keys that
  /// were not present (stale removes — a protocol smell the control
  /// channel reports as `controller.channel.stale_removes` rather than
  /// silently swallowing).
  int apply(const PacerConfigDelta& delta) {
    int stale = 0;
    for (const auto& key : delta.removes)
      if (records_.erase(key) == 0) ++stale;
    for (const auto& rec : delta.upserts)
      records_.insert_or_assign({rec.tenant, rec.vm_index}, rec);
    return stale;
  }

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Records in (tenant, vm_index) order — the same deterministic order
  /// SiloController::server_config emits, so snapshots diff cleanly.
  std::vector<PacerConfigRecord> records() const {
    std::vector<PacerConfigRecord> out;
    out.reserve(records_.size());
    for (const auto& [key, rec] : records_) out.push_back(rec);
    return out;
  }

  std::uint64_t checksum() const { return pacer_config_checksum(records()); }

 private:
  std::map<std::pair<std::int64_t, int>, PacerConfigRecord> records_;
};

}  // namespace silo
