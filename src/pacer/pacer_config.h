// Pacer configuration protocol between the controller and the per-server
// hypervisor pacer (the prototype's NDIS filter driver).
//
// The controller's admission/recovery decisions materialize as
// PacerConfigRecords — one per guaranteed VM, naming the server that hosts
// it, its {B, S, d, Bmax} guarantee and its peer VMs. Historically the
// controller pushed a *full snapshot* of every server's records after each
// change; at datacenter scale (32K servers, thousands of tenants) that is
// quadratic. The incremental protocol here ships a PacerConfigDelta per
// *affected* server instead: a batch of keyed removals and upserts that a
// PacerConfigTable folds into its state. Applying every delta in emission
// order reproduces the full snapshot bit for bit — the controller tests
// pin table checksums against freshly computed snapshots.
//
// Header-only on purpose: the pacer library sits below the controller in
// the link graph, so both sides share these types without a dependency
// cycle.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "model/guarantee.h"

namespace silo {

/// One VM's pacing assignment on a server — everything the hypervisor
/// needs to enforce the tenant's guarantees locally.
struct PacerConfigRecord {
  std::int64_t tenant = -1;
  int vm_index = 0;   ///< tenant-local VM id
  int server = 0;
  SiloGuarantee guarantee;
  /// (tenant-local VM id, server) of every peer VM: the hypervisor keys
  /// its per-destination token buckets and EyeQ coordination off these.
  std::vector<std::pair<int, int>> peers;
};

/// Epoch-bounded loan of an idle owner's reserved uplink rate to a
/// colocated borrower VM (EyeQ/QShare-style work conservation, see
/// docs/WORKCONSERVING.md). A lease is an *overlay*: it never edits the
/// owner's PacerConfigRecord, and it dies automatically once the applying
/// table's epoch reaches `expiry_epoch` — so a returning owner can never
/// be outlived by its own lent headroom, even if every revoke delta is
/// lost on the control channel.
struct PacerLeaseRecord {
  std::uint64_t id = 0;        ///< issuer-unique lease id
  std::int64_t owner = -1;     ///< lending (guaranteed) tenant
  std::int64_t borrower = -1;  ///< borrowing tenant
  int vm_index = 0;            ///< borrower-local VM id receiving the rate
  int server = 0;              ///< server both VMs share
  RateBps rate {};             ///< extra send rate on loan
  std::uint64_t issued_epoch = 0;
  std::uint64_t expiry_epoch = 0;  ///< dead once table epoch >= this
};

/// Incremental update to one server's pacer state. Removals apply before
/// upserts, so a VM that moved onto this server within one recovery pass
/// ends up present exactly once. Lease fields default to no-ops so the
/// admission/recovery paths are byte-for-byte unaffected by lending.
struct PacerConfigDelta {
  int server = -1;
  /// (tenant, vm_index) keys whose records leave this server.
  std::vector<std::pair<std::int64_t, int>> removes;
  /// Records added or replaced on this server.
  std::vector<PacerConfigRecord> upserts;
  /// Issuer's lease epoch when this delta was emitted; 0 = issuer is not
  /// running lease epochs (legacy deltas). Applying tables adopt the max.
  std::uint64_t lease_epoch = 0;
  /// Lease ids revoked early (owner demand returned before expiry).
  std::vector<std::uint64_t> lease_removes;
  /// Leases granted or extended on this server.
  std::vector<PacerLeaseRecord> lease_upserts;
};

/// What PacerConfigTable::apply observed while folding a delta in.
/// `stale_removes` is a protocol smell (a remove for a key that was never
/// present) that the control channel reports; `lease_expired` is the
/// benign race of a revoke arriving after the lease already died by epoch
/// expiry — counted separately so anti-entropy does not flag clean expiry.
struct PacerApplyResult {
  int stale_removes = 0;
  int lease_expired = 0;
};

/// FNV-1a over a record sequence; the golden tests compare delta-built
/// tables against full snapshots through this.
inline std::uint64_t pacer_config_checksum(
    const std::vector<PacerConfigRecord>& records) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  auto mix_rate = [&](RateBps r) {
    const double d = r.bps();
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  for (const auto& rec : records) {
    mix(static_cast<std::uint64_t>(rec.tenant));
    mix(static_cast<std::uint64_t>(rec.vm_index));
    mix(static_cast<std::uint64_t>(rec.server));
    mix_rate(rec.guarantee.bandwidth);
    mix(static_cast<std::uint64_t>(rec.guarantee.burst.count()));
    mix(static_cast<std::uint64_t>(rec.guarantee.delay.count()));
    mix_rate(rec.guarantee.burst_rate);
    mix(static_cast<std::uint64_t>(rec.peers.size()));
    for (const auto& [vm, server] : rec.peers) {
      mix(static_cast<std::uint64_t>(vm));
      mix(static_cast<std::uint64_t>(server));
    }
  }
  return h;
}

/// FNV-1a over a lease sequence. Kept *separate* from
/// pacer_config_checksum on purpose: anti-entropy compares config
/// checksums only, because lease divergence self-heals by epoch expiry
/// within one epoch and must not trigger snapshot repairs (see
/// docs/WORKCONSERVING.md "Why leases are outside anti-entropy").
inline std::uint64_t pacer_lease_checksum(
    const std::vector<PacerLeaseRecord>& leases) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& l : leases) {
    mix(l.id);
    mix(static_cast<std::uint64_t>(l.owner));
    mix(static_cast<std::uint64_t>(l.borrower));
    mix(static_cast<std::uint64_t>(l.vm_index));
    mix(static_cast<std::uint64_t>(l.server));
    const double d = l.rate.bps();
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    mix(bits);
    mix(l.issued_epoch);
    mix(l.expiry_epoch);
  }
  return h;
}

/// One server's applied pacer state, keyed by (tenant, vm_index) — the
/// hypervisor-side consumer of PacerConfigDeltas. Also tracks the active
/// lease overlays and the local lease epoch; expiry is driven by
/// advance_epoch (the server's own clock), never by delta delivery, so a
/// lost revoke can delay *reclamation of borrowed* rate by at most the
/// epochs already promised — never the owner's guarantee.
class PacerConfigTable {
 public:
  /// How many epochs a cleanly-expired lease id is remembered so that a
  /// late-arriving revoke counts as `lease_expired`, not `stale_removes`.
  static constexpr std::uint64_t kExpiredRetentionEpochs = 4;

  /// Folds one delta in (removes before upserts, config before leases).
  PacerApplyResult apply(const PacerConfigDelta& delta) {
    PacerApplyResult res;
    for (const auto& key : delta.removes)
      if (records_.erase(key) == 0) ++res.stale_removes;
    for (const auto& rec : delta.upserts)
      records_.insert_or_assign({rec.tenant, rec.vm_index}, rec);
    if (delta.lease_epoch > epoch_) advance_epoch(delta.lease_epoch);
    for (const auto id : delta.lease_removes) {
      if (leases_.erase(id) > 0) continue;
      if (expired_.erase(id) > 0)
        ++res.lease_expired;
      else
        ++res.stale_removes;
    }
    for (const auto& l : delta.lease_upserts) {
      if (l.expiry_epoch <= epoch_) {
        // Dead on arrival: the grant was delayed past its own expiry.
        // Remember the id so the matching revoke is also counted benign.
        expired_.insert_or_assign(l.id, l.expiry_epoch);
        ++res.lease_expired;
        continue;
      }
      leases_.insert_or_assign(l.id, l);
    }
    return res;
  }

  /// Clock-driven epoch advance. Kills every lease with
  /// expiry_epoch <= epoch and returns the casualties (so the host can
  /// withdraw the lent rate from its pacers). Monotonic; no-op backwards.
  std::vector<PacerLeaseRecord> advance_epoch(std::uint64_t epoch) {
    std::vector<PacerLeaseRecord> died;
    if (epoch <= epoch_) return died;
    epoch_ = epoch;
    for (auto it = leases_.begin(); it != leases_.end();) {
      if (it->second.expiry_epoch <= epoch_) {
        expired_.insert_or_assign(it->first, it->second.expiry_epoch);
        died.push_back(it->second);
        it = leases_.erase(it);
      } else {
        ++it;
      }
    }
    // Bound the expired-id memory: once a revoke for a dead lease is this
    // old it would be a genuine protocol bug, not a benign race.
    for (auto it = expired_.begin(); it != expired_.end();) {
      if (it->second + kExpiredRetentionEpochs <= epoch_)
        it = expired_.erase(it);
      else
        ++it;
    }
    return died;
  }

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  std::uint64_t epoch() const { return epoch_; }
  std::size_t lease_count() const { return leases_.size(); }

  /// Records in (tenant, vm_index) order — the same deterministic order
  /// SiloController::server_config emits, so snapshots diff cleanly.
  std::vector<PacerConfigRecord> records() const {
    std::vector<PacerConfigRecord> out;
    out.reserve(records_.size());
    for (const auto& [key, rec] : records_) out.push_back(rec);
    return out;
  }

  /// Active (unexpired) leases in ascending id order.
  std::vector<PacerLeaseRecord> leases() const {
    std::vector<PacerLeaseRecord> out;
    out.reserve(leases_.size());
    for (const auto& [id, l] : leases_) out.push_back(l);
    return out;
  }

  std::uint64_t checksum() const { return pacer_config_checksum(records()); }
  std::uint64_t lease_checksum() const {
    return pacer_lease_checksum(leases());
  }

 private:
  std::map<std::pair<std::int64_t, int>, PacerConfigRecord> records_;
  std::map<std::uint64_t, PacerLeaseRecord> leases_;  ///< by lease id
  /// Cleanly-expired lease ids -> expiry epoch, kept a few epochs so a
  /// racing revoke is classified benign (pruned in advance_epoch).
  std::map<std::uint64_t, std::uint64_t> expired_;
  std::uint64_t epoch_ = 0;
};

}  // namespace silo
