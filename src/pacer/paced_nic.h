// Paced IO Batching (§4.3.1, §5): the NIC transmits whole batches back to
// back, which would destroy packet spacing; the pacer therefore interleaves
// "void" packets — frames addressed so the first-hop switch drops them —
// sized to reproduce the stamped inter-packet gaps on the wire. The minimum
// void frame is 84 wire bytes, so spacing granularity at 10 Gbps is ~68 ns.
//
// The model is event-driven: the owner calls `build_batch(t)` whenever the
// wire goes idle (the DMA-completion "soft timer" of the prototype) and
// receives the exact wire schedule of the next batch.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "pacer/pacer_config.h"
#include "util/units.h"

namespace silo::pacer {

enum class NicMode {
  kPacedVoid,  ///< Silo: batches padded with void frames (keeps spacing)
  kBatched,    ///< plain IO batching: ready packets sent back-to-back
  kPerPacket,  ///< idealized per-packet release (no batching, high CPU)
};

struct WireSlot {
  TimeNs start {};       ///< first bit on the wire
  TimeNs end {};         ///< last bit (incl. framing + IFG) off the NIC
  Bytes wire_bytes {};   ///< occupancy incl. Ethernet framing
  bool is_void = false;
  std::uint64_t id = 0;   ///< caller-assigned id for data packets
};

struct BatchStats {
  std::int64_t data_packets = 0;
  std::int64_t void_packets = 0;
  Bytes data_wire_bytes {};
  Bytes void_wire_bytes {};
  std::int64_t batches = 0;  ///< DMA interrupts taken (CPU-cost proxy)
};

class PacedNic {
 public:
  PacedNic(RateBps line_rate, NicMode mode, TimeNs batch_window = 50 * kUsec);

  /// Queue a pacer-stamped packet. `payload_bytes` excludes Ethernet
  /// framing; the NIC accounts for kEthOverhead on the wire.
  void enqueue(TimeNs release_time, Bytes payload_bytes, std::uint64_t id);

  bool idle() const { return queue_.empty(); }
  std::size_t backlog() const { return queue_.size(); }

  /// Earliest time >= now at which a batch could start (the release time
  /// of the head packet); -1 when the queue is empty.
  TimeNs next_start(TimeNs now) const;

  /// Build the wire schedule of one batch starting no earlier than `now`.
  /// Consumes the packets it schedules. Empty result iff queue is empty.
  /// The returned reference aliases an internal buffer that the next
  /// build_batch call overwrites — consume it before rebuilding.
  const std::vector<WireSlot>& build_batch(TimeNs now);

  /// Fault injection (server crash): empty the queue and hand back the ids
  /// of the pending packets so the owner can recycle their pool handles.
  std::vector<std::uint64_t> drain();

  const BatchStats& stats() const { return stats_; }
  RateBps line_rate() const { return line_rate_; }
  TimeNs batch_window() const { return batch_window_; }

  /// Fold one controller-emitted pacer-config delta into this server's
  /// applied state. Deltas for other servers are a caller bug.
  PacerApplyResult apply_config(const PacerConfigDelta& delta) {
    return config_.apply(delta);
  }
  /// Clock-driven lease expiry (docs/WORKCONSERVING.md): advance the local
  /// lease epoch and return the leases that just died. Never waits on
  /// delta delivery — a lost revoke only delays reclamation, never expiry.
  std::vector<PacerLeaseRecord> advance_lease_epoch(std::uint64_t epoch) {
    return config_.advance_epoch(epoch);
  }
  /// The applied per-VM pacing records (what a full server_config snapshot
  /// must reproduce — see the controller golden tests).
  const PacerConfigTable& config() const { return config_; }

 private:
  struct Pending {
    TimeNs release;
    Bytes payload;
    std::uint64_t id;
  };

  /// Append void frames covering `gap_bytes` of wire time (>= 84 bytes per
  /// frame, <= one MTU frame each). Rounds sub-84-byte gaps up, so data is
  /// never released *early*.
  void fill_void(std::vector<WireSlot>& out, TimeNs& cursor, TimeNs target);

  RateBps line_rate_;
  NicMode mode_;
  TimeNs batch_window_;
  std::deque<Pending> queue_;  // pacer stamps are non-decreasing per VM;
                               // cross-VM merge keeps it sorted on insert
  std::vector<WireSlot> batch_;  ///< reused across build_batch calls
  BatchStats stats_;
  PacerConfigTable config_;  ///< delta-applied per-VM pacing records
};

}  // namespace silo::pacer
