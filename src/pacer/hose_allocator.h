// Hose-model rate coordination (§4.3): the per-destination token buckets of
// a tenant's pacers must be set so that for every VM, the sum of its send
// rates <= B and the sum of rates toward it <= B (the receiver constraint
// is what EyeQ's source/destination message exchange enforces).
//
// We compute the max-min fair allocation of the active demand matrix under
// those per-VM caps with iterative water-filling. The same routine is the
// bandwidth-sharing core of the flow-level simulator.
#pragma once

#include <vector>

#include "util/units.h"

namespace silo::pacer {

struct HoseDemand {
  int src = 0;
  int dst = 0;
  /// Demand ceiling in bits/s; use an effectively-infinite value for
  /// backlogged flows.
  RateBps demand {};
};

/// Max-min fair rates for `demands` subject to per-endpoint caps:
/// sum over flows leaving `v`  <= send_cap[v]
/// sum over flows entering `v` <= recv_cap[v]
/// Returns one rate per demand, in order.
std::vector<RateBps> hose_allocate(const std::vector<HoseDemand>& demands,
                                   const std::vector<RateBps>& send_cap,
                                   const std::vector<RateBps>& recv_cap);

}  // namespace silo::pacer
