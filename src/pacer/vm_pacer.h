// Per-VM pacer (§4.3, Fig. 8): a chain of virtual token buckets stamps each
// packet with its release time.
//
//   top    : one bucket per destination VM, rate B_i with sum(B_i) <= B —
//            the hose-model receiver constraint, coordinated EyeQ-style
//   middle : rate B, depth S — the tenant-visible average rate and burst
//   bottom : rate Bmax, depth one MTU — a burst is sent at Bmax, never
//            at line rate
//
// The stamp is the max of the three conformance times; tokens are consumed
// at the stamped time so that chained buckets compose correctly.
#pragma once

#include <algorithm>
#include <memory>
#include <map>
#include <vector>

#include "model/guarantee.h"
#include "pacer/hose_allocator.h"
#include "pacer/token_bucket.h"

namespace silo::pacer {

class VmPacer {
 public:
  VmPacer(const SiloGuarantee& guarantee, Bytes mtu = kMtu);

  const SiloGuarantee& guarantee() const { return guarantee_; }

  /// EyeQ-style coordination sets the per-destination rate; unknown
  /// destinations default to the full hose rate B until coordinated.
  void set_destination_rate(TimeNs now, int dst, RateBps rate);

  /// Reset every known destination bucket to `rate`. Coordination calls
  /// this before applying fresh allocations so that pairs that went idle
  /// recover the full hose rate instead of keeping a stale small share —
  /// the middle {B, S} bucket still enforces the VM's aggregate curve, so
  /// bursts stay destination-unlimited as §4.1 specifies.
  void reset_destination_rates(TimeNs now, RateBps rate);

  /// Work-conserving overlay (docs/WORKCONSERVING.md): raise this VM's hose
  /// rate to B + `extra` for the lifetime of a lease. Zero restores the
  /// admitted guarantee exactly. The burst depth S is never touched — a
  /// borrower gains average rate, not burst credit, so revocation returns
  /// the pacer to the admitted curve within one token-refill interval.
  void set_lease_rate(TimeNs now, RateBps extra);
  RateBps lease_rate() const { return lease_rate_; }
  /// Current hose rate: the admitted B plus any active lease overlay.
  RateBps hose_rate() const { return guarantee_.bandwidth + lease_rate_; }

  /// Bytes stamped since the last call — the lender's per-epoch demand
  /// signal. Reading clears the counter.
  Bytes take_stamped_bytes();

  /// Stamp a packet toward `dst`: the earliest time >= now at which the
  /// packet conforms to all three buckets. Consumes the tokens.
  TimeNs stamp(TimeNs now, int dst, Bytes bytes);

  /// The stamp the packet *would* get, without consuming tokens — lets a
  /// finite-queue hypervisor drop instead of admitting hopeless packets.
  TimeNs peek(TimeNs now, int dst, Bytes bytes);

 private:
  TokenBucket& dest_bucket(int dst);

  SiloGuarantee guarantee_;
  Bytes mtu_;
  TokenBucket bottom_;  // Bmax
  TokenBucket middle_;  // B, S
  std::map<int, TokenBucket> per_dest_;
  RateBps lease_rate_ {};  // work-conserving overlay, 0 when no lease
  Bytes stamped_ {};       // bytes stamped since take_stamped_bytes()
};

/// Owns the pacers of one tenant's VMs and periodically recomputes the
/// per-destination rates from observed demands (the hypervisor-to-
/// hypervisor coordination of §4.3).
class TenantPacerGroup {
 public:
  /// `dst_key_base` translates tenant-local VM indices into the namespace
  /// the pacers' destination buckets are keyed with (global VM ids in the
  /// cluster simulator; 0 for standalone use).
  TenantPacerGroup(const SiloGuarantee& guarantee, int num_vms,
                   Bytes mtu = kMtu, int dst_key_base = 0);

  VmPacer& vm(int i) { return *pacers_.at(i); }
  int size() const { return static_cast<int>(pacers_.size()); }

  /// Recompute hose-fair destination rates from pairwise demands (given
  /// with tenant-local src/dst indices) and push them to the pacers.
  void rebalance(TimeNs now, const std::vector<HoseDemand>& demands);

 private:
  SiloGuarantee guarantee_;
  int dst_key_base_;
  std::vector<std::unique_ptr<VmPacer>> pacers_;
};

}  // namespace silo::pacer
