// VM placement & admission control (§4.2).
//
// Silo's placement maps a tenant's {B, S, d, Bmax} guarantees to two
// queueing constraints at every switch port its traffic crosses:
//   1. queue bound  <= queue capacity      (buffers never overflow)
//   2. sum of queue capacities on each VM-pair path <= d
// and then greedily packs VMs into the smallest topology scope (server,
// rack, pod, datacenter) that satisfies both, preserving "high" links for
// future tenants.
//
// The same greedy skeleton, parameterized by its admission policy, yields
// the two baselines of the paper's evaluation: Oktopus (bandwidth-only
// constraint) and locality-aware placement (no network constraint).
#pragma once

#include <cstdint>
#include <optional>
#include <map>
#include <vector>

#include "model/guarantee.h"
#include "placement/port_load.h"
#include "topology/topology.h"

namespace silo::placement {

using TenantId = std::int64_t;

enum class Policy {
  kSilo,      ///< queue-bound + delay constraints via network calculus
  kOktopus,   ///< hose-model bandwidth reservation only
  kLocality,  ///< slots only; pack as close as possible
};

/// Topology scopes in packing order.
enum class Scope { kServer = 0, kRack = 1, kPod = 2, kDatacenter = 3 };

/// How admission maintains its derived state.
///
/// kIncremental (the default) shards per-port load and headroom caches by
/// rack/pod/DC and maintains per-server and per-port tenant indexes, so an
/// admit or release touches only the shards on the tenant's placement
/// path. kFullRescan is the reference baseline: after every mutation it
/// recomputes all port loads from the tenant map and answers index queries
/// by scanning every tenant — the quadratic behaviour the incremental path
/// replaces. Both modes make bit-identical placement decisions.
enum class AdmissionMode { kIncremental, kFullRescan };

struct AdmittedTenant {
  TenantId id = -1;
  std::vector<int> vm_to_server;  ///< VM index -> server index
};

/// Exact logical state of a PlacementEngine, captured for the controller's
/// write-ahead journal (compacted snapshots). Holds everything restore()
/// needs to rebuild an engine bit-identically: per-tenant placements with
/// their admitted port contributions (so no re-derivation can drift), the
/// failed-hardware accounting, and the monotonic id counter.
struct EngineSnapshot {
  struct Tenant {
    TenantId id = -1;
    TenantRequest request;  ///< as admitted (degraded tenants: best-effort copy)
    std::vector<int> vm_to_server;
    std::vector<std::pair<int, PortContribution>> contributions;
  };
  struct FailedServer {
    int server = -1;
    int free_slots = 0;    ///< free-slot count frozen at failure time
    int quarantined = 0;   ///< slots freed on the dead host since
  };
  std::vector<Tenant> tenants;              ///< ascending id
  std::vector<FailedServer> failed_servers; ///< ascending server
  std::vector<int> failed_ports;            ///< ascending PortId value
  TenantId next_id = 0;
};

class PlacementEngine {
 public:
  /// `nic_delay_allowance` is the per-path budget charged for source-NIC
  /// batching and same-server multiplexing (the pacer keeps the *wire*
  /// curve-conformant, but a packet may wait up to about one IO batch
  /// inside the NIC). It is added to every path's delay bound.
  /// `hose_tightening` toggles the min(m, N-m)*B aggregation of §4.2.2
  /// (ablation: the naive m*B bound admits strictly fewer tenants).
  PlacementEngine(const topology::Topology& topo, Policy policy,
                  TimeNs nic_delay_allowance = 50 * kUsec,
                  bool hose_tightening = true,
                  AdmissionMode mode = AdmissionMode::kIncremental);

  /// Admission control + placement. Returns nullopt when the request
  /// cannot be accommodated (its guarantees would be violated, or would
  /// violate an already-admitted tenant's).
  std::optional<AdmittedTenant> place(const TenantRequest& request);

  /// Releases a tenant's slots and port reservations.
  void remove(TenantId id);

  // --- Fault model -------------------------------------------------------
  // A failed server's free slots leave the pool, and slots later freed on
  // it (tenants being evacuated) are quarantined until restore_server — so
  // re-placement can never land VMs back on dead hardware. A failed port
  // rejects any placement that would reserve capacity on it; zero-
  // reservation (best-effort) placements still pass, which is what keeps
  // degraded-mode fallback feasible while a link is down.

  void fail_server(int server);
  void restore_server(int server);
  bool server_failed(int server) const {
    return server_failed_[static_cast<std::size_t>(server)] != 0;
  }
  void fail_port(topology::PortId p);
  void restore_port(topology::PortId p);
  bool port_failed(topology::PortId p) const {
    return port_failed_[static_cast<std::size_t>(p.value)] != 0;
  }

  /// Admitted tenants with at least one VM on `server`, ascending id.
  std::vector<TenantId> tenants_on_server(int server) const;
  /// Admitted tenants whose placement routes traffic through `p`,
  /// ascending id (derived from the placement's rack/pod spread).
  std::vector<TenantId> tenants_using_port(topology::PortId p) const;

  int free_slots() const { return free_slots_total_; }
  int admitted_tenants() const { return static_cast<int>(tenants_.size()); }
  AdmissionMode admission_mode() const { return mode_; }

  /// Fraction of a port's line rate reserved by admitted tenants.
  double port_reservation(topology::PortId p) const;

  /// Highest port_reservation() over every port. Incremental mode answers
  /// from the per-rack/pod/DC shard caches, recomputing only shards whose
  /// load changed since the last query; kFullRescan scans every port.
  double max_port_reservation() const;

  /// Worst admitted queue bound anywhere, as a fraction of that port's
  /// queue capacity (<= 1 by construction for Silo policy). Same shard
  /// caching as max_port_reservation().
  double max_queue_headroom_used() const;

  /// Worst-case queuing delay currently admitted at a port (ns); 0 for an
  /// idle port. Exposed for tests and the placement example.
  TimeNs port_queue_bound(topology::PortId p) const;

  /// Path-capacity delay bound for a tenant placed at the given scope —
  /// what Silo checks against the tenant's delay guarantee d.
  TimeNs scope_path_capacity(Scope scope) const;

  /// Capture the engine's exact logical state (journal compaction).
  EngineSnapshot snapshot() const;
  /// Rebuild from a snapshot. Only valid on a fresh engine (no tenants
  /// admitted, same topology/policy/mode as the captured one); throws
  /// std::logic_error otherwise. After restore the engine makes the same
  /// placement decisions the captured engine would.
  void restore(const EngineSnapshot& snap);

  const topology::Topology& topo() const { return topo_; }

 private:
  struct TenantRecord {
    TenantRequest request;
    std::vector<int> vm_to_server;
    std::vector<std::pair<int, PortContribution>> contributions;  // port -> c
    std::vector<std::pair<int, int>> slot_usage;  // server -> count
    std::vector<int> used_ports;  // sorted; ports this placement routes over
  };

  // Per-server VM counts for a candidate placement.
  using CountMap = std::vector<std::pair<int, int>>;  // (server, count)

  std::optional<CountMap> try_scope(const TenantRequest& req, Scope scope,
                                    int anchor_server) const;
  std::optional<CountMap> pack_servers(const TenantRequest& req,
                                       const std::vector<int>& servers,
                                       Scope scope) const;
  bool server_ports_ok(const TenantRequest& req, int server, int m_here,
                       Scope scope) const;
  bool validate_candidate(const TenantRequest& req, const CountMap& counts,
                          Scope scope) const;
  std::vector<std::pair<int, PortContribution>> tenant_contributions(
      const TenantRequest& req, const CountMap& counts, Scope scope) const;

  /// Tenant's arrival-curve contribution at one port: cut curve for
  /// `m_side` of `n` VMs behind the port, propagated through
  /// `upstream_capacity` of queueing (0 at the pacer conformance point).
  PortContribution cut_contribution(const TenantRequest& req, int m_side,
                                    TimeNs upstream_capacity,
                                    RateBps line_cap) const;

  bool port_admits(int port, const PortContribution& c) const;
  TimeNs upstream_capacity(int level, Scope scope) const;

  Scope widest_scope_for_delay(const SiloGuarantee& g) const;
  void commit(TenantRecord&& rec, AdmittedTenant& out);
  bool placement_uses_port(const TenantRecord& rec, int port) const;
  std::vector<int> used_ports_for(const CountMap& counts) const;

  /// Slot bookkeeping for one server: free_slots_, the rack/pod/total
  /// aggregates, and the per-rack max-free cache all move together.
  void adjust_free_slots(int server, int delta);
  void recompute_rack_max_free(int rack);

  /// Mark the shard owning `port` stale after a load change.
  void touch_port(int port);
  void refresh_shard(std::size_t shard) const;
  void refresh_dirty_shards() const;
  /// kFullRescan baseline: rebuild every port's aggregate load from the
  /// tenant map (the cost the sharded incremental path avoids).
  void rebuild_port_loads();

  const topology::Topology& topo_;
  Policy policy_;
  TimeNs nic_delay_allowance_;
  bool hose_tightening_;
  AdmissionMode mode_;
  std::vector<int> free_slots_;
  std::vector<int> free_slots_rack_;  // fast skip of full racks/pods
  std::vector<int> free_slots_pod_;
  std::vector<int> rack_max_free_;  // max free slots on any server in rack
  int free_slots_total_ = 0;
  std::vector<PortLoad> port_load_;
  std::vector<char> server_failed_;
  std::vector<int> quarantined_slots_;  ///< freed-on-failed-server slots
  std::vector<char> port_failed_;
  std::map<TenantId, TenantRecord> tenants_;
  TenantId next_id_ = 0;

  // --- Sharded derived state (incremental mode) --------------------------
  // Shard layout: one shard per rack (owning its servers' NIC/ToR ports),
  // one per pod (owning its racks' up/down ports), one for the DC core
  // (pod up/down ports). A load change dirties only the owning shard; the
  // max-headroom queries recompute dirty shards and fold cached maxima.
  std::vector<int> shard_of_port_;
  std::vector<std::vector<int>> shard_ports_;
  mutable std::vector<char> shard_dirty_;
  mutable std::vector<double> shard_max_resv_;
  mutable std::vector<double> shard_max_qfrac_;
  // Tenant indexes so failure handling touches only the affected shards
  // instead of scanning every tenant. Ids are kept sorted (admission ids
  // are monotonic). Maintained in incremental mode only; kFullRescan
  // answers the same queries by scanning the tenant map.
  std::vector<std::vector<TenantId>> tenants_by_server_;
  std::vector<std::vector<TenantId>> tenants_by_port_;
};

}  // namespace silo::placement
