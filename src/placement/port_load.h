// Scalar summary of the traffic admitted through a switch port.
//
// Every tenant's contribution at a port is a two-piece concave curve
//   min(jump + burst_rate * t, burst + rate * t).
// Since sum_i min(f_i, g_i) <= min(sum_i f_i, sum_i g_i), the component
// sums below reconstruct a valid (slightly loose) aggregate arrival bound
// in O(1), which keeps admission control O(ports) per tenant and makes
// tenant removal an exact subtraction.
#pragma once

#include <algorithm>
#include <cmath>

#include "netcalc/curve.h"
#include "util/units.h"

namespace silo::placement {

struct PortContribution {
  double rate_bps = 0;        ///< sustained (hose-tightened) rate
  double burst_bytes = 0;     ///< burst after upstream propagation
  double burst_rate_bps = 0;  ///< rate at which the burst can arrive
  double jump_bytes = 0;      ///< instantaneous packet-granularity jump
};

class PortLoad {
 public:
  void add(const PortContribution& c) {
    rate_bps_ += c.rate_bps;
    burst_bytes_ += c.burst_bytes;
    burst_rate_bps_ += c.burst_rate_bps;
    jump_bytes_ += c.jump_bytes;
    ++tenants_;
  }

  void remove(const PortContribution& c) {
    rate_bps_ -= c.rate_bps;
    burst_bytes_ -= c.burst_bytes;
    burst_rate_bps_ -= c.burst_rate_bps;
    jump_bytes_ -= c.jump_bytes;
    --tenants_;
    if (tenants_ == 0) {  // kill accumulated floating-point dust
      rate_bps_ = burst_bytes_ = burst_rate_bps_ = jump_bytes_ = 0;
    }
  }

  bool empty() const { return tenants_ == 0; }
  double rate_bps() const { return rate_bps_; }
  double burst_bytes() const { return burst_bytes_; }
  int tenants() const { return tenants_; }

  /// Closed-form worst-case queuing delay (ns) of the aggregate two-piece
  /// curve min(j + bmax*t, s + b*t) against a constant-rate server — the
  /// allocation-free fast path admission control runs per port. Returns
  /// -1 when the sustained rate overloads the service rate.
  TimeNs queue_bound(RateBps service_rate,
                     const PortContribution* extra = nullptr) const {
    double r = rate_bps_, s = burst_bytes_, br = burst_rate_bps_,
           j = jump_bytes_;
    if (extra) {
      r += extra->rate_bps;
      s += extra->burst_bytes;
      br += extra->burst_rate_bps;
      j += extra->jump_bytes;
    }
    const double c = service_rate.bps() / 8e9;  // bytes per ns
    const double rb = r / 8e9, brb = std::max(br, r) / 8e9;
    if (c <= 0 || rb > c * (1.0 + 1e-9)) return TimeNs{-1};
    if (s <= j || brb <= rb + 1e-15) {
      // Effectively a single token bucket with burst min(s, j)... the
      // tighter intercept bounds the deviation.
      return static_cast<TimeNs>(std::min(s, j) / c) + TimeNs{1};
    }
    // Delay grows while the burst-rate piece exceeds the service rate and
    // peaks at the knee t* = (s - j) / (brb - rb).
    if (brb <= c) return static_cast<TimeNs>(j / c) + TimeNs{1};
    const double knee = (s - j) / (brb - rb);
    const double at_knee = j + brb * knee;
    return static_cast<TimeNs>(at_knee / c - knee) + TimeNs{1};
  }

  /// Aggregate arrival curve of everything admitted through the port,
  /// optionally with one more candidate contribution.
  netcalc::Curve arrival_curve(const PortContribution* extra = nullptr) const {
    double r = rate_bps_, s = burst_bytes_, br = burst_rate_bps_,
           j = jump_bytes_;
    if (extra) {
      r += extra->rate_bps;
      s += extra->burst_bytes;
      br += extra->burst_rate_bps;
      j += extra->jump_bytes;
    }
    if (r <= 0 && s <= 0) return netcalc::Curve{};
    return netcalc::Curve::rate_limited_burst(
        RateBps{r}, static_cast<Bytes>(s + 0.5), RateBps{std::max(br, r)},
        static_cast<Bytes>(j + 0.5));
  }

 private:
  double rate_bps_ = 0;
  double burst_bytes_ = 0;
  double burst_rate_bps_ = 0;
  double jump_bytes_ = 0;
  int tenants_ = 0;
};

}  // namespace silo::placement
