#include "placement/placement.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace silo::placement {
namespace {

constexpr double kRateEps = 1e-6;  // relative slack on rate comparisons

enum class PortKind {
  kServerUp,
  kServerDown,
  kRackUp,
  kRackDown,
  kPodUp,
  kPodDown
};

}  // namespace

PlacementEngine::PlacementEngine(const topology::Topology& topo, Policy policy,
                                 TimeNs nic_delay_allowance,
                                 bool hose_tightening, AdmissionMode mode)
    : topo_(topo),
      policy_(policy),
      nic_delay_allowance_(nic_delay_allowance),
      hose_tightening_(hose_tightening),
      mode_(mode) {
  free_slots_.assign(topo.num_servers(), topo.config().vm_slots_per_server);
  free_slots_rack_.assign(
      topo.num_racks(),
      topo.config().vm_slots_per_server * topo.config().servers_per_rack);
  free_slots_pod_.assign(topo.num_pods(), topo.config().vm_slots_per_server *
                                              topo.config().servers_per_rack *
                                              topo.config().racks_per_pod);
  rack_max_free_.assign(topo.num_racks(), topo.config().vm_slots_per_server);
  free_slots_total_ = topo.total_vm_slots();
  port_load_.resize(topo.num_ports());
  server_failed_.assign(static_cast<std::size_t>(topo.num_servers()), 0);
  quarantined_slots_.assign(static_cast<std::size_t>(topo.num_servers()), 0);
  port_failed_.assign(static_cast<std::size_t>(topo.num_ports()), 0);

  // Shard layout: racks own their servers' ports, pods their racks' ports,
  // one core shard owns the pod ports. Every port has exactly one owner.
  const std::size_t num_shards =
      static_cast<std::size_t>(topo.num_racks() + topo.num_pods() + 1);
  shard_of_port_.assign(static_cast<std::size_t>(topo.num_ports()), -1);
  shard_ports_.resize(num_shards);
  auto own = [this](int shard, topology::PortId p) {
    shard_of_port_[static_cast<std::size_t>(p.value)] = shard;
    shard_ports_[static_cast<std::size_t>(shard)].push_back(p.value);
  };
  for (int s = 0; s < topo.num_servers(); ++s) {
    own(topo.rack_of_server(s), topo.server_up(s));
    own(topo.rack_of_server(s), topo.server_down(s));
  }
  for (int r = 0; r < topo.num_racks(); ++r) {
    own(topo.num_racks() + topo.pod_of_rack(r), topo.rack_up(r));
    own(topo.num_racks() + topo.pod_of_rack(r), topo.rack_down(r));
  }
  const int core_shard = topo.num_racks() + topo.num_pods();
  for (int p = 0; p < topo.num_pods(); ++p) {
    own(core_shard, topo.pod_up(p));
    own(core_shard, topo.pod_down(p));
  }
  shard_dirty_.assign(num_shards, 0);
  shard_max_resv_.assign(num_shards, 0.0);
  shard_max_qfrac_.assign(num_shards, 0.0);
  tenants_by_server_.resize(static_cast<std::size_t>(topo.num_servers()));
  tenants_by_port_.resize(static_cast<std::size_t>(topo.num_ports()));
}

void PlacementEngine::recompute_rack_max_free(int rack) {
  const int first = topo_.first_server_of_rack(rack);
  int best = 0;
  for (int i = 0; i < topo_.config().servers_per_rack; ++i)
    best = std::max(best, free_slots_[first + i]);
  rack_max_free_[static_cast<std::size_t>(rack)] = best;
}

void PlacementEngine::adjust_free_slots(int server, int delta) {
  if (delta == 0) return;
  const int rack = topo_.rack_of_server(server);
  const int old = free_slots_[server];
  free_slots_[server] = old + delta;
  free_slots_rack_[rack] += delta;
  free_slots_pod_[topo_.pod_of_server(server)] += delta;
  free_slots_total_ += delta;
  auto& rmf = rack_max_free_[static_cast<std::size_t>(rack)];
  if (delta > 0) {
    rmf = std::max(rmf, free_slots_[server]);
  } else if (old == rmf) {
    recompute_rack_max_free(rack);  // the rack max may have shrunk
  }
}

void PlacementEngine::touch_port(int port) {
  shard_dirty_[static_cast<std::size_t>(
      shard_of_port_[static_cast<std::size_t>(port)])] = 1;
}

void PlacementEngine::fail_server(int server) {
  if (server_failed_[static_cast<std::size_t>(server)]) return;
  server_failed_[static_cast<std::size_t>(server)] = 1;
  const int f = free_slots_[server];
  quarantined_slots_[static_cast<std::size_t>(server)] = f;
  adjust_free_slots(server, -f);
}

void PlacementEngine::restore_server(int server) {
  if (!server_failed_[static_cast<std::size_t>(server)]) return;
  server_failed_[static_cast<std::size_t>(server)] = 0;
  const int f = quarantined_slots_[static_cast<std::size_t>(server)];
  quarantined_slots_[static_cast<std::size_t>(server)] = 0;
  adjust_free_slots(server, f);
}

void PlacementEngine::fail_port(topology::PortId p) {
  port_failed_[static_cast<std::size_t>(p.value)] = 1;
}

void PlacementEngine::restore_port(topology::PortId p) {
  port_failed_[static_cast<std::size_t>(p.value)] = 0;
}

std::vector<TenantId> PlacementEngine::tenants_on_server(int server) const {
  if (mode_ == AdmissionMode::kIncremental)
    return tenants_by_server_[static_cast<std::size_t>(server)];  // sorted
  std::vector<TenantId> out;
  for (const auto& [id, rec] : tenants_) {
    for (const auto& [s, count] : rec.slot_usage) {
      if (s == server) {
        out.push_back(id);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool PlacementEngine::placement_uses_port(const TenantRecord& rec,
                                          int port) const {
  if (rec.slot_usage.size() < 2) return false;  // colocated: never on fabric
  int first_rack = -1, first_pod = -1;
  bool multi_rack = false, multi_pod = false;
  for (const auto& [s, count] : rec.slot_usage) {
    const int r = topo_.rack_of_server(s);
    const int p = topo_.pod_of_rack(r);
    if (first_rack < 0) first_rack = r;
    if (first_pod < 0) first_pod = p;
    multi_rack = multi_rack || r != first_rack;
    multi_pod = multi_pod || p != first_pod;
  }
  for (const auto& [s, count] : rec.slot_usage) {
    if (topo_.server_up(s).value == port || topo_.server_down(s).value == port)
      return true;
    const int r = topo_.rack_of_server(s);
    if (multi_rack &&
        (topo_.rack_up(r).value == port || topo_.rack_down(r).value == port))
      return true;
    const int p = topo_.pod_of_server(s);
    if (multi_pod &&
        (topo_.pod_up(p).value == port || topo_.pod_down(p).value == port))
      return true;
  }
  return false;
}

std::vector<TenantId> PlacementEngine::tenants_using_port(
    topology::PortId p) const {
  if (mode_ == AdmissionMode::kIncremental)
    return tenants_by_port_[static_cast<std::size_t>(p.value)];  // sorted
  std::vector<TenantId> out;
  for (const auto& [id, rec] : tenants_) {
    if (placement_uses_port(rec, p.value)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> PlacementEngine::used_ports_for(const CountMap& counts) const {
  // Enumerates exactly the ports placement_uses_port() tests positive for:
  // colocated placements never touch the fabric; rack/pod ports only count
  // once the placement actually spans racks/pods.
  std::vector<int> out;
  if (counts.size() < 2) return out;
  int first_rack = -1, first_pod = -1;
  bool multi_rack = false, multi_pod = false;
  for (const auto& [s, count] : counts) {
    const int r = topo_.rack_of_server(s);
    const int p = topo_.pod_of_rack(r);
    if (first_rack < 0) first_rack = r;
    if (first_pod < 0) first_pod = p;
    multi_rack = multi_rack || r != first_rack;
    multi_pod = multi_pod || p != first_pod;
  }
  for (const auto& [s, count] : counts) {
    out.push_back(topo_.server_up(s).value);
    out.push_back(topo_.server_down(s).value);
    if (multi_rack) {
      const int r = topo_.rack_of_server(s);
      out.push_back(topo_.rack_up(r).value);
      out.push_back(topo_.rack_down(r).value);
    }
    if (multi_pod) {
      const int p = topo_.pod_of_server(s);
      out.push_back(topo_.pod_up(p).value);
      out.push_back(topo_.pod_down(p).value);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TimeNs PlacementEngine::scope_path_capacity(Scope scope) const {
  const TimeNs qs = topo_.port(topo_.server_up(0)).queue_capacity;
  const TimeNs qr = topo_.num_racks() > 0
                        ? topo_.port(topo_.rack_up(0)).queue_capacity
                        : TimeNs{0};
  const TimeNs qp = topo_.port(topo_.pod_up(0)).queue_capacity;
  // Only switch queues count: the source NIC is a pacing conformance
  // point (void packets keep the wire curve-compliant).
  switch (scope) {
    case Scope::kServer:
      return TimeNs{0};
    case Scope::kRack:  // ToR egress toward the destination server
      return nic_delay_allowance_ + qs;
    case Scope::kPod:
      return nic_delay_allowance_ + qs + 2 * qr;
    case Scope::kDatacenter:
      return nic_delay_allowance_ + qs + 2 * qr + 2 * qp;
  }
  return TimeNs{0};
}

Scope PlacementEngine::widest_scope_for_delay(const SiloGuarantee& g) const {
  if (policy_ != Policy::kSilo || !g.wants_delay_guarantee())
    return Scope::kDatacenter;
  for (Scope s : {Scope::kDatacenter, Scope::kPod, Scope::kRack}) {
    if (scope_path_capacity(s) <= g.delay) return s;
  }
  return Scope::kServer;
}

TimeNs PlacementEngine::upstream_capacity(int kind_int, Scope scope) const {
  const auto kind = static_cast<PortKind>(kind_int);
  const TimeNs qr = topo_.port(topo_.rack_up(0)).queue_capacity;
  const TimeNs qp = topo_.port(topo_.pod_up(0)).queue_capacity;
  // Queueing the tenant's traffic may already have absorbed before it
  // reaches a port of this kind (Kurose propagation). The NIC egress is a
  // conformance point, so up-traffic first queues at the ToR.
  switch (kind) {
    case PortKind::kServerUp:
    case PortKind::kRackUp:
      return TimeNs{0};
    case PortKind::kPodUp:
      return qr;  // crossed the ToR uplink queue
    case PortKind::kPodDown:
      return qr + qp;
    case PortKind::kRackDown:
      return scope == Scope::kDatacenter ? qr + 2 * qp : qr;
    case PortKind::kServerDown:
      switch (scope) {
        case Scope::kRack:
          return TimeNs{0};  // straight from conformant source NICs
        case Scope::kPod:
          return 2 * qr;
        default:
          return 2 * qr + 2 * qp;
      }
  }
  return TimeNs{0};
}

PortContribution PlacementEngine::cut_contribution(const TenantRequest& req,
                                                   int m_side,
                                                   TimeNs upstream,
                                                   RateBps line_cap) const {
  PortContribution c;
  const int n = req.num_vms;
  if (m_side <= 0 || m_side >= n) return c;  // nothing crosses this cut
  const auto& g = req.guarantee;
  const double hose_rate =
      static_cast<double>(hose_tightening_ ? std::min(m_side, n - m_side)
                                           : m_side) *
      g.bandwidth.bps();

  if (policy_ == Policy::kOktopus) {
    c.rate_bps = std::min(hose_rate, static_cast<double>(line_cap));
    c.burst_rate_bps = c.rate_bps;
    return c;
  }

  const RateBps bmax = g.burst_rate > RateBps{0} ? g.burst_rate : g.bandwidth;
  // The m source VMs occupy at least ceil(m / slots-per-server) servers,
  // so their combined wire rate cannot exceed that many access links.
  const int min_servers =
      (m_side + topo_.config().vm_slots_per_server - 1) /
      topo_.config().vm_slots_per_server;
  const RateBps source_cap =
      static_cast<double>(min_servers) * topo_.config().server_link_rate;

  // Closed-form equivalent of tenant_cut_curve + propagate_through_port
  // (this runs in the inner loop of admission control, so no Curve
  // allocations): the cut curve is min(mtu + brate*t, m*S + hose*t);
  // shifting it left by `upstream` (Kurose) inflates both intercepts.
  const double sustained = std::min(hose_rate, source_cap.bps());
  const double brate = std::max(
      sustained,
      std::min(static_cast<double>(m_side) * bmax.bps(), source_cap.bps()));
  const double up_ns = static_cast<double>(upstream);
  const double burst0 =
      static_cast<double>(m_side) * static_cast<double>(g.burst);
  c.rate_bps = sustained;
  c.burst_bytes = burst0 + sustained / 8e9 * up_ns;
  c.jump_bytes =
      std::min(static_cast<double>(kMtu) + brate / 8e9 * up_ns, c.burst_bytes);
  c.jump_bytes = std::max(c.jump_bytes, static_cast<double>(kMtu));
  c.burst_rate_bps = upstream == TimeNs{0} ? brate : source_cap.bps();
  (void)line_cap;
  return c;
}

bool PlacementEngine::port_admits(int port, const PortContribution& c) const {
  // A dead port cannot honor a reservation; zero-reservation probes
  // (best-effort tenants) pass so degraded placement stays feasible.
  if (port_failed_[static_cast<std::size_t>(port)] &&
      (c.rate_bps > 0 || c.burst_bytes > 0))
    return false;
  if (policy_ == Policy::kLocality) return true;
  const auto id = topology::PortId{port};
  const auto& p = topo_.port(id);
  const auto& load = port_load_[port];
  if (load.rate_bps() + c.rate_bps > p.rate.bps() * (1.0 + kRateEps))
    return false;
  // Bandwidth reservation is the whole story for Oktopus, and for the NIC
  // egress (the pacer absorbs bursts before the wire, so feasibility there
  // is purely about sustained rate).
  if (policy_ == Policy::kOktopus || topo_.is_nic_port(id)) return true;
  const TimeNs bound = load.queue_bound(p.rate, &c);
  return bound >= TimeNs{0} && bound <= p.queue_capacity;
}

bool PlacementEngine::server_ports_ok(const TenantRequest& req, int server,
                                      int m_here, Scope scope) const {
  if (policy_ == Policy::kLocality) return true;
  // Best-effort tenants reserve nothing (slots-only admission, matching
  // tenant_contributions): probing ports with their nominal guarantee
  // would wrongly block the degraded fallback on failed or loaded ports.
  if (req.tenant_class == TenantClass::kBestEffort) return true;
  const int n = req.num_vms;
  if (m_here >= n) return true;  // all VMs colocated: no fabric traffic
  const RateBps link = topo_.config().server_link_rate;
  const auto up = cut_contribution(
      req, m_here, upstream_capacity(static_cast<int>(PortKind::kServerUp), scope),
      link);
  if (!port_admits(topo_.server_up(server).value, up)) return false;
  const auto down = cut_contribution(
      req, n - m_here,
      upstream_capacity(static_cast<int>(PortKind::kServerDown), scope), link);
  return port_admits(topo_.server_down(server).value, down);
}

std::optional<PlacementEngine::CountMap> PlacementEngine::pack_servers(
    const TenantRequest& req, const std::vector<int>& servers,
    Scope scope) const {
  CountMap counts;
  int remaining = req.num_vms;
  // Fault domains (§4.2.3): capping each server at ceil(n/d) VMs forces
  // the tenant across at least d servers.
  const int domains = std::max(1, req.min_fault_domains);
  const int domain_cap = (req.num_vms + domains - 1) / domains;
  for (int s : servers) {
    if (remaining == 0) break;
    const int cap =
        std::min({free_slots_[s], remaining, domain_cap});
    for (int m = cap; m >= 1; --m) {
      if (server_ports_ok(req, s, m, scope)) {
        counts.emplace_back(s, m);
        remaining -= m;
        break;
      }
    }
  }
  if (remaining > 0) return std::nullopt;
  return counts;
}

std::vector<std::pair<int, PortContribution>>
PlacementEngine::tenant_contributions(const TenantRequest& req,
                                      const CountMap& counts,
                                      Scope scope) const {
  std::vector<std::pair<int, PortContribution>> out;
  if (policy_ == Policy::kLocality ||
      req.tenant_class == TenantClass::kBestEffort)
    return out;  // best-effort traffic rides low priority: no reservation

  const int n = req.num_vms;
  const RateBps link = topo_.config().server_link_rate;
  auto push = [&](topology::PortId id, int m_side, PortKind kind) {
    const auto c = cut_contribution(
        req, m_side, upstream_capacity(static_cast<int>(kind), scope), link);
    if (c.rate_bps > 0 || c.burst_bytes > 0)
      out.emplace_back(id.value, c);
  };

  std::map<int, int> per_rack, per_pod;
  for (const auto& [server, m] : counts) {
    push(topo_.server_up(server), m, PortKind::kServerUp);
    push(topo_.server_down(server), n - m, PortKind::kServerDown);
    per_rack[topo_.rack_of_server(server)] += m;
    per_pod[topo_.pod_of_server(server)] += m;
  }
  if (scope >= Scope::kPod) {
    for (const auto& [rack, m] : per_rack) {
      push(topo_.rack_up(rack), m, PortKind::kRackUp);
      push(topo_.rack_down(rack), n - m, PortKind::kRackDown);
    }
  }
  if (scope >= Scope::kDatacenter && topo_.num_pods() > 1) {
    for (const auto& [pod, m] : per_pod) {
      push(topo_.pod_up(pod), m, PortKind::kPodUp);
      push(topo_.pod_down(pod), n - m, PortKind::kPodDown);
    }
  }
  return out;
}

bool PlacementEngine::validate_candidate(const TenantRequest& req,
                                         const CountMap& counts,
                                         Scope scope) const {
  if (policy_ == Policy::kLocality) return true;
  for (const auto& [port, c] : tenant_contributions(req, counts, scope)) {
    if (!port_admits(port, c)) return false;
  }
  return true;
}

std::optional<PlacementEngine::CountMap> PlacementEngine::try_scope(
    const TenantRequest& req, Scope scope, int anchor) const {
  const auto& cfg = topo_.config();
  std::vector<int> servers;
  switch (scope) {
    case Scope::kServer: {
      if (req.min_fault_domains > 1) return std::nullopt;
      if (free_slots_[anchor] < req.num_vms) return std::nullopt;
      return CountMap{{anchor, req.num_vms}};
    }
    case Scope::kRack: {
      const int first = topo_.first_server_of_rack(anchor);
      for (int i = 0; i < cfg.servers_per_rack; ++i)
        if (free_slots_[first + i] > 0) servers.push_back(first + i);
      break;
    }
    case Scope::kPod: {
      const int first_rack = topo_.first_rack_of_pod(anchor);
      for (int r = 0; r < cfg.racks_per_pod; ++r) {
        if (free_slots_rack_[first_rack + r] == 0) continue;  // rack full
        const int first = topo_.first_server_of_rack(first_rack + r);
        for (int i = 0; i < cfg.servers_per_rack; ++i)
          if (free_slots_[first + i] > 0) servers.push_back(first + i);
      }
      break;
    }
    case Scope::kDatacenter: {
      for (int r = 0; r < topo_.num_racks(); ++r) {
        if (free_slots_rack_[r] == 0) continue;  // rack full: skip 40 probes
        const int first = topo_.first_server_of_rack(r);
        for (int i = 0; i < cfg.servers_per_rack; ++i)
          if (free_slots_[first + i] > 0) servers.push_back(first + i);
      }
      break;
    }
  }
  auto counts = pack_servers(req, servers, scope);
  if (!counts) return std::nullopt;
  if (!validate_candidate(req, *counts, scope)) return std::nullopt;
  return counts;
}

std::optional<AdmittedTenant> PlacementEngine::place(
    const TenantRequest& request) {
  if (request.num_vms < 1) return std::nullopt;
  if (request.num_vms > free_slots_total_) return std::nullopt;
  if (policy_ == Policy::kSilo &&
      request.tenant_class != TenantClass::kBestEffort &&
      request.guarantee.burst_rate > RateBps{0} &&
      request.guarantee.burst_rate < request.guarantee.bandwidth)
    return std::nullopt;  // malformed guarantee

  const Scope widest = widest_scope_for_delay(request.guarantee);

  for (int sc = static_cast<int>(Scope::kServer);
       sc <= static_cast<int>(widest); ++sc) {
    const auto scope = static_cast<Scope>(sc);
    auto attempt = [&](int anchor) -> std::optional<AdmittedTenant> {
      auto counts = try_scope(request, scope, anchor);
      if (!counts) return std::nullopt;
      TenantRecord rec;
      rec.request = request;
      rec.slot_usage = *counts;
      rec.contributions = tenant_contributions(request, *counts, scope);
      AdmittedTenant admitted;
      commit(std::move(rec), admitted);
      return admitted;
    };
    if (scope == Scope::kServer) {
      // First-fit over servers, but rack by rack: the per-rack max-free
      // cache skips a whole rack (40 slot probes) when no server in it
      // could colocate the tenant. Iteration order — and therefore the
      // placement decision — is identical to the flat per-server loop.
      for (int r = 0; r < topo_.num_racks(); ++r) {
        if (rack_max_free_[static_cast<std::size_t>(r)] < request.num_vms)
          continue;
        const int first = topo_.first_server_of_rack(r);
        for (int i = 0; i < topo_.config().servers_per_rack; ++i) {
          const int s = first + i;
          if (free_slots_[s] < request.num_vms) continue;
          if (auto admitted = attempt(s)) return admitted;
        }
      }
      continue;
    }
    int anchors = 1;
    switch (scope) {
      case Scope::kServer:
        break;  // handled above
      case Scope::kRack:
        anchors = topo_.num_racks();
        break;
      case Scope::kPod:
        anchors = topo_.num_pods();
        break;
      case Scope::kDatacenter:
        anchors = 1;
        break;
    }
    for (int a = 0; a < anchors; ++a) {
      // Cheap slot-count skips keep first-fit fast in large datacenters.
      if (scope == Scope::kRack && free_slots_rack_[a] < request.num_vms)
        continue;
      if (scope == Scope::kPod && free_slots_pod_[a] < request.num_vms)
        continue;
      if (auto admitted = attempt(a)) return admitted;
    }
  }
  return std::nullopt;
}

void PlacementEngine::commit(TenantRecord&& rec, AdmittedTenant& out) {
  out.id = next_id_++;
  for (const auto& [server, count] : rec.slot_usage) {
    adjust_free_slots(server, -count);
    for (int i = 0; i < count; ++i) out.vm_to_server.push_back(server);
  }
  for (const auto& [port, c] : rec.contributions) {
    port_load_[port].add(c);
    touch_port(port);
  }
  rec.vm_to_server = out.vm_to_server;
  rec.used_ports = used_ports_for(rec.slot_usage);
  if (mode_ == AdmissionMode::kIncremental) {
    // Ids are monotonic, so push_back keeps every index list sorted.
    for (const auto& [server, count] : rec.slot_usage)
      tenants_by_server_[static_cast<std::size_t>(server)].push_back(out.id);
    for (int p : rec.used_ports)
      tenants_by_port_[static_cast<std::size_t>(p)].push_back(out.id);
  }
  tenants_.emplace(out.id, std::move(rec));
  if (mode_ == AdmissionMode::kFullRescan) rebuild_port_loads();
}

void PlacementEngine::remove(TenantId id) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) return;
  for (const auto& [server, count] : it->second.slot_usage) {
    if (server_failed_[static_cast<std::size_t>(server)]) {
      // Evacuating a dead server: the slots exist but are unusable until
      // the hardware comes back.
      quarantined_slots_[static_cast<std::size_t>(server)] += count;
      continue;
    }
    adjust_free_slots(server, count);
  }
  for (const auto& [port, c] : it->second.contributions) {
    port_load_[port].remove(c);
    touch_port(port);
  }
  if (mode_ == AdmissionMode::kIncremental) {
    auto drop = [id](std::vector<TenantId>& list) {
      list.erase(std::find(list.begin(), list.end(), id));
    };
    for (const auto& [server, count] : it->second.slot_usage)
      drop(tenants_by_server_[static_cast<std::size_t>(server)]);
    for (int p : it->second.used_ports)
      drop(tenants_by_port_[static_cast<std::size_t>(p)]);
  }
  tenants_.erase(it);
  if (mode_ == AdmissionMode::kFullRescan) rebuild_port_loads();
}

EngineSnapshot PlacementEngine::snapshot() const {
  EngineSnapshot snap;
  snap.tenants.reserve(tenants_.size());
  for (const auto& [id, rec] : tenants_) {  // map order: ascending id
    EngineSnapshot::Tenant t;
    t.id = id;
    t.request = rec.request;
    t.vm_to_server = rec.vm_to_server;
    t.contributions = rec.contributions;
    snap.tenants.push_back(std::move(t));
  }
  for (int s = 0; s < topo_.num_servers(); ++s) {
    if (!server_failed_[static_cast<std::size_t>(s)]) continue;
    snap.failed_servers.push_back(
        {s, free_slots_[static_cast<std::size_t>(s)],
         quarantined_slots_[static_cast<std::size_t>(s)]});
  }
  for (int p = 0; p < topo_.num_ports(); ++p) {
    if (port_failed_[static_cast<std::size_t>(p)]) snap.failed_ports.push_back(p);
  }
  snap.next_id = next_id_;
  return snap;
}

void PlacementEngine::restore(const EngineSnapshot& snap) {
  if (next_id_ != 0 || !tenants_.empty())
    throw std::logic_error("PlacementEngine::restore requires a fresh engine");
  for (const int p : snap.failed_ports)
    port_failed_[static_cast<std::size_t>(p)] = 1;
  for (const auto& t : snap.tenants) {  // ascending id keeps indexes sorted
    TenantRecord rec;
    rec.request = t.request;
    rec.vm_to_server = t.vm_to_server;
    rec.contributions = t.contributions;
    // commit() lays VMs out as runs of slot_usage entries, one run per
    // server, so run-length decoding vm_to_server reproduces it exactly.
    for (const int s : t.vm_to_server) {
      if (!rec.slot_usage.empty() && rec.slot_usage.back().first == s)
        ++rec.slot_usage.back().second;
      else
        rec.slot_usage.emplace_back(s, 1);
    }
    rec.used_ports = used_ports_for(rec.slot_usage);
    for (const auto& [server, count] : rec.slot_usage)
      adjust_free_slots(server, -count);
    for (const auto& [port, c] : rec.contributions) {
      port_load_[port].add(c);
      touch_port(port);
    }
    if (mode_ == AdmissionMode::kIncremental) {
      for (const auto& [server, count] : rec.slot_usage)
        tenants_by_server_[static_cast<std::size_t>(server)].push_back(t.id);
      for (const int p : rec.used_ports)
        tenants_by_port_[static_cast<std::size_t>(p)].push_back(t.id);
    }
    tenants_.emplace(t.id, std::move(rec));
  }
  next_id_ = snap.next_id;
  for (const auto& f : snap.failed_servers) {
    server_failed_[static_cast<std::size_t>(f.server)] = 1;
    // The captured free count already excludes the quarantined pool; pull
    // the aggregates down to it so a later restore_server() returns
    // exactly the quarantined slots the original engine held back.
    adjust_free_slots(f.server,
                      f.free_slots - free_slots_[static_cast<std::size_t>(f.server)]);
    quarantined_slots_[static_cast<std::size_t>(f.server)] = f.quarantined;
  }
  if (mode_ == AdmissionMode::kFullRescan) rebuild_port_loads();
}

void PlacementEngine::rebuild_port_loads() {
  // The kFullRescan baseline: forget every aggregate and re-sum all
  // admitted tenants' contributions — O(tenants x ports-per-tenant) per
  // admit/release, the cost profile the sharded path exists to avoid.
  for (auto& load : port_load_) load = PortLoad{};
  for (const auto& [id, rec] : tenants_)
    for (const auto& [port, c] : rec.contributions) port_load_[port].add(c);
  std::fill(shard_dirty_.begin(), shard_dirty_.end(), 1);
}

void PlacementEngine::refresh_shard(std::size_t shard) const {
  double resv = 0.0, qfrac = 0.0;
  for (int p : shard_ports_[shard]) {
    const topology::PortId id{p};
    const auto& port = topo_.port(id);
    const auto& load = port_load_[p];
    if (load.empty()) continue;
    resv = std::max(resv, load.rate_bps() / port.rate.bps());
    const TimeNs bound = port_queue_bound(id);
    if (bound >= TimeNs{0} && port.queue_capacity > TimeNs{0})
      qfrac = std::max(qfrac, static_cast<double>(bound) /
                                  static_cast<double>(port.queue_capacity));
  }
  shard_max_resv_[shard] = resv;
  shard_max_qfrac_[shard] = qfrac;
  shard_dirty_[shard] = 0;
}

void PlacementEngine::refresh_dirty_shards() const {
  for (std::size_t sh = 0; sh < shard_dirty_.size(); ++sh)
    if (shard_dirty_[sh]) refresh_shard(sh);
}

double PlacementEngine::max_port_reservation() const {
  refresh_dirty_shards();
  double out = 0.0;
  for (double v : shard_max_resv_) out = std::max(out, v);
  return out;
}

double PlacementEngine::max_queue_headroom_used() const {
  refresh_dirty_shards();
  double out = 0.0;
  for (double v : shard_max_qfrac_) out = std::max(out, v);
  return out;
}

double PlacementEngine::port_reservation(topology::PortId p) const {
  return port_load_[p.value].rate_bps() / topo_.port(p).rate.bps();
}

TimeNs PlacementEngine::port_queue_bound(topology::PortId p) const {
  const auto& load = port_load_[p.value];
  if (load.empty()) return TimeNs{0};
  const auto analysis = netcalc::analyze_queue(
      load.arrival_curve(), netcalc::Curve::constant_rate(topo_.port(p).rate));
  return analysis.queue_bound.value_or(TimeNs{-1});
}

}  // namespace silo::placement
